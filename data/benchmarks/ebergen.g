.model ebergen
.inputs r0
.outputs a0 r1 a1 r2 a2
.graph
r0+ r1+
r0- r1-
a0+ r0-
a0- r0+
r1+ r2+
r1- r2-
a1+ a0+
a1- a0-
r2+ a2+
r2- a2-
a2+ a1+
a2- a1-
.marking { <a0-,r0+> }
.end
