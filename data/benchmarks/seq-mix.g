.model seq-mix
.inputs ra rb
.outputs g0 g1 o0 o1 o2 o3 d
.graph
ra+ g0+ g1+
ra- g0- g1-
d+ ra-
g0+ d+
g0- d-
g1+ d+
g1- d-
rb+ o0+
rb- o0-
d+/2 rb-
o0+ o1+
o1+ o2+
o2+ o3+
o3+ d+/2
o0- o1-
o1- o2-
o2- o3-
o3- d-/2
d- idle
d-/2 idle
idle ra+ rb+
.marking { idle }
.end
