.model pe-rcv-ifc
.inputs r0 r1 r2 r3
.outputs z a0 a1 a2 a3
.graph
r0+ z+
r0- z-
z+ a0+
z- a0-
a0+ r0-
r1+ z+/2
r1- z-/2
z+/2 a1+
z-/2 a1-
a1+ r1-
r2+ z+/3
r2- z-/3
z+/3 a2+
z-/3 a2-
a2+ r2-
r3+ z+/4
r3- z-/4
z+/4 a3+
z-/4 a3-
a3+ r3-
a0- idle
a1- idle
a2- idle
a3- idle
idle r0+ r1+ r2+ r3+
.marking { idle }
.end
