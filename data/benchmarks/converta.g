.model converta
.inputs r0
.outputs a0 r1 a1
.graph
r0+ r1+
r0- r1-
a0+ r0-
a0- r0+
r1+ a1+
r1- a1-
a1+ a0+
a1- a0-
.marking { <a0-,r0+> }
.end
