.model half
.inputs r
.outputs g0 g1 d
.graph
r+ g0+ g1+
r- g0- g1-
d+ r-
d- r+
g0+ d+
g0- d-
g1+ d+
g1- d-
.marking { <d-,r+> }
.end
