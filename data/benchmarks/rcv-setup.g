.model rcv-setup
.inputs r0 r1
.outputs a
.graph
r0+ a+
r0- a-
a+ r0-
r1+ a+/2
r1- a-/2
a+/2 r1-
a- idle
a-/2 idle
idle r0+ r1+
.marking { idle }
.end
