.model nowick
.inputs r0 r1 r2
.outputs a
.graph
r0+ a+
r0- a-
a+ r0-
r1+ a+/2
r1- a-/2
a+/2 r1-
r2+ a+/3
r2- a-/3
a+/3 r2-
a- idle
a-/2 idle
a-/3 idle
idle r0+ r1+ r2+
.marking { idle }
.end
