.model rlm
.inputs r
.outputs g0 g1 g2 d
.graph
r+ g0+ g1+ g2+
r- g0- g1- g2-
d+ r-
d- r+
g0+ d+
g0- d-
g1+ d+
g1- d-
g2+ d+
g2- d-
.marking { <d-,r+> }
.end
