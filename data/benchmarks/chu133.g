.model chu133
.inputs r
.outputs o0 o1 a
.graph
r+ o0+
r- o0-
a+ r-
a- r+
o0+ o1+
o1+ a+
o0- o1-
o1- a-
.marking { <a-,r+> }
.end
