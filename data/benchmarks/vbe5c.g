.model vbe5c
.inputs r
.outputs o0 o1 o2 a
.graph
r+ o0+
r- o0-
a+ r-
a- r+
o0+ o1+
o1+ o2+
o2+ a+
o0- o1-
o1- o2-
o2- a-
.marking { <a-,r+> }
.end
