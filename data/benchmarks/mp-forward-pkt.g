.model mp-forward-pkt
.inputs r0 r1
.outputs z a0 a1
.graph
r0+ z+
r0- z-
z+ a0+
z- a0-
a0+ r0-
r1+ z+/2
r1- z-/2
z+/2 a1+
z-/2 a1-
a1+ r1-
a0- idle
a1- idle
idle r0+ r1+
.marking { idle }
.end
