.model tsend-bm
.inputs r
.outputs g0 g1 g2 g3 g4 d
.graph
r+ g0+ g1+ g2+ g3+ g4+
r- g0- g1- g2- g3- g4-
d+ r-
d- r+
g0+ d+
g0- d-
g1+ d+
g1- d-
g2+ d+
g2- d-
g3+ d+
g3- d-
g4+ d+
g4- d-
.marking { <d-,r+> }
.end
