.model hazard
.inputs a d
.outputs c x
.graph
a+ c+
a- x+
d+ x+
d- x-
c+ a-
c- d-
x+ c-
x- a+ d+
.marking { <x-,a+> <x-,d+> }
.end
