.model master-read
.inputs ra rb
.outputs g0 g1 g2 o0 o1 o2 d
.graph
ra+ g0+ g1+ g2+
ra- g0- g1- g2-
d+ ra-
g0+ d+
g0- d-
g1+ d+
g1- d-
g2+ d+
g2- d-
rb+ o0+
rb- o0-
d+/2 rb-
o0+ o1+
o1+ o2+
o2+ d+/2
o0- o1-
o1- o2-
o2- d-/2
d- idle
d-/2 idle
idle ra+ rb+
.marking { idle }
.end
