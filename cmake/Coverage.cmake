# Line-coverage instrumentation for the `coverage` preset.
#
#   cmake -DSITM_COVERAGE=ON ...
#
# Uses the GCC/Clang --coverage pipeline (.gcno at compile time, .gcda at
# run time) so plain `gcov` — present wherever the compiler is — can
# produce the report; scripts/check_coverage.py aggregates the gcov JSON
# across translation units and gates the checked-in floor
# (COVERAGE_floor.json), and CI additionally renders an lcov summary.
#
# -fprofile-update=atomic matters: the tier-1 suite runs threaded tests
# (scheduler, serve, batch, race stress), and non-atomic counter bumps
# would both corrupt the counts and light up TSan.

option(SITM_COVERAGE "Instrument for line coverage (--coverage)" OFF)

if(SITM_COVERAGE)
  message(STATUS "sitm: coverage instrumentation enabled")
  add_compile_options(--coverage -fprofile-update=atomic)
  add_link_options(--coverage)
endif()
