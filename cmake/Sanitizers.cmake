# Reusable sanitizer toggle shared by every build preset (and CI job):
#
#   cmake -DSITM_SANITIZE=address,undefined ...   ASan + UBSan
#   cmake -DSITM_SANITIZE=thread ...              TSan
#
# The value is passed through to -fsanitize= verbatim, so any combination
# the toolchain accepts works.  -fno-sanitize-recover=all turns every
# sanitizer report into a hard failure (CI must not scroll past one), and
# frame pointers stay in so the reports carry usable stacks.
#
# Included before any target is defined: the flags apply to the library,
# the CLI, every test and every bench the same way — one preset source of
# truth instead of per-job inline flags.

set(SITM_SANITIZE "" CACHE STRING
    "Comma-separated -fsanitize= list (e.g. address,undefined or thread); empty disables")

if(SITM_SANITIZE)
  message(STATUS "sitm: sanitizers enabled: ${SITM_SANITIZE}")
  add_compile_options(
    -fsanitize=${SITM_SANITIZE}
    -fno-sanitize-recover=all
    -fno-omit-frame-pointer)
  add_link_options(-fsanitize=${SITM_SANITIZE})
endif()
