// Global acknowledgement on a high-fanin join (the vbe10b scenario of
// Figure 6): a 7-way parallelizer whose done signal needs 7-literal AND/OR
// gates, decomposed into a tree of 2-input sub-latches.
//
// Build & run:   ./build/examples/global_ack

#include <cstdio>

#include "benchlib/suite.hpp"
#include "core/mapper.hpp"
#include "core/mc_cover.hpp"
#include "netlist/si_verify.hpp"
#include "util/text.hpp"
#include "stg/stg.hpp"

using namespace sitm;

int main() {
  const auto entry = bench::suite_benchmark("vbe10b");
  const StateGraph sg = entry.stg.to_state_graph();
  std::vector<std::string> base_names;
  for (const auto& s : sg.signals()) base_names.push_back(s.name);

  const Netlist before = synthesize_all(sg);
  std::printf("vbe10b (%s): %zu states\n", entry.family.c_str(),
              sg.num_states());
  std::printf("before decomposition (max gate: %d literals):\n%s\n",
              before.max_gate_complexity(), before.to_string().c_str());

  MapperOptions opts;
  opts.library.max_literals = 2;
  const MapResult result = technology_map(sg, opts);
  if (!result.implementable) {
    std::printf("not implementable at i=2: %s\n", result.failure.c_str());
    return 1;
  }

  std::printf("decomposition steps:\n");
  std::vector<std::string> names;
  for (const auto& s : result.sg->signals()) names.push_back(s.name);
  for (const auto& step : result.steps) {
    if (step.latch) {
      std::printf("  insert %-4s = LATCH(set: %s, reset: %s)\n",
                  step.new_signal.c_str(),
                  step.divisor.to_string(names).c_str(),
                  step.divisor_reset.to_string(names).c_str());
    } else {
      std::printf("  insert %-4s = %s (combinational)\n",
                  step.new_signal.c_str(),
                  step.divisor.to_string(names).c_str());
    }
    std::printf("      cost (over-lib gates, max literals, total literals): "
                "(%d,%d,%d) -> (%d,%d,%d)\n",
                step.before.gates_over_library, step.before.max_complexity,
                step.before.total_literals, step.after.gates_over_library,
                step.after.max_complexity, step.after.total_literals);
  }

  const Netlist after = result.build_netlist();
  std::printf("\nafter decomposition into 2-literal gates (%d insertions):\n%s\n",
              result.signals_inserted, after.to_string().c_str());

  const SiVerifyResult verify = verify_speed_independence(after);
  std::printf("gate-level SI verification: %s (%zu composite states)\n",
              verify.ok ? "PASS" : verify.why.c_str(), verify.num_states);

  // The ablation: without global acknowledgement the same circuit is stuck.
  MapperOptions local = opts;
  local.global_acknowledgement = false;
  const MapResult local_result = technology_map(sg, local);
  std::printf("\nlocal-acknowledgement-only baseline: %s\n",
              local_result.implementable
                  ? strfmt("solved with %d insertions",
                           local_result.signals_inserted)
                        .c_str()
                  : ("n.i. (" + local_result.failure + ")").c_str());
  return verify.ok ? 0 : 1;
}
