// Complete State Coding resolution followed by technology mapping: the full
// front-to-back flow for a specification that is not directly implementable.
//
// Build & run:   ./build/examples/csc_flow

#include <cstdio>

#include "core/csc.hpp"
#include "core/mapper.hpp"
#include "core/mc_cover.hpp"
#include "netlist/si_verify.hpp"
#include "netlist/writers.hpp"
#include "sg/properties.hpp"
#include "stg/g_io.hpp"

using namespace sitm;

int main() {
  // A two-phase controller whose phases share the all-zero code: after
  // b- the state looks exactly like the initial one, but the circuit must
  // produce c+ instead of a+ -- a CSC conflict.
  const char* spec = R"(.model twophase
.outputs a b c d
.graph
a+ b+
b+ a-
a- b-
b- c+
c+ d+
d+ c-
c- d-
d- a+
.marking { <d-,a+> }
.end
)";
  const Stg stg = read_g_string(spec);
  const StateGraph sg = stg.to_state_graph();
  std::printf("two-phase ring: %zu states\n", sg.num_states());

  const auto csc_check = check_csc(sg);
  std::printf("CSC: %s (%d conflict pairs)\n",
              csc_check ? "satisfied" : csc_check.why.c_str(),
              count_csc_conflicts(sg));

  // 1. Insert state signals until CSC holds.
  const CscResult resolved = resolve_csc(sg);
  if (!resolved.resolved) {
    std::printf("CSC resolution failed: %s\n", resolved.failure.c_str());
    return 1;
  }
  std::printf("\ninserted %d state signal(s):\n", resolved.signals_inserted);
  for (const auto& step : resolved.steps) {
    std::printf("  %s: set after %s, reset after %s  (%d -> %d conflicts)\n",
                step.new_signal.c_str(),
                resolved.sg->event_string(step.set_after).c_str(),
                resolved.sg->event_string(step.reset_after).c_str(),
                step.conflicts_before, step.conflicts_after);
  }

  // 2. Map onto a 2-literal library.
  MapperOptions opts;
  opts.library.max_literals = 2;
  const MapResult mapped = technology_map(*resolved.sg, opts);
  if (!mapped.implementable) {
    std::printf("mapping failed: %s\n", mapped.failure.c_str());
    return 1;
  }
  const Netlist netlist = mapped.build_netlist();
  std::printf("\nmapped netlist (%d decomposition signal(s)):\n%s",
              mapped.signals_inserted, netlist.to_string().c_str());

  // 3. Verify and emit Verilog.
  const SiVerifyResult verify = verify_speed_independence(netlist);
  std::printf("\ngate-level SI verification: %s\n",
              verify.ok ? "PASS" : verify.why.c_str());
  std::printf("\nVerilog:\n%s", write_verilog_string(netlist, "twophase").c_str());
  return verify.ok ? 0 : 1;
}
