// Complete State Coding resolution followed by technology mapping, driven
// through the staged Flow engine: one FlowOptions struct configures the
// whole load -> ... -> verify -> emit sequence, and the FlowContext keeps
// every intermediate artifact (CSC steps, mapped netlist, Verilog)
// inspectable afterwards.
//
// Build & run:   ./build/examples/csc_flow

#include <cstdio>

#include "flow/flow.hpp"

using namespace sitm;

int main() {
  // A two-phase controller whose phases share the all-zero code: after
  // b- the state looks exactly like the initial one, but the circuit must
  // produce c+ instead of a+ -- a CSC conflict.
  const char* spec = R"(.model twophase
.outputs a b c d
.graph
a+ b+
b+ a-
a- b-
b- c+
c+ d+
d+ c-
c- d-
d- a+
.marking { <d-,a+> }
.end
)";

  FlowOptions opts;
  opts.mapper.library.max_literals = 2;
  opts.capture_emitted = true;  // keep the Verilog in the context

  Flow flow(opts);
  const FlowReport report = flow.run_string(spec);
  const FlowContext& ctx = flow.context();

  if (!report.ok) {
    std::printf("flow failed in %s: %s\n", stage_name(*report.failed_stage),
                report.failure.c_str());
    return 1;
  }

  std::printf("two-phase ring: %g states\n",
              report.stage(Stage::kReachability)
                  .metric_value("states")
                  .value_or(0));
  std::printf("CSC conflict pairs before resolution: %g\n",
              report.stage(Stage::kProperties)
                  .metric_value("csc_conflict_pairs")
                  .value_or(0));

  // 1. The csc stage inserted state signals until CSC held.  (ctx.csc is
  // only populated when a resolution was actually needed.)
  if (ctx.csc) {
    std::printf("\ninserted %d state signal(s):\n", ctx.csc->signals_inserted);
    for (const auto& step : ctx.csc->steps) {
      std::printf("  %s: set after %s, reset after %s  (%d -> %d conflicts)\n",
                  step.new_signal.c_str(),
                  ctx.csc->sg->event_string(step.set_after).c_str(),
                  ctx.csc->sg->event_string(step.reset_after).c_str(),
                  step.conflicts_before, step.conflicts_after);
    }
  } else {
    std::printf("\nCSC already satisfied; no state signals inserted\n");
  }

  // 2. The map stage decomposed onto the 2-literal library.
  std::printf("\nmapped netlist (%d decomposition signal(s)):\n%s",
              ctx.mapped->signals_inserted, ctx.netlist->to_string().c_str());

  // 3. The verify stage checked gate-level speed independence; the emit
  //    stage captured the Verilog.
  std::printf("\ngate-level SI verification: %s\n",
              ctx.verify->ok ? "PASS" : ctx.verify->why.c_str());
  std::printf("\nVerilog:\n%s", ctx.emitted_verilog.c_str());
  return ctx.verify->ok ? 0 : 1;
}
