// End-to-end flow on a user-provided specification: parse a .g file (inline
// here; pass a path to read your own), run reachability, check the
// implementability preconditions, map onto a chosen library and print the
// netlist — the typical way a downstream user drives the library.
//
// Usage:   ./build/examples/pipeline_flow [file.g] [max_literals]

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "core/mapper.hpp"
#include "core/mc_cover.hpp"
#include "netlist/si_verify.hpp"
#include "netlist/tech_decomp.hpp"
#include "sg/properties.hpp"
#include "stg/g_io.hpp"
#include "util/error.hpp"

using namespace sitm;

namespace {

/// A mixed controller: a DMA-style engine that either broadcasts to two
/// ports in parallel or performs a 3-step sequential transfer.
const char* kDefaultSpec = R"(.model dma_engine
.inputs go mode
.outputs p0 p1 s0 s1 s2 done
.graph
idle go+ mode+
go+ p0+ p1+
p0+ done+/1
p1+ done+/1
done+/1 go-
go- p0- p1-
p0- done-/1
p1- done-/1
done-/1 idle
mode+ s0+
s0+ s1+
s1+ s2+
s2+ done+/2
done+/2 mode-
mode- s0-
s0- s1-
s1- s2-
s2- done-/2
done-/2 idle
.marking { idle }
.end
)";

}  // namespace

int main(int argc, char** argv) {
  std::string text = kDefaultSpec;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    text = buffer.str();
  }
  const int max_literals = argc > 2 ? std::atoi(argv[2]) : 2;

  try {
    std::string name;
    const Stg stg = read_g_string(text, &name);
    const StateGraph sg = stg.to_state_graph();
    std::printf("%s: %zu transitions, %zu places -> %zu states\n",
                name.c_str(), stg.num_transitions(), stg.num_places(),
                sg.num_states());

    if (auto r = check_implementability(sg); !r) {
      std::printf("specification rejected: %s\n", r.why.c_str());
      return 1;
    }

    const Netlist before = synthesize_all(sg);
    std::printf("\nunconstrained standard-C implementation (max gate %d "
                "literals, %d literals total, %d C elements):\n%s\n",
                before.max_gate_complexity(), before.total_literals(),
                before.num_c_elements(), before.to_string().c_str());

    MapperOptions opts;
    opts.library.max_literals = max_literals;
    const MapResult result = technology_map(sg, opts);
    if (!result.implementable) {
      std::printf("not implementable with %d-literal gates: %s\n",
                  max_literals, result.failure.c_str());
      return 1;
    }
    const Netlist after = result.build_netlist();
    std::printf("mapped onto <=%d-literal gates with %d inserted signals "
                "(%d literals, %d C elements):\n%s\n",
                max_literals, result.signals_inserted, after.total_literals(),
                after.num_c_elements(), after.to_string().c_str());

    const TechDecompResult baseline = tech_decomp2(before);
    std::printf("non-SI tech_decomp baseline: %d literals, %d C elements "
                "(hazardous under unbounded delays)\n",
                baseline.literals, baseline.c_elements);

    const SiVerifyResult verify = verify_speed_independence(after);
    std::printf("gate-level SI verification: %s\n",
                verify.ok ? "PASS" : verify.why.c_str());
    return verify.ok ? 0 : 1;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
