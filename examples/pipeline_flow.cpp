// End-to-end flow on a user-provided specification, driven through the
// staged Flow engine: parse a .g file (inline here; pass a path to read
// your own), run reachability and the property checks, synthesize, map onto
// a chosen library and print the netlists — the typical way a downstream
// user drives the library.  The per-stage StageReports double as a
// structured log of what happened.
//
// Usage:   ./build/examples/pipeline_flow [file.g] [max_literals]

#include <cstdio>
#include <cstdlib>

#include "flow/flow.hpp"

using namespace sitm;

namespace {

/// A mixed controller: a DMA-style engine that either broadcasts to two
/// ports in parallel or performs a 3-step sequential transfer.
const char* kDefaultSpec = R"(.model dma_engine
.inputs go mode
.outputs p0 p1 s0 s1 s2 done
.graph
idle go+ mode+
go+ p0+ p1+
p0+ done+/1
p1+ done+/1
done+/1 go-
go- p0- p1-
p0- done-/1
p1- done-/1
done-/1 idle
mode+ s0+
s0+ s1+
s1+ s2+
s2+ done+/2
done+/2 mode-
mode- s0-
s0- s1-
s1- s2-
s2- done-/2
done-/2 idle
.marking { idle }
.end
)";

}  // namespace

int main(int argc, char** argv) {
  FlowOptions opts;
  opts.mapper.library.max_literals = argc > 2 ? std::atoi(argv[2]) : 2;

  Flow flow(opts);
  const FlowReport report = argc > 1
                                ? flow.run_file(argv[1])
                                : flow.run_string(kDefaultSpec);
  const FlowContext& ctx = flow.context();

  if (!report.ok) {
    std::printf("%s: flow failed in %s: %s\n", report.name.c_str(),
                stage_name(*report.failed_stage), report.failure.c_str());
    return 1;
  }

  const auto& load = report.stage(Stage::kLoad);
  const auto& reach = report.stage(Stage::kReachability);
  if (load.metric_value("transitions"))  // .g input: net-level stats exist
    std::printf("%s: %g transitions, %g places -> %g states\n",
                report.name.c_str(), *load.metric_value("transitions"),
                load.metric_value("places").value_or(0),
                reach.metric_value("states").value_or(0));
  else  // .sg input: the spec is already a state graph
    std::printf("%s: %g states, %g arcs\n", report.name.c_str(),
                reach.metric_value("states").value_or(0),
                reach.metric_value("arcs").value_or(0));

  const Netlist& before = *ctx.synth_netlist;
  std::printf("\nunconstrained standard-C implementation (max gate %d "
              "literals, %d literals total, %d C elements):\n%s\n",
              before.max_gate_complexity(), before.total_literals(),
              before.num_c_elements(), before.to_string().c_str());

  const Netlist& after = *ctx.netlist;
  std::printf("mapped onto <=%d-literal gates with %d inserted signals "
              "(%d literals, %d C elements):\n%s\n",
              opts.mapper.library.max_literals, ctx.mapped->signals_inserted,
              after.total_literals(), after.num_c_elements(),
              after.to_string().c_str());

  std::printf("non-SI tech_decomp baseline: %d literals, %d C elements "
              "(hazardous under unbounded delays)\n",
              ctx.decomp->literals, ctx.decomp->c_elements);

  std::printf("gate-level SI verification: %s\n",
              ctx.verify->ok ? "PASS" : ctx.verify->why.c_str());

  // Per-stage wall times from the structured reports.
  std::printf("\nstage timings:");
  for (const auto& sr : report.stages)
    if (sr.ran) std::printf("  %s %.2fms", stage_name(sr.stage), sr.wall_ms);
  std::printf("\n");
  return ctx.verify->ok ? 0 : 1;
}
