// Quickstart: the paper's running example (hazard.g, Figures 1 and 5).
//
// Loads the hazard specification, synthesizes the standard-C implementation,
// shows why the divisor a'*d of Sx = a'*c*d is illegal while a'*c and c*d
// are legal, and finally maps the circuit onto 2-input gates.
//
// Build & run:   ./build/examples/quickstart

#include <cstdio>

#include "benchlib/generators.hpp"
#include "core/insertion.hpp"
#include "core/mapper.hpp"
#include "core/mc_cover.hpp"
#include "netlist/si_verify.hpp"
#include "sg/properties.hpp"
#include "sg/sg_io.hpp"
#include "stg/stg.hpp"

using namespace sitm;

int main() {
  // 1. The specification: an STG with inputs a, d and outputs c, x.
  const Stg stg = bench::make_hazard();
  const StateGraph sg = stg.to_state_graph();
  std::printf("=== hazard.g: %zu states, %d signals ===\n%s\n",
              sg.num_states(), sg.num_signals(),
              write_sg_string(sg, "hazard").c_str());

  // 2. Check the flow preconditions.
  const auto ok = check_implementability(sg);
  std::printf("implementable specification: %s\n\n", ok ? "yes" : ok.why.c_str());

  // 3. The monotonous-cover (standard-C) implementation before mapping.
  const Netlist before = synthesize_all(sg);
  std::printf("standard-C implementation (Figure 5a):\n%s\n",
              before.to_string().c_str());

  // 4. Divisors of Sx = a'*c*d (Figure 1): a'd is illegal, a'c / cd legal.
  const int a = sg.find_signal("a");
  const int c = sg.find_signal("c");
  const int d = sg.find_signal("d");
  std::vector<std::string> names;
  for (const auto& s : sg.signals()) names.push_back(s.name);

  struct Trial {
    const char* label;
    Cover f;
  };
  const Trial trials[] = {
      {"a'd", Cover(sg.num_signals(),
                    {Cube::literal(a, false).with_literal(d, true)})},
      {"a'c", Cover(sg.num_signals(),
                    {Cube::literal(a, false).with_literal(c, true)})},
      {"cd", Cover(sg.num_signals(),
                   {Cube::literal(c, true).with_literal(d, true)})},
  };
  for (const auto& trial : trials) {
    InsertionFailure why;
    const auto plan = plan_insertion(sg, trial.f, &why);
    if (plan) {
      std::printf("divisor %-4s -> legal insertion: |ER(x+)|=%zu, "
                  "|ER(x-)|=%zu\n",
                  trial.label, plan->er_rise.count(), plan->er_fall.count());
    } else {
      std::printf("divisor %-4s -> ILLEGAL: %s\n", trial.label,
                  why.why.c_str());
    }
  }

  // 5. Full technology mapping onto 2-input gates (Figure 5b).
  MapperOptions opts;
  opts.library.max_literals = 2;
  const MapResult result = technology_map(sg, opts);
  if (!result.implementable) {
    std::printf("\nmapping failed: %s\n", result.failure.c_str());
    return 1;
  }
  std::printf("\nmapped with %d inserted signal(s); chosen divisor: %s\n",
              result.signals_inserted,
              result.steps.empty()
                  ? "-"
                  : result.steps[0].divisor.to_string(names).c_str());
  const Netlist after = result.build_netlist();
  std::printf("2-input implementation (Figure 5b):\n%s\n",
              after.to_string().c_str());

  // 6. Independent gate-level verification.
  const SiVerifyResult verify = verify_speed_independence(after);
  std::printf("gate-level SI verification: %s (%zu composite states)\n",
              verify.ok ? "PASS" : verify.why.c_str(), verify.num_states);
  return verify.ok ? 0 : 1;
}
