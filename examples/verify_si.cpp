// Using the gate-level verifier as a standalone tool: check a hand-written
// implementation against its specification, and watch it catch a hazardous
// one — the experiment behind the paper's "all implementations have been
// verified to be speed-independent".
//
// The hand-written checks drive verify_speed_independence directly (the
// verifier takes any netlist, not just synthesized ones); the closing
// end-to-end run goes through the staged Flow engine with the map stage
// skipped, which is how a synthesized netlist normally reaches the
// verifier.
//
// Build & run:   ./build/examples/verify_si

#include <cstdio>

#include "benchlib/generators.hpp"
#include "flow/flow.hpp"
#include "netlist/netlist.hpp"
#include "netlist/si_verify.hpp"
#include "stg/stg.hpp"

using namespace sitm;

int main() {
  const StateGraph sg = bench::make_hazard().to_state_graph();
  const int a = sg.find_signal("a");
  const int c = sg.find_signal("c");
  const int d = sg.find_signal("d");
  const int x = sg.find_signal("x");

  // A correct hand-written implementation (what synthesize_all derives):
  //   c = C(set: a, reset: x)        x = C(set: a'cd, reset: d')
  {
    Netlist good(&sg);
    SignalImpl ic;
    ic.signal = c;
    ic.set = Cover(sg.num_signals(), {Cube::literal(a, true)});
    ic.reset = Cover(sg.num_signals(), {Cube::literal(x, true)});
    good.add_impl(ic);
    SignalImpl ix;
    ix.signal = x;
    ix.set = Cover(sg.num_signals(), {Cube::literal(a, false)
                                          .with_literal(c, true)
                                          .with_literal(d, true)});
    ix.reset = Cover(sg.num_signals(), {Cube::literal(d, false)});
    good.add_impl(ix);

    std::printf("correct implementation:\n%s", good.to_string().c_str());
    const SiVerifyResult r = verify_speed_independence(good);
    std::printf("-> %s (%zu composite states)\n\n",
                r.ok ? "speed-independent" : r.why.c_str(), r.num_states);
  }

  // A naive "optimization": drop the a' literal from x's set network
  // (x = C(cd, d')).  The gate fires one state too early — the verifier
  // reports the conformance/hazard violation.
  {
    Netlist bad(&sg);
    SignalImpl ic;
    ic.signal = c;
    ic.set = Cover(sg.num_signals(), {Cube::literal(a, true)});
    ic.reset = Cover(sg.num_signals(), {Cube::literal(x, true)});
    bad.add_impl(ic);
    SignalImpl ix;
    ix.signal = x;
    ix.set = Cover(sg.num_signals(),
                   {Cube::literal(c, true).with_literal(d, true)});
    ix.reset = Cover(sg.num_signals(), {Cube::literal(d, false)});
    bad.add_impl(ix);

    std::printf("hazardous implementation (set(x) = cd, a' dropped):\n%s",
                bad.to_string().c_str());
    const SiVerifyResult r = verify_speed_independence(bad);
    std::printf("-> %s\n\n", r.ok ? "unexpectedly passed!" : r.why.c_str());
    if (r.ok) return 1;
  }

  // The synthesized netlist of a bigger benchmark, verified end to end
  // through the flow: synth feeds verify directly (map and decomp skipped),
  // and the report carries the composite state count.
  {
    FlowOptions opts;
    opts.set_skip(Stage::kDecomp);
    opts.set_skip(Stage::kMap);
    opts.stop_after = Stage::kVerify;

    Spec spec;
    spec.name = "combo33";
    spec.stg = bench::make_combo(3, 3);

    Flow flow(opts);
    const FlowReport report = flow.run_spec(std::move(spec));
    if (!report.ok) {
      std::printf("combo(3,3): flow failed in %s: %s\n",
                  stage_name(*report.failed_stage), report.failure.c_str());
      return 1;
    }
    const FlowContext& ctx = flow.context();
    std::printf("combo(3,3): %zu spec states, %zu composite states -> "
                "speed-independent\n",
                ctx.synth_sg->num_states(), ctx.verify->num_states);
    return 0;
  }
}
