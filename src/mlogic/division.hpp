#pragma once
// Algebraic (weak) division and kernel extraction — the classical multi-level
// machinery (Brayton et al., "Multilevel logic synthesis") the paper reuses
// to propose decomposition candidates.

#include <vector>

#include "boolf/cover.hpp"

namespace sitm {

/// Result of dividing F by D: F = D*quotient + remainder (algebraically).
struct Division {
  Cover quotient;
  Cover remainder;
};

/// Algebraic division of `f` by divisor `d` (multi-cube allowed).
/// Returns an empty quotient when `d` does not divide any part of `f`.
Division algebraic_division(const Cover& f, const Cover& d);

/// Algebraic division by a single cube.
Division cube_division(const Cover& f, const Cube& d);

/// Largest cube dividing every cube of `f` (the common cube); the universal
/// cube if `f` is cube-free or empty.
Cube common_cube(const Cover& f);

/// Is `f` cube-free (no literal common to all cubes, more than one cube)?
bool cube_free(const Cover& f);

/// A kernel with its co-kernel.
struct Kernel {
  Cover kernel;
  Cube cokernel;
};

/// All kernels of `f` (level-0 and higher), including `f` itself if it is
/// cube-free.  Standard recursive co-kernel enumeration.
std::vector<Kernel> all_kernels(const Cover& f);

}  // namespace sitm
