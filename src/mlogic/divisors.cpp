#include "mlogic/divisors.hpp"

#include <algorithm>
#include <set>

namespace sitm {

namespace {

/// Canonical key for dedup.
std::vector<Cube> key_of(Cover c) {
  c.make_minimal_wrt_containment();
  c.sort();
  return c.cubes();
}

class Collector {
 public:
  Collector(const Cover& target, const DivisorOptions& opts)
      : target_(target), opts_(opts) {}

  void add(Cover divisor) {
    divisor.make_minimal_wrt_containment();
    divisor.sort();
    if (divisor.empty()) return;
    // Trivial candidates are useless: single literals do not decompose
    // anything (the gate already has the literal), and the full cover is the
    // identity decomposition.
    if (divisor.num_literals() < 2) return;
    if (key_of(divisor) == key_of(target_)) return;
    if (seen_.insert(divisor.cubes()).second)
      out_.push_back(std::move(divisor));
  }

  std::vector<Cover> take() {
    std::stable_sort(out_.begin(), out_.end(),
                     [](const Cover& a, const Cover& b) {
                       return a.num_literals() < b.num_literals();
                     });
    if (out_.size() > opts_.max_candidates) out_.resize(opts_.max_candidates);
    return std::move(out_);
  }

 private:
  const Cover& target_;
  const DivisorOptions& opts_;
  std::set<std::vector<Cube>> seen_;
  std::vector<Cover> out_;
};

/// All AND-decompositions of a cube: subsets of its literals with
/// 2 <= size < num_literals (size-k subsets for k >= 2).
void add_cube_subsets(const Cube& cube, int num_vars, int max_width,
                      Collector& out) {
  std::vector<int> vars;
  for (int v = 0; v < num_vars; ++v)
    if (cube.has_literal(v)) vars.push_back(v);
  const int k = static_cast<int>(vars.size());
  if (k < 3) return;  // a 2-literal cube splits only into trivial literals
  if (k <= max_width) {
    for (unsigned mask = 1; mask < (1u << k); ++mask) {
      const int bits = __builtin_popcount(mask);
      if (bits < 2 || bits >= k) continue;
      Cube sub = Cube::one();
      for (int i = 0; i < k; ++i)
        if (mask & (1u << i))
          sub = sub.with_literal(vars[i], cube.polarity(vars[i]));
      out.add(Cover(num_vars, {sub}));
    }
  } else {
    // Wide cubes: pairs only.
    for (int i = 0; i < k; ++i)
      for (int j = i + 1; j < k; ++j) {
        Cube sub = Cube::one()
                       .with_literal(vars[i], cube.polarity(vars[i]))
                       .with_literal(vars[j], cube.polarity(vars[j]));
        out.add(Cover(num_vars, {sub}));
      }
  }
}

/// All OR-decompositions: subsets of the cover's terms.
void add_term_subsets(const Cover& cover, int max_width, Collector& out) {
  const int t = static_cast<int>(cover.size());
  if (t < 2) return;
  if (t <= max_width) {
    for (unsigned mask = 1; mask < (1u << t); ++mask) {
      const int bits = __builtin_popcount(mask);
      if (bits < 1 || bits >= t) continue;
      Cover sub(cover.num_vars());
      for (int i = 0; i < t; ++i)
        if (mask & (1u << i)) sub.add(cover.cubes()[i]);
      // Single-cube subsets also feed AND-decomposition below; multi-cube
      // subsets are OR gates.
      out.add(std::move(sub));
    }
  } else {
    for (int i = 0; i < t; ++i) {
      out.add(Cover(cover.num_vars(), {cover.cubes()[i]}));
      for (int j = i + 1; j < t; ++j)
        out.add(Cover(cover.num_vars(), {cover.cubes()[i], cover.cubes()[j]}));
    }
  }
}

}  // namespace

std::vector<Cover> generate_divisors(const Cover& cover,
                                     const DivisorOptions& opts) {
  Collector out(cover, opts);

  // Kernels and co-kernels.
  const auto kernels = all_kernels(cover);
  for (const auto& k : kernels) {
    out.add(k.kernel);
    if (!k.cokernel.is_one())
      out.add(Cover(cover.num_vars(), {k.cokernel}));
    if (opts.recursive) {
      // AND/OR decompositions of kernels (sub-kernels are found by the
      // recursive kernel enumeration itself).
      add_term_subsets(k.kernel, opts.max_subset_width, out);
      for (const auto& c : k.kernel.cubes())
        add_cube_subsets(c, cover.num_vars(), opts.max_subset_width, out);
    }
  }

  // OR-decomposition of the cover itself.
  add_term_subsets(cover, opts.max_subset_width, out);

  // AND-decomposition of each cube.
  for (const auto& c : cover.cubes())
    add_cube_subsets(c, cover.num_vars(), opts.max_subset_width, out);

  return out.take();
}

}  // namespace sitm
