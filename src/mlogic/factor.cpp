#include "mlogic/factor.hpp"

#include <algorithm>

#include "mlogic/division.hpp"

namespace sitm {

std::unique_ptr<FactoredForm> FactoredForm::literal(int var, bool positive) {
  auto node = std::make_unique<FactoredForm>();
  node->kind = Kind::kLiteral;
  node->var = var;
  node->positive = positive;
  return node;
}

std::unique_ptr<FactoredForm> FactoredForm::constant(bool one) {
  auto node = std::make_unique<FactoredForm>();
  node->kind = one ? Kind::kOne : Kind::kZero;
  return node;
}

int FactoredForm::num_literals() const {
  switch (kind) {
    case Kind::kLiteral:
      return 1;
    case Kind::kZero:
    case Kind::kOne:
      return 0;
    case Kind::kAnd:
    case Kind::kOr: {
      int n = 0;
      for (const auto& child : children) n += child->num_literals();
      return n;
    }
  }
  return 0;
}

bool FactoredForm::eval(std::uint64_t code) const {
  switch (kind) {
    case Kind::kLiteral:
      return (((code >> var) & 1) != 0) == positive;
    case Kind::kZero:
      return false;
    case Kind::kOne:
      return true;
    case Kind::kAnd:
      for (const auto& child : children)
        if (!child->eval(code)) return false;
      return true;
    case Kind::kOr:
      for (const auto& child : children)
        if (child->eval(code)) return true;
      return false;
  }
  return false;
}

std::string FactoredForm::to_string(
    const std::vector<std::string>& names) const {
  switch (kind) {
    case Kind::kLiteral:
      return names[static_cast<std::size_t>(var)] + (positive ? "" : "'");
    case Kind::kZero:
      return "0";
    case Kind::kOne:
      return "1";
    case Kind::kAnd: {
      std::string out;
      for (const auto& child : children) {
        if (!out.empty()) out += ' ';
        const bool parens = child->kind == Kind::kOr;
        out += parens ? "(" + child->to_string(names) + ")"
                      : child->to_string(names);
      }
      return out;
    }
    case Kind::kOr: {
      std::string out;
      for (const auto& child : children) {
        if (!out.empty()) out += " + ";
        out += child->to_string(names);
      }
      return out;
    }
  }
  return "?";
}

namespace {

std::unique_ptr<FactoredForm> cube_to_form(const Cube& cube) {
  if (cube.is_one()) return FactoredForm::constant(true);
  auto node = std::make_unique<FactoredForm>();
  node->kind = FactoredForm::Kind::kAnd;
  std::uint64_t bits = cube.care;
  while (bits) {
    const int v = __builtin_ctzll(bits);
    bits &= bits - 1;
    node->children.push_back(FactoredForm::literal(v, cube.polarity(v)));
  }
  if (node->children.size() == 1) return std::move(node->children[0]);
  return node;
}

std::unique_ptr<FactoredForm> factor_rec(const Cover& f);

/// AND of two factored sub-results, flattening nested ANDs.
std::unique_ptr<FactoredForm> make_and(std::unique_ptr<FactoredForm> a,
                                       std::unique_ptr<FactoredForm> b) {
  if (a->kind == FactoredForm::Kind::kOne) return b;
  if (b->kind == FactoredForm::Kind::kOne) return a;
  auto node = std::make_unique<FactoredForm>();
  node->kind = FactoredForm::Kind::kAnd;
  auto absorb = [&](std::unique_ptr<FactoredForm> part) {
    if (part->kind == FactoredForm::Kind::kAnd) {
      for (auto& child : part->children)
        node->children.push_back(std::move(child));
    } else {
      node->children.push_back(std::move(part));
    }
  };
  absorb(std::move(a));
  absorb(std::move(b));
  return node;
}

std::unique_ptr<FactoredForm> make_or(std::unique_ptr<FactoredForm> a,
                                      std::unique_ptr<FactoredForm> b) {
  if (a->kind == FactoredForm::Kind::kZero) return b;
  if (b->kind == FactoredForm::Kind::kZero) return a;
  auto node = std::make_unique<FactoredForm>();
  node->kind = FactoredForm::Kind::kOr;
  auto absorb = [&](std::unique_ptr<FactoredForm> part) {
    if (part->kind == FactoredForm::Kind::kOr) {
      for (auto& child : part->children)
        node->children.push_back(std::move(child));
    } else {
      node->children.push_back(std::move(part));
    }
  };
  absorb(std::move(a));
  absorb(std::move(b));
  return node;
}

std::unique_ptr<FactoredForm> factor_rec(const Cover& f) {
  if (f.empty()) return FactoredForm::constant(false);
  if (f.size() == 1) return cube_to_form(f.cubes()[0]);

  // Pull out the common cube first: f = C * (f / C).
  const Cube common = common_cube(f);
  if (!common.is_one()) {
    Cover rest(f.num_vars());
    for (const auto& c : f.cubes()) {
      Cube r = c;
      r.care &= ~common.care;
      r.val &= ~common.care;
      rest.add(r);
    }
    return make_and(cube_to_form(common), factor_rec(rest));
  }

  // Divide by the best kernel (most literal savings).
  const auto kernels = all_kernels(f);
  const Kernel* best = nullptr;
  int best_savings = 0;
  for (const auto& k : kernels) {
    if (k.kernel.size() < 2) continue;
    const Division d = algebraic_division(f, k.kernel);
    if (d.quotient.empty()) continue;
    const int product_cubes =
        static_cast<int>(d.quotient.size() * k.kernel.size());
    const int covered_literals =
        f.num_literals() - d.remainder.num_literals();
    const int factored_cost =
        d.quotient.num_literals() + k.kernel.num_literals();
    const int savings = covered_literals - factored_cost;
    (void)product_cubes;
    if (savings > best_savings) {
      best_savings = savings;
      best = &k;
    }
  }
  if (!best) {
    // No helpful kernel: plain OR of cube forms.
    auto node = FactoredForm::constant(false);
    for (const auto& c : f.cubes())
      node = make_or(std::move(node), cube_to_form(c));
    return node;
  }

  const Division d = algebraic_division(f, best->kernel);
  auto product = make_and(factor_rec(d.quotient), factor_rec(best->kernel));
  if (d.remainder.empty()) return product;
  return make_or(std::move(product), factor_rec(d.remainder));
}

}  // namespace

std::unique_ptr<FactoredForm> quick_factor(const Cover& f) {
  return factor_rec(f);
}

int factored_literals(const Cover& f) { return quick_factor(f)->num_literals(); }

}  // namespace sitm
