#pragma once
// Factored forms: recursive algebraic factoring (SIS quick_factor style).
//
// Factoring rewrites a SOP as a tree of sums and products, e.g.
// ab + ac + db + dc  ->  (a + d)(b + c).  The factored literal count is the
// usual multi-level area estimate; the mapper's published complexity measure
// stays the SOP one (see netlist/gate_complexity), factoring is provided for
// analysis and for the netlist writers.

#include <memory>
#include <string>
#include <vector>

#include "boolf/cover.hpp"

namespace sitm {

/// Node of a factored expression tree.
struct FactoredForm {
  enum class Kind { kLiteral, kAnd, kOr, kZero, kOne };
  Kind kind = Kind::kZero;
  int var = -1;          ///< kLiteral
  bool positive = true;  ///< kLiteral
  std::vector<std::unique_ptr<FactoredForm>> children;  ///< kAnd / kOr

  static std::unique_ptr<FactoredForm> literal(int var, bool positive);
  static std::unique_ptr<FactoredForm> constant(bool one);

  int num_literals() const;
  /// Evaluate on a full assignment.
  bool eval(std::uint64_t code) const;
  /// Render with names, e.g. "(a + d) (b + c)".
  std::string to_string(const std::vector<std::string>& names) const;
};

/// Recursive algebraic factoring: divide by the best kernel (or literal)
/// until no multi-cube divisor remains.  The result is logically equivalent
/// to `f` and never has more literals than the SOP.
std::unique_ptr<FactoredForm> quick_factor(const Cover& f);

/// Literal count of the factored form of `f`.
int factored_literals(const Cover& f);

}  // namespace sitm
