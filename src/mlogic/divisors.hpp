#pragma once
// Divisor candidate generation (paper Section 3.1).
//
// For a monotonous cover c(a*) the paper proposes, as candidate functions f
// for a new decomposition signal:
//   * kernels and co-kernels of c(a*);
//   * OR-decompositions: any subset of terms of the SOP (poly-term covers);
//   * AND-decompositions: any subset of literals of a cube;
//   * recursive decompositions of the above (sub-kernels, AND/OR of kernels),
// heuristically pruned to avoid candidate explosion.

#include <vector>

#include "boolf/cover.hpp"
#include "mlogic/division.hpp"

namespace sitm {

struct DivisorOptions {
  /// Upper bound on emitted candidates (best-first by literal count).
  std::size_t max_candidates = 128;
  /// Max subset enumeration width: subsets are enumerated exhaustively only
  /// when a cube/cover has at most this many literals/terms.
  int max_subset_width = 6;
  /// Also emit recursive decompositions of kernels.
  bool recursive = true;
};

/// Candidate divisors for `cover`, deduplicated, sorted by ascending literal
/// count (cheap gates first), trivial (single-literal / full-cover)
/// candidates excluded.
std::vector<Cover> generate_divisors(const Cover& cover,
                                     const DivisorOptions& opts = {});

}  // namespace sitm
