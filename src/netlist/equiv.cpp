#include "netlist/equiv.hpp"

#include <algorithm>
#include <numeric>
#include <utility>

#include "bdd/bdd.hpp"
#include "bdd/reorder.hpp"
#include "sg/regions.hpp"
#include "util/fault.hpp"

namespace sitm {

namespace {

/// BDD encoding of SG state codes and SOP covers under a (possibly sifted)
/// variable order: signal v lives at BDD variable level[v].  Conjunctions
/// are built from the deepest level upward so every intermediate AND is a
/// single node creation.
class Encoder {
 public:
  Encoder(BddManager& mgr, std::vector<int> level, const RunGuard* guard)
      : mgr_(mgr), level_(std::move(level)), guard_(guard) {
    by_depth_.resize(level_.size());
    std::iota(by_depth_.begin(), by_depth_.end(), 0);
    std::sort(by_depth_.begin(), by_depth_.end(),
              [&](int a, int b) { return level_[a] > level_[b]; });
  }

  int level_of(int var) const { return level_[static_cast<std::size_t>(var)]; }

  BddRef minterm(std::uint64_t code) {
    BddRef t = BddManager::kTrue;
    for (const int v : by_depth_)
      t = mgr_.bdd_and(mgr_.literal(level_of(v), (code >> v) & 1u), t);
    return t;
  }

  /// OR of the minterms of every distinct code of `states`.
  BddRef states(const StateGraph& sg, const DynBitset& set) {
    std::vector<std::uint64_t> codes;
    codes.reserve(set.count());
    set.for_each([&](std::size_t s) {
      codes.push_back(sg.code(static_cast<StateId>(s)));
    });
    std::sort(codes.begin(), codes.end());
    codes.erase(std::unique(codes.begin(), codes.end()), codes.end());
    BddRef r = BddManager::kFalse;
    for (const std::uint64_t code : codes) {
      guard_charge(guard_, 1, "check.state");
      r = mgr_.bdd_or(r, minterm(code));
    }
    return r;
  }

  BddRef cover(const Cover& c) {
    BddRef f = BddManager::kFalse;
    for (const Cube& cube : c.cubes()) {
      guard_charge(guard_, 1, "check.gate");
      BddRef t = BddManager::kTrue;
      for (const int v : by_depth_)
        if (cube.has_literal(v))
          t = mgr_.bdd_and(mgr_.literal(level_of(v), cube.polarity(v)), t);
      f = mgr_.bdd_or(f, t);
    }
    return f;
  }

  /// Map a satisfying assignment over BDD variables back to a state code.
  std::uint64_t decode(std::uint64_t assignment) const {
    std::uint64_t code = 0;
    for (std::size_t v = 0; v < level_.size(); ++v)
      code |= ((assignment >> level_[v]) & 1u) << v;
    return code;
  }

 private:
  BddManager& mgr_;
  std::vector<int> level_;        ///< signal -> BDD variable
  std::vector<int> by_depth_;     ///< signals, deepest BDD level first
  const RunGuard* guard_;
};

/// First state of `among` carrying `code` (the witness a human replays).
StateId state_with_code(const StateGraph& sg, const DynBitset& among,
                        std::uint64_t code) {
  StateId found = kNoState;
  among.for_each([&](std::size_t s) {
    if (found == kNoState && sg.code(static_cast<StateId>(s)) == code)
      found = static_cast<StateId>(s);
  });
  return found;
}

struct NetworkSpec {
  const char* network;  ///< "complete" | "set" | "reset"
  const Cover* cover;
  DynBitset on;   ///< states where the network must be 1
  DynBitset off;  ///< states where the network must be 0
  std::vector<Region> regions;  ///< sequential only: zones for condition 3
};

}  // namespace

std::string EquivReport::first_failure() const {
  if (failures.empty()) return {};
  return "equiv: " + failures.front().why;
}

Json EquivReport::to_json() const {
  Json j = Json::object();
  j.set("ok", ok);
  j.set("gates_checked", gates_checked);
  j.set("gates_proven", gates_proven);
  j.set("reach_states", static_cast<double>(reach_states));
  j.set("reach_bdd_size", static_cast<double>(reach_bdd_size));
  j.set("bdd_nodes", static_cast<double>(bdd_nodes));
  j.set("reordered", reordered);
  if (reordered) {
    j.set("reorder_size_before", static_cast<double>(reorder_size_before));
    j.set("reorder_size_after", static_cast<double>(reorder_size_after));
  }
  Json fs = Json::array();
  for (const GateVerdict& f : failures) {
    Json fj = Json::object();
    fj.set("signal", f.name);
    fj.set("network", f.network);
    fj.set("why", f.why);
    if (f.counterexample_state != kNoState) {
      fj.set("counterexample_state", static_cast<double>(f.counterexample_state));
      fj.set("counterexample_code", static_cast<double>(f.counterexample_code));
    }
    fs.push(std::move(fj));
  }
  j.set("failures", std::move(fs));
  return j;
}

EquivReport check_equivalence(const Netlist& netlist, const CheckOptions& opts,
                              const RunGuard* guard) {
  const StateGraph& sg = netlist.sg();
  const int n = sg.num_signals();
  EquivReport rep;
  BddManager mgr(n);
  const DynBitset reachable = sg.reachable();

  std::vector<int> level(static_cast<std::size_t>(n));
  std::iota(level.begin(), level.end(), 0);
  BddRef reach;
  {
    Encoder identity(mgr, level, guard);
    reach = identity.states(sg, reachable);
  }
  {
    std::vector<std::uint64_t> codes;
    reachable.for_each(
        [&](std::size_t s) { codes.push_back(sg.code(static_cast<StateId>(s))); });
    std::sort(codes.begin(), codes.end());
    codes.erase(std::unique(codes.begin(), codes.end()), codes.end());
    rep.reach_states = codes.size();
  }

  if (opts.reorder && n > 1) {
    const SiftResult sift =
        sift_order(mgr, reach, std::max(1, opts.reorder_rounds));
    rep.reordered = true;
    rep.reorder_size_before = sift.size_before;
    rep.reorder_size_after = sift.size_after;
    reach = permute(mgr, reach, sift.perm);
    level = sift.perm;
  }
  rep.reach_bdd_size = mgr.dag_size(reach);
  Encoder enc(mgr, level, guard);

  auto fail = [&](const SignalImpl& impl, const char* network,
                  std::string why, std::uint64_t code, StateId state) {
    GateVerdict v;
    v.signal = impl.signal;
    v.name = impl.signal >= 0 && impl.signal < n
                 ? sg.signal(impl.signal).name
                 : "<signal " + std::to_string(impl.signal) + ">";
    v.network = network;
    v.proven = false;
    v.why = std::move(why);
    v.counterexample_code = code;
    v.counterexample_state = state;
    rep.failures.push_back(std::move(v));
    rep.ok = false;
  };

  const std::uint64_t declared =
      n >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << n) - 1;

  for (const SignalImpl& impl : netlist.impls()) {
    fault::hit("check.gate");
    guard_check(guard, "check.gate");
    if (impl.signal < 0 || impl.signal >= n ||
        ((impl.set.support() | impl.reset.support()) & ~declared)) {
      rep.gates_checked += 1;
      fail(impl, impl.combinational ? "complete" : "set",
           "implementation of signal index " + std::to_string(impl.signal) +
               " is structurally invalid (see nlint)",
           0, kNoState);
      continue;
    }
    const std::string& name = sg.signal(impl.signal).name;

    std::vector<NetworkSpec> specs;
    if (impl.combinational) {
      // Spec: the next-state function itself.  CSC makes it code-consistent,
      // so on/off partition the reachable codes exactly.
      NetworkSpec s;
      s.network = "complete";
      s.cover = &impl.set;
      s.on = sg.empty_set();
      reachable.for_each([&](std::size_t u) {
        if (next_value(sg, static_cast<StateId>(u), impl.signal))
          s.on.set(u);
      });
      s.off = reachable - s.on;
      specs.push_back(std::move(s));
    } else {
      // Spec: the monotonous cover conditions against ER/QR of each edge.
      for (const bool rising : {true, false}) {
        NetworkSpec s;
        s.network = rising ? "set" : "reset";
        s.cover = rising ? &impl.set : &impl.reset;
        s.regions = excitation_regions(sg, Event{impl.signal, rising});
        s.on = union_er(sg, s.regions);
        const DynBitset dc = union_qr(sg, s.regions);
        s.off = reachable - s.on - dc;
        specs.push_back(std::move(s));
      }
    }

    for (const NetworkSpec& s : specs) {
      rep.gates_checked += 1;
      const BddRef gate = enc.cover(*s.cover);
      const BddRef on_b = enc.states(sg, s.on);
      const BddRef off_b = enc.states(sg, s.off);
      bool proven = true;

      // Condition 1: the network covers its whole on-space.
      if (const BddRef miss = mgr.bdd_and(on_b, mgr.bdd_not(gate));
          miss != BddManager::kFalse) {
        std::uint64_t assignment = 0;
        mgr.pick_one(miss, &assignment);
        const std::uint64_t code = enc.decode(assignment);
        const StateId witness = state_with_code(sg, s.on, code);
        fail(impl, s.network,
             std::string(s.network) + " network of '" + name + "' is 0 in " +
                 (witness != kNoState ? "state " + sg.code_string(witness)
                                      : "a state") +
                 " where the specification requires 1",
             code, witness);
        proven = false;
      }
      // Condition 2: the network is 0 on the must-off space (built from the
      // explicit off-state codes; a code shared with a quiescent state is
      // hard-off, exactly as minimize_onoff treats it).
      if (const BddRef fight = mgr.bdd_and(gate, off_b);
          proven && fight != BddManager::kFalse) {
        std::uint64_t assignment = 0;
        mgr.pick_one(fight, &assignment);
        const std::uint64_t code = enc.decode(assignment);
        fail(impl, s.network,
             std::string(s.network) + " network of '" + name +
                 "' is 1 in an off state where the specification requires 0",
             code, state_with_code(sg, s.off, code));
        proven = false;
      }
      // Condition 3 (sequential only): no 0->1 rise within an ER∪QR zone —
      // the same arc scan as monotonous_cover's repair loop.
      if (proven && !s.regions.empty()) {
        for (const Region& region : s.regions) {
          if (!proven) break;
          DynBitset zone = region.er | region.qr;
          zone.for_each([&](std::size_t u) {
            if (!proven) return;
            guard_charge(guard, 1, "check.state");
            if (s.cover->eval(sg.code(static_cast<StateId>(u)))) return;
            for (const auto& edge : sg.succs(static_cast<StateId>(u))) {
              if (!zone.test(edge.target)) continue;
              if (!s.cover->eval(sg.code(edge.target))) continue;
              fail(impl, s.network,
                   std::string(s.network) + " network of '" + name +
                       "' rises 0->1 inside an ER∪QR zone (state " +
                       sg.code_string(edge.target) +
                       "): non-monotonous cover",
                   sg.code(edge.target), edge.target);
              proven = false;
              return;
            }
          });
        }
      }
      if (proven) rep.gates_proven += 1;
    }
  }

  rep.bdd_nodes = mgr.num_nodes();
  return rep;
}

// ----- mutation harness ---------------------------------------------------

const char* netlist_mutation_name(NetlistMutation m) {
  switch (m) {
    case NetlistMutation::kFlipLiteral: return "flip-literal";
    case NetlistMutation::kDropCube: return "drop-cube";
    case NetlistMutation::kSwapSetReset: return "swap-set-reset";
  }
  return "?";
}

bool parse_netlist_mutation(const std::string& name, NetlistMutation* out) {
  for (const NetlistMutation m :
       {NetlistMutation::kFlipLiteral, NetlistMutation::kDropCube,
        NetlistMutation::kSwapSetReset}) {
    if (name == netlist_mutation_name(m)) {
      *out = m;
      return true;
    }
  }
  return false;
}

bool mutate_netlist(Netlist& netlist, NetlistMutation m, int which) {
  if (which < 0) return false;
  int site = 0;
  for (SignalImpl& impl : netlist.impls()) {
    std::vector<Cover*> covers;
    covers.push_back(&impl.set);
    if (!impl.combinational) covers.push_back(&impl.reset);
    switch (m) {
      case NetlistMutation::kFlipLiteral:
        for (Cover* cover : covers) {
          for (Cube& cube : cover->cubes()) {
            for (int v = 0; v < 64; ++v) {
              if (!cube.has_literal(v)) continue;
              if (site++ == which) {
                cube = cube.with_literal(v, !cube.polarity(v));
                return true;
              }
            }
          }
        }
        break;
      case NetlistMutation::kDropCube:
        // Only multi-cube SOPs: dropping the last cube makes an *empty*
        // network, which is nlint's kEmptyNetwork finding, not an
        // equivalence counterexample.  Minimized covers are irredundant,
        // so every remaining drop uncovers some essential on-state.
        for (Cover* cover : covers) {
          if (cover->size() < 2) continue;
          for (std::size_t i = 0; i < cover->size(); ++i) {
            if (site++ == which) {
              cover->cubes().erase(cover->cubes().begin() +
                                   static_cast<std::ptrdiff_t>(i));
              return true;
            }
          }
        }
        break;
      case NetlistMutation::kSwapSetReset:
        if (impl.combinational) break;
        if (site++ == which) {
          std::swap(impl.set, impl.reset);
          std::swap(impl.set_complexity, impl.reset_complexity);
          return true;
        }
        break;
    }
  }
  return false;
}

}  // namespace sitm
