#pragma once
// Non-speed-independence-preserving decomposition into 2-input gates —
// the baseline of Table 1's "non-SI" cost column (SIS `tech_decomp -a 2`).
//
// Every SOP gate is replaced by a tree of 2-input AND gates per cube and a
// tree of 2-input OR gates across cubes (input inversions are free, as in
// the paper's literal model).  A k-literal SOP therefore costs 2*(k-1)
// literals after decomposition.  C elements are kept as they are.
//
// The result is generally NOT hazard-free under the unbounded gate delay
// model; it serves purely as the area baseline.

#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace sitm {

/// One 2-input gate of the decomposed network.
struct SimpleGate {
  enum class Op { kAnd, kOr, kBuf } op = Op::kBuf;
  std::string out;
  /// Input net names; leading '!' marks an inverted input (free inversion).
  std::string in0, in1;
};

struct TechDecompResult {
  std::vector<SimpleGate> gates;
  int literals = 0;     ///< 2 per 2-input gate
  int c_elements = 0;   ///< unchanged from the source netlist
};

/// Decompose all SOP gates of `netlist` into 2-input AND/OR gates.
TechDecompResult tech_decomp2(const Netlist& netlist);

/// Closed-form literal cost of decomposing one SOP into 2-input gates.
int tech_decomp2_literals(const Cover& sop);

}  // namespace sitm
