#pragma once
// Static analysis of standard-C netlists — the output-side counterpart of
// `sitm lint` (src/stg/lint.hpp).
//
// Where the STG linter rejects malformed *specifications* before state-graph
// construction, nlint rejects malformed *implementations* before the (much
// more expensive) BDD equivalence proof and token-game SI verification run.
// All rules are structural: linear scans over the SignalImpl list, the state
// graph and (optionally) the tech-decomposed 2-input network, no symbolic
// reasoning.  The exact reachable-space statements (gate ≡ excitation
// function) belong to the BDD checker in netlist/equiv.hpp.

#include <string>
#include <vector>

#include "netlist/netlist.hpp"
#include "netlist/tech_decomp.hpp"
#include "util/json.hpp"

namespace sitm {

/// The structural rules, in evaluation order.
enum class NlintRule : int {
  kMissingImpl = 0,    ///< non-input signal with no (or duplicate) driver
  kBadReference,       ///< gate input is an input-only drive target or out of
                       ///< range of the SG's signals
  kEmptyNetwork,       ///< sequential signal whose set or reset SOP is empty
  kDriveFight,         ///< set and reset cubes share a minterm (gC drive fight)
  kIncompleteCover,    ///< combinational cover misses a reachable on-state
  kFaninLimit,         ///< gC fanin above NlintOptions::max_gc_fanin
  kUnusedWire,         ///< decomposed gate output consumed by nothing
  kDuplicateGate,      ///< decomposed gates identical up to operand order
};
inline constexpr int kNumNlintRules = 8;

const char* nlint_rule_name(NlintRule rule);

enum class NlintSeverity : std::uint8_t { kError, kWarning };

const char* nlint_severity_name(NlintSeverity severity);

struct NlintDiagnostic {
  NlintRule rule;
  NlintSeverity severity;
  std::string subject;  ///< signal or wire the diagnostic is about
  std::string message;
};

struct NlintReport {
  std::vector<NlintDiagnostic> diagnostics;
  int errors = 0;
  int warnings = 0;
  int rules_run = 0;  ///< rules actually evaluated (decomp rules need a net)

  /// No errors (warnings permitted) — the netlist may proceed to the
  /// equivalence checker.
  bool ok() const { return errors == 0; }
  bool clean() const { return diagnostics.empty(); }
  bool has(NlintRule rule) const;
  /// Message of the first error, prefixed "nlint: "; empty when ok().
  std::string first_error() const;

  void add(NlintRule rule, NlintSeverity severity, std::string subject,
           std::string message);

  Json to_json() const;
};

struct NlintOptions {
  /// Warn when a gC implementation's distinct fanin signal count exceeds
  /// this (0 disables the rule).  Real gC libraries top out well below the
  /// SG's 64-signal ceiling; the default matches the largest cell the
  /// built-in sitm_gc library family is meant to model.
  int max_gc_fanin = 16;
};

/// Run every applicable rule.  `decomp` may be null, in which case the
/// post-tech_decomp wire rules (kUnusedWire / kDuplicateGate) are skipped
/// and rules_run reflects that.
NlintReport nlint_netlist(const Netlist& netlist,
                          const TechDecompResult* decomp = nullptr,
                          const NlintOptions& opts = {});

}  // namespace sitm
