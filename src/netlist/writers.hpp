#pragma once
// Netlist writers: structural Verilog and an EQN-style equation file.
//
// The Verilog writer emits one module with
//   * an `assign` per combinational (complete cover) signal,
//   * a generalized C element instance (behavioural `sitm_gc` primitive,
//     emitted alongside) per sequential signal, fed by the set/reset SOP
//     networks.
// This matches the standard-C architecture of the paper's Figure 2; the SOP
// gates are written in factored form for readability (the logic is
// equivalent to the covers).

#include <iosfwd>
#include <string>

#include "netlist/netlist.hpp"

namespace sitm {

/// Structural Verilog of the standard-C netlist.
void write_verilog(std::ostream& out, const Netlist& netlist,
                   const std::string& module_name = "sitm_circuit");
std::string write_verilog_string(const Netlist& netlist,
                                 const std::string& module_name = "sitm_circuit");

/// SIS-style .eqn equations: one line per gate/C element.
void write_eqn(std::ostream& out, const Netlist& netlist,
               const std::string& model_name = "sitm_circuit");
std::string write_eqn_string(const Netlist& netlist,
                             const std::string& model_name = "sitm_circuit");

}  // namespace sitm
