#include "netlist/netlist.hpp"

#include <algorithm>

namespace sitm {

int gate_complexity(const Cover& sop, const std::optional<Cover>& complement) {
  const int direct = sop.num_literals();
  Cover comp = complement ? *complement : sop.complement();
  comp.merge_adjacent();
  const int inverted = comp.num_literals();
  // Constant gates have complexity 0 either way.
  if (sop.empty() || comp.empty()) return 0;
  return std::min(direct, inverted);
}

const SignalImpl* Netlist::impl_of(int signal) const {
  for (const auto& impl : impls_)
    if (impl.signal == signal) return &impl;
  return nullptr;
}

namespace {
int set_gc(const SignalImpl& impl) {
  return impl.set_complexity >= 0 ? impl.set_complexity
                                  : gate_complexity(impl.set);
}
int reset_gc(const SignalImpl& impl) {
  return impl.reset_complexity >= 0 ? impl.reset_complexity
                                    : gate_complexity(impl.reset);
}
}  // namespace

int Netlist::num_c_elements() const {
  int n = 0;
  for (const auto& impl : impls_)
    if (!impl.combinational) ++n;
  return n;
}

int Netlist::total_literals() const {
  int n = 0;
  for (const auto& impl : impls_) {
    if (impl.combinational) {
      n += set_gc(impl);
    } else {
      n += set_gc(impl) + reset_gc(impl);
    }
  }
  return n;
}

std::vector<int> Netlist::complexity_histogram() const {
  std::vector<int> hist;
  auto bump = [&](int c) {
    if (c >= static_cast<int>(hist.size())) hist.resize(c + 1, 0);
    ++hist[c];
  };
  for (const auto& impl : impls_) {
    bump(set_gc(impl));
    if (!impl.combinational) bump(reset_gc(impl));
  }
  return hist;
}

int Netlist::max_gate_complexity() const {
  int best = 0;
  for (const auto& impl : impls_) {
    best = std::max(best, set_gc(impl));
    if (!impl.combinational) best = std::max(best, reset_gc(impl));
  }
  return best;
}

std::string Netlist::to_string() const {
  std::vector<std::string> names;
  names.reserve(sg_->num_signals());
  for (const auto& sig : sg_->signals()) names.push_back(sig.name);

  std::string out;
  for (const auto& impl : impls_) {
    const auto& name = sg_->signal(impl.signal).name;
    if (impl.combinational) {
      out += name + " = " + impl.set.to_string(names) + "\n";
    } else {
      out += name + " = C(set: " + impl.set.to_string(names) +
             ", reset: " + impl.reset.to_string(names) + ")\n";
    }
  }
  return out;
}

}  // namespace sitm
