#include "netlist/tech_decomp.hpp"

#include <algorithm>

namespace sitm {

int tech_decomp2_literals(const Cover& sop) {
  const int lits = sop.num_literals();
  if (lits <= 1) return lits;  // wire / single literal: free
  // Balanced trees: sum(2*(k_i - 1)) AND literals + 2*(t-1) OR literals
  // = 2*(total_literals - 1).
  return 2 * (lits - 1);
}

namespace {

/// Emit a balanced 2-input tree combining `terms` with operator `op`;
/// returns the name of the root net.
std::string emit_tree(std::vector<std::string> terms, SimpleGate::Op op,
                      const std::string& prefix, int* counter,
                      std::vector<SimpleGate>& gates) {
  while (terms.size() > 1) {
    std::vector<std::string> next;
    for (std::size_t i = 0; i + 1 < terms.size(); i += 2) {
      std::string out = prefix + std::to_string((*counter)++);
      gates.push_back(SimpleGate{op, out, terms[i], terms[i + 1]});
      next.push_back(std::move(out));
    }
    if (terms.size() % 2 == 1) next.push_back(terms.back());
    terms = std::move(next);
  }
  return terms.empty() ? std::string{} : terms[0];
}

}  // namespace

TechDecompResult tech_decomp2(const Netlist& netlist) {
  TechDecompResult out;
  const auto& sg = netlist.sg();
  std::vector<std::string> names;
  for (const auto& sig : sg.signals()) names.push_back(sig.name);

  int counter = 0;
  auto decompose_sop = [&](const Cover& sop, const std::string& root) {
    std::vector<std::string> cube_nets;
    for (const auto& cube : sop.cubes()) {
      std::vector<std::string> lits;
      for (int v = 0; v < sop.num_vars(); ++v) {
        if (!cube.has_literal(v)) continue;
        lits.push_back((cube.polarity(v) ? "" : "!") + names[v]);
      }
      if (lits.empty()) lits.push_back("1");
      cube_nets.push_back(emit_tree(std::move(lits), SimpleGate::Op::kAnd,
                                    root + "_and", &counter, out.gates));
    }
    const std::string top = emit_tree(std::move(cube_nets), SimpleGate::Op::kOr,
                                      root + "_or", &counter, out.gates);
    if (!top.empty() && top != root)
      out.gates.push_back(SimpleGate{SimpleGate::Op::kBuf, root, top, {}});
    out.literals += tech_decomp2_literals(sop);
  };

  for (const auto& impl : netlist.impls()) {
    const auto& name = sg.signal(impl.signal).name;
    if (impl.combinational) {
      decompose_sop(impl.set, name);
    } else {
      decompose_sop(impl.set, name + "_set");
      decompose_sop(impl.reset, name + "_reset");
      ++out.c_elements;
    }
  }
  return out;
}

}  // namespace sitm
