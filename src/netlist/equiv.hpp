#pragma once
// BDD-based formal equivalence of synthesized netlists against the SG.
//
// The paper's correctness claim for the standard-C architecture is local
// and per-gate: over the *reachable* states, each combinational gate equals
// the signal's next-state function, and each set/reset network is 1 on the
// corresponding excitation region, 0 on the must-off space, and free of
// 0->1 rises inside its ER∪QR zones (the monotonous cover conditions of
// Section 3).  `check_equivalence` proves exactly that statement with the
// ROBDD package:
//
//   reach := OR of the reachable state-code minterms
//   prove  reach ⇒ (gate ≡ spec)   per gate, per network
//
// The reachable set is built from the explicit SG codes rather than the
// STG-level `symbolic_reachability`: gates speak SG *signal* variables,
// and the post-CSC graph contains inserted signals that do not exist as
// STG places, so the place-variable BDD cannot be compared against covers
// directly.  Don't-cares are handled by restriction to `reach`; the
// off-space of a sequential network is built from the explicit off-state
// codes (NOT as a complement), mirroring `minimize_onoff`'s treatment of a
// code shared by a quiescent and an off state as hard-off.
//
// On mismatch the checker extracts a satisfying assignment of the
// violation BDD (`pick_one`) and maps it back to a concrete reachable
// StateId — the counterexample a human can replay on the SG.
//
// `CheckOptions::reorder` routes every BDD through the sifted variable
// order of `src/bdd/reorder.*` (the reachable set is sifted once, covers
// and minterms are then encoded directly in the permuted order); verdicts
// are order-independent by construction and pinned so by tests.

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"
#include "netlist/nlint.hpp"
#include "util/json.hpp"
#include "util/run_guard.hpp"

namespace sitm {

struct CheckOptions {
  NlintOptions nlint;
  /// Sift the BDD variable order on the reachable-set BDD before encoding
  /// the per-gate proofs (src/bdd/reorder.hpp).
  bool reorder = false;
  /// Outer rounds of the sifting search when `reorder` is set.
  int reorder_rounds = 2;
};

/// Verdict for one SOP network (a combinational gate, or one side of a gC).
struct GateVerdict {
  int signal = -1;
  std::string name;            ///< signal name
  std::string network;         ///< "complete" | "set" | "reset"
  bool proven = false;
  std::string why;             ///< empty when proven
  /// Counterexample on mismatch: the state code and a reachable state
  /// carrying it (kNoState when the violation is not state-addressable,
  /// e.g. a structurally broken impl).
  std::uint64_t counterexample_code = 0;
  StateId counterexample_state = kNoState;
};

struct EquivReport {
  bool ok = true;
  int gates_checked = 0;   ///< SOP networks examined
  int gates_proven = 0;
  std::vector<GateVerdict> failures;
  std::size_t reach_states = 0;    ///< distinct reachable state codes
  std::size_t reach_bdd_size = 0;  ///< DAG size of the reachable-set BDD
  std::size_t bdd_nodes = 0;       ///< manager node count after the proof
  bool reordered = false;
  std::size_t reorder_size_before = 0;
  std::size_t reorder_size_after = 0;

  /// Message of the first failed verdict, prefixed "equiv: "; empty if ok.
  std::string first_failure() const;

  Json to_json() const;
};

/// Prove every gate of `netlist` equivalent to its excitation/next-state
/// specification over the reachable states.  Charges `guard` (nullptr =
/// unbounded) per encoded state and per gate at the "check.state" /
/// "check.gate" sites.
EquivReport check_equivalence(const Netlist& netlist,
                              const CheckOptions& opts = {},
                              const RunGuard* guard = nullptr);

// ----- mutation harness ---------------------------------------------------
// Deterministic netlist corruption for the mutation tests and the
// `sitm check --mutate` self-test: each kind enumerates its applicable
// sites in a fixed order and `which` selects one.

enum class NetlistMutation : int {
  kFlipLiteral = 0,  ///< flip the polarity of one SOP literal
  kDropCube,         ///< erase one cube from a multi-cube SOP
  kSwapSetReset,     ///< swap the set and reset networks of one gC
};

const char* netlist_mutation_name(NetlistMutation m);
/// Parse "flip-literal" / "drop-cube" / "swap-set-reset"; false on unknown.
bool parse_netlist_mutation(const std::string& name, NetlistMutation* out);

/// Apply the `which`-th site of mutation `m` to `netlist` in place.
/// Returns false (netlist untouched) when `which` is past the last site —
/// callers iterate `which = 0, 1, ...` until it fails to exhaust all
/// mutants of a kind.
bool mutate_netlist(Netlist& netlist, NetlistMutation m, int which = 0);

}  // namespace sitm
