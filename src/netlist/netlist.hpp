#pragma once
// Gate-level netlists in the standard-C architecture (paper Figure 2).
//
// Every non-input signal is implemented either
//   * combinationally: one SOP gate computing the signal (complete cover,
//     the C element degenerates to a wire), or
//   * sequentially: two first-level SOP gates (set and reset networks)
//     feeding a C element.
//
// SOP gate functions are expressed over SG signal indices.  The "complexity"
// of a gate is the paper's literal measure: the minimum of the literal
// counts of the SOP of the function and of its complement.

#include <optional>
#include <string>
#include <vector>

#include "boolf/cover.hpp"
#include "sg/state_graph.hpp"

namespace sitm {

/// Implementation of one non-input signal.
struct SignalImpl {
  int signal = -1;
  bool combinational = false;
  Cover set;    ///< set network (or the complete cover when combinational)
  Cover reset;  ///< reset network (unused when combinational)
  /// Gate complexities as computed by the synthesizer (which minimizes the
  /// complemented form against the full don't-care space); -1 = derive
  /// exactly from the cover.
  int set_complexity = -1;
  int reset_complexity = -1;
  /// Literal complexity of the whole implementation as published: the
  /// combinational gate, or max over the set/reset gates.
  int complexity = 0;

  /// Structural equality (same covers, complexities, architecture).
  bool operator==(const SignalImpl&) const = default;
};

/// The paper's gate complexity measure: min(literals(sop), literals(sop of
/// complement)), where the complement is minimized with the same don't-care
/// space.  `complement` may be omitted, in which case it is derived exactly.
int gate_complexity(const Cover& sop,
                    const std::optional<Cover>& complement = std::nullopt);

/// A standard-C architecture netlist for a State Graph.
class Netlist {
 public:
  explicit Netlist(const StateGraph* sg) : sg_(sg) {}

  const StateGraph& sg() const { return *sg_; }

  void add_impl(SignalImpl impl) { impls_.push_back(std::move(impl)); }
  const std::vector<SignalImpl>& impls() const { return impls_; }
  /// Mutable access — the mutation harness of netlist/equiv.hpp corrupts
  /// implementations in place to exercise the checker.
  std::vector<SignalImpl>& impls() { return impls_; }
  const SignalImpl* impl_of(int signal) const;

  /// Number of C elements (non-combinational signals).
  int num_c_elements() const;
  /// Total literals over all SOP gates (paper's cost, excluding C elements).
  int total_literals() const;
  /// Histogram of gate complexities: hist[n] = number of SOP gates whose
  /// complexity is n (combinational gates count once; sequential signals
  /// contribute their set and reset gates separately).
  std::vector<int> complexity_histogram() const;
  /// Largest gate complexity in the netlist.
  int max_gate_complexity() const;

  /// Structural equality of the implementations (the SGs may be distinct
  /// objects) — bit-identity across serial and parallel synthesis.
  bool same_impls(const Netlist& other) const {
    return impls_ == other.impls_;
  }

  /// Pretty printer ("a = C(set = ..., reset = ...)").
  std::string to_string() const;

 private:
  const StateGraph* sg_;
  std::vector<SignalImpl> impls_;
};

}  // namespace sitm
