#include "netlist/si_verify.hpp"

#include <vector>

#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/flat_map.hpp"
#include "util/text.hpp"

namespace sitm {

namespace {

/// One delay element of the closed system.
struct Element {
  enum class Kind { kInput, kSetNet, kResetNet, kCOut, kCombOut } kind;
  int signal = -1;      ///< SG signal (all kinds except pure nets use it)
  int impl_index = -1;  ///< index into netlist.impls() for net/output kinds
};

struct Composite {
  StateId q = kNoState;  ///< specification state
  std::uint64_t nets = 0;  ///< bit 2*i = set-net value, 2*i+1 = reset-net
                           ///< value of sequential impl i
  bool operator==(const Composite&) const = default;
};

/// Hash for the open-addressed visited set (the exploration's inner loop;
/// an ordered map spent most of the verification in node allocation).
struct CompositeHash {
  std::uint64_t operator()(const Composite& c) const {
    return hash_mix(hash_mix(static_cast<std::uint64_t>(
                        static_cast<std::uint32_t>(c.q))) ^
                    c.nets);
  }
};

}  // namespace

SiVerifyResult verify_speed_independence(const Netlist& netlist,
                                         std::size_t max_states,
                                         const RunGuard* guard) {
  const StateGraph& sg = netlist.sg();
  const auto& impls = netlist.impls();

  // Every non-input signal must have an implementation.
  for (int s : sg.noninput_signals())
    if (!netlist.impl_of(s))
      return SiVerifyResult{false,
                            "signal " + sg.signal(s).name + " unimplemented",
                            0};
  if (impls.size() > 32) throw Error("si_verify: more than 32 implementations");

  // Element universe.
  std::vector<Element> elements;
  for (int s : sg.input_signals())
    elements.push_back(Element{Element::Kind::kInput, s, -1});
  for (std::size_t i = 0; i < impls.size(); ++i) {
    if (impls[i].combinational) {
      elements.push_back(
          Element{Element::Kind::kCombOut, impls[i].signal, static_cast<int>(i)});
    } else {
      elements.push_back(
          Element{Element::Kind::kSetNet, impls[i].signal, static_cast<int>(i)});
      elements.push_back(Element{Element::Kind::kResetNet, impls[i].signal,
                                 static_cast<int>(i)});
      elements.push_back(
          Element{Element::Kind::kCOut, impls[i].signal, static_cast<int>(i)});
    }
  }

  auto net_bit = [](int impl_index, bool reset) {
    return std::uint64_t{1} << (2 * impl_index + (reset ? 1 : 0));
  };

  // Excitation of an element in a composite state.  For inputs the possible
  // transitions are given by the specification.
  auto excited = [&](const Element& e, const Composite& c) -> bool {
    const StateCode code = sg.code(c.q);
    switch (e.kind) {
      case Element::Kind::kInput:
        return sg.enabled(c.q, Event{e.signal, true}) ||
               sg.enabled(c.q, Event{e.signal, false});
      case Element::Kind::kSetNet: {
        const bool now = (c.nets & net_bit(e.impl_index, false)) != 0;
        return impls[e.impl_index].set.eval(code) != now;
      }
      case Element::Kind::kResetNet: {
        const bool now = (c.nets & net_bit(e.impl_index, true)) != 0;
        return impls[e.impl_index].reset.eval(code) != now;
      }
      case Element::Kind::kCOut: {
        // Muller C element out = C(S, ~R): rises when S=1,R=0; falls when
        // S=0,R=1; holds otherwise (S=R=1 transients are legal holds).
        const bool set = (c.nets & net_bit(e.impl_index, false)) != 0;
        const bool reset = (c.nets & net_bit(e.impl_index, true)) != 0;
        const bool value = sg.value(c.q, e.signal);
        return (set && !reset && !value) || (reset && !set && value);
      }
      case Element::Kind::kCombOut:
        return impls[e.impl_index].set.eval(code) != sg.value(c.q, e.signal);
    }
    return false;
  };

  SiVerifyResult result;
  FlatMap<Composite, char, CompositeHash> seen;

  // Initial composite state: spec initial state, S/R nets settled.
  Composite init{sg.initial(), 0};
  {
    const StateCode code = sg.code(init.q);
    for (std::size_t i = 0; i < impls.size(); ++i) {
      if (impls[i].combinational) continue;
      if (impls[i].set.eval(code)) init.nets |= net_bit(static_cast<int>(i), false);
      if (impls[i].reset.eval(code)) init.nets |= net_bit(static_cast<int>(i), true);
    }
  }

  std::vector<Composite> queue{init};
  seen.emplace(init, 0);

  auto fail = [&](std::string why) {
    result.ok = false;
    result.why = std::move(why);
  };
  auto stop_unverified = [&](GuardStop stop, std::string why) {
    result.ok = false;
    result.unverified = true;
    result.stopped = stop;
    result.why = std::move(why);
  };

  while (!queue.empty() && result.ok) {
    const Composite c = queue.back();
    queue.pop_back();
    // A guard trip (or an injected one) is "ran out of budget", not "found
    // a hazard": surface it as an unverified result, never an exception.
    try {
      fault::hit("verify.state");
      guard_charge(guard, 1, "verify.state");
    } catch (const GuardExhausted& e) {
      stop_unverified(e.kind(), e.what());
      break;
    }

    // Successors: fire every excited element in turn.
    std::vector<std::pair<const Element*, Composite>> successors;
    for (const auto& e : elements) {
      if (!excited(e, c)) continue;
      switch (e.kind) {
        case Element::Kind::kInput: {
          for (bool rising : {true, false}) {
            const StateId q2 = sg.successor(c.q, Event{e.signal, rising});
            if (q2 != kNoState)
              successors.push_back({&e, Composite{q2, c.nets}});
          }
          break;
        }
        case Element::Kind::kSetNet:
        case Element::Kind::kResetNet: {
          Composite n = c;
          n.nets ^= net_bit(e.impl_index, e.kind == Element::Kind::kResetNet);
          successors.push_back({&e, n});
          break;
        }
        case Element::Kind::kCOut:
        case Element::Kind::kCombOut: {
          const bool rising = !sg.value(c.q, e.signal);
          const StateId q2 = sg.successor(c.q, Event{e.signal, rising});
          if (q2 == kNoState) {
            fail(strfmt("circuit fires %s not allowed by the specification "
                        "in state %s",
                        event_name(sg.signal(e.signal).name, rising).c_str(),
                        sg.code_string(c.q).c_str()));
            break;
          }
          successors.push_back({&e, Composite{q2, c.nets}});
          break;
        }
      }
      if (!result.ok) break;
    }
    if (!result.ok) break;

    // Semi-modularity: firing one element must not dis-excite another
    // non-input element.
    for (const auto& [fired, next] : successors) {
      for (const auto& e : elements) {
        if (&e == fired || e.kind == Element::Kind::kInput) continue;
        if (excited(e, c) && !excited(e, next)) {
          fail(strfmt("gate for signal %s dis-excited (hazard) when %s fires",
                      sg.signal(e.signal).name.c_str(),
                      sg.signal(fired->signal).name.c_str()));
          break;
        }
      }
      if (!result.ok) break;
      auto [slot, inserted] = seen.emplace(next, 0);
      if (inserted) {
        if (seen.size() > max_states) {
          stop_unverified(
              GuardStop::kBudget,
              strfmt("composite state budget exhausted: %zu states of "
                     "limit %zu explored without a violation",
                     seen.size(), max_states));
          break;
        }
        queue.push_back(next);
      }
    }
  }

  // Distinct composite states discovered — not pops: an exploration cut
  // short by a failure still reports every state it has seen.
  result.num_states = seen.size();
  return result;
}

}  // namespace sitm
