#include "netlist/nlint.hpp"

#include <algorithm>
#include <cstdint>
#include <map>
#include <utility>

#include "sg/regions.hpp"

namespace sitm {

namespace {

constexpr const char* kRuleNames[kNumNlintRules] = {
    "missing-impl",     "bad-reference", "empty-network", "drive-fight",
    "incomplete-cover", "fanin-limit",   "unused-wire",   "duplicate-gate",
};

std::string signal_list(const StateGraph& sg, std::uint64_t mask) {
  std::string out;
  for (int v = 0; v < 64; ++v) {
    if (!((mask >> v) & 1u)) continue;
    if (!out.empty()) out += ", ";
    out += v < sg.num_signals() ? sg.signal(v).name
                                : "<signal " + std::to_string(v) + ">";
  }
  return out;
}

/// Strip the free-inversion marker from a decomposed net name.
std::string_view bare_net(std::string_view name) {
  if (!name.empty() && name.front() == '!') name.remove_prefix(1);
  return name;
}

void check_signal_drivers(const Netlist& netlist, NlintReport& report) {
  const StateGraph& sg = netlist.sg();
  std::vector<int> drivers(static_cast<std::size_t>(sg.num_signals()), 0);
  for (const SignalImpl& impl : netlist.impls())
    if (impl.signal >= 0 && impl.signal < sg.num_signals())
      drivers[static_cast<std::size_t>(impl.signal)] += 1;
  for (int s = 0; s < sg.num_signals(); ++s) {
    const Signal& sig = sg.signal(s);
    if (!is_noninput(sig.kind)) continue;
    if (drivers[static_cast<std::size_t>(s)] == 0) {
      report.add(NlintRule::kMissingImpl, NlintSeverity::kError, sig.name,
                 "non-input signal '" + sig.name + "' has no implementation");
    } else if (drivers[static_cast<std::size_t>(s)] > 1) {
      report.add(NlintRule::kMissingImpl, NlintSeverity::kError, sig.name,
                 "signal '" + sig.name + "' is driven by " +
                     std::to_string(drivers[static_cast<std::size_t>(s)]) +
                     " implementations");
    }
  }
}

/// True when the impl's drive target and gate fanins are structurally sound;
/// the per-function rules below are only meaningful when this holds.
bool check_references(const StateGraph& sg, const SignalImpl& impl,
                      NlintReport& report) {
  if (impl.signal < 0 || impl.signal >= sg.num_signals()) {
    report.add(NlintRule::kBadReference, NlintSeverity::kError,
               "<signal " + std::to_string(impl.signal) + ">",
               "implementation drives undeclared signal index " +
                   std::to_string(impl.signal) + " (graph has " +
                   std::to_string(sg.num_signals()) + " signals)");
    return false;
  }
  const std::string& name = sg.signal(impl.signal).name;
  bool ok = true;
  if (!is_noninput(sg.signal(impl.signal).kind)) {
    report.add(NlintRule::kBadReference, NlintSeverity::kError, name,
               "implementation drives input signal '" + name +
                   "' (inputs belong to the environment)");
    ok = false;
  }
  const std::uint64_t declared =
      sg.num_signals() >= 64
          ? ~std::uint64_t{0}
          : (std::uint64_t{1} << sg.num_signals()) - 1;
  const std::uint64_t support = impl.set.support() | impl.reset.support();
  if (const std::uint64_t bad = support & ~declared) {
    report.add(NlintRule::kBadReference, NlintSeverity::kError, name,
               "gate for '" + name + "' reads undeclared signal indices: " +
                   signal_list(sg, bad));
    ok = false;
  }
  return ok;
}

void check_networks(const StateGraph& sg, const SignalImpl& impl,
                    NlintReport& report) {
  const std::string& name = sg.signal(impl.signal).name;
  if (impl.combinational) return;
  std::vector<std::string> names;
  names.reserve(static_cast<std::size_t>(sg.num_signals()));
  for (const Signal& s : sg.signals()) names.push_back(s.name);
  if (impl.set.empty())
    report.add(NlintRule::kEmptyNetwork, NlintSeverity::kError, name,
               "sequential signal '" + name + "' has an empty set network " +
                   "(the C element could never rise)");
  if (impl.reset.empty())
    report.add(NlintRule::kEmptyNetwork, NlintSeverity::kError, name,
               "sequential signal '" + name + "' has an empty reset network " +
                   "(the C element could never fall)");
  for (const Cube& s : impl.set.cubes()) {
    for (const Cube& r : impl.reset.cubes()) {
      if (!s.intersects(r)) continue;
      report.add(NlintRule::kDriveFight, NlintSeverity::kWarning, name,
                 "set and reset networks of '" + name +
                     "' intersect (cube '" +
                     Cover(impl.set.num_vars(), {s}).to_string(names) +
                     "' meets '" +
                     Cover(impl.reset.num_vars(), {r}).to_string(names) +
                     "'): a shared minterm outside the don't-care space is a "
                     "C-element drive fight");
      return;  // one diagnostic per signal is enough to point at the pair
    }
  }
}

void check_complete_cover(const StateGraph& sg, const DynBitset& reachable,
                          const SignalImpl& impl, NlintReport& report) {
  if (!impl.combinational) return;
  const std::string& name = sg.signal(impl.signal).name;
  StateId missed = kNoState;
  reachable.for_each([&](std::size_t s) {
    const auto state = static_cast<StateId>(s);
    if (missed == kNoState && next_value(sg, state, impl.signal) &&
        !impl.set.eval(sg.code(state)))
      missed = state;
  });
  if (missed != kNoState)
    report.add(NlintRule::kIncompleteCover, NlintSeverity::kError, name,
               "combinational cover for '" + name +
                   "' is not a complete cover: next-state function is 1 but "
                   "the gate is 0 in reachable state " +
                   sg.code_string(missed));
}

void check_fanin(const StateGraph& sg, const SignalImpl& impl, int max_fanin,
                 NlintReport& report) {
  if (max_fanin <= 0) return;
  const std::uint64_t support = impl.set.support() | impl.reset.support();
  const int fanin = __builtin_popcountll(support);
  if (fanin <= max_fanin) return;
  const std::string& name = sg.signal(impl.signal).name;
  report.add(NlintRule::kFaninLimit, NlintSeverity::kWarning, name,
             "gC implementation of '" + name + "' has fanin " +
                 std::to_string(fanin) + " (limit " +
                 std::to_string(max_fanin) + "): " + signal_list(sg, support));
}

void check_decomp(const Netlist& netlist, const TechDecompResult& decomp,
                  NlintReport& report) {
  const StateGraph& sg = netlist.sg();
  // Every net with a consumer: gate fanins plus the network's top-level
  // sinks — a combinational root wire carries the signal's own name, a
  // sequential pair feeds the C element through <name>_set / <name>_reset.
  std::vector<std::string> consumed;
  for (const SimpleGate& g : decomp.gates) {
    consumed.emplace_back(bare_net(g.in0));
    consumed.emplace_back(bare_net(g.in1));
  }
  for (const SignalImpl& impl : netlist.impls()) {
    if (impl.signal < 0 || impl.signal >= sg.num_signals()) continue;
    const std::string& name = sg.signal(impl.signal).name;
    if (impl.combinational) {
      consumed.push_back(name);
    } else {
      consumed.push_back(name + "_set");
      consumed.push_back(name + "_reset");
    }
  }
  std::sort(consumed.begin(), consumed.end());
  for (const SimpleGate& g : decomp.gates) {
    if (g.out.empty() ||
        std::binary_search(consumed.begin(), consumed.end(), g.out))
      continue;
    report.add(NlintRule::kUnusedWire, NlintSeverity::kWarning, g.out,
               "decomposed gate output '" + g.out + "' is never consumed");
  }
  // Duplicate gates up to operand order (AND/OR are commutative).
  std::map<std::string, const SimpleGate*> seen;
  for (const SimpleGate& g : decomp.gates) {
    std::string a = g.in0, b = g.in1;
    if (g.op != SimpleGate::Op::kBuf && b < a) std::swap(a, b);
    const char* op = g.op == SimpleGate::Op::kAnd  ? "and"
                     : g.op == SimpleGate::Op::kOr ? "or"
                                                   : "buf";
    const std::string key = std::string(op) + "(" + a + "," + b + ")";
    const auto [it, inserted] = seen.emplace(key, &g);
    if (!inserted)
      report.add(NlintRule::kDuplicateGate, NlintSeverity::kWarning, g.out,
                 "gates '" + it->second->out + "' and '" + g.out +
                     "' both compute " + key);
  }
}

}  // namespace

const char* nlint_rule_name(NlintRule rule) {
  return kRuleNames[static_cast<int>(rule)];
}

const char* nlint_severity_name(NlintSeverity severity) {
  return severity == NlintSeverity::kError ? "error" : "warning";
}

bool NlintReport::has(NlintRule rule) const {
  return std::any_of(
      diagnostics.begin(), diagnostics.end(),
      [rule](const NlintDiagnostic& d) { return d.rule == rule; });
}

std::string NlintReport::first_error() const {
  for (const auto& d : diagnostics)
    if (d.severity == NlintSeverity::kError) return "nlint: " + d.message;
  return {};
}

void NlintReport::add(NlintRule rule, NlintSeverity severity,
                      std::string subject, std::string message) {
  (severity == NlintSeverity::kError ? errors : warnings) += 1;
  diagnostics.push_back(
      NlintDiagnostic{rule, severity, std::move(subject), std::move(message)});
}

Json NlintReport::to_json() const {
  Json j = Json::object();
  j.set("ok", ok());
  j.set("errors", errors);
  j.set("warnings", warnings);
  j.set("rules_run", rules_run);
  Json ds = Json::array();
  for (const auto& d : diagnostics) {
    Json dj = Json::object();
    dj.set("rule", nlint_rule_name(d.rule));
    dj.set("severity", nlint_severity_name(d.severity));
    if (!d.subject.empty()) dj.set("subject", d.subject);
    dj.set("message", d.message);
    ds.push(std::move(dj));
  }
  j.set("diagnostics", std::move(ds));
  return j;
}

NlintReport nlint_netlist(const Netlist& netlist,
                          const TechDecompResult* decomp,
                          const NlintOptions& opts) {
  NlintReport report;
  const StateGraph& sg = netlist.sg();
  check_signal_drivers(netlist, report);
  const DynBitset reachable = sg.reachable();
  for (const SignalImpl& impl : netlist.impls()) {
    if (!check_references(sg, impl, report)) continue;
    check_networks(sg, impl, report);
    check_complete_cover(sg, reachable, impl, report);
    check_fanin(sg, impl, opts.max_gc_fanin, report);
  }
  report.rules_run = 6;
  if (decomp) {
    check_decomp(netlist, *decomp, report);
    report.rules_run = kNumNlintRules;
  }
  return report;
}

}  // namespace sitm
