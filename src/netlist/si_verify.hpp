#pragma once
// Gate-level speed-independence verification.
//
// Composes the standard-C netlist with its specification SG and explores the
// closed system with every gate (first-level SOP gates and C elements) given
// an unbounded delay.  The implementation is speed-independent and conforms
// to the specification iff during this exploration
//   * every signal transition produced by the circuit is allowed by the SG
//     in the current specification state (conformance),
//   * no excited gate output is ever dis-excited by another transition
//     firing (semi-modularity; an excited-then-disabled gate is a hazard).
//
// C elements follow the Muller semantics out = C(S, ~R): the output rises
// when S=1,R=0, falls when S=0,R=1, and holds otherwise, so transient
// S=R=1 overlaps (a lagging set network) are legal.
//
// This is the independent check behind the paper's remark that "all the
// implementations have been verified to be speed-independent".

#include <cstddef>
#include <string>

#include "netlist/netlist.hpp"
#include "util/run_guard.hpp"

namespace sitm {

struct SiVerifyResult {
  bool ok = true;           ///< proven speed-independent (full exploration)
  std::string why;          ///< human-readable failure description
  std::size_t num_states = 0;  ///< distinct composite states discovered
  /// The exploration ended early (state budget, deadline or cancellation)
  /// without finding a violation: the netlist is *unverified*, not failed.
  /// `ok` is false so no caller mistakes it for a proof; `stopped` says
  /// which limit ended it.
  bool unverified = false;
  GuardStop stopped = GuardStop::kNone;

  explicit operator bool() const { return ok; }
};

/// Verify `netlist` against its SG.  `max_states` bounds the composite
/// exploration; exceeding it — or exhausting `guard`, polled once per
/// composite state — returns an `unverified` result instead of throwing, so
/// callers can degrade gracefully (report "unverified" rather than
/// "failed").  Hazards and conformance violations still report ok=false
/// with unverified=false.
SiVerifyResult verify_speed_independence(const Netlist& netlist,
                                         std::size_t max_states = 1u << 20,
                                         const RunGuard* guard = nullptr);

}  // namespace sitm
