#pragma once
// Gate-level speed-independence verification.
//
// Composes the standard-C netlist with its specification SG and explores the
// closed system with every gate (first-level SOP gates and C elements) given
// an unbounded delay.  The implementation is speed-independent and conforms
// to the specification iff during this exploration
//   * every signal transition produced by the circuit is allowed by the SG
//     in the current specification state (conformance),
//   * no excited gate output is ever dis-excited by another transition
//     firing (semi-modularity; an excited-then-disabled gate is a hazard).
//
// C elements follow the Muller semantics out = C(S, ~R): the output rises
// when S=1,R=0, falls when S=0,R=1, and holds otherwise, so transient
// S=R=1 overlaps (a lagging set network) are legal.
//
// This is the independent check behind the paper's remark that "all the
// implementations have been verified to be speed-independent".

#include <cstddef>
#include <string>

#include "netlist/netlist.hpp"

namespace sitm {

struct SiVerifyResult {
  bool ok = true;
  std::string why;          ///< human-readable failure description
  std::size_t num_states = 0;  ///< distinct composite states discovered

  explicit operator bool() const { return ok; }
};

/// Verify `netlist` against its SG.  `max_states` bounds the composite
/// exploration (throws sitm::Error if exceeded).
SiVerifyResult verify_speed_independence(const Netlist& netlist,
                                         std::size_t max_states = 1u << 20);

}  // namespace sitm
