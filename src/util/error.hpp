#pragma once
// Error type shared by all sitm libraries.
//
// Library code throws sitm::Error for user-visible failures (malformed input
// files, specification property violations, unsupported sizes).  Internal
// logic errors use assertions.

#include <stdexcept>
#include <string>

namespace sitm {

/// Exception thrown on user-visible failures (bad input, violated
/// preconditions of the synthesis flow, capacity limits).
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

}  // namespace sitm
