#pragma once
// Error type shared by all sitm libraries.
//
// Library code throws sitm::Error for user-visible failures (malformed input
// files, specification property violations, unsupported sizes).  Internal
// logic errors use assertions.

#include <stdexcept>
#include <string>

namespace sitm {

/// Exception thrown on user-visible failures (bad input, violated
/// preconditions of the synthesis flow, capacity limits).
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Error from a text-format reader (.g/.sg), carrying the 1-based source
/// location.  The location is also prefixed onto what() ("line 12, col 5:
/// ..."), so callers that only print the message still show it.
class ParseError : public Error {
 public:
  ParseError(const std::string& what, int line, int column = 0)
      : Error(location_prefix(line, column) + what),
        line_(line),
        column_(column) {}

  int line() const { return line_; }
  /// 1-based column of the offending token; 0 when the error spans the line.
  int column() const { return column_; }

 private:
  static std::string location_prefix(int line, int column) {
    std::string s = "line " + std::to_string(line);
    if (column > 0) s += ", col " + std::to_string(column);
    return s + ": ";
  }

  int line_ = 0;
  int column_ = 0;
};

}  // namespace sitm
