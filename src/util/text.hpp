#pragma once
// Small text helpers shared by the .g/.sg parsers and table printers.

#include <string>
#include <string_view>
#include <vector>

namespace sitm {

/// Strip leading/trailing whitespace.
std::string_view trim(std::string_view s);

/// Split on any run of whitespace; no empty tokens.
std::vector<std::string_view> split_ws(std::string_view s);

/// Split on a single character delimiter; keeps empty fields.
std::vector<std::string_view> split_char(std::string_view s, char delim);

/// True if `s` starts with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// printf-style formatting into a std::string.
std::string strfmt(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace sitm
