#pragma once
// Open-addressing hash containers for the synthesis hot paths.
//
// The reachability engine, the CSC conflict detector and the BDD package all
// need key -> small-value lookups in their inner loops.  Generic node-based
// containers (std::map / std::unordered_map) spend most of their time in
// allocation and pointer chasing there; this header provides a minimal flat
// alternative: power-of-two capacity, linear probing, no erase, grow at ~70%
// load.  Keys and values are stored inline in one contiguous slot array.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace sitm {

/// Final mixer of splitmix64: cheap, well-distributed 64 -> 64 bit hash.
inline std::uint64_t hash_mix(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

/// Hash for integral keys up to 64 bits.
struct U64Hash {
  std::uint64_t operator()(std::uint64_t k) const { return hash_mix(k); }
};

/// Hash for word-vector keys (wide Petri-net markings).
struct WordVecHash {
  std::uint64_t operator()(const std::vector<std::uint64_t>& v) const {
    std::uint64_t h = 0x9e3779b97f4a7c15ULL ^ v.size();
    for (std::uint64_t w : v) h = hash_mix(h ^ w);
    return h;
  }
};

/// Flat open-addressing hash map.  Insert-only (no erase), which is all the
/// hot paths need; `clear` keeps the capacity.  Iteration order is
/// unspecified — callers that need deterministic output must order results
/// themselves (the synthesis code keys results by dense ids, so this never
/// shows through).
template <class Key, class Value, class Hash = U64Hash>
class FlatMap {
 public:
  FlatMap() = default;
  explicit FlatMap(std::size_t expected) { reserve(expected); }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void clear() {
    std::fill(used_.begin(), used_.end(), false);
    size_ = 0;
  }

  void reserve(std::size_t expected) {
    std::size_t cap = 16;
    while (cap * 7 < expected * 10) cap <<= 1;
    if (cap > slots_.size()) rehash(cap);
  }

  /// Pointer to the value stored under `key`, or nullptr.
  Value* find(const Key& key) {
    if (slots_.empty()) return nullptr;
    for (std::size_t i = Hash{}(key) & mask_;; i = (i + 1) & mask_) {
      if (!used_[i]) return nullptr;
      if (slots_[i].key == key) return &slots_[i].value;
    }
  }
  const Value* find(const Key& key) const {
    return const_cast<FlatMap*>(this)->find(key);
  }

  /// Insert (key, value) if absent.  Returns the address of the stored value
  /// and whether an insertion happened.  The returned pointer is invalidated
  /// by the next insertion.
  std::pair<Value*, bool> emplace(Key key, Value value) {
    if ((size_ + 1) * 10 >= slots_.size() * 7)
      rehash(slots_.empty() ? 16 : slots_.size() * 2);
    for (std::size_t i = Hash{}(key) & mask_;; i = (i + 1) & mask_) {
      if (!used_[i]) {
        used_[i] = true;
        slots_[i].key = std::move(key);
        slots_[i].value = std::move(value);
        ++size_;
        return {&slots_[i].value, true};
      }
      if (slots_[i].key == key) return {&slots_[i].value, false};
    }
  }

  /// Value under `key`, default-constructing it if absent.
  Value& operator[](Key key) { return *emplace(std::move(key), Value{}).first; }

  /// Invoke fn(key, value) for every entry, in unspecified order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t i = 0; i < slots_.size(); ++i)
      if (used_[i]) fn(slots_[i].key, slots_[i].value);
  }

 private:
  struct Slot {
    Key key;
    Value value;
  };

  void rehash(std::size_t new_cap) {
    std::vector<Slot> old_slots = std::move(slots_);
    std::vector<char> old_used = std::move(used_);
    slots_.assign(new_cap, Slot{});
    used_.assign(new_cap, false);
    mask_ = new_cap - 1;
    for (std::size_t i = 0; i < old_slots.size(); ++i) {
      if (!old_used[i]) continue;
      for (std::size_t j = Hash{}(old_slots[i].key) & mask_;;
           j = (j + 1) & mask_) {
        if (used_[j]) continue;
        used_[j] = true;
        slots_[j] = std::move(old_slots[i]);
        break;
      }
    }
  }

  std::vector<Slot> slots_;
  std::vector<char> used_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};

}  // namespace sitm
