#pragma once
// Deterministic fault injection for the Flow stack.
//
// Library code marks interesting failure points with `fault::hit("site")`
// (stage entries, hot-loop bodies, the batch driver's item dispatch).  In
// production nothing is armed and a hit is one relaxed atomic load; tests
// and the CLI arm sites to fire a chosen action on the N-th hit:
//
//   error     throw sitm::Error            -> failure_kind "spec"
//   internal  throw std::logic_error       -> failure_kind "internal"
//   nonstd    throw fault::NonStdFault     -> catch (...) paths, "internal"
//   badalloc  throw std::bad_alloc         -> failure_kind "internal"
//   budget    throw GuardExhausted(budget) -> failure_kind "budget"
//   deadline  throw GuardExhausted(deadline)  (a simulated deadline hit)
//   cancel    throw GuardExhausted(cancelled)
//   sleep:MS  block the calling thread MS milliseconds, then continue
//             (drives the batch watchdog / overdue-item paths for real)
//
// Triggers are deterministic: each armed site counts its hits and fires
// exactly once, on hit number `nth` (1-based).  Arming is programmatic
// (`fault::arm`) or via a spec string — also read from the SITM_FAULTS
// environment variable by the CLI:
//
//   SITM_FAULTS="flow.csc:budget@3,flow.synth:sleep:50"
//
// i.e. comma-separated `site:action[:arg][@nth]` entries.  Everything is
// thread-safe; `fault::clear()` resets the harness between tests.

#include <atomic>
#include <cstdint>
#include <string>

namespace sitm::fault {

enum class Action : int {
  kError = 0,
  kInternal,
  kNonStd,
  kBadAlloc,
  kBudget,
  kDeadline,
  kCancel,
  kSleep,
};

/// Deliberately NOT derived from std::exception: exercises the catch (...)
/// arms that keep a non-standard exception from taking down a batch.
struct NonStdFault {
  const char* site = "";
};

/// Arm `site` to fire `action` on its `nth` hit (1-based; fires once).
/// `arg` is the sleep duration in ms for kSleep, ignored otherwise.
void arm(const std::string& site, Action action, std::uint64_t nth = 1,
         std::uint64_t arg = 0);

/// Parse and arm a comma-separated `site:action[:arg][@nth]` spec.  Returns
/// false (arming nothing further) on a malformed entry; *error names it.
bool configure(const std::string& spec, std::string* error = nullptr);

/// Arm from the SITM_FAULTS environment variable (no-op when unset).
/// Returns false on a malformed spec, with the message on stderr.
bool configure_from_env();

/// Disarm everything and reset all hit counters.
void clear();

/// Hits recorded at `site` so far (armed sites only; 0 otherwise).
std::uint64_t hit_count(const std::string& site);
/// True once the armed action at `site` has fired.
bool fired(const std::string& site);

namespace detail {
extern std::atomic<int> armed_sites;
void hit_slow(const char* site);
}  // namespace detail

/// The instrumentation point.  Fast path: one relaxed load.
inline void hit(const char* site) {
  if (detail::armed_sites.load(std::memory_order_relaxed) == 0) return;
  detail::hit_slow(site);
}

}  // namespace sitm::fault
