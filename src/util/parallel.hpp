#pragma once
// Minimal worker-pool parallel-for shared by the parallel synthesis loop
// (core/mc_cover) and the batch flow driver (flow/batch).
//
// One error-handling contract for both: the first exception thrown by the
// body stops further index claims and is rethrown on the calling thread
// after every worker has joined (items already claimed still finish).

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace sitm {

/// Resolve a user-facing thread count: 0 (or any non-positive value) means
/// one worker per hardware core, and no more workers than there are items.
/// Always resolves to >= 1 worker when there is work —
/// `hardware_concurrency()` is allowed to return 0 ("unknown"), which must
/// clamp to one worker, not a zero-width pool.
inline int resolve_worker_threads(int threads, std::size_t count) {
  if (threads <= 0)
    threads = static_cast<int>(std::thread::hardware_concurrency());
  if (threads < 1) threads = 1;
  if (count < static_cast<std::size_t>(threads))
    threads = static_cast<int>(count);
  return threads;
}

/// Run fn(i) for every i in [0, count), on the calling thread when the
/// resolved thread count is <= 1, otherwise on a pool claiming indices
/// through an atomic counter (no ordering guarantee across indices).  The
/// calling thread is one of the `threads` workers — only threads-1 are
/// spawned — so a "--threads N" request uses exactly N cores instead of
/// parking the caller in join() while an N+1th thread does its share.
template <typename Fn>
void parallel_for(std::size_t count, int threads, Fn&& fn) {
  threads = resolve_worker_threads(threads, count);
  if (threads <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::mutex error_mutex;
  std::exception_ptr error;
  const auto worker = [&] {
    while (!failed.load(std::memory_order_relaxed)) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        fn(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!error) error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads - 1));
  for (int t = 0; t < threads - 1; ++t) pool.emplace_back(worker);
  worker();
  for (auto& t : pool) t.join();
  if (error) std::rethrow_exception(error);
}

}  // namespace sitm
