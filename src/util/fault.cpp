#include "util/fault.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <new>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/error.hpp"
#include "util/run_guard.hpp"

namespace sitm::fault {

namespace detail {
std::atomic<int> armed_sites{0};
}  // namespace detail

namespace {

struct Site {
  std::string name;
  Action action = Action::kError;
  std::uint64_t nth = 1;
  std::uint64_t arg = 0;
  std::uint64_t hits = 0;
  bool fired = false;
};

// Few sites, cold path only (the inline fast path already bailed when
// nothing is armed): a mutex-protected vector is plenty.
std::mutex g_mutex;
std::vector<Site>& sites() {
  static std::vector<Site> s;
  return s;
}

/// Throwing actions only; kSleep is handled by hit_slow before calling.
[[noreturn]] void fire(Action action, const char* site, std::uint64_t hits) {
  switch (action) {
    case Action::kError:
      throw Error(std::string("injected fault at ") + site);
    case Action::kInternal:
      throw std::logic_error(std::string("injected internal fault at ") + site);
    case Action::kNonStd:
      throw NonStdFault{site};
    case Action::kBadAlloc:
      throw std::bad_alloc();
    case Action::kBudget:
      throw GuardExhausted(GuardStop::kBudget, site, hits, hits);
    case Action::kDeadline:
      throw GuardExhausted(GuardStop::kDeadline, site, hits, 0);
    case Action::kCancel:
      throw GuardExhausted(GuardStop::kCancelled, site, hits, 0);
    case Action::kSleep:
      break;  // unreachable; the final throw keeps [[noreturn]] honest
  }
  throw Error(std::string("injected fault at ") + site);
}

bool parse_action(const std::string& token, Action* action) {
  if (token == "error") *action = Action::kError;
  else if (token == "internal") *action = Action::kInternal;
  else if (token == "nonstd") *action = Action::kNonStd;
  else if (token == "badalloc") *action = Action::kBadAlloc;
  else if (token == "budget") *action = Action::kBudget;
  else if (token == "deadline") *action = Action::kDeadline;
  else if (token == "cancel") *action = Action::kCancel;
  else if (token == "sleep") *action = Action::kSleep;
  else return false;
  return true;
}

bool parse_u64(const std::string& token, std::uint64_t* out) {
  if (token.empty()) return false;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(token.c_str(), &end, 10);
  if (*end != '\0') return false;
  *out = v;
  return true;
}

}  // namespace

void arm(const std::string& site, Action action, std::uint64_t nth,
         std::uint64_t arg) {
  const std::lock_guard<std::mutex> lock(g_mutex);
  sites().push_back(Site{site, action, nth == 0 ? 1 : nth, arg, 0, false});
  detail::armed_sites.store(static_cast<int>(sites().size()),
                            std::memory_order_relaxed);
}

bool configure(const std::string& spec, std::string* error) {
  std::size_t start = 0;
  while (start <= spec.size()) {
    std::size_t end = spec.find(',', start);
    if (end == std::string::npos) end = spec.size();
    std::string entry = spec.substr(start, end - start);
    start = end + 1;
    if (entry.empty()) continue;

    std::uint64_t nth = 1;
    if (const std::size_t at = entry.rfind('@'); at != std::string::npos) {
      if (!parse_u64(entry.substr(at + 1), &nth) || nth == 0) {
        if (error) *error = "bad trigger count in '" + entry + "'";
        return false;
      }
      entry.resize(at);
    }
    const std::size_t colon = entry.find(':');
    if (colon == std::string::npos || colon == 0) {
      if (error) *error = "expected site:action in '" + entry + "'";
      return false;
    }
    const std::string site = entry.substr(0, colon);
    std::string action_token = entry.substr(colon + 1);
    std::uint64_t arg = 0;
    if (const std::size_t c2 = action_token.find(':');
        c2 != std::string::npos) {
      if (!parse_u64(action_token.substr(c2 + 1), &arg)) {
        if (error) *error = "bad action argument in '" + entry + "'";
        return false;
      }
      action_token.resize(c2);
    }
    Action action;
    if (!parse_action(action_token, &action)) {
      if (error) *error = "unknown action '" + action_token + "'";
      return false;
    }
    arm(site, action, nth, arg);
  }
  return true;
}

bool configure_from_env() {
  const char* spec = std::getenv("SITM_FAULTS");
  if (!spec || !*spec) return true;
  std::string error;
  if (!configure(spec, &error)) {
    std::fprintf(stderr, "SITM_FAULTS: %s\n", error.c_str());
    return false;
  }
  return true;
}

void clear() {
  const std::lock_guard<std::mutex> lock(g_mutex);
  sites().clear();
  detail::armed_sites.store(0, std::memory_order_relaxed);
}

std::uint64_t hit_count(const std::string& site) {
  const std::lock_guard<std::mutex> lock(g_mutex);
  std::uint64_t hits = 0;
  for (const Site& s : sites())
    if (s.name == site) hits = std::max(hits, s.hits);
  return hits;
}

bool fired(const std::string& site) {
  const std::lock_guard<std::mutex> lock(g_mutex);
  for (const Site& s : sites())
    if (s.name == site && s.fired) return true;
  return false;
}

namespace detail {

void hit_slow(const char* site) {
  Action action{};
  std::uint64_t hits = 0, sleep_ms = 0;
  bool fire_now = false;
  {
    const std::lock_guard<std::mutex> lock(g_mutex);
    for (Site& s : sites()) {
      if (s.name != site) continue;
      ++s.hits;
      if (!s.fired && s.hits == s.nth) {
        s.fired = true;
        fire_now = true;
        action = s.action;
        hits = s.hits;
        sleep_ms = s.arg;
        break;  // one action per hit; later sites keep their own counters
      }
    }
  }
  if (!fire_now) return;
  if (action == Action::kSleep) {
    std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
    return;
  }
  fire(action, site, hits);
}

}  // namespace detail

}  // namespace sitm::fault
