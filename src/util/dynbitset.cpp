#include "util/dynbitset.hpp"

#include <algorithm>

namespace sitm {

void DynBitset::clear() { std::fill(words_.begin(), words_.end(), 0); }

void DynBitset::set_all() {
  std::fill(words_.begin(), words_.end(), ~std::uint64_t{0});
  trim_tail();
}

void DynBitset::trim_tail() {
  if (!words_.empty()) words_.back() &= bitwords::tail_mask(size_);
}

std::size_t DynBitset::count() const {
  std::size_t n = 0;
  for (auto w : words_) n += static_cast<std::size_t>(__builtin_popcountll(w));
  return n;
}

bool DynBitset::any() const {
  for (auto w : words_)
    if (w) return true;
  return false;
}

DynBitset& DynBitset::operator|=(const DynBitset& o) {
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= o.words_[i];
  return *this;
}

DynBitset& DynBitset::operator&=(const DynBitset& o) {
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= o.words_[i];
  return *this;
}

DynBitset& DynBitset::operator-=(const DynBitset& o) {
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= ~o.words_[i];
  return *this;
}

DynBitset DynBitset::operator~() const {
  DynBitset out(size_);
  for (std::size_t i = 0; i < words_.size(); ++i) out.words_[i] = ~words_[i];
  out.trim_tail();
  return out;
}

bool DynBitset::disjoint(const DynBitset& o) const {
  for (std::size_t i = 0; i < words_.size(); ++i)
    if (words_[i] & o.words_[i]) return false;
  return true;
}

bool DynBitset::subset_of(const DynBitset& o) const {
  for (std::size_t i = 0; i < words_.size(); ++i)
    if (words_[i] & ~o.words_[i]) return false;
  return true;
}

std::size_t DynBitset::first() const {
  for (std::size_t w = 0; w < words_.size(); ++w)
    if (words_[w]) return w * 64 + static_cast<std::size_t>(__builtin_ctzll(words_[w]));
  return npos;
}

std::size_t DynBitset::next(std::size_t i) const {
  ++i;
  if (i >= size_) return npos;
  std::size_t w = i >> 6;
  std::uint64_t bits = words_[w] & (~std::uint64_t{0} << (i & 63));
  while (true) {
    if (bits) return w * 64 + static_cast<std::size_t>(__builtin_ctzll(bits));
    if (++w >= words_.size()) return npos;
    bits = words_[w];
  }
}

std::vector<std::size_t> DynBitset::to_vector() const {
  std::vector<std::size_t> out;
  out.reserve(count());
  for_each([&](std::size_t i) { out.push_back(i); });
  return out;
}

}  // namespace sitm
