#pragma once
// Deterministic, seedable RNG (xoshiro256**) for property tests and synthetic
// workload generation.  We do not use std::mt19937 so that generated
// benchmark families are stable across standard library implementations.

#include <cstdint>

namespace sitm {

/// Small, fast, deterministic PRNG (xoshiro256**, Blackman & Vigna).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    // SplitMix64 seeding as recommended by the xoshiro authors.
    std::uint64_t z = seed;
    for (auto& word : state_) {
      z += 0x9e3779b97f4a7c15ULL;
      std::uint64_t x = z;
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
      word = x ^ (x >> 31);
    }
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound) { return next() % bound; }

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi) {
    return lo + below(hi - lo + 1);
  }

  /// Bernoulli draw with probability num/den.
  bool chance(std::uint64_t num, std::uint64_t den) {
    return below(den) < num;
  }

  /// Uniform double in [0,1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4] = {};
};

}  // namespace sitm
