#pragma once
// Packed-word helpers shared by the bitset-shaped structures (DynBitset,
// the bit-sliced off-set): sizing and tail masking for arrays of 64-bit
// words that carry `bits` logical bits.

#include <cstddef>
#include <cstdint>

namespace sitm::bitwords {

/// Number of 64-bit words needed to hold `bits` bits.
constexpr std::size_t words_for(std::size_t bits) { return (bits + 63) / 64; }

/// Mask of the valid bits in the last word of a `bits`-bit packed array;
/// all-ones when `bits` is a multiple of 64.  Operations that complement
/// words must AND the last word with this so padding bits stay clear.
constexpr std::uint64_t tail_mask(std::size_t bits) {
  return (bits % 64 == 0) ? ~std::uint64_t{0}
                          : ((std::uint64_t{1} << (bits % 64)) - 1);
}

}  // namespace sitm::bitwords
