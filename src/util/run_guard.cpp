#include "util/run_guard.hpp"

namespace sitm {

namespace {

std::string exhausted_message(GuardStop kind, const std::string& site,
                              std::uint64_t count, std::uint64_t limit) {
  std::string msg = std::string(guard_stop_name(kind));
  switch (kind) {
    case GuardStop::kBudget:
      msg += " exhausted at " + site + ": " + std::to_string(count) +
             " work units of limit " + std::to_string(limit);
      break;
    case GuardStop::kDeadline:
      msg += " exceeded at " + site + " after " + std::to_string(count) +
             " work units";
      break;
    case GuardStop::kCancelled:
      msg = "cancelled at " + site;
      break;
    case GuardStop::kNone:
      msg += " at " + site;  // not reachable from RunGuard itself
      break;
  }
  return msg;
}

}  // namespace

const char* guard_stop_name(GuardStop stop) {
  switch (stop) {
    case GuardStop::kNone: return "none";
    case GuardStop::kBudget: return "budget";
    case GuardStop::kDeadline: return "deadline";
    case GuardStop::kCancelled: return "cancelled";
  }
  return "none";
}

GuardExhausted::GuardExhausted(GuardStop kind, std::string site,
                               std::uint64_t count, std::uint64_t limit)
    : Error(exhausted_message(kind, site, count, limit)),
      kind_(kind),
      site_(std::move(site)),
      count_(count),
      limit_(limit) {}

std::int64_t RunGuard::now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void RunGuard::set_deadline_ms(double ms) {
  if (ms <= 0) {
    deadline_ns_.store(0, std::memory_order_relaxed);
    return;
  }
  deadline_ns_.store(now_ns() + static_cast<std::int64_t>(ms * 1e6),
                     std::memory_order_relaxed);
}

void RunGuard::raise(GuardStop kind, const char* site, std::uint64_t count,
                     std::uint64_t limit) const {
  throw GuardExhausted(kind, site, count, limit);
}

void RunGuard::check_clock(const char* site, std::uint64_t count) const {
  const std::int64_t deadline = deadline_ns_.load(std::memory_order_relaxed);
  if (deadline != 0 && now_ns() >= deadline)
    raise(GuardStop::kDeadline, site, count, 0);
}

void RunGuard::check(const char* site) const {
  const std::uint64_t count = work();
  const std::uint64_t budget = budget_.load(std::memory_order_relaxed);
  if (budget != 0 && count > budget)
    raise(GuardStop::kBudget, site, count, budget);
  if (cancelled_.load(std::memory_order_relaxed))
    raise(GuardStop::kCancelled, site, count, 0);
  check_clock(site, count);
}

GuardStop RunGuard::status() const {
  const std::uint64_t count = work();
  const std::uint64_t budget = budget_.load(std::memory_order_relaxed);
  if (budget != 0 && count > budget) return GuardStop::kBudget;
  if (cancelled_.load(std::memory_order_relaxed)) return GuardStop::kCancelled;
  const std::int64_t deadline = deadline_ns_.load(std::memory_order_relaxed);
  if (deadline != 0 && now_ns() >= deadline) return GuardStop::kDeadline;
  return GuardStop::kNone;
}

}  // namespace sitm
