#include "util/json.hpp"

#include <cmath>
#include <cstdio>

namespace sitm {

void Json::push(Json v) {
  kind_ = Kind::kArray;
  arr_.push_back(std::move(v));
}

void Json::set(std::string_view key, Json v) {
  kind_ = Kind::kObject;
  for (auto& [k, existing] : obj_) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  obj_.emplace_back(std::string(key), std::move(v));
}

const Json* Json::find(std::string_view key) const {
  for (const auto& [k, v] : obj_)
    if (k == key) return &v;
  return nullptr;
}

std::string Json::escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  // Work on unsigned bytes throughout: with a signed `char`, bytes >= 0x80
  // sign-extend on promotion, and a `\u%04x` of e.g. 0xe9 prints the
  // garbage "￿ffe9".  Bytes >= 0x80 (UTF-8 continuation/lead bytes in
  // warning text, signal names, file paths) pass through verbatim.
  for (const unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

namespace {

void append_number(std::string& out, double d) {
  if (std::isfinite(d) && d == std::floor(d) && std::fabs(d) < 9.0e15) {
    out += std::to_string(static_cast<long long>(d));
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.9g", std::isfinite(d) ? d : 0.0);
  out += buf;
}

}  // namespace

void Json::dump_to(std::string& out, int indent, int depth) const {
  const auto newline_pad = [&](int level) {
    if (indent <= 0) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent) * level, ' ');
  };
  switch (kind_) {
    case Kind::kNull: out += "null"; break;
    case Kind::kBool: out += bool_ ? "true" : "false"; break;
    case Kind::kNumber: append_number(out, num_); break;
    case Kind::kString:
      out += '"';
      out += escape(str_);
      out += '"';
      break;
    case Kind::kArray: {
      out += '[';
      bool first = true;
      for (const auto& v : arr_) {
        if (!first) out += indent > 0 ? "," : ", ";
        first = false;
        newline_pad(depth + 1);
        v.dump_to(out, indent, depth + 1);
      }
      if (!arr_.empty()) newline_pad(depth);
      out += ']';
      break;
    }
    case Kind::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [k, v] : obj_) {
        if (!first) out += indent > 0 ? "," : ", ";
        first = false;
        newline_pad(depth + 1);
        out += '"';
        out += escape(k);
        out += "\": ";
        v.dump_to(out, indent, depth + 1);
      }
      if (!obj_.empty()) newline_pad(depth);
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

}  // namespace sitm
