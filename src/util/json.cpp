#include "util/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/error.hpp"

namespace sitm {

void Json::push(Json v) {
  kind_ = Kind::kArray;
  arr_.push_back(std::move(v));
}

void Json::set(std::string_view key, Json v) {
  kind_ = Kind::kObject;
  for (auto& [k, existing] : obj_) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  obj_.emplace_back(std::string(key), std::move(v));
}

const Json* Json::find(std::string_view key) const {
  for (const auto& [k, v] : obj_)
    if (k == key) return &v;
  return nullptr;
}

std::string Json::escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  // Work on unsigned bytes throughout: with a signed `char`, bytes >= 0x80
  // sign-extend on promotion, and a `\u%04x` of e.g. 0xe9 prints the
  // garbage "￿ffe9".  Bytes >= 0x80 (UTF-8 continuation/lead bytes in
  // warning text, signal names, file paths) pass through verbatim.
  for (const unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

namespace {

void append_number(std::string& out, double d) {
  if (std::isfinite(d) && d == std::floor(d) && std::fabs(d) < 9.0e15) {
    out += std::to_string(static_cast<long long>(d));
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.9g", std::isfinite(d) ? d : 0.0);
  out += buf;
}

}  // namespace

void Json::dump_to(std::string& out, int indent, int depth) const {
  const auto newline_pad = [&](int level) {
    if (indent <= 0) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent) * level, ' ');
  };
  switch (kind_) {
    case Kind::kNull: out += "null"; break;
    case Kind::kBool: out += bool_ ? "true" : "false"; break;
    case Kind::kNumber: append_number(out, num_); break;
    case Kind::kString:
      out += '"';
      out += escape(str_);
      out += '"';
      break;
    case Kind::kArray: {
      out += '[';
      bool first = true;
      for (const auto& v : arr_) {
        if (!first) out += indent > 0 ? "," : ", ";
        first = false;
        newline_pad(depth + 1);
        v.dump_to(out, indent, depth + 1);
      }
      if (!arr_.empty()) newline_pad(depth);
      out += ']';
      break;
    }
    case Kind::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [k, v] : obj_) {
        if (!first) out += indent > 0 ? "," : ", ";
        first = false;
        newline_pad(depth + 1);
        out += '"';
        out += escape(k);
        out += "\": ";
        v.dump_to(out, indent, depth + 1);
      }
      if (!obj_.empty()) newline_pad(depth);
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

namespace {

/// Recursive-descent JSON reader (serve request protocol).
struct JsonParser {
  std::string_view text;
  std::size_t pos = 0;
  static constexpr int kMaxDepth = 256;

  [[noreturn]] void fail(const std::string& what) const {
    throw Error("json parse error at offset " + std::to_string(pos) + ": " +
                what);
  }
  void skip_ws() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r'))
      ++pos;
  }
  char peek() const { return pos < text.size() ? text[pos] : '\0'; }
  bool eat(char c) {
    if (peek() != c) return false;
    ++pos;
    return true;
  }
  void expect(char c) {
    if (!eat(c)) fail(std::string("expected '") + c + "'");
  }
  bool literal(std::string_view word) {
    if (text.substr(pos, word.size()) != word) return false;
    pos += word.size();
    return true;
  }

  unsigned hex4() {
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = peek();
      unsigned d;
      if (c >= '0' && c <= '9') d = static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') d = static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') d = static_cast<unsigned>(c - 'A' + 10);
      else fail("bad \\u escape");
      v = v * 16 + d;
      ++pos;
    }
    return v;
  }
  static void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xc0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3f));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xe0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
      out += static_cast<char>(0x80 | (cp & 0x3f));
    } else {
      out += static_cast<char>(0xf0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3f));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
      out += static_cast<char>(0x80 | (cp & 0x3f));
    }
  }

  std::string parse_string_body() {
    expect('"');
    std::string out;
    while (true) {
      if (pos >= text.size()) fail("unterminated string");
      const unsigned char c = static_cast<unsigned char>(text[pos]);
      if (c == '"') {
        ++pos;
        return out;
      }
      if (c < 0x20) fail("raw control character in string");
      if (c != '\\') {
        out += static_cast<char>(c);
        ++pos;
        continue;
      }
      ++pos;  // backslash
      switch (peek()) {
        case '"': out += '"'; ++pos; break;
        case '\\': out += '\\'; ++pos; break;
        case '/': out += '/'; ++pos; break;
        case 'b': out += '\b'; ++pos; break;
        case 'f': out += '\f'; ++pos; break;
        case 'n': out += '\n'; ++pos; break;
        case 'r': out += '\r'; ++pos; break;
        case 't': out += '\t'; ++pos; break;
        case 'u': {
          ++pos;
          unsigned cp = hex4();
          if (cp >= 0xd800 && cp <= 0xdbff) {
            // High surrogate: require the paired low surrogate.
            if (!(eat('\\') && eat('u'))) fail("unpaired surrogate");
            const unsigned lo = hex4();
            if (lo < 0xdc00 || lo > 0xdfff) fail("unpaired surrogate");
            cp = 0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00);
          } else if (cp >= 0xdc00 && cp <= 0xdfff) {
            fail("unpaired surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default: fail("bad escape");
      }
    }
  }

  double parse_number() {
    const std::size_t start = pos;
    if (eat('-')) {
    }
    if (!(peek() >= '0' && peek() <= '9')) fail("bad number");
    while (peek() >= '0' && peek() <= '9') ++pos;
    if (eat('.')) {
      if (!(peek() >= '0' && peek() <= '9')) fail("bad number");
      while (peek() >= '0' && peek() <= '9') ++pos;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos;
      if (peek() == '+' || peek() == '-') ++pos;
      if (!(peek() >= '0' && peek() <= '9')) fail("bad number");
      while (peek() >= '0' && peek() <= '9') ++pos;
    }
    const std::string token(text.substr(start, pos - start));
    return std::strtod(token.c_str(), nullptr);
  }

  Json parse_value(int depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    skip_ws();
    switch (peek()) {
      case '{': {
        ++pos;
        Json obj = Json::object();
        skip_ws();
        if (eat('}')) return obj;
        while (true) {
          skip_ws();
          std::string key = parse_string_body();
          skip_ws();
          expect(':');
          obj.set(key, parse_value(depth + 1));
          skip_ws();
          if (eat(',')) continue;
          expect('}');
          return obj;
        }
      }
      case '[': {
        ++pos;
        Json arr = Json::array();
        skip_ws();
        if (eat(']')) return arr;
        while (true) {
          arr.push(parse_value(depth + 1));
          skip_ws();
          if (eat(',')) continue;
          expect(']');
          return arr;
        }
      }
      case '"': return Json(parse_string_body());
      case 't':
        if (literal("true")) return Json(true);
        fail("bad literal");
      case 'f':
        if (literal("false")) return Json(false);
        fail("bad literal");
      case 'n':
        if (literal("null")) return Json();
        fail("bad literal");
      default: return Json(parse_number());
    }
  }
};

}  // namespace

Json Json::parse(std::string_view text) {
  JsonParser p{text};
  Json v = p.parse_value(0);
  p.skip_ws();
  if (p.pos != text.size()) p.fail("trailing garbage");
  return v;
}

}  // namespace sitm
