#pragma once
// Work-stealing priority scheduler: the job-execution substrate of the
// serve front-end and the batch driver, replacing the static
// atomic-counter worker pool for whole-flow jobs.
//
// Design: one deque of jobs per worker, guarded by a per-deque mutex (jobs
// here are entire Flow runs — milliseconds to seconds — so the lock is
// never the bottleneck; a lock-free Chase-Lev deque would buy nothing and
// cost auditability).  Submission round-robins across deques; an idle
// worker first drains its own deque (highest priority first, FIFO within a
// priority), then steals the best job of the first non-empty victim in
// round-robin order, counting the steal.  Per-job priorities order
// *execution start*, not completion: a higher-priority job is popped
// before any lower-priority job visible on the same deque scan.
//
// Determinism contract: the scheduler guarantees nothing about execution
// order across workers, exactly like the atomic-counter pool it replaces.
// Callers that need deterministic aggregates (batch, parallel_for_jobs)
// write results into index-addressed slots, so the output is bit-identical
// at every thread count.
//
// Two ownership modes:
//   * caller-participates (batch): construct with `threads`, submit jobs,
//     then wait_idle() — the calling thread runs the worker loop itself
//     until the pool drains, so `threads` includes the caller and only
//     threads-1 OS threads are spawned (the static pool wasted a core
//     here: it spawned `threads` workers while the caller only blocked).
//   * free-running (serve): construct with spawn_all = true; all `threads`
//     workers are OS threads, submissions are processed as they arrive,
//     and the destructor (or shutdown()) drains and joins.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "util/parallel.hpp"

namespace sitm {

class WorkStealingScheduler {
 public:
  /// `threads` resolved like resolve_worker_threads (<= 0 = one per
  /// hardware core, always >= 1).  With spawn_all = false the calling
  /// thread is counted as worker 0 and must drive wait_idle(); with
  /// spawn_all = true all workers are spawned and submissions run eagerly.
  explicit WorkStealingScheduler(int threads, bool spawn_all = false);
  ~WorkStealingScheduler();

  WorkStealingScheduler(const WorkStealingScheduler&) = delete;
  WorkStealingScheduler& operator=(const WorkStealingScheduler&) = delete;

  /// Enqueue a job.  Higher `priority` starts earlier; ties run FIFO.
  /// Jobs must not throw — wrap the body (the batch driver and serve both
  /// capture failures into reports); an escaping exception terminates.
  void submit(std::function<void()> fn, int priority = 0);

  /// Run the worker loop on the calling thread until every submitted job
  /// has finished (queues empty AND nothing in flight).  Required in
  /// caller-participates mode; legal but rarely useful in spawn_all mode.
  void wait_idle();

  /// Stop the workers, drain every queued job, join.  Idempotent; the
  /// destructor calls it.
  void shutdown();

  int num_workers() const { return num_workers_; }
  /// Jobs executed by a worker other than the deque they were submitted to.
  std::uint64_t steals() const {
    return steals_.load(std::memory_order_relaxed);
  }
  std::uint64_t executed() const {
    return executed_.load(std::memory_order_relaxed);
  }

 private:
  struct Job {
    int priority = 0;
    std::uint64_t seq = 0;  ///< global submission order, FIFO tie-break
    std::function<void()> fn;
  };
  struct Deque {
    std::mutex m;
    std::deque<Job> jobs;
  };

  /// Pop the best job of deque `d` (highest priority, lowest seq); false
  /// when empty.
  bool pop_best(Deque& d, Job* out);
  /// One scheduling step for worker `self`: own deque, then steal.  Returns
  /// false when no job was found anywhere at scan time.
  bool run_one(std::size_t self);
  void worker_loop(std::size_t self);
  /// Bump the wake epoch and notify sleepers (new work, completion-to-idle,
  /// shutdown).  The epoch makes the sleep race-free: a worker records the
  /// epoch *before* scanning the deques, so any job pushed after its scan
  /// bumps the epoch and defeats the wait predicate.
  void bump_epoch();

  int num_workers_ = 1;
  bool spawn_all_ = false;
  std::vector<std::unique_ptr<Deque>> deques_;
  std::vector<std::thread> threads_;

  std::mutex wake_m_;
  std::condition_variable wake_cv_;
  std::uint64_t wake_epoch_ = 0;  ///< guarded by wake_m_
  bool stopping_ = false;         ///< guarded by wake_m_

  std::atomic<std::uint64_t> next_seq_{0};
  std::atomic<std::uint64_t> next_deque_{0};
  std::atomic<std::int64_t> pending_{0};  ///< queued + running jobs
  std::atomic<std::uint64_t> steals_{0};
  std::atomic<std::uint64_t> executed_{0};
};

/// parallel_for on the work-stealing scheduler: run fn(i) for i in
/// [0, count) on `threads` workers (caller participates), uniform priority.
/// Same error contract as parallel_for: the first exception stops later
/// jobs from running their body and is rethrown on the calling thread once
/// the pool drains.  `out_steals` (optional) receives the steal count.
template <typename Fn>
void parallel_for_jobs(std::size_t count, int threads, Fn&& fn,
                       std::uint64_t* out_steals = nullptr) {
  threads = resolve_worker_threads(threads, count);
  if (threads <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    if (out_steals) *out_steals = 0;
    return;
  }
  std::atomic<bool> failed{false};
  std::mutex error_mutex;
  std::exception_ptr error;
  {
    WorkStealingScheduler sched(threads);
    for (std::size_t i = 0; i < count; ++i) {
      sched.submit([&, i] {
        if (failed.load(std::memory_order_relaxed)) return;
        try {
          fn(i);
        } catch (...) {
          const std::lock_guard<std::mutex> lock(error_mutex);
          if (!error) error = std::current_exception();
          failed.store(true, std::memory_order_relaxed);
        }
      });
    }
    sched.wait_idle();
    if (out_steals) *out_steals = sched.steals();
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace sitm
