#pragma once
// Minimal JSON value + writer for the structured flow/batch reports.
//
// Only what the reports need: null/bool/number/string/array/object values,
// insertion-ordered object keys (reports stay diffable), and a pretty or
// compact dumper with correct string escaping.  No parser — reports are
// write-only from this side; tests assert on the emitted text.

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace sitm {

class Json {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() = default;
  Json(bool b) : kind_(Kind::kBool), bool_(b) {}
  Json(double d) : kind_(Kind::kNumber), num_(d) {}
  Json(int v) : Json(static_cast<double>(v)) {}
  Json(long v) : Json(static_cast<double>(v)) {}
  Json(long long v) : Json(static_cast<double>(v)) {}
  Json(unsigned v) : Json(static_cast<double>(v)) {}
  Json(unsigned long v) : Json(static_cast<double>(v)) {}
  Json(unsigned long long v) : Json(static_cast<double>(v)) {}
  Json(std::string s) : kind_(Kind::kString), str_(std::move(s)) {}
  Json(std::string_view s) : Json(std::string(s)) {}
  Json(const char* s) : Json(std::string(s)) {}

  static Json array() {
    Json j;
    j.kind_ = Kind::kArray;
    return j;
  }
  static Json object() {
    Json j;
    j.kind_ = Kind::kObject;
    return j;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }

  /// Value accessors for parsed documents; each returns the default-
  /// constructed value when the kind does not match (callers validate kind()
  /// first when the distinction matters).
  bool bool_value() const { return bool_; }
  double number() const { return num_; }
  const std::string& string_value() const { return str_; }

  /// Array append.
  void push(Json v);
  std::size_t size() const { return arr_.size(); }
  const std::vector<Json>& items() const { return arr_; }

  /// Object insert-or-overwrite; keys keep first-insertion order.
  void set(std::string_view key, Json v);
  /// Object lookup; nullptr when absent (or not an object).
  const Json* find(std::string_view key) const;
  const std::vector<std::pair<std::string, Json>>& members() const {
    return obj_;
  }

  /// Serialize.  indent = 0 emits one compact line; indent > 0 pretty-prints
  /// with that many spaces per level.
  std::string dump(int indent = 0) const;

  /// JSON string escaping (quotes not included).
  static std::string escape(std::string_view s);

  /// Parse one JSON document (the full value grammar; `\uXXXX` escapes
  /// decode to UTF-8, surrogate pairs included).  Added for the serve
  /// front-end's request protocol — reports remain write-only, but the
  /// server must read newline-delimited request objects.  Throws
  /// sitm::Error with the byte offset on malformed input, trailing
  /// garbage, or nesting deeper than 256 levels (requests are untrusted).
  static Json parse(std::string_view text);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double num_ = 0;
  std::string str_;
  std::vector<Json> arr_;
  std::vector<std::pair<std::string, Json>> obj_;
};

}  // namespace sitm
