#include "util/text.hpp"

#include <cstdarg>
#include <cstdio>

namespace sitm {

std::string_view trim(std::string_view s) {
  const char* ws = " \t\r\n";
  const auto first = s.find_first_not_of(ws);
  if (first == std::string_view::npos) return {};
  const auto last = s.find_last_not_of(ws);
  return s.substr(first, last - first + 1);
}

std::vector<std::string_view> split_ws(std::string_view s) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\t' || s[i] == '\r')) ++i;
    std::size_t j = i;
    while (j < s.size() && s[j] != ' ' && s[j] != '\t' && s[j] != '\r') ++j;
    if (j > i) out.push_back(s.substr(i, j - i));
    i = j;
  }
  return out;
}

std::vector<std::string_view> split_char(std::string_view s, char delim) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string strfmt(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args2;
  va_copy(args2, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out(n > 0 ? static_cast<std::size_t>(n) : 0, '\0');
  if (n > 0) std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  va_end(args2);
  return out;
}

}  // namespace sitm
