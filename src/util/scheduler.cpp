#include "util/scheduler.hpp"

namespace sitm {

WorkStealingScheduler::WorkStealingScheduler(int threads, bool spawn_all)
    : spawn_all_(spawn_all) {
  if (threads <= 0)
    threads = static_cast<int>(std::thread::hardware_concurrency());
  if (threads < 1) threads = 1;
  num_workers_ = threads;
  deques_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i)
    deques_.push_back(std::make_unique<Deque>());
  // Worker 0 is the calling thread unless every worker is spawned.
  const int to_spawn = spawn_all_ ? threads : threads - 1;
  threads_.reserve(static_cast<std::size_t>(to_spawn));
  for (int t = 0; t < to_spawn; ++t) {
    const std::size_t self = static_cast<std::size_t>(spawn_all_ ? t : t + 1);
    threads_.emplace_back([this, self] { worker_loop(self); });
  }
}

WorkStealingScheduler::~WorkStealingScheduler() { shutdown(); }

void WorkStealingScheduler::bump_epoch() {
  {
    const std::lock_guard<std::mutex> lock(wake_m_);
    ++wake_epoch_;
  }
  wake_cv_.notify_all();
}

void WorkStealingScheduler::submit(std::function<void()> fn, int priority) {
  Job job;
  job.priority = priority;
  job.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  job.fn = std::move(fn);
  const std::size_t d =
      next_deque_.fetch_add(1, std::memory_order_relaxed) % deques_.size();
  pending_.fetch_add(1, std::memory_order_acq_rel);
  {
    const std::lock_guard<std::mutex> lock(deques_[d]->m);
    deques_[d]->jobs.push_back(std::move(job));
  }
  bump_epoch();
}

bool WorkStealingScheduler::pop_best(Deque& d, Job* out) {
  const std::lock_guard<std::mutex> lock(d.m);
  if (d.jobs.empty()) return false;
  auto best = d.jobs.begin();
  for (auto it = std::next(best); it != d.jobs.end(); ++it)
    if (it->priority > best->priority ||
        (it->priority == best->priority && it->seq < best->seq))
      best = it;
  *out = std::move(*best);
  d.jobs.erase(best);
  return true;
}

bool WorkStealingScheduler::run_one(std::size_t self) {
  Job job;
  bool found = pop_best(*deques_[self], &job);
  if (!found) {
    for (std::size_t k = 1; !found && k < deques_.size(); ++k) {
      const std::size_t victim = (self + k) % deques_.size();
      found = pop_best(*deques_[victim], &job);
    }
    if (found) steals_.fetch_add(1, std::memory_order_relaxed);
  }
  if (!found) return false;
  job.fn();
  executed_.fetch_add(1, std::memory_order_relaxed);
  if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) bump_epoch();
  return true;
}

void WorkStealingScheduler::worker_loop(std::size_t self) {
  while (true) {
    std::uint64_t epoch;
    {
      const std::lock_guard<std::mutex> lock(wake_m_);
      epoch = wake_epoch_;
    }
    // Any job pushed before this scan is found by it; any job pushed after
    // bumps the epoch past `epoch`, so the wait below cannot sleep through
    // it.
    if (run_one(self)) continue;
    std::unique_lock<std::mutex> lock(wake_m_);
    wake_cv_.wait(lock, [&] { return stopping_ || wake_epoch_ != epoch; });
    if (stopping_) {
      lock.unlock();
      while (run_one(self)) {
      }
      return;
    }
  }
}

void WorkStealingScheduler::wait_idle() {
  while (true) {
    std::uint64_t epoch;
    {
      const std::lock_guard<std::mutex> lock(wake_m_);
      epoch = wake_epoch_;
    }
    if (run_one(0)) continue;
    if (pending_.load(std::memory_order_acquire) == 0) return;
    // Jobs are in flight on other workers; wake on either the
    // completion-to-idle bump or new work to help with.
    std::unique_lock<std::mutex> lock(wake_m_);
    wake_cv_.wait(lock, [&] { return wake_epoch_ != epoch; });
  }
}

void WorkStealingScheduler::shutdown() {
  {
    const std::lock_guard<std::mutex> lock(wake_m_);
    stopping_ = true;
  }
  wake_cv_.notify_all();
  for (auto& t : threads_)
    if (t.joinable()) t.join();
  threads_.clear();
  // With no spawned workers (caller-participates, threads == 1) queued
  // jobs may remain: run them here so shutdown always drains.
  while (run_one(0)) {
  }
}

}  // namespace sitm
