#pragma once
// Dynamic bitset used for sets of SG states (StateSet).
//
// std::vector<bool> lacks word-level operations; std::bitset is fixed-size.
// This is a minimal, cache-friendly bitset with the set algebra the region
// computations need (union, intersection, difference, iteration).

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/bitwords.hpp"

namespace sitm {

/// Fixed-universe dynamic bitset.  All binary operations require operands of
/// the same universe size.
class DynBitset {
 public:
  DynBitset() = default;
  explicit DynBitset(std::size_t size)
      : size_(size), words_(bitwords::words_for(size)) {}

  std::size_t size() const { return size_; }

  bool test(std::size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }
  void set(std::size_t i) { words_[i >> 6] |= std::uint64_t{1} << (i & 63); }
  void reset(std::size_t i) {
    words_[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
  }
  void set(std::size_t i, bool v) { v ? set(i) : reset(i); }

  void clear();
  void set_all();

  std::size_t count() const;
  bool any() const;
  bool none() const { return !any(); }

  bool operator==(const DynBitset& o) const = default;

  DynBitset& operator|=(const DynBitset& o);
  DynBitset& operator&=(const DynBitset& o);
  /// Set difference: remove all elements of `o`.
  DynBitset& operator-=(const DynBitset& o);

  friend DynBitset operator|(DynBitset a, const DynBitset& b) { return a |= b; }
  friend DynBitset operator&(DynBitset a, const DynBitset& b) { return a &= b; }
  friend DynBitset operator-(DynBitset a, const DynBitset& b) { return a -= b; }

  DynBitset operator~() const;

  /// True if this set and `o` share no element.
  bool disjoint(const DynBitset& o) const;
  /// True if this set is a subset of `o`.
  bool subset_of(const DynBitset& o) const;

  /// Index of the first set bit, or npos.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::size_t first() const;
  /// Index of the first set bit after position i, or npos.
  std::size_t next(std::size_t i) const;

  /// Invoke fn(index) for every set bit, ascending.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t bits = words_[w];
      while (bits) {
        const int b = __builtin_ctzll(bits);
        fn(w * 64 + static_cast<std::size_t>(b));
        bits &= bits - 1;
      }
    }
  }

  /// Collect set bits into a vector of indices.
  std::vector<std::size_t> to_vector() const;

  /// Packed 64-bit words (tail bits zeroed); equal sets have equal words.
  /// Exposed so set-keyed memo tables can hash/compare without re-walking
  /// bits (the insertion planner keys its caches by region words).
  const std::vector<std::uint64_t>& words() const { return words_; }

 private:
  void trim_tail();
  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace sitm
