#pragma once
// Cooperative resource governance for long-running synthesis work.
//
// A RunGuard bundles the three ways a Flow run can be bounded:
//   * a wall-clock deadline,
//   * a work budget (abstract units: states explored, candidates scored,
//     signals synthesized — heterogeneous per site, coarse by design), and
//   * an externally requested cancellation (thread-safe; the handle for a
//     batch watchdog or a future `sitm serve` front-end).
//
// Hot loops poll via `charge(units, site)`.  The fast path is one relaxed
// fetch_add plus two relaxed loads — the wall clock is read only when the
// accumulated work crosses a stride boundary (kPollStride units), so a
// guarded loop costs no syscall per iteration and stays at noise level in
// the benchmarks.  Exhaustion raises GuardExhausted, a typed sitm::Error
// carrying what ran out (budget / deadline / cancelled), where, and the
// counts — the Flow engine consumes it into the report's `failure_kind`
// instead of a stringly failure.
//
// A guard is shared: one per Flow run, passed as `const RunGuard*` into
// every stage's hot loop (nullptr = unbounded, zero overhead beyond a
// branch).  All methods are thread-safe; the polling counters are mutable
// atomics so read-only pipeline stages can share a `const RunGuard&`.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

#include "util/error.hpp"

namespace sitm {

/// Why a guarded run stopped early.  kNone = still running.
enum class GuardStop : int { kNone = 0, kBudget, kDeadline, kCancelled };

const char* guard_stop_name(GuardStop stop);

/// Typed exhaustion error: which limit tripped, at which polling site, and
/// the work count / limit when it did (limit 0 = not applicable, e.g. a
/// cancellation).  what() renders all of it, so callers that only print the
/// message still show the counts.
class GuardExhausted : public Error {
 public:
  GuardExhausted(GuardStop kind, std::string site, std::uint64_t count = 0,
                 std::uint64_t limit = 0);

  GuardStop kind() const { return kind_; }
  const std::string& site() const { return site_; }
  std::uint64_t count() const { return count_; }
  std::uint64_t limit() const { return limit_; }

 private:
  GuardStop kind_;
  std::string site_;
  std::uint64_t count_, limit_;
};

class RunGuard {
 public:
  /// Default construction: unlimited (every poll is a cheap no-throw).
  RunGuard() = default;

  /// Arm a wall-clock deadline `ms` from now.  ms <= 0 disarms.
  void set_deadline_ms(double ms);
  /// Arm a total work budget (abstract units).  0 disarms.
  void set_work_budget(std::uint64_t units) {
    budget_.store(units, std::memory_order_relaxed);
  }
  /// Request cooperative cancellation; the next poll from any thread throws.
  void request_cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  bool cancel_requested() const {
    return cancelled_.load(std::memory_order_relaxed);
  }
  bool has_deadline() const {
    return deadline_ns_.load(std::memory_order_relaxed) != 0;
  }
  /// Total work units charged so far.
  std::uint64_t work() const { return work_.load(std::memory_order_relaxed); }

  /// Account `units` of work at `site`; throws GuardExhausted when the
  /// budget is exceeded, cancellation was requested, or (checked only when
  /// the counter crosses a kPollStride boundary) the deadline has passed.
  void charge(std::uint64_t units, const char* site) const {
    const std::uint64_t before = work_.fetch_add(units, std::memory_order_relaxed);
    const std::uint64_t now = before + units;
    const std::uint64_t budget = budget_.load(std::memory_order_relaxed);
    if (budget != 0 && now > budget) raise(GuardStop::kBudget, site, now, budget);
    if (cancelled_.load(std::memory_order_relaxed))
      raise(GuardStop::kCancelled, site, now, 0);
    if ((before / kPollStride) != (now / kPollStride)) check_clock(site, now);
  }
  void tick(const char* site) const { charge(1, site); }

  /// Immediate full check (stage boundaries, loop preambles): no work
  /// charged, but budget / cancellation / deadline all consulted now.
  void check(const char* site) const;

  /// Non-throwing probe of the same conditions.
  GuardStop status() const;

  /// Work units between wall-clock reads on the charge() fast path.
  static constexpr std::uint64_t kPollStride = 1024;

 private:
  [[noreturn]] void raise(GuardStop kind, const char* site, std::uint64_t count,
                          std::uint64_t limit) const;
  void check_clock(const char* site, std::uint64_t count) const;
  /// Nanoseconds since the steady-clock epoch; 0 = no deadline.
  static std::int64_t now_ns();

  mutable std::atomic<std::uint64_t> work_{0};
  std::atomic<std::uint64_t> budget_{0};
  std::atomic<std::int64_t> deadline_ns_{0};
  std::atomic<bool> cancelled_{false};
};

/// Null-tolerant helpers: every guarded hot loop takes `const RunGuard*`
/// with nullptr meaning unbounded, so call sites stay one line.
inline void guard_charge(const RunGuard* guard, std::uint64_t units,
                         const char* site) {
  if (guard) guard->charge(units, site);
}
inline void guard_check(const RunGuard* guard, const char* site) {
  if (guard) guard->check(site);
}

}  // namespace sitm
