#include "sg/regions.hpp"

#include <algorithm>

namespace sitm {

DynBitset enabled_set(const StateGraph& sg, Event e) {
  DynBitset out(sg.num_states());
  for (StateId s = 0; s < static_cast<StateId>(sg.num_states()); ++s)
    if (sg.enabled(s, e)) out.set(s);
  return out;
}

std::vector<DynBitset> all_switching_regions(const StateGraph& sg) {
  std::vector<DynBitset> region(2 * static_cast<std::size_t>(sg.num_signals()),
                                sg.empty_set());
  for (StateId s = 0; s < static_cast<StateId>(sg.num_states()); ++s)
    for (const auto& edge : sg.succs(s))
      region[2 * edge.event.signal + (edge.event.rising ? 1 : 0)].set(
          edge.target);
  return region;
}

namespace {

/// Connected components of `set` using arcs (both directions) whose
/// endpoints both lie in `set`.
std::vector<DynBitset> connected_components(const StateGraph& sg,
                                            const DynBitset& set) {
  std::vector<DynBitset> comps;
  DynBitset seen(sg.num_states());
  set.for_each([&](std::size_t seed) {
    if (seen.test(seed)) return;
    DynBitset comp(sg.num_states());
    std::vector<StateId> stack{static_cast<StateId>(seed)};
    seen.set(seed);
    comp.set(seed);
    while (!stack.empty()) {
      const StateId s = stack.back();
      stack.pop_back();
      auto visit = [&](StateId t) {
        if (set.test(t) && !seen.test(t)) {
          seen.set(t);
          comp.set(t);
          stack.push_back(t);
        }
      };
      for (const auto& e : sg.succs(s)) visit(e.target);
      for (const auto& e : sg.preds(s)) visit(e.target);
    }
    comps.push_back(std::move(comp));
  });
  return comps;
}

/// States where signal `sig` is stable (no transition of `sig` enabled).
DynBitset stable_set(const StateGraph& sg, int sig) {
  DynBitset out(sg.num_states());
  for (StateId s = 0; s < static_cast<StateId>(sg.num_states()); ++s) {
    if (!sg.enabled(s, Event{sig, true}) && !sg.enabled(s, Event{sig, false}))
      out.set(s);
  }
  return out;
}

/// BFS from `start` restricted to states in `allowed`; `start` states are
/// included only if they are in `allowed`.
DynBitset reach_within(const StateGraph& sg, const DynBitset& start,
                       const DynBitset& allowed) {
  DynBitset seen(sg.num_states());
  std::vector<StateId> stack;
  start.for_each([&](std::size_t s) {
    if (allowed.test(s)) {
      seen.set(s);
      stack.push_back(static_cast<StateId>(s));
    }
  });
  while (!stack.empty()) {
    const StateId s = stack.back();
    stack.pop_back();
    for (const auto& e : sg.succs(s)) {
      if (allowed.test(e.target) && !seen.test(e.target)) {
        seen.set(e.target);
        stack.push_back(e.target);
      }
    }
  }
  return seen;
}

}  // namespace

std::vector<Region> excitation_regions(const StateGraph& sg, Event e) {
  const DynBitset all = enabled_set(sg, e);
  std::vector<Region> regions;
  int index = 0;
  for (auto& comp : connected_components(sg, all)) {
    Region r;
    r.event = e;
    r.index = index++;
    r.er = std::move(comp);
    // Switching region: e-successors of the ER.
    r.sr = sg.empty_set();
    r.er.for_each([&](std::size_t s) {
      const StateId t = sg.successor(static_cast<StateId>(s), e);
      if (t != kNoState) r.sr.set(t);
    });
    // Trigger events: labels of arcs entering the ER from outside.
    r.er.for_each([&](std::size_t s) {
      for (const auto& p : sg.preds(static_cast<StateId>(s))) {
        if (!r.er.test(p.target)) {
          if (std::find(r.triggers.begin(), r.triggers.end(), p.event) ==
              r.triggers.end())
            r.triggers.push_back(p.event);
        }
      }
    });
    regions.push_back(std::move(r));
  }

  // Restricted quiescent regions: states where the signal is stable,
  // reachable from this region's SR, minus those reachable from any other
  // region's SR.  (Stability excludes passing through any ER of the signal,
  // which realizes the "without going through ERj" restriction.)
  const DynBitset stable = stable_set(sg, e.signal);
  std::vector<DynBitset> reach;
  reach.reserve(regions.size());
  for (const auto& r : regions)
    reach.push_back(reach_within(sg, r.sr, stable));
  for (std::size_t j = 0; j < regions.size(); ++j) {
    regions[j].qr = reach[j];
    for (std::size_t k = 0; k < regions.size(); ++k)
      if (k != j) regions[j].qr -= reach[k];
  }
  return regions;
}

std::vector<Region> signal_regions(const StateGraph& sg, int sig) {
  auto rise = excitation_regions(sg, Event{sig, true});
  auto fall = excitation_regions(sg, Event{sig, false});
  rise.insert(rise.end(), std::make_move_iterator(fall.begin()),
              std::make_move_iterator(fall.end()));
  return rise;
}

DynBitset union_er(const StateGraph& sg, const std::vector<Region>& regions) {
  DynBitset out = sg.empty_set();
  for (const auto& r : regions) out |= r.er;
  return out;
}

DynBitset union_qr(const StateGraph& sg, const std::vector<Region>& regions) {
  DynBitset out = sg.empty_set();
  for (const auto& r : regions) out |= r.qr;
  return out;
}

std::vector<int> trigger_signals(const StateGraph& sg, int sig) {
  DynBitset seen(64);
  for (bool rising : {true, false}) {
    for (const auto& r : excitation_regions(sg, Event{sig, rising}))
      for (const auto& t : r.triggers) seen.set(static_cast<std::size_t>(t.signal));
  }
  std::vector<int> out;
  seen.for_each([&](std::size_t i) { out.push_back(static_cast<int>(i)); });
  return out;
}

bool next_value(const StateGraph& sg, StateId s, int sig) {
  if (sg.enabled(s, Event{sig, true})) return true;
  if (sg.enabled(s, Event{sig, false})) return false;
  return sg.value(s, sig);
}

}  // namespace sitm
