#pragma once
// Signals and events of asynchronous circuit specifications.

#include <cstdint>
#include <string>

namespace sitm {

/// State code: bit i holds the current value of signal i.  Limits a
/// specification to 64 signals, far above the benchmark sizes (< 32).
using StateCode = std::uint64_t;

/// Role of a signal in the specification.
enum class SignalKind : std::uint8_t {
  kInput,     ///< driven by the environment
  kOutput,    ///< driven by the circuit, observable
  kInternal,  ///< driven by the circuit, invisible to the environment
              ///< (e.g. decomposition signals inserted by the mapper)
};

/// True for signals the circuit must implement (outputs and internals).
inline bool is_noninput(SignalKind k) { return k != SignalKind::kInput; }

/// A signal transition: rising (a+) or falling (a-) edge of a signal.
struct Event {
  int signal = -1;
  bool rising = true;

  bool operator==(const Event&) const = default;
  /// Total order so events can key ordered maps.
  bool operator<(const Event& o) const {
    return signal != o.signal ? signal < o.signal
                              : (rising ? 1 : 0) < (o.rising ? 1 : 0);
  }
};

/// Event with the opposite polarity of `e`.
inline Event opposite(Event e) { return Event{e.signal, !e.rising}; }

/// Signal descriptor.
struct Signal {
  std::string name;
  SignalKind kind = SignalKind::kOutput;
};

/// "a+" / "a-" rendering given a signal name.
inline std::string event_name(const std::string& sig, bool rising) {
  return sig + (rising ? "+" : "-");
}

}  // namespace sitm
