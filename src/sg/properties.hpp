#pragma once
// Implementability properties of State Graphs (paper Section 2.1):
// consistency, determinism, commutativity, output persistency, and
// Complete State Coding (CSC) / Unique State Coding (USC).

#include <optional>
#include <string>
#include <vector>

#include "sg/state_graph.hpp"

namespace sitm {

/// Result of a property check: holds() plus a human-readable counterexample.
struct PropertyResult {
  bool ok = true;
  std::string why;  ///< empty when ok

  explicit operator bool() const { return ok; }
  static PropertyResult pass() { return {}; }
  static PropertyResult fail(std::string why) { return {false, std::move(why)}; }
};

/// Rising and falling transitions of each signal alternate and every arc
/// flips exactly the bit of its labeling signal.
PropertyResult check_consistency(const StateGraph& sg);

/// At most one successor per (state, event).
PropertyResult check_determinism(const StateGraph& sg);

/// Whenever two events can fire from a state in any order, both orders are
/// possible and reach the same state (all "diamonds" close).
PropertyResult check_commutativity(const StateGraph& sg);

/// Events of the given signals are never disabled by another event firing.
/// `signals` defaults to all non-input signals (output persistency).
PropertyResult check_persistency(const StateGraph& sg,
                                 const std::vector<int>& signals);
PropertyResult check_output_persistency(const StateGraph& sg);

/// Determinism + commutativity + output persistency (paper's definition of
/// SG speed-independence).
PropertyResult check_speed_independence(const StateGraph& sg);

/// Complete State Coding: states with equal codes enable the same non-input
/// events.
PropertyResult check_csc(const StateGraph& sg);

/// Unique State Coding: no two distinct states share a code.
PropertyResult check_usc(const StateGraph& sg);

/// All of the above except USC; the precondition of the mapping flow.
PropertyResult check_implementability(const StateGraph& sg);

/// A commutativity diamond: s -a-> sa, s -b-> sb, sa -b-> q, sb -a-> q.
struct Diamond {
  StateId bottom = kNoState;  ///< s
  StateId left = kNoState;    ///< sa (after a)
  StateId right = kNoState;   ///< sb (after b)
  StateId top = kNoState;     ///< q
  Event a, b;
};

/// Enumerate every diamond of the SG (each unordered {a,b} pair reported
/// once).  Used by the SIP-set computation (paper Section 3.2, step 3).
std::vector<Diamond> enumerate_diamonds(const StateGraph& sg);

}  // namespace sitm
