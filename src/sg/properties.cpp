#include "sg/properties.hpp"

#include <map>

#include "util/text.hpp"

namespace sitm {

PropertyResult check_consistency(const StateGraph& sg) {
  for (StateId s = 0; s < static_cast<StateId>(sg.num_states()); ++s) {
    for (const auto& e : sg.succs(s)) {
      const bool before = sg.value(s, e.event.signal);
      const bool after = sg.value(e.target, e.event.signal);
      if (before == e.event.rising || after != e.event.rising) {
        return PropertyResult::fail(strfmt(
            "inconsistent arc %s: %s -> %s", sg.event_string(e.event).c_str(),
            sg.code_string(s).c_str(), sg.code_string(e.target).c_str()));
      }
      const StateCode diff = sg.code(s) ^ sg.code(e.target);
      if (diff != (StateCode{1} << e.event.signal)) {
        return PropertyResult::fail(strfmt(
            "arc %s changes signals other than its own: %s -> %s",
            sg.event_string(e.event).c_str(), sg.code_string(s).c_str(),
            sg.code_string(e.target).c_str()));
      }
    }
  }
  return PropertyResult::pass();
}

PropertyResult check_determinism(const StateGraph& sg) {
  for (StateId s = 0; s < static_cast<StateId>(sg.num_states()); ++s) {
    const auto& edges = sg.succs(s);
    for (std::size_t i = 0; i < edges.size(); ++i) {
      for (std::size_t j = i + 1; j < edges.size(); ++j) {
        if (edges[i].event == edges[j].event &&
            edges[i].target != edges[j].target) {
          return PropertyResult::fail(
              strfmt("state %s has two %s-successors", sg.code_string(s).c_str(),
                     sg.event_string(edges[i].event).c_str()));
        }
      }
    }
  }
  return PropertyResult::pass();
}

PropertyResult check_commutativity(const StateGraph& sg) {
  for (StateId s = 0; s < static_cast<StateId>(sg.num_states()); ++s) {
    const auto& edges = sg.succs(s);
    for (std::size_t i = 0; i < edges.size(); ++i) {
      for (std::size_t j = i + 1; j < edges.size(); ++j) {
        const Event a = edges[i].event, b = edges[j].event;
        if (a == b) continue;
        // After a, is b still enabled?  If both orders can complete they
        // must join in the same state.
        const StateId s_ab = sg.successor(edges[i].target, b);
        const StateId s_ba = sg.successor(edges[j].target, a);
        if (s_ab != kNoState && s_ba != kNoState && s_ab != s_ba) {
          return PropertyResult::fail(strfmt(
              "non-commutative pair (%s,%s) from state %s",
              sg.event_string(a).c_str(), sg.event_string(b).c_str(),
              sg.code_string(s).c_str()));
        }
      }
    }
  }
  return PropertyResult::pass();
}

PropertyResult check_persistency(const StateGraph& sg,
                                 const std::vector<int>& signals) {
  DynBitset watched(64);
  for (int sig : signals) watched.set(static_cast<std::size_t>(sig));

  for (StateId s = 0; s < static_cast<StateId>(sg.num_states()); ++s) {
    for (const auto& ea : sg.succs(s)) {
      // Firing ea must not disable any other enabled watched event.
      for (const auto& eb : sg.succs(s)) {
        if (eb.event == ea.event) continue;
        if (!watched.test(static_cast<std::size_t>(eb.event.signal))) continue;
        if (!sg.enabled(ea.target, eb.event)) {
          return PropertyResult::fail(strfmt(
              "event %s disabled by %s in state %s",
              sg.event_string(eb.event).c_str(),
              sg.event_string(ea.event).c_str(), sg.code_string(s).c_str()));
        }
      }
    }
  }
  return PropertyResult::pass();
}

PropertyResult check_output_persistency(const StateGraph& sg) {
  return check_persistency(sg, sg.noninput_signals());
}

PropertyResult check_speed_independence(const StateGraph& sg) {
  if (auto r = check_determinism(sg); !r) return r;
  if (auto r = check_commutativity(sg); !r) return r;
  return check_output_persistency(sg);
}

namespace {

/// Bitmask of enabled non-input events: bit 2*sig (+1 if rising).
std::uint64_t noninput_event_mask(const StateGraph& sg, StateId s) {
  std::uint64_t mask = 0;
  for (const auto& e : sg.succs(s)) {
    if (is_noninput(sg.signal(e.event.signal).kind)) {
      // num_signals <= 64 would overflow 2 bits/signal in uint64; use a
      // 128-bit-safe encoding only if needed.  Benchmarks have < 32 signals.
      mask |= std::uint64_t{1}
              << (2 * (e.event.signal % 32) + (e.event.rising ? 1 : 0));
    }
  }
  return mask;
}

}  // namespace

PropertyResult check_csc(const StateGraph& sg) {
  std::map<StateCode, std::pair<StateId, std::uint64_t>> seen;
  for (StateId s = 0; s < static_cast<StateId>(sg.num_states()); ++s) {
    const std::uint64_t mask = noninput_event_mask(sg, s);
    auto [it, inserted] = seen.emplace(sg.code(s), std::make_pair(s, mask));
    if (!inserted && it->second.second != mask) {
      return PropertyResult::fail(
          strfmt("CSC conflict between states %d and %d (code %s)",
                 static_cast<int>(it->second.first), static_cast<int>(s),
                 sg.code_string(s).c_str()));
    }
  }
  return PropertyResult::pass();
}

PropertyResult check_usc(const StateGraph& sg) {
  std::map<StateCode, StateId> seen;
  for (StateId s = 0; s < static_cast<StateId>(sg.num_states()); ++s) {
    auto [it, inserted] = seen.emplace(sg.code(s), s);
    if (!inserted) {
      return PropertyResult::fail(strfmt("states %d and %d share code %s",
                                         static_cast<int>(it->second),
                                         static_cast<int>(s),
                                         sg.code_string(s).c_str()));
    }
  }
  return PropertyResult::pass();
}

PropertyResult check_implementability(const StateGraph& sg) {
  if (auto r = check_consistency(sg); !r) return r;
  if (auto r = check_speed_independence(sg); !r) return r;
  return check_csc(sg);
}

std::vector<Diamond> enumerate_diamonds(const StateGraph& sg) {
  std::vector<Diamond> out;
  for (StateId s = 0; s < static_cast<StateId>(sg.num_states()); ++s) {
    const auto& edges = sg.succs(s);
    for (std::size_t i = 0; i < edges.size(); ++i) {
      for (std::size_t j = i + 1; j < edges.size(); ++j) {
        const Event a = edges[i].event, b = edges[j].event;
        if (a == b) continue;
        const StateId top = sg.successor(edges[i].target, b);
        if (top == kNoState) continue;
        if (sg.successor(edges[j].target, a) != top) continue;
        out.push_back(Diamond{s, edges[i].target, edges[j].target, top, a, b});
      }
    }
  }
  return out;
}

}  // namespace sitm
