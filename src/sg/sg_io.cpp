#include "sg/sg_io.hpp"

#include <istream>
#include <map>
#include <ostream>
#include <sstream>

#include "util/error.hpp"
#include "util/text.hpp"

namespace sitm {

Event parse_event(const StateGraph& sg, std::string_view token) {
  if (token.size() < 2) throw Error("bad event token '" + std::string(token) + "'");
  const char polarity = token.back();
  if (polarity != '+' && polarity != '-')
    throw Error("event token must end in +/-: '" + std::string(token) + "'");
  const auto name = token.substr(0, token.size() - 1);
  const int sig = sg.find_signal(name);
  if (sig < 0) throw Error("unknown signal '" + std::string(name) + "'");
  return Event{sig, polarity == '+'};
}

StateGraph read_sg(std::istream& in, std::string* name) {
  StateGraph sg;
  std::map<std::string, StateId, std::less<>> ids;
  struct RawArc {
    std::string from, event, to;
    int line = 0;
    int event_col = 0;  ///< 1-based column of the event token
  };
  std::vector<RawArc> arcs;
  std::string initial_name, initial_code;
  bool in_graph = false;
  int line_no = 0, initial_line = 0;
  int initial_state_col = 0, initial_code_col = 0;

  auto state_id = [&](std::string_view token) -> StateId {
    auto it = ids.find(token);
    if (it != ids.end()) return it->second;
    const StateId id = sg.add_state(0);
    ids.emplace(std::string(token), id);
    return id;
  };

  std::string line;
  // 1-based column of a token that is a view into `line` — the same
  // location context the .g reader attaches to its errors.
  auto col_of = [&](std::string_view token) {
    return static_cast<int>(token.data() - line.data()) + 1;
  };
  while (std::getline(in, line)) {
    ++line_no;
    const auto text = trim(line);
    if (text.empty() || text[0] == '#') continue;
    const auto tokens = split_ws(text);
    const auto& head = tokens[0];
    if (head == ".model") {
      if (name && tokens.size() > 1) *name = std::string(tokens[1]);
    } else if (head == ".inputs" || head == ".outputs" || head == ".internal") {
      const SignalKind kind = head == ".inputs"    ? SignalKind::kInput
                              : head == ".outputs" ? SignalKind::kOutput
                                                   : SignalKind::kInternal;
      for (std::size_t i = 1; i < tokens.size(); ++i)
        sg.add_signal(std::string(tokens[i]), kind);
    } else if (head == ".graph") {
      in_graph = true;
    } else if (head == ".initial") {
      if (tokens.size() != 3)
        throw ParseError(".initial needs <state> <code>", line_no,
                         col_of(head));
      initial_name = std::string(tokens[1]);
      initial_code = std::string(tokens[2]);
      initial_line = line_no;
      initial_state_col = col_of(tokens[1]);
      initial_code_col = col_of(tokens[2]);
    } else if (head == ".end") {
      break;
    } else if (in_graph) {
      if (tokens.size() != 3)
        throw ParseError("graph line needs 3 tokens: " + line, line_no,
                         col_of(head));
      arcs.push_back(RawArc{std::string(tokens[0]), std::string(tokens[1]),
                            std::string(tokens[2]), line_no,
                            col_of(tokens[1])});
      state_id(tokens[0]);
      state_id(tokens[2]);
    } else {
      throw ParseError("unexpected line: " + line, line_no, col_of(head));
    }
  }

  if (initial_name.empty()) throw Error(".initial missing");
  if (static_cast<int>(initial_code.size()) != sg.num_signals())
    throw ParseError(".initial code length != number of signals",
                     initial_line, initial_code_col);

  for (const auto& arc : arcs) {
    try {
      sg.add_arc(ids.at(arc.from), parse_event(sg, arc.event), ids.at(arc.to));
    } catch (const ParseError&) {
      throw;
    } catch (const Error& e) {
      throw ParseError(e.what(), arc.line, arc.event_col);
    }
  }

  const auto init_it = ids.find(initial_name);
  if (init_it == ids.end())
    throw ParseError("unknown initial state " + initial_name, initial_line,
                     initial_state_col);
  sg.set_initial(init_it->second);

  // Propagate codes from the initial state; verify agreement on re-visit.
  StateCode init = 0;
  for (std::size_t i = 0; i < initial_code.size(); ++i) {
    if (initial_code[i] == '1')
      init |= StateCode{1} << i;
    else if (initial_code[i] != '0')
      throw ParseError("initial code must be 0/1 string", initial_line,
                       initial_code_col);
  }
  std::vector<int> known(sg.num_states(), 0);
  std::vector<StateCode> code(sg.num_states(), 0);
  code[sg.initial()] = init;
  known[sg.initial()] = 1;
  std::vector<StateId> stack{sg.initial()};
  while (!stack.empty()) {
    const StateId s = stack.back();
    stack.pop_back();
    for (const auto& e : sg.succs(s)) {
      const StateCode next = code[s] ^ (StateCode{1} << e.event.signal);
      if (((code[s] >> e.event.signal) & 1) == (e.event.rising ? 1u : 0u))
        throw Error("inconsistent event " + sg.event_string(e.event) +
                    " leaving state with the signal already at target value");
      if (!known[e.target]) {
        known[e.target] = 1;
        code[e.target] = next;
        stack.push_back(e.target);
      } else if (code[e.target] != next) {
        throw Error("inconsistent codes for a state reached by two paths");
      }
    }
  }
  for (StateId s = 0; s < static_cast<StateId>(sg.num_states()); ++s)
    if (!known[s]) throw Error("state unreachable from initial state");

  // Rebuild with codes (StateGraph stores codes immutably at add_state).
  StateGraph out;
  for (const auto& sig : sg.signals()) out.add_signal(sig.name, sig.kind);
  for (StateId s = 0; s < static_cast<StateId>(sg.num_states()); ++s)
    out.add_state(code[s]);
  for (StateId s = 0; s < static_cast<StateId>(sg.num_states()); ++s)
    for (const auto& e : sg.succs(s)) out.add_arc(s, e.event, e.target);
  out.set_initial(sg.initial());
  return out;
}

StateGraph read_sg_string(const std::string& text, std::string* name) {
  std::istringstream in(text);
  return read_sg(in, name);
}

void write_sg(std::ostream& out, const StateGraph& sg, const std::string& name) {
  out << ".model " << name << "\n";
  auto emit_kind = [&](const char* head, SignalKind kind) {
    bool any = false;
    for (const auto& sig : sg.signals())
      if (sig.kind == kind) {
        if (!any) out << head;
        any = true;
        out << ' ' << sig.name;
      }
    if (any) out << "\n";
  };
  emit_kind(".inputs", SignalKind::kInput);
  emit_kind(".outputs", SignalKind::kOutput);
  emit_kind(".internal", SignalKind::kInternal);
  out << ".graph\n";
  for (StateId s = 0; s < static_cast<StateId>(sg.num_states()); ++s)
    for (const auto& e : sg.succs(s))
      out << 's' << s << ' ' << sg.event_string(e.event) << " s" << e.target
          << "\n";
  out << ".initial s" << sg.initial() << ' ' << sg.code_string(sg.initial())
      << "\n.end\n";
}

std::string write_sg_string(const StateGraph& sg, const std::string& name) {
  std::ostringstream out;
  write_sg(out, sg, name);
  return out.str();
}

}  // namespace sitm
