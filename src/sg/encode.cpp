#include "sg/encode.hpp"

#include "util/error.hpp"

namespace sitm {

BddRef encode_codes(BddManager& mgr, const StateGraph& sg,
                    const DynBitset& set) {
  if (mgr.num_vars() < sg.num_signals())
    throw Error("encode_codes: manager too small for the signal count");
  BddRef sum = mgr.bdd_false();
  set.for_each([&](std::size_t s) {
    const StateCode code = sg.code(static_cast<StateId>(s));
    BddRef minterm = mgr.bdd_true();
    for (int v = sg.num_signals() - 1; v >= 0; --v)
      minterm = mgr.bdd_and(minterm, mgr.literal(v, (code >> v) & 1));
    sum = mgr.bdd_or(sum, minterm);
  });
  return sum;
}

bool symbolic_csc(BddManager& mgr, const StateGraph& sg) {
  const DynBitset reachable = sg.reachable();
  for (int sig : sg.noninput_signals()) {
    for (bool rising : {true, false}) {
      const Event e{sig, rising};
      DynBitset enabled(sg.num_states()), disabled(sg.num_states());
      reachable.for_each([&](std::size_t s) {
        (sg.enabled(static_cast<StateId>(s), e) ? enabled : disabled).set(s);
      });
      const BddRef a = encode_codes(mgr, sg, enabled);
      const BddRef b = encode_codes(mgr, sg, disabled);
      if (mgr.bdd_and(a, b) != mgr.bdd_false()) return false;
    }
  }
  return true;
}

bool symbolic_usc(BddManager& mgr, const StateGraph& sg) {
  const DynBitset reachable = sg.reachable();
  const BddRef codes = encode_codes(mgr, sg, reachable);
  // Variables beyond the signal count are unconstrained in every minterm.
  double scale = 1.0;
  for (int v = sg.num_signals(); v < mgr.num_vars(); ++v) scale *= 2.0;
  return mgr.sat_count(codes) / scale ==
         static_cast<double>(reachable.count());
}

bool symbolic_cover_ok(BddManager& mgr, const StateGraph& sg,
                       const Cover& cover, const DynBitset& on,
                       const DynBitset& off) {
  const BddRef f = mgr.from_cover(cover);
  const BddRef on_codes = encode_codes(mgr, sg, on);
  const BddRef off_codes = encode_codes(mgr, sg, off);
  // on => f  and  f & off = 0.
  return mgr.bdd_imp(on_codes, f) == mgr.bdd_true() &&
         mgr.bdd_and(f, off_codes) == mgr.bdd_false();
}

}  // namespace sitm
