#pragma once
// Symbolic encodings of State Graph state sets.
//
// Bridges the explicit SG world and the BDD package: characteristic
// functions of state sets over the signal variables, symbolic CSC/USC
// checks, and symbolic validation of cover functions.  Used as an
// independent cross-check of the explicit algorithms (same-author follow-up
// work moved the whole flow onto BDDs; here the explicit engine is primary
// and the symbolic one is the referee).

#include "bdd/bdd.hpp"
#include "sg/state_graph.hpp"
#include "util/dynbitset.hpp"

namespace sitm {

/// Characteristic function (over signal variables) of the codes of the
/// states in `set`.  Distinct states sharing a code collapse to one minterm.
BddRef encode_codes(BddManager& mgr, const StateGraph& sg,
                    const DynBitset& set);

/// Symbolic CSC check: for every non-input event, the codes of states
/// enabling it must be disjoint from the codes of reachable states that do
/// not.  Equivalent to check_csc (the tests assert this).
bool symbolic_csc(BddManager& mgr, const StateGraph& sg);

/// Symbolic USC check: no two distinct states share a code — i.e. the
/// number of distinct reachable codes equals the number of states.
bool symbolic_usc(BddManager& mgr, const StateGraph& sg);

/// Symbolic MC-cover validation: `cover` evaluates to 1 on all of `on` and
/// to 0 on all of `off` (state sets given explicitly, comparison done on
/// the BDD level).
bool symbolic_cover_ok(BddManager& mgr, const StateGraph& sg,
                       const Cover& cover, const DynBitset& on,
                       const DynBitset& off);

}  // namespace sitm
