#pragma once
// State Graph (SG): the behavioural model of the paper (Section 2.1).
//
// An SG is a directed graph whose nodes (states) are labeled with signal
// value vectors and whose arcs are labeled with signal transitions.  The
// technology mapping flow requires the SG to be consistent, deterministic,
// commutative and output-persistent, and to satisfy Complete State Coding.

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sg/signal.hpp"
#include "util/dynbitset.hpp"

namespace sitm {

/// Index of a state inside a StateGraph.
using StateId = std::int32_t;
inline constexpr StateId kNoState = -1;

/// Labeled arc of a state graph.
struct Arc {
  Event event;
  StateId from = kNoState;
  StateId to = kNoState;
};

/// Explicit state graph over at most 64 signals.
///
/// States are created with `add_state` and connected with `add_arc`; the
/// per-state adjacency (successors/predecessors) is maintained eagerly so
/// the region computations can traverse in both directions.
class StateGraph {
 public:
  // ----- construction -------------------------------------------------

  /// Register a signal; returns its index.  Throws if the name is already
  /// used or more than 64 signals are declared.
  int add_signal(std::string name, SignalKind kind);

  /// Create a state carrying binary code `code`; returns its id.
  StateId add_state(StateCode code);

  /// Connect `from` to `to` with event `ev`.  No consistency check is done
  /// here; use `check_consistency` after construction.
  void add_arc(StateId from, Event ev, StateId to);

  void set_initial(StateId s) { initial_ = s; }

  // ----- basic queries -------------------------------------------------

  int num_signals() const { return static_cast<int>(signals_.size()); }
  std::size_t num_states() const { return codes_.size(); }
  std::size_t num_arcs() const;
  StateId initial() const { return initial_; }

  const Signal& signal(int i) const { return signals_[i]; }
  const std::vector<Signal>& signals() const { return signals_; }
  /// Index of a signal by name, or -1.
  int find_signal(std::string_view name) const;

  /// Indices of all input / non-input signals.
  std::vector<int> input_signals() const;
  std::vector<int> noninput_signals() const;

  StateCode code(StateId s) const { return codes_[s]; }
  bool value(StateId s, int signal) const {
    return (codes_[s] >> signal) & 1u;
  }

  struct Edge {
    Event event;
    StateId target;
  };
  const std::vector<Edge>& succs(StateId s) const { return succs_[s]; }
  const std::vector<Edge>& preds(StateId s) const { return preds_[s]; }

  /// True if event `e` is enabled (has an outgoing arc) in state `s`.
  /// O(1): answered from a per-state event bitmap maintained by `add_arc`,
  /// not by scanning the adjacency list (this is the innermost query of the
  /// region, CSC and verification loops).
  bool enabled(StateId s, Event e) const {
    const int id = event_id(e);
    return (ev_mask_[s][id >> 6] >> (id & 63)) & 1u;
  }
  /// Raw per-state bitmap behind `enabled`: 2 bits per signal, indexed by
  /// the dense event id `2 * signal + rising` (word `id >> 6`, bit
  /// `id & 63`).  Exposed so conflict scans can mask whole event classes
  /// word-at-a-time instead of re-walking the adjacency list per query.
  const std::array<std::uint64_t, 2>& enabled_mask(StateId s) const {
    return ev_mask_[s];
  }
  /// Event bitmap (same layout as `enabled_mask`) with both polarity bits
  /// set for every non-input signal; `enabled_mask(s) & noninput_event_mask()`
  /// is the state's output-event mask.
  std::array<std::uint64_t, 2> noninput_event_mask() const;

  /// Successor of `s` under event `e`, or kNoState.  (Assumes determinism;
  /// returns the first matching arc.)
  StateId successor(StateId s, Event e) const;
  /// All events enabled in `s`.
  std::vector<Event> enabled_events(StateId s) const;

  /// Render the code of `s` as a 0/1 string in signal order, e.g. "1010".
  std::string code_string(StateId s) const;
  /// Human-readable event name, e.g. "csc0+".
  std::string event_string(Event e) const;

  /// Empty state set sized for this graph.
  DynBitset empty_set() const { return DynBitset(num_states()); }
  /// Set of all states.
  DynBitset full_set() const;
  /// States reachable from the initial state.
  DynBitset reachable() const;

  /// Remove states unreachable from the initial state; renumbers states.
  /// Returns the number of removed states.  When `old_to_new` is given it
  /// receives the renumbering (kNoState for removed states), sized to the
  /// pre-prune state count.
  std::size_t prune_unreachable(std::vector<StateId>* old_to_new = nullptr);

 private:
  /// Dense id of an event: 2 bits per signal, 128 bits cover 64 signals.
  static int event_id(Event e) { return 2 * e.signal + (e.rising ? 1 : 0); }

  std::vector<Signal> signals_;
  std::vector<StateCode> codes_;
  std::vector<std::vector<Edge>> succs_;
  std::vector<std::vector<Edge>> preds_;
  /// Per-state bitmap of enabled events, indexed by `event_id`.
  std::vector<std::array<std::uint64_t, 2>> ev_mask_;
  StateId initial_ = kNoState;
};

}  // namespace sitm
