#pragma once
// Observational equivalence of State Graphs.
//
// Signal insertion must not change the circuit's observable behaviour: after
// hiding the inserted internal signals, the new SG must be weakly bisimilar
// to the original one.  This module implements weak bisimulation over a
// chosen set of visible signals (internal transitions become tau moves) and
// is used by the test suite to validate every accepted insertion end to end
// — a stronger statement than the per-property SIP checks.

#include <string>
#include <vector>

#include "sg/state_graph.hpp"

namespace sitm {

struct ObserveResult {
  bool equivalent = true;
  std::string why;  ///< counterexample description when not equivalent

  explicit operator bool() const { return equivalent; }
};

/// Weak bisimulation check between `a` and `b` over the signals named in
/// `visible` (all other signals are hidden tau moves).  Both graphs must
/// contain every visible signal; the comparison starts from the initial
/// states.
ObserveResult weakly_bisimilar(const StateGraph& a, const StateGraph& b,
                               const std::vector<std::string>& visible);

/// Convenience: compare `before` with `after` hiding every signal of `after`
/// that does not exist in `before` (the inserted internal signals).
ObserveResult observationally_equivalent(const StateGraph& before,
                                         const StateGraph& after);

}  // namespace sitm
