#include "sg/observe.hpp"

#include <map>

#include "util/error.hpp"
#include "util/text.hpp"

namespace sitm {

namespace {

/// Per-graph weak-transition tables.
struct WeakGraph {
  const StateGraph* sg;
  std::vector<char> visible_signal;        // by signal index
  std::vector<DynBitset> tau_closure;      // per state
  // weak successors per (visible event id, state); event id = 2*vis + pol.
  std::vector<std::vector<DynBitset>> weak;
  std::vector<Event> events;               // visible events by id
};

WeakGraph build(const StateGraph& sg, const std::vector<std::string>& visible) {
  WeakGraph w;
  w.sg = &sg;
  w.visible_signal.assign(static_cast<std::size_t>(sg.num_signals()), 0);
  std::map<std::string, int> index;
  for (std::size_t i = 0; i < visible.size(); ++i) {
    const int sig = sg.find_signal(visible[i]);
    if (sig < 0) throw Error("weakly_bisimilar: missing signal " + visible[i]);
    w.visible_signal[static_cast<std::size_t>(sig)] = 1;
    index[visible[i]] = static_cast<int>(i);
  }

  const auto n = static_cast<StateId>(sg.num_states());
  // tau closure: BFS over hidden-signal arcs.
  w.tau_closure.assign(static_cast<std::size_t>(n), DynBitset(sg.num_states()));
  for (StateId s = 0; s < n; ++s) {
    DynBitset& closure = w.tau_closure[static_cast<std::size_t>(s)];
    std::vector<StateId> stack{s};
    closure.set(static_cast<std::size_t>(s));
    while (!stack.empty()) {
      const StateId u = stack.back();
      stack.pop_back();
      for (const auto& edge : sg.succs(u)) {
        if (w.visible_signal[static_cast<std::size_t>(edge.event.signal)])
          continue;
        if (!closure.test(static_cast<std::size_t>(edge.target))) {
          closure.set(static_cast<std::size_t>(edge.target));
          stack.push_back(edge.target);
        }
      }
    }
  }

  // Visible event universe (ordered by the `visible` list for stable ids).
  w.events.resize(2 * visible.size());
  for (const auto& [name, vis] : index) {
    const int sig = sg.find_signal(name);
    w.events[static_cast<std::size_t>(2 * vis)] = Event{sig, false};
    w.events[static_cast<std::size_t>(2 * vis + 1)] = Event{sig, true};
  }

  // weak[e][s] = tau* e tau* successors.
  w.weak.assign(w.events.size(),
                std::vector<DynBitset>(static_cast<std::size_t>(n),
                                       DynBitset(sg.num_states())));
  for (std::size_t e = 0; e < w.events.size(); ++e) {
    for (StateId s = 0; s < n; ++s) {
      DynBitset& out = w.weak[e][static_cast<std::size_t>(s)];
      w.tau_closure[static_cast<std::size_t>(s)].for_each([&](std::size_t u) {
        const StateId v =
            sg.successor(static_cast<StateId>(u), w.events[e]);
        if (v != kNoState) out |= w.tau_closure[static_cast<std::size_t>(v)];
      });
    }
  }
  return w;
}

}  // namespace

ObserveResult weakly_bisimilar(const StateGraph& a, const StateGraph& b,
                               const std::vector<std::string>& visible) {
  const WeakGraph wa = build(a, visible);
  const WeakGraph wb = build(b, visible);

  const auto na = static_cast<std::size_t>(a.num_states());
  const auto nb = static_cast<std::size_t>(b.num_states());
  // relation[s] = set of b-states currently related to a-state s.
  std::vector<DynBitset> relation(na, DynBitset(nb));
  for (auto& row : relation) row.set_all();

  // One direction of the weak bisimulation conditions; `swapped` mirrors it.
  auto violates = [&](const WeakGraph& wl, const WeakGraph& wr, StateId s,
                      StateId t, const std::vector<DynBitset>& rel,
                      bool swapped) -> bool {
    // Visible strong moves of s must be weakly matched by t.
    for (const auto& edge : wl.sg->succs(s)) {
      const bool vis =
          wl.visible_signal[static_cast<std::size_t>(edge.event.signal)];
      DynBitset candidates(wr.sg->num_states());
      if (vis) {
        // Find the event id via the shared ordering.
        std::size_t eid = 0;
        for (; eid < wl.events.size(); ++eid)
          if (wl.events[eid] == edge.event) break;
        candidates = wr.weak[eid][static_cast<std::size_t>(t)];
      } else {
        candidates = wr.tau_closure[static_cast<std::size_t>(t)];
      }
      bool matched = false;
      candidates.for_each([&](std::size_t t2) {
        if (matched) return;
        const bool related =
            swapped ? rel[t2].test(static_cast<std::size_t>(edge.target))
                    : rel[static_cast<std::size_t>(edge.target)].test(t2);
        if (related) matched = true;
      });
      if (!matched) return true;
    }
    return false;
  };

  bool changed = true;
  while (changed) {
    changed = false;
    for (StateId s = 0; s < static_cast<StateId>(na); ++s) {
      auto pairs = relation[static_cast<std::size_t>(s)].to_vector();
      for (std::size_t t : pairs) {
        if (violates(wa, wb, s, static_cast<StateId>(t), relation, false) ||
            violates(wb, wa, static_cast<StateId>(t), s, relation, true)) {
          relation[static_cast<std::size_t>(s)].reset(t);
          changed = true;
        }
      }
    }
  }

  if (!relation[static_cast<std::size_t>(a.initial())].test(
          static_cast<std::size_t>(b.initial()))) {
    return ObserveResult{
        false, strfmt("initial states not weakly bisimilar over %zu visible "
                      "signals",
                      visible.size())};
  }
  return ObserveResult{};
}

ObserveResult observationally_equivalent(const StateGraph& before,
                                         const StateGraph& after) {
  std::vector<std::string> visible;
  for (const auto& sig : before.signals()) visible.push_back(sig.name);
  return weakly_bisimilar(before, after, visible);
}

}  // namespace sitm
