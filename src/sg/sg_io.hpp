#pragma once
// Text format for State Graphs.
//
//   .model <name>
//   .inputs  a b ...
//   .outputs c d ...
//   .internal x ...          (optional)
//   .graph
//   <state> <event> <state>  e.g.  s0 a+ s1
//   ...
//   .initial <state> <code>  code is a 0/1 string in declaration order
//   .end
//
// Lines starting with '#' are comments.  State names are arbitrary tokens;
// codes of non-initial states are derived by propagating the initial code
// along arcs (one bit flip per arc), which `read_sg` verifies.

#include <iosfwd>
#include <string>

#include "sg/state_graph.hpp"

namespace sitm {

/// Parse the .sg format; throws sitm::Error on malformed input or
/// inconsistent codes.  `name` (if non-null) receives the .model name.
StateGraph read_sg(std::istream& in, std::string* name = nullptr);
StateGraph read_sg_string(const std::string& text, std::string* name = nullptr);

/// Serialize in the same format (states named s<id>).
void write_sg(std::ostream& out, const StateGraph& sg,
              const std::string& name = "sg");
std::string write_sg_string(const StateGraph& sg,
                            const std::string& name = "sg");

/// Parse an event token like "a+" or "req-"; throws on unknown signal.
Event parse_event(const StateGraph& sg, std::string_view token);

}  // namespace sitm
