#pragma once
// Excitation, switching and quiescent regions (paper Section 2.2).
//
// ERj(a*)  : maximal connected set of states where a* is enabled.
// SRj(a*)  : states entered immediately after firing a* from ERj(a*).
// QRj(a*)  : restricted quiescent region — maximal set of states reachable
//            from ERj(a*) in which `a` is stable and which are not reachable
//            from any other ERk(a*), k != j, without passing through ERj(a*).
//
// Trigger events of ERj(a*): events on arcs entering the region from outside.

#include <vector>

#include "sg/state_graph.hpp"
#include "util/dynbitset.hpp"

namespace sitm {

/// One connected excitation region with its derived sets.
struct Region {
  Event event;
  int index = 0;        ///< j in ERj(a*)
  DynBitset er;         ///< excitation region
  DynBitset sr;         ///< switching region
  DynBitset qr;         ///< restricted quiescent region
  std::vector<Event> triggers;  ///< trigger events of this ER
};

/// All excitation regions of event `e`, with SR/QR/triggers filled in.
std::vector<Region> excitation_regions(const StateGraph& sg, Event e);

/// All regions of every transition of signal `sig` (both polarities).
std::vector<Region> signal_regions(const StateGraph& sg, int sig);

/// Set of states where event `e` is enabled (union of its ERs).
DynBitset enabled_set(const StateGraph& sg, Event e);

/// Switching region of every event in one arc pass, indexed by the dense
/// event id 2*signal + (rising ? 1 : 0); an event that never occurs has an
/// empty entry.  This is the seed scan of resolve_csc's latch-candidate
/// enumeration — shared with its benchmarks and equivalence tests so the
/// three can never drift apart.
std::vector<DynBitset> all_switching_regions(const StateGraph& sg);

/// Union of the `er` fields of `regions`.
DynBitset union_er(const StateGraph& sg, const std::vector<Region>& regions);
/// Union of the `qr` fields of `regions`.
DynBitset union_qr(const StateGraph& sg, const std::vector<Region>& regions);

/// Trigger signals of signal `sig`: signals whose events trigger some
/// transition of `sig`.  These are necessarily inputs of any logic
/// implementing `sig` (paper Section 2.2).
std::vector<int> trigger_signals(const StateGraph& sg, int sig);

/// Next-state function value of signal `sig` in state `s`:
///   1 if sig+ is enabled or sig is stable at 1; 0 otherwise.
bool next_value(const StateGraph& sg, StateId s, int sig);

}  // namespace sitm
