#include "sg/state_graph.hpp"

#include <algorithm>
#include <numeric>

#include "util/error.hpp"
#include "util/text.hpp"

namespace sitm {

int StateGraph::add_signal(std::string name, SignalKind kind) {
  if (signals_.size() >= 64) throw Error("StateGraph: more than 64 signals");
  if (find_signal(name) >= 0)
    throw Error("StateGraph: duplicate signal '" + name + "'");
  signals_.push_back(Signal{std::move(name), kind});
  return static_cast<int>(signals_.size()) - 1;
}

StateId StateGraph::add_state(StateCode code) {
  codes_.push_back(code);
  succs_.emplace_back();
  preds_.emplace_back();
  ev_mask_.push_back({0, 0});
  return static_cast<StateId>(codes_.size()) - 1;
}

void StateGraph::add_arc(StateId from, Event ev, StateId to) {
  if (ev.signal < 0 || ev.signal >= num_signals())
    throw Error("StateGraph: arc with unknown signal");
  succs_[from].push_back(Edge{ev, to});
  preds_[to].push_back(Edge{ev, from});
  const int id = event_id(ev);
  ev_mask_[from][id >> 6] |= std::uint64_t{1} << (id & 63);
}

std::size_t StateGraph::num_arcs() const {
  std::size_t n = 0;
  for (const auto& v : succs_) n += v.size();
  return n;
}

int StateGraph::find_signal(std::string_view name) const {
  for (std::size_t i = 0; i < signals_.size(); ++i)
    if (signals_[i].name == name) return static_cast<int>(i);
  return -1;
}

std::vector<int> StateGraph::input_signals() const {
  std::vector<int> out;
  for (int i = 0; i < num_signals(); ++i)
    if (signals_[i].kind == SignalKind::kInput) out.push_back(i);
  return out;
}

std::vector<int> StateGraph::noninput_signals() const {
  std::vector<int> out;
  for (int i = 0; i < num_signals(); ++i)
    if (is_noninput(signals_[i].kind)) out.push_back(i);
  return out;
}

std::array<std::uint64_t, 2> StateGraph::noninput_event_mask() const {
  std::array<std::uint64_t, 2> mask{0, 0};
  for (int sig = 0; sig < num_signals(); ++sig) {
    if (!is_noninput(signals_[sig].kind)) continue;
    const int id = event_id(Event{sig, false});
    mask[id >> 6] |= std::uint64_t{3} << (id & 63);
  }
  return mask;
}

StateId StateGraph::successor(StateId s, Event e) const {
  if (!enabled(s, e)) return kNoState;
  for (const auto& edge : succs_[s])
    if (edge.event == e) return edge.target;
  return kNoState;
}

std::vector<Event> StateGraph::enabled_events(StateId s) const {
  std::vector<Event> out;
  for (const auto& edge : succs_[s]) {
    if (std::find(out.begin(), out.end(), edge.event) == out.end())
      out.push_back(edge.event);
  }
  return out;
}

std::string StateGraph::code_string(StateId s) const {
  std::string out(signals_.size(), '0');
  for (std::size_t i = 0; i < signals_.size(); ++i)
    if (value(s, static_cast<int>(i))) out[i] = '1';
  return out;
}

std::string StateGraph::event_string(Event e) const {
  return event_name(signals_[e.signal].name, e.rising);
}

DynBitset StateGraph::full_set() const {
  DynBitset out(num_states());
  out.set_all();
  return out;
}

DynBitset StateGraph::reachable() const {
  DynBitset seen(num_states());
  if (initial_ == kNoState) return seen;
  std::vector<StateId> stack{initial_};
  seen.set(initial_);
  while (!stack.empty()) {
    const StateId s = stack.back();
    stack.pop_back();
    for (const auto& edge : succs_[s]) {
      if (!seen.test(edge.target)) {
        seen.set(edge.target);
        stack.push_back(edge.target);
      }
    }
  }
  return seen;
}

std::size_t StateGraph::prune_unreachable(std::vector<StateId>* old_to_new) {
  const DynBitset keep = reachable();
  const std::size_t removed = num_states() - keep.count();
  if (removed == 0) {
    if (old_to_new) {
      old_to_new->resize(num_states());
      std::iota(old_to_new->begin(), old_to_new->end(), StateId{0});
    }
    return 0;
  }

  std::vector<StateId> remap(num_states(), kNoState);
  StateId next = 0;
  for (std::size_t s = 0; s < num_states(); ++s)
    if (keep.test(s)) remap[s] = next++;
  if (old_to_new) *old_to_new = remap;

  std::vector<StateCode> codes;
  std::vector<std::vector<Edge>> succs;
  codes.reserve(next);
  succs.reserve(next);
  for (std::size_t s = 0; s < num_states(); ++s) {
    if (!keep.test(s)) continue;
    codes.push_back(codes_[s]);
    auto edges = succs_[s];
    std::erase_if(edges, [&](const Edge& e) { return remap[e.target] < 0; });
    for (auto& e : edges) e.target = remap[e.target];
    succs.push_back(std::move(edges));
  }

  codes_ = std::move(codes);
  succs_ = std::move(succs);
  preds_.assign(codes_.size(), {});
  ev_mask_.assign(codes_.size(), {0, 0});
  for (std::size_t s = 0; s < codes_.size(); ++s) {
    for (const auto& e : succs_[s]) {
      preds_[e.target].push_back(Edge{e.event, static_cast<StateId>(s)});
      const int id = event_id(e.event);
      ev_mask_[s][id >> 6] |= std::uint64_t{1} << (id & 63);
    }
  }
  initial_ = remap[initial_];
  return removed;
}

}  // namespace sitm
