#include "boolf/cover.hpp"

#include <algorithm>

namespace sitm {

int Cover::num_literals() const {
  int n = 0;
  for (const auto& c : cubes_) n += c.num_literals();
  return n;
}

bool Cover::eval(std::uint64_t code) const {
  for (const auto& c : cubes_)
    if (c.contains_code(code)) return true;
  return false;
}

void Cover::make_minimal_wrt_containment() {
  std::vector<Cube> kept;
  kept.reserve(cubes_.size());
  for (const auto& c : cubes_) {
    bool contained = false;
    for (const auto& k : kept)
      if (k.contains(c)) {
        contained = true;
        break;
      }
    if (contained) continue;
    std::erase_if(kept, [&](const Cube& k) { return c.contains(k); });
    kept.push_back(c);
  }
  cubes_ = std::move(kept);
}

void Cover::merge_adjacent() {
  bool changed = true;
  while (changed) {
    changed = false;
    make_minimal_wrt_containment();
    for (std::size_t i = 0; i < cubes_.size() && !changed; ++i) {
      for (std::size_t j = i + 1; j < cubes_.size() && !changed; ++j) {
        const Cube& a = cubes_[i];
        const Cube& b = cubes_[j];
        if (a.care == b.care && a.distance(b) == 1) {
          const Cube merged = a.supercube(b);
          cubes_[i] = merged;
          cubes_.erase(cubes_.begin() + static_cast<std::ptrdiff_t>(j));
          changed = true;
        }
      }
    }
  }
}

void Cover::sort() { std::sort(cubes_.begin(), cubes_.end()); }

Cover Cover::cofactor(int var, bool value) const {
  Cover out(num_vars_);
  for (const auto& c : cubes_) {
    if (c.has_literal(var) && c.polarity(var) != value) continue;
    out.add(c.without_literal(var));
  }
  return out;
}

Cover Cover::cofactor(const Cube& cc) const {
  Cover out(num_vars_);
  for (const auto& c : cubes_) {
    if (!c.intersects(cc)) continue;
    Cube r = c;
    r.care &= ~cc.care;
    r.val &= ~cc.care;
    out.add(r);
  }
  return out;
}

namespace {

/// Pick the splitting variable: the most binate variable (appears in both
/// polarities in the most cubes); falls back to the most frequent variable.
int splitting_var(const std::vector<Cube>& cubes) {
  int pos[64] = {};
  int neg[64] = {};
  std::uint64_t support = 0;
  for (const auto& c : cubes) {
    support |= c.care;
    std::uint64_t bits = c.care;
    while (bits) {
      const int v = __builtin_ctzll(bits);
      bits &= bits - 1;
      (c.polarity(v) ? pos[v] : neg[v])++;
    }
  }
  int best = -1, best_score = -1;
  std::uint64_t bits = support;
  while (bits) {
    const int v = __builtin_ctzll(bits);
    bits &= bits - 1;
    const int binate = std::min(pos[v], neg[v]);
    const int score = binate > 0 ? (1 << 20) + binate * 1024 + pos[v] + neg[v]
                                 : pos[v] + neg[v];
    if (score > best_score) {
      best_score = score;
      best = v;
    }
  }
  return best;
}

}  // namespace

bool Cover::tautology() const {
  for (const auto& c : cubes_)
    if (c.is_one()) return true;
  if (cubes_.empty()) return false;
  const int v = splitting_var(cubes_);
  if (v < 0) return false;  // no support and no universal cube
  // Unate shortcut: if v is unate, the cofactor against the absent polarity
  // already decides (cubes with the literal vanish there).
  return cofactor(v, false).tautology() && cofactor(v, true).tautology();
}

bool Cover::covers_cube(const Cube& c) const { return cofactor(c).tautology(); }

bool Cover::covers(const Cover& other) const {
  for (const auto& c : other.cubes_)
    if (!covers_cube(c)) return false;
  return true;
}

bool Cover::equivalent(const Cover& other) const {
  return covers(other) && other.covers(*this);
}

Cover Cover::complement() const {
  for (const auto& c : cubes_)
    if (c.is_one()) return zero(num_vars_);
  if (cubes_.empty()) return one(num_vars_);
  if (cubes_.size() == 1) {
    // De Morgan on a single cube.
    Cover out(num_vars_);
    const Cube& c = cubes_[0];
    std::uint64_t bits = c.care;
    while (bits) {
      const int v = __builtin_ctzll(bits);
      bits &= bits - 1;
      out.add(Cube::literal(v, !c.polarity(v)));
    }
    return out;
  }
  const int v = splitting_var(cubes_);
  Cover out(num_vars_);
  for (bool value : {false, true}) {
    const Cover part = cofactor(v, value).complement();
    for (Cube c : part.cubes()) out.add(c.with_literal(v, value));
  }
  // Expand each complement cube against this cover: removing a literal is
  // sound as long as the widened cube stays disjoint from the on-set, and
  // widening only merges the branch results (ab'c' + a'db'c' -> b'c').
  for (Cube& c : out.cubes()) {
    for (int var = 0; var < num_vars_; ++var) {
      if (!c.has_literal(var)) continue;
      const Cube wider = c.without_literal(var);
      bool disjoint = true;
      for (const auto& on : cubes_) {
        if (on.intersects(wider)) {
          disjoint = false;
          break;
        }
      }
      if (disjoint) c = wider;
    }
  }
  out.make_minimal_wrt_containment();
  return out;
}

Cover Cover::operator|(const Cover& o) const {
  Cover out(num_vars_, cubes_);
  for (const auto& c : o.cubes_) out.add(c);
  out.make_minimal_wrt_containment();
  return out;
}

Cover Cover::operator&(const Cover& o) const {
  Cover out(num_vars_);
  for (const auto& a : cubes_)
    for (const auto& b : o.cubes_)
      if (a.intersects(b)) out.add(a.meet(b));
  out.make_minimal_wrt_containment();
  return out;
}

std::uint64_t Cover::support() const {
  std::uint64_t s = 0;
  for (const auto& c : cubes_) s |= c.care;
  return s;
}

std::string Cover::to_string(const std::vector<std::string>& names) const {
  if (cubes_.empty()) return "0";
  std::string out;
  for (const auto& c : cubes_) {
    if (!out.empty()) out += " + ";
    out += c.to_string(names);
  }
  return out;
}

}  // namespace sitm
