#include "boolf/bitslice.hpp"

#include "util/bitwords.hpp"

namespace sitm {

BitSlicedOffSet::BitSlicedOffSet(const std::vector<std::uint64_t>& off,
                                 int num_vars)
    : num_vars_(num_vars),
      n_(off.size()),
      words_(bitwords::words_for(off.size())),
      tail_(bitwords::tail_mask(off.size())),
      cols_(static_cast<std::size_t>(num_vars) * bitwords::words_for(off.size()),
            0) {
  for (std::size_t j = 0; j < off.size(); ++j) {
    const std::uint64_t bit = std::uint64_t{1} << (j & 63);
    std::uint64_t code = off[j];
    while (code) {
      const int v = __builtin_ctzll(code);
      code &= code - 1;
      cols_[static_cast<std::size_t>(v) * words_ + (j >> 6)] |= bit;
    }
  }
}

bool BitSlicedOffSet::hits(const Cube& c) const {
  for (std::size_t w = 0; w < words_; ++w) {
    std::uint64_t acc = (w + 1 == words_) ? tail_ : ~std::uint64_t{0};
    std::uint64_t rem = c.care;
    while (rem && acc) {
      const int u = __builtin_ctzll(rem);
      rem &= rem - 1;
      const std::uint64_t ones = col(u)[w];
      acc &= ((c.val >> u) & 1u) ? ones : ~ones;
    }
    if (acc) return true;
  }
  return false;
}

bool BitSlicedOffSet::contains_minterm(std::uint64_t code) const {
  return hits(Cube::minterm(code, num_vars_));
}

bool BitSlicedOffSet::removal_hits(const Cube& c, int v) const {
  const std::uint64_t others = c.care & ~(std::uint64_t{1} << v);
  for (std::size_t w = 0; w < words_; ++w) {
    // Surviving off-minterms for this trial: those that disagree with the
    // cube on v.  (Minterms agreeing on v would have to be inside the cube
    // already, which the off-cleanliness precondition rules out.)
    const std::uint64_t ones_v = col(v)[w];
    std::uint64_t acc = ((c.val >> v) & 1u) ? ~ones_v : ones_v;
    if (w + 1 == words_) acc &= tail_;
    std::uint64_t rem = others;
    while (rem && acc) {
      const int u = __builtin_ctzll(rem);
      rem &= rem - 1;
      const std::uint64_t ones = col(u)[w];
      acc &= ((c.val >> u) & 1u) ? ones : ~ones;
    }
    if (acc) return true;
  }
  return false;
}

Cube expand_minterm(std::uint64_t code, const BitSlicedOffSet& off,
                    const std::vector<int>& var_order) {
  Cube cube = Cube::minterm(code, off.num_vars());
  // Degenerate input (the minterm itself is in the off-set): every widening
  // still hits, so the row-major fixpoint returns the minterm unchanged.
  if (off.contains_minterm(code)) return cube;

  // One ordered pass reaches the row-major fixpoint.  A trial for v fails
  // iff some off-minterm's only cared disagreement with the cube is v; later
  // removals only shrink the cared set, so that witness keeps blocking v
  // forever and re-running the order can never remove more literals.
  for (int v : var_order) {
    if (!cube.has_literal(v)) continue;
    if (!off.removal_hits(cube, v)) {
      cube.care &= ~(std::uint64_t{1} << v);
      cube.val &= cube.care;
    }
  }
  return cube;
}

}  // namespace sitm
