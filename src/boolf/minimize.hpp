#pragma once
// Two-level minimization against explicit on-set / off-set minterm lists
// (espresso-style expand + irredundant).  Minterms not listed in either set
// are don't-cares — the natural setting for covers over SG states, where
// unreachable codes are free.

#include <cstdint>
#include <vector>

#include "boolf/bitslice.hpp"
#include "boolf/cover.hpp"

namespace sitm {

struct MinimizeOptions {
  /// Extra reduce/re-expand refinement passes.
  int passes = 1;
  /// Use the retained row-major reference paths instead of the fast
  /// engines: the full off-set scan in expand_minterm (vs the bit-sliced
  /// reduction) and the rescan-all greedy loop in irredundant (vs the
  /// lazy-revalidation max-heap).  Slower; kept as the equivalence-test
  /// reference — both engines return literal-for-literal identical covers.
  bool reference_engine = false;
};

/// Minimal-ish SOP cover that contains every `on` minterm and no `off`
/// minterm.  Throws if the two lists intersect.
Cover minimize_onoff(const std::vector<std::uint64_t>& on,
                     const std::vector<std::uint64_t>& off, int num_vars,
                     const MinimizeOptions& opts = {});

/// Expand a single minterm into a prime-ish cube against `off`.
/// `var_order` lists variables in the order literal removal is attempted.
/// Row-major reference engine; the bit-sliced overload lives in bitslice.hpp
/// and returns identical cubes.
Cube expand_minterm(std::uint64_t code, const std::vector<std::uint64_t>& off,
                    int num_vars, const std::vector<int>& var_order);

/// Greedy irredundant: select a subset of `cubes` covering all `on`
/// minterms, essential cubes first, then by descending marginal coverage
/// (ties: fewer literals, then lower cube index).  The default engine keys
/// candidates in a max-heap over packed uncovered-minterm words and
/// re-scores a cube only when it is popped stale; `reference_engine`
/// selects the retained rescan-all loop.  Both return the same cubes.
std::vector<Cube> irredundant(const std::vector<Cube>& cubes,
                              const std::vector<std::uint64_t>& on,
                              bool reference_engine = false);

}  // namespace sitm
