#include "boolf/exact.hpp"

#include <algorithm>
#include <set>

#include "util/error.hpp"

namespace sitm {

namespace {

bool hits_off(const Cube& c, const std::vector<std::uint64_t>& off) {
  for (auto code : off)
    if (c.contains_code(code)) return true;
  return false;
}

/// Enumerate the maximal off-disjoint expansions of `cube` into `out`.
void expand_all(const Cube& cube, const std::vector<std::uint64_t>& off,
                int num_vars, std::set<Cube>& seen, std::vector<Cube>& out,
                std::size_t max_primes) {
  if (!seen.insert(cube).second) return;
  if (out.size() > max_primes)
    throw Error("minimize_exact: prime explosion beyond max_primes");
  bool maximal = true;
  for (int v = 0; v < num_vars; ++v) {
    if (!cube.has_literal(v)) continue;
    const Cube wider = cube.without_literal(v);
    if (!hits_off(wider, off)) {
      maximal = false;
      expand_all(wider, off, num_vars, seen, out, max_primes);
    }
  }
  if (maximal) out.push_back(cube);
}

}  // namespace

std::vector<Cube> all_primes(const std::vector<std::uint64_t>& on,
                             const std::vector<std::uint64_t>& off,
                             int num_vars, const ExactOptions& opts) {
  if (num_vars > opts.max_vars)
    throw Error("all_primes: too many variables for exact minimization");
  std::set<Cube> seen;
  std::vector<Cube> primes;
  for (auto code : on)
    expand_all(Cube::minterm(code, num_vars), off, num_vars, seen, primes,
               opts.max_primes);
  // Dedup (different minterms may expand to the same prime) and drop
  // non-maximal leftovers (a cube maximal from one seed can be contained in
  // a prime discovered from another).
  std::sort(primes.begin(), primes.end());
  primes.erase(std::unique(primes.begin(), primes.end()), primes.end());
  std::vector<Cube> maximal;
  for (const auto& c : primes) {
    bool contained = false;
    for (const auto& other : primes) {
      if (!(other == c) && other.contains(c)) {
        contained = true;
        break;
      }
    }
    if (!contained) maximal.push_back(c);
  }
  return maximal;
}

Cover minimize_exact(const std::vector<std::uint64_t>& on_in,
                     const std::vector<std::uint64_t>& off_in, int num_vars,
                     const ExactOptions& opts) {
  const std::uint64_t mask =
      num_vars >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << num_vars) - 1);
  std::vector<std::uint64_t> on, off;
  for (auto c : on_in) on.push_back(c & mask);
  for (auto c : off_in) off.push_back(c & mask);
  std::sort(on.begin(), on.end());
  on.erase(std::unique(on.begin(), on.end()), on.end());
  std::sort(off.begin(), off.end());
  off.erase(std::unique(off.begin(), off.end()), off.end());
  if (on.empty()) return Cover::zero(num_vars);
  if (off.empty()) return Cover::one(num_vars);

  const std::vector<Cube> primes = all_primes(on, off, num_vars, opts);

  // Covering table: which on-minterms each prime covers.
  const std::size_t P = primes.size(), M = on.size();
  std::vector<std::vector<int>> covers(P);
  for (std::size_t p = 0; p < P; ++p)
    for (std::size_t m = 0; m < M; ++m)
      if (primes[p].contains_code(on[m]))
        covers[p].push_back(static_cast<int>(m));

  // Branch and bound on literal count.
  std::vector<int> best_choice;
  int best_cost = INT32_MAX;

  struct Frame {
    std::vector<char> covered;
    std::size_t num_covered = 0;
    std::vector<int> chosen;
    int cost = 0;
  };

  auto first_uncovered = [&](const Frame& f) -> int {
    for (std::size_t m = 0; m < M; ++m)
      if (!f.covered[m]) return static_cast<int>(m);
    return -1;
  };

  auto rec = [&](auto&& self, Frame& frame) -> void {
    if (frame.cost >= best_cost) return;  // bound
    const int m = first_uncovered(frame);
    if (m < 0) {
      best_cost = frame.cost;
      best_choice = frame.chosen;
      return;
    }
    // Branch over the primes covering minterm m, cheapest first.
    std::vector<std::size_t> branches;
    for (std::size_t p = 0; p < P; ++p)
      if (primes[p].contains_code(on[static_cast<std::size_t>(m)]))
        branches.push_back(p);
    std::sort(branches.begin(), branches.end(), [&](std::size_t a, std::size_t b) {
      return primes[a].num_literals() < primes[b].num_literals();
    });
    for (std::size_t p : branches) {
      Frame next = frame;
      next.chosen.push_back(static_cast<int>(p));
      next.cost += primes[p].num_literals();
      for (int covered_m : covers[p]) {
        if (!next.covered[static_cast<std::size_t>(covered_m)]) {
          next.covered[static_cast<std::size_t>(covered_m)] = 1;
          ++next.num_covered;
        }
      }
      self(self, next);
    }
  };

  Frame root;
  root.covered.assign(M, 0);
  rec(rec, root);

  Cover out(num_vars);
  for (int p : best_choice) out.add(primes[static_cast<std::size_t>(p)]);
  out.sort();
  return out;
}

}  // namespace sitm
