#include "boolf/minimize.hpp"

#include <algorithm>
#include <numeric>
#include <queue>

#include "util/bitwords.hpp"
#include "util/error.hpp"
#include "util/flat_map.hpp"

namespace sitm {

namespace {

bool cube_hits_off(const Cube& c, const std::vector<std::uint64_t>& off) {
  for (const auto code : off)
    if (c.contains_code(code)) return true;
  return false;
}

std::vector<std::uint64_t> dedup(std::vector<std::uint64_t> v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
  return v;
}

struct CubeHash {
  std::uint64_t operator()(const Cube& c) const {
    return hash_mix(c.val ^ hash_mix(c.care));
  }
};

/// Insertion-ordered cube set: membership through a flat hash, order through
/// the output vector (the O(n^2) std::find dedup this replaces was itself a
/// hot spot on large on-sets).
using CubeSet = FlatMap<Cube, char, CubeHash>;

}  // namespace

Cube expand_minterm(std::uint64_t code, const std::vector<std::uint64_t>& off,
                    int num_vars, const std::vector<int>& var_order) {
  Cube cube = Cube::minterm(code, num_vars);
  bool changed = true;
  // Iterate to a fixpoint: removing one literal can enable another.
  while (changed) {
    changed = false;
    for (int v : var_order) {
      if (!cube.has_literal(v)) continue;
      const Cube wider = cube.without_literal(v);
      if (!cube_hits_off(wider, off)) {
        cube = wider;
        changed = true;
      }
    }
  }
  return cube;
}

namespace {

std::vector<Cube> selected_cubes(const std::vector<Cube>& cubes,
                                 const std::vector<char>& selected) {
  std::vector<Cube> out;
  for (std::size_t i = 0; i < cubes.size(); ++i)
    if (selected[i]) out.push_back(cubes[i]);
  return out;
}

/// Retained rescan-all greedy loop (MinimizeOptions::reference_engine): the
/// equivalence baseline the heap engine below is pinned against.
std::vector<Cube> irredundant_reference(const std::vector<Cube>& cubes,
                                        const std::vector<std::uint64_t>& on) {
  // coverage[i] = indices of on-minterms covered by cube i;
  // first_cover[m] = lowest cube index covering minterm m.
  std::vector<std::vector<int>> coverage(cubes.size());
  std::vector<int> cover_count(on.size(), 0);
  std::vector<int> first_cover(on.size(), -1);
  for (std::size_t i = 0; i < cubes.size(); ++i) {
    for (std::size_t m = 0; m < on.size(); ++m) {
      if (cubes[i].contains_code(on[m])) {
        coverage[i].push_back(static_cast<int>(m));
        if (cover_count[m]++ == 0) first_cover[m] = static_cast<int>(i);
      }
    }
  }

  std::vector<char> selected(cubes.size(), 0);
  std::vector<char> covered(on.size(), 0);
  std::size_t num_covered = 0;

  auto select = [&](std::size_t i) {
    if (selected[i]) return;
    selected[i] = 1;
    for (int m : coverage[i]) {
      if (!covered[m]) {
        covered[m] = 1;
        ++num_covered;
      }
    }
  };

  // Essential cubes: sole cover of some minterm (its recorded first — and
  // only — coverer; no per-(minterm, cube) containment rescan needed).
  for (std::size_t m = 0; m < on.size(); ++m) {
    if (cover_count[m] == 1) select(static_cast<std::size_t>(first_cover[m]));
  }

  // Greedy: biggest marginal coverage, ties by fewer literals.
  while (num_covered < on.size()) {
    std::size_t best = cubes.size();
    int best_gain = -1, best_lits = 65;
    for (std::size_t i = 0; i < cubes.size(); ++i) {
      if (selected[i]) continue;
      int gain = 0;
      for (int m : coverage[i])
        if (!covered[m]) ++gain;
      const int lits = cubes[i].num_literals();
      if (gain > best_gain || (gain == best_gain && lits < best_lits)) {
        best_gain = gain;
        best_lits = lits;
        best = i;
      }
    }
    if (best == cubes.size() || best_gain <= 0)
      throw Error("irredundant: on-set not coverable by candidate cubes");
    select(best);
  }

  return selected_cubes(cubes, selected);
}

/// Heap entry for the lazy-revalidation engine.  `gain` is the marginal
/// coverage at push time — an upper bound on the current value, since
/// covering a minterm only ever lowers other cubes' gains.
struct GainEntry {
  int gain;
  int lits;
  std::uint32_t index;
};

/// priority_queue "less": lower priority = smaller gain, then more
/// literals, then higher index — so the top is exactly the cube the
/// reference rescan would pick (its scan keeps the first maximum, i.e. the
/// lowest index among (max gain, min literals) ties).
struct GainLess {
  bool operator()(const GainEntry& a, const GainEntry& b) const {
    if (a.gain != b.gain) return a.gain < b.gain;
    if (a.lits != b.lits) return a.lits > b.lits;
    return a.index > b.index;
  }
};

/// Priority-driven greedy selection.  Per-cube coverage is stored as packed
/// 64-bit rows over on-minterm indices (the bit-sliced layout of
/// boolf/bitslice.hpp turned sideways), so re-scoring a cube is a
/// word-parallel AND/popcount against the uncovered mask instead of a list
/// walk, and only cubes popped with a stale key are re-scored at all — the
/// O(cubes) rescan per pick of the reference loop never happens.
std::vector<Cube> irredundant_priority(const std::vector<Cube>& cubes,
                                       const std::vector<std::uint64_t>& on) {
  const std::size_t words = bitwords::words_for(on.size());
  std::vector<std::uint64_t> rows(cubes.size() * words, 0);
  std::vector<int> cover_count(on.size(), 0);
  std::vector<int> first_cover(on.size(), -1);
  for (std::size_t i = 0; i < cubes.size(); ++i) {
    std::uint64_t* row = rows.data() + i * words;
    for (std::size_t m = 0; m < on.size(); ++m) {
      if (cubes[i].contains_code(on[m])) {
        row[m >> 6] |= std::uint64_t{1} << (m & 63);
        if (cover_count[m]++ == 0) first_cover[m] = static_cast<int>(i);
      }
    }
  }

  std::vector<char> selected(cubes.size(), 0);
  std::vector<std::uint64_t> uncovered(words, ~std::uint64_t{0});
  if (words > 0) uncovered[words - 1] = bitwords::tail_mask(on.size());
  std::size_t num_uncovered = on.size();

  auto gain_of = [&](std::size_t i) {
    const std::uint64_t* row = rows.data() + i * words;
    int gain = 0;
    for (std::size_t w = 0; w < words; ++w)
      gain += __builtin_popcountll(row[w] & uncovered[w]);
    return gain;
  };
  auto select = [&](std::size_t i) {
    if (selected[i]) return;
    selected[i] = 1;
    const std::uint64_t* row = rows.data() + i * words;
    for (std::size_t w = 0; w < words; ++w) {
      num_uncovered -= static_cast<std::size_t>(
          __builtin_popcountll(row[w] & uncovered[w]));
      uncovered[w] &= ~row[w];
    }
  };

  // Essential cubes first, exactly as in the reference engine.
  for (std::size_t m = 0; m < on.size(); ++m) {
    if (cover_count[m] == 1) select(static_cast<std::size_t>(first_cover[m]));
  }

  std::priority_queue<GainEntry, std::vector<GainEntry>, GainLess> heap;
  for (std::size_t i = 0; i < cubes.size(); ++i) {
    if (selected[i]) continue;
    const int gain = gain_of(i);
    // Zero gain can never recover (gains only fall), so never enqueue it.
    if (gain > 0)
      heap.push(GainEntry{gain, cubes[i].num_literals(),
                          static_cast<std::uint32_t>(i)});
  }

  while (num_uncovered > 0) {
    if (heap.empty())
      throw Error("irredundant: on-set not coverable by candidate cubes");
    const GainEntry top = heap.top();
    heap.pop();
    if (selected[top.index]) continue;  // re-pushed before an earlier select
    const int gain = gain_of(top.index);
    if (gain != top.gain) {
      // Stale: stored keys are upper bounds, so re-keying and retrying
      // still surfaces the true maximum before anything is selected.
      if (gain > 0) heap.push(GainEntry{gain, top.lits, top.index});
      continue;
    }
    select(top.index);
  }

  return selected_cubes(cubes, selected);
}

}  // namespace

std::vector<Cube> irredundant(const std::vector<Cube>& cubes,
                              const std::vector<std::uint64_t>& on,
                              bool reference_engine) {
  return reference_engine ? irredundant_reference(cubes, on)
                          : irredundant_priority(cubes, on);
}

Cover minimize_onoff(const std::vector<std::uint64_t>& on_in,
                     const std::vector<std::uint64_t>& off_in, int num_vars,
                     const MinimizeOptions& opts) {
  const std::uint64_t mask =
      num_vars >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << num_vars) - 1);
  std::vector<std::uint64_t> on, off;
  on.reserve(on_in.size());
  off.reserve(off_in.size());
  for (auto c : on_in) on.push_back(c & mask);
  for (auto c : off_in) off.push_back(c & mask);
  on = dedup(std::move(on));
  off = dedup(std::move(off));
  {
    // Sorted-merge intersection check.
    std::size_t i = 0, j = 0;
    while (i < on.size() && j < off.size()) {
      if (on[i] == off[j]) throw Error("minimize_onoff: on/off sets intersect");
      (on[i] < off[j]) ? ++i : ++j;
    }
  }
  if (on.empty()) return Cover::zero(num_vars);
  if (off.empty()) return Cover::one(num_vars);

  // Variable removal order: try to drop the variables that least often
  // distinguish on from off first (globally uninformative literals).
  std::vector<int> var_order(static_cast<std::size_t>(num_vars));
  std::iota(var_order.begin(), var_order.end(), 0);
  {
    std::vector<long> on_ones(static_cast<std::size_t>(num_vars), 0);
    std::vector<long> off_ones(static_cast<std::size_t>(num_vars), 0);
    for (auto c : on)
      for (int v = 0; v < num_vars; ++v) on_ones[v] += (c >> v) & 1;
    for (auto c : off)
      for (int v = 0; v < num_vars; ++v) off_ones[v] += (c >> v) & 1;
    std::vector<double> info(static_cast<std::size_t>(num_vars));
    for (int v = 0; v < num_vars; ++v) {
      const double pon = static_cast<double>(on_ones[v]) / on.size();
      const double poff = static_cast<double>(off_ones[v]) / off.size();
      info[v] = std::abs(pon - poff);
    }
    std::stable_sort(var_order.begin(), var_order.end(),
                     [&](int a, int b) { return info[a] < info[b]; });
  }

  // The off-set is transposed once per call; every expansion below is a
  // word-parallel reduction over its columns.  Both engines return identical
  // cubes, so the choice is pure engineering: below a dozen or so
  // off-minterms the transpose allocation costs more than the scan it saves.
  const bool slice = !opts.reference_engine && off.size() >= 12;
  const BitSlicedOffSet sliced =
      slice ? BitSlicedOffSet(off, num_vars) : BitSlicedOffSet{};
  auto expand = [&](std::uint64_t code, const std::vector<int>& order) {
    return slice ? expand_minterm(code, sliced, order)
                 : expand_minterm(code, off, num_vars, order);
  };

  std::vector<Cube> primes;
  primes.reserve(on.size());
  CubeSet seen(on.size());
  for (auto code : on) {
    const Cube c = expand(code, var_order);
    if (seen.emplace(c, 1).second) primes.push_back(c);
  }
  std::vector<Cube> chosen = irredundant(primes, on, opts.reference_engine);

  // Refinement: re-expand each chosen cube with a reversed order and keep
  // the variant set if it lowers the literal count.
  for (int pass = 1; pass < opts.passes; ++pass) {
    std::vector<int> reversed(var_order.rbegin(), var_order.rend());
    std::vector<Cube> alt = primes;
    CubeSet alt_seen = seen;
    for (auto code : on) {
      const Cube c = expand(code, reversed);
      if (alt_seen.emplace(c, 1).second) alt.push_back(c);
    }
    std::vector<Cube> alt_chosen = irredundant(alt, on, opts.reference_engine);
    auto lits = [](const std::vector<Cube>& v) {
      int n = 0;
      for (const auto& c : v) n += c.num_literals();
      return n;
    };
    if (lits(alt_chosen) < lits(chosen)) chosen = std::move(alt_chosen);
  }

  Cover out(num_vars, std::move(chosen));
  out.make_minimal_wrt_containment();
  out.sort();
  return out;
}

}  // namespace sitm
