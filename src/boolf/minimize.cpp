#include "boolf/minimize.hpp"

#include <algorithm>
#include <numeric>

#include "util/error.hpp"
#include "util/flat_map.hpp"

namespace sitm {

namespace {

bool cube_hits_off(const Cube& c, const std::vector<std::uint64_t>& off) {
  for (const auto code : off)
    if (c.contains_code(code)) return true;
  return false;
}

std::vector<std::uint64_t> dedup(std::vector<std::uint64_t> v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
  return v;
}

struct CubeHash {
  std::uint64_t operator()(const Cube& c) const {
    return hash_mix(c.val ^ hash_mix(c.care));
  }
};

/// Insertion-ordered cube set: membership through a flat hash, order through
/// the output vector (the O(n^2) std::find dedup this replaces was itself a
/// hot spot on large on-sets).
using CubeSet = FlatMap<Cube, char, CubeHash>;

}  // namespace

Cube expand_minterm(std::uint64_t code, const std::vector<std::uint64_t>& off,
                    int num_vars, const std::vector<int>& var_order) {
  Cube cube = Cube::minterm(code, num_vars);
  bool changed = true;
  // Iterate to a fixpoint: removing one literal can enable another.
  while (changed) {
    changed = false;
    for (int v : var_order) {
      if (!cube.has_literal(v)) continue;
      const Cube wider = cube.without_literal(v);
      if (!cube_hits_off(wider, off)) {
        cube = wider;
        changed = true;
      }
    }
  }
  return cube;
}

std::vector<Cube> irredundant(const std::vector<Cube>& cubes,
                              const std::vector<std::uint64_t>& on) {
  // coverage[i] = indices of on-minterms covered by cube i;
  // first_cover[m] = lowest cube index covering minterm m.
  std::vector<std::vector<int>> coverage(cubes.size());
  std::vector<int> cover_count(on.size(), 0);
  std::vector<int> first_cover(on.size(), -1);
  for (std::size_t i = 0; i < cubes.size(); ++i) {
    for (std::size_t m = 0; m < on.size(); ++m) {
      if (cubes[i].contains_code(on[m])) {
        coverage[i].push_back(static_cast<int>(m));
        if (cover_count[m]++ == 0) first_cover[m] = static_cast<int>(i);
      }
    }
  }

  std::vector<char> selected(cubes.size(), 0);
  std::vector<char> covered(on.size(), 0);
  std::size_t num_covered = 0;

  auto select = [&](std::size_t i) {
    if (selected[i]) return;
    selected[i] = 1;
    for (int m : coverage[i]) {
      if (!covered[m]) {
        covered[m] = 1;
        ++num_covered;
      }
    }
  };

  // Essential cubes: sole cover of some minterm (its recorded first — and
  // only — coverer; no per-(minterm, cube) containment rescan needed).
  for (std::size_t m = 0; m < on.size(); ++m) {
    if (cover_count[m] == 1) select(static_cast<std::size_t>(first_cover[m]));
  }

  // Greedy: biggest marginal coverage, ties by fewer literals.
  while (num_covered < on.size()) {
    std::size_t best = cubes.size();
    int best_gain = -1, best_lits = 65;
    for (std::size_t i = 0; i < cubes.size(); ++i) {
      if (selected[i]) continue;
      int gain = 0;
      for (int m : coverage[i])
        if (!covered[m]) ++gain;
      const int lits = cubes[i].num_literals();
      if (gain > best_gain || (gain == best_gain && lits < best_lits)) {
        best_gain = gain;
        best_lits = lits;
        best = i;
      }
    }
    if (best == cubes.size() || best_gain <= 0)
      throw Error("irredundant: on-set not coverable by candidate cubes");
    select(best);
  }

  std::vector<Cube> out;
  for (std::size_t i = 0; i < cubes.size(); ++i)
    if (selected[i]) out.push_back(cubes[i]);
  return out;
}

Cover minimize_onoff(const std::vector<std::uint64_t>& on_in,
                     const std::vector<std::uint64_t>& off_in, int num_vars,
                     const MinimizeOptions& opts) {
  const std::uint64_t mask =
      num_vars >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << num_vars) - 1);
  std::vector<std::uint64_t> on, off;
  on.reserve(on_in.size());
  off.reserve(off_in.size());
  for (auto c : on_in) on.push_back(c & mask);
  for (auto c : off_in) off.push_back(c & mask);
  on = dedup(std::move(on));
  off = dedup(std::move(off));
  {
    // Sorted-merge intersection check.
    std::size_t i = 0, j = 0;
    while (i < on.size() && j < off.size()) {
      if (on[i] == off[j]) throw Error("minimize_onoff: on/off sets intersect");
      (on[i] < off[j]) ? ++i : ++j;
    }
  }
  if (on.empty()) return Cover::zero(num_vars);
  if (off.empty()) return Cover::one(num_vars);

  // Variable removal order: try to drop the variables that least often
  // distinguish on from off first (globally uninformative literals).
  std::vector<int> var_order(static_cast<std::size_t>(num_vars));
  std::iota(var_order.begin(), var_order.end(), 0);
  {
    std::vector<long> on_ones(static_cast<std::size_t>(num_vars), 0);
    std::vector<long> off_ones(static_cast<std::size_t>(num_vars), 0);
    for (auto c : on)
      for (int v = 0; v < num_vars; ++v) on_ones[v] += (c >> v) & 1;
    for (auto c : off)
      for (int v = 0; v < num_vars; ++v) off_ones[v] += (c >> v) & 1;
    std::vector<double> info(static_cast<std::size_t>(num_vars));
    for (int v = 0; v < num_vars; ++v) {
      const double pon = static_cast<double>(on_ones[v]) / on.size();
      const double poff = static_cast<double>(off_ones[v]) / off.size();
      info[v] = std::abs(pon - poff);
    }
    std::stable_sort(var_order.begin(), var_order.end(),
                     [&](int a, int b) { return info[a] < info[b]; });
  }

  // The off-set is transposed once per call; every expansion below is a
  // word-parallel reduction over its columns.  Both engines return identical
  // cubes, so the choice is pure engineering: below a dozen or so
  // off-minterms the transpose allocation costs more than the scan it saves.
  const bool slice = !opts.reference_engine && off.size() >= 12;
  const BitSlicedOffSet sliced =
      slice ? BitSlicedOffSet(off, num_vars) : BitSlicedOffSet{};
  auto expand = [&](std::uint64_t code, const std::vector<int>& order) {
    return slice ? expand_minterm(code, sliced, order)
                 : expand_minterm(code, off, num_vars, order);
  };

  std::vector<Cube> primes;
  primes.reserve(on.size());
  CubeSet seen(on.size());
  for (auto code : on) {
    const Cube c = expand(code, var_order);
    if (seen.emplace(c, 1).second) primes.push_back(c);
  }
  std::vector<Cube> chosen = irredundant(primes, on);

  // Refinement: re-expand each chosen cube with a reversed order and keep
  // the variant set if it lowers the literal count.
  for (int pass = 1; pass < opts.passes; ++pass) {
    std::vector<int> reversed(var_order.rbegin(), var_order.rend());
    std::vector<Cube> alt = primes;
    CubeSet alt_seen = seen;
    for (auto code : on) {
      const Cube c = expand(code, reversed);
      if (alt_seen.emplace(c, 1).second) alt.push_back(c);
    }
    std::vector<Cube> alt_chosen = irredundant(alt, on);
    auto lits = [](const std::vector<Cube>& v) {
      int n = 0;
      for (const auto& c : v) n += c.num_literals();
      return n;
    };
    if (lits(alt_chosen) < lits(chosen)) chosen = std::move(alt_chosen);
  }

  Cover out(num_vars, std::move(chosen));
  out.make_minimal_wrt_containment();
  out.sort();
  return out;
}

}  // namespace sitm
