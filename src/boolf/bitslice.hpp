#pragma once
// Bit-sliced (transposed) off-set for two-level minimization.
//
// minimize_onoff spends nearly all of its time in expand_minterm asking
// "does this widened cube contain an off-minterm?" (~90% of synthesize_all
// samples).  The row-major scan answers it by walking the off-minterm list
// and testing each code against the cube.  This structure stores the off-set
// transposed instead — one packed bit-column per variable over off-minterm
// indices, in the bit-parallel style of the ESPRESSO-family minimizers — so
// the same question becomes a word-parallel AND-reduction over the cube's
// literal columns, 64 off-minterms per step, with early exit as soon as a
// word's surviving set goes empty.
//
// The expansion trial is sharper still.  When a cube C that contains no
// off-minterm drops its literal on variable v, the widened cube captures
// exactly the off-minterms whose *unique* disagreement with C is v.  Seeding
// the reduction with the v-mismatch column therefore starts each trial from
// the small surviving off-minterm set for that literal instead of the full
// off-set, and the remaining literal columns only narrow it further.

#include <cstdint>
#include <vector>

#include "boolf/cube.hpp"

namespace sitm {

class BitSlicedOffSet {
 public:
  BitSlicedOffSet() = default;
  /// Transpose `off` (full minterm codes over `num_vars` variables).
  /// Codes must already be masked to `num_vars` bits.
  BitSlicedOffSet(const std::vector<std::uint64_t>& off, int num_vars);

  int num_vars() const { return num_vars_; }
  std::size_t num_minterms() const { return n_; }
  bool empty() const { return n_ == 0; }

  /// Is the full assignment `code` one of the off-minterms?
  bool contains_minterm(std::uint64_t code) const;

  /// Does cube `c` contain at least one off-minterm?
  bool hits(const Cube& c) const;

  /// Would dropping the literal on `v` from cube `c` capture an off-minterm?
  /// Exact under the precondition that `c` itself hits no off-minterm: true
  /// iff some off-minterm disagrees with `c` on `v` and on no other cared
  /// variable.
  bool removal_hits(const Cube& c, int v) const;

 private:
  /// Column of off-minterm indices whose variable `v` is 1.
  const std::uint64_t* col(int v) const {
    return cols_.data() + static_cast<std::size_t>(v) * words_;
  }

  int num_vars_ = 0;
  std::size_t n_ = 0;       ///< number of off-minterms
  std::size_t words_ = 0;   ///< 64-bit words per column
  std::uint64_t tail_ = 0;  ///< valid-bit mask of the last word
  /// Column-major: cols_[v * words_ + w] covers minterm indices
  /// [64w, 64w+63] of variable v.
  std::vector<std::uint64_t> cols_;
};

/// Expand a minterm into a prime-ish cube against a bit-sliced off-set.
/// Returns the same cube, literal for literal, as the row-major
/// expand_minterm over the same off-set and `var_order`.
Cube expand_minterm(std::uint64_t code, const BitSlicedOffSet& off,
                    const std::vector<int>& var_order);

}  // namespace sitm
