#pragma once
// Sum-of-products covers and the classical cover algebra of two-level
// synthesis: cofactors, tautology, complement, containment (the unate
// recursive paradigm of espresso).

#include <string>
#include <vector>

#include "boolf/cube.hpp"

namespace sitm {

/// A sum-of-products expression over `num_vars` variables.
class Cover {
 public:
  Cover() = default;
  explicit Cover(int num_vars) : num_vars_(num_vars) {}
  Cover(int num_vars, std::vector<Cube> cubes)
      : num_vars_(num_vars), cubes_(std::move(cubes)) {}

  static Cover zero(int num_vars) { return Cover(num_vars); }
  static Cover one(int num_vars) { return Cover(num_vars, {Cube::one()}); }

  int num_vars() const { return num_vars_; }
  const std::vector<Cube>& cubes() const { return cubes_; }
  std::vector<Cube>& cubes() { return cubes_; }
  bool empty() const { return cubes_.empty(); }
  std::size_t size() const { return cubes_.size(); }

  void add(const Cube& c) { cubes_.push_back(c); }

  /// Total number of literals (the paper's complexity measure for a
  /// sum-of-products gate).
  int num_literals() const;

  /// Evaluate on a full assignment.
  bool eval(std::uint64_t code) const;

  /// Remove duplicate and single-cube-contained cubes.
  void make_minimal_wrt_containment();
  /// Repeatedly merge distance-1 cube pairs with identical support
  /// (xy + xy' -> x) and drop contained cubes.  Cheap cleanup that brings
  /// recursive complements close to minimal SOPs.
  void merge_adjacent();
  /// Canonical sort for comparisons.
  void sort();

  /// Cofactor with respect to var=value.
  Cover cofactor(int var, bool value) const;
  /// Cofactor with respect to a cube.
  Cover cofactor(const Cube& c) const;

  /// Is the cover the constant-1 function? (unate recursive tautology)
  bool tautology() const;
  /// Does the cover contain (imply over) cube `c`?
  bool covers_cube(const Cube& c) const;
  /// Semantic containment: is `other`'s on-set a subset of ours?
  bool covers(const Cover& other) const;
  /// Semantic equality.
  bool equivalent(const Cover& other) const;
  /// Structural (cube-for-cube) equality — the bit-identity predicate of
  /// the parallel-synthesis equivalence tests; use `equivalent` for
  /// function equality.
  bool operator==(const Cover& o) const {
    return num_vars_ == o.num_vars_ && cubes_ == o.cubes_;
  }

  /// Complement via unate-recursive De Morgan recursion.
  Cover complement() const;

  /// OR / AND of two covers (no minimization).
  Cover operator|(const Cover& o) const;
  Cover operator&(const Cover& o) const;

  /// Variables appearing in some cube, as a mask.
  std::uint64_t support() const;

  /// Render as "a b' + c" using `names[v]` for variable v; "0"/"1" for
  /// constants.
  std::string to_string(const std::vector<std::string>& names) const;

 private:
  int num_vars_ = 0;
  std::vector<Cube> cubes_;
};

}  // namespace sitm
