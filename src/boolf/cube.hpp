#pragma once
// Cubes (product terms) over at most 64 boolean variables.
//
// A cube stores a `care` mask (which variables appear as literals) and a
// `val` mask (their polarities).  A minterm is a cube with all variables in
// `care`; the all-don't-care cube is the constant 1.

#include <cstdint>
#include <string>

namespace sitm {

struct Cube {
  std::uint64_t val = 0;   ///< polarity of each cared variable (1 = positive)
  std::uint64_t care = 0;  ///< which variables appear as literals

  /// The universal cube (constant 1).
  static Cube one() { return Cube{}; }
  /// A minterm from a full assignment over `nvars` variables.
  static Cube minterm(std::uint64_t code, int nvars) {
    const std::uint64_t mask =
        nvars >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << nvars) - 1);
    return Cube{code & mask, mask};
  }
  /// Single-literal cube.
  static Cube literal(int var, bool positive) {
    const std::uint64_t bit = std::uint64_t{1} << var;
    return Cube{positive ? bit : 0, bit};
  }

  bool operator==(const Cube&) const = default;
  /// Lexicographic order for canonical sorting of covers.
  bool operator<(const Cube& o) const {
    return care != o.care ? care < o.care : val < o.val;
  }

  int num_literals() const { return __builtin_popcountll(care); }
  bool is_one() const { return care == 0; }

  bool has_literal(int var) const { return (care >> var) & 1u; }
  /// Polarity of a present literal.
  bool polarity(int var) const { return (val >> var) & 1u; }

  /// Add/overwrite a literal.
  Cube with_literal(int var, bool positive) const {
    Cube c = *this;
    const std::uint64_t bit = std::uint64_t{1} << var;
    c.care |= bit;
    c.val = positive ? (c.val | bit) : (c.val & ~bit);
    return c;
  }
  /// Remove a literal (expand).
  Cube without_literal(int var) const {
    Cube c = *this;
    const std::uint64_t bit = std::uint64_t{1} << var;
    c.care &= ~bit;
    c.val &= ~bit;
    return c;
  }

  /// Does this cube evaluate to 1 on the full assignment `code`?
  bool contains_code(std::uint64_t code) const {
    return ((code ^ val) & care) == 0;
  }
  /// Is `o`'s on-set a subset of ours?  (o => this)
  bool contains(const Cube& o) const {
    return (care & ~o.care) == 0 && ((val ^ o.val) & care) == 0;
  }
  /// Do the cubes share a minterm?
  bool intersects(const Cube& o) const {
    return ((val ^ o.val) & care & o.care) == 0;
  }
  /// Intersection (only valid if intersects()).
  Cube meet(const Cube& o) const { return Cube{val | o.val, care | o.care}; }
  /// Smallest cube containing both.
  Cube supercube(const Cube& o) const {
    const std::uint64_t agree = care & o.care & ~(val ^ o.val);
    return Cube{val & agree, agree};
  }
  /// Number of variables with conflicting literals (espresso "distance").
  int distance(const Cube& o) const {
    return __builtin_popcountll((val ^ o.val) & care & o.care);
  }

  /// Cofactor with respect to literal (var=value); precondition: the cube
  /// does not conflict with it.
  Cube cofactor(int var, bool value) const {
    (void)value;
    return without_literal(var);
  }

  /// Render as e.g. "a b' d" given variable names; "1" for the universal cube.
  template <typename Names>
  std::string to_string(const Names& names) const {
    if (is_one()) return "1";
    std::string out;
    for (int v = 0; v < 64; ++v) {
      if (!has_literal(v)) continue;
      if (!out.empty()) out += ' ';
      out += names[v];
      if (!polarity(v)) out += '\'';
    }
    return out;
  }
};

}  // namespace sitm
