#pragma once
// Exact two-level minimization (Quine-McCluskey flavoured) for small
// instances: all primes are enumerated by exhaustive expansion against the
// off-set, then a minimum-literal cover is found by branch-and-bound set
// covering with essential-prime propagation.
//
// Exponential in the worst case — intended as the quality reference the
// tests hold the heuristic minimizer (minimize_onoff) against, and for
// squeezing the final covers of small benchmark gates.

#include <cstdint>
#include <vector>

#include "boolf/cover.hpp"

namespace sitm {

struct ExactOptions {
  int max_vars = 16;             ///< refuse larger instances
  std::size_t max_primes = 20000;  ///< refuse prime blow-ups
};

/// All prime implicants of the function with on-set `on`, off-set `off`
/// (everything else don't-care): the maximal cubes disjoint from `off` that
/// cover at least one `on` minterm.
std::vector<Cube> all_primes(const std::vector<std::uint64_t>& on,
                             const std::vector<std::uint64_t>& off,
                             int num_vars, const ExactOptions& opts = {});

/// Minimum-literal cover (ties broken towards fewer cubes).  Throws
/// sitm::Error when the instance exceeds the option limits.
Cover minimize_exact(const std::vector<std::uint64_t>& on,
                     const std::vector<std::uint64_t>& off, int num_vars,
                     const ExactOptions& opts = {});

}  // namespace sitm
