#include "core/mc_cover.hpp"

#include <algorithm>

#include "boolf/minimize.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/parallel.hpp"

namespace sitm {

namespace {

std::vector<std::uint64_t> codes_of(const StateGraph& sg, const DynBitset& set) {
  std::vector<std::uint64_t> out;
  out.reserve(set.count());
  set.for_each([&](std::size_t s) {
    out.push_back(sg.code(static_cast<StateId>(s)));
  });
  return out;
}

/// Monotonicity violations (MC condition 3): a 0->1 change of `cover` along
/// an arc that stays within ERj u QRj of some region.  Returns the states to
/// force into the off-set.
DynBitset monotonicity_violations(const StateGraph& sg, const Cover& cover,
                                  const std::vector<Region>& regions) {
  DynBitset bad(sg.num_states());
  for (const auto& region : regions) {
    DynBitset zone = region.er | region.qr;
    zone.for_each([&](std::size_t u) {
      if (cover.eval(sg.code(static_cast<StateId>(u)))) return;
      for (const auto& edge : sg.succs(static_cast<StateId>(u))) {
        if (!zone.test(edge.target)) continue;
        if (cover.eval(sg.code(edge.target))) bad.set(edge.target);
      }
    });
  }
  return bad;
}

}  // namespace

EventCover monotonous_cover(const StateGraph& sg, Event e,
                            const McOptions& opts) {
  EventCover out;
  out.event = e;
  out.regions = excitation_regions(sg, e);

  out.on = union_er(sg, out.regions);
  out.dc = union_qr(sg, out.regions);
  const DynBitset reachable = sg.reachable();
  out.off = reachable - out.on - out.dc;

  const MinimizeOptions mopts{opts.minimize_passes};
  const auto on_codes = codes_of(sg, out.on);

  // Repair loop: enforce condition 3 by moving rising quiescent states to
  // the off-set and re-minimizing.  Terminates because each round shrinks
  // the don't-care set.
  while (true) {
    out.cover = minimize_onoff(on_codes, codes_of(sg, out.off),
                               sg.num_signals(), mopts);
    const DynBitset bad = monotonicity_violations(sg, out.cover, out.regions);
    if (bad.none()) break;
    out.off |= bad;
    out.dc -= bad;
  }

  // Complemented form (for the min-literal gate measure), minimized with the
  // final don't-care space: ON and OFF swap roles.
  out.complement = minimize_onoff(codes_of(sg, out.off), on_codes,
                                  sg.num_signals(), mopts);
  out.complexity = std::min(out.cover.num_literals(),
                            out.complement.num_literals());
  return out;
}

Cover complete_cover(const StateGraph& sg, int sig, int* complexity,
                     const McOptions& opts) {
  std::vector<std::uint64_t> on, off;
  const DynBitset reachable = sg.reachable();
  reachable.for_each([&](std::size_t s) {
    const auto id = static_cast<StateId>(s);
    (next_value(sg, id, sig) ? on : off).push_back(sg.code(id));
  });
  const MinimizeOptions mopts{opts.minimize_passes};
  const Cover direct = minimize_onoff(on, off, sg.num_signals(), mopts);
  const Cover inverse = minimize_onoff(off, on, sg.num_signals(), mopts);
  if (complexity)
    *complexity = std::min(direct.num_literals(), inverse.num_literals());
  return direct;
}

SignalSynthesis synthesize_signal(const StateGraph& sg, int sig,
                                  const McOptions& opts) {
  if (sg.signal(sig).kind == SignalKind::kInput)
    throw Error("synthesize_signal: input signal " + sg.signal(sig).name);

  SignalSynthesis out;
  out.signal = sig;
  out.set = monotonous_cover(sg, Event{sig, true}, opts);
  out.reset = monotonous_cover(sg, Event{sig, false}, opts);
  out.complete = complete_cover(sg, sig, &out.complete_complexity, opts);

  const int seq = std::max(out.set.complexity, out.reset.complexity);
  switch (opts.architecture) {
    case Architecture::kAuto:
      out.combinational = out.complete_complexity <= seq;
      break;
    case Architecture::kStandardC:
      out.combinational = false;
      break;
    case Architecture::kComplexGate:
      out.combinational = true;
      break;
  }
  out.complexity = out.combinational ? out.complete_complexity : seq;
  return out;
}

int resolve_synthesis_threads(const McOptions& opts,
                              std::size_t num_signals) {
  return resolve_worker_threads(opts.threads, num_signals);
}

namespace {

/// Per-signal syntheses in `sigs` order.  The SG is shared read-only; each
/// signal's synthesis is independent, so any schedule produces the same
/// per-slot results as the serial loop.
std::vector<SignalSynthesis> synthesize_signals(const StateGraph& sg,
                                                const std::vector<int>& sigs,
                                                const McOptions& opts,
                                                const RunGuard* guard) {
  std::vector<SignalSynthesis> out(sigs.size());
  parallel_for(sigs.size(), opts.threads, [&](std::size_t i) {
    fault::hit("synth.signal");
    guard_charge(guard, 1, "synth.signal");
    out[i] = synthesize_signal(sg, sigs[i], opts);
  });
  return out;
}

}  // namespace

Netlist synthesize_all(const StateGraph& sg, const McOptions& opts,
                       std::vector<SignalSynthesis>* out_syntheses,
                       const RunGuard* guard) {
  Netlist netlist(&sg);
  if (out_syntheses) out_syntheses->clear();
  const std::vector<int> sigs = sg.noninput_signals();
  for (SignalSynthesis& synth : synthesize_signals(sg, sigs, opts, guard)) {
    SignalImpl impl;
    impl.signal = synth.signal;
    impl.combinational = synth.combinational;
    impl.complexity = synth.complexity;
    if (synth.combinational) {
      impl.set = synth.complete;
      impl.set_complexity = synth.complete_complexity;
    } else {
      impl.set = synth.set.cover;
      impl.reset = synth.reset.cover;
      impl.set_complexity = synth.set.complexity;
      impl.reset_complexity = synth.reset.complexity;
    }
    netlist.add_impl(std::move(impl));
    if (out_syntheses) out_syntheses->push_back(std::move(synth));
  }
  return netlist;
}

}  // namespace sitm
