#include "core/mapper.hpp"

#include <algorithm>

#include "core/progress.hpp"
#include "mlogic/division.hpp"
#include "sg/properties.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/parallel.hpp"
#include "util/text.hpp"

namespace sitm {

namespace {

/// Is the planned signal identical (over reachable states) to an existing
/// signal or its complement?  Such an insertion adds a redundant wire.
/// `reachable` is the (per-iteration, shared) reachable set of `sg`.
bool duplicates_signal(const StateGraph& sg, const DynBitset& reachable,
                       const DynBitset& s1) {
  for (int sig = 0; sig < sg.num_signals(); ++sig) {
    bool same = true, inverse = true;
    reachable.for_each([&](std::size_t s) {
      if (!same && !inverse) return;
      const bool fv = s1.test(s);
      const bool sv = sg.value(static_cast<StateId>(s), sig);
      if (fv != sv) same = false;
      if (fv == sv) inverse = false;
    });
    if (same || inverse) return true;
  }
  return false;
}

/// The sequential partner of a divisor: the cube of complemented literals
/// (e.g. a*b -> a'*b'; a+b -> a'*b').  A latch set by f and reset by this
/// partner realizes a Muller-C-style sub-element.  Returns an empty cover
/// when f uses some variable in both polarities.
Cover latch_reset_partner(const Cover& f) {
  Cube partner = Cube::one();
  for (const auto& cube : f.cubes()) {
    for (int v = 0; v < f.num_vars(); ++v) {
      if (!cube.has_literal(v)) continue;
      const bool want = !cube.polarity(v);
      if (partner.has_literal(v) && partner.polarity(v) != want)
        return Cover(f.num_vars());
      partner = partner.with_literal(v, want);
    }
  }
  if (partner.is_one()) return Cover(f.num_vars());
  return Cover(f.num_vars(), {partner});
}

MapMetrics metrics_of(const std::vector<SignalSynthesis>& syntheses,
                      const GateLibrary& library) {
  MapMetrics m;
  for (const auto& s : syntheses) {
    const int gates[2] = {s.combinational ? s.complete_complexity
                                          : s.set.complexity,
                          s.combinational ? -1 : s.reset.complexity};
    for (int c : gates) {
      if (c < 0) continue;
      if (!library.fits(c)) ++m.gates_over_library;
      m.max_complexity = std::max(m.max_complexity, c);
      m.total_literals += c;
    }
  }
  return m;
}

/// Fresh internal signal name.
std::string fresh_name(const StateGraph& sg, int counter) {
  while (true) {
    std::string name = "x" + std::to_string(counter);
    if (sg.find_signal(name) < 0) return name;
    ++counter;
  }
}

struct Candidate {
  Cover f;
  Cover quotient, remainder;
  InsertionPlan plan;
  ProgressEstimate estimate;
};

}  // namespace

Netlist MapResult::build_netlist(const McOptions& mc) const {
  if (!sg) throw Error("MapResult: no state graph");
  return synthesize_all(*sg, mc);
}

MapResult technology_map(const StateGraph& input, const MapperOptions& opts,
                         const RunGuard* guard) {
  MapResult result;
  result.sg = std::make_shared<StateGraph>(input);
  result.sg->prune_unreachable();

  if (auto r = check_implementability(*result.sg); !r)
    throw Error("technology_map: input SG not implementable: " + r.why);

  int name_counter = 0;

  while (true) {
    guard_check(guard, "map.iteration");
    fault::hit("map.round");
    StateGraph& sg = *result.sg;
    result.syntheses.clear();
    synthesize_all(sg, opts.mc, &result.syntheses, guard);

    // Shared per-iteration planning state: one diamond enumeration and one
    // region memo serve every divisor candidate of every target below, and
    // the reachable set feeds the duplicate-signal filter.
    InsertionPlanner planner(sg);
    const DynBitset reachable = sg.reachable();

    // Collect event covers whose signal implementation exceeds the library.
    struct Target {
      const SignalSynthesis* synth;
      const EventCover* cover;
    };
    std::vector<Target> targets;
    for (const auto& synth : result.syntheses) {
      if (opts.library.fits(synth.complexity)) continue;
      targets.push_back(Target{&synth, &synth.set});
      targets.push_back(Target{&synth, &synth.reset});
    }
    if (targets.empty()) {
      result.implementable = true;
      return result;
    }
    if (result.signals_inserted >= opts.max_insertions) {
      result.failure = "insertion limit reached";
      return result;
    }

    // Most complex covers first (the paper's target selection).
    std::stable_sort(targets.begin(), targets.end(),
                     [](const Target& a, const Target& b) {
                       return a.cover->complexity > b.cover->complexity;
                     });

    bool committed = false;
    const MapMetrics current_metrics =
        metrics_of(result.syntheses, opts.library);
    // Shared per-iteration verification state: the persistency baseline of
    // `sg` is candidate-independent, so every pre-check round below reuses
    // it (the verifier is const and safe to share across the worker pool).
    const InsertionVerifier verifier(sg);

    int tried_targets = 0;
    for (const auto& target : targets) {
      if (tried_targets++ >= opts.max_target_events) break;
      // Gates already implementable do not need decomposition.
      if (opts.library.fits(target.cover->complexity)) continue;

      // ---- candidate generation -------------------------------------
      std::vector<Candidate> candidates;
      auto consider = [&](const Cover& f, std::optional<InsertionPlan> plan,
                          const Division& div) {
        if (!plan) return;
        if (duplicates_signal(sg, reachable, plan->s1)) return;
        ProgressEstimate est =
            estimate_progress(sg, result.syntheses, *target.cover,
                              div.quotient, div.remainder, *plan);
        if (!opts.global_acknowledgement && est.new_triggers > 0) return;
        ++result.candidates_planned;
        candidates.push_back(
            Candidate{f, div.quotient, div.remainder, std::move(*plan), est});
      };
      for (Cover& f : generate_divisors(target.cover->cover, opts.divisors)) {
        Division div = algebraic_division(target.cover->cover, f);
        if (div.quotient.empty()) continue;  // not an algebraic divisor
        // Combinational divisor: the new signal is a delayed copy of f.
        consider(f, planner.plan(f), div);
        // Sequential divisor: an SR sub-latch set by f and reset by the
        // complement-literal partner cube (C-element decomposition).
        const Cover partner = latch_reset_partner(f);
        if (!partner.empty()) consider(f, planner.plan_latch(f, partner), div);
      }
      // Properties 3.1 / 3.2 rank the candidates (safe substitutions and
      // bounded impact on other covers first); the exact accept/reject
      // decision is the resynthesis below.
      if (opts.use_progress_filters) {
        auto key = [](const Candidate& c) {
          return std::make_tuple(c.estimate.target_ok ? 0 : 1,
                                 c.estimate.others_ok ? 0 : 1,
                                 c.estimate.estimated_delta);
        };
        std::stable_sort(candidates.begin(), candidates.end(),
                         [&](const Candidate& a, const Candidate& b) {
                           return key(a) < key(b);
                         });
      }

      // ---- full evaluation (resynthesis from scratch) ------------------
      // Every candidate evaluation reads only the shared (const) SG and its
      // own plan, so both steps fan out to a worker pool
      // (MapperOptions::threads): the insert/verify pre-check in rank-order
      // rounds, each round's verified candidates fully resynthesized before
      // the next round starts.  The evaluated set — the first
      // max_full_evals candidates whose insertion verifies — and the winner
      // — the best (metrics, states) key, earliest candidate on ties — are
      // both determined in candidate order, so the mapped result and the
      // search counters are bit-identical to the serial loop at every
      // thread count.  With prune_pre_checks the loop additionally stops
      // at the first round boundary where a committable running best
      // exists: the pruned candidates carry estimates no better than what
      // already won, and never pay for insert_signal/verify_insertion.
      struct Evaluated {
        StateGraph sg;
        std::vector<SignalSynthesis> syntheses;
        const Candidate* candidate = nullptr;
        MapMetrics metrics;
        std::size_t states = 0;
      };
      const std::string name = fresh_name(sg, name_counter);
      const int eval_threads =
          resolve_worker_threads(opts.threads, candidates.size());
      // Round width.  When pruning, the stop decision happens only on round
      // boundaries, so the width must not depend on the worker count — a
      // fixed 8 keeps the pruned result bit-identical at every thread
      // count.  Without pruning the width is unobservable (the evaluated
      // set is the first `cap` verifying candidates regardless), so one
      // chunk per worker over-checks at most one chunk past the serial
      // stop, exactly like the historical pre-check loop.
      const std::size_t round_width =
          opts.prune_pre_checks
              ? std::size_t{8}
              : static_cast<std::size_t>(std::max(eval_threads, 1));

      std::vector<Evaluated> evaluated;
      std::optional<std::size_t> best_idx;  // committable running best
      auto key = [](const Evaluated& e) {
        return std::make_tuple(e.metrics.tuple(), e.states);
      };
      {
        const std::size_t cap =
            opts.max_full_evals > 0
                ? static_cast<std::size_t>(opts.max_full_evals)
                : 0;
        std::vector<std::optional<StateGraph>> verified;
        std::size_t pos = 0;
        while (pos < candidates.size() && evaluated.size() < cap) {
          if (opts.prune_pre_checks && best_idx) break;
          const std::size_t chunk =
              std::min(candidates.size() - pos, round_width);
          guard_charge(guard, chunk, "map.candidates");
          verified.assign(chunk, std::nullopt);
          parallel_for(chunk, eval_threads, [&](std::size_t k) {
            const InsertionPlan& plan = candidates[pos + k].plan;
            StateGraph next = insert_signal(sg, plan, name);
            const DynBitset disturbed = disturbed_signals(sg, plan);
            if (verifier.verify(next, /*require_csc=*/true, &disturbed))
              verified[k] = std::move(next);
          });
          const std::size_t first_new = evaluated.size();
          for (std::size_t k = 0; k < chunk && evaluated.size() < cap; ++k) {
            if (!verified[k]) continue;
            Evaluated ev;
            ev.sg = std::move(*verified[k]);
            ev.candidate = &candidates[pos + k];
            evaluated.push_back(std::move(ev));
          }
          parallel_for(evaluated.size() - first_new, eval_threads,
                       [&](std::size_t k) {
                         Evaluated& ev = evaluated[first_new + k];
                         synthesize_all(ev.sg, opts.mc, &ev.syntheses, guard);
                         ev.metrics = metrics_of(ev.syntheses, opts.library);
                         ev.states = ev.sg.num_states();
                       });
          for (std::size_t i = first_new; i < evaluated.size(); ++i) {
            // Progress requirement: the global cost tuple strictly
            // decreases.  This is the termination measure of the whole loop
            // — temporary growth of one cover (the acknowledgement literal
            // of Property 3.2) is fine as long as fewer gates exceed the
            // library.
            if (!(evaluated[i].metrics < current_metrics)) continue;
            if (!best_idx || key(evaluated[i]) < key(evaluated[*best_idx]))
              best_idx = i;
          }
          pos += chunk;
        }
      }
      result.resyntheses += static_cast<long>(evaluated.size());
      Evaluated* best = best_idx ? &evaluated[*best_idx] : nullptr;

      if (best) {
        MapStep step;
        step.new_signal = name;
        step.divisor = best->candidate->plan.f;
        step.divisor_reset = best->candidate->plan.f_reset;
        step.latch = best->candidate->plan.latch;
        step.target_signal = target.synth->signal;
        step.target_event = target.cover->event;
        step.states_before = sg.num_states();
        step.states_after = best->sg.num_states();
        step.before = current_metrics;
        step.after = best->metrics;
        result.steps.push_back(std::move(step));

        result.sg = std::make_shared<StateGraph>(std::move(best->sg));
        ++result.signals_inserted;
        ++name_counter;
        committed = true;
        break;
      }
    }

    if (!committed) {
      result.failure = "no divisor makes progress (n.i.)";
      // Leave the best-effort syntheses in the result for inspection.
      return result;
    }
  }
}

}  // namespace sitm
