#pragma once
// The library model of the paper's experiments: all sum-of-product gates
// with at most `max_literals` literals (complemented or not) are available,
// plus C elements.  Table 1 evaluates i = 2, 3, 4.

namespace sitm {

struct GateLibrary {
  int max_literals = 2;

  /// Does a gate of complexity `literals` exist in the library?
  bool fits(int literals) const { return literals <= max_literals; }
};

}  // namespace sitm
