#pragma once
// Complete State Coding resolution.
//
// The mapping flow requires CSC (paper Section 2.1); when a specification
// violates it, state signals must be inserted first.  This module implements
// the companion step the paper delegates to [6] ("Complete state encoding
// based on the theory of regions"): it reuses the same SIP-preserving event
// insertion machinery, choosing insertion latches whose value separates the
// conflicting states.
//
// Candidate generation: for every ordered pair of events (e1, e2) the
// candidate signal is set right after e1 fires and reset right after e2
// fires (a state-set latch over SR(e1) / SR(e2)).  A candidate is committed
// when it strictly reduces the number of CSC conflict pairs while preserving
// consistency, speed-independence and persistency.

#include <memory>
#include <string>
#include <vector>

#include "sg/state_graph.hpp"
#include "util/run_guard.hpp"

namespace sitm {

struct CscOptions {
  int max_insertions = 12;
  /// Upper bound on (e1, e2) candidate pairs examined per iteration.
  std::size_t max_candidates = 256;
  /// When > 0, rank the candidate pairs by a cheap conflict-splitting score
  /// (computed from the cached per-state output-event masks and switching
  /// regions, no insertion needed) and run the expensive insert/verify round
  /// trip only for the best K, falling back to the remaining candidates only
  /// when no top-K candidate commits.  0 (the default) evaluates candidates
  /// exhaustively in enumeration order, which is bit-identical to the
  /// reference implementation; the ranked mode may commit a different —
  /// equally valid — latch.
  std::size_t rank_top_k = 0;
  /// Plan every candidate with a fresh one-shot planner (per-candidate
  /// diamond enumeration, no cross-candidate memo) instead of the shared
  /// per-iteration InsertionPlanner.  The results are bit-identical either
  /// way — the shared planner only caches, it never reorders — so this
  /// exists purely as the retained reference cost model for the equivalence
  /// tests and the BM_ResolveCscIncremental benchmark.
  bool reference_planner = false;
};

struct CscStep {
  std::string new_signal;
  Event set_after, reset_after;  ///< the events bounding the latch
  int conflicts_before = 0, conflicts_after = 0;
};

struct CscResult {
  bool resolved = false;
  std::string failure;
  int signals_inserted = 0;
  std::shared_ptr<StateGraph> sg;
  std::vector<CscStep> steps;
  /// Search-work counters, summed over all iterations: candidates that
  /// passed the static filters and received a conflict/state score, and
  /// successor graphs actually materialized via insert_signal.  The lazy
  /// engine keeps graphs_materialized at (roughly) one per inserted signal;
  /// the reference engine pays one per scored candidate.
  long candidates_scored = 0;
  long graphs_materialized = 0;
  /// Guard exhaustion that ended the search early (kNone = ran to
  /// completion).  When an iteration's scan was cut short but a committable
  /// candidate had already been scored, that best-so-far latch is committed
  /// and `degraded` is set: the result is a valid (possibly suboptimal)
  /// insertion, and `resolved` still reflects whether zero conflicts remain.
  GuardStop stopped = GuardStop::kNone;
  bool degraded = false;
};

/// Number of CSC conflict pairs: pairs of states with equal codes enabling
/// different non-input event sets.
int count_csc_conflicts(const StateGraph& sg);

/// Cached CSC conflict analysis of one SG revision, computed from a single
/// pass of per-state output-event masks.  The flow computes this once per SG
/// and shares it between the properties and csc stages instead of re-walking
/// the adjacency lists per query (check_csc + count_csc_conflicts each
/// rebuild the masks from scratch).
struct CscAnalysis {
  int conflict_pairs = 0;
  /// States participating in at least one conflict pair.
  DynBitset involved_states;

  bool ok() const { return conflict_pairs == 0; }
};
CscAnalysis analyze_csc(const StateGraph& sg);

/// Insert state signals until the SG satisfies CSC (or give up).  `guard`
/// (optional) bounds the search: one work unit per candidate scored; on
/// exhaustion the best already-scored candidate of the current iteration is
/// committed (graceful degradation) and the search stops with
/// `stopped`/`degraded` recorded instead of throwing.
CscResult resolve_csc(const StateGraph& sg, const CscOptions& opts = {},
                      const RunGuard* guard = nullptr);

}  // namespace sitm
