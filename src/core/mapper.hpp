#pragma once
// The technology mapping loop (paper Section 3).
//
//   while the circuit is not implementable in the library:
//     pick the event a* with the most complex monotonous cover;
//     enumerate divisors of c(a*) (kernels, co-kernels, AND/OR subsets);
//     for each divisor f: plan a SIP insertion of a new signal x = f,
//       filter by Properties 3.1 / 3.2 (progress analysis on the old SG);
//     fully resynthesize the most promising candidates (boolean division /
//       resynthesis: every cover is recomputed from scratch on the new SG,
//       which realizes the paper's global acknowledgement automatically);
//     commit the candidate with the best global progress, or give up (n.i.).
//
// The paper's tuning knobs (try other events when the worst one is stuck,
// cap the number of candidates, local-vs-global acknowledgement for the
// ablation study) are exposed through MapperOptions.

#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "core/gate_library.hpp"
#include "core/insertion.hpp"
#include "core/mc_cover.hpp"
#include "mlogic/divisors.hpp"
#include "netlist/netlist.hpp"
#include "sg/state_graph.hpp"

namespace sitm {

struct MapperOptions {
  GateLibrary library{2};
  McOptions mc;
  DivisorOptions divisors;
  /// Apply Properties 3.1/3.2 as candidate filters before resynthesis.
  bool use_progress_filters = true;
  /// Allow transitions of the new signal to be acknowledged by covers other
  /// than the target (the paper's key improvement over [12, 4]).  When
  /// false, candidates creating any new trigger on another cover are
  /// discarded — the "local acknowledgement" baseline of the ablation.
  bool global_acknowledgement = true;
  /// Safety cap on inserted signals.
  int max_insertions = 48;
  /// How many of the most complex events are tried per iteration before
  /// declaring failure.
  int max_target_events = 4;
  /// How many filtered candidates are fully resynthesized per target.
  int max_full_evals = 12;
  /// Worker threads for the candidate resynthesis loop.  Each candidate is
  /// an independent insert/verify/resynthesize over the read-only current
  /// SG, so candidates are evaluated in parallel and the winner is chosen
  /// in candidate order — the mapped SG, netlist, steps and search counters
  /// are bit-identical at every thread count.  1 = serial, 0 = one thread
  /// per hardware core.
  int threads = 1;
  /// Prune the insert/verify pre-check: candidates are evaluated in
  /// fixed-size rounds (thread-count independent), and once a fully
  /// resynthesized candidate already beats the pre-insertion metrics (a
  /// committable running best exists), the remaining candidates — ranked no
  /// better by the Property 3.1/3.2 estimates — are never inserted,
  /// verified or resynthesized.  Like CscOptions::rank_top_k this trades
  /// the exhaustive winner for the best of the leading rounds: the mapper
  /// may commit a different, equally progress-making decomposition, but the
  /// result is still bit-identical across thread counts for fixed options.
  /// false (the default) evaluates every ranked candidate, bit-identical to
  /// the historical loop.
  bool prune_pre_checks = false;
};

/// Global cost of a synthesis state: number of gates exceeding the library,
/// worst gate complexity, total literals.  The mapper accepts an insertion
/// only if this tuple strictly decreases lexicographically, which makes the
/// loop terminate (the order is well-founded).
struct MapMetrics {
  int gates_over_library = 0;
  int max_complexity = 0;
  int total_literals = 0;

  auto tuple() const {
    return std::make_tuple(gates_over_library, max_complexity, total_literals);
  }
  bool operator<(const MapMetrics& o) const { return tuple() < o.tuple(); }
  bool operator==(const MapMetrics& o) const { return tuple() == o.tuple(); }
};

/// One committed decomposition step, for reporting.
struct MapStep {
  std::string new_signal;
  Cover divisor;              ///< (set) function of the inserted signal
  Cover divisor_reset;        ///< reset partner for latch insertions
  bool latch = false;         ///< sequential (SR latch) insertion
  int target_signal = -1;
  Event target_event;
  std::size_t states_before = 0, states_after = 0;
  MapMetrics before, after;   ///< global cost before/after the insertion
};

/// Result of technology mapping.
struct MapResult {
  bool implementable = false;
  std::string failure;        ///< reason when not implementable
  int signals_inserted = 0;
  /// Search statistics: divisor candidates with a legal insertion plan, and
  /// how many were fully resynthesized (the expensive step the Property
  /// 3.1/3.2 ranking is meant to save).
  long candidates_planned = 0;
  long resyntheses = 0;
  /// Final SG (with the inserted signals) and its synthesis.
  std::shared_ptr<StateGraph> sg;
  std::vector<SignalSynthesis> syntheses;
  std::vector<MapStep> steps;

  /// Standard-C netlist of the final SG.  The returned netlist references
  /// *sg; keep this MapResult alive while using it.
  Netlist build_netlist(const McOptions& mc = {}) const;
};

/// Map `sg` onto the library in `opts`.  The input SG must satisfy the flow
/// preconditions (consistency, speed-independence, CSC); throws otherwise.
/// `guard` (optional) bounds the search — polled at every iteration, per
/// pre-check round and per resynthesis — and throws GuardExhausted on
/// exhaustion (no partial MapResult: an uncommitted decomposition has no
/// netlist worth degrading to).
MapResult technology_map(const StateGraph& sg, const MapperOptions& opts = {},
                         const RunGuard* guard = nullptr);

}  // namespace sitm
