#pragma once
// Speed-independence-preserving signal insertion (paper Sections 2.3 / 3.2).
//
// Given a candidate divisor function f over the SG signals, the bipartition
// {S0, S1} induced by f is refined into an I-partition {S0', S1', ER(x+),
// ER(x-)} by growing the excitation regions of the new signal x from the
// input borders IB(f+) / IB(f-):
//
//   1. start from ER(x+) = IB(f+);
//   2. force well-formedness: add every S1-state that is a direct
//      predecessor of an ER(x+) state;
//   3. force the SIP property: close illegal state-diamond intersections
//      (if three corners of a diamond lie in the region, add the fourth);
//   4. preserve the input/output interface: an input event enabled inside
//      ER(x+) must not be delayed, so its successor is pulled into the
//      region; repeat from step 2.
//
// The procedure reaches the unique minimal fixed point or fails when forced
// to include a state of the opposite block (then no legal insertion of x
// with function f exists).  ER(x-) is grown symmetrically inside S0.
//
// `insert_signal` then splits every state of ER(x+) / ER(x-) into a
// pre/post pair per the insertion scheme of Figure 3 and returns the new SG.

#include <optional>
#include <string>
#include <vector>

#include "boolf/cover.hpp"
#include "sg/properties.hpp"
#include "sg/state_graph.hpp"
#include "util/dynbitset.hpp"
#include "util/flat_map.hpp"

namespace sitm {

/// A valid I-partition for inserting a new signal.
struct InsertionPlan {
  Cover f;           ///< the (set) divisor function
  Cover f_reset;     ///< reset condition; empty for combinational divisors
  bool latch = false;  ///< sequential (set/reset latch) divisor
  DynBitset s1;      ///< states where the new signal settles to 1
  DynBitset er_rise; ///< ER(x+) (subset of s1)
  DynBitset er_fall; ///< ER(x-) (subset of ~s1)
  bool initial_value = false;  ///< x's value in the initial state
};

struct InsertionFailure {
  std::string why;
};

/// Incremental insertion-planning engine: one planner per SG revision.
///
/// Planning one candidate re-derives per-graph state the candidates of a
/// `resolve_csc` round or a mapper iteration all share: the diamond
/// enumeration (the dominant cost — previously recomputed inside every
/// plan), and, for candidates whose seeds propagate to the same S1 block,
/// the grown excitation regions.  The planner owns that shared state:
///
///  * diamonds are enumerated lazily, once, on the first plan that reaches
///    region growth;
///  * a memo keyed by the (set-seed, reset-seed) switching-region pair
///    caches the propagated latch block (or the propagation failure), so
///    candidates bounded by events with identical switching regions skip
///    the fixpoint;
///  * a second memo keyed by the S1 block itself caches the grown
///    ER(x+)/ER(x-) pair, the derived initial value, or the growth failure
///    — shared even between candidates with different seeds (and between
///    combinational and latch divisors) that induce the same bipartition.
///
/// Every query returns exactly what the one-shot free functions below
/// return, failure strings included; `tests/perf_equiv_test.cpp` pins the
/// memoized answers against fresh one-shot plans.  The planner holds a
/// reference to the SG — do not mutate or destroy the graph while using it.
class InsertionPlanner {
 public:
  explicit InsertionPlanner(const StateGraph& sg);

  /// Combinational divisor `f` (S1 = states where f evaluates to 1).
  std::optional<InsertionPlan> plan(const Cover& f,
                                    InsertionFailure* failure = nullptr);

  /// Cover-based SR-latch divisor (see `plan_latch_insertion`).
  std::optional<InsertionPlan> plan_latch(const Cover& f_set,
                                          const Cover& f_reset,
                                          InsertionFailure* failure = nullptr);

  /// State-set latch divisor (see `plan_state_latch_insertion`).
  std::optional<InsertionPlan> plan_state_latch(
      const DynBitset& set_states, const DynBitset& reset_states,
      InsertionFailure* failure = nullptr);

  /// The graph's diamonds, enumerated on first use and then shared.
  const std::vector<Diamond>& diamonds();

  /// Memo effectiveness counters (queries answered from a cache).
  std::size_t region_memo_hits() const { return region_hits_; }
  std::size_t finish_memo_hits() const { return finish_hits_; }

 private:
  /// Grown regions + initial value for one S1 block, or the failure reason.
  struct FinishOutcome {
    bool ok = false;
    DynBitset er_rise, er_fall;
    bool initial_value = false;
    std::string why;
  };
  /// Propagated latch block for one (set, reset) seed pair, or the failure.
  struct PropagateOutcome {
    bool ok = false;
    DynBitset s1;
    std::string why;
  };

  /// Compute input borders + region growth for `plan.s1`, memoized.
  std::optional<InsertionPlan> finish(InsertionPlan plan,
                                      InsertionFailure* failure);
  const FinishOutcome& finish_outcome(const DynBitset& s1);
  const PropagateOutcome& propagate_outcome(const DynBitset& set_states,
                                            const DynBitset& reset_states);

  const StateGraph& sg_;
  std::optional<std::vector<Diamond>> diamonds_;
  /// (set words ++ reset words) -> index into propagate_results_.
  FlatMap<std::vector<std::uint64_t>, std::uint32_t, WordVecHash> region_memo_;
  std::vector<PropagateOutcome> propagate_results_;
  /// s1 words -> index into finish_results_.
  FlatMap<std::vector<std::uint64_t>, std::uint32_t, WordVecHash> finish_memo_;
  std::vector<FinishOutcome> finish_results_;
  /// Reused lookup-key buffer: queries probe with it and only a memo miss
  /// pays for the key copy (the memo is on the per-candidate hot path).
  std::vector<std::uint64_t> key_scratch_;
  std::size_t region_hits_ = 0, finish_hits_ = 0;
};

/// Compute the I-partition for the combinational divisor `f` (S1 = states
/// where f evaluates to 1); returns the failure reason if no legal
/// speed-independence-preserving insertion exists.  One-shot shell over a
/// throwaway InsertionPlanner; callers planning many candidates against one
/// SG should construct the planner once and reuse it.
std::optional<InsertionPlan> plan_insertion(const StateGraph& sg,
                                            const Cover& f,
                                            InsertionFailure* failure = nullptr);

/// Compute the I-partition for a sequential (latch) divisor: the new signal
/// behaves like an SR latch, set when `f_set` holds and reset when `f_reset`
/// holds; elsewhere it keeps its value.  S1 is obtained by propagating this
/// latch semantics over the SG; fails when set/reset overlap on a reachable
/// state or the propagated value is ambiguous.  This realizes the paper's
/// "very general sequential decomposition" (Section 5) — e.g. a 3-input
/// C element decomposes as C(C(a,b), c) via f_set = a*b, f_reset = a'*b'.
std::optional<InsertionPlan> plan_latch_insertion(
    const StateGraph& sg, const Cover& f_set, const Cover& f_reset,
    InsertionFailure* failure = nullptr);

/// State-set variant of the latch planner: the new signal is forced to 1 on
/// `set_states`, to 0 on `reset_states`, and inherits its value elsewhere.
/// Unlike the cover-based planners this can separate states sharing the same
/// binary code, which is what Complete State Coding resolution needs (the
/// insertion machinery is shared with decomposition, paper Section 2.3).
std::optional<InsertionPlan> plan_state_latch_insertion(
    const StateGraph& sg, const DynBitset& set_states,
    const DynBitset& reset_states, InsertionFailure* failure = nullptr);

/// Provenance of the inserted graph's states: for every pre-insertion state,
/// the new-graph ids of its x=0 and x=1 copies (kNoState when the copy does
/// not exist or was pruned as unreachable).  Each new state is exactly one
/// old state's copy for exactly one x value, which is what lets CSC
/// resolution recount conflicts class-locally instead of rescanning.
struct InsertionCopies {
  std::vector<StateId> x0, x1;
};

/// Insert a new internal signal named `name` according to `plan`.
/// The result is verified for consistency by construction; behavioural
/// properties (speed-independence, CSC, SIP-ness) should be re-checked by
/// the caller via `verify_insertion`.
StateGraph insert_signal(const StateGraph& sg, const InsertionPlan& plan,
                         const std::string& name,
                         InsertionCopies* copies = nullptr);

/// Lazy view of `insert_signal(sg, plan, ...)`'s result, computed without
/// materializing the successor graph.  The inserted graph's states are
/// exactly the surviving (old state, x value) copies, so one reachability
/// walk over that implicit copy product — copy existence and the x0/x1 arc
/// carry-over rules are pure functions of the plan's region bitsets —
/// answers the questions candidate scoring asks: how many states the pruned
/// graph has, which copies survive, and each surviving copy's enabled-event
/// bitmap.  This replaces the full graph copy + `prune_unreachable` that
/// scoring a candidate used to pay; `resolve_csc` scores every candidate
/// through this view and calls `insert_signal` only for the ones it must
/// verify (normally just the committed winner).  All answers are
/// bit-identical to querying the materialized graph and its
/// `InsertionCopies` (pinned by tests/perf_equiv_test.cpp).
///
/// Holds references to `sg` and `plan`; both must outlive the preview.
class InsertionPreview {
 public:
  InsertionPreview(const StateGraph& sg, const InsertionPlan& plan);

  /// State count of the materialized graph after `prune_unreachable`.
  std::size_t num_states() const { return num_states_; }

  /// Does the x=`value` copy of old state `s` exist and survive pruning?
  /// Exactly `(value ? copies.x1 : copies.x0)[s] != kNoState`.
  bool copy_reachable(StateId s, bool value) const {
    return reached_.test(pair_index(s, value));
  }

  /// Enabled-event bitmap of the surviving copy (s, value), laid out like
  /// `StateGraph::enabled_mask` of the successor graph: old signals keep
  /// their event ids, the new signal's events sit at signal index
  /// `sg.num_signals()`.  Only meaningful for reachable copies.
  std::array<std::uint64_t, 2> enabled_mask(StateId s, bool value) const;

 private:
  static std::size_t pair_index(StateId s, bool value) {
    return 2 * static_cast<std::size_t>(s) + (value ? 1 : 0);
  }
  bool copy_exists(StateId s, bool value) const;
  bool arc_carries(StateId from, StateId to, bool value) const;

  const StateGraph& sg_;
  const InsertionPlan& plan_;
  DynBitset reached_;  ///< surviving (old state, x value) copies
  std::size_t num_states_ = 0;
};

/// Signals whose enabled-event sets the insertion can change on some state
/// copy: the signals of original arcs dropped at excitation-region states
/// (copy missing on one x side, or an ER(x+)/ER(x-) crossing skipping the
/// pending transition).  A signal persistent in `sg` and outside this set is
/// provably still persistent after `insert_signal(sg, plan, ...)`: every
/// state copy keeps its old enabled set except ER copies, whose only edits
/// are these drops plus the new x events — so a persistency check of the
/// inserted graph only needs to revisit the disturbed signals.
DynBitset disturbed_signals(const StateGraph& sg, const InsertionPlan& plan);

/// Post-insertion verifier with the per-iteration work memoized: which
/// signals of `before` are persistent is a property of that graph alone, so
/// one resolve_csc / mapper iteration computes the baseline once and every
/// candidate's SIP check reuses it instead of re-deriving it per
/// `verify_insertion` call.  The baseline is computed eagerly in the
/// constructor and `verify` touches no mutable state, so one verifier can
/// serve concurrent candidate checks (the mapper verifies inside
/// parallel_for workers).  Holds a reference to `before`.
class InsertionVerifier {
 public:
  explicit InsertionVerifier(const StateGraph& before);

  /// Exactly `verify_insertion(before, after, require_csc)`, with the
  /// baseline reused.  When `disturbed` is given (see `disturbed_signals`)
  /// the SIP re-checks skip baseline-persistent signals outside it; the
  /// verdict and failure message are unchanged — the skipped checks cannot
  /// fail.
  PropertyResult verify(const StateGraph& after, bool require_csc = true,
                        const DynBitset* disturbed = nullptr) const;

 private:
  const StateGraph& before_;
  std::vector<char> persistent_;  ///< per-signal: persistent in `before`?
};

/// Full post-insertion check: the new SG must be deterministic, commutative,
/// output-persistent (including x), satisfy CSC, and every signal persistent
/// in the old SG must remain persistent (the SIP condition).  Pass
/// `require_csc = false` while resolving CSC conflicts (the input SG itself
/// violates CSC and intermediate steps may still).  One-shot shell over a
/// throwaway InsertionVerifier; callers checking many candidates against one
/// `before` graph should construct the verifier once and reuse it.
PropertyResult verify_insertion(const StateGraph& before,
                                const StateGraph& after,
                                bool require_csc = true);

}  // namespace sitm
