#include "core/csc.hpp"

#include <algorithm>
#include <numeric>
#include <optional>

#include "core/insertion.hpp"
#include "sg/properties.hpp"
#include "sg/regions.hpp"
#include "util/error.hpp"
#include "util/flat_map.hpp"

namespace sitm {

namespace {

/// Bitmask of the enabled non-input events of a state: 2 bits per signal,
/// signals 0..31 in `lo`, 32..63 in `hi`.  128 bits cover the full 64-signal
/// range of a StateGraph — the earlier single-word mask aliased signals 32
/// apart and could silently miss conflicts on wide specifications.
struct OutputMask {
  std::uint64_t lo = 0, hi = 0;
  bool operator==(const OutputMask&) const = default;
};

OutputMask output_event_mask(const StateGraph& sg, StateId s,
                             const std::vector<char>& noninput) {
  OutputMask m;
  for (const auto& e : sg.succs(s)) {
    if (!noninput[e.event.signal]) continue;
    const std::uint64_t bit =
        std::uint64_t{1}
        << (2 * (e.event.signal & 31) + (e.event.rising ? 1 : 0));
    if (e.event.signal < 32)
      m.lo |= bit;
    else
      m.hi |= bit;
  }
  return m;
}

std::vector<char> noninput_flags(const StateGraph& sg) {
  std::vector<char> noninput(sg.num_signals());
  for (int i = 0; i < sg.num_signals(); ++i)
    noninput[i] = is_noninput(sg.signal(i).kind);
  return noninput;
}

/// One pass over all states caching each state's output-event mask; the
/// conflict scan then compares cached words instead of re-walking adjacency
/// lists per state pair.
std::vector<OutputMask> output_event_masks(const StateGraph& sg) {
  const std::vector<char> noninput = noninput_flags(sg);
  std::vector<OutputMask> masks(sg.num_states());
  for (StateId s = 0; s < static_cast<StateId>(sg.num_states()); ++s)
    masks[s] = output_event_mask(sg, s, noninput);
  return masks;
}

struct ConflictInfo {
  int pairs = 0;
  /// States participating in at least one conflict.
  DynBitset involved;
  /// Cached per-state output-event masks (index = StateId).
  std::vector<OutputMask> masks;
  /// Code classes with >= 2 states, in discovery order.  Only these can host
  /// conflicts — before or after a latch insertion (the inserted bit refines
  /// each class into at most two, and singleton classes stay conflict-free).
  std::vector<std::vector<StateId>> multi_classes;
};

ConflictInfo csc_conflicts(const StateGraph& sg) {
  ConflictInfo info{0, sg.empty_set(), output_event_masks(sg), {}};

  // Group states by binary code.  Groups keep discovery (= state id) order,
  // and the pair count / involved set are order-independent anyway.
  FlatMap<std::uint64_t, std::uint32_t> group_of(sg.num_states());
  std::vector<std::vector<StateId>> groups;
  for (StateId s = 0; s < static_cast<StateId>(sg.num_states()); ++s) {
    auto [slot, inserted] = group_of.emplace(
        sg.code(s), static_cast<std::uint32_t>(groups.size()));
    if (inserted) groups.emplace_back();
    groups[*slot].push_back(s);
  }

  for (auto& states : groups) {
    if (states.size() < 2) continue;
    for (std::size_t i = 0; i < states.size(); ++i) {
      for (std::size_t j = i + 1; j < states.size(); ++j) {
        if (!(info.masks[states[i]] == info.masks[states[j]])) {
          ++info.pairs;
          info.involved.set(static_cast<std::size_t>(states[i]));
          info.involved.set(static_cast<std::size_t>(states[j]));
        }
      }
    }
    info.multi_classes.push_back(std::move(states));
  }
  return info;
}

/// Conflict-pair count of the post-insertion graph `next` — equal to
/// count_csc_conflicts(next), but computed class-locally.  A new state's
/// code is its source state's code plus the latch bit, so the only code
/// classes of `next` with >= 2 members are the old multi-state classes
/// refined by latch value; output masks are recomputed for just those
/// states instead of rescanning the whole graph per candidate.
int conflicts_after_insertion(
    const StateGraph& next, const InsertionCopies& copies,
    const std::vector<std::vector<StateId>>& multi_classes,
    const std::vector<char>& noninput) {
  std::vector<OutputMask> masks;
  std::vector<StateId> members;
  int pairs = 0;
  for (const auto& cls : multi_classes) {
    for (const auto* side : {&copies.x0, &copies.x1}) {
      members.clear();
      for (StateId s : cls) {
        const StateId t = (*side)[static_cast<std::size_t>(s)];
        if (t != kNoState) members.push_back(t);
      }
      if (members.size() < 2) continue;
      masks.clear();
      for (StateId t : members)
        masks.push_back(output_event_mask(next, t, noninput));
      for (std::size_t i = 0; i < masks.size(); ++i)
        for (std::size_t j = i + 1; j < masks.size(); ++j)
          if (!(masks[i] == masks[j])) ++pairs;
    }
  }
  return pairs;
}

/// Fresh internal signal name for state encoding.
std::string fresh_csc_name(const StateGraph& sg, int counter) {
  while (true) {
    std::string name = "csc" + std::to_string(counter);
    if (sg.find_signal(name) < 0) return name;
    ++counter;
  }
}

}  // namespace

int count_csc_conflicts(const StateGraph& sg) {
  return csc_conflicts(sg).pairs;
}

CscAnalysis analyze_csc(const StateGraph& sg) {
  ConflictInfo info = csc_conflicts(sg);
  CscAnalysis out;
  out.conflict_pairs = info.pairs;
  out.involved_states = std::move(info.involved);
  return out;
}

CscResult resolve_csc(const StateGraph& input, const CscOptions& opts) {
  CscResult result;
  result.sg = std::make_shared<StateGraph>(input);
  result.sg->prune_unreachable();

  if (auto r = check_consistency(*result.sg); !r)
    throw Error("resolve_csc: inconsistent SG: " + r.why);
  if (auto r = check_speed_independence(*result.sg); !r)
    throw Error("resolve_csc: not speed-independent: " + r.why);

  int name_counter = 0;
  while (true) {
    StateGraph& sg = *result.sg;
    const ConflictInfo conflicts = csc_conflicts(sg);
    if (conflicts.pairs == 0) {
      result.resolved = true;
      return result;
    }
    if (result.signals_inserted >= opts.max_insertions) {
      result.failure = "insertion limit reached";
      return result;
    }

    // Candidate latches bounded by event pairs: one arc pass collects each
    // event's switching region SR(e) (the states entered by e; empty = the
    // event never occurs), so the candidate loop below never rescans the
    // graph.  The same helper seeds the planner benchmarks and equivalence
    // tests.
    const auto event_id = [](Event e) { return 2 * e.signal + (e.rising ? 1 : 0); };
    const std::vector<DynBitset> region = all_switching_regions(sg);
    std::vector<Event> events;
    for (int sig = 0; sig < sg.num_signals(); ++sig)
      for (bool rising : {true, false})
        if (region[event_id(Event{sig, rising})].any())
          events.push_back(Event{sig, rising});

    // The first max_candidates ordered pairs (e1 != e2), in enumeration
    // order — the same set the previous nested loops examined.
    struct Candidate {
      Event e1, e2;
    };
    std::vector<Candidate> cands;
    cands.reserve(std::min(opts.max_candidates,
                           events.size() * events.size()));
    for (const Event& e1 : events) {
      for (const Event& e2 : events) {
        if (e1 == e2) continue;
        if (cands.size() >= opts.max_candidates) break;
        cands.push_back(Candidate{e1, e2});
      }
      if (cands.size() >= opts.max_candidates) break;
    }

    // Optional pruning: score each pair by how many conflicting state pairs
    // the latch seeds would definitely separate (one state in SR(e1), the
    // partner in SR(e2)) — computable from the cached masks and regions
    // without planning an insertion — and move the best K to the front.  The
    // evaluation loop stops after that prefix once a committable candidate
    // exists, and only falls back to the remainder when none does.
    std::size_t stop_if_best_at = cands.size();
    if (opts.rank_top_k > 0 && cands.size() > opts.rank_top_k) {
      // The conflicting state pairs are candidate-independent; list them
      // once and score every candidate with plain bitset tests.
      std::vector<std::pair<std::size_t, std::size_t>> conflict_pairs;
      for (const auto& cls : conflicts.multi_classes) {
        for (std::size_t i = 0; i < cls.size(); ++i) {
          for (std::size_t j = i + 1; j < cls.size(); ++j) {
            if (conflicts.masks[cls[i]] == conflicts.masks[cls[j]]) continue;
            conflict_pairs.emplace_back(static_cast<std::size_t>(cls[i]),
                                        static_cast<std::size_t>(cls[j]));
          }
        }
      }
      std::vector<long> score(cands.size(), 0);
      for (std::size_t c = 0; c < cands.size(); ++c) {
        const DynBitset& sr1 = region[event_id(cands[c].e1)];
        const DynBitset& sr2 = region[event_id(cands[c].e2)];
        for (const auto& [a, b] : conflict_pairs) {
          if ((sr1.test(a) && sr2.test(b)) || (sr1.test(b) && sr2.test(a)))
            ++score[c];
        }
      }
      std::vector<std::size_t> order(cands.size());
      std::iota(order.begin(), order.end(), std::size_t{0});
      std::stable_sort(order.begin(), order.end(), [&](std::size_t a,
                                                       std::size_t b) {
        return score[a] > score[b];
      });
      std::vector<Candidate> ranked;
      ranked.reserve(cands.size());
      for (const std::size_t idx : order) ranked.push_back(cands[idx]);
      cands = std::move(ranked);
      stop_if_best_at = opts.rank_top_k;
    }

    struct Best {
      StateGraph sg;
      int pairs = 0;
      CscStep step;
    };
    std::optional<Best> best;
    const std::string name = fresh_csc_name(sg, name_counter);
    // Signal kinds of any candidate's post-insertion graph: the old signals
    // (indices preserved by insert_signal) plus the new internal latch.
    std::vector<char> noninput_next = noninput_flags(sg);
    noninput_next.push_back(1);

    // One planner per iteration: every candidate below shares the diamond
    // enumeration, and candidates whose seed regions or propagated latch
    // blocks coincide reuse the grown excitation regions from the memo.
    InsertionPlanner planner(sg);

    for (std::size_t ci = 0; ci < cands.size(); ++ci) {
      if (ci == stop_if_best_at && best) break;
      const Candidate& cand = cands[ci];
      // set/reset seeds: the switching regions of the bounding events.
      const DynBitset& set_states = region[event_id(cand.e1)];
      const DynBitset& reset_states = region[event_id(cand.e2)];

      auto plan =
          opts.reference_planner
              ? plan_state_latch_insertion(sg, set_states, reset_states)
              : planner.plan_state_latch(set_states, reset_states);
      if (!plan) continue;
      // Useless if it does not split any conflicting code class: some
      // involved state must differ in the latch value from a conflicting
      // partner; cheap necessary test: S1 neither contains nor misses all
      // involved states.
      const DynBitset involved_in = conflicts.involved & plan->s1;
      if (involved_in.none() ||
          involved_in.count() == conflicts.involved.count())
        continue;

      InsertionCopies copies;
      StateGraph next = insert_signal(sg, *plan, name, &copies);
      const int pairs_after = conflicts_after_insertion(
          next, copies, conflicts.multi_classes, noninput_next);
      if (pairs_after >= conflicts.pairs) continue;
      const bool beats =
          !best || pairs_after < best->pairs ||
          (pairs_after == best->pairs &&
           next.num_states() < best->sg.num_states());
      if (!beats) continue;
      // Deferred verification: only a candidate about to become the running
      // best pays for the SI/SIP re-check — a rejected candidate cannot
      // influence the chosen insertion either way.
      if (!verify_insertion(sg, next, /*require_csc=*/false)) continue;

      best = Best{std::move(next), pairs_after,
                  CscStep{name, cand.e1, cand.e2, conflicts.pairs,
                          pairs_after}};
      if (best->pairs == 0) break;
    }

    if (!best) {
      result.failure = "no event-bounded latch reduces the CSC conflicts";
      return result;
    }
    result.sg = std::make_shared<StateGraph>(std::move(best->sg));
    result.steps.push_back(best->step);
    ++result.signals_inserted;
    ++name_counter;
  }
}

}  // namespace sitm
