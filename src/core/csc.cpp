#include "core/csc.hpp"

#include <algorithm>

#include "core/insertion.hpp"
#include "sg/properties.hpp"
#include "sg/regions.hpp"
#include "util/error.hpp"
#include "util/flat_map.hpp"

namespace sitm {

namespace {

/// Bitmask of the enabled non-input events of a state: 2 bits per signal,
/// signals 0..31 in `lo`, 32..63 in `hi`.  128 bits cover the full 64-signal
/// range of a StateGraph — the earlier single-word mask aliased signals 32
/// apart and could silently miss conflicts on wide specifications.
struct OutputMask {
  std::uint64_t lo = 0, hi = 0;
  bool operator==(const OutputMask&) const = default;
};

/// One pass over all states caching each state's output-event mask; the
/// conflict scan then compares cached words instead of re-walking adjacency
/// lists per state pair.
std::vector<OutputMask> output_event_masks(const StateGraph& sg) {
  std::vector<char> noninput(sg.num_signals());
  for (int i = 0; i < sg.num_signals(); ++i)
    noninput[i] = is_noninput(sg.signal(i).kind);

  std::vector<OutputMask> masks(sg.num_states());
  for (StateId s = 0; s < static_cast<StateId>(sg.num_states()); ++s) {
    OutputMask m;
    for (const auto& e : sg.succs(s)) {
      if (!noninput[e.event.signal]) continue;
      const std::uint64_t bit =
          std::uint64_t{1}
          << (2 * (e.event.signal & 31) + (e.event.rising ? 1 : 0));
      if (e.event.signal < 32)
        m.lo |= bit;
      else
        m.hi |= bit;
    }
    masks[s] = m;
  }
  return masks;
}

struct ConflictInfo {
  int pairs = 0;
  /// States participating in at least one conflict.
  DynBitset involved;
};

ConflictInfo csc_conflicts(const StateGraph& sg) {
  ConflictInfo info{0, sg.empty_set()};
  const std::vector<OutputMask> masks = output_event_masks(sg);

  // Group states by binary code.  Groups keep discovery (= state id) order,
  // and the pair count / involved set are order-independent anyway.
  FlatMap<std::uint64_t, std::uint32_t> group_of(sg.num_states());
  std::vector<std::vector<StateId>> groups;
  for (StateId s = 0; s < static_cast<StateId>(sg.num_states()); ++s) {
    auto [slot, inserted] = group_of.emplace(
        sg.code(s), static_cast<std::uint32_t>(groups.size()));
    if (inserted) groups.emplace_back();
    groups[*slot].push_back(s);
  }

  for (const auto& states : groups) {
    for (std::size_t i = 0; i < states.size(); ++i) {
      for (std::size_t j = i + 1; j < states.size(); ++j) {
        if (!(masks[states[i]] == masks[states[j]])) {
          ++info.pairs;
          info.involved.set(static_cast<std::size_t>(states[i]));
          info.involved.set(static_cast<std::size_t>(states[j]));
        }
      }
    }
  }
  return info;
}

/// Fresh internal signal name for state encoding.
std::string fresh_csc_name(const StateGraph& sg, int counter) {
  while (true) {
    std::string name = "csc" + std::to_string(counter);
    if (sg.find_signal(name) < 0) return name;
    ++counter;
  }
}

}  // namespace

int count_csc_conflicts(const StateGraph& sg) {
  return csc_conflicts(sg).pairs;
}

CscResult resolve_csc(const StateGraph& input, const CscOptions& opts) {
  CscResult result;
  result.sg = std::make_shared<StateGraph>(input);
  result.sg->prune_unreachable();

  if (auto r = check_consistency(*result.sg); !r)
    throw Error("resolve_csc: inconsistent SG: " + r.why);
  if (auto r = check_speed_independence(*result.sg); !r)
    throw Error("resolve_csc: not speed-independent: " + r.why);

  int name_counter = 0;
  while (true) {
    StateGraph& sg = *result.sg;
    const ConflictInfo conflicts = csc_conflicts(sg);
    if (conflicts.pairs == 0) {
      result.resolved = true;
      return result;
    }
    if (result.signals_inserted >= opts.max_insertions) {
      result.failure = "insertion limit reached";
      return result;
    }

    // Candidate latches bounded by event pairs.  Events whose switching
    // regions touch the conflict states first — they are the natural
    // separators.  One pass over the arcs collects both which events occur
    // and each event's switching region SR(e) (the states entered by e), so
    // the candidate loop below never rescans the graph.
    const auto event_id = [](Event e) { return 2 * e.signal + (e.rising ? 1 : 0); };
    std::vector<char> occurs(2 * sg.num_signals(), 0);
    std::vector<DynBitset> region(2 * sg.num_signals(), sg.empty_set());
    for (StateId s = 0; s < static_cast<StateId>(sg.num_states()); ++s) {
      for (const auto& edge : sg.succs(s)) {
        occurs[event_id(edge.event)] = 1;
        region[event_id(edge.event)].set(edge.target);
      }
    }
    std::vector<Event> events;
    for (int sig = 0; sig < sg.num_signals(); ++sig)
      for (bool rising : {true, false})
        if (occurs[event_id(Event{sig, rising})])
          events.push_back(Event{sig, rising});

    struct Best {
      StateGraph sg;
      int pairs = 0;
      CscStep step;
    };
    std::optional<Best> best;
    std::size_t examined = 0;

    for (const Event& e1 : events) {
      for (const Event& e2 : events) {
        if (e1 == e2) continue;
        if (examined >= opts.max_candidates) break;
        ++examined;

        // set/reset seeds: the switching regions of the bounding events.
        const DynBitset& set_states = region[event_id(e1)];
        const DynBitset& reset_states = region[event_id(e2)];

        auto plan = plan_state_latch_insertion(sg, set_states, reset_states);
        if (!plan) continue;
        // Useless if it does not split any conflicting code class: some
        // involved state must differ in the latch value from a conflicting
        // partner; cheap necessary test: S1 neither contains nor misses all
        // involved states.
        const DynBitset involved_in = conflicts.involved & plan->s1;
        if (involved_in.none() ||
            involved_in.count() == conflicts.involved.count())
          continue;

        const std::string name = fresh_csc_name(sg, name_counter);
        StateGraph next = insert_signal(sg, *plan, name);
        if (!verify_insertion(sg, next, /*require_csc=*/false)) continue;
        const int pairs_after = count_csc_conflicts(next);
        if (pairs_after >= conflicts.pairs) continue;

        Best candidate{std::move(next), pairs_after,
                       CscStep{name, e1, e2, conflicts.pairs, pairs_after}};
        if (!best || candidate.pairs < best->pairs ||
            (candidate.pairs == best->pairs &&
             candidate.sg.num_states() < best->sg.num_states())) {
          best = std::move(candidate);
        }
        if (best && best->pairs == 0) break;
      }
      if ((best && best->pairs == 0) || examined >= opts.max_candidates) break;
    }

    if (!best) {
      result.failure = "no event-bounded latch reduces the CSC conflicts";
      return result;
    }
    result.sg = std::make_shared<StateGraph>(std::move(best->sg));
    result.steps.push_back(best->step);
    ++result.signals_inserted;
    ++name_counter;
  }
}

}  // namespace sitm
