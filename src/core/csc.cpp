#include "core/csc.hpp"

#include <algorithm>
#include <map>

#include "core/insertion.hpp"
#include "sg/properties.hpp"
#include "sg/regions.hpp"
#include "util/error.hpp"

namespace sitm {

namespace {

/// Bitmask of enabled non-input events of a state (2 bits per signal).
std::uint64_t output_event_mask(const StateGraph& sg, StateId s) {
  std::uint64_t mask = 0;
  for (const auto& e : sg.succs(s)) {
    if (is_noninput(sg.signal(e.event.signal).kind))
      mask |= std::uint64_t{1}
              << (2 * (e.event.signal % 32) + (e.event.rising ? 1 : 0));
  }
  return mask;
}

struct ConflictInfo {
  int pairs = 0;
  /// States participating in at least one conflict.
  DynBitset involved;
};

ConflictInfo csc_conflicts(const StateGraph& sg) {
  ConflictInfo info{0, sg.empty_set()};
  std::map<StateCode, std::vector<StateId>> by_code;
  for (StateId s = 0; s < static_cast<StateId>(sg.num_states()); ++s)
    by_code[sg.code(s)].push_back(s);
  for (const auto& [code, states] : by_code) {
    for (std::size_t i = 0; i < states.size(); ++i) {
      for (std::size_t j = i + 1; j < states.size(); ++j) {
        if (output_event_mask(sg, states[i]) !=
            output_event_mask(sg, states[j])) {
          ++info.pairs;
          info.involved.set(static_cast<std::size_t>(states[i]));
          info.involved.set(static_cast<std::size_t>(states[j]));
        }
      }
    }
  }
  return info;
}

/// Fresh internal signal name for state encoding.
std::string fresh_csc_name(const StateGraph& sg, int counter) {
  while (true) {
    std::string name = "csc" + std::to_string(counter);
    if (sg.find_signal(name) < 0) return name;
    ++counter;
  }
}

}  // namespace

int count_csc_conflicts(const StateGraph& sg) {
  return csc_conflicts(sg).pairs;
}

CscResult resolve_csc(const StateGraph& input, const CscOptions& opts) {
  CscResult result;
  result.sg = std::make_shared<StateGraph>(input);
  result.sg->prune_unreachable();

  if (auto r = check_consistency(*result.sg); !r)
    throw Error("resolve_csc: inconsistent SG: " + r.why);
  if (auto r = check_speed_independence(*result.sg); !r)
    throw Error("resolve_csc: not speed-independent: " + r.why);

  int name_counter = 0;
  while (true) {
    StateGraph& sg = *result.sg;
    const ConflictInfo conflicts = csc_conflicts(sg);
    if (conflicts.pairs == 0) {
      result.resolved = true;
      return result;
    }
    if (result.signals_inserted >= opts.max_insertions) {
      result.failure = "insertion limit reached";
      return result;
    }

    // Candidate latches bounded by event pairs.  Events whose switching
    // regions touch the conflict states first — they are the natural
    // separators.
    std::vector<Event> events;
    for (int sig = 0; sig < sg.num_signals(); ++sig)
      for (bool rising : {true, false}) {
        const Event e{sig, rising};
        for (StateId s = 0; s < static_cast<StateId>(sg.num_states()); ++s)
          if (sg.enabled(s, e)) {
            events.push_back(e);
            break;
          }
      }

    struct Best {
      StateGraph sg;
      int pairs = 0;
      CscStep step;
    };
    std::optional<Best> best;
    std::size_t examined = 0;

    for (const Event& e1 : events) {
      for (const Event& e2 : events) {
        if (e1 == e2) continue;
        if (examined >= opts.max_candidates) break;
        ++examined;

        // set/reset seeds: the switching regions of the bounding events.
        DynBitset set_states = sg.empty_set();
        DynBitset reset_states = sg.empty_set();
        for (StateId s = 0; s < static_cast<StateId>(sg.num_states()); ++s) {
          for (const auto& edge : sg.succs(s)) {
            if (edge.event == e1) set_states.set(edge.target);
            if (edge.event == e2) reset_states.set(edge.target);
          }
        }

        auto plan = plan_state_latch_insertion(sg, set_states, reset_states);
        if (!plan) continue;
        // Useless if it does not split any conflicting code class: some
        // involved state must differ in the latch value from a conflicting
        // partner; cheap necessary test: S1 neither contains nor misses all
        // involved states.
        const DynBitset involved_in = conflicts.involved & plan->s1;
        if (involved_in.none() ||
            involved_in.count() == conflicts.involved.count())
          continue;

        const std::string name = fresh_csc_name(sg, name_counter);
        StateGraph next = insert_signal(sg, *plan, name);
        if (!verify_insertion(sg, next, /*require_csc=*/false)) continue;
        const int pairs_after = count_csc_conflicts(next);
        if (pairs_after >= conflicts.pairs) continue;

        Best candidate{std::move(next), pairs_after,
                       CscStep{name, e1, e2, conflicts.pairs, pairs_after}};
        if (!best || candidate.pairs < best->pairs ||
            (candidate.pairs == best->pairs &&
             candidate.sg.num_states() < best->sg.num_states())) {
          best = std::move(candidate);
        }
        if (best && best->pairs == 0) break;
      }
      if ((best && best->pairs == 0) || examined >= opts.max_candidates) break;
    }

    if (!best) {
      result.failure = "no event-bounded latch reduces the CSC conflicts";
      return result;
    }
    result.sg = std::make_shared<StateGraph>(std::move(best->sg));
    result.steps.push_back(best->step);
    ++result.signals_inserted;
    ++name_counter;
  }
}

}  // namespace sitm
