#include "core/csc.hpp"

#include <algorithm>
#include <numeric>
#include <optional>

#include "core/insertion.hpp"
#include "sg/properties.hpp"
#include "sg/regions.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/flat_map.hpp"

namespace sitm {

namespace {

/// Bitmask of the enabled non-input events of a state, in the
/// StateGraph::enabled_mask event-id layout (2 bits per signal, 128 bits
/// cover the full 64-signal range — an earlier single-word mask aliased
/// signals 32 apart and could silently miss conflicts on wide specs).
using OutputMask = std::array<std::uint64_t, 2>;

/// One pass over all states caching each state's output-event mask; the
/// conflict scan then compares cached words instead of re-walking adjacency
/// lists per state pair.  Each mask is one AND of the per-state enabled
/// bitmap against the graph's non-input event mask.
std::vector<OutputMask> output_event_masks(const StateGraph& sg) {
  const OutputMask ni = sg.noninput_event_mask();
  std::vector<OutputMask> masks(sg.num_states());
  for (StateId s = 0; s < static_cast<StateId>(sg.num_states()); ++s) {
    const auto& m = sg.enabled_mask(s);
    masks[s] = OutputMask{m[0] & ni[0], m[1] & ni[1]};
  }
  return masks;
}

struct ConflictInfo {
  int pairs = 0;
  /// States participating in at least one conflict.
  DynBitset involved;
  /// Cached per-state output-event masks (index = StateId).
  std::vector<OutputMask> masks;
  /// Code classes with >= 2 states, in discovery order.  Only these can host
  /// conflicts — before or after a latch insertion (the inserted bit refines
  /// each class into at most two, and singleton classes stay conflict-free).
  std::vector<std::vector<StateId>> multi_classes;
};

ConflictInfo csc_conflicts(const StateGraph& sg) {
  ConflictInfo info{0, sg.empty_set(), output_event_masks(sg), {}};

  // Group states by binary code.  Groups keep discovery (= state id) order,
  // and the pair count / involved set are order-independent anyway.
  FlatMap<std::uint64_t, std::uint32_t> group_of(sg.num_states());
  std::vector<std::vector<StateId>> groups;
  for (StateId s = 0; s < static_cast<StateId>(sg.num_states()); ++s) {
    auto [slot, inserted] = group_of.emplace(
        sg.code(s), static_cast<std::uint32_t>(groups.size()));
    if (inserted) groups.emplace_back();
    groups[*slot].push_back(s);
  }

  for (auto& states : groups) {
    if (states.size() < 2) continue;
    for (std::size_t i = 0; i < states.size(); ++i) {
      for (std::size_t j = i + 1; j < states.size(); ++j) {
        if (!(info.masks[states[i]] == info.masks[states[j]])) {
          ++info.pairs;
          info.involved.set(static_cast<std::size_t>(states[i]));
          info.involved.set(static_cast<std::size_t>(states[j]));
        }
      }
    }
    info.multi_classes.push_back(std::move(states));
  }
  return info;
}

/// Conflict-pair count of the post-insertion graph `next` — equal to
/// count_csc_conflicts(next), but computed class-locally.  A new state's
/// code is its source state's code plus the latch bit, so the only code
/// classes of `next` with >= 2 members are the old multi-state classes
/// refined by latch value; output masks are recomputed for just those
/// states instead of rescanning the whole graph per candidate.
int conflicts_after_insertion(
    const StateGraph& next, const InsertionCopies& copies,
    const std::vector<std::vector<StateId>>& multi_classes,
    const OutputMask& ni_next) {
  std::vector<OutputMask> masks;
  int pairs = 0;
  for (const auto& cls : multi_classes) {
    for (const auto* side : {&copies.x0, &copies.x1}) {
      masks.clear();
      for (StateId s : cls) {
        const StateId t = (*side)[static_cast<std::size_t>(s)];
        if (t == kNoState) continue;
        const auto& m = next.enabled_mask(t);
        masks.push_back(OutputMask{m[0] & ni_next[0], m[1] & ni_next[1]});
      }
      for (std::size_t i = 0; i < masks.size(); ++i)
        for (std::size_t j = i + 1; j < masks.size(); ++j)
          if (!(masks[i] == masks[j])) ++pairs;
    }
  }
  return pairs;
}

/// Same count, computed from the lazy preview instead of a materialized
/// graph: the surviving class members and their output masks are read off
/// the copy product directly.  Sides are visited in the same x0-then-x1
/// order (the count is order-independent, but keep the scans parallel).
int conflicts_after_preview(
    const InsertionPreview& preview,
    const std::vector<std::vector<StateId>>& multi_classes,
    const OutputMask& ni_next) {
  std::vector<OutputMask> masks;
  int pairs = 0;
  for (const auto& cls : multi_classes) {
    for (const bool side : {false, true}) {
      masks.clear();
      for (StateId s : cls) {
        if (!preview.copy_reachable(s, side)) continue;
        const auto m = preview.enabled_mask(s, side);
        masks.push_back(OutputMask{m[0] & ni_next[0], m[1] & ni_next[1]});
      }
      for (std::size_t i = 0; i < masks.size(); ++i)
        for (std::size_t j = i + 1; j < masks.size(); ++j)
          if (!(masks[i] == masks[j])) ++pairs;
    }
  }
  return pairs;
}

/// Fresh internal signal name for state encoding.
std::string fresh_csc_name(const StateGraph& sg, int counter) {
  while (true) {
    std::string name = "csc" + std::to_string(counter);
    if (sg.find_signal(name) < 0) return name;
    ++counter;
  }
}

}  // namespace

int count_csc_conflicts(const StateGraph& sg) {
  return csc_conflicts(sg).pairs;
}

CscAnalysis analyze_csc(const StateGraph& sg) {
  ConflictInfo info = csc_conflicts(sg);
  CscAnalysis out;
  out.conflict_pairs = info.pairs;
  out.involved_states = std::move(info.involved);
  return out;
}

CscResult resolve_csc(const StateGraph& input, const CscOptions& opts,
                      const RunGuard* guard) {
  CscResult result;
  result.sg = std::make_shared<StateGraph>(input);
  result.sg->prune_unreachable();

  if (auto r = check_consistency(*result.sg); !r)
    throw Error("resolve_csc: inconsistent SG: " + r.why);
  if (auto r = check_speed_independence(*result.sg); !r)
    throw Error("resolve_csc: not speed-independent: " + r.why);

  int name_counter = 0;
  while (true) {
    StateGraph& sg = *result.sg;
    const ConflictInfo conflicts = csc_conflicts(sg);
    if (conflicts.pairs == 0) {
      result.resolved = true;
      return result;
    }
    if (result.signals_inserted >= opts.max_insertions) {
      result.failure = "insertion limit reached";
      return result;
    }
    // Exhaustion exactly between iterations: report the remaining conflicts
    // instead of starting a scan whose first poll would throw.
    if (guard) {
      if (const GuardStop s = guard->status(); s != GuardStop::kNone) {
        result.stopped = s;
        result.failure = std::string("CSC search stopped (") +
                         guard_stop_name(s) + "): " +
                         std::to_string(conflicts.pairs) +
                         " conflict pair(s) remain";
        return result;
      }
    }

    // Candidate latches bounded by event pairs: one arc pass collects each
    // event's switching region SR(e) (the states entered by e; empty = the
    // event never occurs), so the candidate loop below never rescans the
    // graph.  The same helper seeds the planner benchmarks and equivalence
    // tests.
    const auto event_id = [](Event e) { return 2 * e.signal + (e.rising ? 1 : 0); };
    const std::vector<DynBitset> region = all_switching_regions(sg);
    std::vector<Event> events;
    for (int sig = 0; sig < sg.num_signals(); ++sig)
      for (bool rising : {true, false})
        if (region[event_id(Event{sig, rising})].any())
          events.push_back(Event{sig, rising});

    // The first max_candidates ordered pairs (e1 != e2), in enumeration
    // order — the same set the previous nested loops examined.
    struct Candidate {
      Event e1, e2;
    };
    std::vector<Candidate> cands;
    cands.reserve(std::min(opts.max_candidates,
                           events.size() * events.size()));
    for (const Event& e1 : events) {
      for (const Event& e2 : events) {
        if (e1 == e2) continue;
        if (cands.size() >= opts.max_candidates) break;
        cands.push_back(Candidate{e1, e2});
      }
      if (cands.size() >= opts.max_candidates) break;
    }

    // Optional pruning: score each pair by how many conflicting state pairs
    // the latch seeds would definitely separate (one state in SR(e1), the
    // partner in SR(e2)) — computable from the cached masks and regions
    // without planning an insertion — and move the best K to the front.  The
    // evaluation loop stops after that prefix once a committable candidate
    // exists, and only falls back to the remainder when none does.
    std::size_t stop_if_best_at = cands.size();
    if (opts.rank_top_k > 0 && cands.size() > opts.rank_top_k) {
      // The conflicting state pairs are candidate-independent; list them
      // once and score every candidate with plain bitset tests.
      std::vector<std::pair<std::size_t, std::size_t>> conflict_pairs;
      for (const auto& cls : conflicts.multi_classes) {
        for (std::size_t i = 0; i < cls.size(); ++i) {
          for (std::size_t j = i + 1; j < cls.size(); ++j) {
            if (conflicts.masks[cls[i]] == conflicts.masks[cls[j]]) continue;
            conflict_pairs.emplace_back(static_cast<std::size_t>(cls[i]),
                                        static_cast<std::size_t>(cls[j]));
          }
        }
      }
      std::vector<long> score(cands.size(), 0);
      for (std::size_t c = 0; c < cands.size(); ++c) {
        const DynBitset& sr1 = region[event_id(cands[c].e1)];
        const DynBitset& sr2 = region[event_id(cands[c].e2)];
        for (const auto& [a, b] : conflict_pairs) {
          if ((sr1.test(a) && sr2.test(b)) || (sr1.test(b) && sr2.test(a)))
            ++score[c];
        }
      }
      std::vector<std::size_t> order(cands.size());
      std::iota(order.begin(), order.end(), std::size_t{0});
      std::stable_sort(order.begin(), order.end(), [&](std::size_t a,
                                                       std::size_t b) {
        return score[a] > score[b];
      });
      std::vector<Candidate> ranked;
      ranked.reserve(cands.size());
      for (const std::size_t idx : order) ranked.push_back(cands[idx]);
      cands = std::move(ranked);
      stop_if_best_at = opts.rank_top_k;
    }

    struct Best {
      StateGraph sg;
      int pairs = 0;
      CscStep step;
    };
    std::optional<Best> best;
    const std::string name = fresh_csc_name(sg, name_counter);
    // Non-input event mask of any candidate's post-insertion graph: the old
    // signals (indices preserved by insert_signal) plus the new internal
    // latch at signal index num_signals().
    OutputMask ni_next = sg.noninput_event_mask();
    if (sg.num_signals() < 64) {
      const int id = 2 * sg.num_signals();
      ni_next[id >> 6] |= std::uint64_t{3} << (id & 63);
    }

    // One planner per iteration: every candidate below shares the diamond
    // enumeration, and candidates whose seed regions or propagated latch
    // blocks coincide reuse the grown excitation regions from the memo.
    InsertionPlanner planner(sg);

    // Guard exhaustion mid-scan (also the fault harness's simulated hits):
    // the scan stops, but a committable candidate already scored in this
    // iteration is still committed — the degradation path that turns a
    // budget/deadline trip into a valid-but-suboptimal insertion instead of
    // a failure.
    bool exhausted = false;

    if (!opts.reference_planner && sg.num_signals() < 64) {
      // Lazy engine: score every candidate from its plan's copy structure
      // (InsertionPreview) and defer both graph construction and
      // verification to the scan's tentative winner.  The committed result
      // is bit-identical to the eager engine below, which commits the
      // earliest candidate minimizing (pairs_after, states) among the
      // filter- and verify-passing ones, subject to its two truncations:
      // the scan stops once a passing candidate reaches zero pairs, and at
      // the ranked-prefix boundary once any passing candidate exists.  The
      // scan reproduces those truncations assuming unverified candidates
      // pass; a tentative winner failing verification is marked rejected
      // and the scan resumes — so only verification attempts (in the common
      // case exactly one per iteration) materialize a graph.
      struct Scored {
        std::size_t ci;  ///< index into cands
        InsertionPlan plan;
        int pairs;
        std::size_t states;
        bool rejected = false;  ///< failed the deferred verification
      };
      std::vector<Scored> scored;
      std::optional<std::size_t> best_at;  // tentative winner in `scored`
      const auto better = [](const Scored& a, const Scored& b) {
        return a.pairs < b.pairs || (a.pairs == b.pairs && a.states < b.states);
      };
      std::size_t pos = 0;  // next candidate to score
      const auto scan = [&] {
        while (pos < cands.size()) {
          if (pos == stop_if_best_at && best_at) return;
          const std::size_t ci = pos++;
          auto plan = planner.plan_state_latch(region[event_id(cands[ci].e1)],
                                               region[event_id(cands[ci].e2)]);
          if (!plan) continue;
          // Useless if it does not split any conflicting code class: some
          // involved state must differ in the latch value from a conflicting
          // partner; cheap necessary test: S1 neither contains nor misses
          // all involved states.
          const DynBitset involved_in = conflicts.involved & plan->s1;
          if (involved_in.none() ||
              involved_in.count() == conflicts.involved.count())
            continue;
          ++result.candidates_scored;
          fault::hit("csc.candidate");
          guard_charge(guard, 1, "csc.candidate");
          const InsertionPreview preview(sg, *plan);
          const int pairs_after = conflicts_after_preview(
              preview, conflicts.multi_classes, ni_next);
          if (pairs_after >= conflicts.pairs) continue;
          scored.push_back(Scored{ci, std::move(*plan), pairs_after,
                                  preview.num_states()});
          if (!best_at || better(scored.back(), scored[*best_at]))
            best_at = scored.size() - 1;
          if (scored.back().pairs == 0) return;  // best_at is this candidate
        }
      };
      const InsertionVerifier verifier(sg);
      while (true) {
        if (!exhausted) {
          try {
            scan();
          } catch (const GuardExhausted& e) {
            exhausted = true;
            result.stopped = e.kind();
          }
        }
        if (!best_at) break;
        Scored& w = scored[*best_at];
        StateGraph next = insert_signal(sg, w.plan, name);
        ++result.graphs_materialized;
        const DynBitset disturbed = disturbed_signals(sg, w.plan);
        if (verifier.verify(next, /*require_csc=*/false, &disturbed)) {
          best = Best{std::move(next), w.pairs,
                      CscStep{name, cands[w.ci].e1, cands[w.ci].e2,
                              conflicts.pairs, w.pairs}};
          break;
        }
        w.rejected = true;
        // Recompute the tentative winner (earliest minimal key among the
        // surviving scored candidates) and resume the scan: the rejection
        // may re-open a truncated tail.
        best_at.reset();
        for (std::size_t i = 0; i < scored.size(); ++i)
          if (!scored[i].rejected &&
              (!best_at || better(scored[i], scored[*best_at])))
            best_at = i;
      }
    } else {
      // Eager reference engine: plan, materialize and score every surviving
      // candidate (also the fallback for 64-signal graphs, where the lazy
      // mask layout has no room for the new signal's events).
      try {
      for (std::size_t ci = 0; ci < cands.size(); ++ci) {
        if (ci == stop_if_best_at && best) break;
        const Candidate& cand = cands[ci];
        // set/reset seeds: the switching regions of the bounding events.
        const DynBitset& set_states = region[event_id(cand.e1)];
        const DynBitset& reset_states = region[event_id(cand.e2)];

        auto plan =
            opts.reference_planner
                ? plan_state_latch_insertion(sg, set_states, reset_states)
                : planner.plan_state_latch(set_states, reset_states);
        if (!plan) continue;
        const DynBitset involved_in = conflicts.involved & plan->s1;
        if (involved_in.none() ||
            involved_in.count() == conflicts.involved.count())
          continue;

        ++result.candidates_scored;
        fault::hit("csc.candidate");
        guard_charge(guard, 1, "csc.candidate");
        InsertionCopies copies;
        StateGraph next = insert_signal(sg, *plan, name, &copies);
        ++result.graphs_materialized;
        const int pairs_after = conflicts_after_insertion(
            next, copies, conflicts.multi_classes, ni_next);
        if (pairs_after >= conflicts.pairs) continue;
        const bool beats =
            !best || pairs_after < best->pairs ||
            (pairs_after == best->pairs &&
             next.num_states() < best->sg.num_states());
        if (!beats) continue;
        // Deferred verification: only a candidate about to become the
        // running best pays for the SI/SIP re-check — a rejected candidate
        // cannot influence the chosen insertion either way.
        if (!verify_insertion(sg, next, /*require_csc=*/false)) continue;

        best = Best{std::move(next), pairs_after,
                    CscStep{name, cand.e1, cand.e2, conflicts.pairs,
                            pairs_after}};
        if (best->pairs == 0) break;
      }
      } catch (const GuardExhausted& e) {
        exhausted = true;
        result.stopped = e.kind();
      }
    }

    if (!best) {
      result.failure =
          exhausted ? std::string("CSC search stopped (") +
                          guard_stop_name(result.stopped) +
                          ") before any committable candidate was scored"
                    : "no event-bounded latch reduces the CSC conflicts";
      return result;
    }
    result.sg = std::make_shared<StateGraph>(std::move(best->sg));
    result.steps.push_back(best->step);
    ++result.signals_inserted;
    ++name_counter;
    if (exhausted) {
      // Best-so-far committed under exhaustion: stop searching and report
      // the final status of the committed graph.
      result.degraded = true;
      const int remaining = count_csc_conflicts(*result.sg);
      if (remaining == 0) {
        result.resolved = true;
      } else {
        result.failure = std::string("CSC search stopped (") +
                         guard_stop_name(result.stopped) + ") after " +
                         std::to_string(result.signals_inserted) +
                         " insertion(s): " + std::to_string(remaining) +
                         " conflict pair(s) remain";
      }
      return result;
    }
  }
}

}  // namespace sitm
