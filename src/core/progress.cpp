#include "core/progress.hpp"

#include <algorithm>

namespace sitm {

namespace {

/// Extended quiescent region QR(a*)' (paper Section 3.3): the union of the
/// QRs of the event, extended with the excitation regions of the subsequent
/// transitions of the same signal (entered directly from a QR state) — the
/// states where a falling x may become a trigger of those transitions.
DynBitset extended_qr(const StateGraph& sg, const EventCover& target) {
  DynBitset qr = union_qr(sg, target.regions);
  const auto opp_regions =
      excitation_regions(sg, opposite(target.event));
  for (const auto& region : opp_regions) {
    bool entered_from_qr = false;
    region.er.for_each([&](std::size_t s) {
      if (entered_from_qr) return;
      for (const auto& p : sg.preds(static_cast<StateId>(s)))
        if (qr.test(p.target)) {
          entered_from_qr = true;
          return;
        }
    });
    if (entered_from_qr) qr |= region.er;
  }
  return qr;
}

}  // namespace

bool property_3_1(const StateGraph& sg, const EventCover& target,
                  const Cover& g, const Cover& r, const InsertionPlan& plan) {
  const DynBitset er = union_er(sg, target.regions);
  const DynBitset qr_ext = extended_qr(sg, target);
  const DynBitset inside = er | qr_ext;
  const DynBitset reachable = sg.reachable();

  auto fg_only = [&](StateId s) {
    const StateCode code = sg.code(s);
    return plan.f.eval(code) && g.eval(code) && !r.eval(code);
  };

  // Condition 1: states of ER(a*) covered only by f*g must have x settled
  // at 1 already — a pending x+ would leave them uncovered by x*g + r.
  bool ok = true;
  er.for_each([&](std::size_t s) {
    if (!ok) return;
    const auto id = static_cast<StateId>(s);
    if (fg_only(id) && plan.er_rise.test(s)) ok = false;
  });
  if (!ok) return false;

  // Condition 2: outside ER(a*) u QR(a*)' the cube x*g must stay 0 — no
  // state there may carry a pending x- while g evaluates to 1.
  reachable.for_each([&](std::size_t s) {
    if (!ok) return;
    if (inside.test(s)) return;
    if (plan.er_fall.test(s) && g.eval(sg.code(static_cast<StateId>(s))))
      ok = false;
  });
  if (!ok) return false;

  // Condition 3 (monotonicity of x*g inside QR'):
  //  (a) quiescent states covered only by f*g must not hold a pending x+;
  qr_ext.for_each([&](std::size_t s) {
    if (!ok) return;
    if (fg_only(static_cast<StateId>(s)) && plan.er_rise.test(s)) ok = false;
  });
  if (!ok) return false;

  //  (b) when x falls inside QR' while g holds, the cover must still have
  //      been 1 in every predecessor inside ER u QR' (the fall of x*g is
  //      then the single monotonous change).
  qr_ext.for_each([&](std::size_t s) {
    if (!ok) return;
    const auto id = static_cast<StateId>(s);
    if (!plan.er_fall.test(s) || !g.eval(sg.code(id))) return;
    for (const auto& p : sg.preds(id)) {
      if (!inside.test(p.target)) continue;
      if (!target.cover.eval(sg.code(p.target))) {
        ok = false;
        return;
      }
    }
  });
  return ok;
}

bool property_3_2(const StateGraph& sg, const EventCover& other,
                  const InsertionPlan& plan, bool rising_trigger) {
  const DynBitset& trigger_er = rising_trigger ? plan.er_rise : plan.er_fall;
  const DynBitset& opposite_er = rising_trigger ? plan.er_fall : plan.er_rise;

  // Condition 2: ER(x_trigger) disjoint from SR(b*).
  for (const auto& region : other.regions)
    if (!trigger_er.disjoint(region.sr)) return false;

  // Condition 3: c(b*) evaluates to 0 on the opposite excitation region.
  bool ok = true;
  opposite_er.for_each([&](std::size_t s) {
    if (ok && other.cover.eval(sg.code(static_cast<StateId>(s)))) ok = false;
  });
  return ok;
}

namespace {

/// Does transition `side` of x become a new trigger for `other` under the
/// plan?  True iff some state of ER(x_side) has `other` enabled with a
/// successor outside ER(x_side): the pre-copy then loses the arc and the
/// event is re-enabled only by x firing.
bool becomes_trigger(const StateGraph& sg, const EventCover& other,
                     const DynBitset& er_side) {
  bool trigger = false;
  for (const auto& region : other.regions) {
    region.er.for_each([&](std::size_t s) {
      if (trigger || !er_side.test(s)) return;
      const StateId t = sg.successor(static_cast<StateId>(s), other.event);
      if (t != kNoState && !er_side.test(t)) trigger = true;
    });
    if (trigger) break;
  }
  return trigger;
}

}  // namespace

ProgressEstimate estimate_progress(
    const StateGraph& sg, const std::vector<SignalSynthesis>& syntheses,
    const EventCover& target, const Cover& g, const Cover& r,
    const InsertionPlan& plan) {
  ProgressEstimate out;
  out.target_ok = property_3_1(sg, target, g, r, plan);

  // Expected gain on the target: c = f*g + r becomes x*g + r.
  const int before = target.cover.num_literals();
  const int after = g.num_literals() + static_cast<int>(g.size()) +
                    r.num_literals();
  out.estimated_delta = after - before;

  out.others_ok = true;
  for (const auto& synth : syntheses) {
    const EventCover* covers[2] = {&synth.set, &synth.reset};
    for (const EventCover* other : covers) {
      if (synth.combinational && other == &synth.reset) continue;
      if (other->event == target.event) continue;
      for (bool rising : {true, false}) {
        const DynBitset& er_side = rising ? plan.er_rise : plan.er_fall;
        if (!becomes_trigger(sg, *other, er_side)) continue;
        ++out.new_triggers;
        if (property_3_2(sg, *other, plan, rising)) {
          out.estimated_delta += 1;  // one extra literal on that cover
        } else {
          out.others_ok = false;
        }
      }
    }
  }
  return out;
}

}  // namespace sitm
