#pragma once
// Progress analysis (paper Sections 3.3 / 3.4).
//
// Before paying for a full resynthesis, candidate divisors are scored on
// the ORIGINAL State Graph (no reconstruction), exactly as the paper
// advocates.  The estimates rank candidates so the expensive resynthesis is
// spent on the most promising ones first:
//
//  * Property 3.1 — the target cover c(a*) = f*g + r can be safely rewritten
//    as x*g + r with the new signal x substituted for f: four state-set
//    conditions relating ER(x+)/ER(x-) to ER(a*) and the extended quiescent
//    region QR(a*)'.
//
//  * Property 3.2 — for every other event b* that acquires x as a new
//    trigger, the cover of b* grows by at most one literal when
//    ER(x_trigger) is disjoint from SR(b*) and c(b*) is disjoint from the
//    opposite excitation region of x.  Divisors violating this for some
//    event are deprioritized (they may blow up other covers); counting the
//    new triggers also implements the local-acknowledgement ablation.

#include <vector>

#include "boolf/cover.hpp"
#include "core/insertion.hpp"
#include "core/mc_cover.hpp"
#include "sg/state_graph.hpp"

namespace sitm {

struct ProgressEstimate {
  bool target_ok = false;    ///< Property 3.1 satisfied
  bool others_ok = false;    ///< Property 3.2 satisfied for all other events
  int estimated_delta = 0;   ///< literal-count change estimate (negative=good)
  int new_triggers = 0;      ///< events for which x becomes a new trigger

  bool acceptable() const { return target_ok && others_ok; }
};

/// Check Property 3.1 for the decomposition c(a*) = f*g + r of `target`.
bool property_3_1(const StateGraph& sg, const EventCover& target,
                  const Cover& g, const Cover& r, const InsertionPlan& plan);

/// Check Property 3.2 for event cover `other` against the insertion plan.
/// `rising_trigger` selects which transition of x becomes the trigger.
bool property_3_2(const StateGraph& sg, const EventCover& other,
                  const InsertionPlan& plan, bool rising_trigger);

/// Combined estimate over the full synthesis state.  `syntheses` holds the
/// current covers of every non-input signal; `target` identifies the cover
/// being decomposed; `g`/`r` are quotient and remainder of the division by
/// plan.f.
ProgressEstimate estimate_progress(const StateGraph& sg,
                                   const std::vector<SignalSynthesis>& syntheses,
                                   const EventCover& target, const Cover& g,
                                   const Cover& r, const InsertionPlan& plan);

}  // namespace sitm
