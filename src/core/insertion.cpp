#include "core/insertion.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/text.hpp"

namespace sitm {

namespace {

/// Grow one excitation region of the new signal inside `block` starting from
/// the input border `seed`, per steps 2-4 of the paper's procedure.
/// Returns false (with a reason) when forced outside the block.
bool grow_region(const StateGraph& sg, const DynBitset& block,
                 const std::vector<Diamond>& diamonds, DynBitset* er,
                 std::string* why) {
  bool changed = true;
  while (changed) {
    changed = false;

    // Step 2 — well-formedness: predecessors of ER states inside the block
    // belong to the ER (no event may lead from block\ER into the ER).
    // Iterate to the fixpoint with a worklist over current ER states.
    std::vector<StateId> work = [&] {
      std::vector<StateId> w;
      er->for_each([&](std::size_t s) { w.push_back(static_cast<StateId>(s)); });
      return w;
    }();
    while (!work.empty()) {
      const StateId v = work.back();
      work.pop_back();
      for (const auto& p : sg.preds(v)) {
        const StateId u = p.target;
        if (block.test(u) && !er->test(u)) {
          er->set(u);
          work.push_back(u);
          changed = true;
        }
      }
    }

    // Step 4 — interface preservation: an input event enabled in an ER state
    // must not be delayed by the insertion, so its successor joins the ER.
    er->for_each([&](std::size_t s) {
      for (const auto& edge : sg.succs(static_cast<StateId>(s))) {
        if (sg.signal(edge.event.signal).kind != SignalKind::kInput) continue;
        if (er->test(edge.target)) continue;
        if (!block.test(edge.target)) {
          if (why)
            *why = strfmt("input event %s would leave the insertion block",
                          sg.event_string(edge.event).c_str());
          changed = false;  // fatal
          er->set(edge.target);  // poison marker; caller sees failure
        } else {
          er->set(edge.target);
          changed = true;
        }
      }
    });
    // Detect the poison marker (any ER state outside the block).
    if (!er->subset_of(block)) return false;

    // Step 3 — SIP: close illegal diamond intersections.  If both middle
    // corners of a diamond lie in the ER but the top does not, two
    // concurrent events enter the ER in either order and their join must
    // still carry the pending transition — otherwise the second event is
    // disabled in the pre-copy of the first (a persistency violation).
    for (const auto& d : diamonds) {
      if (er->test(d.left) && er->test(d.right) && !er->test(d.top)) {
        if (!block.test(d.top)) {
          if (why)
            *why = strfmt("diamond closure forced out of block at state %s",
                          sg.code_string(d.top).c_str());
          return false;
        }
        er->set(d.top);
        changed = true;
      }
    }
  }
  return true;
}

}  // namespace

namespace {

/// Finish a plan given its S1 block: compute input borders, grow the
/// excitation regions, and validate the partition.
std::optional<InsertionPlan> finish_plan(const StateGraph& sg,
                                         InsertionPlan plan,
                                         InsertionFailure* failure) {
  auto fail = [&](std::string why) -> std::optional<InsertionPlan> {
    if (failure) failure->why = std::move(why);
    return std::nullopt;
  };
  const DynBitset s0 = ~plan.s1;

  // Input borders: states where f changes value along an arc.
  plan.er_rise = sg.empty_set();
  plan.er_fall = sg.empty_set();
  for (StateId s = 0; s < static_cast<StateId>(sg.num_states()); ++s) {
    for (const auto& edge : sg.succs(s)) {
      if (!plan.s1.test(s) && plan.s1.test(edge.target))
        plan.er_rise.set(edge.target);
      if (plan.s1.test(s) && !plan.s1.test(edge.target))
        plan.er_fall.set(edge.target);
    }
  }
  if (plan.er_rise.none() && plan.er_fall.none())
    return fail("divisor function never changes value");

  const auto diamonds = enumerate_diamonds(sg);
  std::string why;
  if (!grow_region(sg, plan.s1, diamonds, &plan.er_rise, &why))
    return fail("ER(x+): " + why);
  if (!grow_region(sg, s0, diamonds, &plan.er_fall, &why))
    return fail("ER(x-): " + why);

  // A state cannot host both a pending rise and a pending fall.
  if (!plan.er_rise.disjoint(plan.er_fall))
    return fail("ER(x+) and ER(x-) overlap");

  // Cross-region hazard: a diamond with one middle corner inside ER(x+)
  // whose top lands in ER(x-) means a concurrent event makes f fall while
  // x+ is still pending — the pending transition would have to be
  // cancelled, which Muller semantics forbids.  (Symmetrically for x-.)
  for (const auto& dia : diamonds) {
    const bool mid_rise =
        plan.er_rise.test(dia.left) || plan.er_rise.test(dia.right);
    const bool mid_fall =
        plan.er_fall.test(dia.left) || plan.er_fall.test(dia.right);
    if (mid_rise && plan.er_fall.test(dia.top))
      return fail("concurrent event cancels pending x+ (diamond into ER(x-))");
    if (mid_fall && plan.er_rise.test(dia.top))
      return fail("concurrent event cancels pending x- (diamond into ER(x+))");
  }

  const StateId init = sg.initial();
  plan.initial_value = plan.s1.test(init) && !plan.er_rise.test(init);
  if (plan.er_fall.test(init)) plan.initial_value = true;
  return plan;
}

}  // namespace

std::optional<InsertionPlan> plan_insertion(const StateGraph& sg,
                                            const Cover& f,
                                            InsertionFailure* failure) {
  InsertionPlan plan;
  plan.f = f;
  plan.f_reset = Cover(f.num_vars());
  plan.s1 = sg.empty_set();
  for (StateId s = 0; s < static_cast<StateId>(sg.num_states()); ++s)
    if (f.eval(sg.code(s))) plan.s1.set(s);
  return finish_plan(sg, std::move(plan), failure);
}

std::optional<InsertionPlan> plan_latch_insertion(const StateGraph& sg,
                                                  const Cover& f_set,
                                                  const Cover& f_reset,
                                                  InsertionFailure* failure) {
  auto fail = [&](std::string why) -> std::optional<InsertionPlan> {
    if (failure) failure->why = std::move(why);
    return std::nullopt;
  };

  InsertionPlan plan;
  plan.f = f_set;
  plan.f_reset = f_reset;
  plan.latch = true;
  plan.s1 = sg.empty_set();

  // Propagate SR-latch semantics over the reachable graph: value 1 where
  // f_set holds, 0 where f_reset holds, inherited from predecessors
  // elsewhere.  Any conflict means the latch value is not well-defined.
  const auto n = static_cast<StateId>(sg.num_states());
  std::vector<signed char> value(static_cast<std::size_t>(n), -1);
  const StateId init = sg.initial();
  auto forced = [&](StateId s) -> int {
    const StateCode code = sg.code(s);
    const bool set = f_set.eval(code);
    const bool reset = f_reset.eval(code);
    if (set && reset) return -2;  // conflict
    if (set) return 1;
    if (reset) return 0;
    return -1;
  };
  {
    const int fv = forced(init);
    if (fv == -2) return fail("latch set and reset overlap in initial state");
    if (fv == -1) return fail("latch value undefined in initial state");
    value[static_cast<std::size_t>(init)] = static_cast<signed char>(fv);
  }
  std::vector<StateId> queue{init};
  while (!queue.empty()) {
    const StateId u = queue.back();
    queue.pop_back();
    for (const auto& edge : sg.succs(u)) {
      const StateId v = edge.target;
      int fv = forced(v);
      if (fv == -2) return fail("latch set and reset overlap");
      if (fv == -1) fv = value[static_cast<std::size_t>(u)];
      if (value[static_cast<std::size_t>(v)] == -1) {
        value[static_cast<std::size_t>(v)] = static_cast<signed char>(fv);
        queue.push_back(v);
      } else if (value[static_cast<std::size_t>(v)] != fv) {
        return fail("latch value ambiguous (path-dependent)");
      }
    }
  }
  for (StateId s = 0; s < n; ++s)
    if (value[static_cast<std::size_t>(s)] == 1) plan.s1.set(s);
  return finish_plan(sg, std::move(plan), failure);
}

std::optional<InsertionPlan> plan_state_latch_insertion(
    const StateGraph& sg, const DynBitset& set_states,
    const DynBitset& reset_states, InsertionFailure* failure) {
  auto fail = [&](std::string why) -> std::optional<InsertionPlan> {
    if (failure) failure->why = std::move(why);
    return std::nullopt;
  };
  if (!set_states.disjoint(reset_states))
    return fail("latch set and reset state sets overlap");

  InsertionPlan plan;
  plan.f = Cover(sg.num_signals());
  plan.f_reset = Cover(sg.num_signals());
  plan.latch = true;
  plan.s1 = sg.empty_set();

  const auto n = static_cast<StateId>(sg.num_states());
  std::vector<signed char> value(static_cast<std::size_t>(n), -1);
  const StateId init = sg.initial();
  auto forced = [&](StateId s) -> int {
    if (set_states.test(static_cast<std::size_t>(s))) return 1;
    if (reset_states.test(static_cast<std::size_t>(s))) return 0;
    return -1;
  };
  {
    // The initial value may be undetermined; propagating forward from the
    // forced states fixes it when the cycle structure does (otherwise the
    // backward pass below resolves or rejects).
    int fv = forced(init);
    if (fv == -1) fv = 0;  // provisional; re-checked by the consistency pass
    value[static_cast<std::size_t>(init)] = static_cast<signed char>(fv);
  }
  std::vector<StateId> queue{init};
  while (!queue.empty()) {
    const StateId u = queue.back();
    queue.pop_back();
    for (const auto& edge : sg.succs(u)) {
      const StateId v = edge.target;
      int fv = forced(v);
      if (fv == -1) fv = value[static_cast<std::size_t>(u)];
      if (value[static_cast<std::size_t>(v)] == -1) {
        value[static_cast<std::size_t>(v)] = static_cast<signed char>(fv);
        queue.push_back(v);
      } else if (value[static_cast<std::size_t>(v)] != fv) {
        return fail("latch value ambiguous (path-dependent)");
      }
    }
  }
  for (StateId s = 0; s < n; ++s)
    if (value[static_cast<std::size_t>(s)] == 1) plan.s1.set(s);
  return finish_plan(sg, std::move(plan), failure);
}

StateGraph insert_signal(const StateGraph& sg, const InsertionPlan& plan,
                         const std::string& name, InsertionCopies* copies) {
  StateGraph out;
  for (const auto& sig : sg.signals()) out.add_signal(sig.name, sig.kind);
  const int x = out.add_signal(name, SignalKind::kInternal);

  // State copies: pre/post for states in the insertion regions, a single
  // copy elsewhere.  pre_id/post_id hold new state ids per old state; for
  // unsplit states both ids coincide.
  const auto n = static_cast<StateId>(sg.num_states());
  std::vector<StateId> id_x0(n, kNoState), id_x1(n, kNoState);

  auto x_bit = [&](bool v) { return v ? (StateCode{1} << x) : StateCode{0}; };

  for (StateId s = 0; s < n; ++s) {
    const StateCode base = sg.code(s);
    if (plan.er_rise.test(s) || plan.er_fall.test(s)) {
      id_x0[s] = out.add_state(base | x_bit(false));
      id_x1[s] = out.add_state(base | x_bit(true));
    } else if (plan.s1.test(s)) {
      id_x1[s] = out.add_state(base | x_bit(true));
    } else {
      id_x0[s] = out.add_state(base | x_bit(false));
    }
  }

  // Transitions of the new signal.
  plan.er_rise.for_each([&](std::size_t s) {
    out.add_arc(id_x0[s], Event{x, true}, id_x1[s]);
  });
  plan.er_fall.for_each([&](std::size_t s) {
    out.add_arc(id_x1[s], Event{x, false}, id_x0[s]);
  });

  // Original arcs: connect x-consistent copies.  Crossings between the two
  // excitation regions must not skip the pending x transitions: on a
  // ER(x+) -> ER(x-) arc only the (post,pre) = (x=1,x=1) copy survives, and
  // symmetrically for ER(x-) -> ER(x+).
  for (StateId u = 0; u < n; ++u) {
    for (const auto& edge : sg.succs(u)) {
      const StateId v = edge.target;
      const bool skip_00 = plan.er_rise.test(u) && plan.er_fall.test(v);
      const bool skip_11 = plan.er_fall.test(u) && plan.er_rise.test(v);
      if (id_x0[u] != kNoState && id_x0[v] != kNoState && !skip_00)
        out.add_arc(id_x0[u], edge.event, id_x0[v]);
      if (id_x1[u] != kNoState && id_x1[v] != kNoState && !skip_11)
        out.add_arc(id_x1[u], edge.event, id_x1[v]);
    }
  }

  const StateId init = sg.initial();
  out.set_initial(plan.initial_value ? id_x1[init] : id_x0[init]);
  std::vector<StateId> remap;
  out.prune_unreachable(copies ? &remap : nullptr);
  if (copies) {
    auto through = [&](std::vector<StateId> ids) {
      for (auto& id : ids)
        if (id != kNoState) id = remap[id];
      return ids;
    };
    copies->x0 = through(std::move(id_x0));
    copies->x1 = through(std::move(id_x1));
  }
  return out;
}

PropertyResult verify_insertion(const StateGraph& before,
                                const StateGraph& after, bool require_csc) {
  if (auto r = check_consistency(after); !r) return r;
  if (auto r = check_speed_independence(after); !r) return r;
  if (require_csc) {
    if (auto r = check_csc(after); !r) return r;
  }

  // SIP: every signal whose events were persistent before must stay
  // persistent (inputs included; outputs are covered by the SI check).
  for (int sig = 0; sig < before.num_signals(); ++sig) {
    if (check_persistency(before, {sig})) {
      if (auto r = check_persistency(after, {sig}); !r)
        return PropertyResult::fail("SIP violated: " + r.why);
    }
  }
  return PropertyResult::pass();
}

}  // namespace sitm
