#include "core/insertion.hpp"

#include <algorithm>
#include <utility>

#include "util/error.hpp"
#include "util/text.hpp"

namespace sitm {

namespace {

/// Grow one excitation region of the new signal inside `block` starting from
/// the input border `seed`, per steps 2-4 of the paper's procedure.
/// Returns false (with a reason) when forced outside the block.
bool grow_region(const StateGraph& sg, const DynBitset& block,
                 const std::vector<Diamond>& diamonds, DynBitset* er,
                 std::string* why) {
  bool changed = true;
  while (changed) {
    changed = false;

    // Step 2 — well-formedness: predecessors of ER states inside the block
    // belong to the ER (no event may lead from block\ER into the ER).
    // Iterate to the fixpoint with a worklist over current ER states.
    std::vector<StateId> work = [&] {
      std::vector<StateId> w;
      er->for_each([&](std::size_t s) { w.push_back(static_cast<StateId>(s)); });
      return w;
    }();
    while (!work.empty()) {
      const StateId v = work.back();
      work.pop_back();
      for (const auto& p : sg.preds(v)) {
        const StateId u = p.target;
        if (block.test(u) && !er->test(u)) {
          er->set(u);
          work.push_back(u);
          changed = true;
        }
      }
    }

    // Step 4 — interface preservation: an input event enabled in an ER state
    // must not be delayed by the insertion, so its successor joins the ER.
    er->for_each([&](std::size_t s) {
      for (const auto& edge : sg.succs(static_cast<StateId>(s))) {
        if (sg.signal(edge.event.signal).kind != SignalKind::kInput) continue;
        if (er->test(edge.target)) continue;
        if (!block.test(edge.target)) {
          if (why)
            *why = strfmt("input event %s would leave the insertion block",
                          sg.event_string(edge.event).c_str());
          changed = false;  // fatal
          er->set(edge.target);  // poison marker; caller sees failure
        } else {
          er->set(edge.target);
          changed = true;
        }
      }
    });
    // Detect the poison marker (any ER state outside the block).
    if (!er->subset_of(block)) return false;

    // Step 3 — SIP: close illegal diamond intersections.  If both middle
    // corners of a diamond lie in the ER but the top does not, two
    // concurrent events enter the ER in either order and their join must
    // still carry the pending transition — otherwise the second event is
    // disabled in the pre-copy of the first (a persistency violation).
    for (const auto& d : diamonds) {
      if (er->test(d.left) && er->test(d.right) && !er->test(d.top)) {
        if (!block.test(d.top)) {
          if (why)
            *why = strfmt("diamond closure forced out of block at state %s",
                          sg.code_string(d.top).c_str());
          return false;
        }
        er->set(d.top);
        changed = true;
      }
    }
  }
  return true;
}

std::optional<InsertionPlan> plan_fail(InsertionFailure* failure,
                                       std::string why) {
  if (failure) failure->why = std::move(why);
  return std::nullopt;
}

}  // namespace

InsertionPlanner::InsertionPlanner(const StateGraph& sg) : sg_(sg) {}

const std::vector<Diamond>& InsertionPlanner::diamonds() {
  if (!diamonds_) diamonds_ = enumerate_diamonds(sg_);
  return *diamonds_;
}

/// Finish a plan given its S1 block: compute input borders, grow the
/// excitation regions, and validate the partition.  Everything derived here
/// is a function of S1 alone (the divisor covers only ride along in the
/// plan), so the outcome is memoized per S1 block.
const InsertionPlanner::FinishOutcome& InsertionPlanner::finish_outcome(
    const DynBitset& s1) {
  key_scratch_ = s1.words();
  if (const std::uint32_t* idx = finish_memo_.find(key_scratch_)) {
    ++finish_hits_;
    return finish_results_[*idx];
  }
  finish_memo_.emplace(key_scratch_,
                       static_cast<std::uint32_t>(finish_results_.size()));
  finish_results_.emplace_back();
  FinishOutcome out;
  auto fail = [&](std::string why) -> const FinishOutcome& {
    out.ok = false;
    out.why = std::move(why);
    finish_results_.back() = std::move(out);
    return finish_results_.back();
  };

  const DynBitset s0 = ~s1;

  // Input borders: states where the divisor changes value along an arc.
  out.er_rise = sg_.empty_set();
  out.er_fall = sg_.empty_set();
  for (StateId s = 0; s < static_cast<StateId>(sg_.num_states()); ++s) {
    for (const auto& edge : sg_.succs(s)) {
      if (!s1.test(s) && s1.test(edge.target)) out.er_rise.set(edge.target);
      if (s1.test(s) && !s1.test(edge.target)) out.er_fall.set(edge.target);
    }
  }
  if (out.er_rise.none() && out.er_fall.none())
    return fail("divisor function never changes value");

  const auto& dias = diamonds();
  std::string why;
  if (!grow_region(sg_, s1, dias, &out.er_rise, &why))
    return fail("ER(x+): " + why);
  if (!grow_region(sg_, s0, dias, &out.er_fall, &why))
    return fail("ER(x-): " + why);

  // A state cannot host both a pending rise and a pending fall.
  if (!out.er_rise.disjoint(out.er_fall))
    return fail("ER(x+) and ER(x-) overlap");

  // Cross-region hazard: a diamond with one middle corner inside ER(x+)
  // whose top lands in ER(x-) means a concurrent event makes f fall while
  // x+ is still pending — the pending transition would have to be
  // cancelled, which Muller semantics forbids.  (Symmetrically for x-.)
  for (const auto& dia : dias) {
    const bool mid_rise =
        out.er_rise.test(dia.left) || out.er_rise.test(dia.right);
    const bool mid_fall =
        out.er_fall.test(dia.left) || out.er_fall.test(dia.right);
    if (mid_rise && out.er_fall.test(dia.top))
      return fail("concurrent event cancels pending x+ (diamond into ER(x-))");
    if (mid_fall && out.er_rise.test(dia.top))
      return fail("concurrent event cancels pending x- (diamond into ER(x+))");
  }

  const StateId init = sg_.initial();
  out.initial_value = s1.test(init) && !out.er_rise.test(init);
  if (out.er_fall.test(init)) out.initial_value = true;
  out.ok = true;
  finish_results_.back() = std::move(out);
  return finish_results_.back();
}

std::optional<InsertionPlan> InsertionPlanner::finish(
    InsertionPlan plan, InsertionFailure* failure) {
  const FinishOutcome& out = finish_outcome(plan.s1);
  if (!out.ok) return plan_fail(failure, out.why);
  plan.er_rise = out.er_rise;
  plan.er_fall = out.er_fall;
  plan.initial_value = out.initial_value;
  return plan;
}

std::optional<InsertionPlan> InsertionPlanner::plan(const Cover& f,
                                                    InsertionFailure* failure) {
  InsertionPlan plan;
  plan.f = f;
  plan.f_reset = Cover(f.num_vars());
  plan.s1 = sg_.empty_set();
  for (StateId s = 0; s < static_cast<StateId>(sg_.num_states()); ++s)
    if (f.eval(sg_.code(s))) plan.s1.set(s);
  return finish(std::move(plan), failure);
}

std::optional<InsertionPlan> InsertionPlanner::plan_latch(
    const Cover& f_set, const Cover& f_reset, InsertionFailure* failure) {
  InsertionPlan plan;
  plan.f = f_set;
  plan.f_reset = f_reset;
  plan.latch = true;
  plan.s1 = sg_.empty_set();

  // Propagate SR-latch semantics over the reachable graph: value 1 where
  // f_set holds, 0 where f_reset holds, inherited from predecessors
  // elsewhere.  Any conflict means the latch value is not well-defined.
  const auto n = static_cast<StateId>(sg_.num_states());
  std::vector<signed char> value(static_cast<std::size_t>(n), -1);
  const StateId init = sg_.initial();
  auto forced = [&](StateId s) -> int {
    const StateCode code = sg_.code(s);
    const bool set = f_set.eval(code);
    const bool reset = f_reset.eval(code);
    if (set && reset) return -2;  // conflict
    if (set) return 1;
    if (reset) return 0;
    return -1;
  };
  {
    const int fv = forced(init);
    if (fv == -2)
      return plan_fail(failure, "latch set and reset overlap in initial state");
    if (fv == -1)
      return plan_fail(failure, "latch value undefined in initial state");
    value[static_cast<std::size_t>(init)] = static_cast<signed char>(fv);
  }
  std::vector<StateId> queue{init};
  while (!queue.empty()) {
    const StateId u = queue.back();
    queue.pop_back();
    for (const auto& edge : sg_.succs(u)) {
      const StateId v = edge.target;
      int fv = forced(v);
      if (fv == -2) return plan_fail(failure, "latch set and reset overlap");
      if (fv == -1) fv = value[static_cast<std::size_t>(u)];
      if (value[static_cast<std::size_t>(v)] == -1) {
        value[static_cast<std::size_t>(v)] = static_cast<signed char>(fv);
        queue.push_back(v);
      } else if (value[static_cast<std::size_t>(v)] != fv) {
        return plan_fail(failure, "latch value ambiguous (path-dependent)");
      }
    }
  }
  for (StateId s = 0; s < n; ++s)
    if (value[static_cast<std::size_t>(s)] == 1) plan.s1.set(s);
  return finish(std::move(plan), failure);
}

const InsertionPlanner::PropagateOutcome&
InsertionPlanner::propagate_outcome(const DynBitset& set_states,
                                    const DynBitset& reset_states) {
  key_scratch_.assign(set_states.words().begin(), set_states.words().end());
  key_scratch_.insert(key_scratch_.end(), reset_states.words().begin(),
                      reset_states.words().end());
  if (const std::uint32_t* idx = region_memo_.find(key_scratch_)) {
    ++region_hits_;
    return propagate_results_[*idx];
  }
  region_memo_.emplace(key_scratch_,
                       static_cast<std::uint32_t>(propagate_results_.size()));
  propagate_results_.emplace_back();
  PropagateOutcome out;

  const auto n = static_cast<StateId>(sg_.num_states());
  const StateId init = sg_.initial();
  auto forced = [&](StateId s) -> int {
    if (set_states.test(static_cast<std::size_t>(s))) return 1;
    if (reset_states.test(static_cast<std::size_t>(s))) return 0;
    return -1;
  };

  // Propagate forward from one assumed initial value; returns the value
  // assignment or nullopt on a contradiction with the forced states.
  auto propagate = [&](signed char init_value)
      -> std::optional<std::vector<signed char>> {
    std::vector<signed char> value(static_cast<std::size_t>(n), -1);
    value[static_cast<std::size_t>(init)] = init_value;
    std::vector<StateId> queue{init};
    while (!queue.empty()) {
      const StateId u = queue.back();
      queue.pop_back();
      for (const auto& edge : sg_.succs(u)) {
        const StateId v = edge.target;
        int fv = forced(v);
        if (fv == -1) fv = value[static_cast<std::size_t>(u)];
        if (value[static_cast<std::size_t>(v)] == -1) {
          value[static_cast<std::size_t>(v)] = static_cast<signed char>(fv);
          queue.push_back(v);
        } else if (value[static_cast<std::size_t>(v)] != fv) {
          return std::nullopt;
        }
      }
    }
    return value;
  };

  // The initial value may be undetermined by the seeds; propagation from a
  // provisional value then either fixes it (the cycle structure is
  // consistent with that choice) or contradicts a forced state.  Try 0
  // first — matching the historical choice — and retry with 1 before
  // rejecting: a cycle structure that forces the initial value to 1 is a
  // perfectly valid insertion, not an ambiguity.
  std::optional<std::vector<signed char>> value;
  const int fv = forced(init);
  if (fv != -1) {
    value = propagate(static_cast<signed char>(fv));
  } else {
    value = propagate(0);
    if (!value) value = propagate(1);
  }
  if (!value) {
    out.ok = false;
    out.why = "latch value ambiguous (path-dependent)";
    propagate_results_.back() = std::move(out);
    return propagate_results_.back();
  }

  out.ok = true;
  out.s1 = sg_.empty_set();
  for (StateId s = 0; s < n; ++s)
    if ((*value)[static_cast<std::size_t>(s)] == 1)
      out.s1.set(static_cast<std::size_t>(s));
  propagate_results_.back() = std::move(out);
  return propagate_results_.back();
}

std::optional<InsertionPlan> InsertionPlanner::plan_state_latch(
    const DynBitset& set_states, const DynBitset& reset_states,
    InsertionFailure* failure) {
  if (!set_states.disjoint(reset_states))
    return plan_fail(failure, "latch set and reset state sets overlap");

  const PropagateOutcome& prop = propagate_outcome(set_states, reset_states);
  if (!prop.ok) return plan_fail(failure, prop.why);

  InsertionPlan plan;
  plan.f = Cover(sg_.num_signals());
  plan.f_reset = Cover(sg_.num_signals());
  plan.latch = true;
  plan.s1 = prop.s1;
  return finish(std::move(plan), failure);
}

std::optional<InsertionPlan> plan_insertion(const StateGraph& sg,
                                            const Cover& f,
                                            InsertionFailure* failure) {
  return InsertionPlanner(sg).plan(f, failure);
}

std::optional<InsertionPlan> plan_latch_insertion(const StateGraph& sg,
                                                  const Cover& f_set,
                                                  const Cover& f_reset,
                                                  InsertionFailure* failure) {
  return InsertionPlanner(sg).plan_latch(f_set, f_reset, failure);
}

std::optional<InsertionPlan> plan_state_latch_insertion(
    const StateGraph& sg, const DynBitset& set_states,
    const DynBitset& reset_states, InsertionFailure* failure) {
  return InsertionPlanner(sg).plan_state_latch(set_states, reset_states,
                                               failure);
}

StateGraph insert_signal(const StateGraph& sg, const InsertionPlan& plan,
                         const std::string& name, InsertionCopies* copies) {
  StateGraph out;
  for (const auto& sig : sg.signals()) out.add_signal(sig.name, sig.kind);
  const int x = out.add_signal(name, SignalKind::kInternal);

  // State copies: pre/post for states in the insertion regions, a single
  // copy elsewhere.  pre_id/post_id hold new state ids per old state; for
  // unsplit states both ids coincide.
  const auto n = static_cast<StateId>(sg.num_states());
  std::vector<StateId> id_x0(n, kNoState), id_x1(n, kNoState);

  auto x_bit = [&](bool v) { return v ? (StateCode{1} << x) : StateCode{0}; };

  for (StateId s = 0; s < n; ++s) {
    const StateCode base = sg.code(s);
    if (plan.er_rise.test(s) || plan.er_fall.test(s)) {
      id_x0[s] = out.add_state(base | x_bit(false));
      id_x1[s] = out.add_state(base | x_bit(true));
    } else if (plan.s1.test(s)) {
      id_x1[s] = out.add_state(base | x_bit(true));
    } else {
      id_x0[s] = out.add_state(base | x_bit(false));
    }
  }

  // Transitions of the new signal.
  plan.er_rise.for_each([&](std::size_t s) {
    out.add_arc(id_x0[s], Event{x, true}, id_x1[s]);
  });
  plan.er_fall.for_each([&](std::size_t s) {
    out.add_arc(id_x1[s], Event{x, false}, id_x0[s]);
  });

  // Original arcs: connect x-consistent copies.  Crossings between the two
  // excitation regions must not skip the pending x transitions: on a
  // ER(x+) -> ER(x-) arc only the (post,pre) = (x=1,x=1) copy survives, and
  // symmetrically for ER(x-) -> ER(x+).
  for (StateId u = 0; u < n; ++u) {
    for (const auto& edge : sg.succs(u)) {
      const StateId v = edge.target;
      const bool skip_00 = plan.er_rise.test(u) && plan.er_fall.test(v);
      const bool skip_11 = plan.er_fall.test(u) && plan.er_rise.test(v);
      if (id_x0[u] != kNoState && id_x0[v] != kNoState && !skip_00)
        out.add_arc(id_x0[u], edge.event, id_x0[v]);
      if (id_x1[u] != kNoState && id_x1[v] != kNoState && !skip_11)
        out.add_arc(id_x1[u], edge.event, id_x1[v]);
    }
  }

  const StateId init = sg.initial();
  out.set_initial(plan.initial_value ? id_x1[init] : id_x0[init]);
  std::vector<StateId> remap;
  out.prune_unreachable(copies ? &remap : nullptr);
  if (copies) {
    auto through = [&](std::vector<StateId> ids) {
      for (auto& id : ids)
        if (id != kNoState) id = remap[id];
      return ids;
    };
    copies->x0 = through(std::move(id_x0));
    copies->x1 = through(std::move(id_x1));
  }
  return out;
}

InsertionPreview::InsertionPreview(const StateGraph& sg,
                                   const InsertionPlan& plan)
    : sg_(sg), plan_(plan), reached_(2 * sg.num_states()) {
  // Reachability over the implicit copy product, mirroring insert_signal's
  // arc construction: original arcs stay on their x side when they carry,
  // and the pending x transition moves between the sides of an ER state.
  std::vector<std::size_t> work;
  const std::size_t start = pair_index(sg.initial(), plan.initial_value);
  reached_.set(start);
  work.push_back(start);
  while (!work.empty()) {
    const std::size_t p = work.back();
    work.pop_back();
    const auto s = static_cast<StateId>(p >> 1);
    const bool v = (p & 1) != 0;
    auto visit = [&](StateId t, bool tv) {
      const std::size_t q = pair_index(t, tv);
      if (!reached_.test(q)) {
        reached_.set(q);
        work.push_back(q);
      }
    };
    if (!v && plan.er_rise.test(static_cast<std::size_t>(s))) visit(s, true);
    if (v && plan.er_fall.test(static_cast<std::size_t>(s))) visit(s, false);
    for (const auto& edge : sg.succs(s))
      if (arc_carries(s, edge.target, v)) visit(edge.target, v);
  }
  num_states_ = reached_.count();
}

bool InsertionPreview::copy_exists(StateId s, bool value) const {
  const auto i = static_cast<std::size_t>(s);
  if (plan_.er_rise.test(i) || plan_.er_fall.test(i)) return true;
  return plan_.s1.test(i) == value;
}

bool InsertionPreview::arc_carries(StateId from, StateId to, bool value) const {
  if (!copy_exists(to, value)) return false;
  // ER(x+) -> ER(x-) arcs must not skip the pending x+ on the x=0 side, and
  // symmetrically for the x=1 side (insert_signal's skip_00 / skip_11).
  const auto u = static_cast<std::size_t>(from);
  const auto v = static_cast<std::size_t>(to);
  if (!value) return !(plan_.er_rise.test(u) && plan_.er_fall.test(v));
  return !(plan_.er_fall.test(u) && plan_.er_rise.test(v));
}

std::array<std::uint64_t, 2> InsertionPreview::enabled_mask(StateId s,
                                                            bool value) const {
  std::array<std::uint64_t, 2> mask = sg_.enabled_mask(s);
  const auto i = static_cast<std::size_t>(s);
  const bool in_rise = plan_.er_rise.test(i);
  const bool in_fall = plan_.er_fall.test(i);
  if (in_rise || in_fall) {
    // Only excitation-region copies differ from their source state: they may
    // drop arcs (partner copy missing on this side, or a cross-region skip)
    // and they carry the pending x event.  Interior copies keep their full
    // bitmap — every arc crossing the S0/S1 boundary lands inside an ER (the
    // input borders seed the regions), so all their arcs carry.
    for (const auto& edge : sg_.succs(s)) {
      if (arc_carries(s, edge.target, value)) continue;
      const int id = 2 * edge.event.signal + (edge.event.rising ? 1 : 0);
      mask[id >> 6] &= ~(std::uint64_t{1} << (id & 63));
    }
    if ((!value && in_rise) || (value && in_fall)) {
      const int id = 2 * sg_.num_signals() + (value ? 0 : 1);
      mask[id >> 6] |= std::uint64_t{1} << (id & 63);
    }
  }
  return mask;
}

DynBitset disturbed_signals(const StateGraph& sg, const InsertionPlan& plan) {
  DynBitset out(static_cast<std::size_t>(sg.num_signals()));
  const DynBitset er = plan.er_rise | plan.er_fall;
  er.for_each([&](std::size_t s) {
    const bool in_rise = plan.er_rise.test(s);
    const bool in_fall = plan.er_fall.test(s);
    for (const auto& edge : sg.succs(static_cast<StateId>(s))) {
      const auto t = static_cast<std::size_t>(edge.target);
      const bool er_t = plan.er_rise.test(t) || plan.er_fall.test(t);
      const bool carries0 = (er_t || !plan.s1.test(t)) &&
                            !(in_rise && plan.er_fall.test(t));
      const bool carries1 = (er_t || plan.s1.test(t)) &&
                            !(in_fall && plan.er_rise.test(t));
      if (!carries0 || !carries1)
        out.set(static_cast<std::size_t>(edge.event.signal));
    }
  });
  return out;
}

InsertionVerifier::InsertionVerifier(const StateGraph& before)
    : before_(before),
      persistent_(static_cast<std::size_t>(before.num_signals())) {
  for (int sig = 0; sig < before.num_signals(); ++sig)
    persistent_[static_cast<std::size_t>(sig)] =
        check_persistency(before, {sig}) ? 1 : 0;
}

PropertyResult InsertionVerifier::verify(const StateGraph& after,
                                         bool require_csc,
                                         const DynBitset* disturbed) const {
  if (auto r = check_consistency(after); !r) return r;
  if (auto r = check_speed_independence(after); !r) return r;
  if (require_csc) {
    if (auto r = check_csc(after); !r) return r;
  }

  // SIP: every signal whose events were persistent before must stay
  // persistent (inputs included; outputs are covered by the SI check).  A
  // baseline-persistent signal outside the disturbed set cannot fail — its
  // enabledness is untouched on every surviving copy — so the re-check is
  // skipped when the caller supplies the set.
  for (int sig = 0; sig < before_.num_signals(); ++sig) {
    if (!persistent_[static_cast<std::size_t>(sig)]) continue;
    if (disturbed && !disturbed->test(static_cast<std::size_t>(sig))) continue;
    if (auto r = check_persistency(after, {sig}); !r)
      return PropertyResult::fail("SIP violated: " + r.why);
  }
  return PropertyResult::pass();
}

PropertyResult verify_insertion(const StateGraph& before,
                                const StateGraph& after, bool require_csc) {
  return InsertionVerifier(before).verify(after, require_csc);
}

}  // namespace sitm
