#pragma once
// Monotonous cover synthesis (paper Section 2.2).
//
// For every transition a* of a non-input signal we derive a cover function
// c(a*) satisfying the Monotonous Cover conditions:
//   1. c(a*) evaluates to 1 on every state of every ERj(a*);
//   2. c(a*) evaluates to 0 outside U_j (ERj(a*) u QRj(a*));
//   3. within each QRj(a*) the cover changes at most once (it may fall
//      from 1 to 0 but never rises back).
// Unreachable codes are free don't-cares.  Condition 3 is enforced by a
// repair loop that moves offending quiescent states into the off-set and
// re-minimizes.
//
// A signal is implemented combinationally (complete cover, C element
// degenerates into a wire) when the minimized next-state function is not
// more complex than the worse of the set/reset gates; otherwise the
// standard-C architecture with set/reset networks is used.

#include <vector>

#include "boolf/cover.hpp"
#include "netlist/netlist.hpp"
#include "sg/regions.hpp"
#include "sg/state_graph.hpp"
#include "util/run_guard.hpp"

namespace sitm {

/// Cover of one event (the whole set or reset network of a signal).
struct EventCover {
  Event event;
  std::vector<Region> regions;  ///< ERs/QRs of the event
  Cover cover;                  ///< minimized monotonous cover
  Cover complement;             ///< minimized cover of the OFF condition
  DynBitset on, dc, off;        ///< state sets used for minimization
  int complexity = 0;           ///< min(lit(cover), lit(complement))
};

/// Full synthesis result for one signal.
struct SignalSynthesis {
  int signal = -1;
  bool combinational = false;
  EventCover set;        ///< a+ cover; the complete cover when combinational
  EventCover reset;      ///< a- cover (empty when combinational)
  Cover complete;        ///< minimized next-state function
  int complete_complexity = 0;
  /// Worst gate complexity of the chosen implementation.
  int complexity = 0;
};

/// Implementation architecture policy per signal.
enum class Architecture {
  /// Choose per signal: combinational (complete cover) when it is not more
  /// complex than the worst set/reset gate, standard-C otherwise.
  kAuto,
  /// Always a C element with set/reset networks (Figure 2a).
  kStandardC,
  /// Always the complete cover as one atomic complex gate (Figure 2b/c).
  kComplexGate,
};

struct McOptions {
  /// Extra minimizer refinement passes.
  int minimize_passes = 1;
  Architecture architecture = Architecture::kAuto;
  /// Worker threads for `synthesize_all`.  Per-signal synthesis only reads
  /// the (const) SG, so non-input signals are minimized in parallel and the
  /// results are assembled in serial signal order — the netlist is
  /// bit-identical for every thread count.  1 = serial, 0 = one thread per
  /// hardware core.
  int threads = 1;
};

/// Monotonous cover for one event.  Throws sitm::Error if the SG violates
/// the flow preconditions (e.g. CSC).
EventCover monotonous_cover(const StateGraph& sg, Event e,
                            const McOptions& opts = {});

/// Complete (next-state) cover of a signal plus its complexity.
Cover complete_cover(const StateGraph& sg, int sig, int* complexity,
                     const McOptions& opts = {});

/// Synthesize one signal (choosing combinational vs standard-C).
SignalSynthesis synthesize_signal(const StateGraph& sg, int sig,
                                  const McOptions& opts = {});

/// Synthesize every non-input signal into a standard-C netlist.
/// `out_syntheses` (optional) receives the per-signal details.  `guard`
/// (optional) is polled once per signal by every worker; exhaustion stops
/// further signal claims and rethrows GuardExhausted on the calling thread
/// (parallel_for's error contract), at any thread count.
Netlist synthesize_all(const StateGraph& sg, const McOptions& opts = {},
                       std::vector<SignalSynthesis>* out_syntheses = nullptr,
                       const RunGuard* guard = nullptr);

/// Worker count synthesize_all will actually use for `num_signals` work
/// items: McOptions::threads with 0 resolved to the hardware concurrency,
/// clamped to the number of signals.  Exposed so reports can record the
/// true value.
int resolve_synthesis_threads(const McOptions& opts, std::size_t num_signals);

}  // namespace sitm
