#pragma once
// Static specification lint: typed pre-flow diagnostics over a parsed STG
// (or explicit SG) that catch specification bugs *before* any state-graph
// construction.  The checks are purely structural — no token game, no
// reachability store — so linting an adversarial spec costs O(net size)
// and the serve front-end can use it as a fast reject path.
//
// Rules (each diagnostic names one):
//   alternation           a signal with rising but no falling transitions
//                         (or vice versa) can never return to its initial
//                         value — inconsistent labeling (error); a direct
//                         place arc chaining two same-polarity edges of one
//                         signal is a likely consistency violation (warning)
//   dangling-arc          a transition with an empty preset is enabled
//                         forever (error); an empty postset swallows tokens
//                         and kills liveness (warning); an isolated place
//                         does nothing (warning)
//   duplicate-arc         the same place->transition or transition->place
//                         arc twice: firing needs 2 tokens / produces 2
//                         tokens, impossible in a 1-safe net (error)
//   unreachable           a transition that cannot fire even under the
//                         optimistic token-flow closure of the initial
//                         marking (ignoring token counts) is dead under any
//                         real semantics (error)
//   idle-input            an input signal with no transitions is dead
//                         weight in every downstream stage (warning)
//   unsafe-marking        an empty initial marking deadlocks the net
//                         (error); the same place marked twice starts the
//                         net outside the 1-safe regime (error)
//   unconstrained-output  a non-input signal none of whose transitions is
//                         triggered by another signal's transition runs
//                         free of the environment (warning); a non-input
//                         signal with no transitions is never produced
//                         (warning)
//
// Severities: an `error` means the flow is guaranteed (or overwhelmingly
// likely) to fail on this spec — FlowOptions::lint turns errors into a
// typed `spec` failure at the reachability gate.  A `warning` is advice;
// it travels on the stage report but never rejects.

#include <string>
#include <vector>

#include "sg/state_graph.hpp"
#include "stg/load.hpp"
#include "stg/stg.hpp"
#include "util/json.hpp"

namespace sitm {

enum class LintRule : int {
  kAlternation = 0,
  kDanglingArc,
  kDuplicateArc,
  kUnreachable,
  kIdleInput,
  kUnsafeMarking,
  kUnconstrainedOutput,
};
inline constexpr int kNumLintRules = 7;

const char* lint_rule_name(LintRule rule);

enum class LintSeverity : int { kWarning = 0, kError };

const char* lint_severity_name(LintSeverity severity);

struct LintDiagnostic {
  LintRule rule = LintRule::kAlternation;
  LintSeverity severity = LintSeverity::kWarning;
  /// What the diagnostic is about: a signal name, a transition rendering
  /// ("a+/2"), or a place name.  Empty for net-wide findings.
  std::string subject;
  std::string message;
};

struct LintReport {
  std::vector<LintDiagnostic> diagnostics;
  int errors = 0;
  int warnings = 0;

  /// No errors (warnings allowed): the flow may proceed.
  bool ok() const { return errors == 0; }
  /// No diagnostics at all.
  bool clean() const { return diagnostics.empty(); }
  /// True when some diagnostic names `rule`.
  bool has(LintRule rule) const;
  /// First error message, prefixed with "lint: "; empty when ok().
  std::string first_error() const;

  void add(LintRule rule, LintSeverity severity, std::string subject,
           std::string message);

  /// {"ok":…,"errors":N,"warnings":N,"diagnostics":[{rule,severity,subject,
  /// message}…]} via the shared serializer (keys in insertion order).
  Json to_json() const;
};

/// Lint a parsed STG (the .g front end).
LintReport lint_stg(const Stg& stg);

/// Lint an explicit state graph (the .sg front end).  The .sg reader
/// already enforces code consistency and reachability, so this is the
/// reduced rule set: idle signals, never-produced non-inputs, and states
/// with no successors (deadlock hints).
LintReport lint_state_graph(const StateGraph& sg);

/// Dispatch on the spec's parsed form.
LintReport lint_spec(const Spec& spec);

}  // namespace sitm
