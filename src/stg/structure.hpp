#pragma once
// Structural analysis of STGs: incidence matrix, place invariants (P-flows)
// and the structural certificates they give.
//
// A place invariant is a rational vector y >= 0 with  y^T * C = 0  for the
// incidence matrix C (places x transitions).  The token count y^T * M is
// then constant over all reachable markings, which yields reachability-free
// certificates:
//   * a place covered by an invariant with y^T * M0 = 1 and unit weight is
//     structurally 1-safe;
//   * transitions consuming from an uncovered place may be unboundedly
//     enabled or dead.
// The benchmark generators produce free-choice nets where invariant cover
// equals safeness, which the tests pin against the explicit token game.

#include <cstdint>
#include <vector>

#include "stg/stg.hpp"

namespace sitm {

/// Sparse rational vector over places (weights are kept integral by
/// clearing denominators).
struct PlaceInvariant {
  std::vector<long> weights;  ///< one entry per place (>= 0)
  long token_sum = 0;         ///< y^T * M0

  bool covers(PlaceId p) const {
    return weights[static_cast<std::size_t>(p)] > 0;
  }
};

/// Incidence matrix entry C[p][t] = post(t,p) - pre(t,p).
std::vector<std::vector<int>> incidence_matrix(const Stg& stg);

/// A basis of non-negative place invariants (computed by Farkas-style
/// elimination, pruned to minimal support; exponential worst case, fine at
/// controller sizes).
std::vector<PlaceInvariant> place_invariants(const Stg& stg);

/// True if every place is covered by an invariant with token sum 1 and unit
/// weights — a structural certificate of 1-safeness.
bool structurally_safe(const Stg& stg);

}  // namespace sitm
