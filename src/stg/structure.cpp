#include "stg/structure.hpp"

#include <algorithm>
#include <numeric>

#include "util/error.hpp"

namespace sitm {

std::vector<std::vector<int>> incidence_matrix(const Stg& stg) {
  std::vector<std::vector<int>> c(
      stg.num_places(), std::vector<int>(stg.num_transitions(), 0));
  for (TransId t = 0; t < static_cast<TransId>(stg.num_transitions()); ++t) {
    for (PlaceId p : stg.pre_places(t)) --c[static_cast<std::size_t>(p)][static_cast<std::size_t>(t)];
    for (PlaceId p : stg.post_places(t)) ++c[static_cast<std::size_t>(p)][static_cast<std::size_t>(t)];
  }
  return c;
}

namespace {

/// One working row of the Farkas tableau: the remaining incidence part and
/// the place-weight part.
struct Row {
  std::vector<long> c;  ///< per transition
  std::vector<long> y;  ///< per place (non-negative combination weights)
};

long row_gcd(const Row& row) {
  long g = 0;
  for (long v : row.c) g = std::gcd(g, std::abs(v));
  for (long v : row.y) g = std::gcd(g, std::abs(v));
  return g == 0 ? 1 : g;
}

/// Does `a`'s support strictly contain `b`'s support (on the y part)?
bool support_superset(const Row& a, const Row& b) {
  bool strict = false;
  for (std::size_t i = 0; i < a.y.size(); ++i) {
    if (b.y[i] > 0 && a.y[i] == 0) return false;
    if (a.y[i] > 0 && b.y[i] == 0) strict = true;
  }
  return strict;
}

}  // namespace

std::vector<PlaceInvariant> place_invariants(const Stg& stg) {
  const auto c = incidence_matrix(stg);
  const std::size_t places = stg.num_places();
  const std::size_t transitions = stg.num_transitions();
  constexpr std::size_t kRowCap = 4096;

  std::vector<Row> rows(places);
  for (std::size_t p = 0; p < places; ++p) {
    rows[p].c.assign(transitions, 0);
    for (std::size_t t = 0; t < transitions; ++t)
      rows[p].c[t] = c[p][t];
    rows[p].y.assign(places, 0);
    rows[p].y[p] = 1;
  }

  // Farkas elimination, one transition column at a time.
  for (std::size_t t = 0; t < transitions; ++t) {
    std::vector<Row> next;
    std::vector<const Row*> pos, neg;
    for (const auto& row : rows) {
      if (row.c[t] == 0) {
        next.push_back(row);
      } else if (row.c[t] > 0) {
        pos.push_back(&row);
      } else {
        neg.push_back(&row);
      }
    }
    for (const Row* rp : pos) {
      for (const Row* rn : neg) {
        Row merged;
        const long wp = -rn->c[t];
        const long wn = rp->c[t];
        merged.c.resize(transitions);
        merged.y.resize(places);
        for (std::size_t i = 0; i < transitions; ++i)
          merged.c[i] = wp * rp->c[i] + wn * rn->c[i];
        for (std::size_t i = 0; i < places; ++i)
          merged.y[i] = wp * rp->y[i] + wn * rn->y[i];
        const long g = row_gcd(merged);
        for (auto& v : merged.c) v /= g;
        for (auto& v : merged.y) v /= g;
        next.push_back(std::move(merged));
        if (next.size() > kRowCap)
          throw Error("place_invariants: Farkas row explosion");
      }
    }
    // Minimal-support pruning keeps the tableau small.  Mark first, move
    // after: moving while other rows are still compared would read
    // moved-from vectors.
    std::vector<char> dominated(next.size(), 0);
    for (std::size_t i = 0; i < next.size(); ++i)
      for (std::size_t j = 0; j < next.size(); ++j)
        if (i != j && !dominated[j] && support_superset(next[i], next[j])) {
          dominated[i] = 1;
          break;
        }
    std::vector<Row> pruned;
    for (std::size_t i = 0; i < next.size(); ++i)
      if (!dominated[i]) pruned.push_back(std::move(next[i]));
    rows = std::move(pruned);
  }

  // Remaining rows have y^T C = 0.  Deduplicate and attach token sums.
  std::vector<PlaceInvariant> out;
  for (const auto& row : rows) {
    PlaceInvariant inv;
    inv.weights = row.y;
    for (PlaceId p : stg.initial_marking())
      inv.token_sum += inv.weights[static_cast<std::size_t>(p)];
    const bool duplicate =
        std::any_of(out.begin(), out.end(), [&](const PlaceInvariant& o) {
          return o.weights == inv.weights;
        });
    if (!duplicate) out.push_back(std::move(inv));
  }
  return out;
}

bool structurally_safe(const Stg& stg) {
  const auto invariants = place_invariants(stg);
  for (PlaceId p = 0; p < static_cast<PlaceId>(stg.num_places()); ++p) {
    bool covered = false;
    for (const auto& inv : invariants) {
      if (!inv.covers(p)) continue;
      if (inv.token_sum != 1) continue;
      // Unit weights on the whole support.
      const bool unit = std::all_of(inv.weights.begin(), inv.weights.end(),
                                    [](long w) { return w == 0 || w == 1; });
      if (unit) {
        covered = true;
        break;
      }
    }
    if (!covered) return false;
  }
  return true;
}

}  // namespace sitm
