#include "stg/load.hpp"

#include <fstream>
#include <sstream>

#include "sg/sg_io.hpp"
#include "stg/g_io.hpp"
#include "util/error.hpp"
#include "util/text.hpp"

namespace sitm {

const char* spec_format_name(SpecFormat format) {
  switch (format) {
    case SpecFormat::kAuto: return "auto";
    case SpecFormat::kG: return "g";
    case SpecFormat::kSg: return "sg";
  }
  return "?";
}

std::string slurp_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

SpecFormat sniff_spec_format(const std::string& path,
                             const std::string& text) {
  const std::string_view p = path;
  if (p.ends_with(".sg")) return SpecFormat::kSg;
  if (p.ends_with(".g") || p.ends_with(".astg")) return SpecFormat::kG;
  // Extension is inconclusive (stdin, suite entries, odd names): the
  // ".initial <state> <code>" directive exists only in the .sg format.
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    const auto t = trim(line);
    if (starts_with(t, ".initial")) return SpecFormat::kSg;
    if (starts_with(t, ".marking")) return SpecFormat::kG;
  }
  return SpecFormat::kG;
}

Spec load_spec_string(const std::string& text, SpecFormat format,
                      const std::string& path) {
  Spec spec;
  spec.path = path;
  spec.format =
      format == SpecFormat::kAuto ? sniff_spec_format(path, text) : format;
  if (spec.format == SpecFormat::kSg)
    spec.sg = read_sg_string(text, &spec.name);
  else
    spec.stg = read_g_string(text, &spec.name);
  return spec;
}

Spec load_spec_file(const std::string& path, SpecFormat format) {
  return load_spec_string(slurp_file(path), format, path);
}

}  // namespace sitm
