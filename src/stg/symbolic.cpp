#include "stg/symbolic.hpp"

#include "util/error.hpp"

namespace sitm {

SymbolicReachability symbolic_reachability(const Stg& stg) {
  const int places = static_cast<int>(stg.num_places());
  if (places > 64) throw Error("symbolic_reachability: more than 64 places");
  BddManager mgr(places);
  return symbolic_reachability(stg, mgr);
}

SymbolicReachability symbolic_reachability(const Stg& stg, BddManager& mgr,
                                           const RunGuard* guard) {
  const int places = static_cast<int>(stg.num_places());
  if (places > 64) throw Error("symbolic_reachability: more than 64 places");
  if (mgr.num_vars() != places)
    throw Error("symbolic_reachability: manager sized for " +
                std::to_string(mgr.num_vars()) + " variables, net has " +
                std::to_string(places) + " places");
  if (stg.initial_marking().empty())
    throw Error("symbolic_reachability: empty initial marking");

  // Initial marking as a minterm over place variables.
  BddRef reached = mgr.bdd_true();
  {
    DynBitset marked(static_cast<std::size_t>(places));
    for (PlaceId p : stg.initial_marking())
      marked.set(static_cast<std::size_t>(p));
    for (int p = 0; p < places; ++p)
      reached = mgr.bdd_and(reached, mgr.literal(p, marked.test(
                                         static_cast<std::size_t>(p))));
  }

  // Per-transition data: enabling condition, quantification mask and the
  // post-image constraint.
  struct TransImage {
    BddRef enabled;      ///< all pre places marked (and post \ pre empty)
    std::uint64_t vars;  ///< pre u post variables to quantify
    BddRef after;        ///< pre \ post empty, post marked
  };
  std::vector<TransImage> images;
  images.reserve(stg.num_transitions());
  for (TransId t = 0; t < static_cast<TransId>(stg.num_transitions()); ++t) {
    const auto& pre = stg.pre_places(t);
    const auto& post = stg.post_places(t);
    if (pre.empty()) continue;  // unconnected transition: never fires
    DynBitset pre_set(static_cast<std::size_t>(places));
    DynBitset post_set(static_cast<std::size_t>(places));
    for (PlaceId p : pre) pre_set.set(static_cast<std::size_t>(p));
    for (PlaceId p : post) post_set.set(static_cast<std::size_t>(p));

    TransImage img;
    img.enabled = mgr.bdd_true();
    for (PlaceId p : pre) img.enabled = mgr.bdd_and(img.enabled, mgr.literal(p));
    // 1-safety: firing must not add a token to an already marked place.
    post_set.for_each([&](std::size_t p) {
      if (!pre_set.test(p))
        img.enabled =
            mgr.bdd_and(img.enabled, mgr.literal(static_cast<int>(p), false));
    });

    img.vars = 0;
    (pre_set | post_set).for_each([&](std::size_t p) {
      img.vars |= std::uint64_t{1} << p;
    });

    img.after = mgr.bdd_true();
    pre_set.for_each([&](std::size_t p) {
      if (!post_set.test(p))
        img.after =
            mgr.bdd_and(img.after, mgr.literal(static_cast<int>(p), false));
    });
    post_set.for_each([&](std::size_t p) {
      img.after = mgr.bdd_and(img.after, mgr.literal(static_cast<int>(p)));
    });
    images.push_back(img);
  }

  SymbolicReachability out;
  bool changed = true;
  while (changed) {
    changed = false;
    ++out.iterations;
    for (const auto& img : images) {
      guard_charge(guard, 1, "stg.symbolic");
      const BddRef firable = mgr.bdd_and(reached, img.enabled);
      if (firable == mgr.bdd_false()) continue;
      const BddRef successors =
          mgr.bdd_and(mgr.exists_mask(firable, img.vars), img.after);
      const BddRef next = mgr.bdd_or(reached, successors);
      if (next != reached) {
        reached = next;
        changed = true;
      }
    }
  }

  out.num_markings = mgr.sat_count(reached);
  out.bdd_size = mgr.dag_size(reached);

  // Deadlock: a reachable marking enabling nothing.
  BddRef any_enabled = mgr.bdd_false();
  for (const auto& img : images)
    any_enabled = mgr.bdd_or(any_enabled, img.enabled);
  out.has_deadlock =
      mgr.bdd_and(reached, mgr.bdd_not(any_enabled)) != mgr.bdd_false();
  return out;
}

}  // namespace sitm
