#pragma once
// Canonical content hashing of parsed specifications — the spec half of the
// serve cache key.
//
// The hash is computed from the *post-parse, canonicalized* structure, not
// the input bytes, so every formatting variant of the same specification
// collides onto one cache line:
//   * comments, whitespace and blank lines are gone after parsing;
//   * signal declaration order is normalized by sorting signals by name;
//   * .g graph-line order is normalized by hashing places as a sorted
//     multiset of (sorted pre-transition labels, sorted post-transition
//     labels, initial-marking count) descriptors;
//   * transition instance names are normalized ("a+" and "a+/1" are the
//     same transition and serialize identically);
//   * .sg state names and state declaration order are normalized by a BFS
//     renumbering from the initial state with canonically ordered edges.
// Signal *names* are semantic (they become netlist ports) and stay in the
// hash: renaming a signal is a different specification.
//
// The digest is 128 bits (two independently seeded FNV-1a streams over the
// same canonical byte serialization): at cache scale a 64-bit key would
// make accidental collisions — which silently serve the wrong netlist —
// merely improbable; 128 makes them unreachable.

#include <cstdint>
#include <string>
#include <string_view>

namespace sitm {

class Stg;
class StateGraph;
struct Spec;

/// 128-bit canonical content hash.
struct SpecHash {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  bool operator==(const SpecHash&) const = default;
  bool operator<(const SpecHash& o) const {
    return hi != o.hi ? hi < o.hi : lo < o.lo;
  }
  /// 32-hex-digit rendering (cache keys in reports / the serve protocol).
  std::string hex() const;
};

/// Two independently seeded FNV-1a streams fed the same bytes; platform-
/// and run-independent (no pointers, no std::hash).  Also the engine under
/// FlowOptions::fingerprint().
class StableHasher {
 public:
  void bytes(const void* data, std::size_t n);
  void str(std::string_view s) {
    u64(s.size());
    bytes(s.data(), s.size());
  }
  void u64(std::uint64_t v);
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void boolean(bool b) { u64(b ? 1 : 0); }
  /// Domain-separation tag between sections.
  void tag(char c) { bytes(&c, 1); }

  SpecHash digest() const { return SpecHash{hi_, lo_}; }

 private:
  std::uint64_t hi_ = 14695981039346656037ull;           // FNV offset basis
  std::uint64_t lo_ = 14695981039346656037ull ^ 0x53495f544d5f3873ull;
};

/// Canonical hash of a parsed .g specification (see file comment).
SpecHash canonical_spec_hash(const Stg& stg);

/// Canonical hash of an explicit state graph: BFS renumbering from the
/// initial state (edges ordered by canonical event id), signals sorted by
/// name, codes permuted accordingly.  States unreachable from the initial
/// state do not contribute (they are behaviorally inert and the flow prunes
/// them anyway).
SpecHash canonical_spec_hash(const StateGraph& sg);

/// Dispatch on the parsed form; .g and .sg live in disjoint key spaces
/// (the flow treats them differently — reachability runs only for .g).
SpecHash canonical_spec_hash(const Spec& spec);

}  // namespace sitm
