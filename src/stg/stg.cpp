#include "stg/stg.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/flat_map.hpp"
#include "util/text.hpp"

namespace sitm {

int Stg::add_signal(std::string name, SignalKind kind) {
  if (signals_.size() >= 64) throw Error("Stg: more than 64 signals");
  if (find_signal(name) >= 0) throw Error("Stg: duplicate signal '" + name + "'");
  signals_.push_back(Signal{std::move(name), kind});
  return static_cast<int>(signals_.size()) - 1;
}

TransId Stg::add_transition(int signal, bool rising, int instance) {
  if (signal < 0 || signal >= num_signals())
    throw Error("Stg: transition with unknown signal");
  transitions_.push_back(StgTransition{signal, rising, instance});
  pre_.emplace_back();
  post_.emplace_back();
  return static_cast<TransId>(transitions_.size()) - 1;
}

PlaceId Stg::add_place(std::string name) {
  places_.push_back(StgPlace{std::move(name), {}, {}});
  return static_cast<PlaceId>(places_.size()) - 1;
}

void Stg::connect_tp(TransId t, PlaceId p) {
  post_[t].push_back(p);
  places_[p].pre.push_back(t);
  maybe_index_implicit(p);
}

void Stg::connect_pt(PlaceId p, TransId t) {
  pre_[t].push_back(p);
  places_[p].post.push_back(t);
  maybe_index_implicit(p);
}

std::uint64_t Stg::tt_key(TransId from, TransId to) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(from)) << 32) |
         static_cast<std::uint32_t>(to);
}

void Stg::maybe_index_implicit(PlaceId p) {
  // Index any unnamed place with exactly one producer and one consumer —
  // regardless of whether it was wired by connect_tt or by hand — so the
  // connect_tt lookup below sees everything the old linear scan saw.
  const StgPlace& pl = places_[p];
  if (!pl.name.empty() || pl.pre.size() != 1 || pl.post.size() != 1) return;
  auto [slot, inserted] = tt_index_.emplace(tt_key(pl.pre[0], pl.post[0]), p);
  if (inserted || *slot == p) return;
  // Two candidates for the same (from, to): keep the earliest still-valid
  // place, matching the old scan's first-match behavior.
  const StgPlace& old = places_[*slot];
  const bool old_valid = old.name.empty() && old.pre.size() == 1 &&
                         old.post.size() == 1 && old.pre[0] == pl.pre[0] &&
                         old.post[0] == pl.post[0];
  if (!old_valid || p < *slot) *slot = p;
}

PlaceId Stg::connect_tt(TransId from, TransId to) {
  // Reuse an existing implicit place with exactly this connectivity.  The
  // index is maintained by connect_tp/connect_pt; a hit is re-validated in
  // case later arcs extended the place beyond the one-in/one-out shape.  A
  // key with no entry has never had a qualifying place, so a miss needs no
  // scan; a stale hit falls back to the scan because another still-valid
  // place may have been displaced from the slot earlier.
  if (PlaceId* hit = tt_index_.find(tt_key(from, to))) {
    const auto& pl = places_[*hit];
    if (pl.name.empty() && pl.pre.size() == 1 && pl.post.size() == 1 &&
        pl.pre[0] == from && pl.post[0] == to)
      return *hit;
    for (PlaceId p = 0; p < static_cast<PlaceId>(places_.size()); ++p) {
      const auto& cand = places_[p];
      if (cand.name.empty() && cand.pre.size() == 1 && cand.post.size() == 1 &&
          cand.pre[0] == from && cand.post[0] == to) {
        *hit = p;
        return p;
      }
    }
  }
  const PlaceId p = add_place();
  connect_tp(from, p);
  connect_pt(p, to);  // indexes p for the next lookup
  return p;
}

int Stg::find_signal(std::string_view name) const {
  for (std::size_t i = 0; i < signals_.size(); ++i)
    if (signals_[i].name == name) return static_cast<int>(i);
  return -1;
}

TransId Stg::find_transition(int signal, bool rising, int instance) const {
  for (TransId t = 0; t < static_cast<TransId>(transitions_.size()); ++t) {
    const auto& tr = transitions_[t];
    if (tr.signal == signal && tr.rising == rising && tr.instance == instance)
      return t;
  }
  return -1;
}

std::string Stg::transition_string(TransId t) const {
  const auto& tr = transitions_[t];
  std::string out = event_name(signals_[tr.signal].name, tr.rising);
  if (tr.instance != 1) out += "/" + std::to_string(tr.instance);
  return out;
}

namespace {

// Firing machinery for the token game.  Nets with at most 64 places (every
// benchmark family and all realistic specifications) keep the whole marking
// in one machine word, so enabledness and firing are single AND/XOR-class
// operations; wider nets fall back to a word-vector marking with sparse
// per-transition masks.

[[noreturn]] void throw_overflow(const Stg& stg, TransId t) {
  throw Error("Stg: net is not 1-safe (place overflow firing " +
              stg.transition_string(t) + ")");
}

/// Per-transition place masks for the one-word fast path.
struct SmallFire {
  using Marking = std::uint64_t;
  using Hash = U64Hash;

  std::vector<std::uint64_t> pre, post;
  /// Transitions whose postset lists a place twice can never fire 1-safely.
  std::vector<char> post_dup;

  explicit SmallFire(const Stg& stg) {
    const auto n = stg.num_transitions();
    pre.assign(n, 0);
    post.assign(n, 0);
    post_dup.assign(n, 0);
    for (TransId t = 0; t < static_cast<TransId>(n); ++t) {
      for (PlaceId p : stg.pre_places(t)) pre[t] |= std::uint64_t{1} << p;
      for (PlaceId p : stg.post_places(t)) {
        const std::uint64_t bit = std::uint64_t{1} << p;
        if (post[t] & bit) post_dup[t] = 1;
        post[t] |= bit;
      }
    }
  }

  static Marking initial_marking(const Stg& stg) {
    Marking init = 0;
    for (PlaceId p : stg.initial_marking()) {
      const std::uint64_t bit = std::uint64_t{1} << p;
      if (init & bit) throw Error("Stg: initial marking not 1-safe");
      init |= bit;
    }
    return init;
  }

  bool enabled(const Marking& m, TransId t) const {
    return pre[t] && (m & pre[t]) == pre[t];
  }

  /// Marking after firing `t`; throws if the result is not 1-safe.
  Marking successor(const Stg& stg, const Marking& m, TransId t) const {
    const std::uint64_t cleared = m & ~pre[t];
    if (post_dup[t] || (cleared & post[t])) throw_overflow(stg, t);
    return cleared | post[t];
  }
};

using WideMarking = std::vector<std::uint64_t>;

/// Sparse word masks for the wide path: only the words a transition touches.
struct WideFire {
  using Marking = WideMarking;
  using Hash = WordVecHash;

  struct WordMask {
    std::uint32_t word;
    std::uint64_t bits;
  };
  std::vector<std::vector<WordMask>> pre, post;
  std::vector<char> post_dup;

  static void add_bit(std::vector<WordMask>& masks, PlaceId p, bool* dup) {
    const std::uint32_t word = static_cast<std::uint32_t>(p) >> 6;
    const std::uint64_t bit = std::uint64_t{1} << (p & 63);
    for (auto& m : masks)
      if (m.word == word) {
        if (dup && (m.bits & bit)) *dup = true;
        m.bits |= bit;
        return;
      }
    masks.push_back(WordMask{word, bit});
  }

  explicit WideFire(const Stg& stg) {
    const auto n = stg.num_transitions();
    pre.resize(n);
    post.resize(n);
    post_dup.assign(n, 0);
    for (TransId t = 0; t < static_cast<TransId>(n); ++t) {
      for (PlaceId p : stg.pre_places(t)) add_bit(pre[t], p, nullptr);
      bool dup = false;
      for (PlaceId p : stg.post_places(t)) add_bit(post[t], p, &dup);
      post_dup[t] = dup;
    }
  }

  static Marking initial_marking(const Stg& stg) {
    Marking init((stg.num_places() + 63) / 64, 0);
    for (PlaceId p : stg.initial_marking()) {
      const std::uint64_t bit = std::uint64_t{1} << (p & 63);
      if (init[static_cast<std::size_t>(p) >> 6] & bit)
        throw Error("Stg: initial marking not 1-safe");
      init[static_cast<std::size_t>(p) >> 6] |= bit;
    }
    return init;
  }

  bool enabled(const Marking& m, TransId t) const {
    for (const auto& wm : pre[t])
      if ((m[wm.word] & wm.bits) != wm.bits) return false;
    return !pre[t].empty();
  }

  Marking successor(const Stg& stg, const Marking& m, TransId t) const {
    Marking next = m;
    for (const auto& wm : pre[t]) next[wm.word] &= ~wm.bits;
    for (const auto& wm : post[t]) {
      if (post_dup[t] || (next[wm.word] & wm.bits)) throw_overflow(stg, t);
      next[wm.word] |= wm.bits;
    }
    return next;
  }
};

/// Tracks inferred initial signal values during the token game.
class InitialValues {
 public:
  explicit InitialValues(const Stg& stg) : stg_(stg), value_(stg.num_signals(), -1) {}

  /// Record the constraint imposed by firing transition `t` in a state whose
  /// fired-signals mask is `mask`; throws on inconsistent labeling.
  void observe(TransId t, StateCode mask) {
    const auto& tr = stg_.transition(t);
    const int rel = static_cast<int>((mask >> tr.signal) & 1);
    const int required_initial = tr.rising ? rel : 1 - rel;
    if (value_[tr.signal] < 0) {
      value_[tr.signal] = required_initial;
      ++known_;
    } else if (value_[tr.signal] != required_initial) {
      throw Error("Stg: inconsistent labeling for signal " +
                  stg_.signal(tr.signal).name);
    }
  }

  int known() const { return known_; }

  StateCode code() const {
    StateCode out = 0;
    for (std::size_t i = 0; i < value_.size(); ++i)
      if (value_[i] == 1) out |= StateCode{1} << i;
    return out;
  }

 private:
  const Stg& stg_;
  std::vector<int> value_;
  int known_ = 0;
};

struct PendingArc {
  StateId from, to;
  Event event;
};

template <typename Fire>
struct GameResult {
  struct Node {
    typename Fire::Marking marking;
    StateCode mask;  ///< XOR of fired signals relative to the initial state
  };
  std::vector<Node> nodes;
  std::vector<PendingArc> arcs;
  InitialValues initial;
};

/// The token game: depth-first exploration from the initial marking with a
/// flat-hash marking store.  Shared by full reachability (record_arcs) and
/// initial-code inference (`stop` ends exploration early once the caller has
/// what it needs).  Throws on 1-safety violations, inconsistent labeling,
/// markings reached under two signal codes, and state explosion.
template <typename Fire, typename StopFn>
GameResult<Fire> token_game(const Stg& stg, const Fire& fire,
                            std::size_t max_states, bool record_arcs,
                            StopFn&& stop, const RunGuard* guard = nullptr) {
  GameResult<Fire> result{{}, {}, InitialValues(stg)};
  auto& nodes = result.nodes;
  using Node = typename GameResult<Fire>::Node;

  FlatMap<typename Fire::Marking, StateId, typename Fire::Hash> ids(256);
  typename Fire::Marking init = Fire::initial_marking(stg);
  nodes.push_back(Node{init, 0});
  ids.emplace(std::move(init), 0);
  std::vector<StateId> queue{0};

  const auto n_trans = static_cast<TransId>(stg.num_transitions());
  while (!queue.empty() && !stop(result.initial)) {
    const StateId sid = queue.back();
    queue.pop_back();
    const Node node = nodes[sid];  // copy: nodes may reallocate

    for (TransId t = 0; t < n_trans; ++t) {
      if (!fire.enabled(node.marking, t)) continue;

      result.initial.observe(t, node.mask);

      typename Fire::Marking next = fire.successor(stg, node.marking, t);
      const StateCode next_mask =
          node.mask ^ (StateCode{1} << stg.transition(t).signal);

      auto [slot, inserted] =
          ids.emplace(next, static_cast<StateId>(nodes.size()));
      if (inserted) {
        if (nodes.size() >= max_states)
          throw GuardExhausted(GuardStop::kBudget, "stg.to_state_graph",
                               nodes.size(), max_states);
        fault::hit("stg.to_state_graph");
        guard_charge(guard, 1, "stg.to_state_graph");
        nodes.push_back(Node{std::move(next), next_mask});
        queue.push_back(*slot);
      } else if (nodes[*slot].mask != next_mask) {
        throw Error("Stg: marking reached with two different signal codes");
      }
      if (record_arcs)
        result.arcs.push_back(PendingArc{sid, *slot, stg.transition(t).event()});
    }
  }
  return result;
}

/// Emit the collected reachability data as a StateGraph.
template <typename Fire>
StateGraph emit_state_graph(const Stg& stg, const GameResult<Fire>& game) {
  const StateCode init_code = game.initial.code();
  StateGraph sg;
  for (const auto& sig : stg.signals()) sg.add_signal(sig.name, sig.kind);
  for (const auto& node : game.nodes) sg.add_state(init_code ^ node.mask);
  for (const auto& arc : game.arcs) {
    // Self-loops in code space are impossible by construction; duplicate
    // arcs (same from/event) collapse naturally in the SG representation.
    sg.add_arc(arc.from, arc.event, arc.to);
  }
  sg.set_initial(0);
  return sg;
}

constexpr auto kNeverStop = [](const InitialValues&) { return false; };

}  // namespace

StateGraph Stg::to_state_graph(std::size_t max_states,
                               const RunGuard* guard) const {
  if (initial_marking_.empty()) throw Error("Stg: empty initial marking");
  if (places_.size() <= 64)
    return emit_state_graph(
        *this, token_game(*this, SmallFire(*this), max_states, true, kNeverStop,
                          guard));
  return emit_state_graph(
      *this,
      token_game(*this, WideFire(*this), max_states, true, kNeverStop, guard));
}

StateCode Stg::infer_initial_code() const {
  if (initial_marking_.empty()) throw Error("Stg: empty initial marking");

  // Stop the token game as soon as every signal with at least one
  // transition has a known initial value (signals without transitions
  // stay 0, exactly as in the full game).
  int signals_with_transitions = 0;
  {
    std::uint64_t seen = 0;
    for (const auto& tr : transitions_) seen |= std::uint64_t{1} << tr.signal;
    signals_with_transitions = __builtin_popcountll(seen);
  }
  const auto all_known = [&](const InitialValues& iv) {
    return iv.known() >= signals_with_transitions;
  };

  if (places_.size() <= 64)
    return token_game(*this, SmallFire(*this), kDefaultMaxStates, false,
                      all_known)
        .initial.code();
  return token_game(*this, WideFire(*this), kDefaultMaxStates, false, all_known)
      .initial.code();
}

}  // namespace sitm
