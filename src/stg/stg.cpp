#include "stg/stg.hpp"

#include <algorithm>
#include <map>

#include "util/error.hpp"
#include "util/text.hpp"

namespace sitm {

int Stg::add_signal(std::string name, SignalKind kind) {
  if (signals_.size() >= 64) throw Error("Stg: more than 64 signals");
  if (find_signal(name) >= 0) throw Error("Stg: duplicate signal '" + name + "'");
  signals_.push_back(Signal{std::move(name), kind});
  return static_cast<int>(signals_.size()) - 1;
}

TransId Stg::add_transition(int signal, bool rising, int instance) {
  if (signal < 0 || signal >= num_signals())
    throw Error("Stg: transition with unknown signal");
  transitions_.push_back(StgTransition{signal, rising, instance});
  pre_.emplace_back();
  post_.emplace_back();
  return static_cast<TransId>(transitions_.size()) - 1;
}

PlaceId Stg::add_place(std::string name) {
  places_.push_back(StgPlace{std::move(name), {}, {}});
  return static_cast<PlaceId>(places_.size()) - 1;
}

void Stg::connect_tp(TransId t, PlaceId p) {
  post_[t].push_back(p);
  places_[p].pre.push_back(t);
}

void Stg::connect_pt(PlaceId p, TransId t) {
  pre_[t].push_back(p);
  places_[p].post.push_back(t);
}

PlaceId Stg::connect_tt(TransId from, TransId to) {
  // Reuse an existing implicit place with exactly this connectivity.
  for (PlaceId p = 0; p < static_cast<PlaceId>(places_.size()); ++p) {
    const auto& pl = places_[p];
    if (pl.name.empty() && pl.pre.size() == 1 && pl.post.size() == 1 &&
        pl.pre[0] == from && pl.post[0] == to)
      return p;
  }
  const PlaceId p = add_place();
  connect_tp(from, p);
  connect_pt(p, to);
  return p;
}

int Stg::find_signal(std::string_view name) const {
  for (std::size_t i = 0; i < signals_.size(); ++i)
    if (signals_[i].name == name) return static_cast<int>(i);
  return -1;
}

TransId Stg::find_transition(int signal, bool rising, int instance) const {
  for (TransId t = 0; t < static_cast<TransId>(transitions_.size()); ++t) {
    const auto& tr = transitions_[t];
    if (tr.signal == signal && tr.rising == rising && tr.instance == instance)
      return t;
  }
  return -1;
}

std::string Stg::transition_string(TransId t) const {
  const auto& tr = transitions_[t];
  std::string out = event_name(signals_[tr.signal].name, tr.rising);
  if (tr.instance != 1) out += "/" + std::to_string(tr.instance);
  return out;
}

namespace {

using Marking = std::vector<std::uint64_t>;

Marking make_marking(std::size_t places) {
  return Marking((places + 63) / 64, 0);
}
bool marked(const Marking& m, PlaceId p) {
  return (m[static_cast<std::size_t>(p) >> 6] >> (p & 63)) & 1u;
}
void set_token(Marking& m, PlaceId p, bool v) {
  const std::uint64_t bit = std::uint64_t{1} << (p & 63);
  if (v)
    m[static_cast<std::size_t>(p) >> 6] |= bit;
  else
    m[static_cast<std::size_t>(p) >> 6] &= ~bit;
}

}  // namespace

StateGraph Stg::to_state_graph(std::size_t max_states) const {
  if (initial_marking_.empty()) throw Error("Stg: empty initial marking");

  Marking init = make_marking(places_.size());
  for (PlaceId p : initial_marking_) {
    if (marked(init, p)) throw Error("Stg: initial marking not 1-safe");
    set_token(init, p, true);
  }

  struct Node {
    Marking marking;
    StateCode mask;  ///< XOR of fired signals relative to the initial state
  };
  std::map<Marking, StateId> ids;
  std::vector<Node> nodes;
  struct PendingArc {
    StateId from, to;
    Event event;
  };
  std::vector<PendingArc> arcs;

  // initial_value[sig]: -1 unknown, else 0/1.
  std::vector<int> initial_value(signals_.size(), -1);

  nodes.push_back(Node{init, 0});
  ids.emplace(init, 0);
  std::vector<StateId> queue{0};

  while (!queue.empty()) {
    const StateId sid = queue.back();
    queue.pop_back();
    const Node node = nodes[sid];  // copy: nodes may reallocate

    for (TransId t = 0; t < static_cast<TransId>(transitions_.size()); ++t) {
      bool enabled = true;
      for (PlaceId p : pre_[t])
        if (!marked(node.marking, p)) {
          enabled = false;
          break;
        }
      if (!enabled || pre_[t].empty()) continue;

      const auto& tr = transitions_[t];
      // Consistency: value of the signal before firing is mask-relative.
      const int rel = static_cast<int>((node.mask >> tr.signal) & 1);
      const int required_initial = tr.rising ? rel : 1 - rel;
      if (initial_value[tr.signal] < 0) {
        initial_value[tr.signal] = required_initial;
      } else if (initial_value[tr.signal] != required_initial) {
        throw Error("Stg: inconsistent labeling for signal " +
                    signals_[tr.signal].name);
      }

      Marking next = node.marking;
      for (PlaceId p : pre_[t]) set_token(next, p, false);
      for (PlaceId p : post_[t]) {
        if (marked(next, p))
          throw Error("Stg: net is not 1-safe (place overflow firing " +
                      transition_string(t) + ")");
        set_token(next, p, true);
      }
      const StateCode next_mask = node.mask ^ (StateCode{1} << tr.signal);

      auto [it, inserted] =
          ids.emplace(next, static_cast<StateId>(nodes.size()));
      if (inserted) {
        if (nodes.size() >= max_states)
          throw Error("Stg: state explosion beyond max_states");
        nodes.push_back(Node{std::move(next), next_mask});
        queue.push_back(it->second);
      } else if (nodes[it->second].mask != next_mask) {
        throw Error("Stg: marking reached with two different signal codes");
      }
      arcs.push_back(PendingArc{sid, it->second, tr.event()});
    }
  }

  StateCode init_code = 0;
  for (std::size_t i = 0; i < signals_.size(); ++i)
    if (initial_value[i] == 1) init_code |= StateCode{1} << i;

  StateGraph sg;
  for (const auto& sig : signals_) sg.add_signal(sig.name, sig.kind);
  for (const auto& node : nodes) sg.add_state(init_code ^ node.mask);
  for (const auto& arc : arcs) {
    // Self-loops in code space are impossible by construction; duplicate
    // arcs (same from/event) collapse naturally in the SG representation.
    sg.add_arc(arc.from, arc.event, arc.to);
  }
  sg.set_initial(0);
  return sg;
}

StateCode Stg::infer_initial_code() const {
  // Delegate to the token game; cheap at benchmark sizes.
  const StateGraph sg = to_state_graph();
  return sg.code(sg.initial());
}

}  // namespace sitm
