#include "stg/lint.hpp"

#include <algorithm>
#include <utility>

namespace sitm {

namespace {

constexpr const char* kRuleNames[kNumLintRules] = {
    "alternation",   "dangling-arc",   "duplicate-arc",        "unreachable",
    "idle-input",    "unsafe-marking", "unconstrained-output",
};

const char* signal_role(SignalKind kind) {
  switch (kind) {
    case SignalKind::kInput: return "input";
    case SignalKind::kOutput: return "output";
    case SignalKind::kInternal: return "internal";
  }
  return "?";
}

}  // namespace

const char* lint_rule_name(LintRule rule) {
  return kRuleNames[static_cast<int>(rule)];
}

const char* lint_severity_name(LintSeverity severity) {
  return severity == LintSeverity::kError ? "error" : "warning";
}

bool LintReport::has(LintRule rule) const {
  return std::any_of(diagnostics.begin(), diagnostics.end(),
                     [rule](const LintDiagnostic& d) { return d.rule == rule; });
}

std::string LintReport::first_error() const {
  for (const auto& d : diagnostics)
    if (d.severity == LintSeverity::kError) return "lint: " + d.message;
  return {};
}

void LintReport::add(LintRule rule, LintSeverity severity, std::string subject,
                     std::string message) {
  (severity == LintSeverity::kError ? errors : warnings) += 1;
  diagnostics.push_back(LintDiagnostic{rule, severity, std::move(subject),
                                       std::move(message)});
}

Json LintReport::to_json() const {
  Json j = Json::object();
  j.set("ok", ok());
  j.set("errors", errors);
  j.set("warnings", warnings);
  Json ds = Json::array();
  for (const auto& d : diagnostics) {
    Json dj = Json::object();
    dj.set("rule", lint_rule_name(d.rule));
    dj.set("severity", lint_severity_name(d.severity));
    if (!d.subject.empty()) dj.set("subject", d.subject);
    dj.set("message", d.message);
    ds.push(std::move(dj));
  }
  j.set("diagnostics", std::move(ds));
  return j;
}

LintReport lint_stg(const Stg& stg) {
  LintReport report;
  const int num_signals = stg.num_signals();
  const auto num_trans = static_cast<TransId>(stg.num_transitions());
  const auto num_places = static_cast<PlaceId>(stg.num_places());

  auto place_name = [&](PlaceId p) {
    const auto& pl = stg.place(p);
    return pl.name.empty() ? "<implicit p" + std::to_string(p) + ">" : pl.name;
  };

  // --- alternation: per-signal edge polarities ---------------------------
  std::vector<int> rising(static_cast<std::size_t>(num_signals), 0);
  std::vector<int> falling(static_cast<std::size_t>(num_signals), 0);
  for (TransId t = 0; t < num_trans; ++t) {
    const StgTransition& tr = stg.transition(t);
    (tr.rising ? rising : falling)[static_cast<std::size_t>(tr.signal)] += 1;
  }
  for (int s = 0; s < num_signals; ++s) {
    const auto si = static_cast<std::size_t>(s);
    if ((rising[si] > 0) == (falling[si] > 0)) continue;
    const char* has = rising[si] > 0 ? "rising" : "falling";
    const char* missing = rising[si] > 0 ? "falling" : "rising";
    report.add(LintRule::kAlternation, LintSeverity::kError,
               stg.signal(s).name,
               "signal '" + stg.signal(s).name + "' has " +
                   std::to_string(rising[si] + falling[si]) + " " + has +
                   " transition(s) but no " + missing +
                   " transition: it can never alternate back");
  }

  // --- alternation: direct same-polarity succession through one place ----
  // A place whose producer and consumer are edges of the same signal with
  // the same polarity chains a+ ... a+ with no a- forced in between; unless
  // some concurrent a- always interleaves, the labeling is inconsistent.
  std::vector<std::pair<TransId, TransId>> chained;
  for (PlaceId p = 0; p < num_places; ++p) {
    const StgPlace& pl = stg.place(p);
    for (const TransId t1 : pl.pre)
      for (const TransId t2 : pl.post) {
        const StgTransition& a = stg.transition(t1);
        const StgTransition& b = stg.transition(t2);
        if (a.signal != b.signal || a.rising != b.rising) continue;
        if (std::find(chained.begin(), chained.end(),
                      std::make_pair(t1, t2)) != chained.end())
          continue;
        chained.emplace_back(t1, t2);
        report.add(LintRule::kAlternation, LintSeverity::kWarning,
                   stg.transition_string(t1),
                   "place '" + place_name(p) + "' chains " +
                       stg.transition_string(t1) + " directly into " +
                       stg.transition_string(t2) +
                       " without the opposite edge in between");
      }
  }

  // --- dangling arcs ------------------------------------------------------
  for (TransId t = 0; t < num_trans; ++t) {
    if (stg.pre_places(t).empty())
      report.add(LintRule::kDanglingArc, LintSeverity::kError,
                 stg.transition_string(t),
                 "transition " + stg.transition_string(t) +
                     " has no input places: it is enabled forever and the "
                     "net cannot be 1-safe");
    if (stg.post_places(t).empty())
      report.add(LintRule::kDanglingArc, LintSeverity::kWarning,
                 stg.transition_string(t),
                 "transition " + stg.transition_string(t) +
                     " has no output places: its tokens vanish and the net "
                     "cannot be live");
  }
  for (PlaceId p = 0; p < num_places; ++p) {
    const StgPlace& pl = stg.place(p);
    if (pl.pre.empty() && pl.post.empty())
      report.add(LintRule::kDanglingArc, LintSeverity::kWarning, place_name(p),
                 "place '" + place_name(p) +
                     "' is connected to no transition");
  }

  // --- duplicate arcs -----------------------------------------------------
  for (TransId t = 0; t < num_trans; ++t) {
    auto dup_in = [&](const std::vector<PlaceId>& places, const char* dir) {
      std::vector<PlaceId> sorted(places);
      std::sort(sorted.begin(), sorted.end());
      for (std::size_t i = 1; i < sorted.size(); ++i)
        if (sorted[i] == sorted[i - 1] && (i == 1 || sorted[i] != sorted[i - 2]))
          report.add(LintRule::kDuplicateArc, LintSeverity::kError,
                     stg.transition_string(t),
                     std::string("duplicate ") + dir + " arc between place '" +
                         place_name(sorted[i]) + "' and transition " +
                         stg.transition_string(t) +
                         ": firing would need/produce two tokens in a 1-safe "
                         "net");
    };
    dup_in(stg.pre_places(t), "place->transition");
    dup_in(stg.post_places(t), "transition->place");
  }

  // --- unsafe marking hints ----------------------------------------------
  const auto& marking = stg.initial_marking();
  if (marking.empty() && num_trans > 0)
    report.add(LintRule::kUnsafeMarking, LintSeverity::kError, "",
               "initial marking is empty: no transition can ever fire");
  {
    std::vector<PlaceId> sorted(marking);
    std::sort(sorted.begin(), sorted.end());
    for (std::size_t i = 1; i < sorted.size(); ++i)
      if (sorted[i] == sorted[i - 1] && (i == 1 || sorted[i] != sorted[i - 2]))
        report.add(LintRule::kUnsafeMarking, LintSeverity::kError,
                   place_name(sorted[i]),
                   "place '" + place_name(sorted[i]) +
                       "' is marked twice: the net starts outside the 1-safe "
                       "regime");
  }

  // --- unreachable transitions (optimistic token-flow closure) -----------
  // Places reachable := initial marking; a transition fires once all its
  // input places are reachable (token counts ignored — this optimism makes
  // the check sound: what even the closure cannot fire is dead for real).
  {
    std::vector<char> place_reached(static_cast<std::size_t>(num_places), 0);
    for (const PlaceId p : marking)
      place_reached[static_cast<std::size_t>(p)] = 1;
    std::vector<char> fired(static_cast<std::size_t>(num_trans), 0);
    bool changed = true;
    while (changed) {
      changed = false;
      for (TransId t = 0; t < num_trans; ++t) {
        if (fired[static_cast<std::size_t>(t)]) continue;
        const auto& pre = stg.pre_places(t);
        const bool enabled = std::all_of(
            pre.begin(), pre.end(), [&](PlaceId p) {
              return place_reached[static_cast<std::size_t>(p)] != 0;
            });
        if (!enabled) continue;
        fired[static_cast<std::size_t>(t)] = 1;
        changed = true;
        for (const PlaceId p : stg.post_places(t))
          place_reached[static_cast<std::size_t>(p)] = 1;
      }
    }
    for (TransId t = 0; t < num_trans; ++t)
      if (!fired[static_cast<std::size_t>(t)])
        report.add(LintRule::kUnreachable, LintSeverity::kError,
                   stg.transition_string(t),
                   "transition " + stg.transition_string(t) +
                       " can never fire from the initial marking");
  }

  // --- idle inputs / unconstrained outputs -------------------------------
  for (int s = 0; s < num_signals; ++s) {
    const auto si = static_cast<std::size_t>(s);
    const bool has_edges = rising[si] + falling[si] > 0;
    const Signal& sig = stg.signal(s);
    if (sig.kind == SignalKind::kInput) {
      if (!has_edges)
        report.add(LintRule::kIdleInput, LintSeverity::kWarning, sig.name,
                   "input signal '" + sig.name + "' has no transitions");
      continue;
    }
    if (!has_edges) {
      report.add(LintRule::kUnconstrainedOutput, LintSeverity::kWarning,
                 sig.name,
                 std::string(signal_role(sig.kind)) + " signal '" + sig.name +
                     "' has no transitions: it is never produced");
      continue;
    }
    // Constrained = some transition of this signal is triggered (through a
    // place) by a transition of a *different* signal.
    bool constrained = false;
    for (TransId t = 0; t < num_trans && !constrained; ++t) {
      if (stg.transition(t).signal != s) continue;
      for (const PlaceId p : stg.pre_places(t)) {
        for (const TransId producer : stg.place(p).pre)
          if (stg.transition(producer).signal != s) {
            constrained = true;
            break;
          }
        if (constrained) break;
      }
    }
    if (!constrained)
      report.add(LintRule::kUnconstrainedOutput, LintSeverity::kWarning,
                 sig.name,
                 std::string(signal_role(sig.kind)) + " signal '" + sig.name +
                     "' is never constrained by another signal's transitions");
  }

  return report;
}

LintReport lint_state_graph(const StateGraph& sg) {
  LintReport report;
  std::vector<char> used(static_cast<std::size_t>(sg.num_signals()), 0);
  for (StateId s = 0; s < static_cast<StateId>(sg.num_states()); ++s) {
    if (sg.succs(s).empty())
      report.add(LintRule::kDanglingArc, LintSeverity::kWarning,
                 "s" + std::to_string(s),
                 "state s" + std::to_string(s) +
                     " has no successors: the graph deadlocks there");
    for (const auto& e : sg.succs(s))
      used[static_cast<std::size_t>(e.event.signal)] = 1;
  }
  for (int s = 0; s < sg.num_signals(); ++s) {
    if (used[static_cast<std::size_t>(s)]) continue;
    const Signal& sig = sg.signal(s);
    if (sig.kind == SignalKind::kInput)
      report.add(LintRule::kIdleInput, LintSeverity::kWarning, sig.name,
                 "input signal '" + sig.name + "' labels no arc");
    else
      report.add(LintRule::kUnconstrainedOutput, LintSeverity::kWarning,
                 sig.name,
                 std::string(signal_role(sig.kind)) + " signal '" + sig.name +
                     "' labels no arc: it is never produced");
  }
  return report;
}

LintReport lint_spec(const Spec& spec) {
  if (spec.stg) return lint_stg(*spec.stg);
  if (spec.sg) return lint_state_graph(*spec.sg);
  return {};
}

}  // namespace sitm
