#pragma once
// Reader/writer for the astg ".g" format used by SIS and petrify:
//
//   .model name
//   .inputs a b
//   .outputs c
//   .graph
//   a+ c+ b+        # arcs from node a+ to nodes c+ and b+
//   p0 a+           # explicit place p0 -> transition a+
//   c+ p0
//   .marking { p0 <a+,b+> }
//   .end
//
// Transition tokens are <signal>(+|-)[/instance]; any other token in the
// graph section denotes an explicit place.  Implicit places are written as
// <t1,t2> in the marking.  Dummy transitions are not supported.

#include <iosfwd>
#include <string>

#include "stg/stg.hpp"

namespace sitm {

Stg read_g(std::istream& in, std::string* name = nullptr);
Stg read_g_string(const std::string& text, std::string* name = nullptr);

void write_g(std::ostream& out, const Stg& stg, const std::string& name = "stg");
std::string write_g_string(const Stg& stg, const std::string& name = "stg");

}  // namespace sitm
