#pragma once
// Symbolic (BDD-based) analysis of STGs.
//
// Markings of the 1-safe net are encoded with one BDD variable per place;
// reachability is computed by iterating the per-transition image until a
// fixed point.  At benchmark sizes the explicit token game is faster, but
// the symbolic engine scales past state explosion (highly concurrent nets)
// and serves as an independent cross-check of the explicit engine in the
// test suite.

#include <cstdint>

#include "bdd/bdd.hpp"
#include "stg/stg.hpp"
#include "util/run_guard.hpp"

namespace sitm {

struct SymbolicReachability {
  /// Number of reachable markings.
  double num_markings = 0;
  /// BDD node count of the reachable-set characteristic function.
  std::size_t bdd_size = 0;
  /// Fixed-point iterations executed.
  int iterations = 0;
  /// True if some reachable marking enables no transition.
  bool has_deadlock = false;
};

/// Symbolic reachability of `stg` (requires <= 64 places).
/// Throws sitm::Error if the initial marking is empty or the net overflows
/// the variable budget; 1-safety violations make the image empty rather than
/// being diagnosed (use the explicit engine for diagnosis).
SymbolicReachability symbolic_reachability(const Stg& stg);

/// As above, but on a caller-owned manager (must be sized to exactly one
/// variable per place).  The flow context owns the manager so the reachable
/// set and the unique/ITE tables stay alive for later inspection instead of
/// being torn down when the stage returns.  `guard` (optional) is polled
/// once per transition image of the fixed-point sweep, so a deadline or
/// budget bounds the symbolic engine too (GuardExhausted on exhaustion).
SymbolicReachability symbolic_reachability(const Stg& stg, BddManager& mgr,
                                           const RunGuard* guard = nullptr);

}  // namespace sitm
