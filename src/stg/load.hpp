#pragma once
// Shared specification loader: one place that slurps a file and sniffs
// whether it is an astg ".g" Signal Transition Graph or an explicit ".sg"
// State Graph, replacing the copies of this logic that used to live in the
// CLI and every example.  The flow's load stage is built on it.

#include <optional>
#include <string>

#include "sg/state_graph.hpp"
#include "stg/stg.hpp"

namespace sitm {

/// On-disk specification formats.  kAuto sniffs from the file extension and,
/// failing that, from the text itself.
enum class SpecFormat { kAuto, kG, kSg };

const char* spec_format_name(SpecFormat format);

/// A parsed specification, before reachability.  Exactly one of `stg` (for
/// .g input, whose state graph still has to be computed by the token game)
/// and `sg` (for .sg input, already explicit) is set.
struct Spec {
  std::string name = "spec";
  std::string path;  ///< source file; empty for in-memory text
  SpecFormat format = SpecFormat::kG;  ///< resolved format, never kAuto
  std::optional<Stg> stg;
  std::optional<StateGraph> sg;
};

/// Read a whole file; throws sitm::Error when it cannot be opened.
std::string slurp_file(const std::string& path);

/// Resolve kAuto: ".sg" extension or an ".initial" directive in the text
/// selects the State Graph format, everything else parses as astg ".g".
SpecFormat sniff_spec_format(const std::string& path, const std::string& text);

/// Parse `text` (with `path` used only for format sniffing and messages).
Spec load_spec_string(const std::string& text,
                      SpecFormat format = SpecFormat::kAuto,
                      const std::string& path = "");

/// Slurp + parse one file.
Spec load_spec_file(const std::string& path,
                    SpecFormat format = SpecFormat::kAuto);

}  // namespace sitm
