#include "stg/g_io.hpp"

#include <istream>
#include <map>
#include <ostream>
#include <sstream>

#include "util/error.hpp"
#include "util/text.hpp"

namespace sitm {

namespace {

struct TransRef {
  std::string signal;
  bool rising = true;
  int instance = 1;
};

/// Try to parse "sig+", "sig-", "sig+/2"; returns false for place tokens.
bool parse_transition_token(std::string_view token, TransRef* out) {
  std::string_view body = token;
  int instance = 1;
  if (const auto slash = token.rfind('/'); slash != std::string_view::npos) {
    const auto inst = token.substr(slash + 1);
    if (inst.empty()) return false;
    instance = 0;
    for (char c : inst) {
      if (c < '0' || c > '9') return false;
      // Cap the instance index: an unbounded accumulate is signed overflow
      // (UB) on adversarial input like "a+/99999999999999999999".
      if (instance > 1000000)
        throw Error("transition instance out of range: " +
                    std::string(token));
      instance = instance * 10 + (c - '0');
    }
    body = token.substr(0, slash);
  }
  if (body.size() < 2) return false;
  const char polarity = body.back();
  if (polarity != '+' && polarity != '-') return false;
  out->signal = std::string(body.substr(0, body.size() - 1));
  out->rising = polarity == '+';
  out->instance = instance;
  return true;
}

}  // namespace

Stg read_g(std::istream& in, std::string* name) {
  Stg stg;
  std::map<std::string, PlaceId, std::less<>> places;
  bool in_graph = false;
  struct MarkingToken {
    std::string token;
    int line = 0;
  };
  std::vector<MarkingToken> marking_tokens;
  int line_no = 0;

  std::string line;
  // 1-based column of a token that is a view into `line`.
  auto col_of = [&](std::string_view token) {
    return static_cast<int>(token.data() - line.data()) + 1;
  };

  // Node handle: a transition id or an explicit place id.
  struct NodeRef {
    bool is_place = false;
    int id = -1;
  };
  auto resolve = [&](std::string_view token) -> NodeRef {
    TransRef tr;
    if (parse_transition_token(token, &tr)) {
      const int sig = stg.find_signal(tr.signal);
      if (sig < 0)
        throw ParseError(
            ".g: transition of undeclared signal: " + std::string(token),
            line_no, col_of(token));
      TransId t = stg.find_transition(sig, tr.rising, tr.instance);
      if (t < 0) t = stg.add_transition(sig, tr.rising, tr.instance);
      return NodeRef{false, t};
    }
    auto it = places.find(token);
    if (it == places.end()) {
      const PlaceId p = stg.add_place(std::string(token));
      it = places.emplace(std::string(token), p).first;
    }
    return NodeRef{true, it->second};
  };

  while (std::getline(in, line)) {
    ++line_no;
    const auto text = trim(line);
    if (text.empty() || text[0] == '#') continue;
    auto tokens = split_ws(text);
    const auto& head = tokens[0];
    if (head == ".model" || head == ".name") {
      if (name && tokens.size() > 1) *name = std::string(tokens[1]);
    } else if (head == ".inputs" || head == ".outputs" || head == ".internal") {
      const SignalKind kind = head == ".inputs"    ? SignalKind::kInput
                              : head == ".outputs" ? SignalKind::kOutput
                                                   : SignalKind::kInternal;
      for (std::size_t i = 1; i < tokens.size(); ++i)
        stg.add_signal(std::string(tokens[i]), kind);
    } else if (head == ".dummy") {
      throw ParseError(".g reader: dummy transitions are not supported",
                       line_no, col_of(head));
    } else if (head == ".graph") {
      in_graph = true;
    } else if (head == ".marking") {
      std::string rest(text.substr(head.size()));
      for (char& c : rest)
        if (c == '{' || c == '}') c = ' ';
      for (auto tok : split_ws(rest))
        marking_tokens.push_back({std::string(tok), line_no});
    } else if (head == ".end") {
      break;
    } else if (head[0] == '.') {
      // Ignore unknown directives (.coords, .capacity, ...).
    } else if (in_graph) {
      if (tokens.size() < 2)
        throw ParseError(".g graph line needs >= 2 tokens: " + line, line_no);
      const NodeRef src = resolve(tokens[0]);
      for (std::size_t i = 1; i < tokens.size(); ++i) {
        const NodeRef dst = resolve(tokens[i]);
        if (!src.is_place && !dst.is_place) {
          stg.connect_tt(src.id, dst.id);
        } else if (!src.is_place && dst.is_place) {
          stg.connect_tp(src.id, dst.id);
        } else if (src.is_place && !dst.is_place) {
          stg.connect_pt(src.id, dst.id);
        } else {
          throw ParseError(".g: place-to-place arc not allowed: " + line,
                           line_no, col_of(tokens[i]));
        }
      }
    } else {
      throw ParseError(".g: unexpected line: " + line, line_no);
    }
  }

  // Marking: explicit places by name, implicit places as <t1,t2>.
  for (const auto& [token, token_line] : marking_tokens) {
    if (token.front() == '<') {
      if (token.back() != '>')
        throw ParseError(".g: bad marking token " + token, token_line);
      const auto comma = token.find(',');
      if (comma == std::string::npos)
        throw ParseError(".g: bad implicit place " + token, token_line);
      auto trans_of = [&, token_line = token_line](std::string_view t) -> TransId {
        TransRef tr;
        if (!parse_transition_token(t, &tr))
          throw ParseError(".g: bad transition in marking: " + std::string(t),
                           token_line);
        const int sig = stg.find_signal(tr.signal);
        const TransId id =
            sig < 0 ? -1 : stg.find_transition(sig, tr.rising, tr.instance);
        if (id < 0)
          throw ParseError(
              ".g: unknown transition in marking: " + std::string(t),
              token_line);
        return id;
      };
      const TransId from = trans_of(token.substr(1, comma - 1));
      const TransId to =
          trans_of(token.substr(comma + 1, token.size() - comma - 2));
      stg.mark_initial(stg.connect_tt(from, to));
    } else {
      auto it = places.find(token);
      if (it == places.end())
        throw ParseError(".g: unknown place in marking: " + token, token_line);
      stg.mark_initial(it->second);
    }
  }
  return stg;
}

Stg read_g_string(const std::string& text, std::string* name) {
  std::istringstream in(text);
  return read_g(in, name);
}

void write_g(std::ostream& out, const Stg& stg, const std::string& name) {
  out << ".model " << name << "\n";
  auto emit_kind = [&](const char* head, SignalKind kind) {
    bool any = false;
    for (const auto& sig : stg.signals())
      if (sig.kind == kind) {
        if (!any) out << head;
        any = true;
        out << ' ' << sig.name;
      }
    if (any) out << "\n";
  };
  emit_kind(".inputs", SignalKind::kInput);
  emit_kind(".outputs", SignalKind::kOutput);
  emit_kind(".internal", SignalKind::kInternal);
  out << ".graph\n";

  auto place_name = [&](PlaceId p) {
    const auto& pl = stg.place(p);
    return pl.name.empty() ? "ip" + std::to_string(p) : pl.name;
  };

  // Transition -> transition shorthands for implicit places; everything else
  // through named places.
  for (TransId t = 0; t < static_cast<TransId>(stg.num_transitions()); ++t) {
    std::string line = stg.transition_string(t);
    bool any = false;
    for (PlaceId p : stg.post_places(t)) {
      const auto& pl = stg.place(p);
      if (pl.name.empty() && pl.pre.size() == 1 && pl.post.size() == 1) {
        line += ' ' + stg.transition_string(pl.post[0]);
        any = true;
      }
    }
    if (any) out << line << "\n";
  }
  for (PlaceId p = 0; p < static_cast<PlaceId>(stg.num_places()); ++p) {
    const auto& pl = stg.place(p);
    const bool implicit =
        pl.name.empty() && pl.pre.size() == 1 && pl.post.size() == 1;
    if (implicit) continue;
    for (TransId t : pl.pre)
      out << stg.transition_string(t) << ' ' << place_name(p) << "\n";
    if (!pl.post.empty()) {
      out << place_name(p);
      for (TransId t : pl.post) out << ' ' << stg.transition_string(t);
      out << "\n";
    }
  }

  out << ".marking {";
  for (PlaceId p : stg.initial_marking()) {
    const auto& pl = stg.place(p);
    if (pl.name.empty() && pl.pre.size() == 1 && pl.post.size() == 1) {
      out << " <" << stg.transition_string(pl.pre[0]) << ','
          << stg.transition_string(pl.post[0]) << '>';
    } else {
      out << ' ' << place_name(p);
    }
  }
  out << " }\n.end\n";
}

std::string write_g_string(const Stg& stg, const std::string& name) {
  std::ostringstream out;
  write_g(out, stg, name);
  return out.str();
}

}  // namespace sitm
