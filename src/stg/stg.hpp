#pragma once
// Signal Transition Graphs: 1-safe labeled Petri nets whose transitions are
// signal edges (a+/a-).  STGs are the front-end specification language; the
// mapping flow itself works on the State Graph obtained by reachability
// analysis (token game).

#include <string>
#include <vector>

#include "sg/signal.hpp"
#include "sg/state_graph.hpp"
#include "util/flat_map.hpp"
#include "util/run_guard.hpp"

namespace sitm {

/// Index types inside an Stg.
using TransId = int;
using PlaceId = int;

/// A labeled transition: instance `instance` of edge sig+/sig- (instances
/// distinguish multiple occurrences of the same edge, "a+/2" in .g files).
struct StgTransition {
  int signal = -1;
  bool rising = true;
  int instance = 1;
  Event event() const { return Event{signal, rising}; }
};

/// A place; `name` is empty for implicit places created between two
/// transitions by the .g shorthand "t1 t2".
struct StgPlace {
  std::string name;
  std::vector<TransId> pre;   ///< transitions producing into this place
  std::vector<TransId> post;  ///< transitions consuming from this place
};

/// Signal Transition Graph (1-safe labeled Petri net).
class Stg {
 public:
  int add_signal(std::string name, SignalKind kind);
  TransId add_transition(int signal, bool rising, int instance = 1);
  PlaceId add_place(std::string name = {});
  /// Arc transition -> place.
  void connect_tp(TransId t, PlaceId p);
  /// Arc place -> transition.
  void connect_pt(PlaceId p, TransId t);
  /// Implicit place between two transitions (creates it if absent).
  PlaceId connect_tt(TransId from, TransId to);

  void mark_initial(PlaceId p) { initial_marking_.push_back(p); }

  int num_signals() const { return static_cast<int>(signals_.size()); }
  const Signal& signal(int i) const { return signals_[i]; }
  const std::vector<Signal>& signals() const { return signals_; }
  int find_signal(std::string_view name) const;

  std::size_t num_transitions() const { return transitions_.size(); }
  std::size_t num_places() const { return places_.size(); }
  const StgTransition& transition(TransId t) const { return transitions_[t]; }
  const StgPlace& place(PlaceId p) const { return places_[p]; }
  const std::vector<PlaceId>& initial_marking() const {
    return initial_marking_;
  }
  /// Preset/postset places of a transition.
  const std::vector<PlaceId>& pre_places(TransId t) const { return pre_[t]; }
  const std::vector<PlaceId>& post_places(TransId t) const { return post_[t]; }

  /// Find transition by (signal, polarity, instance); -1 if absent.
  TransId find_transition(int signal, bool rising, int instance) const;

  /// "a+" or "a-/2" rendering.
  std::string transition_string(TransId t) const;

  /// Default cap on the number of reachable states explored.
  static constexpr std::size_t kDefaultMaxStates = std::size_t{1} << 22;

  /// Token-game reachability to a State Graph.
  ///
  /// Initial signal values are inferred from the first transition polarity
  /// seen for each signal on any path (a+ first => initial 0), which is
  /// well-defined exactly when the STG has a consistent labeling; violations
  /// throw.  Not-1-safe nets throw sitm::Error; exceeding `max_states`
  /// throws GuardExhausted(kBudget) carrying the state count reached and the
  /// limit, so the flow can report it structurally (failure_kind "budget").
  /// `guard` (optional) is polled once per discovered state: a deadline or
  /// cancellation ends the exploration with the corresponding GuardExhausted.
  StateGraph to_state_graph(std::size_t max_states = kDefaultMaxStates,
                            const RunGuard* guard = nullptr) const;

  /// Infer initial signal values (bit per signal) without building the SG.
  /// Runs a token game that stops as soon as every signal's value is known,
  /// so it is much cheaper than `to_state_graph` on large nets.  Only
  /// meaningful for consistently labeled STGs (like `to_state_graph`, but
  /// inconsistencies beyond the explored prefix are not detected).
  StateCode infer_initial_code() const;

 private:
  static std::uint64_t tt_key(TransId from, TransId to);
  /// Register `p` in the implicit-place index if it is unnamed with exactly
  /// one producer and one consumer.
  void maybe_index_implicit(PlaceId p);

  std::vector<Signal> signals_;
  std::vector<StgTransition> transitions_;
  std::vector<StgPlace> places_;
  std::vector<std::vector<PlaceId>> pre_, post_;  // per transition
  std::vector<PlaceId> initial_marking_;
  /// Implicit places created by `connect_tt`, keyed by (from, to).
  FlatMap<std::uint64_t, PlaceId> tt_index_;
};

}  // namespace sitm
