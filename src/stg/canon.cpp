#include "stg/canon.hpp"

#include <algorithm>
#include <cstdio>
#include <vector>

#include "sg/state_graph.hpp"
#include "stg/load.hpp"
#include "stg/stg.hpp"
#include "util/error.hpp"

namespace sitm {

std::string SpecHash::hex() const {
  char buf[33];
  std::snprintf(buf, sizeof buf, "%016llx%016llx",
                static_cast<unsigned long long>(hi),
                static_cast<unsigned long long>(lo));
  return std::string(buf, 32);
}

void StableHasher::bytes(const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  constexpr std::uint64_t kPrime = 1099511628211ull;
  for (std::size_t i = 0; i < n; ++i) {
    hi_ = (hi_ ^ p[i]) * kPrime;
    lo_ = (lo_ ^ p[i] ^ 0xa5u) * kPrime;
  }
}

void StableHasher::u64(std::uint64_t v) {
  unsigned char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<unsigned char>(v >> (8 * i));
  bytes(b, 8);
}

namespace {

const char* kind_token(SignalKind kind) {
  switch (kind) {
    case SignalKind::kInput: return "in";
    case SignalKind::kOutput: return "out";
    case SignalKind::kInternal: return "int";
  }
  return "?";
}

/// Canonical transition label: "name+/-/instance" with the instance always
/// explicit, so "a+" and "a+/1" (the same transition) serialize alike.
std::string transition_label(const Stg& stg, TransId t) {
  const StgTransition& tr = stg.transition(t);
  return stg.signal(tr.signal).name + (tr.rising ? '+' : '-') + '/' +
         std::to_string(tr.instance);
}

}  // namespace

SpecHash canonical_spec_hash(const Stg& stg) {
  StableHasher h;
  h.tag('g');

  // Signals, sorted by name (names are unique within an Stg).
  std::vector<int> sig_order(static_cast<std::size_t>(stg.num_signals()));
  for (std::size_t i = 0; i < sig_order.size(); ++i)
    sig_order[i] = static_cast<int>(i);
  std::sort(sig_order.begin(), sig_order.end(), [&](int a, int b) {
    return stg.signal(a).name < stg.signal(b).name;
  });
  h.tag('S');
  for (int s : sig_order) {
    h.str(stg.signal(s).name);
    h.str(kind_token(stg.signal(s).kind));
  }

  // Transitions as a sorted multiset of canonical labels (covers
  // transitions declared without arcs too).
  std::vector<std::string> labels;
  labels.reserve(stg.num_transitions());
  for (std::size_t t = 0; t < stg.num_transitions(); ++t)
    labels.push_back(transition_label(stg, static_cast<TransId>(t)));
  std::vector<std::string> sorted_labels = labels;
  std::sort(sorted_labels.begin(), sorted_labels.end());
  h.tag('T');
  for (const auto& l : sorted_labels) h.str(l);

  // Initial-marking multiplicity per place (1-safe nets mark a place once,
  // but hash what the parse produced).
  std::vector<std::uint64_t> marked(stg.num_places(), 0);
  for (PlaceId p : stg.initial_marking()) ++marked[static_cast<std::size_t>(p)];

  // Places as a sorted multiset of structural descriptors: (sorted pre
  // labels | sorted post labels | marking).  Place names and declaration
  // order don't reach the hash — a place *is* its connectivity; the .g
  // shorthand "t1 t2" and a named place with the same arcs collide by
  // design.
  std::vector<std::string> place_desc;
  place_desc.reserve(stg.num_places());
  for (std::size_t p = 0; p < stg.num_places(); ++p) {
    const StgPlace& place = stg.place(static_cast<PlaceId>(p));
    std::vector<std::string> pre, post;
    for (TransId t : place.pre) pre.push_back(labels[static_cast<std::size_t>(t)]);
    for (TransId t : place.post)
      post.push_back(labels[static_cast<std::size_t>(t)]);
    std::sort(pre.begin(), pre.end());
    std::sort(post.begin(), post.end());
    std::string desc = "[";
    for (const auto& l : pre) desc += l + ' ';
    desc += '|';
    for (const auto& l : post) desc += l + ' ';
    desc += '|';
    desc += std::to_string(marked[p]);
    desc += ']';
    place_desc.push_back(std::move(desc));
  }
  std::sort(place_desc.begin(), place_desc.end());
  h.tag('P');
  for (const auto& d : place_desc) h.str(d);

  return h.digest();
}

SpecHash canonical_spec_hash(const StateGraph& sg) {
  StableHasher h;
  h.tag('s');

  // Signals sorted by name; canon[i] = canonical position of signal i.
  const int n = sg.num_signals();
  std::vector<int> sig_order(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) sig_order[static_cast<std::size_t>(i)] = i;
  std::sort(sig_order.begin(), sig_order.end(), [&](int a, int b) {
    return sg.signal(a).name < sg.signal(b).name;
  });
  std::vector<int> canon(static_cast<std::size_t>(n));
  for (int pos = 0; pos < n; ++pos)
    canon[static_cast<std::size_t>(sig_order[static_cast<std::size_t>(pos)])] =
        pos;
  h.tag('S');
  for (int s : sig_order) {
    h.str(sg.signal(s).name);
    h.str(kind_token(sg.signal(s).kind));
  }

  if (sg.initial() == kNoState) {
    // Degenerate (no initial state): nothing reachable to hash.
    h.tag('0');
    return h.digest();
  }

  // BFS renumbering from the initial state.  Each state's edges are
  // ordered by the canonical event id (signal's sorted position, then
  // polarity); for a deterministic SG that order is unique.  The BFS id a
  // state gets is therefore independent of declaration order and names.
  const auto canon_event = [&](Event e) {
    return 2 * canon[static_cast<std::size_t>(e.signal)] + (e.rising ? 1 : 0);
  };
  std::vector<StateId> bfs_id(sg.num_states(), kNoState);
  std::vector<StateId> order;
  order.reserve(sg.num_states());
  bfs_id[static_cast<std::size_t>(sg.initial())] = 0;
  order.push_back(sg.initial());
  for (std::size_t head = 0; head < order.size(); ++head) {
    const StateId s = order[head];
    std::vector<StateGraph::Edge> edges = sg.succs(s);
    std::stable_sort(edges.begin(), edges.end(),
                     [&](const StateGraph::Edge& a, const StateGraph::Edge& b) {
                       return canon_event(a.event) < canon_event(b.event);
                     });
    for (const auto& e : edges) {
      if (bfs_id[static_cast<std::size_t>(e.target)] != kNoState) continue;
      bfs_id[static_cast<std::size_t>(e.target)] =
          static_cast<StateId>(order.size());
      order.push_back(e.target);
    }
  }

  // Per-state record in BFS order: permuted code, then the ordered edges as
  // (canonical event id, target BFS id).
  h.tag('Q');
  h.u64(order.size());
  for (const StateId s : order) {
    std::uint64_t code = 0;
    for (int sig = 0; sig < n; ++sig)
      if (sg.value(s, sig))
        code |= std::uint64_t{1} << canon[static_cast<std::size_t>(sig)];
    h.u64(code);
    std::vector<StateGraph::Edge> edges = sg.succs(s);
    std::stable_sort(edges.begin(), edges.end(),
                     [&](const StateGraph::Edge& a, const StateGraph::Edge& b) {
                       return canon_event(a.event) < canon_event(b.event);
                     });
    h.u64(edges.size());
    for (const auto& e : edges) {
      h.u64(static_cast<std::uint64_t>(canon_event(e.event)));
      h.u64(static_cast<std::uint64_t>(
          bfs_id[static_cast<std::size_t>(e.target)]));
    }
  }
  return h.digest();
}

SpecHash canonical_spec_hash(const Spec& spec) {
  // The spec name (.model directive) is part of the key: it becomes the
  // module name of the emitted .sg / Verilog, so two specs differing only
  // in name produce different output bytes.  The path does NOT contribute
  // (same text under two filenames is the same spec).
  SpecHash structural;
  if (spec.stg)
    structural = canonical_spec_hash(*spec.stg);
  else if (spec.sg)
    structural = canonical_spec_hash(*spec.sg);
  else
    throw Error("canonical_spec_hash: spec holds neither an Stg nor an SG");
  StableHasher h;
  h.tag('N');
  h.str(spec.name);
  h.u64(structural.hi);
  h.u64(structural.lo);
  return h.digest();
}

}  // namespace sitm
