#include "serve/server.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <deque>
#include <istream>
#include <ostream>
#include <thread>
#include <vector>

#include "stg/canon.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"

#ifndef _WIN32
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

namespace sitm::serve {

namespace {

std::string hex64(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

/// Strict field readers: the request protocol rejects wrong-typed fields
/// instead of coercing, so a typo'd option never silently misses the cache.
double want_number(const Json& j, const char* what) {
  if (j.kind() != Json::Kind::kNumber)
    throw Error(std::string(what) + " must be a number");
  return j.number();
}

int want_int(const Json& j, const char* what, int min) {
  const double d = want_number(j, what);
  // Range-check BEFORE casting: float-to-int conversion of an
  // out-of-range double is undefined behaviour, and requests are
  // untrusted ({"priority":1e20} must be a request error, not UB).
  if (!(d >= min && d <= 2147483647.0) ||
      static_cast<double>(static_cast<int>(d)) != d)
    throw Error(std::string(what) + " must be an integer >= " +
                std::to_string(min));
  return static_cast<int>(d);
}

/// Non-negative integer counts (max_states, work_budget): same UB-safe
/// range check, wide result.
std::uint64_t want_count(const Json& j, const char* what) {
  const double d = want_number(j, what);
  if (!(d >= 0 && d <= 9007199254740992.0) ||  // 2^53: exact doubles only
      d != static_cast<double>(static_cast<std::uint64_t>(d)))
    throw Error(std::string(what) + " must be a non-negative integer");
  return static_cast<std::uint64_t>(d);
}

bool want_bool(const Json& j, const char* what) {
  if (j.kind() != Json::Kind::kBool)
    throw Error(std::string(what) + " must be a boolean");
  return j.bool_value();
}

const std::string& want_string(const Json& j, const char* what) {
  if (j.kind() != Json::Kind::kString)
    throw Error(std::string(what) + " must be a string");
  return j.string_value();
}

Stage want_stage(const Json& j, const char* what) {
  const auto stage = parse_stage(want_string(j, what));
  if (!stage) throw Error(std::string(what) + ": unknown stage");
  return *stage;
}

/// Apply the request's "options" object onto the base FlowOptions.  Only
/// output-affecting knobs are exposed; every key is validated so an
/// unknown option is a request error, not a silent cache split.
void apply_options(const Json& o, FlowOptions* flow) {
  if (o.kind() != Json::Kind::kObject)
    throw Error("\"options\" must be an object");
  for (const auto& [key, v] : o.members()) {
    if (key == "minimize_passes") {
      flow->mc.minimize_passes = want_int(v, "minimize_passes", 1);
    } else if (key == "synth_threads") {
      flow->mc.threads = want_int(v, "synth_threads", 0);
    } else if (key == "csc_top_k") {
      flow->csc.rank_top_k =
          static_cast<std::size_t>(want_int(v, "csc_top_k", 0));
    } else if (key == "csc_max_insertions") {
      flow->csc.max_insertions = want_int(v, "csc_max_insertions", 1);
    } else if (key == "max_literals") {
      flow->mapper.library.max_literals = want_int(v, "max_literals", 1);
    } else if (key == "map_prune") {
      flow->mapper.prune_pre_checks = want_bool(v, "map_prune");
    } else if (key == "map_threads") {
      flow->mapper.threads = want_int(v, "map_threads", 0);
    } else if (key == "symbolic_check") {
      flow->symbolic_check = want_bool(v, "symbolic_check");
    } else if (key == "lint") {
      flow->lint = want_bool(v, "lint");
    } else if (key == "check") {
      flow->check = want_bool(v, "check");
    } else if (key == "check_reorder") {
      flow->check_opts.reorder = want_bool(v, "check_reorder");
    } else if (key == "max_gc_fanin") {
      flow->check_opts.nlint.max_gc_fanin = want_int(v, "max_gc_fanin", 0);
    } else if (key == "stop_after") {
      flow->stop_after = want_stage(v, "stop_after");
    } else if (key == "skip") {
      if (v.kind() != Json::Kind::kArray)
        throw Error("skip must be an array of stage names");
      for (const auto& s : v.items()) flow->set_skip(want_stage(s, "skip"));
    } else if (key == "max_states") {
      flow->max_states =
          static_cast<std::size_t>(want_count(v, "max_states"));
    } else if (key == "work_budget") {
      flow->work_budget = want_count(v, "work_budget");
    } else if (key == "on_budget") {
      const std::string& policy = want_string(v, "on_budget");
      if (policy == "fail") flow->on_budget = FlowOptions::OnBudget::kFail;
      else if (policy == "degrade")
        flow->on_budget = FlowOptions::OnBudget::kDegrade;
      else throw Error("on_budget wants fail|degrade");
    } else {
      throw Error("unknown option: " + key);
    }
  }
}

/// Assemble a response line around the pre-serialized result payload.  The
/// payload bytes are spliced verbatim — this, not any re-serialization
/// discipline, is what makes a warm response bit-identical to the cold one
/// that populated the cache entry.
std::string make_response(const std::string& id, const CacheKey& key,
                          bool cached, bool ok, const std::string& payload) {
  std::string out = "{\"id\":";
  if (id.empty()) {
    out += "null";
  } else {
    out += '"';
    out += Json::escape(id);
    out += '"';
  }
  out += ",\"status\":\"";
  out += ok ? "ok" : "failed";
  out += "\",\"cached\":";
  out += cached ? "true" : "false";
  out += ",\"key\":\"";
  out += key.spec.hex();
  out += ':';
  out += hex64(key.options);
  out += "\",\"result\":";
  out += payload;
  out += '}';
  return out;
}

}  // namespace

struct ServeEngine::Request {
  std::string id;
  Spec spec;
  FlowOptions flow;
  CacheKey key;
  int priority = 0;
};

ServeEngine::ServeEngine(ServeOptions opts)
    : opts_(std::move(opts)),
      cache_(opts_.cache_bytes, opts_.cache_shards),
      sched_(opts_.threads, /*spawn_all=*/true) {}

ServeEngine::~ServeEngine() { sched_.shutdown(); }

std::string ServeEngine::error_response(const std::string& id,
                                        const std::string& message) {
  std::string out = "{\"id\":";
  if (id.empty()) {
    out += "null";
  } else {
    out += '"';
    out += Json::escape(id);
    out += '"';
  }
  out += ",\"status\":\"error\",\"error\":\"";
  out += Json::escape(message);
  out += "\"}";
  return out;
}

ServeEngine::Request ServeEngine::parse_request(const Json& j) const {
  const Json* specv = j.find("spec");
  if (!specv) throw Error("request needs a \"spec\" field (or an \"op\")");
  const std::string& text = want_string(*specv, "spec");

  FlowOptions flow = opts_.flow;
  SpecFormat format = flow.format;
  if (const Json* f = j.find("format")) {
    const std::string& name = want_string(*f, "format");
    if (name == "auto") format = SpecFormat::kAuto;
    else if (name == "g") format = SpecFormat::kG;
    else if (name == "sg") format = SpecFormat::kSg;
    else throw Error("format wants auto|g|sg");
  }
  if (const Json* o = j.find("options")) apply_options(*o, &flow);

  // Server invariants: never write spec outputs to disk, always capture the
  // emitted text (it is the cached artifact), and give each request its own
  // flow-owned guard — a shared one would let one request's deadline cancel
  // another.
  flow.emit_sg_path.clear();
  flow.emit_verilog_path.clear();
  flow.emit_eqn_path.clear();
  flow.capture_emitted = true;
  flow.guard.reset();
  flow.deadline_ms = opts_.request_deadline_ms;
  if (const Json* d = j.find("deadline_ms"))
    flow.deadline_ms = want_number(*d, "deadline_ms");

  Request req;
  req.spec = load_spec_string(text, format);
  req.flow = std::move(flow);
  req.key = CacheKey{canonical_spec_hash(req.spec), req.flow.fingerprint()};
  if (const Json* p = j.find("priority"))
    req.priority = want_int(*p, "priority", 0);
  return req;
}

std::future<std::string> ServeEngine::submit_line(const std::string& line) {
  auto promise = std::make_shared<std::promise<std::string>>();
  std::future<std::string> fut = promise->get_future();
  requests_.fetch_add(1, std::memory_order_relaxed);
  std::string id;
  try {
    fault::hit("serve.request");
    const Json j = Json::parse(line);
    if (j.kind() != Json::Kind::kObject)
      throw Error("request must be a JSON object");
    if (const Json* idv = j.find("id")) {
      id = idv->kind() == Json::Kind::kString ? idv->string_value()
                                              : idv->dump(0);
    }

    if (const Json* op = j.find("op")) {
      const std::string& name = want_string(*op, "op");
      if (name == "stats") {
        promise->set_value("{\"status\":\"ok\",\"stats\":" +
                           stats_json().dump(0) + "}");
      } else if (name == "shutdown") {
        shutdown_.store(true, std::memory_order_relaxed);
        promise->set_value("{\"status\":\"ok\",\"shutdown\":true}");
      } else {
        throw Error("unknown op: " + name);
      }
      return fut;
    }

    Request req = parse_request(j);
    req.id = id;

    // Warm path: answer on the request thread, no scheduling.  Only
    // successful results are cached, so a hit is always status "ok".
    std::string payload;
    if (cache_.lookup(req.key, &payload)) {
      promise->set_value(
          make_response(req.id, req.key, /*cached=*/true, true, payload));
      return fut;
    }

    auto shared_req = std::make_shared<Request>(std::move(req));
    const int priority = shared_req->priority;
    sched_.submit(
        [this, promise, shared_req] {
          promise->set_value(run_request(std::move(*shared_req)));
        },
        priority);
  } catch (const std::exception& e) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    promise->set_value(error_response(id, e.what()));
  } catch (...) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    promise->set_value(error_response(id, "non-standard exception"));
  }
  return fut;
}

std::string ServeEngine::run_request(Request req) {
  try {
    Flow flow(req.flow);
    const FlowReport report = flow.run_spec(std::move(req.spec));
    const FlowContext& ctx = flow.context();

    Json result = Json::object();
    result.set("ok", Json(report.ok));
    result.set("report", report.to_json());
    Json netlist = Json::object();
    netlist.set("sg", Json(ctx.emitted_sg));
    netlist.set("verilog", Json(ctx.emitted_verilog));
    netlist.set("eqn", Json(ctx.emitted_eqn));
    result.set("netlist", std::move(netlist));
    const std::string payload = result.dump(0);

    if (report.ok) {
      cache_.insert(req.key, payload);
    } else {
      // Failed runs are never cached: deadline/budget verdicts depend on
      // the wall clock, and deterministic failures re-derive cheaply.
      failed_.fetch_add(1, std::memory_order_relaxed);
    }
    return make_response(req.id, req.key, /*cached=*/false, report.ok,
                         payload);
  } catch (const std::exception& e) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    return error_response(req.id, e.what());
  } catch (...) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    return error_response(req.id, "non-standard exception");
  }
}

Json ServeEngine::stats_json() const {
  const CacheStats cs = cache_.stats();
  Json s = Json::object();
  s.set("requests", Json(requests_.load(std::memory_order_relaxed)));
  s.set("failed", Json(failed_.load(std::memory_order_relaxed)));
  s.set("errors", Json(errors_.load(std::memory_order_relaxed)));
  s.set("cache_hits", Json(cs.hits));
  s.set("cache_misses", Json(cs.misses));
  s.set("cache_evictions", Json(cs.evictions));
  s.set("cache_insertions", Json(cs.insertions));
  s.set("cache_rejected", Json(cs.rejected));
  s.set("cache_entries", Json(cs.entries));
  s.set("cache_bytes_live", Json(cs.bytes_live));
  s.set("cache_bytes_pooled", Json(cs.bytes_pooled));
  s.set("cache_byte_budget", Json(cs.byte_budget));
  s.set("steals", Json(sched_.steals()));
  s.set("executed", Json(sched_.executed()));
  s.set("workers", Json(sched_.num_workers()));
  return s;
}

void serve_stream(ServeEngine& engine,
                  const std::function<bool(std::string&)>& read_line,
                  const std::function<void(const std::string&)>& write_line) {
  // Reader (this thread) submits; the writer thread emits responses in
  // request order, so execution overlaps across requests while the stream
  // stays ordered.
  std::mutex m;
  std::condition_variable cv;
  std::deque<std::future<std::string>> inflight;
  bool done = false;

  std::thread writer([&] {
    std::unique_lock<std::mutex> lock(m);
    while (true) {
      cv.wait(lock, [&] { return done || !inflight.empty(); });
      if (inflight.empty()) return;  // done && drained
      std::future<std::string> f = std::move(inflight.front());
      inflight.pop_front();
      lock.unlock();
      write_line(f.get());
      lock.lock();
    }
  });

  std::string line;
  while (!engine.shutdown_requested() && read_line(line)) {
    if (line.empty()) continue;
    std::future<std::string> fut = engine.submit_line(line);
    {
      const std::lock_guard<std::mutex> lock(m);
      inflight.push_back(std::move(fut));
    }
    cv.notify_one();
  }
  {
    const std::lock_guard<std::mutex> lock(m);
    done = true;
  }
  cv.notify_one();
  writer.join();
}

int serve_pipe(ServeEngine& engine, std::istream& in, std::ostream& out) {
  serve_stream(
      engine,
      [&](std::string& line) { return static_cast<bool>(std::getline(in, line)); },
      [&](const std::string& resp) { out << resp << '\n' << std::flush; });
  return 0;
}

#ifndef _WIN32

int serve_socket(ServeEngine& engine, const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    std::fprintf(stderr, "serve: socket path too long: %s\n", path.c_str());
    return 1;
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);

  const int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    std::perror("serve: socket");
    return 1;
  }
  ::unlink(path.c_str());  // replace a stale socket file
  if (::bind(listen_fd, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) < 0 ||
      ::listen(listen_fd, 64) < 0) {
    std::perror("serve: bind/listen");
    ::close(listen_fd);
    return 1;
  }

  std::mutex conn_m;
  std::vector<int> conn_fds;
  std::vector<std::thread> conns;
  while (!engine.shutdown_requested()) {
    // Poll with a timeout so a shutdown requested on some connection stops
    // the accept loop promptly.
    pollfd pfd{listen_fd, POLLIN, 0};
    const int r = ::poll(&pfd, 1, 100);
    if (r < 0) {
      if (errno == EINTR) continue;
      std::perror("serve: poll");
      break;
    }
    if (r == 0) continue;
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) continue;
    std::size_t slot;
    {
      const std::lock_guard<std::mutex> lock(conn_m);
      slot = conn_fds.size();
      conn_fds.push_back(fd);
    }
    conns.emplace_back([&engine, &conn_m, &conn_fds, fd, slot] {
      std::string buf;
      const auto read_line = [&](std::string& line) -> bool {
        while (true) {
          const std::size_t nl = buf.find('\n');
          if (nl != std::string::npos) {
            line.assign(buf, 0, nl);
            buf.erase(0, nl + 1);
            return true;
          }
          char chunk[4096];
          const ssize_t n = ::read(fd, chunk, sizeof chunk);
          if (n <= 0) {
            if (n < 0 && errno == EINTR) continue;
            if (!buf.empty()) {  // final line without a newline
              line.swap(buf);
              buf.clear();
              return true;
            }
            return false;
          }
          buf.append(chunk, static_cast<std::size_t>(n));
        }
      };
      const auto write_line = [&](const std::string& resp) {
        std::string out = resp;
        out += '\n';
        std::size_t off = 0;
        while (off < out.size()) {
          // MSG_NOSIGNAL: a client that hung up must not SIGPIPE the server.
          const ssize_t n = ::send(fd, out.data() + off, out.size() - off,
                                   MSG_NOSIGNAL);
          if (n < 0) {
            if (errno == EINTR) continue;
            return;
          }
          off += static_cast<std::size_t>(n);
        }
      };
      serve_stream(engine, read_line, write_line);
      // The stream is done (client EOF or shutdown op): close this
      // connection *now* so a client draining until EOF unblocks, and mark
      // the slot so the join-phase cleanup never touches a reused fd.
      const std::lock_guard<std::mutex> lock(conn_m);
      ::close(fd);
      conn_fds[slot] = -1;
    });
  }
  ::close(listen_fd);
  {
    // Unblock connection readers still parked in read(2), then join.  The
    // threads own the close (above); here we only half-kill live sockets.
    const std::lock_guard<std::mutex> lock(conn_m);
    for (const int fd : conn_fds)
      if (fd != -1) ::shutdown(fd, SHUT_RDWR);
  }
  for (std::thread& t : conns) t.join();
  ::unlink(path.c_str());
  return 0;
}

#else

int serve_socket(ServeEngine&, const std::string&) {
  std::fprintf(stderr, "serve: unix sockets are not available here; "
                       "use --pipe\n");
  return 1;
}

#endif

}  // namespace sitm::serve
