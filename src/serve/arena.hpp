#pragma once
// Size-class slab pool for the serve cache's payload blocks.
//
// Every cache entry's payload (the serialized result JSON: report +
// emitted netlists) lives in ONE contiguous block drawn from this pool.
// Blocks are rounded up to power-of-two size classes; released blocks go
// onto a per-class freelist and are reused by later insertions instead of
// round-tripping through the allocator — under eviction churn (the steady
// state of a byte-budgeted cache) insert/evict pairs allocate nothing.
// Blocks above the largest class are serviced by plain new[]/delete[] and
// never pooled (they would pin arbitrary memory).
//
// Not thread-safe by itself: each FlowCache shard owns one pool and uses
// it under the shard lock.  `bytes_live` (handed out) + `bytes_pooled`
// (parked on freelists) is the pool's total footprint; the cache's byte
// budget is charged against live block sizes — the *rounded* sizes, so the
// accounting matches what is actually resident.

#include <cstddef>
#include <memory>
#include <vector>

namespace sitm::serve {

class SlabPool {
 public:
  struct Block {
    char* data = nullptr;
    std::size_t size = 0;  ///< rounded size-class capacity, not the request
  };

  SlabPool() = default;
  ~SlabPool();
  SlabPool(const SlabPool&) = delete;
  SlabPool& operator=(const SlabPool&) = delete;

  /// A block of capacity >= n (rounded up to the size class).
  Block alloc(std::size_t n);
  /// Return a block to its freelist (or the heap when unpooled).
  void release(Block block);
  /// Drop every pooled (free) block back to the heap.
  void trim();

  std::size_t bytes_live() const { return bytes_live_; }
  std::size_t bytes_pooled() const { return bytes_pooled_; }

  /// Smallest / largest pooled size class.
  static constexpr std::size_t kMinClass = 64;
  static constexpr std::size_t kMaxClass = std::size_t{1} << 24;  // 16 MiB

 private:
  /// Size-class index for n (0 = kMinClass); -1 when n exceeds kMaxClass.
  static int class_index(std::size_t n);
  static std::size_t class_size(int idx) { return kMinClass << idx; }

  std::vector<std::vector<char*>> free_;  ///< per-class freelists
  std::size_t bytes_live_ = 0;
  std::size_t bytes_pooled_ = 0;
};

}  // namespace sitm::serve
