#include "serve/flow_cache.hpp"

#include <cstring>

namespace sitm::serve {

FlowCache::FlowCache(std::size_t byte_budget, int shards) {
  if (shards < 1) shards = 1;
  shards_.reserve(static_cast<std::size_t>(shards));
  for (int i = 0; i < shards; ++i)
    shards_.push_back(std::make_unique<Shard>());
  byte_budget_ = byte_budget;
  shard_budget_ = byte_budget / static_cast<std::size_t>(shards);
}

bool FlowCache::lookup(const CacheKey& key, std::string* out) {
  Shard& s = shard_for(key);
  const std::lock_guard<std::mutex> lock(s.m);
  const auto it = s.index.find(key);
  if (it == s.index.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  s.lru.splice(s.lru.begin(), s.lru, it->second);
  if (out) out->assign(it->second->block.data, it->second->payload_len);
  hits_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void FlowCache::evict_for(Shard& s, std::size_t need) {
  while (!s.lru.empty() && s.bytes + need > shard_budget_) {
    Entry& victim = s.lru.back();
    s.bytes -= victim.charged;
    s.index.erase(victim.key);
    s.pool.release(victim.block);
    s.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

void FlowCache::insert(const CacheKey& key, std::string_view payload) {
  Shard& s = shard_for(key);
  const std::lock_guard<std::mutex> lock(s.m);
  if (s.index.contains(key)) return;

  // Charge what will actually be resident: the rounded slab block plus the
  // fixed index/LRU overhead.  An entry that alone exceeds the shard's
  // budget would evict everything and still not fit — reject it instead.
  Entry e;
  e.key = key;
  e.payload_len = payload.size();
  e.block = s.pool.alloc(payload.size() ? payload.size() : 1);
  e.charged = e.block.size + kEntryOverhead;
  if (e.charged > shard_budget_) {
    s.pool.release(e.block);
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  evict_for(s, e.charged);
  std::memcpy(e.block.data, payload.data(), payload.size());
  s.bytes += e.charged;
  s.lru.push_front(std::move(e));
  s.index.emplace(key, s.lru.begin());
  insertions_.fetch_add(1, std::memory_order_relaxed);
}

void FlowCache::clear() {
  for (auto& sp : shards_) {
    Shard& s = *sp;
    const std::lock_guard<std::mutex> lock(s.m);
    for (Entry& e : s.lru) s.pool.release(e.block);
    s.lru.clear();
    s.index.clear();
    s.bytes = 0;
    s.pool.trim();
  }
}

CacheStats FlowCache::stats() const {
  CacheStats st;
  st.hits = hits_.load(std::memory_order_relaxed);
  st.misses = misses_.load(std::memory_order_relaxed);
  st.evictions = evictions_.load(std::memory_order_relaxed);
  st.insertions = insertions_.load(std::memory_order_relaxed);
  st.rejected = rejected_.load(std::memory_order_relaxed);
  st.byte_budget = byte_budget_;
  for (const auto& sp : shards_) {
    Shard& s = *sp;
    const std::lock_guard<std::mutex> lock(s.m);
    st.entries += s.lru.size();
    st.bytes_live += s.pool.bytes_live();
    st.bytes_pooled += s.pool.bytes_pooled();
  }
  return st;
}

}  // namespace sitm::serve
