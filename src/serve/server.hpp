#pragma once
// `sitm serve`: a persistent synthesis service over the Flow engine.
//
// Protocol: newline-delimited JSON, one request object per line, one
// response object per line, responses written in request order per
// stream.  Two transports share the same engine:
//   * pipe mode — requests on stdin, responses on stdout (tests, CI, and
//     anything that can spawn a process);
//   * unix-socket mode — SOCK_STREAM connections, each served by its own
//     reader/writer pair, all feeding one scheduler and one cache.
//
// Requests:
//   {"op": "stats"}      -> {"status":"ok","stats":{...counters...}}
//   {"op": "shutdown"}   -> {"status":"ok","shutdown":true}; the loop
//                           drains in-flight requests and exits.
//   {"id": "r1", "spec": "<.g/.sg text>",
//    "format": "auto|g|sg",              // default auto (sniffed)
//    "priority": 7,                      // higher starts earlier
//    "deadline_ms": 250,                 // per-request RunGuard deadline
//    "options": {...}}                   // output-affecting overrides
//
// Option overrides: minimize_passes, synth_threads, csc_top_k,
// csc_max_insertions, max_literals, map_prune, map_threads, stop_after,
// skip (array of stage names), symbolic_check, lint, check, check_reorder,
// max_gc_fanin, max_states, work_budget, on_budget ("fail"|"degrade").
// `lint` (default from the base options; `sitm serve` turns it on) is the
// fast reject path: a spec with lint errors fails typed (`spec`) at the
// reachability gate, before any state graph is built.  `check` (also on by
// default under `sitm serve`) is the output-side counterpart: netlist
// static analysis plus the BDD equivalence proof after the map stage.
//
// Responses:
//   {"id":"r1","status":"ok","cached":false,"key":"<hex>:<hex>",
//    "result":{"ok":true,"report":{...},"netlist":{"sg":...,...}}}
//   status "failed"  -> the flow ran and failed; result.report carries the
//                       typed failure_kind (the server loop stays up — this
//                       is the PR 7 containment contract).
//   status "error"   -> the *request* was malformed (bad JSON, unknown
//                       option); nothing ran.
//
// Caching: the result object of a successful run is serialized once and
// stored in the FlowCache under (canonical spec hash, options
// fingerprint); a warm request splices the cached bytes verbatim into its
// response, so warm results are bit-identical to the cold ones.  Failed
// runs are never cached (resource failures depend on wall clock; the
// cheap deterministic failures re-derive in microseconds).  Cache hits
// are answered on the request thread without touching the scheduler;
// misses run as scheduler jobs under the request's priority and a
// per-request RunGuard deadline.

#include <cstdint>
#include <functional>
#include <future>
#include <iosfwd>
#include <memory>
#include <string>

#include "flow/flow.hpp"
#include "serve/flow_cache.hpp"
#include "util/scheduler.hpp"

namespace sitm::serve {

struct ServeOptions {
  /// Base options of every request's flow; request "options" members
  /// override output-affecting fields.  Emit paths are ignored (the server
  /// never writes spec outputs to disk); capture_emitted is forced on.
  FlowOptions flow;
  /// Scheduler workers (free-running).  0 = one per hardware core.
  int threads = 1;
  /// FlowCache byte budget / shard count.
  std::size_t cache_bytes = std::size_t{256} << 20;
  int cache_shards = 16;
  /// Default per-request deadline when the request carries none; 0 = none.
  double request_deadline_ms = 0;
};

class ServeEngine {
 public:
  explicit ServeEngine(ServeOptions opts);
  ~ServeEngine();

  /// Parse one request line and start it.  Control ops and cache hits
  /// complete immediately on the calling thread; misses are scheduled by
  /// priority.  The future always yields a response line (never throws).
  std::future<std::string> submit_line(const std::string& line);

  /// submit + wait: the synchronous shape the benches and tests use.
  std::string handle_line(const std::string& line) {
    return submit_line(line).get();
  }

  /// True once a {"op":"shutdown"} request was accepted.
  bool shutdown_requested() const {
    return shutdown_.load(std::memory_order_relaxed);
  }

  Json stats_json() const;
  FlowCache& cache() { return cache_; }
  const ServeOptions& options() const { return opts_; }
  std::uint64_t steals() const { return sched_.steals(); }

 private:
  struct Request;  // parsed synthesis request (spec + merged options)

  /// Parse the request object into a Request; throws Error on bad fields.
  Request parse_request(const Json& j) const;
  /// Run one cache-miss request through the Flow engine; returns the
  /// response line.  Never throws.
  std::string run_request(Request req);
  static std::string error_response(const std::string& id,
                                    const std::string& message);

  ServeOptions opts_;
  FlowCache cache_;
  WorkStealingScheduler sched_;
  std::atomic<bool> shutdown_{false};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> errors_{0};
};

/// Shared request loop: read lines with `read_line` (false = EOF), write
/// each response with `write_line`, in request order, overlapping
/// execution via the engine's scheduler.  Returns when the stream ends or
/// a shutdown request has been answered.
void serve_stream(ServeEngine& engine,
                  const std::function<bool(std::string&)>& read_line,
                  const std::function<void(const std::string&)>& write_line);

/// Pipe mode: stdin/stdout of this process.  Returns 0 on clean EOF or
/// shutdown.
int serve_pipe(ServeEngine& engine, std::istream& in, std::ostream& out);

/// Unix-socket mode: bind `path` (an existing socket file is replaced),
/// accept until a shutdown request arrives.  Each connection runs the
/// stream loop above.  Returns 0 on shutdown, 1 on socket errors.
int serve_socket(ServeEngine& engine, const std::string& path);

}  // namespace sitm::serve
