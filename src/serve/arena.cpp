#include "serve/arena.hpp"

namespace sitm::serve {

SlabPool::~SlabPool() { trim(); }

int SlabPool::class_index(std::size_t n) {
  if (n > kMaxClass) return -1;
  int idx = 0;
  std::size_t cap = kMinClass;
  while (cap < n) {
    cap <<= 1;
    ++idx;
  }
  return idx;
}

SlabPool::Block SlabPool::alloc(std::size_t n) {
  const int idx = class_index(n);
  if (idx < 0) {
    // Oversized: exact allocation, never pooled.
    Block b{new char[n], n};
    bytes_live_ += n;
    return b;
  }
  const std::size_t cap = class_size(idx);
  if (static_cast<std::size_t>(idx) < free_.size() &&
      !free_[static_cast<std::size_t>(idx)].empty()) {
    Block b{free_[static_cast<std::size_t>(idx)].back(), cap};
    free_[static_cast<std::size_t>(idx)].pop_back();
    bytes_pooled_ -= cap;
    bytes_live_ += cap;
    return b;
  }
  Block b{new char[cap], cap};
  bytes_live_ += cap;
  return b;
}

void SlabPool::release(Block block) {
  if (!block.data) return;
  bytes_live_ -= block.size;
  const int idx = class_index(block.size);
  if (idx < 0 || class_size(idx) != block.size) {
    delete[] block.data;  // oversized (or foreign) block: not pooled
    return;
  }
  if (free_.size() <= static_cast<std::size_t>(idx))
    free_.resize(static_cast<std::size_t>(idx) + 1);
  free_[static_cast<std::size_t>(idx)].push_back(block.data);
  bytes_pooled_ += block.size;
}

void SlabPool::trim() {
  for (std::size_t idx = 0; idx < free_.size(); ++idx) {
    for (char* p : free_[idx]) delete[] p;
    bytes_pooled_ -= free_[idx].size() * class_size(static_cast<int>(idx));
    free_[idx].clear();
  }
}

}  // namespace sitm::serve
