#pragma once
// Content-addressed result cache of the serve front-end.
//
// Keyed by (canonical spec hash, FlowOptions fingerprint): two requests
// collide exactly when the parsed specification is canonically identical
// (stg/canon.hpp — formatting, comments and declaration order are gone)
// AND every output-affecting option matches (FlowOptions::fingerprint —
// wall-clock deadlines deliberately excluded, so a request that merely
// allows less time still reuses a cached success).
//
// The value is the request's serialized result payload (report JSON +
// emitted netlists, one compact pre-serialized string) stored in a
// slab-pool block (serve/arena.hpp); warm responses splice the cached
// bytes verbatim, which is what makes them bit-identical to the cold
// response that populated the entry.
//
// Sharded: key-hash picks one of N shards, each with its own mutex, LRU
// list, index and slab pool, so concurrent workers miss/insert on
// different shards without contending.  Eviction is byte-budgeted LRU per
// shard (budget/shards each): inserting past the budget evicts from the
// cold end until the new entry fits; an entry larger than a whole shard's
// budget is not cached at all.  Hit/miss/eviction counters are global
// relaxed atomics, surfaced in the serve stats JSON.

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "serve/arena.hpp"
#include "stg/canon.hpp"

namespace sitm::serve {

struct CacheKey {
  SpecHash spec;            ///< canonical_spec_hash of the parsed request
  std::uint64_t options = 0;  ///< FlowOptions::fingerprint()

  bool operator==(const CacheKey&) const = default;
};

struct CacheKeyHash {
  std::size_t operator()(const CacheKey& k) const {
    // The spec hash is already uniform; fold in the options fingerprint.
    return static_cast<std::size_t>(
        k.spec.lo ^ (k.spec.hi * 0x9e3779b97f4a7c15ull) ^
        (k.options * 0xc2b2ae3d27d4eb4full));
  }
};

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t insertions = 0;
  std::uint64_t rejected = 0;  ///< payload larger than a shard's budget
  std::size_t entries = 0;
  std::size_t bytes_live = 0;    ///< slab bytes held by cached entries
  std::size_t bytes_pooled = 0;  ///< slab bytes parked on freelists
  std::size_t byte_budget = 0;
};

class FlowCache {
 public:
  /// `byte_budget` bounds the live payload bytes across all shards
  /// (rounded slab sizes + fixed per-entry overhead); `shards` is clamped
  /// to >= 1.
  explicit FlowCache(std::size_t byte_budget, int shards = 16);

  /// Resident entries hold raw slab blocks; ~SlabPool only frees its
  /// freelist, so they must be released before the shards go away.
  ~FlowCache() { clear(); }

  /// Copy the payload for `key` into `*out` and mark the entry
  /// most-recently-used.  False (and a miss count) when absent.
  bool lookup(const CacheKey& key, std::string* out);

  /// Insert `payload` for `key`, evicting LRU entries as needed.  A key
  /// already present keeps its existing payload (two racing misses compute
  /// identical bytes; the first one wins).
  void insert(const CacheKey& key, std::string_view payload);

  /// Drop every entry (slab blocks go back to the pools, freelists are
  /// trimmed).  Counters keep their totals.
  void clear();

  CacheStats stats() const;

  /// Fixed accounting overhead charged per entry on top of its slab block
  /// (index node, LRU node, key).
  static constexpr std::size_t kEntryOverhead = 128;

 private:
  struct Entry {
    CacheKey key;
    SlabPool::Block block;
    std::size_t payload_len = 0;
    std::size_t charged = 0;  ///< block.size + kEntryOverhead
  };
  struct Shard {
    std::mutex m;
    std::list<Entry> lru;  ///< front = most recently used
    std::unordered_map<CacheKey, std::list<Entry>::iterator, CacheKeyHash>
        index;
    SlabPool pool;
    std::size_t bytes = 0;  ///< charged bytes of live entries
  };

  Shard& shard_for(const CacheKey& key) {
    return *shards_[CacheKeyHash{}(key) % shards_.size()];
  }
  /// Evict cold entries of `s` until `need` more charged bytes fit the
  /// per-shard budget.  Caller holds s.m.
  void evict_for(Shard& s, std::size_t need);

  std::vector<std::unique_ptr<Shard>> shards_;
  std::size_t shard_budget_ = 0;
  std::size_t byte_budget_ = 0;

  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> insertions_{0};
  std::atomic<std::uint64_t> rejected_{0};
};

}  // namespace sitm::serve
