#include "bdd/reorder.hpp"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "util/error.hpp"

namespace sitm {

BddRef permute(BddManager& mgr, BddRef f, const std::vector<int>& perm) {
  if (static_cast<int>(perm.size()) != mgr.num_vars())
    throw Error("permute: permutation size mismatch");
  std::unordered_map<BddRef, BddRef> memo;
  auto rec = [&](auto&& self, BddRef node) -> BddRef {
    if (mgr.is_const(node)) return node;
    if (auto it = memo.find(node); it != memo.end()) return it->second;
    const int v = mgr.var_of(node);
    const BddRef low = self(self, mgr.low_of(node));
    const BddRef high = self(self, mgr.high_of(node));
    // ite on the renamed variable keeps the result reduced and ordered.
    const BddRef out =
        mgr.ite(mgr.literal(perm[static_cast<std::size_t>(v)]), high, low);
    memo.emplace(node, out);
    return out;
  };
  return rec(rec, f);
}

std::size_t size_under_order(BddManager& mgr, BddRef f,
                             const std::vector<int>& perm) {
  return mgr.dag_size(permute(mgr, f, perm));
}

SiftResult sift_order(BddManager& mgr, BddRef f, int max_rounds) {
  const int n = mgr.num_vars();
  SiftResult result;
  result.perm.resize(static_cast<std::size_t>(n));
  std::iota(result.perm.begin(), result.perm.end(), 0);
  result.size_before = mgr.dag_size(f);
  std::size_t best_size = result.size_before;

  // order[level] = original variable at that level (inverse of perm).
  std::vector<int> order(result.perm);

  auto perm_of_order = [&](const std::vector<int>& ord) {
    std::vector<int> perm(static_cast<std::size_t>(n));
    for (int level = 0; level < n; ++level)
      perm[static_cast<std::size_t>(ord[static_cast<std::size_t>(level)])] =
          level;
    return perm;
  };

  for (int round = 0; round < max_rounds; ++round) {
    bool improved = false;
    for (int i = 0; i < n; ++i) {
      // Try moving the variable currently at level i to every other level.
      int best_level = i;
      for (int j = 0; j < n; ++j) {
        if (j == i) continue;
        std::vector<int> candidate = order;
        const int var = candidate[static_cast<std::size_t>(i)];
        candidate.erase(candidate.begin() + i);
        candidate.insert(candidate.begin() + j, var);
        const std::size_t size =
            size_under_order(mgr, f, perm_of_order(candidate));
        if (size < best_size) {
          best_size = size;
          best_level = j;
        }
      }
      if (best_level != i) {
        const int var = order[static_cast<std::size_t>(i)];
        order.erase(order.begin() + i);
        order.insert(order.begin() + best_level, var);
        improved = true;
      }
    }
    if (!improved) break;
  }

  result.perm = perm_of_order(order);
  result.size_after = best_size;
  return result;
}

}  // namespace sitm
