#include "bdd/bdd.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/flat_map.hpp"

namespace sitm {

namespace {
constexpr std::size_t kInitialUnique = 1u << 10;
/// Fixed computed-cache size: 2^15 entries (512 KiB).  Lossy by design —
/// a collision overwrites — so this bounds memory for arbitrarily long
/// operation sequences while still capturing the recursion locality of ITE.
constexpr std::size_t kComputedSize = 1u << 15;
}  // namespace

BddManager::BddManager(int num_vars) : num_vars_(num_vars) {
  if (num_vars < 0 || num_vars > 64) throw Error("BddManager: 0..64 variables");
  nodes_.push_back(Node{num_vars_, kFalse, kFalse});  // 0 = FALSE
  nodes_.push_back(Node{num_vars_, kTrue, kTrue});    // 1 = TRUE
  unique_.assign(kInitialUnique, UniqueSlot{});
  unique_mask_ = kInitialUnique - 1;
  computed_.assign(kComputedSize, IteSlot{});
  computed_mask_ = kComputedSize - 1;
}

void BddManager::grow_unique() {
  std::vector<UniqueSlot> old = std::move(unique_);
  unique_.assign(old.size() * 2, UniqueSlot{});
  unique_mask_ = unique_.size() - 1;
  for (const UniqueSlot& slot : old) {
    if (slot.ref == kEmptySlot) continue;
    std::size_t i = hash_node(slot.var, slot.low, slot.high) & unique_mask_;
    while (unique_[i].ref != kEmptySlot) i = (i + 1) & unique_mask_;
    unique_[i] = slot;
  }
}

BddRef BddManager::make(int var, BddRef low, BddRef high) {
  if (low == high) return low;
  // Grow at ~70% load so linear probes stay short.
  if ((nodes_.size() + 1) * 10 >= unique_.size() * 7) grow_unique();
  std::size_t i = hash_node(var, low, high) & unique_mask_;
  while (true) {
    UniqueSlot& slot = unique_[i];
    if (slot.ref == kEmptySlot) {
      const BddRef ref = static_cast<BddRef>(nodes_.size());
      nodes_.push_back(Node{var, low, high});
      slot = UniqueSlot{var, low, high, ref};
      return ref;
    }
    if (slot.var == var && slot.low == low && slot.high == high)
      return slot.ref;
    i = (i + 1) & unique_mask_;
  }
}

BddRef BddManager::literal(int v, bool positive) {
  if (v < 0 || v >= num_vars_) throw Error("BddManager::literal: bad var");
  return positive ? make(v, kFalse, kTrue) : make(v, kTrue, kFalse);
}

BddRef BddManager::ite(BddRef f, BddRef g, BddRef h) {
  // Terminal cases.
  if (f == kTrue) return g;
  if (f == kFalse) return h;
  if (g == h) return g;
  if (g == kTrue && h == kFalse) return f;

  IteSlot& cache = computed_[hash_ite(f, g, h) & computed_mask_];
  if (cache.f == f && cache.g == g && cache.h == h) return cache.result;

  const int vf = nodes_[f].var;
  const int vg = nodes_[g].var;
  const int vh = nodes_[h].var;
  const int top = std::min({vf, vg, vh});

  const BddRef f0 = vf == top ? nodes_[f].low : f;
  const BddRef f1 = vf == top ? nodes_[f].high : f;
  const BddRef g0 = vg == top ? nodes_[g].low : g;
  const BddRef g1 = vg == top ? nodes_[g].high : g;
  const BddRef h0 = vh == top ? nodes_[h].low : h;
  const BddRef h1 = vh == top ? nodes_[h].high : h;

  const BddRef low = ite(f0, g0, h0);
  const BddRef high = ite(f1, g1, h1);
  const BddRef result = make(top, low, high);
  // `cache` stays valid across the recursion (the table never resizes);
  // whatever the recursive calls wrote there loses the slot to this entry.
  cache = IteSlot{f, g, h, result};
  return result;
}

BddRef BddManager::cofactor(BddRef f, int var, bool value) {
  if (is_const(f)) return f;
  const int v = nodes_[f].var;
  if (v > var) return f;
  if (v == var) return value ? nodes_[f].high : nodes_[f].low;
  const BddRef low = cofactor(nodes_[f].low, var, value);
  const BddRef high = cofactor(nodes_[f].high, var, value);
  return make(v, low, high);
}

BddRef BddManager::exists(BddRef f, int var) {
  return bdd_or(cofactor(f, var, false), cofactor(f, var, true));
}

BddRef BddManager::exists_mask(BddRef f, std::uint64_t vars) {
  while (vars) {
    const int v = __builtin_ctzll(vars);
    vars &= vars - 1;
    f = exists(f, v);
  }
  return f;
}

BddRef BddManager::forall(BddRef f, int var) {
  return bdd_and(cofactor(f, var, false), cofactor(f, var, true));
}

BddRef BddManager::compose(BddRef f, int var, BddRef g) {
  return ite(g, cofactor(f, var, true), cofactor(f, var, false));
}

bool BddManager::eval(BddRef f, std::uint64_t assignment) const {
  while (!is_const(f)) {
    const Node& n = nodes_[f];
    f = ((assignment >> n.var) & 1) ? n.high : n.low;
  }
  return f == kTrue;
}

double BddManager::sat_count(BddRef f) {
  FlatMap<BddRef, double> memo;
  // fractional count: fraction of assignments satisfying f
  auto rec = [&](auto&& self, BddRef node) -> double {
    if (node == kFalse) return 0.0;
    if (node == kTrue) return 1.0;
    if (const double* hit = memo.find(node)) return *hit;
    const double r =
        0.5 * self(self, nodes_[node].low) + 0.5 * self(self, nodes_[node].high);
    memo.emplace(node, r);
    return r;
  };
  double frac = rec(rec, f);
  for (int i = 0; i < num_vars_; ++i) frac *= 2.0;
  return frac;
}

bool BddManager::pick_one(BddRef f, std::uint64_t* assignment) const {
  if (f == kFalse) return false;
  std::uint64_t a = 0;
  while (!is_const(f)) {
    const Node& n = nodes_[f];
    if (n.high != kFalse) {
      a |= std::uint64_t{1} << n.var;
      f = n.high;
    } else {
      f = n.low;
    }
  }
  *assignment = a;
  return true;
}

std::size_t BddManager::dag_size(BddRef f) const {
  std::vector<BddRef> stack{f};
  FlatMap<BddRef, char> seen;
  std::size_t n = 0;
  while (!stack.empty()) {
    const BddRef node = stack.back();
    stack.pop_back();
    if (!seen.emplace(node, 1).second) continue;
    ++n;
    if (!is_const(node)) {
      stack.push_back(nodes_[node].low);
      stack.push_back(nodes_[node].high);
    }
  }
  return n;
}

BddRef BddManager::from_cover(const Cover& cover) {
  BddRef sum = kFalse;
  for (const auto& cube : cover.cubes()) {
    BddRef product = kTrue;
    // AND literals from the highest variable down so intermediate BDDs stay
    // ordered-cheap.
    for (int v = num_vars_ - 1; v >= 0; --v) {
      if (!cube.has_literal(v)) continue;
      product = bdd_and(product, literal(v, cube.polarity(v)));
    }
    sum = bdd_or(sum, product);
  }
  return sum;
}

Cover BddManager::to_cover(BddRef f) {
  Cover out(num_vars_);
  Cube path = Cube::one();
  auto rec = [&](auto&& self, BddRef node, Cube cube) -> void {
    if (node == kFalse) return;
    if (node == kTrue) {
      out.add(cube);
      return;
    }
    const Node& n = nodes_[node];
    self(self, n.low, cube.with_literal(n.var, false));
    self(self, n.high, cube.with_literal(n.var, true));
  };
  rec(rec, f, path);
  out.make_minimal_wrt_containment();
  return out;
}

}  // namespace sitm
