#pragma once
// Variable reordering for the BDD package.
//
// The manager itself keeps a fixed order (variable index = level), so
// reordering is implemented by *rebuilding*: `permute` constructs the
// function obtained by renaming variable v to perm[v], and `sift_order`
// greedily searches for an order minimizing the DAG size of a given
// function (classic sifting, evaluated by rebuild — quadratic in the
// variable count, fine at specification sizes).  The caller applies the
// returned order by permuting its functions or re-encoding its problem.

#include <vector>

#include "bdd/bdd.hpp"

namespace sitm {

/// f with variable v renamed to perm[v]; perm must be a permutation of
/// 0..num_vars-1.
BddRef permute(BddManager& mgr, BddRef f, const std::vector<int>& perm);

/// DAG size of f under the order that places original variable order_pos[v]
/// at level v (i.e. evaluates a candidate order without keeping the result).
std::size_t size_under_order(BddManager& mgr, BddRef f,
                             const std::vector<int>& perm);

struct SiftResult {
  std::vector<int> perm;   ///< best found renaming (old var -> new level)
  std::size_t size_before = 0;
  std::size_t size_after = 0;
};

/// Greedy sifting: repeatedly move each variable to its best level, keeping
/// improvements.  `max_rounds` bounds the outer loop.
SiftResult sift_order(BddManager& mgr, BddRef f, int max_rounds = 2);

}  // namespace sitm
