#pragma once
// Reduced Ordered Binary Decision Diagrams.
//
// A small, self-contained ROBDD package in the style of the classic
// Brace-Rudell-Bryant design: a unique table for node hashing, a computed
// table for ITE memoization, and the usual operator set.  Used by the STG
// engine for symbolic reachability and by the tests to cross-check the
// explicit cover algebra.
//
// Node 0 is the constant FALSE, node 1 the constant TRUE.  Variables are
// ordered by their index (no dynamic reordering; specifications here have at
// most a few dozen variables).

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "boolf/cover.hpp"

namespace sitm {

using BddRef = std::uint32_t;

class BddManager {
 public:
  explicit BddManager(int num_vars);

  int num_vars() const { return num_vars_; }

  static constexpr BddRef kFalse = 0;
  static constexpr BddRef kTrue = 1;

  BddRef bdd_false() const { return kFalse; }
  BddRef bdd_true() const { return kTrue; }
  /// The function of variable `v` (or its complement).
  BddRef literal(int v, bool positive = true);

  // ----- operators ------------------------------------------------------
  BddRef ite(BddRef f, BddRef g, BddRef h);
  BddRef bdd_not(BddRef f) { return ite(f, kFalse, kTrue); }
  BddRef bdd_and(BddRef f, BddRef g) { return ite(f, g, kFalse); }
  BddRef bdd_or(BddRef f, BddRef g) { return ite(f, kTrue, g); }
  BddRef bdd_xor(BddRef f, BddRef g) { return ite(f, bdd_not(g), g); }
  BddRef bdd_imp(BddRef f, BddRef g) { return ite(f, g, kTrue); }

  /// Shannon cofactor with respect to var=value.
  BddRef cofactor(BddRef f, int var, bool value);
  /// Existential quantification over one variable or a set (mask).
  BddRef exists(BddRef f, int var);
  BddRef exists_mask(BddRef f, std::uint64_t vars);
  BddRef forall(BddRef f, int var);
  /// Compose: substitute function g for variable var in f.
  BddRef compose(BddRef f, int var, BddRef g);

  // ----- queries ----------------------------------------------------------
  bool eval(BddRef f, std::uint64_t assignment) const;
  /// Number of satisfying assignments over all num_vars variables.
  double sat_count(BddRef f);
  /// Any satisfying assignment; returns false if f == FALSE.
  bool pick_one(BddRef f, std::uint64_t* assignment) const;
  /// Node count of the (shared) graph rooted at f.
  std::size_t dag_size(BddRef f) const;
  std::size_t num_nodes() const { return nodes_.size(); }

  // ----- conversions -------------------------------------------------------
  /// Build a BDD from an SOP cover (variables must fit num_vars).
  BddRef from_cover(const Cover& cover);
  /// Extract an (irredundant-path) SOP from the BDD.
  Cover to_cover(BddRef f);

  int var_of(BddRef f) const { return nodes_[f].var; }
  BddRef low_of(BddRef f) const { return nodes_[f].low; }
  BddRef high_of(BddRef f) const { return nodes_[f].high; }
  bool is_const(BddRef f) const { return f <= 1; }

 private:
  struct Node {
    int var;  // num_vars_ for terminals
    BddRef low, high;
  };

  BddRef make(int var, BddRef low, BddRef high);

  struct NodeKey {
    int var;
    BddRef low, high;
    bool operator==(const NodeKey&) const = default;
  };
  struct NodeKeyHash {
    std::size_t operator()(const NodeKey& k) const {
      std::uint64_t x = (static_cast<std::uint64_t>(k.var) << 1) ^
                        (static_cast<std::uint64_t>(k.low) << 32) ^ k.high;
      x *= 0x9e3779b97f4a7c15ULL;
      return static_cast<std::size_t>(x ^ (x >> 29));
    }
  };
  struct IteKey {
    BddRef f, g, h;
    bool operator==(const IteKey&) const = default;
  };
  struct IteKeyHash {
    std::size_t operator()(const IteKey& k) const {
      std::uint64_t x = (static_cast<std::uint64_t>(k.f) << 40) ^
                        (static_cast<std::uint64_t>(k.g) << 20) ^ k.h;
      x *= 0xff51afd7ed558ccdULL;
      return static_cast<std::size_t>(x ^ (x >> 33));
    }
  };

  int num_vars_;
  std::vector<Node> nodes_;
  std::unordered_map<NodeKey, BddRef, NodeKeyHash> unique_;
  std::unordered_map<IteKey, BddRef, IteKeyHash> computed_;
};

}  // namespace sitm
