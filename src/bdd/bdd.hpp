#pragma once
// Reduced Ordered Binary Decision Diagrams.
//
// A small, self-contained ROBDD package in the style of the classic
// Brace-Rudell-Bryant design: a unique table for node hashing, a computed
// table for ITE memoization, and the usual operator set.  Used by the STG
// engine for symbolic reachability and by the tests to cross-check the
// explicit cover algebra.
//
// Node 0 is the constant FALSE, node 1 the constant TRUE.  Variables are
// ordered by their index (no dynamic reordering; specifications here have at
// most a few dozen variables).
//
// Both hash tables follow the classic package design instead of generic
// containers: the unique table is an open-addressing power-of-two table
// whose slots hold the (var, low, high) key inline (one cache line probe,
// no node allocation), and the ITE cache is a bounded direct-mapped lossy
// cache — colliding entries simply overwrite, which caps memory and matches
// how production BDD packages (CUDD, BuDDy) behave.

#include <cstdint>
#include <string>
#include <vector>

#include "boolf/cover.hpp"

namespace sitm {

using BddRef = std::uint32_t;

class BddManager {
 public:
  explicit BddManager(int num_vars);

  int num_vars() const { return num_vars_; }

  static constexpr BddRef kFalse = 0;
  static constexpr BddRef kTrue = 1;

  BddRef bdd_false() const { return kFalse; }
  BddRef bdd_true() const { return kTrue; }
  /// The function of variable `v` (or its complement).
  BddRef literal(int v, bool positive = true);

  // ----- operators ------------------------------------------------------
  BddRef ite(BddRef f, BddRef g, BddRef h);
  BddRef bdd_not(BddRef f) { return ite(f, kFalse, kTrue); }
  BddRef bdd_and(BddRef f, BddRef g) { return ite(f, g, kFalse); }
  BddRef bdd_or(BddRef f, BddRef g) { return ite(f, kTrue, g); }
  BddRef bdd_xor(BddRef f, BddRef g) { return ite(f, bdd_not(g), g); }
  BddRef bdd_imp(BddRef f, BddRef g) { return ite(f, g, kTrue); }

  /// Shannon cofactor with respect to var=value.
  BddRef cofactor(BddRef f, int var, bool value);
  /// Existential quantification over one variable or a set (mask).
  BddRef exists(BddRef f, int var);
  BddRef exists_mask(BddRef f, std::uint64_t vars);
  BddRef forall(BddRef f, int var);
  /// Compose: substitute function g for variable var in f.
  BddRef compose(BddRef f, int var, BddRef g);

  // ----- queries ----------------------------------------------------------
  bool eval(BddRef f, std::uint64_t assignment) const;
  /// Number of satisfying assignments over all num_vars variables.
  double sat_count(BddRef f);
  /// Any satisfying assignment; returns false if f == FALSE.
  bool pick_one(BddRef f, std::uint64_t* assignment) const;
  /// Node count of the (shared) graph rooted at f.
  std::size_t dag_size(BddRef f) const;
  std::size_t num_nodes() const { return nodes_.size(); }

  // ----- conversions -------------------------------------------------------
  /// Build a BDD from an SOP cover (variables must fit num_vars).
  BddRef from_cover(const Cover& cover);
  /// Extract an (irredundant-path) SOP from the BDD.
  Cover to_cover(BddRef f);

  int var_of(BddRef f) const { return nodes_[f].var; }
  BddRef low_of(BddRef f) const { return nodes_[f].low; }
  BddRef high_of(BddRef f) const { return nodes_[f].high; }
  bool is_const(BddRef f) const { return f <= 1; }

 private:
  struct Node {
    int var;  // num_vars_ for terminals
    BddRef low, high;
  };

  BddRef make(int var, BddRef low, BddRef high);

  static constexpr BddRef kEmptySlot = 0xffffffffu;

  /// Open-addressing unique-table slot: the node key inline plus the node id.
  struct UniqueSlot {
    std::int32_t var = 0;
    BddRef low = 0, high = 0;
    BddRef ref = kEmptySlot;
  };
  /// Direct-mapped computed-cache entry for ite(f, g, h) = result.
  struct IteSlot {
    BddRef f = kEmptySlot, g = 0, h = 0;
    BddRef result = 0;
  };

  static std::uint64_t hash_node(std::int32_t var, BddRef low, BddRef high) {
    std::uint64_t x = (static_cast<std::uint64_t>(var) << 1) ^
                      (static_cast<std::uint64_t>(low) << 32) ^ high;
    x *= 0x9e3779b97f4a7c15ULL;
    return x ^ (x >> 29);
  }
  static std::uint64_t hash_ite(BddRef f, BddRef g, BddRef h) {
    std::uint64_t x = (static_cast<std::uint64_t>(f) << 40) ^
                      (static_cast<std::uint64_t>(g) << 20) ^ h;
    x *= 0xff51afd7ed558ccdULL;
    return x ^ (x >> 33);
  }

  void grow_unique();

  int num_vars_;
  std::vector<Node> nodes_;
  std::vector<UniqueSlot> unique_;
  std::size_t unique_mask_ = 0;
  std::vector<IteSlot> computed_;
  std::size_t computed_mask_ = 0;
};

}  // namespace sitm
