#include "flow/batch.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <mutex>
#include <thread>

#include "benchlib/suite.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/parallel.hpp"
#include "util/scheduler.hpp"

namespace sitm {

Json BatchResult::to_json() const {
  Json j = Json::object();
  j.set("specs", static_cast<double>(items.size()));
  j.set("ok", num_ok);
  j.set("failed", num_failed);
  j.set("total_ms", total_ms);
  j.set("workers", workers);
  j.set("steals", steals);
  Json reports = Json::array();
  for (const auto& item : items) {
    Json r = item.report.to_json();
    r.set("label", item.label);
    if (item.attempts > 1) r.set("attempts", item.attempts);
    reports.push(std::move(r));
  }
  j.set("reports", std::move(reports));
  return j;
}

std::vector<std::string> collect_spec_files(const std::string& dir) {
  namespace fs = std::filesystem;
  if (!fs::is_directory(dir)) throw Error("not a directory: " + dir);
  std::vector<std::string> out;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    const auto ext = entry.path().extension();
    if (ext == ".g" || ext == ".sg" || ext == ".astg")
      out.push_back(entry.path().string());
  }
  std::sort(out.begin(), out.end());
  return out;
}

namespace {

/// Watchdog slot for one in-flight item; all fields guarded by `m` (the
/// watchdog polls at millisecond granularity, so the lock is uncontended).
struct ItemWatch {
  std::mutex m;
  std::shared_ptr<RunGuard> guard;
  std::chrono::steady_clock::time_point started;
  bool active = false;
  bool overdue = false;
};

bool is_resource_kind(FailureKind kind) {
  return kind == FailureKind::kBudget || kind == FailureKind::kDeadline ||
         kind == FailureKind::kCancelled;
}

/// Run one flow per work item on `threads` workers; `run(i, flow_opts)`
/// must build the item's flow off `flow_opts` (which carries the per-item
/// guard) and return its report.  Input order is preserved by indexing.
BatchResult run_pool(std::vector<BatchItem> items, const BatchOptions& opts,
                     const std::function<FlowReport(
                         std::size_t, const FlowOptions&)>& run) {
  BatchResult result;
  result.items = std::move(items);
  const auto start = std::chrono::steady_clock::now();

  // Watchdog: cancels items still running past their deadline.  The
  // per-item guard's own deadline already stops loops that poll it; the
  // watchdog covers code that blocks without polling, by requesting a
  // cancel the next poll *will* see.  Either path is normalized to
  // failure_kind `deadline` below because the cause is the overrun.
  std::vector<ItemWatch> watch(result.items.size());
  std::atomic<bool> pool_done{false};
  std::thread watchdog;
  if (opts.item_deadline_ms > 0 && !result.items.empty()) {
    watchdog = std::thread([&] {
      while (!pool_done.load(std::memory_order_relaxed)) {
        const auto now = std::chrono::steady_clock::now();
        for (auto& w : watch) {
          std::shared_ptr<RunGuard> overdue_guard;
          {
            const std::lock_guard<std::mutex> lock(w.m);
            if (!w.active || w.overdue) continue;
            const double ms =
                std::chrono::duration<double, std::milli>(now - w.started)
                    .count();
            if (ms <= opts.item_deadline_ms) continue;
            w.overdue = true;
            overdue_guard = w.guard;
          }
          if (overdue_guard) overdue_guard->request_cancel();
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
  }

  std::mutex report_mutex;
  // Items never throw out of the body: the Flow captures stage errors in
  // the report, and the catch arms here guard the surroundings (suite
  // lookup, fault sites, non-standard exceptions) so one bad item cannot
  // take down the batch.  The work-stealing pool keeps workers busy when
  // item costs are skewed (one huge spec no longer serializes the tail);
  // each worker writes only slot i, so results are bit-identical to the
  // serial run at any thread count.
  result.workers = resolve_worker_threads(opts.threads, result.items.size());
  parallel_for_jobs(result.items.size(), opts.threads, [&](std::size_t i) {
    ItemWatch& w = watch[i];
    auto attempt = [&](FlowOptions flow_opts) -> FlowReport {
      flow_opts.guard = std::make_shared<RunGuard>();
      if (opts.item_deadline_ms > 0)
        flow_opts.deadline_ms = opts.item_deadline_ms;
      {
        const std::lock_guard<std::mutex> lock(w.m);
        w.guard = flow_opts.guard;
        w.started = std::chrono::steady_clock::now();
        w.overdue = false;
        w.active = true;
      }
      FlowReport report;
      try {
        fault::hit("batch.item");
        report = run(i, flow_opts);
      } catch (const std::exception& e) {
        report.ok = false;
        report.failure = e.what();
        report.failure_kind = classify_exception(e);
        report.name = result.items[i].label;
      } catch (...) {
        report.ok = false;
        report.failure = "non-standard exception escaped the flow";
        report.failure_kind = FailureKind::kInternal;
        report.name = result.items[i].label;
      }
      bool overdue = false;
      {
        const std::lock_guard<std::mutex> lock(w.m);
        w.active = false;
        overdue = w.overdue;
      }
      if (overdue && !report.ok && is_resource_kind(report.failure_kind)) {
        report.failure_kind = FailureKind::kDeadline;
        if (report.failed_stage)
          report.stage(*report.failed_stage).failure_kind =
              FailureKind::kDeadline;
      }
      return report;
    };

    FlowReport report = attempt(opts.flow);
    int attempts = 1;
    if (!report.ok && opts.retry_degraded &&
        is_resource_kind(report.failure_kind)) {
      FlowOptions degraded = opts.flow;
      degraded.on_budget = FlowOptions::OnBudget::kDegrade;
      report = attempt(std::move(degraded));
      attempts = 2;
    }

    if (opts.on_report) {
      const std::lock_guard<std::mutex> lock(report_mutex);
      opts.on_report(report);
    }
    result.items[i].report = std::move(report);
    result.items[i].attempts = attempts;
  }, &result.steals);

  pool_done.store(true, std::memory_order_relaxed);
  if (watchdog.joinable()) watchdog.join();

  for (const auto& item : result.items)
    (item.report.ok ? result.num_ok : result.num_failed) += 1;
  result.total_ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  return result;
}

}  // namespace

BatchResult run_batch_files(const std::vector<std::string>& paths,
                            const BatchOptions& opts) {
  std::vector<BatchItem> items(paths.size());
  for (std::size_t i = 0; i < paths.size(); ++i) items[i].label = paths[i];
  return run_pool(std::move(items), opts,
                  [&](std::size_t i, const FlowOptions& flow_opts) {
                    Flow flow(flow_opts);
                    return flow.run_file(paths[i]);
                  });
}

BatchResult run_batch_suite(const std::vector<std::string>& names,
                            const BatchOptions& opts) {
  const std::vector<std::string> labels =
      names.empty() ? bench::suite_names() : names;
  std::vector<BatchItem> items(labels.size());
  for (std::size_t i = 0; i < labels.size(); ++i) items[i].label = labels[i];
  return run_pool(std::move(items), opts,
                  [&](std::size_t i, const FlowOptions& flow_opts) {
                    Spec spec;
                    spec.name = labels[i];
                    spec.format = SpecFormat::kG;
                    spec.stg = bench::suite_benchmark(labels[i]).stg;
                    Flow flow(flow_opts);
                    return flow.run_spec(std::move(spec));
                  });
}

}  // namespace sitm
