#include "flow/batch.hpp"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <mutex>

#include "benchlib/suite.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"

namespace sitm {

Json BatchResult::to_json() const {
  Json j = Json::object();
  j.set("specs", static_cast<double>(items.size()));
  j.set("ok", num_ok);
  j.set("failed", num_failed);
  j.set("total_ms", total_ms);
  Json reports = Json::array();
  for (const auto& item : items) {
    Json r = item.report.to_json();
    r.set("label", item.label);
    reports.push(std::move(r));
  }
  j.set("reports", std::move(reports));
  return j;
}

std::vector<std::string> collect_spec_files(const std::string& dir) {
  namespace fs = std::filesystem;
  if (!fs::is_directory(dir)) throw Error("not a directory: " + dir);
  std::vector<std::string> out;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    const auto ext = entry.path().extension();
    if (ext == ".g" || ext == ".sg" || ext == ".astg")
      out.push_back(entry.path().string());
  }
  std::sort(out.begin(), out.end());
  return out;
}

namespace {

/// Run one flow per work item on `threads` workers; `run(i)` must fill
/// items[i].report.  Input order is preserved by indexing.
BatchResult run_pool(std::vector<BatchItem> items, const BatchOptions& opts,
                     const std::function<FlowReport(std::size_t)>& run) {
  BatchResult result;
  result.items = std::move(items);
  const auto start = std::chrono::steady_clock::now();

  std::mutex report_mutex;
  // Items never throw out of the body: the Flow captures stage errors in
  // the report, and this guards the surroundings (e.g. suite lookup) so
  // one bad item cannot take down the batch.
  parallel_for(result.items.size(), opts.threads, [&](std::size_t i) {
    FlowReport report;
    try {
      report = run(i);
    } catch (const std::exception& e) {
      report.ok = false;
      report.failure = e.what();
      report.name = result.items[i].label;
    }
    if (opts.on_report) {
      const std::lock_guard<std::mutex> lock(report_mutex);
      opts.on_report(report);
    }
    result.items[i].report = std::move(report);
  });

  for (const auto& item : result.items)
    (item.report.ok ? result.num_ok : result.num_failed) += 1;
  result.total_ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  return result;
}

}  // namespace

BatchResult run_batch_files(const std::vector<std::string>& paths,
                            const BatchOptions& opts) {
  std::vector<BatchItem> items(paths.size());
  for (std::size_t i = 0; i < paths.size(); ++i) items[i].label = paths[i];
  return run_pool(std::move(items), opts, [&](std::size_t i) {
    Flow flow(opts.flow);
    return flow.run_file(paths[i]);
  });
}

BatchResult run_batch_suite(const std::vector<std::string>& names,
                            const BatchOptions& opts) {
  const std::vector<std::string> labels =
      names.empty() ? bench::suite_names() : names;
  std::vector<BatchItem> items(labels.size());
  for (std::size_t i = 0; i < labels.size(); ++i) items[i].label = labels[i];
  return run_pool(std::move(items), opts, [&](std::size_t i) {
    Spec spec;
    spec.name = labels[i];
    spec.format = SpecFormat::kG;
    spec.stg = bench::suite_benchmark(labels[i]).stg;
    Flow flow(opts.flow);
    return flow.run_spec(std::move(spec));
  });
}

}  // namespace sitm
