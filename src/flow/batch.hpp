#pragma once
// Parallel batch driver: run the full staged flow over many specifications
// on a thread pool and aggregate the per-spec reports into one JSON
// document (`sitm batch`).
//
// Two levels of parallelism compose: the batch pool runs whole flows
// concurrently (one spec per worker, on the work-stealing scheduler of
// util/scheduler.hpp — the calling thread participates as a worker), and
// each flow's synth stage may additionally parallelize over signals
// (McOptions::threads).  Results are returned in input order regardless of
// scheduling — every worker writes only its own index's slot, so the
// aggregate is bit-identical at any thread count — and a failing spec is
// recorded in its report instead of aborting the batch.
//
// Resource governance: with `item_deadline_ms` set, every item runs under
// its own RunGuard with that deadline, and a watchdog thread additionally
// cancels items that overrun it (covering code that blocks without polling
// the guard); either way the overdue item is marked failure_kind
// `deadline`.  `retry_degraded` re-runs a budget/deadline-failed item once
// under the kDegrade policy (fresh deadline window) so a partial result can
// still be salvaged.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "flow/flow.hpp"

namespace sitm {

struct BatchOptions {
  /// Options for each per-spec flow.
  FlowOptions flow;
  /// Concurrent flows.  1 = serial, 0 = one per hardware core.
  int threads = 1;
  /// Per-item wall-clock deadline; 0 = none.  Applied through a per-item
  /// RunGuard (cooperative) and the watchdog (cancel from outside), so an
  /// overdue item ends as failure_kind `deadline` instead of stalling the
  /// batch indefinitely.
  double item_deadline_ms = 0;
  /// Retry a budget/deadline/cancelled item once with FlowOptions::on_budget
  /// = kDegrade and a fresh deadline window.
  bool retry_degraded = false;
  /// Called after each spec finishes (from worker threads, serialized by
  /// the driver) — progress reporting for the CLI.
  std::function<void(const FlowReport&)> on_report;
};

struct BatchItem {
  std::string label;  ///< file path or suite benchmark name
  FlowReport report;
  int attempts = 1;  ///< 2 when retry_degraded re-ran the item
};

struct BatchResult {
  std::vector<BatchItem> items;  ///< input order
  int num_ok = 0;
  int num_failed = 0;
  double total_ms = 0;
  /// Scheduler observability (informational; never affects the reports):
  /// worker count the pool resolved to, and how many items ran on a worker
  /// other than the deque they were submitted to.
  int workers = 1;
  std::uint64_t steals = 0;

  bool all_ok() const { return num_failed == 0; }
  /// Aggregate document: batch totals plus every per-spec FlowReport.
  Json to_json() const;
};

/// All .g/.sg files directly under `dir`, sorted by name.  Throws
/// sitm::Error when `dir` is not a directory.
std::vector<std::string> collect_spec_files(const std::string& dir);

/// Run the flow over explicit spec files.
BatchResult run_batch_files(const std::vector<std::string>& paths,
                            const BatchOptions& opts = {});

/// Run the flow over the named Table-1 suite benchmarks (all of them when
/// `names` is empty).
BatchResult run_batch_suite(const std::vector<std::string>& names = {},
                            const BatchOptions& opts = {});

}  // namespace sitm
