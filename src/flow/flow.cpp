#include "flow/flow.hpp"

#include <chrono>
#include <fstream>
#include <limits>

#include "netlist/writers.hpp"
#include "sg/properties.hpp"
#include "sg/sg_io.hpp"
#include "stg/canon.hpp"
#include "stg/lint.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/parallel.hpp"

namespace sitm {

namespace {

constexpr const char* kStageNames[kNumStages] = {
    "load", "reachability", "properties", "csc", "synth",
    "decomp", "map", "check", "verify", "emit",
};

/// Static fault-injection site per stage entry (fault::hit wants a stable
/// const char*).
constexpr const char* kStageFaultSites[kNumStages] = {
    "flow.load",  "flow.reachability", "flow.properties",
    "flow.csc",   "flow.synth",        "flow.decomp",
    "flow.map",   "flow.check",        "flow.verify",
    "flow.emit",
};

constexpr const char* kFailureKindNames[] = {
    "none", "parse", "spec", "budget", "deadline", "cancelled", "internal",
};

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

const char* stage_name(Stage stage) {
  return kStageNames[static_cast<int>(stage)];
}

std::optional<Stage> parse_stage(std::string_view name) {
  for (int i = 0; i < kNumStages; ++i)
    if (name == kStageNames[i]) return static_cast<Stage>(i);
  return std::nullopt;
}

const char* failure_kind_name(FailureKind kind) {
  return kFailureKindNames[static_cast<int>(kind)];
}

std::uint64_t FlowOptions::fingerprint() const {
  StableHasher h;
  h.tag('F');
  // synth stage.
  h.i64(mc.minimize_passes);
  h.i64(static_cast<int>(mc.architecture));
  h.i64(mc.threads);
  // csc stage.
  h.i64(csc.max_insertions);
  h.u64(csc.max_candidates);
  h.u64(csc.rank_top_k);
  h.boolean(csc.reference_planner);
  // map stage (nested synth options included: the mapper resynthesizes).
  h.i64(mapper.library.max_literals);
  h.i64(mapper.mc.minimize_passes);
  h.i64(static_cast<int>(mapper.mc.architecture));
  h.i64(mapper.mc.threads);
  h.u64(mapper.divisors.max_candidates);
  h.i64(mapper.divisors.max_subset_width);
  h.boolean(mapper.divisors.recursive);
  h.boolean(mapper.use_progress_filters);
  h.boolean(mapper.global_acknowledgement);
  h.i64(mapper.max_insertions);
  h.i64(mapper.max_target_events);
  h.i64(mapper.max_full_evals);
  h.i64(mapper.threads);
  h.boolean(mapper.prune_pre_checks);
  // verify / reachability.
  h.u64(verify_max_states);
  h.boolean(symbolic_check);
  // The lint gate decides whether a bad spec fails before reachability, so
  // toggling it changes which outcome a run settles on.
  h.boolean(lint);
  // Same for the check gate (a netlist the checker rejects fails the run),
  // and its knobs change the stage's reported metrics/warnings.
  h.boolean(check);
  h.i64(check_opts.nlint.max_gc_fanin);
  h.boolean(check_opts.reorder);
  h.i64(check_opts.reorder_rounds);
  // Deterministic resource limits (NOT deadline_ms / guard: wall-clock
  // bounds are observational — see the header).
  h.u64(max_states);
  h.u64(work_budget);
  h.i64(static_cast<int>(on_budget));
  // Flow shape.
  h.i64(stop_after ? static_cast<int>(*stop_after) : -1);
  for (int i = 0; i < kNumStages; ++i) h.boolean(skip[static_cast<std::size_t>(i)]);
  // Which outputs exist (not where they are written).
  h.boolean(!emit_sg_path.empty());
  h.boolean(!emit_verilog_path.empty());
  h.boolean(!emit_eqn_path.empty());
  h.boolean(capture_emitted);
  return h.digest().hi ^ (h.digest().lo * 0x9e3779b97f4a7c15ull);
}

FailureKind failure_kind_of(GuardStop stop) {
  switch (stop) {
    case GuardStop::kBudget: return FailureKind::kBudget;
    case GuardStop::kDeadline: return FailureKind::kDeadline;
    case GuardStop::kCancelled: return FailureKind::kCancelled;
    case GuardStop::kNone: break;
  }
  return FailureKind::kNone;
}

FailureKind classify_exception(const std::exception& e) {
  if (const auto* g = dynamic_cast<const GuardExhausted*>(&e))
    return failure_kind_of(g->kind());
  if (dynamic_cast<const ParseError*>(&e)) return FailureKind::kParse;
  if (dynamic_cast<const Error*>(&e)) return FailureKind::kSpec;
  return FailureKind::kInternal;
}

std::optional<double> StageReport::metric_value(std::string_view name) const {
  for (const auto& [k, v] : metrics)
    if (k == name) return v;
  return std::nullopt;
}

Json StageReport::to_json() const {
  Json j = Json::object();
  j.set("stage", stage_name(stage));
  j.set("ran", ran);
  j.set("skipped", skipped);
  j.set("ok", ok);
  if (!failure.empty()) j.set("failure", failure);
  if (failure_kind != FailureKind::kNone)
    j.set("failure_kind", failure_kind_name(failure_kind));
  j.set("wall_ms", wall_ms);
  if (!metrics.empty()) {
    Json m = Json::object();
    for (const auto& [k, v] : metrics) m.set(k, v);
    j.set("metrics", std::move(m));
  }
  if (!info.empty()) {
    Json m = Json::object();
    for (const auto& [k, v] : info) m.set(k, v);
    j.set("info", std::move(m));
  }
  if (!warnings.empty()) {
    Json w = Json::array();
    for (const auto& s : warnings) w.push(s);
    j.set("warnings", std::move(w));
  }
  return j;
}

Json FlowReport::to_json() const {
  Json j = Json::object();
  j.set("name", name);
  j.set("ok", ok);
  if (failed_stage) j.set("failed_stage", stage_name(*failed_stage));
  if (!failure.empty()) j.set("failure", failure);
  if (failure_kind != FailureKind::kNone)
    j.set("failure_kind", failure_kind_name(failure_kind));
  j.set("total_ms", total_ms);
  Json s = Json::array();
  for (const auto& sr : stages) s.push(sr.to_json());
  j.set("stages", std::move(s));
  return j;
}

FlowReport Flow::run_file(const std::string& path) {
  input_path_ = path;
  input_text_.clear();
  return run_stages(Stage::kLoad);
}

FlowReport Flow::run_string(const std::string& text) {
  input_path_.clear();
  input_text_ = text;
  return run_stages(Stage::kLoad);
}

FlowReport Flow::run_spec(Spec spec) {
  ctx_ = FlowContext{};
  ctx_.spec = std::move(spec);
  ctx_.name = ctx_.spec.name;
  return run_stages(Stage::kReachability);
}

FlowReport Flow::run_state_graph(StateGraph sg, std::string name) {
  ctx_ = FlowContext{};
  ctx_.name = std::move(name);
  ctx_.spec.name = ctx_.name;
  ctx_.spec.format = SpecFormat::kSg;
  ctx_.spec.sg = std::move(sg);
  return run_stages(Stage::kReachability);
}

namespace {

/// Load-stage metrics from an already-parsed spec (shared between the real
/// load stage and the pre-parsed entry points).
void describe_spec(const Spec& spec, StageReport& sr) {
  sr.note("format", spec_format_name(spec.format));
  if (!spec.path.empty()) sr.note("path", spec.path);
  if (spec.stg) {
    sr.metric("signals", static_cast<double>(spec.stg->num_signals()));
    sr.metric("transitions", static_cast<double>(spec.stg->num_transitions()));
    sr.metric("places", static_cast<double>(spec.stg->num_places()));
  } else if (spec.sg) {
    sr.metric("signals", static_cast<double>(spec.sg->num_signals()));
    sr.metric("states", static_cast<double>(spec.sg->num_states()));
    sr.metric("arcs", static_cast<double>(spec.sg->num_arcs()));
  }
}

}  // namespace

FlowReport Flow::run_stages(Stage first) {
  if (first == Stage::kLoad) ctx_ = FlowContext{};
  FlowReport report;
  for (int i = 0; i < kNumStages; ++i)
    report.stages[i].stage = static_cast<Stage>(i);
  const auto flow_start = std::chrono::steady_clock::now();

  // Resource governance: adopt the caller's guard or make one when the
  // options ask for a deadline/budget.  Ungoverned runs keep guard null and
  // every hot loop's guard_charge stays a no-op.
  ctx_.guard = opts_.guard;
  if (!ctx_.guard && (opts_.deadline_ms > 0 || opts_.work_budget > 0))
    ctx_.guard = std::make_shared<RunGuard>();
  if (ctx_.guard) {
    if (opts_.deadline_ms > 0) ctx_.guard->set_deadline_ms(opts_.deadline_ms);
    if (opts_.work_budget > 0) ctx_.guard->set_work_budget(opts_.work_budget);
  }

  for (const Stage s : kAllStages) {
    StageReport& sr = report.stage(s);
    if (static_cast<int>(s) < static_cast<int>(first)) {
      // Satisfied by the input form (pre-parsed spec / explicit SG).
      sr.ran = true;
      if (s == Stage::kLoad) describe_spec(ctx_.spec, sr);
      continue;
    }
    const bool spine = s == Stage::kLoad || s == Stage::kReachability;
    // The check stage is opt-in: when disabled it is skipped *before* the
    // guard checkpoint and fault site fire, so an armed flow.check fault
    // cannot trip a run that never asked for the stage.
    if ((opts_.skipped(s) || (s == Stage::kCheck && !opts_.check)) && !spine) {
      sr.skipped = true;
    } else {
      if (opts_.skipped(s) && spine)
        sr.warnings.push_back(std::string(stage_name(s)) +
                              " cannot be skipped (input spine); running");
      const auto start = std::chrono::steady_clock::now();
      sr.ran = true;
      try {
        // Cheap per-stage checkpoint: an expired deadline or a cancel
        // request stops the flow at the next stage boundary even when the
        // stage bodies between here and there do no governed work.
        guard_check(ctx_.guard.get(), kStageFaultSites[static_cast<int>(s)]);
        fault::hit(kStageFaultSites[static_cast<int>(s)]);
        switch (s) {
          case Stage::kLoad: stage_load(sr); break;
          case Stage::kReachability: stage_reachability(sr); break;
          case Stage::kProperties: stage_properties(sr); break;
          case Stage::kCsc: stage_csc(sr); break;
          case Stage::kSynth: stage_synth(sr); break;
          case Stage::kDecomp: stage_decomp(sr); break;
          case Stage::kMap: stage_map(sr); break;
          case Stage::kCheck: stage_check(sr); break;
          case Stage::kVerify: stage_verify(sr); break;
          case Stage::kEmit: stage_emit(sr); break;
        }
      } catch (const std::exception& e) {
        sr.ok = false;
        if (sr.failure.empty()) sr.failure = e.what();
        if (sr.failure_kind == FailureKind::kNone)
          sr.failure_kind = classify_exception(e);
      } catch (...) {
        // A non-standard exception must not escape the stage runner: the
        // batch driver and the CLI rely on every failure becoming a report.
        sr.ok = false;
        if (sr.failure.empty())
          sr.failure = "non-standard exception escaped the stage body";
        sr.failure_kind = FailureKind::kInternal;
      }
      sr.wall_ms = ms_since(start);
    }
    if (!sr.ok) {
      if (report.ok) {
        report.ok = false;
        report.failed_stage = s;
        report.failure = sr.failure;
        report.failure_kind = sr.failure_kind;
      }
      // A failed verification still leaves a netlist worth inspecting: the
      // emit stage runs so requested output files are written anyway (the
      // report stays failed).  Every other failure stops the flow here.
      if (s != Stage::kVerify) break;
    }
    if (opts_.stop_after == s) break;
  }

  report.total_ms = ms_since(flow_start);
  report.name = ctx_.name;
  return report;
}

void Flow::stage_load(StageReport& sr) {
  ctx_.spec = input_path_.empty()
                  ? load_spec_string(input_text_, opts_.format)
                  : load_spec_file(input_path_, opts_.format);
  ctx_.name = ctx_.spec.name;
  describe_spec(ctx_.spec, sr);
}

void Flow::stage_reachability(StageReport& sr) {
  if (opts_.lint) {
    // Static reject gate: catch specification bugs before paying for the
    // token game.  Errors fail the stage typed (`spec`); warnings ride the
    // report.  This also covers the pre-parsed entry points (run_spec /
    // serve), whose load stage never runs a body.
    const LintReport lint = lint_spec(ctx_.spec);
    if (!lint.clean()) {
      sr.metric("lint_errors", lint.errors);
      sr.metric("lint_warnings", lint.warnings);
    }
    for (const auto& d : lint.diagnostics)
      if (d.severity == LintSeverity::kWarning)
        sr.warnings.push_back(std::string("lint[") + lint_rule_name(d.rule) +
                              "]: " + d.message);
    if (!lint.ok()) {
      std::string failure = lint.first_error();
      if (lint.errors > 1)
        failure += " (+" + std::to_string(lint.errors - 1) + " more)";
      throw Error(failure);
    }
  }
  if (ctx_.spec.sg) {
    // Move rather than copy: the load metrics were already recorded, and a
    // second full SG would double peak memory for every batch worker.
    ctx_.sg = std::make_shared<const StateGraph>(std::move(*ctx_.spec.sg));
    ctx_.spec.sg.reset();
    sr.note("engine", "explicit state graph input");
  } else if (ctx_.spec.stg) {
    const std::size_t max_states =
        opts_.max_states > 0 ? opts_.max_states : Stg::kDefaultMaxStates;
    ctx_.sg = std::make_shared<const StateGraph>(
        ctx_.spec.stg->to_state_graph(max_states, ctx_.guard.get()));
    sr.note("engine", "token game");
    if (opts_.symbolic_check) {
      ctx_.bdd = std::make_unique<BddManager>(
          static_cast<int>(ctx_.spec.stg->num_places()));
      ctx_.symbolic =
          symbolic_reachability(*ctx_.spec.stg, *ctx_.bdd, ctx_.guard.get());
      sr.metric("symbolic_markings", ctx_.symbolic->num_markings);
      sr.metric("symbolic_iterations", ctx_.symbolic->iterations);
      sr.metric("symbolic_bdd_size",
                static_cast<double>(ctx_.symbolic->bdd_size));
      if (ctx_.symbolic->has_deadlock)
        sr.warnings.push_back("symbolic check: reachable deadlock marking");
    }
  } else {
    throw Error("reachability: no specification loaded");
  }
  sr.metric("states", static_cast<double>(ctx_.sg->num_states()));
  sr.metric("arcs", static_cast<double>(ctx_.sg->num_arcs()));
  sr.metric("signals", static_cast<double>(ctx_.sg->num_signals()));
  if (ctx_.symbolic &&
      ctx_.symbolic->num_markings !=
          static_cast<double>(ctx_.sg->num_states()))
    sr.warnings.push_back(
        "symbolic marking count disagrees with the explicit state count");
}

void Flow::stage_properties(StageReport& sr) {
  const StateGraph& sg = *ctx_.sg;
  const std::pair<const char*, PropertyResult> checks[] = {
      {"consistency", check_consistency(sg)},
      {"determinism", check_determinism(sg)},
      {"commutativity", check_commutativity(sg)},
      {"output_persistency", check_output_persistency(sg)},
  };
  for (const auto& [what, r] : checks)
    sr.metric(what, r.ok ? 1 : 0);
  ctx_.csc_analysis = analyze_csc(sg);
  const int conflicts = ctx_.csc_analysis->conflict_pairs;
  sr.metric("csc", conflicts == 0 ? 1 : 0);
  sr.metric("csc_conflict_pairs", conflicts);
  sr.metric("usc", check_usc(sg).ok ? 1 : 0);
  for (const auto& [what, r] : checks) {
    if (!r.ok)
      throw Error(std::string(what) + ": " + r.why);
  }
  if (conflicts > 0) {
    sr.warnings.push_back("CSC violated: " + std::to_string(conflicts) +
                          " conflict pair(s)");
    if (opts_.skipped(Stage::kCsc))
      sr.warnings.push_back(
          "csc stage is skipped; downstream synthesis will fail");
  }
}

void Flow::stage_csc(StageReport& sr) {
  if (!ctx_.csc_analysis)  // properties skipped: analyze here instead
    ctx_.csc_analysis = analyze_csc(*ctx_.sg);
  const int before = ctx_.csc_analysis->conflict_pairs;
  sr.metric("conflict_pairs_before", before);
  if (before == 0) {
    sr.metric("signals_inserted", 0);
    sr.note("result", "already satisfied");
    return;
  }
  CscResult resolved = resolve_csc(*ctx_.sg, opts_.csc, ctx_.guard.get());
  if (resolved.stopped != GuardStop::kNone) {
    // The search hit a budget/deadline/cancel.  Under kFail that is a hard,
    // typed stage failure; under kDegrade the engine's best-so-far commit
    // stands — ok when it resolved every conflict (warning notes the early
    // stop), failed when conflicts remain (downstream synthesis would
    // produce a wrong circuit, so there is nothing safe to continue with).
    const bool strict = opts_.on_budget == FlowOptions::OnBudget::kFail;
    if (strict || !resolved.resolved) {
      sr.ok = false;
      sr.failure = resolved.failure.empty()
                       ? std::string("CSC search stopped (") +
                             guard_stop_name(resolved.stopped) + ")"
                       : resolved.failure;
      sr.failure_kind = failure_kind_of(resolved.stopped);
      sr.metric("signals_inserted", resolved.signals_inserted);
      if (resolved.sg) {
        // Keep the partial resolution inspectable (the flow stops here).
        ctx_.sg = resolved.sg;
        ctx_.csc = std::move(resolved);
      }
      return;
    }
    sr.warnings.push_back(
        std::string("CSC search stopped early (") +
        guard_stop_name(resolved.stopped) +
        "); committed insertions resolve all conflicts");
  }
  if (!resolved.resolved)
    throw Error("CSC resolution failed: " + resolved.failure);
  if (resolved.degraded) sr.note("result", "degraded (best-so-far commit)");
  for (const auto& step : resolved.steps)
    sr.note(step.new_signal,
            "set after " + resolved.sg->event_string(step.set_after) +
                ", reset after " +
                resolved.sg->event_string(step.reset_after) + " (" +
                std::to_string(step.conflicts_before) + " -> " +
                std::to_string(step.conflicts_after) + " conflicts)");
  sr.metric("signals_inserted", resolved.signals_inserted);
  sr.metric("states_after", static_cast<double>(resolved.sg->num_states()));
  // Search-work counters of the candidate engine: with the lazy scorer
  // graphs_materialized stays near signals_inserted; a large ratio to
  // candidates_scored signals the reference engine (or heavy verify
  // rejections) and explains a slow csc stage.
  sr.metric("candidates_scored",
            static_cast<double>(resolved.candidates_scored));
  sr.metric("graphs_materialized",
            static_cast<double>(resolved.graphs_materialized));
  ctx_.sg = resolved.sg;
  // The resolved SG satisfies CSC by construction; refresh the cache so
  // later consumers see the current revision's analysis.
  ctx_.csc_analysis = CscAnalysis{0, ctx_.sg->empty_set()};
  ctx_.csc = std::move(resolved);
}

void Flow::stage_synth(StageReport& sr) {
  ctx_.synth_sg = ctx_.sg;
  sr.metric("threads",
            resolve_synthesis_threads(opts_.mc,
                                      ctx_.sg->noninput_signals().size()));
  ctx_.synth_netlist = synthesize_all(*ctx_.synth_sg, opts_.mc,
                                      &ctx_.syntheses, ctx_.guard.get());
  ctx_.netlist = ctx_.synth_netlist;
  sr.metric("signals", static_cast<double>(ctx_.syntheses.size()));
  sr.metric("literals", ctx_.synth_netlist->total_literals());
  sr.metric("c_elements", ctx_.synth_netlist->num_c_elements());
  sr.metric("max_gate_literals", ctx_.synth_netlist->max_gate_complexity());
}

void Flow::stage_decomp(StageReport& sr) {
  if (!ctx_.synth_netlist) {
    sr.ran = false;
    sr.skipped = true;
    sr.warnings.push_back("no unconstrained netlist (synth stage skipped)");
    return;
  }
  ctx_.decomp = tech_decomp2(*ctx_.synth_netlist);
  sr.metric("literals", ctx_.decomp->literals);
  sr.metric("c_elements", ctx_.decomp->c_elements);
  sr.metric("gates", static_cast<double>(ctx_.decomp->gates.size()));
}

void Flow::stage_map(StageReport& sr) {
  sr.metric("max_literals", opts_.mapper.library.max_literals);
  // Candidate counts vary per iteration, so record the pool width the
  // resynthesis loop can use at most (0 resolved to the hardware count).
  sr.metric("threads",
            resolve_worker_threads(opts_.mapper.threads,
                                   std::numeric_limits<std::size_t>::max()));
  MapResult result = technology_map(*ctx_.sg, opts_.mapper, ctx_.guard.get());
  sr.metric("candidates_planned",
            static_cast<double>(result.candidates_planned));
  sr.metric("resyntheses", static_cast<double>(result.resyntheses));
  if (!result.implementable)
    throw Error("not implementable with " +
                std::to_string(opts_.mapper.library.max_literals) +
                "-literal gates: " + result.failure);
  ctx_.mapped = std::move(result);
  ctx_.sg = ctx_.mapped->sg;
  ctx_.netlist = ctx_.mapped->build_netlist(opts_.mapper.mc);
  ctx_.syntheses = ctx_.mapped->syntheses;
  sr.metric("signals_inserted", ctx_.mapped->signals_inserted);
  sr.metric("states_after", static_cast<double>(ctx_.sg->num_states()));
  sr.metric("literals", ctx_.netlist->total_literals());
  sr.metric("c_elements", ctx_.netlist->num_c_elements());
  sr.metric("max_gate_literals", ctx_.netlist->max_gate_complexity());
}

void Flow::stage_check(StageReport& sr) {
  if (!ctx_.netlist) {
    sr.ran = false;
    sr.skipped = true;
    sr.warnings.push_back("no netlist to check (synth and map skipped)");
    return;
  }
  const Netlist& netlist = *ctx_.netlist;
  // The mapped netlist speaks the mapped SG's signals; the decomp result
  // belongs to the *unconstrained* netlist, so the wire rules only apply
  // when the flow stopped at the synth revision.
  const TechDecompResult* decomp =
      ctx_.decomp && !ctx_.mapped ? &*ctx_.decomp : nullptr;
  ctx_.nlint = nlint_netlist(netlist, decomp, opts_.check_opts.nlint);
  sr.metric("nlint_rules", ctx_.nlint->rules_run);
  sr.metric("nlint_errors", ctx_.nlint->errors);
  sr.metric("nlint_warnings", ctx_.nlint->warnings);
  for (const auto& d : ctx_.nlint->diagnostics)
    if (d.severity == NlintSeverity::kWarning)
      sr.warnings.push_back(std::string("nlint[") + nlint_rule_name(d.rule) +
                            "]: " + d.message);
  if (!ctx_.nlint->ok()) {
    // Structurally broken: fail typed (`spec`) without paying for the
    // equivalence proof — its verdicts would only restate the breakage.
    std::string failure = ctx_.nlint->first_error();
    if (ctx_.nlint->errors > 1)
      failure += " (+" + std::to_string(ctx_.nlint->errors - 1) + " more)";
    throw Error(failure);
  }
  ctx_.equiv =
      check_equivalence(netlist, opts_.check_opts, ctx_.guard.get());
  sr.metric("gates_checked", ctx_.equiv->gates_checked);
  sr.metric("gates_proven", ctx_.equiv->gates_proven);
  sr.metric("reach_states", static_cast<double>(ctx_.equiv->reach_states));
  sr.metric("reach_bdd_size",
            static_cast<double>(ctx_.equiv->reach_bdd_size));
  sr.metric("bdd_nodes", static_cast<double>(ctx_.equiv->bdd_nodes));
  if (ctx_.equiv->reordered) {
    sr.metric("reorder_size_before",
              static_cast<double>(ctx_.equiv->reorder_size_before));
    sr.metric("reorder_size_after",
              static_cast<double>(ctx_.equiv->reorder_size_after));
  }
  if (!ctx_.equiv->ok) {
    std::string failure = ctx_.equiv->first_failure();
    if (ctx_.equiv->failures.size() > 1)
      failure +=
          " (+" + std::to_string(ctx_.equiv->failures.size() - 1) + " more)";
    throw Error(failure);
  }
}

void Flow::stage_verify(StageReport& sr) {
  if (!ctx_.netlist) {
    sr.ran = false;
    sr.skipped = true;
    sr.warnings.push_back("no netlist to verify (synth and map skipped)");
    return;
  }
  ctx_.verify = verify_speed_independence(*ctx_.netlist,
                                          opts_.verify_max_states,
                                          ctx_.guard.get());
  sr.metric("composite_states", static_cast<double>(ctx_.verify->num_states));
  sr.metric("speed_independent", ctx_.verify->ok ? 1 : 0);
  if (ctx_.verify->unverified) {
    // The exploration ran out of budget/deadline without finding a
    // violation: that is "unverified", not "hazard found".  kDegrade keeps
    // the stage ok with a warning; kFail makes it a typed stage failure
    // (still followed by emit, like any verify failure).
    sr.metric("unverified", 1);
    if (opts_.on_budget == FlowOptions::OnBudget::kDegrade) {
      sr.note("result", "unverified");
      sr.warnings.push_back("unverified: " + ctx_.verify->why);
      return;
    }
    sr.ok = false;
    sr.failure = ctx_.verify->why;
    sr.failure_kind = failure_kind_of(ctx_.verify->stopped);
    return;
  }
  if (!ctx_.verify->ok) throw Error(ctx_.verify->why);
}

void Flow::stage_emit(StageReport& sr) {
  int files = 0;
  const auto write_file = [&](const std::string& path,
                              const std::string& content) {
    std::ofstream out(path);
    if (!out) throw Error("cannot write " + path);
    out << content;
    ++files;
    sr.note("wrote", path);
  };
  const auto produce = [&](const std::string& path, std::string* capture,
                           const char* what, auto make) {
    if (path.empty() && !opts_.capture_emitted) return;
    if (!ctx_.netlist && std::string_view(what) != "sg") {
      sr.warnings.push_back(std::string("no netlist; cannot emit ") + what);
      return;
    }
    const std::string text = make();
    if (opts_.capture_emitted && capture) *capture = text;
    if (!path.empty()) write_file(path, text);
  };
  produce(opts_.emit_sg_path, &ctx_.emitted_sg, "sg",
          [&] { return write_sg_string(*ctx_.sg, ctx_.name); });
  produce(opts_.emit_verilog_path, &ctx_.emitted_verilog, "verilog",
          [&] { return write_verilog_string(*ctx_.netlist, ctx_.name); });
  produce(opts_.emit_eqn_path, &ctx_.emitted_eqn, "eqn",
          [&] { return write_eqn_string(*ctx_.netlist, ctx_.name); });
  sr.metric("files_written", files);
}

}  // namespace sitm
