#pragma once
// The staged synthesis flow engine.
//
// The paper's flow is a fixed sequence of stages
//
//   load -> reachability -> properties -> csc -> synth -> decomp -> map
//        -> check -> verify -> emit
//
// that used to be re-wired by hand at every call site (the CLI, each
// example, the integration tests).  `Flow` runs that sequence off one
// `FlowOptions` struct, with
//   * a shared `FlowContext` owning the expensive artifacts the stages
//     exchange (the current StateGraph revision, the cached CSC conflict
//     analysis, the BDD manager of the symbolic cross-check, the minimized
//     covers and netlists),
//   * one structured `StageReport` per stage (wall time, state/literal
//     counts, warnings) serializable to JSON, and
//   * `stop_after` / per-stage `skip` controls.
//
// Stage semantics:
//   load          parse .g/.sg text into a Spec (shared loader)
//   reachability  token-game reachability (Stg -> StateGraph); optional
//                 symbolic (BDD) cross-check
//   properties    consistency / determinism / commutativity / output
//                 persistency; CSC + USC status recorded (CSC violations are
//                 the csc stage's job, not a failure here)
//   csc           insert state signals until CSC holds (skipped work when
//                 the cached analysis already shows zero conflicts)
//   synth         per-signal monotonous-cover synthesis (parallel over
//                 non-input signals per McOptions::threads; bit-identical to
//                 serial) into the unconstrained standard-C netlist
//   decomp        non-SI tech_decomp2 area baseline of that netlist
//   map           technology mapping onto the gate library (replaces the SG
//                 and netlist with the decomposed versions)
//   check         static netlist analysis (netlist/nlint.hpp) plus the BDD
//                 equivalence proof of every gate against its excitation
//                 function (netlist/equiv.hpp); off by default here, on by
//                 default in serve/batch as the fast static reject before
//                 the token-game verifier
//   verify        gate-level speed-independence check of the final netlist
//   emit          write .sg / Verilog / .eqn outputs
//
// A stage failure (violated property, unresolvable CSC, unimplementable
// spec, failed verification, or any thrown sitm::Error) stops the flow and
// is recorded in the report instead of propagating — the batch driver relies
// on this to keep going across a corpus.  One exception: after a *verify*
// failure the emit stage still runs, so requested output files are written
// for inspection of the failing netlist (the report stays failed).

#include <array>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "bdd/bdd.hpp"
#include "core/csc.hpp"
#include "core/mapper.hpp"
#include "core/mc_cover.hpp"
#include "netlist/equiv.hpp"
#include "netlist/netlist.hpp"
#include "netlist/si_verify.hpp"
#include "netlist/tech_decomp.hpp"
#include "sg/state_graph.hpp"
#include "stg/load.hpp"
#include "stg/symbolic.hpp"
#include "util/json.hpp"
#include "util/run_guard.hpp"

namespace sitm {

enum class Stage : int {
  kLoad = 0,
  kReachability,
  kProperties,
  kCsc,
  kSynth,
  kDecomp,
  kMap,
  kCheck,
  kVerify,
  kEmit,
};
inline constexpr int kNumStages = 10;
inline constexpr std::array<Stage, kNumStages> kAllStages = {
    Stage::kLoad,  Stage::kReachability, Stage::kProperties, Stage::kCsc,
    Stage::kSynth, Stage::kDecomp,       Stage::kMap,        Stage::kCheck,
    Stage::kVerify, Stage::kEmit,
};

const char* stage_name(Stage stage);
/// Inverse of stage_name; nullopt for unknown names.
std::optional<Stage> parse_stage(std::string_view name);

/// Structured failure taxonomy of a stage (and of the flow): what *kind* of
/// thing went wrong, machine-readable next to the human `failure` string.
///   parse      malformed input (.g/.sg reader errors)
///   spec       the specification violates a flow precondition, or a stage
///              produced a genuine negative verdict (hazard, unresolvable
///              CSC, not implementable)
///   budget     a state/node/work budget was exhausted
///   deadline   the wall-clock deadline passed
///   cancelled  cancellation was requested (batch watchdog, serve front-end)
///   internal   anything else — unexpected std::exception, allocation
///              failure, or a non-standard exception
enum class FailureKind : int {
  kNone = 0,
  kParse,
  kSpec,
  kBudget,
  kDeadline,
  kCancelled,
  kInternal,
};
const char* failure_kind_name(FailureKind kind);

/// Classify a caught exception into the taxonomy (GuardExhausted by its
/// stop kind, ParseError, sitm::Error, everything else internal).  Shared
/// by the stage runner and the batch driver.
FailureKind classify_exception(const std::exception& e);
/// Map a guard stop to its failure kind (kBudget/kDeadline/kCancelled).
FailureKind failure_kind_of(GuardStop stop);

struct FlowOptions {
  /// Input format for run_file / run_string (kAuto sniffs).
  SpecFormat format = SpecFormat::kAuto;
  /// Synth-stage options; mc.threads controls per-signal parallelism.
  McOptions mc;
  CscOptions csc;
  MapperOptions mapper;
  std::size_t verify_max_states = std::size_t{1} << 20;
  /// Run the symbolic (BDD) reachability cross-check in the reachability
  /// stage (.g specs only); mismatches are reported as warnings.
  bool symbolic_check = false;
  /// Run the static spec lint (stg/lint.hpp) at the reachability gate,
  /// before any state graph is built: lint errors fail the stage with a
  /// typed `spec` failure_kind (the serve/batch fast reject path), lint
  /// warnings travel on the stage report.  Purely structural, O(net size).
  bool lint = false;
  /// Run the `check` stage: netlist static analysis (nlint) followed by the
  /// BDD equivalence proof of every gate against its excitation function.
  /// Off by default here (a raw `Flow` stays as lean as before); the serve
  /// and batch front-ends turn it on as their output-side gate.
  bool check = false;
  /// Options of the check stage (nlint limits, BDD variable reordering).
  CheckOptions check_opts;

  // ---- resource governance -------------------------------------------
  /// Wall-clock deadline for the whole run; 0 = none.  Enforced
  /// cooperatively through the run's RunGuard (polled in every stage's hot
  /// loop), so an expired deadline surfaces as a `deadline` stage failure,
  /// never a hung process.
  double deadline_ms = 0;
  /// Reachability state budget; 0 = the Stg default (kDefaultMaxStates).
  /// Exceeding it fails the reachability stage with failure_kind `budget`.
  std::size_t max_states = 0;
  /// Work-unit budget across the whole run (states discovered, candidates
  /// scored, composite states explored, ...); 0 = none.
  std::uint64_t work_budget = 0;
  /// What a budget/deadline trip means for stages that can degrade:
  ///   kFail     the stage fails (failure_kind budget/deadline/cancelled)
  ///   kDegrade  csc commits its best-so-far insertions with a warning;
  ///             verify reports "unverified" with a warning and stays ok.
  /// Stages with nothing partial to offer (reachability, synth, map) fail
  /// under both policies.
  enum class OnBudget { kFail, kDegrade };
  OnBudget on_budget = OnBudget::kFail;
  /// Externally owned guard (e.g. the batch driver's per-item guard, or a
  /// front-end holding the cancellation handle).  When null the flow makes
  /// its own from deadline_ms / work_budget; when set, those fields are
  /// applied onto it.
  std::shared_ptr<RunGuard> guard;

  /// Stop after this stage completes (inclusive); later stages are left
  /// un-run and the report stays ok.
  std::optional<Stage> stop_after;
  /// Per-stage skips.  load/reachability are the input spine and cannot be
  /// skipped; a stage whose inputs were skipped away is auto-skipped with a
  /// warning.
  std::array<bool, kNumStages> skip{};
  void set_skip(Stage stage, bool value = true) {
    skip[static_cast<int>(stage)] = value;
  }
  bool skipped(Stage stage) const { return skip[static_cast<int>(stage)]; }

  /// Emit-stage outputs; empty paths are not written.
  std::string emit_sg_path;
  std::string emit_verilog_path;
  std::string emit_eqn_path;
  /// Keep the emitted strings in the context (for callers that want the
  /// text without touching the filesystem).
  bool capture_emitted = false;

  /// Stable fingerprint of every *output-affecting* option — the options
  /// half of the serve cache key, next to the canonical spec hash.
  ///
  /// Covered: the synth/csc/mapper knobs that choose or rank results
  /// (minimize passes, architecture, csc max-insertions/candidates/top-k,
  /// reference engines, mapper library/filters/caps/pruning), thread
  /// counts (results are bit-identical across thread counts, but stage
  /// reports record them as metrics, and a cached report must not
  /// misreport), deterministic resource limits (max_states, work_budget,
  /// on_budget — these change which outcome a run settles on),
  /// stop_after/skip, and which outputs are emitted/captured.
  ///
  /// Excluded as purely observational: wall-clock deadlines (deadline_ms,
  /// an external guard) — whether a run had 5 ms or 5 s to finish does not
  /// change what a *successful* run produces, so a deadline change must
  /// still hit the cache — plus the input format (the spec hash is
  /// post-parse) and emit file *paths* (the bytes produced are path-
  /// independent; only which outputs exist matters).
  std::uint64_t fingerprint() const;
};

/// Structured result of one stage.
struct StageReport {
  Stage stage = Stage::kLoad;
  bool ran = false;      ///< body executed (false when skipped/not reached)
  bool skipped = false;  ///< skipped by options or missing inputs
  bool ok = true;        ///< false only when this stage failed the flow
  std::string failure;   ///< nonempty when !ok
  /// Taxonomy of the failure; kNone while ok.
  FailureKind failure_kind = FailureKind::kNone;
  double wall_ms = 0;
  /// Named numeric results in emission order (state counts, literal
  /// counts, ...).
  std::vector<std::pair<std::string, double>> metrics;
  /// Named string results (format, inserted signal descriptions, ...).
  std::vector<std::pair<std::string, std::string>> info;
  std::vector<std::string> warnings;

  void metric(std::string name, double value) {
    metrics.emplace_back(std::move(name), value);
  }
  void note(std::string name, std::string value) {
    info.emplace_back(std::move(name), std::move(value));
  }
  /// Metric lookup; nullopt when absent.
  std::optional<double> metric_value(std::string_view name) const;

  Json to_json() const;
};

/// Result of one flow run: per-stage reports plus the overall verdict.
struct FlowReport {
  std::string name;
  bool ok = true;
  std::optional<Stage> failed_stage;
  std::string failure;  ///< failure of the failed stage
  /// Taxonomy of `failure` (the failed stage's kind); kNone while ok.
  FailureKind failure_kind = FailureKind::kNone;
  double total_ms = 0;
  std::array<StageReport, kNumStages> stages;

  StageReport& stage(Stage s) { return stages[static_cast<int>(s)]; }
  const StageReport& stage(Stage s) const {
    return stages[static_cast<int>(s)];
  }

  Json to_json() const;
  std::string to_json_string(int indent = 2) const {
    return to_json().dump(indent);
  }
};

/// Shared artifact store: everything stages hand to each other lives here
/// and stays alive (and inspectable) after the run.
struct FlowContext {
  /// Parsed input; owns the Stg for .g specs.  For explicit-SG input the
  /// reachability stage moves spec.sg into `sg` below (no second copy).
  Spec spec;
  std::string name = "spec";

  /// The run's resource guard (FlowOptions::guard, or flow-owned when the
  /// options only set deadline_ms / work_budget).  Null when the run is
  /// ungoverned; stages pass `guard.get()` down their hot loops.
  std::shared_ptr<RunGuard> guard;

  /// Current SG revision: reachability result, then the CSC-resolved SG,
  /// then the mapped SG.  Earlier revisions stay alive through `csc` /
  /// `mapped` below, so netlists referencing them remain valid.
  std::shared_ptr<const StateGraph> sg;

  /// Symbolic cross-check artifacts (reachability stage, symbolic_check).
  std::unique_ptr<BddManager> bdd;
  std::optional<SymbolicReachability> symbolic;

  /// Cached CSC conflict analysis of the *pre-resolution* SG, computed once
  /// in the properties stage and reused by the csc stage.
  std::optional<CscAnalysis> csc_analysis;
  std::optional<CscResult> csc;

  /// Unconstrained synthesis of the (post-CSC) SG: per-signal minimized
  /// covers and the standard-C netlist.  `synth_sg` is the revision the
  /// netlist references.
  std::shared_ptr<const StateGraph> synth_sg;
  std::vector<SignalSynthesis> syntheses;
  std::optional<Netlist> synth_netlist;

  std::optional<TechDecompResult> decomp;

  std::optional<MapResult> mapped;
  /// Final netlist: the mapped netlist when the map stage ran, otherwise the
  /// unconstrained one.
  std::optional<Netlist> netlist;

  /// Check-stage artifacts: the structural diagnostics and (when nlint
  /// passes) the per-gate equivalence verdicts.
  std::optional<NlintReport> nlint;
  std::optional<EquivReport> equiv;

  std::optional<SiVerifyResult> verify;

  /// Captured emit-stage outputs (FlowOptions::capture_emitted).
  std::string emitted_sg, emitted_verilog, emitted_eqn;
};

class Flow {
 public:
  explicit Flow(FlowOptions opts = {}) : opts_(std::move(opts)) {}

  const FlowOptions& options() const { return opts_; }
  FlowContext& context() { return ctx_; }
  const FlowContext& context() const { return ctx_; }

  /// Run the full staged sequence from a file / in-memory text.
  FlowReport run_file(const std::string& path);
  FlowReport run_string(const std::string& text);
  /// Run from a pre-parsed spec (e.g. a suite entry); the load stage is
  /// recorded from the spec without re-parsing.
  FlowReport run_spec(Spec spec);
  /// Run from an explicit SG (load + reachability recorded as satisfied).
  FlowReport run_state_graph(StateGraph sg, std::string name = "spec");

 private:
  FlowReport run_stages(Stage first);
  /// Stage bodies; throw sitm::Error (or return false with sr.failure set)
  /// to fail the flow.
  void stage_load(StageReport& sr);
  void stage_reachability(StageReport& sr);
  void stage_properties(StageReport& sr);
  void stage_csc(StageReport& sr);
  void stage_synth(StageReport& sr);
  void stage_decomp(StageReport& sr);
  void stage_map(StageReport& sr);
  void stage_check(StageReport& sr);
  void stage_verify(StageReport& sr);
  void stage_emit(StageReport& sr);

  FlowOptions opts_;
  FlowContext ctx_;
  /// run_file/run_string stash the input here for the load stage.
  std::string input_text_, input_path_;
};

}  // namespace sitm
