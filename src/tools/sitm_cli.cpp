// sitm — command-line driver for the technology mapping flow.
//
//   sitm info   <file.g|file.sg>           specification statistics & checks
//   sitm lint   <file> [--json out.json]   static spec diagnostics (stg/lint):
//                                          exit 1 when any `error`-severity
//                                          rule fires, 0 on clean/warnings
//   sitm map    <file> [-i N] [-o out.sg] [--verilog out.v] [--eqn out.eqn]
//               [--threads N] [--map-threads N] [--map-prune]
//               [--csc-top-k N] [--stop-after STAGE] [--skip STAGE]
//               [--deadline-ms N] [--max-states N] [--work-budget N]
//               [--on-budget fail|degrade]
//               [--json report.json]        staged flow: CSC-resolve + map
//   sitm verify <file> [--threads N] [--json report.json]
//                                          synthesize + gate-level SI check
//   sitm check  <file> [--json report.json] [--check-reorder] [--max-fanin N]
//               [--mutate KIND[:N]]        netlist static analysis (nlint) +
//                                          BDD equivalence proof of every
//                                          gate against its excitation
//                                          function; --mutate corrupts the
//                                          synthesized netlist first
//                                          (flip-literal|drop-cube|
//                                          swap-set-reset) and exits 0 when
//                                          the checker rejects the mutant
//                                          with a counterexample
//   sitm batch  <dir|suite> [-i N] [--threads N] [--synth-threads N]
//               [--map-threads N] [--map-prune] [--csc-top-k N]
//               [--stop-after STAGE] [--skip STAGE] [--json report.json]
//               [--item-deadline-ms N] [--retry-degraded]
//                                          full flow over a spec corpus
//   sitm bench  <name|list>                dump a suite benchmark as .g
//   sitm serve  --pipe | --socket PATH [--threads N] [--cache-mb N]
//               [--deadline-ms N] [-i N] [--synth-threads N]
//               [--map-threads N] [--map-prune] [--csc-top-k N]
//                                          persistent synthesis service:
//                                          newline-delimited JSON requests,
//                                          content-addressed result cache
//                                          (see src/serve/server.hpp)
//
// map/verify/batch are thin shells over the staged Flow engine
// (src/flow/): stages load, reachability, properties, csc, synth, decomp,
// map, verify, emit, each with a structured report serializable to JSON.
// Files ending in ".sg" are parsed as State Graphs, everything else as
// astg ".g" Signal Transition Graphs.
//
// Resource governance: --deadline-ms/--max-states/--work-budget bound a run
// (stage failures carry a failure_kind of deadline/budget in the report),
// --on-budget picks between hard failure and graceful degradation (csc
// commits best-so-far, verify reports "unverified"), and the SITM_FAULTS
// environment variable arms the deterministic fault-injection harness
// (util/fault.hpp) for robustness testing.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "benchlib/suite.hpp"
#include "flow/batch.hpp"
#include "flow/flow.hpp"
#include "serve/server.hpp"
#include "sg/properties.hpp"
#include "stg/g_io.hpp"
#include "stg/lint.hpp"
#include "stg/load.hpp"
#include "stg/symbolic.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"

namespace {

using namespace sitm;

int usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  sitm info   <file.g|file.sg>\n"
      "  sitm lint   <file.g|file.sg> [--json out.json]\n"
      "  sitm map    <file> [-i N] [-o out.sg] [--verilog out.v] "
      "[--eqn out.eqn]\n"
      "              [--threads N] [--map-threads N] [--map-prune] "
      "[--csc-top-k N]\n"
      "              [--stop-after STAGE] [--skip STAGE] [--json out.json]\n"
      "              [--deadline-ms N] [--max-states N] [--work-budget N]\n"
      "              [--on-budget fail|degrade]\n"
      "  sitm verify <file> [--threads N] [--json out.json]\n"
      "  sitm check  <file> [--json out.json] [--check-reorder] "
      "[--max-fanin N]\n"
      "              [--mutate flip-literal|drop-cube|swap-set-reset[:N]]\n"
      "  sitm batch  <dir|suite> [-i N] [--threads N] [--synth-threads N]\n"
      "              [--map-threads N] [--map-prune] [--csc-top-k N] "
      "[--stop-after STAGE]\n"
      "              [--skip STAGE] [--json out.json] [--item-deadline-ms N]\n"
      "              [--retry-degraded]\n"
      "  sitm bench  <name|list>\n"
      "  sitm serve  --pipe | --socket PATH [--threads N] [--cache-mb N]\n"
      "              [--deadline-ms N] [-i N] [--synth-threads N]\n"
      "              [--map-threads N] [--map-prune] [--csc-top-k N]\n"
      "stages: load reachability properties csc synth decomp map check "
      "verify emit\n");
  return 2;
}

/// Strict integer argument: the whole token must be a number >= min.
bool parse_int_arg(const char* s, int min, int* out) {
  if (!s || !*s) return false;
  char* end = nullptr;
  const long v = std::strtol(s, &end, 10);
  if (*end != '\0' || v < min || v > 1 << 20) return false;
  *out = static_cast<int>(v);
  return true;
}

/// Wide counter argument for budgets (state counts, work units) that can
/// legitimately exceed parse_int_arg's cap.
bool parse_count_arg(const char* s, std::uint64_t min, std::uint64_t* out) {
  if (!s || !*s) return false;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (*end != '\0' || v < min) return false;
  *out = v;
  return true;
}

/// Positive (possibly fractional) millisecond value for deadline flags.
bool parse_ms_arg(const char* s, double* out) {
  if (!s || !*s) return false;
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  if (*end != '\0' || !(v > 0)) return false;
  *out = v;
  return true;
}

/// Shared flow-control flags (--stop-after/--skip/--json/...).  Returns
/// false on a malformed argument.
struct FlowArgs {
  FlowOptions flow;
  std::string json_path;
  int batch_threads = 1;
  bool synth_threads_set = false;
  double item_deadline_ms = 0;
  bool retry_degraded = false;

  bool consume(int argc, char** argv, int& i, std::string* path) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "-i") {
      if (!parse_int_arg(next(), 1, &flow.mapper.library.max_literals))
        return false;
    } else if (arg == "--threads") {
      // Single-spec commands feed this to the synth stage; batch uses it
      // for the spec pool (with --synth-threads for the inner level).
      if (!parse_int_arg(next(), 0, &batch_threads)) return false;
    } else if (arg == "--synth-threads") {
      if (!parse_int_arg(next(), 0, &flow.mc.threads)) return false;
      synth_threads_set = true;
    } else if (arg == "--map-threads") {
      // Candidate-resynthesis workers inside the map stage (bit-identical
      // netlist at any count; 0 = one per hardware core).
      if (!parse_int_arg(next(), 0, &flow.mapper.threads)) return false;
    } else if (arg == "--map-prune") {
      // Stop the map stage's insert/verify pre-check once a committable
      // candidate exists (may commit a different, equally valid divisor).
      flow.mapper.prune_pre_checks = true;
    } else if (arg == "--csc-top-k") {
      // Rank the csc stage's candidate latches by conflict-splitting score
      // and evaluate only the best K before falling back to the full scan
      // (may commit a different, equally valid latch; 0 = exhaustive).
      int k = 0;
      if (!parse_int_arg(next(), 0, &k)) return false;
      flow.csc.rank_top_k = static_cast<std::size_t>(k);
    } else if (arg == "--stop-after") {
      const char* v = next();
      if (!v) return false;
      const auto stage = parse_stage(v);
      if (!stage) {
        std::fprintf(stderr, "unknown stage: %s\n", v);
        return false;
      }
      flow.stop_after = *stage;
    } else if (arg == "--skip") {
      const char* v = next();
      if (!v) return false;
      const auto stage = parse_stage(v);
      if (!stage) {
        std::fprintf(stderr, "unknown stage: %s\n", v);
        return false;
      }
      flow.set_skip(*stage);
    } else if (arg == "--deadline-ms") {
      // Wall-clock deadline for the run, enforced cooperatively through the
      // flow's RunGuard; an overrun fails with failure_kind "deadline".
      if (!parse_ms_arg(next(), &flow.deadline_ms)) return false;
    } else if (arg == "--max-states") {
      // Reachability state budget (failure_kind "budget" when exceeded).
      std::uint64_t n = 0;
      if (!parse_count_arg(next(), 1, &n)) return false;
      flow.max_states = static_cast<std::size_t>(n);
    } else if (arg == "--work-budget") {
      // Total work-unit budget across the run's governed loops.
      if (!parse_count_arg(next(), 1, &flow.work_budget)) return false;
    } else if (arg == "--on-budget") {
      const char* v = next();
      if (!v) return false;
      const std::string policy = v;
      if (policy == "fail") {
        flow.on_budget = FlowOptions::OnBudget::kFail;
      } else if (policy == "degrade") {
        flow.on_budget = FlowOptions::OnBudget::kDegrade;
      } else {
        std::fprintf(stderr, "--on-budget wants fail|degrade, got %s\n", v);
        return false;
      }
    } else if (arg == "--item-deadline-ms") {
      // Batch: per-item deadline plus the overdue-item watchdog.
      if (!parse_ms_arg(next(), &item_deadline_ms)) return false;
    } else if (arg == "--retry-degraded") {
      retry_degraded = true;
    } else if (arg == "--lint") {
      // Static spec lint at the reachability gate: lint errors reject the
      // spec typed (`spec`) before any state graph is built.  Default on
      // for batch and serve, opt-in for map/verify.
      flow.lint = true;
    } else if (arg == "--no-lint") {
      flow.lint = false;
    } else if (arg == "--check") {
      // Netlist static analysis + BDD equivalence proof after the map
      // stage.  Default on for batch and serve, opt-in for map/verify.
      flow.check = true;
    } else if (arg == "--no-check") {
      flow.check = false;
    } else if (arg == "--check-reorder") {
      // Sift the BDD variable order before the per-gate proofs.
      flow.check_opts.reorder = true;
    } else if (arg == "--max-fanin") {
      // nlint's gC fanin warning threshold (0 disables the rule).
      if (!parse_int_arg(next(), 0, &flow.check_opts.nlint.max_gc_fanin))
        return false;
    } else if (arg == "--json") {
      const char* v = next();
      if (!v) return false;
      json_path = v;
    } else if (arg == "-o") {
      const char* v = next();
      if (!v) return false;
      flow.emit_sg_path = v;
    } else if (arg == "--verilog") {
      const char* v = next();
      if (!v) return false;
      flow.emit_verilog_path = v;
    } else if (arg == "--eqn") {
      const char* v = next();
      if (!v) return false;
      flow.emit_eqn_path = v;
    } else if (path && path->empty() && arg[0] != '-') {
      *path = arg;
    } else {
      return false;
    }
    return true;
  }
};

void write_json_file(const std::string& path, const Json& j) {
  std::ofstream out(path);
  if (!out) throw Error("cannot write " + path);
  out << j.dump(2) << "\n";
  std::printf("wrote %s\n", path.c_str());
}

/// Human summary of one flow run: per-stage line with the key metrics.
void print_report(const FlowReport& report) {
  for (const auto& sr : report.stages) {
    if (!sr.ran && !sr.skipped) continue;
    std::printf("  %-12s", stage_name(sr.stage));
    if (sr.skipped && !sr.ran) {
      std::printf(" skipped\n");
      continue;
    }
    std::printf(" %8.2f ms ", sr.wall_ms);
    for (const auto& [k, v] : sr.metrics)
      std::printf(" %s=%g", k.c_str(), v);
    if (!sr.ok)
      std::printf("  FAILED (%s): %s", failure_kind_name(sr.failure_kind),
                  sr.failure.c_str());
    std::printf("\n");
    for (const auto& w : sr.warnings)
      std::printf("               warning: %s\n", w.c_str());
  }
}

int cmd_info(const std::string& path) {
  const Spec spec = load_spec_file(path);
  if (spec.stg) {
    const auto sym = symbolic_reachability(*spec.stg);
    std::printf("%s: %zu transitions, %zu places, %.0f reachable markings "
                "(%d symbolic iterations)%s\n",
                spec.name.c_str(), spec.stg->num_transitions(),
                spec.stg->num_places(), sym.num_markings, sym.iterations,
                sym.has_deadlock ? ", DEADLOCK" : "");
  }
  const StateGraph sg =
      spec.sg ? *spec.sg : spec.stg->to_state_graph();
  std::printf("%s: %d signals (%zu inputs), %zu states, %zu arcs\n",
              spec.name.c_str(), sg.num_signals(), sg.input_signals().size(),
              sg.num_states(), sg.num_arcs());
  auto report = [&](const char* what, const PropertyResult& r) {
    std::printf("  %-20s %s\n", what, r ? "ok" : r.why.c_str());
  };
  report("consistency:", check_consistency(sg));
  report("determinism:", check_determinism(sg));
  report("commutativity:", check_commutativity(sg));
  report("output persistency:", check_output_persistency(sg));
  report("CSC:", check_csc(sg));
  report("USC:", check_usc(sg));
  if (check_implementability(sg)) {
    const Netlist netlist = synthesize_all(sg);
    std::printf("  unconstrained implementation: %d literals, %d C elements, "
                "max gate %d literals\n",
                netlist.total_literals(), netlist.num_c_elements(),
                netlist.max_gate_complexity());
  }
  return 0;
}

int cmd_map(int argc, char** argv) {
  std::string path;
  FlowArgs args;
  for (int i = 2; i < argc; ++i)
    if (!args.consume(argc, argv, i, &path)) return usage();
  if (path.empty()) return usage();
  if (!args.synth_threads_set) args.flow.mc.threads = args.batch_threads;

  Flow flow(args.flow);
  const FlowReport report = flow.run_file(path);
  print_report(report);
  const FlowContext& ctx = flow.context();
  if (ctx.netlist && report.stage(Stage::kMap).ran)
    std::printf("mapped onto <=%d-literal gates:\n%s",
                args.flow.mapper.library.max_literals,
                ctx.netlist->to_string().c_str());
  if (!args.json_path.empty())
    write_json_file(args.json_path, report.to_json());
  if (!report.ok) {
    std::fprintf(stderr, "%s: %s failed: %s\n", report.name.c_str(),
                 stage_name(*report.failed_stage), report.failure.c_str());
    return 1;
  }
  return 0;
}

int cmd_verify(int argc, char** argv) {
  std::string path;
  FlowArgs args;
  for (int i = 2; i < argc; ++i)
    if (!args.consume(argc, argv, i, &path)) return usage();
  if (path.empty()) return usage();
  if (!args.synth_threads_set) args.flow.mc.threads = args.batch_threads;

  // Unconstrained synthesis + gate-level check: the map and decomp stages
  // stay out of the way, matching the historical `sitm verify`.
  args.flow.set_skip(Stage::kDecomp);
  args.flow.set_skip(Stage::kMap);
  Flow flow(args.flow);
  const FlowReport report = flow.run_file(path);
  const FlowContext& ctx = flow.context();
  if (!args.json_path.empty())
    write_json_file(args.json_path, report.to_json());
  if (report.ok && ctx.verify) {
    std::printf("%s: speed-independent (%zu composite states)\n",
                path.c_str(), ctx.verify->num_states);
    return 0;
  }
  if (report.ok) {
    // --stop-after / --skip cut the flow before the check could run; be
    // explicit that nothing was verified rather than claiming success.
    std::printf("%s: verify stage did not run (stopped or skipped)\n",
                path.c_str());
    return 1;
  }
  std::printf("%s: %s\n", path.c_str(), report.failure.c_str());
  return 1;
}

int cmd_lint(int argc, char** argv) {
  std::string path, json_path;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      if (i + 1 >= argc) return usage();
      json_path = argv[++i];
    } else if (path.empty() && arg[0] != '-') {
      path = arg;
    } else {
      return usage();
    }
  }
  if (path.empty()) return usage();

  const Spec spec = load_spec_file(path);
  const LintReport report = lint_spec(spec);
  for (const auto& d : report.diagnostics)
    std::printf("%s: %s[%s]%s%s: %s\n", spec.name.c_str(),
                lint_severity_name(d.severity), lint_rule_name(d.rule),
                d.subject.empty() ? "" : " ",
                d.subject.empty() ? "" : d.subject.c_str(), d.message.c_str());
  std::printf("%s: %d error(s), %d warning(s)\n", spec.name.c_str(),
              report.errors, report.warnings);
  if (!json_path.empty()) {
    Json j = report.to_json();
    j.set("name", spec.name);
    write_json_file(json_path, j);
  }
  return report.ok() ? 0 : 1;
}

/// Pretty counterexample line for a failed gate verdict.
void print_verdicts(const EquivReport& equiv, const StateGraph& sg) {
  for (const GateVerdict& f : equiv.failures) {
    std::printf("  %s/%s: %s\n", f.name.c_str(), f.network.c_str(),
                f.why.c_str());
    if (f.counterexample_state != kNoState)
      std::printf("    counterexample: state %d, code %s\n",
                  f.counterexample_state,
                  sg.code_string(f.counterexample_state).c_str());
  }
}

/// `sitm check --mutate KIND[:N]`: synthesize, corrupt the netlist, and
/// demonstrate that the checker rejects the mutant.  Exit 0 = rejected
/// (self-test passed), 1 = mutant survived, 2 = could not set up.
int cmd_check_mutate(const std::string& path, const std::string& mutate_spec,
                     FlowArgs args) {
  std::string kind_name = mutate_spec;
  int which = 0;
  if (const auto colon = mutate_spec.find(':'); colon != std::string::npos) {
    kind_name = mutate_spec.substr(0, colon);
    if (!parse_int_arg(mutate_spec.c_str() + colon + 1, 0, &which))
      return usage();
  }
  NetlistMutation kind;
  if (!parse_netlist_mutation(kind_name, &kind)) {
    std::fprintf(stderr,
                 "--mutate wants flip-literal|drop-cube|swap-set-reset, "
                 "got %s\n",
                 kind_name.c_str());
    return usage();
  }

  args.flow.check = false;  // the un-mutated flow must not reject itself
  args.flow.stop_after = Stage::kMap;
  Flow flow(args.flow);
  const FlowReport report = flow.run_file(path);
  if (!report.ok || !flow.context().netlist) {
    std::fprintf(stderr, "%s: cannot synthesize a netlist to mutate: %s\n",
                 report.name.c_str(), report.failure.c_str());
    return 2;
  }
  Netlist mutant = *flow.context().netlist;
  if (!mutate_netlist(mutant, kind, which)) {
    std::fprintf(stderr, "%s: no %s site #%d in this netlist\n",
                 report.name.c_str(), netlist_mutation_name(kind), which);
    return 2;
  }

  // Unlike the flow's check stage (which fast-rejects on nlint errors),
  // the self-test runs *both* layers so the equivalence counterexample is
  // always demonstrated, even for mutants nlint would already catch.
  const NlintReport nlint =
      nlint_netlist(mutant, nullptr, args.flow.check_opts.nlint);
  if (!nlint.ok()) std::printf("%s\n", nlint.first_error().c_str());
  const EquivReport equiv = check_equivalence(mutant, args.flow.check_opts);
  print_verdicts(equiv, mutant.sg());
  const bool rejected = !nlint.ok() || !equiv.ok;
  std::printf("%s: %s mutant #%d %s\n", report.name.c_str(),
              netlist_mutation_name(kind), which,
              rejected ? "rejected" : "NOT rejected");
  if (!args.json_path.empty()) {
    Json j = Json::object();
    j.set("name", report.name);
    j.set("mutation", netlist_mutation_name(kind));
    j.set("site", which);
    j.set("rejected", rejected);
    j.set("nlint", nlint.to_json());
    j.set("equiv", equiv.to_json());
    write_json_file(args.json_path, j);
  }
  return rejected ? 0 : 1;
}

int cmd_check(int argc, char** argv) {
  std::string path, mutate_spec;
  FlowArgs args;
  args.flow.check = true;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--mutate") {
      if (i + 1 >= argc) return usage();
      mutate_spec = argv[++i];
    } else if (!args.consume(argc, argv, i, &path)) {
      return usage();
    }
  }
  if (path.empty()) return usage();
  if (!args.synth_threads_set) args.flow.mc.threads = args.batch_threads;
  if (!mutate_spec.empty())
    return cmd_check_mutate(path, mutate_spec, std::move(args));

  if (!args.flow.stop_after) args.flow.stop_after = Stage::kCheck;
  Flow flow(args.flow);
  const FlowReport report = flow.run_file(path);
  print_report(report);
  const FlowContext& ctx = flow.context();
  if (ctx.nlint)
    for (const auto& d : ctx.nlint->diagnostics)
      if (d.severity == NlintSeverity::kError)
        std::printf("  nlint[%s] %s: %s\n", nlint_rule_name(d.rule),
                    d.subject.c_str(), d.message.c_str());
  if (ctx.equiv && ctx.sg) print_verdicts(*ctx.equiv, *ctx.sg);
  if (report.ok && ctx.equiv)
    std::printf("%s: %d/%d gates proven equivalent (%zu reachable codes, "
                "reach BDD %zu nodes)\n",
                report.name.c_str(), ctx.equiv->gates_proven,
                ctx.equiv->gates_checked, ctx.equiv->reach_states,
                ctx.equiv->reach_bdd_size);
  if (!args.json_path.empty()) {
    Json j = Json::object();
    j.set("name", report.name);
    j.set("report", report.to_json());
    if (ctx.nlint) j.set("nlint", ctx.nlint->to_json());
    if (ctx.equiv) j.set("equiv", ctx.equiv->to_json());
    write_json_file(args.json_path, j);
  }
  if (!report.ok) {
    std::fprintf(stderr, "%s: %s failed: %s\n", report.name.c_str(),
                 stage_name(*report.failed_stage), report.failure.c_str());
    return 1;
  }
  return 0;
}

int cmd_batch(int argc, char** argv) {
  std::string target;
  FlowArgs args;
  args.flow.lint = true;   // the corpus gate; --no-lint opts out
  args.flow.check = true;  // output-side gate; --no-check opts out
  for (int i = 2; i < argc; ++i)
    if (!args.consume(argc, argv, i, &target)) return usage();
  if (target.empty()) return usage();

  if (!args.flow.emit_sg_path.empty() ||
      !args.flow.emit_verilog_path.empty() ||
      !args.flow.emit_eqn_path.empty()) {
    // Every concurrent flow would truncate the same file.
    std::fprintf(stderr,
                 "batch does not take -o/--verilog/--eqn (one file, many "
                 "specs)\n");
    return usage();
  }

  BatchOptions opts;
  opts.flow = args.flow;
  opts.threads = args.batch_threads;
  opts.item_deadline_ms = args.item_deadline_ms;
  opts.retry_degraded = args.retry_degraded;
  opts.on_report = [](const FlowReport& r) {
    std::printf("%-20s %s  %8.1f ms%s%s\n", r.name.c_str(),
                r.ok ? "ok    " : "FAILED", r.total_ms,
                r.ok ? "" : "  ", r.ok ? "" : r.failure.c_str());
  };

  const BatchResult result = target == "suite"
                                 ? run_batch_suite({}, opts)
                                 : run_batch_files(
                                       collect_spec_files(target), opts);
  std::printf("%d/%zu ok, %d failed, %.1f ms total\n", result.num_ok,
              result.items.size(), result.num_failed, result.total_ms);
  if (!args.json_path.empty())
    write_json_file(args.json_path, result.to_json());
  return result.all_ok() ? 0 : 1;
}

int cmd_serve(int argc, char** argv) {
  FlowArgs args;
  args.flow.lint = true;   // fast reject path; requests can override
  args.flow.check = true;  // output-side gate; requests can override
  bool pipe = false;
  std::string socket_path;
  std::uint64_t cache_mb = 256;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--pipe") {
      pipe = true;
    } else if (arg == "--socket") {
      if (i + 1 >= argc) return usage();
      socket_path = argv[++i];
    } else if (arg == "--cache-mb") {
      if (i + 1 >= argc || !parse_count_arg(argv[++i], 1, &cache_mb))
        return usage();
    } else if (!args.consume(argc, argv, i, nullptr)) {
      return usage();
    }
  }
  if (pipe == !socket_path.empty()) {
    std::fprintf(stderr,
                 "serve wants exactly one of --pipe or --socket PATH\n");
    return usage();
  }
  if (!args.flow.emit_sg_path.empty() || !args.flow.emit_verilog_path.empty() ||
      !args.flow.emit_eqn_path.empty() || !args.json_path.empty() ||
      args.item_deadline_ms > 0 || args.retry_degraded) {
    std::fprintf(stderr,
                 "serve does not take emit/json/batch flags (responses carry "
                 "the results; per-request deadlines come from the request "
                 "or --deadline-ms)\n");
    return usage();
  }

  serve::ServeOptions opts;
  opts.flow = args.flow;
  opts.threads = args.batch_threads;
  opts.cache_bytes = static_cast<std::size_t>(cache_mb) << 20;
  // --deadline-ms becomes the default per-request deadline; each request
  // may override it with its own "deadline_ms" field.
  opts.request_deadline_ms = args.flow.deadline_ms;

  serve::ServeEngine engine(opts);
  return pipe ? serve::serve_pipe(engine, std::cin, std::cout)
              : serve::serve_socket(engine, socket_path);
}

int cmd_bench(const std::string& which) {
  if (which == "list") {
    for (const auto& name : bench::suite_names())
      std::printf("%s\n", name.c_str());
    return 0;
  }
  const auto entry = bench::suite_benchmark(which);
  std::cout << write_g_string(entry.stg, entry.name);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  // Arm the deterministic fault harness from SITM_FAULTS (no-op when
  // unset); a malformed spec is a usage error, not something to run past.
  if (!sitm::fault::configure_from_env()) return 2;
  const std::string cmd = argv[1];
  try {
    if (cmd == "info") return cmd_info(argv[2]);
    if (cmd == "lint") return cmd_lint(argc, argv);
    if (cmd == "map") return cmd_map(argc, argv);
    if (cmd == "verify") return cmd_verify(argc, argv);
    if (cmd == "check") return cmd_check(argc, argv);
    if (cmd == "batch") return cmd_batch(argc, argv);
    if (cmd == "bench") return cmd_bench(argv[2]);
    if (cmd == "serve") return cmd_serve(argc, argv);
  } catch (const sitm::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
