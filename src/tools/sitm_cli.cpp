// sitm — command-line driver for the technology mapping flow.
//
//   sitm info   <file.g|file.sg>           specification statistics & checks
//   sitm map    <file> [-i N] [-o out.sg] [--verilog out.v] [--eqn out.eqn]
//                                          CSC-resolve (if needed) + map
//   sitm verify <file>                     synthesize + gate-level SI check
//   sitm bench  <name|list>                dump a suite benchmark as .g
//
// Files ending in ".sg" are parsed as State Graphs, everything else as
// astg ".g" Signal Transition Graphs.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "benchlib/suite.hpp"
#include "core/csc.hpp"
#include "core/mapper.hpp"
#include "core/mc_cover.hpp"
#include "netlist/si_verify.hpp"
#include "netlist/tech_decomp.hpp"
#include "netlist/writers.hpp"
#include "sg/properties.hpp"
#include "sg/sg_io.hpp"
#include "stg/g_io.hpp"
#include "stg/symbolic.hpp"
#include "util/error.hpp"

namespace {

using namespace sitm;

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  sitm info   <file.g|file.sg>\n"
               "  sitm map    <file> [-i N] [-o out.sg] [--verilog out.v] "
               "[--eqn out.eqn]\n"
               "  sitm verify <file>\n"
               "  sitm bench  <name|list>\n");
  return 2;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

bool ends_with(const std::string& s, const char* suffix) {
  const std::size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

/// Load either format into an SG (plus the name).
StateGraph load(const std::string& path, std::string* name) {
  const std::string text = slurp(path);
  if (ends_with(path, ".sg")) return read_sg_string(text, name);
  const Stg stg = read_g_string(text, name);
  return stg.to_state_graph();
}

int cmd_info(const std::string& path) {
  std::string name = "spec";
  const std::string text = slurp(path);
  if (!ends_with(path, ".sg")) {
    const Stg stg = read_g_string(text, &name);
    const auto sym = symbolic_reachability(stg);
    std::printf("%s: %zu transitions, %zu places, %.0f reachable markings "
                "(%d symbolic iterations)%s\n",
                name.c_str(), stg.num_transitions(), stg.num_places(),
                sym.num_markings, sym.iterations,
                sym.has_deadlock ? ", DEADLOCK" : "");
  }
  const StateGraph sg =
      ends_with(path, ".sg") ? read_sg_string(text, &name)
                             : read_g_string(text).to_state_graph();
  std::printf("%s: %d signals (%zu inputs), %zu states, %zu arcs\n",
              name.c_str(), sg.num_signals(), sg.input_signals().size(),
              sg.num_states(), sg.num_arcs());
  auto report = [&](const char* what, const PropertyResult& r) {
    std::printf("  %-20s %s\n", what, r ? "ok" : r.why.c_str());
  };
  report("consistency:", check_consistency(sg));
  report("determinism:", check_determinism(sg));
  report("commutativity:", check_commutativity(sg));
  report("output persistency:", check_output_persistency(sg));
  report("CSC:", check_csc(sg));
  report("USC:", check_usc(sg));
  if (check_implementability(sg)) {
    const Netlist netlist = synthesize_all(sg);
    std::printf("  unconstrained implementation: %d literals, %d C elements, "
                "max gate %d literals\n",
                netlist.total_literals(), netlist.num_c_elements(),
                netlist.max_gate_complexity());
  }
  return 0;
}

int cmd_map(int argc, char** argv) {
  std::string path, out_sg, out_v, out_eqn;
  int max_literals = 2;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-i" && i + 1 < argc) {
      max_literals = std::atoi(argv[++i]);
    } else if (arg == "-o" && i + 1 < argc) {
      out_sg = argv[++i];
    } else if (arg == "--verilog" && i + 1 < argc) {
      out_v = argv[++i];
    } else if (arg == "--eqn" && i + 1 < argc) {
      out_eqn = argv[++i];
    } else if (path.empty() && arg[0] != '-') {
      path = arg;
    } else {
      return usage();
    }
  }
  if (path.empty() || max_literals < 1) return usage();

  std::string name = "spec";
  StateGraph sg = load(path, &name);

  if (!check_csc(sg)) {
    std::printf("CSC violated (%d conflict pairs); resolving...\n",
                count_csc_conflicts(sg));
    const CscResult resolved = resolve_csc(sg);
    if (!resolved.resolved) {
      std::fprintf(stderr, "CSC resolution failed: %s\n",
                   resolved.failure.c_str());
      return 1;
    }
    std::printf("inserted %d state signal(s)\n", resolved.signals_inserted);
    sg = *resolved.sg;
  }

  MapperOptions opts;
  opts.library.max_literals = max_literals;
  const MapResult result = technology_map(sg, opts);
  if (!result.implementable) {
    std::fprintf(stderr, "not implementable with %d-literal gates: %s\n",
                 max_literals, result.failure.c_str());
    return 1;
  }
  const Netlist netlist = result.build_netlist();
  std::printf("mapped onto <=%d-literal gates: %d inserted signal(s), "
              "%d literals, %d C elements\n%s",
              max_literals, result.signals_inserted, netlist.total_literals(),
              netlist.num_c_elements(), netlist.to_string().c_str());

  const SiVerifyResult verify = verify_speed_independence(netlist);
  std::printf("gate-level SI verification: %s\n",
              verify.ok ? "PASS" : verify.why.c_str());

  auto dump = [&](const std::string& file, const std::string& content) {
    std::ofstream out(file);
    if (!out) throw Error("cannot write " + file);
    out << content;
    std::printf("wrote %s\n", file.c_str());
  };
  if (!out_sg.empty()) dump(out_sg, write_sg_string(*result.sg, name));
  if (!out_v.empty()) dump(out_v, write_verilog_string(netlist, name));
  if (!out_eqn.empty()) dump(out_eqn, write_eqn_string(netlist, name));
  return verify.ok ? 0 : 1;
}

int cmd_verify(const std::string& path) {
  std::string name;
  const StateGraph sg = load(path, &name);
  if (auto r = check_implementability(sg); !r) {
    std::printf("specification not implementable: %s\n", r.why.c_str());
    return 1;
  }
  const Netlist netlist = synthesize_all(sg);
  const SiVerifyResult verify = verify_speed_independence(netlist);
  std::printf("%s: %s (%zu composite states)\n", path.c_str(),
              verify.ok ? "speed-independent" : verify.why.c_str(),
              verify.num_states);
  return verify.ok ? 0 : 1;
}

int cmd_bench(const std::string& which) {
  if (which == "list") {
    for (const auto& name : bench::suite_names()) std::printf("%s\n", name.c_str());
    return 0;
  }
  const auto entry = bench::suite_benchmark(which);
  std::cout << write_g_string(entry.stg, entry.name);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "info") return cmd_info(argv[2]);
    if (cmd == "map") return cmd_map(argc, argv);
    if (cmd == "verify") return cmd_verify(argv[2]);
    if (cmd == "bench") return cmd_bench(argv[2]);
  } catch (const sitm::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
