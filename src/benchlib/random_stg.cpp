#include "benchlib/random_stg.hpp"

#include <string>
#include <vector>

#include "util/error.hpp"

namespace sitm {
namespace bench {

Stg make_random_stg(std::uint64_t seed, const RandomStgOptions& opts) {
  Rng rng(seed);
  Stg stg;

  // Random shape: 1..3 modes selected by environment choice; each mode is a
  // parallel fork of chains.  Shapes compose the verified generator
  // patterns (choice of {fork of chains}), so every instance is valid by
  // construction.
  const int modes = opts.allow_choice ? 1 + static_cast<int>(rng.below(3)) : 1;

  struct Branch {
    std::vector<int> signals;  // chain of output signals
  };
  struct Mode {
    int request = -1;  // input signal
    int done_instance = 1;
    std::vector<Branch> branches;
  };

  // Pick the shape under the signal budget: inputs + outputs + done.
  std::vector<Mode> shape(static_cast<std::size_t>(modes));
  int budget =
      static_cast<int>(rng.range(static_cast<std::uint64_t>(opts.min_signals),
                                 static_cast<std::uint64_t>(opts.max_signals)));
  budget -= modes + 1;  // request inputs + the shared done signal
  if (budget < modes) budget = modes;  // at least one output per mode

  int out_counter = 0;
  for (int m = 0; m < modes; ++m) {
    auto& mode = shape[static_cast<std::size_t>(m)];
    mode.request = stg.add_signal("r" + std::to_string(m), SignalKind::kInput);
    mode.done_instance = m + 1;
    const int share = budget / (modes - m);
    budget -= share;
    const int width = 1 + static_cast<int>(rng.below(
                              static_cast<std::uint64_t>(
                                  std::min(opts.max_fork, std::max(1, share)))));
    int remaining = std::max(1, share);
    for (int b = 0; b < width; ++b) {
      Branch branch;
      const int avail = remaining - (width - b - 1);  // leave 1 per branch
      const int len =
          b + 1 == width
              ? std::max(1, remaining)
              : 1 + static_cast<int>(rng.below(
                        static_cast<std::uint64_t>(std::max(1, avail))));
      for (int i = 0; i < len; ++i) {
        branch.signals.push_back(stg.add_signal(
            "o" + std::to_string(out_counter++), SignalKind::kOutput));
      }
      remaining -= len;
      mode.branches.push_back(std::move(branch));
      if (remaining <= 0 && b + 1 < width) {
        break;  // budget exhausted; fewer branches than drawn
      }
    }
  }
  const int done = stg.add_signal("done", SignalKind::kOutput);

  const PlaceId idle = stg.add_place("idle");
  stg.mark_initial(idle);

  for (const auto& mode : shape) {
    const TransId rp = stg.add_transition(mode.request, true);
    const TransId rm = stg.add_transition(mode.request, false);
    const TransId dp = stg.add_transition(done, true, mode.done_instance);
    const TransId dm = stg.add_transition(done, false, mode.done_instance);
    stg.connect_pt(idle, rp);
    for (const auto& branch : mode.branches) {
      TransId prev = rp;
      for (int sig : branch.signals) {
        const TransId op = stg.add_transition(sig, true);
        stg.connect_tt(prev, op);
        prev = op;
      }
      stg.connect_tt(prev, dp);  // join
      prev = rm;
      for (int sig : branch.signals) {
        const TransId om = stg.add_transition(sig, false);
        stg.connect_tt(prev, om);
        prev = om;
      }
      stg.connect_tt(prev, dm);  // join
    }
    stg.connect_tt(dp, rm);
    stg.connect_tp(dm, idle);
  }
  return stg;
}

}  // namespace bench
}  // namespace sitm
