#pragma once
// Seeded random STG generation for property testing and fuzzing.
//
// Generated nets are random series-parallel "handshake skeletons": a cyclic
// alternation of sequential segments, parallel fork/join blocks and
// (optionally) input choice blocks, each expanded into rise/fall transition
// pairs.  By construction every instance is a live, 1-safe, consistent STG
// whose reachability graph is deterministic, commutative and
// output-persistent; CSC holds because every signal toggles exactly once per
// cycle phase (the test suite re-verifies all of this for each seed).

#include "stg/stg.hpp"
#include "util/rng.hpp"

namespace sitm {
namespace bench {

struct RandomStgOptions {
  int min_signals = 4;
  int max_signals = 12;
  /// Maximum branches of one parallel fork.
  int max_fork = 4;
  /// Whether to wrap the skeleton in an input-choice block (two modes).
  bool allow_choice = true;
};

/// Deterministic random STG for `seed`.
Stg make_random_stg(std::uint64_t seed, const RandomStgOptions& opts = {});

}  // namespace bench
}  // namespace sitm
