#pragma once
// Parametric STG families for the benchmark suite, property tests and
// scaling experiments.
//
// Every generator returns a consistent, 1-safe, speed-independent STG whose
// reachability graph satisfies CSC — i.e. a valid input to the mapping flow
// (the test suite re-checks this for every instance).  The families mirror
// the structural patterns of the classical asynchronous benchmarks:
//
//   * pipeline(n)       — 4-phase full-handshake pipeline (marked graph);
//                         small 1-2 literal covers.
//   * parallelizer(k)   — one request forks k grant signals joined by a done
//                         signal: a k-literal AND join (the high-fanin
//                         pattern of vbe10b / pe-send-ifc).
//   * seq_chain(k)      — thermometer sequencer r -> o1 -> ... -> ok -> a.
//   * choice_mixer(k)   — environment chooses one of k requests, all served
//                         by one ack: a k-cube OR cover.
//   * shared_out(k)     — k clients toggling a shared output z with private
//                         acks: multi-cube covers (z reset = sum ai*~ri).
//   * combo(p, s)       — input choice between a p-way parallel mode and an
//                         s-deep sequential mode sharing the done signal:
//                         multi-cube high-fanin covers (the mr0/mmu shape).
//   * hazard()          — faithful reconstruction of the paper's running
//                         example (Fig. 1): inputs a, d; outputs c, x with
//                         Sx = a'*c*d, whose divisor a'*d is illegal (diamond
//                         intersection) while a'*c and c*d are legal.

#include "stg/stg.hpp"

namespace sitm {
namespace bench {

Stg make_pipeline(int stages);
Stg make_parallelizer(int branches);
Stg make_seq_chain(int length);
Stg make_choice_mixer(int clients);
Stg make_shared_out(int clients);
Stg make_combo(int parallel, int sequential);
Stg make_hazard();

/// Token ring of n handshake cells: cell i requests its successor and waits
/// for the grant to travel around (one token circulating; thermometer
/// codes).  Exercises long sequential dependency chains.
Stg make_ring(int cells);

/// Complete binary fork/join tree of depth d: the root request forks to 2^d
/// leaves and the done signal joins them level by level — every join is a
/// natural 2-input C element (already implementable; a regression guard
/// that the mapper leaves good circuits alone).
Stg make_tree(int depth);

/// Deliberately CSC-violating ring of `segments` four-phase output pairs:
/// segment h cycles s2h+ s2h+1+ s2h- s2h+1-, all segments chained into one
/// marked ring (the classic a+ b+ a- b- c+ d+ c- d- conflict for
/// segments = 2).  The all-zero code recurs before every segment with a
/// different output enabled, so the SG carries segments*(segments-1)/2 CSC
/// conflict pairs — the natural workload for resolve_csc benchmarks and
/// equivalence tests.  Unlike the families above, this one must NOT satisfy
/// CSC.
Stg make_csc_ring(int segments);

/// make_csc_ring with concurrency: between each segment's bounding pair
/// (s2h+ ... s2h- ...) the segment forks `width` parallel outputs
/// (p{h}_{j}+ joined before s2h+1+, p{h}_{j}- joined before s2h+1-), so the
/// reachability graph carries both the ring's CSC conflicts (the all-zero
/// code still recurs at every segment boundary) and Theta(width^2 * 2^width)
/// state diamonds per segment.  This is the workload where insertion
/// planning is diamond-bound — the regime the shared InsertionPlanner
/// amortizes — whereas the plain ring is diamond-free.
Stg make_csc_diamond_ring(int segments, int width);

}  // namespace bench
}  // namespace sitm
