#include "benchlib/generators.hpp"

#include "util/error.hpp"

namespace sitm {
namespace bench {

namespace {

/// Small helper wrapping transition creation.
struct Builder {
  Stg stg;

  int in(const std::string& name) { return stg.add_signal(name, SignalKind::kInput); }
  int out(const std::string& name) {
    return stg.add_signal(name, SignalKind::kOutput);
  }
  TransId plus(int sig, int inst = 1) { return stg.add_transition(sig, true, inst); }
  TransId minus(int sig, int inst = 1) {
    return stg.add_transition(sig, false, inst);
  }
  /// from -> to through an implicit place.
  PlaceId arc(TransId from, TransId to) { return stg.connect_tt(from, to); }
  /// from -> to, with the place initially marked.
  void marked_arc(TransId from, TransId to) { stg.mark_initial(arc(from, to)); }
};

}  // namespace

Stg make_pipeline(int stages) {
  if (stages < 1) throw Error("make_pipeline: stages >= 1");
  Builder b;
  std::vector<int> r(stages), a(stages);
  for (int i = 0; i < stages; ++i) {
    r[i] = i == 0 ? b.in("r0") : b.out("r" + std::to_string(i));
    a[i] = b.out("a" + std::to_string(i));
  }
  std::vector<TransId> rp(stages), rm(stages), ap(stages), am(stages);
  for (int i = 0; i < stages; ++i) {
    rp[i] = b.plus(r[i]);
    rm[i] = b.minus(r[i]);
    ap[i] = b.plus(a[i]);
    am[i] = b.minus(a[i]);
  }
  for (int i = 0; i + 1 < stages; ++i) {
    b.arc(rp[i], rp[i + 1]);  // request forwards
    b.arc(ap[i + 1], ap[i]);  // ack returns
    b.arc(rm[i], rm[i + 1]);
    b.arc(am[i + 1], am[i]);
  }
  b.arc(rp[stages - 1], ap[stages - 1]);  // last stage handshake
  b.arc(rm[stages - 1], am[stages - 1]);
  b.arc(ap[0], rm[0]);       // environment: r0- after a0+
  b.marked_arc(am[0], rp[0]);  // cycle restart, initially enabled
  return std::move(b.stg);
}

Stg make_parallelizer(int branches) {
  if (branches < 1) throw Error("make_parallelizer: branches >= 1");
  Builder b;
  const int r = b.in("r");
  std::vector<int> g(branches);
  for (int i = 0; i < branches; ++i) g[i] = b.out("g" + std::to_string(i));
  const int d = b.out("d");

  const TransId rp = b.plus(r), rm = b.minus(r);
  const TransId dp = b.plus(d), dm = b.minus(d);
  for (int i = 0; i < branches; ++i) {
    const TransId gp = b.plus(g[i]), gm = b.minus(g[i]);
    b.arc(rp, gp);
    b.arc(gp, dp);  // join: d+ waits for every g+
    b.arc(rm, gm);
    b.arc(gm, dm);  // join: d- waits for every g-
  }
  b.arc(dp, rm);        // environment lowers r after done
  b.marked_arc(dm, rp);  // restart
  return std::move(b.stg);
}

Stg make_seq_chain(int length) {
  if (length < 1) throw Error("make_seq_chain: length >= 1");
  Builder b;
  const int r = b.in("r");
  std::vector<int> o(length);
  for (int i = 0; i < length; ++i) o[i] = b.out("o" + std::to_string(i));
  const int a = b.out("a");

  const TransId rp = b.plus(r), rm = b.minus(r);
  const TransId ap = b.plus(a), am = b.minus(a);
  TransId prev = rp;
  for (int i = 0; i < length; ++i) {
    const TransId op = b.plus(o[i]);
    b.arc(prev, op);
    prev = op;
  }
  b.arc(prev, ap);
  b.arc(ap, rm);
  prev = rm;
  for (int i = 0; i < length; ++i) {
    const TransId om = b.minus(o[i]);
    b.arc(prev, om);
    prev = om;
  }
  b.arc(prev, am);
  b.marked_arc(am, rp);
  return std::move(b.stg);
}

Stg make_choice_mixer(int clients) {
  if (clients < 1) throw Error("make_choice_mixer: clients >= 1");
  Builder b;
  std::vector<int> r(clients);
  for (int i = 0; i < clients; ++i) r[i] = b.in("r" + std::to_string(i));
  const int a = b.out("a");

  const PlaceId idle = b.stg.add_place("idle");
  b.stg.mark_initial(idle);
  for (int i = 0; i < clients; ++i) {
    const TransId rp = b.plus(r[i]), rm = b.minus(r[i]);
    const TransId ap = b.plus(a, i + 1), am = b.minus(a, i + 1);
    b.stg.connect_pt(idle, rp);
    b.arc(rp, ap);
    b.arc(ap, rm);
    b.arc(rm, am);
    b.stg.connect_tp(am, idle);
  }
  return std::move(b.stg);
}

Stg make_shared_out(int clients) {
  if (clients < 1) throw Error("make_shared_out: clients >= 1");
  Builder b;
  std::vector<int> r(clients), a(clients);
  for (int i = 0; i < clients; ++i) r[i] = b.in("r" + std::to_string(i));
  const int z = b.out("z");
  for (int i = 0; i < clients; ++i) a[i] = b.out("a" + std::to_string(i));

  const PlaceId idle = b.stg.add_place("idle");
  b.stg.mark_initial(idle);
  for (int i = 0; i < clients; ++i) {
    const TransId rp = b.plus(r[i]), rm = b.minus(r[i]);
    const TransId zp = b.plus(z, i + 1), zm = b.minus(z, i + 1);
    const TransId ap = b.plus(a[i]), am = b.minus(a[i]);
    b.stg.connect_pt(idle, rp);
    b.arc(rp, zp);
    b.arc(zp, ap);
    b.arc(ap, rm);
    b.arc(rm, zm);
    b.arc(zm, am);
    b.stg.connect_tp(am, idle);
  }
  return std::move(b.stg);
}

Stg make_combo(int parallel, int sequential) {
  if (parallel < 1 || sequential < 1)
    throw Error("make_combo: positive sizes required");
  Builder b;
  const int ra = b.in("ra");
  const int rb = b.in("rb");
  std::vector<int> g(parallel), o(sequential);
  for (int i = 0; i < parallel; ++i) g[i] = b.out("g" + std::to_string(i));
  for (int i = 0; i < sequential; ++i) o[i] = b.out("o" + std::to_string(i));
  const int d = b.out("d");

  const PlaceId idle = b.stg.add_place("idle");
  b.stg.mark_initial(idle);

  // Mode A: p-way fork/join.
  {
    const TransId rp = b.plus(ra), rm = b.minus(ra);
    const TransId dp = b.plus(d, 1), dm = b.minus(d, 1);
    b.stg.connect_pt(idle, rp);
    for (int i = 0; i < parallel; ++i) {
      const TransId gp = b.plus(g[i]), gm = b.minus(g[i]);
      b.arc(rp, gp);
      b.arc(gp, dp);
      b.arc(rm, gm);
      b.arc(gm, dm);
    }
    b.arc(dp, rm);
    b.stg.connect_tp(dm, idle);
  }
  // Mode B: s-deep sequence.
  {
    const TransId rp = b.plus(rb), rm = b.minus(rb);
    const TransId dp = b.plus(d, 2), dm = b.minus(d, 2);
    b.stg.connect_pt(idle, rp);
    TransId prev = rp;
    for (int i = 0; i < sequential; ++i) {
      const TransId op = b.plus(o[i]);
      b.arc(prev, op);
      prev = op;
    }
    b.arc(prev, dp);
    b.arc(dp, rm);
    prev = rm;
    for (int i = 0; i < sequential; ++i) {
      const TransId om = b.minus(o[i]);
      b.arc(prev, om);
      prev = om;
    }
    b.arc(prev, dm);
    b.stg.connect_tp(dm, idle);
  }
  return std::move(b.stg);
}

Stg make_ring(int cells) {
  if (cells < 1) throw Error("make_ring: cells >= 1");
  Builder b;
  // Signal r is the environment kick; cell outputs c0..c{n-1}.
  const int r = b.in("r");
  std::vector<int> c(static_cast<std::size_t>(cells));
  for (int i = 0; i < cells; ++i)
    c[static_cast<std::size_t>(i)] = b.out("c" + std::to_string(i));

  const TransId rp = b.plus(r), rm = b.minus(r);
  std::vector<TransId> cp(static_cast<std::size_t>(cells)),
      cm(static_cast<std::size_t>(cells));
  for (int i = 0; i < cells; ++i) {
    cp[static_cast<std::size_t>(i)] = b.plus(c[static_cast<std::size_t>(i)]);
    cm[static_cast<std::size_t>(i)] = b.minus(c[static_cast<std::size_t>(i)]);
  }
  // Rising wave around the ring, then r handshake, then falling wave.
  b.arc(rp, cp[0]);
  for (int i = 0; i + 1 < cells; ++i)
    b.arc(cp[static_cast<std::size_t>(i)], cp[static_cast<std::size_t>(i + 1)]);
  b.arc(cp[static_cast<std::size_t>(cells - 1)], rm);
  b.arc(rm, cm[0]);
  for (int i = 0; i + 1 < cells; ++i)
    b.arc(cm[static_cast<std::size_t>(i)], cm[static_cast<std::size_t>(i + 1)]);
  b.marked_arc(cm[static_cast<std::size_t>(cells - 1)], rp);
  return std::move(b.stg);
}

Stg make_tree(int depth) {
  if (depth < 1 || depth > 4) throw Error("make_tree: depth in 1..4");
  Builder b;
  const int r = b.in("r");
  // Internal nodes n<level>_<index>, leaves at the last level; done at root.
  const int leaves = 1 << depth;
  std::vector<int> leaf(static_cast<std::size_t>(leaves));
  for (int i = 0; i < leaves; ++i)
    leaf[static_cast<std::size_t>(i)] = b.out("l" + std::to_string(i));
  // Join levels: one signal per internal node (including the root 'done').
  std::vector<std::vector<int>> join(static_cast<std::size_t>(depth));
  for (int level = depth - 1; level >= 0; --level) {
    const int width = 1 << level;
    join[static_cast<std::size_t>(level)].resize(static_cast<std::size_t>(width));
    for (int i = 0; i < width; ++i)
      join[static_cast<std::size_t>(level)][static_cast<std::size_t>(i)] =
          b.out("j" + std::to_string(level) + "_" + std::to_string(i));
  }

  const TransId rp = b.plus(r), rm = b.minus(r);
  std::vector<TransId> leafp(static_cast<std::size_t>(leaves)),
      leafm(static_cast<std::size_t>(leaves));
  for (int i = 0; i < leaves; ++i) {
    leafp[static_cast<std::size_t>(i)] = b.plus(leaf[static_cast<std::size_t>(i)]);
    leafm[static_cast<std::size_t>(i)] = b.minus(leaf[static_cast<std::size_t>(i)]);
    b.arc(rp, leafp[static_cast<std::size_t>(i)]);
    b.arc(rm, leafm[static_cast<std::size_t>(i)]);
  }
  // Level depth-1 joins pairs of leaves; upper levels join pairs of joins.
  std::vector<TransId> prevp = leafp, prevm = leafm;
  for (int level = depth - 1; level >= 0; --level) {
    const int width = 1 << level;
    std::vector<TransId> curp(static_cast<std::size_t>(width)),
        curm(static_cast<std::size_t>(width));
    for (int i = 0; i < width; ++i) {
      const int sig = join[static_cast<std::size_t>(level)][static_cast<std::size_t>(i)];
      curp[static_cast<std::size_t>(i)] = b.plus(sig);
      curm[static_cast<std::size_t>(i)] = b.minus(sig);
      b.arc(prevp[static_cast<std::size_t>(2 * i)], curp[static_cast<std::size_t>(i)]);
      b.arc(prevp[static_cast<std::size_t>(2 * i + 1)], curp[static_cast<std::size_t>(i)]);
      b.arc(prevm[static_cast<std::size_t>(2 * i)], curm[static_cast<std::size_t>(i)]);
      b.arc(prevm[static_cast<std::size_t>(2 * i + 1)], curm[static_cast<std::size_t>(i)]);
    }
    prevp = std::move(curp);
    prevm = std::move(curm);
  }
  b.arc(prevp[0], rm);        // root join acknowledges: env lowers r
  b.marked_arc(prevm[0], rp);  // restart
  return std::move(b.stg);
}

Stg make_hazard() {
  Builder b;
  const int a = b.in("a");
  const int d = b.in("d");
  const int c = b.out("c");
  const int x = b.out("x");

  const TransId ap = b.plus(a), am = b.minus(a);
  const TransId dp = b.plus(d), dm = b.minus(d);
  const TransId cp = b.plus(c), cm = b.minus(c);
  const TransId xp = b.plus(x), xm = b.minus(x);

  b.arc(ap, cp);   // a+ -> c+
  b.arc(cp, am);   // c+ -> a-
  b.arc(am, xp);   // join: x+ after a- ...
  b.arc(dp, xp);   // ... and after d+
  b.arc(xp, cm);   // x+ -> c-
  b.arc(cm, dm);   // c- -> d-
  b.arc(dm, xm);   // d- -> x-
  b.marked_arc(xm, ap);  // cycle restart: a+ and d+ concurrently
  b.marked_arc(xm, dp);
  return std::move(b.stg);
}

Stg make_csc_ring(int segments) {
  if (segments < 2) throw Error("make_csc_ring: segments >= 2");
  Builder b;
  std::vector<TransId> ring;
  for (int h = 0; h < segments; ++h) {
    const int a = b.out("s" + std::to_string(2 * h));
    const int c = b.out("s" + std::to_string(2 * h + 1));
    ring.push_back(b.plus(a));
    ring.push_back(b.plus(c));
    ring.push_back(b.minus(a));
    ring.push_back(b.minus(c));
  }
  for (std::size_t i = 0; i + 1 < ring.size(); ++i) b.arc(ring[i], ring[i + 1]);
  b.marked_arc(ring.back(), ring.front());
  return std::move(b.stg);
}

Stg make_csc_diamond_ring(int segments, int width) {
  if (segments < 2) throw Error("make_csc_diamond_ring: segments >= 2");
  if (width < 1) throw Error("make_csc_diamond_ring: width >= 1");
  Builder b;
  TransId first = 0, prev = 0;
  for (int h = 0; h < segments; ++h) {
    const std::string seg = std::to_string(h);
    const int a = b.out("s" + std::to_string(2 * h));
    const int c = b.out("s" + std::to_string(2 * h + 1));
    const TransId ap = b.plus(a), cp = b.plus(c);
    const TransId am = b.minus(a), cm = b.minus(c);
    // a+ -> fork {p_j+} -> join c+ -> a- -> fork {p_j-} -> join c-
    for (int j = 0; j < width; ++j) {
      const int p = b.out("p" + seg + "_" + std::to_string(j));
      const TransId pp = b.plus(p), pm = b.minus(p);
      b.arc(ap, pp);
      b.arc(pp, cp);
      b.arc(am, pm);
      b.arc(pm, cm);
    }
    b.arc(cp, am);
    if (h == 0)
      first = ap;
    else
      b.arc(prev, ap);
    prev = cm;
  }
  b.marked_arc(prev, first);
  return std::move(b.stg);
}

}  // namespace bench
}  // namespace sitm
