#include "benchlib/suite.hpp"

#include <functional>

#include "benchlib/generators.hpp"
#include "util/error.hpp"

namespace sitm {
namespace bench {

namespace {

struct NamedFamily {
  const char* name;
  const char* family;
  std::function<Stg()> make;
};

/// Table 1 names mapped to reconstructed instances.  Family parameters are
/// chosen so the pre-decomposition complexity profile lands in the same
/// band as the published histogram (e.g. vbe10b / pe-send-ifc / tsend-bm
/// carry 5-7 literal gates; half / chu133 are nearly trivial).
const NamedFamily kSuite[] = {
    {"alloc-outbound", "shared_out(2)", [] { return make_shared_out(2); }},
    {"chu133", "seq_chain(2)", [] { return make_seq_chain(2); }},
    {"chu150", "choice_mixer(2)", [] { return make_choice_mixer(2); }},
    {"converta", "pipeline(2)", [] { return make_pipeline(2); }},
    {"dff", "seq_chain(3)", [] { return make_seq_chain(3); }},
    {"ebergen", "pipeline(3)", [] { return make_pipeline(3); }},
    {"half", "parallelizer(2)", [] { return make_parallelizer(2); }},
    {"hazard", "hazard()", [] { return make_hazard(); }},
    {"master-read", "combo(3,3)", [] { return make_combo(3, 3); }},
    {"mmu", "combo(4,2)", [] { return make_combo(4, 2); }},
    {"mp-forward-pkt", "shared_out(2)", [] { return make_shared_out(2); }},
    {"mr0", "combo(5,3)", [] { return make_combo(5, 3); }},
    {"mr1", "combo(4,3)", [] { return make_combo(4, 3); }},
    {"nak-pa", "pipeline(3)", [] { return make_pipeline(3); }},
    {"nowick", "choice_mixer(3)", [] { return make_choice_mixer(3); }},
    {"pe-rcv-ifc", "shared_out(4)", [] { return make_shared_out(4); }},
    {"pe-send-ifc", "parallelizer(6)", [] { return make_parallelizer(6); }},
    {"ram-read-sbuf", "combo(2,2)", [] { return make_combo(2, 2); }},
    {"rcv-setup", "choice_mixer(2)", [] { return make_choice_mixer(2); }},
    {"rlm", "parallelizer(3)", [] { return make_parallelizer(3); }},
    {"sbuf-ram-write", "combo(2,3)", [] { return make_combo(2, 3); }},
    {"sbuf-send-ctl", "seq_chain(4)", [] { return make_seq_chain(4); }},
    {"sbuf-send-pkt2", "shared_out(3)", [] { return make_shared_out(3); }},
    {"seq-mix", "combo(2,4)", [] { return make_combo(2, 4); }},
    {"seq4", "seq_chain(4)", [] { return make_seq_chain(4); }},
    {"trimos-send", "combo(3,2)", [] { return make_combo(3, 2); }},
    {"tsend-bm", "parallelizer(5)", [] { return make_parallelizer(5); }},
    {"vbe5b", "parallelizer(3)", [] { return make_parallelizer(3); }},
    {"vbe5c", "seq_chain(3)", [] { return make_seq_chain(3); }},
    {"vbe6a", "shared_out(2)", [] { return make_shared_out(2); }},
    {"vbe10b", "parallelizer(7)", [] { return make_parallelizer(7); }},
    {"wrdatab", "combo(4,4)", [] { return make_combo(4, 4); }},
};

}  // namespace

std::vector<SuiteEntry> table1_suite() {
  std::vector<SuiteEntry> out;
  out.reserve(std::size(kSuite));
  for (const auto& entry : kSuite)
    out.push_back(SuiteEntry{entry.name, entry.family, entry.make()});
  return out;
}

SuiteEntry suite_benchmark(const std::string& name) {
  for (const auto& entry : kSuite)
    if (name == entry.name)
      return SuiteEntry{entry.name, entry.family, entry.make()};
  throw Error("unknown benchmark: " + name);
}

std::vector<std::string> suite_names() {
  std::vector<std::string> out;
  for (const auto& entry : kSuite) out.emplace_back(entry.name);
  return out;
}

}  // namespace bench
}  // namespace sitm
