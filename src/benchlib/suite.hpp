#pragma once
// The named benchmark suite: the 32 circuits of Table 1.
//
// The original SIS/petrify .g files are not redistributable here, so each
// name is mapped to a reconstructed STG of the same structural family and
// size class (see DESIGN.md).  Absolute literal counts therefore differ from
// the published table; the qualitative shape (which circuits need large
// gates, which are mappable at i = 2, the SI-vs-non-SI cost ratio) is what
// the benches reproduce.

#include <string>
#include <vector>

#include "stg/stg.hpp"

namespace sitm {
namespace bench {

struct SuiteEntry {
  std::string name;     ///< benchmark name as in Table 1
  std::string family;   ///< generator family and parameters
  Stg stg;
};

/// All 32 Table-1 benchmarks in publication order.
std::vector<SuiteEntry> table1_suite();

/// One benchmark by name; throws sitm::Error for unknown names.
SuiteEntry suite_benchmark(const std::string& name);

/// The list of benchmark names in publication order.
std::vector<std::string> suite_names();

}  // namespace bench
}  // namespace sitm
