// Tests for weak bisimulation / observational equivalence, including the
// key theorem-level property: accepted insertions preserve the observable
// behaviour of the specification.

#include <gtest/gtest.h>

#include "benchlib/generators.hpp"
#include "core/insertion.hpp"
#include "core/mapper.hpp"
#include "sg/observe.hpp"
#include "sg/sg_io.hpp"
#include "stg/stg.hpp"
#include "util/error.hpp"

namespace sitm {
namespace {

StateGraph handshake() {
  return read_sg_string(R"(.model hs
.inputs r
.outputs a
.graph
s0 r+ s1
s1 a+ s2
s2 r- s3
s3 a- s0
.initial s0 00
.end
)");
}

TEST(Observe, IdenticalGraphsAreBisimilar) {
  const StateGraph sg = handshake();
  EXPECT_TRUE(weakly_bisimilar(sg, sg, {"r", "a"}));
  EXPECT_TRUE(observationally_equivalent(sg, sg));
}

TEST(Observe, DifferentProtocolsAreNot) {
  const StateGraph hs = handshake();
  // Same signals, but the ack is allowed to rise before the request.
  const StateGraph other = read_sg_string(R"(.model o
.inputs r
.outputs a
.graph
s0 a+ s1
s1 r+ s2
s2 a- s3
s3 r- s0
.initial s0 00
.end
)");
  EXPECT_FALSE(weakly_bisimilar(hs, other, {"r", "a"}));
}

TEST(Observe, HidingMakesTauMoves) {
  // A 2-stage sequencer observed only at the ends looks like a handshake.
  const StateGraph chain = bench::make_seq_chain(1).to_state_graph();
  // chain: r+ -> o0+ -> a+ -> r- -> o0- -> a-.  Hide o0: r+ => a+ => ...
  const StateGraph hs = read_sg_string(R"(.model hs2
.inputs r
.outputs a
.graph
s0 r+ s1
s1 a+ s2
s2 r- s3
s3 a- s0
.initial s0 00
.end
)");
  EXPECT_TRUE(weakly_bisimilar(chain, hs, {"r", "a"}));
  // Observed fully, they differ.
  EXPECT_THROW(weakly_bisimilar(chain, hs, {"r", "o0", "a"}), Error);
}

TEST(Observe, MissingSignalThrows) {
  const StateGraph sg = handshake();
  EXPECT_THROW(weakly_bisimilar(sg, sg, {"zz"}), Error);
}

TEST(Observe, InsertionPreservesObservableBehaviour) {
  // Every legal insertion is a pure refinement: hiding the new signal gives
  // back the original behaviour.
  const StateGraph sg = bench::make_hazard().to_state_graph();
  const int c = sg.find_signal("c");
  const int d = sg.find_signal("d");
  const Cover f(sg.num_signals(),
                {Cube::literal(d, true).with_literal(c, true)});
  const auto plan = plan_insertion(sg, f);
  ASSERT_TRUE(plan.has_value());
  const StateGraph next = insert_signal(sg, *plan, "u");
  ASSERT_TRUE(verify_insertion(sg, next));
  EXPECT_TRUE(observationally_equivalent(sg, next));
}

TEST(Observe, FullMappingPreservesObservableBehaviour) {
  for (const Stg& stg : {bench::make_hazard(), bench::make_parallelizer(3),
                         bench::make_combo(2, 2)}) {
    StateGraph sg = stg.to_state_graph();
    sg.prune_unreachable();
    MapperOptions opts;
    opts.library.max_literals = 2;
    const MapResult result = technology_map(sg, opts);
    ASSERT_TRUE(result.implementable) << result.failure;
    const auto equal = observationally_equivalent(sg, *result.sg);
    EXPECT_TRUE(equal.equivalent) << equal.why;
  }
}

TEST(Observe, DetectsDroppedBehaviour) {
  // Removing an arc (forbidding one interleaving) breaks equivalence.
  const StateGraph sg = bench::make_parallelizer(2).to_state_graph();
  StateGraph pruned;
  for (const auto& sig : sg.signals()) pruned.add_signal(sig.name, sig.kind);
  for (StateId s = 0; s < static_cast<StateId>(sg.num_states()); ++s)
    pruned.add_state(sg.code(s));
  bool dropped = false;
  for (StateId s = 0; s < static_cast<StateId>(sg.num_states()); ++s) {
    for (const auto& e : sg.succs(s)) {
      // Drop the first g1+ arc encountered (one diamond branch).
      if (!dropped && sg.signal(e.event.signal).name == "g1" &&
          e.event.rising) {
        dropped = true;
        continue;
      }
      pruned.add_arc(s, e.event, e.target);
    }
  }
  pruned.set_initial(sg.initial());
  pruned.prune_unreachable();
  ASSERT_TRUE(dropped);
  std::vector<std::string> visible;
  for (const auto& sig : sg.signals()) visible.push_back(sig.name);
  EXPECT_FALSE(weakly_bisimilar(sg, pruned, visible));
}

}  // namespace
}  // namespace sitm
