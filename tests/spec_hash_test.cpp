// Canonical spec hashing (stg/canon.hpp) and the FlowOptions fingerprint —
// the two halves of the serve cache key.  The hash must collide for every
// formatting/comment/declaration-order presentation of the same
// specification and separate semantically distinct ones; the fingerprint
// must cover every output-affecting option and ignore the purely
// observational ones (deadlines, emit paths).

#include <gtest/gtest.h>

#include <memory>

#include "flow/flow.hpp"
#include "stg/canon.hpp"
#include "stg/load.hpp"
#include "util/run_guard.hpp"

namespace sitm {
namespace {

SpecHash hash_of(const std::string& text) {
  return canonical_spec_hash(load_spec_string(text));
}

// ---- .g canonicalization -------------------------------------------------

const char* kBaseG = R"(.model chu133
.inputs r
.outputs o0 o1 a
.graph
r+ o0+
r- o0-
a+ r-
a- r+
o0+ o1+
o1+ a+
o0- o1-
o1- a-
.marking { <a-,r+> }
.end
)";

TEST(SpecHash, ReformattedGSpecCollides) {
  // Same net: graph lines permuted, signal declarations reordered,
  // comments and gratuitous whitespace injected, explicit /1 instance
  // suffixes spelled out.
  const char* variant = R"(# a comment the hash must not see
.model chu133
.inputs   r
.outputs a o1 o0
.graph
# arcs in a different order, with explicit instances
o1-/1 a-/1
o0+ o1+
a- r+
r+   o0+
o0- o1-
a+ r-
o1+ a+

r- o0-
.marking { <a-,r+> }
.end
)";
  EXPECT_EQ(hash_of(kBaseG).hex(), hash_of(variant).hex());
}

TEST(SpecHash, DistinctGSpecsSeparate) {
  // Different marking (same structure otherwise).
  const char* moved_marking = R"(.model chu133
.inputs r
.outputs o0 o1 a
.graph
r+ o0+
r- o0-
a+ r-
a- r+
o0+ o1+
o1+ a+
o0- o1-
o1- a-
.marking { <r+,o0+> }
.end
)";
  EXPECT_NE(hash_of(kBaseG).hex(), hash_of(moved_marking).hex());

  // Same structure but a signal moved from output to input.
  const char* flipped_kind = R"(.model chu133
.inputs r a
.outputs o0 o1
.graph
r+ o0+
r- o0-
a+ r-
a- r+
o0+ o1+
o1+ a+
o0- o1-
o1- a-
.marking { <a-,r+> }
.end
)";
  EXPECT_NE(hash_of(kBaseG).hex(), hash_of(flipped_kind).hex());
}

TEST(SpecHash, ModelNameIsPartOfTheSpecKey) {
  // The emitted module carries the model name, so two specs differing only
  // in .model must not share a cache entry.
  std::string renamed = kBaseG;
  renamed.replace(renamed.find("chu133"), 6, "chu134");
  EXPECT_NE(hash_of(kBaseG).hex(), hash_of(renamed).hex());

  // ... but the structural Stg hash underneath ignores the name.
  const Spec a = load_spec_string(kBaseG);
  const Spec b = load_spec_string(renamed);
  EXPECT_EQ(canonical_spec_hash(*a.stg).hex(),
            canonical_spec_hash(*b.stg).hex());
}

// ---- .sg canonicalization ------------------------------------------------

const char* kBaseSg = R"(.model tiny
.inputs a
.outputs b
.graph
s0 a+ s1
s1 b+ s2
s2 a- s3
s3 b- s0
.initial s0 00
.end
)";

TEST(SpecHash, RenamedAndReorderedSgCollides) {
  // State names are presentation: rename every state, list the arcs in a
  // different order, sprinkle comments.
  const char* variant = R"(.model tiny
.inputs a
.outputs b
.graph
# same cycle, different spelling
z b- w
y a- z
w a+ x
x b+ y
.initial w 00
.end
)";
  EXPECT_EQ(hash_of(kBaseSg).hex(), hash_of(variant).hex());
}

TEST(SpecHash, DifferentInitialStateSeparates) {
  const char* shifted = R"(.model tiny
.inputs a
.outputs b
.graph
s0 a+ s1
s1 b+ s2
s2 a- s3
s3 b- s0
.initial s1 10
.end
)";
  EXPECT_NE(hash_of(kBaseSg).hex(), hash_of(shifted).hex());
}

TEST(SpecHash, GAndSgPresentationsOfDifferentKindsSeparate) {
  // Sanity: a .g spec and an .sg spec never collide (distinct domain tags),
  // even when tiny.
  EXPECT_NE(hash_of(kBaseG).hex(), hash_of(kBaseSg).hex());
}

// ---- FlowOptions fingerprint --------------------------------------------

TEST(OptionsFingerprint, OutputAffectingFieldsChangeTheKey) {
  const FlowOptions base;
  const std::uint64_t fp0 = base.fingerprint();

  const auto differs = [&](auto&& mutate, const char* what) {
    FlowOptions o;
    mutate(o);
    EXPECT_NE(o.fingerprint(), fp0) << what;
  };

  differs([](FlowOptions& o) { o.mc.minimize_passes = 3; },
          "mc.minimize_passes");
  differs([](FlowOptions& o) { o.mc.threads = 4; }, "mc.threads");
  differs([](FlowOptions& o) { o.csc.rank_top_k = 2; }, "csc.rank_top_k");
  differs([](FlowOptions& o) { o.csc.max_insertions = 5; },
          "csc.max_insertions");
  differs([](FlowOptions& o) { o.mapper.library.max_literals = 3; },
          "mapper.library.max_literals");
  differs([](FlowOptions& o) { o.mapper.threads = 2; }, "mapper.threads");
  differs([](FlowOptions& o) { o.mapper.prune_pre_checks = true; },
          "mapper.prune_pre_checks");
  differs([](FlowOptions& o) { o.symbolic_check = true; }, "symbolic_check");
  differs([](FlowOptions& o) { o.lint = true; }, "lint");
  differs([](FlowOptions& o) { o.check = true; }, "check");
  differs([](FlowOptions& o) { o.check_opts.nlint.max_gc_fanin = 4; },
          "check_opts.nlint.max_gc_fanin");
  differs([](FlowOptions& o) { o.check_opts.reorder = true; },
          "check_opts.reorder");
  differs([](FlowOptions& o) { o.check_opts.reorder_rounds = 5; },
          "check_opts.reorder_rounds");
  differs([](FlowOptions& o) { o.verify_max_states = 123; },
          "verify_max_states");
  differs([](FlowOptions& o) { o.max_states = 77; }, "max_states");
  differs([](FlowOptions& o) { o.work_budget = 1000; }, "work_budget");
  differs([](FlowOptions& o) { o.on_budget = FlowOptions::OnBudget::kDegrade; },
          "on_budget");
  differs([](FlowOptions& o) { o.stop_after = Stage::kSynth; }, "stop_after");
  differs([](FlowOptions& o) { o.set_skip(Stage::kMap); }, "skip[map]");
  differs([](FlowOptions& o) { o.capture_emitted = true; },
          "capture_emitted");
  // Emit *existence* is covered (it decides whether the emit stage produces
  // that output at all)...
  differs([](FlowOptions& o) { o.emit_sg_path = "out.sg"; },
          "emit_sg existence");
}

TEST(OptionsFingerprint, ObservationalFieldsDoNot) {
  const FlowOptions base;
  const std::uint64_t fp0 = base.fingerprint();

  FlowOptions deadline;
  deadline.deadline_ms = 250;
  EXPECT_EQ(deadline.fingerprint(), fp0) << "deadline_ms is observational";

  FlowOptions guarded;
  guarded.guard = std::make_shared<RunGuard>();
  EXPECT_EQ(guarded.fingerprint(), fp0) << "external guard is observational";

  FlowOptions fmt;
  fmt.format = SpecFormat::kSg;
  EXPECT_EQ(fmt.fingerprint(), fp0) << "input format is pre-parse only";

  // ... while the emit *path string* is not (same bytes land elsewhere).
  FlowOptions path_a, path_b;
  path_a.emit_sg_path = "a.sg";
  path_b.emit_sg_path = "b.sg";
  EXPECT_EQ(path_a.fingerprint(), path_b.fingerprint())
      << "emit path strings are observational";
}

TEST(OptionsFingerprint, StableAcrossCalls) {
  FlowOptions o;
  o.csc.rank_top_k = 4;
  o.deadline_ms = 10;
  EXPECT_EQ(o.fingerprint(), o.fingerprint());
}

}  // namespace
}  // namespace sitm
