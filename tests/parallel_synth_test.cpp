// Parallel per-signal synthesis (McOptions::threads) must be bit-identical
// to the serial loop: the SG is read-only during synthesize_all, every
// signal's covers are computed independently, and the netlist is assembled
// in serial signal order regardless of the worker schedule.  Pinned across
// the Table-1 corpus and randomized SGs at 1, 2 and N threads.

#include <gtest/gtest.h>

#include "benchlib/random_stg.hpp"
#include "benchlib/suite.hpp"
#include "core/mc_cover.hpp"
#include "sg/properties.hpp"
#include "stg/g_io.hpp"
#include "util/error.hpp"

namespace sitm {
namespace {

void expect_same_synthesis(const std::vector<SignalSynthesis>& serial,
                           const std::vector<SignalSynthesis>& parallel,
                           const std::string& label) {
  ASSERT_EQ(serial.size(), parallel.size()) << label;
  for (std::size_t i = 0; i < serial.size(); ++i) {
    const auto& s = serial[i];
    const auto& p = parallel[i];
    EXPECT_EQ(s.signal, p.signal) << label;
    EXPECT_EQ(s.combinational, p.combinational) << label;
    EXPECT_EQ(s.complexity, p.complexity) << label;
    EXPECT_EQ(s.complete_complexity, p.complete_complexity) << label;
    EXPECT_TRUE(s.complete == p.complete) << label;
    EXPECT_TRUE(s.set.cover == p.set.cover) << label;
    EXPECT_TRUE(s.set.complement == p.set.complement) << label;
    EXPECT_TRUE(s.reset.cover == p.reset.cover) << label;
    EXPECT_TRUE(s.reset.complement == p.reset.complement) << label;
  }
}

void expect_parallel_identical(const StateGraph& sg,
                               const std::string& label) {
  McOptions serial_opts;
  serial_opts.threads = 1;
  std::vector<SignalSynthesis> serial_synth;
  const Netlist serial = synthesize_all(sg, serial_opts, &serial_synth);
  const std::string serial_text = serial.to_string();

  for (const int threads : {2, 4}) {
    McOptions opts;
    opts.threads = threads;
    std::vector<SignalSynthesis> par_synth;
    const Netlist parallel = synthesize_all(sg, opts, &par_synth);
    EXPECT_TRUE(parallel.same_impls(serial))
        << label << " at " << threads << " threads";
    EXPECT_EQ(parallel.to_string(), serial_text)
        << label << " at " << threads << " threads";
    EXPECT_EQ(parallel.total_literals(), serial.total_literals()) << label;
    EXPECT_EQ(parallel.num_c_elements(), serial.num_c_elements()) << label;
    expect_same_synthesis(serial_synth, par_synth,
                          label + " @" + std::to_string(threads));
  }
}

TEST(ParallelSynth, CorpusBitIdentical) {
  for (const auto& name : bench::suite_names()) {
    const StateGraph sg = bench::suite_benchmark(name).stg.to_state_graph();
    if (!check_csc(sg)) continue;  // synthesize_all requires CSC
    expect_parallel_identical(sg, name);
  }
}

TEST(ParallelSynth, RandomizedSgsBitIdentical) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const StateGraph sg = bench::make_random_stg(seed).to_state_graph();
    ASSERT_TRUE(check_csc(sg)) << "seed " << seed;
    expect_parallel_identical(sg, "random seed " + std::to_string(seed));
  }
}

TEST(ParallelSynth, HardwareConcurrencyMatchesSerial) {
  const StateGraph sg = bench::suite_benchmark("vbe5b").stg.to_state_graph();
  const std::string serial = synthesize_all(sg).to_string();
  McOptions opts;
  opts.threads = 0;  // one worker per hardware core
  EXPECT_EQ(synthesize_all(sg, opts).to_string(), serial);
}

TEST(ParallelSynth, MoreThreadsThanSignals) {
  const StateGraph sg = bench::suite_benchmark("half").stg.to_state_graph();
  McOptions opts;
  opts.threads = 64;
  EXPECT_EQ(synthesize_all(sg, opts).to_string(),
            synthesize_all(sg).to_string());
}

TEST(ParallelSynth, WorkerExceptionPropagates) {
  // A CSC-violating SG makes the minimizer throw (on/off sets intersect);
  // the pool must surface the worker's sitm::Error, not crash or hang.
  const char* spec = R"(.model twophase
.outputs a b c d
.graph
a+ b+
b+ a-
a- b-
b- c+
c+ d+
d+ c-
c- d-
d- a+
.marking { <d-,a+> }
.end
)";
  const StateGraph sg = read_g_string(spec).to_state_graph();
  ASSERT_FALSE(check_csc(sg));
  McOptions opts;
  opts.threads = 4;
  EXPECT_THROW(synthesize_all(sg, opts), Error);
}

}  // namespace
}  // namespace sitm
