// sitm lint: every rule fires on a golden bad spec, the whole Table-1
// benchmark corpus lints clean, the JSON rendering is stable, and the flow
// /serve integration rejects lint-errored specs typed (`spec`) at the
// reachability gate — before any state graph is built.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "flow/batch.hpp"
#include "flow/flow.hpp"
#include "serve/server.hpp"
#include "stg/lint.hpp"
#include "stg/load.hpp"
#include "util/json.hpp"

namespace sitm {
namespace {

LintReport lint_text(const std::string& text,
                     SpecFormat format = SpecFormat::kG) {
  return lint_spec(load_spec_string(text, format, "lint_test"));
}

/// A well-formed 4-phase handshake: the clean baseline every golden bad
/// spec below is a corruption of.
const char* kCleanSpec =
    ".model clean\n"
    ".inputs a\n"
    ".outputs b\n"
    ".graph\n"
    "a+ b+\n"
    "b+ a-\n"
    "a- b-\n"
    "b- a+\n"
    ".marking { <b-,a+> }\n"
    ".end\n";

TEST(Lint, CleanSpecHasNoDiagnostics) {
  const LintReport report = lint_text(kCleanSpec);
  EXPECT_TRUE(report.clean()) << report.to_json().dump(2);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.first_error(), "");
}

// ---- one golden bad spec per rule ----------------------------------------

TEST(Lint, AlternationOnePolaritySignalIsAnError) {
  // `b` only ever rises: it can never return to its initial value.
  const LintReport report = lint_text(
      ".model bad\n.inputs a\n.outputs b\n.graph\n"
      "a+ b+\nb+ a-\na- a+\n"
      ".marking { <a-,a+> }\n.end\n");
  EXPECT_TRUE(report.has(LintRule::kAlternation));
  EXPECT_FALSE(report.ok());
}

TEST(Lint, AlternationSamePolaritySuccessionIsAWarning) {
  // a+ -> (place) -> a+/2 chains two rising edges of `a` directly.
  const LintReport report = lint_text(
      ".model bad\n.inputs a\n.outputs b\n.graph\n"
      "a+ a+/2\na+/2 b+\nb+ a-\na- a-/2\na-/2 b-\nb- a+\n"
      ".marking { <b-,a+> }\n.end\n");
  EXPECT_TRUE(report.has(LintRule::kAlternation));
  EXPECT_TRUE(report.ok()) << "succession is a heuristic: warning only";
}

TEST(Lint, DanglingArcEmptyPresetIsAnError) {
  // `b+` has no predecessors: enabled forever from the start.
  const LintReport report = lint_text(
      ".model bad\n.inputs a\n.outputs b\n.graph\n"
      "b+ a+\na+ b-\nb- a-\na- b-/2\nb-/2 a+/2\n"
      ".marking { <a-,b-/2> }\n.end\n");
  EXPECT_TRUE(report.has(LintRule::kDanglingArc));
  EXPECT_FALSE(report.ok());
}

TEST(Lint, DuplicateArcIsAnError) {
  // Duplicates need an explicit place: the .g reader folds repeated
  // transition->transition pairs into one shared implicit place, so
  // "a+ b+ b+" is NOT a duplicate arc — "p1 b+ b+" is.
  const LintReport report = lint_text(
      ".model bad\n.inputs a\n.outputs b\n.graph\n"
      "a+ p1\np1 b+ b+\nb+ a-\na- b-\nb- a+\n"
      ".marking { <b-,a+> }\n.end\n");
  EXPECT_TRUE(report.has(LintRule::kDuplicateArc));
  EXPECT_FALSE(report.ok());
}

TEST(Lint, UnreachableTransitionIsAnError) {
  // The free+/free- cycle carries no token in the initial marking: the
  // optimistic closure never enables either edge.
  const LintReport report = lint_text(
      ".model bad\n.inputs a free\n.outputs b\n.graph\n"
      "a+ b+\nb+ a-\na- b-\nb- a+\n"
      "free+ free-\nfree- free+\n"
      ".marking { <b-,a+> }\n.end\n");
  EXPECT_TRUE(report.has(LintRule::kUnreachable));
  EXPECT_FALSE(report.ok());
}

TEST(Lint, IdleInputIsAWarning) {
  const LintReport report = lint_text(
      ".model bad\n.inputs a idle\n.outputs b\n.graph\n"
      "a+ b+\nb+ a-\na- b-\nb- a+\n"
      ".marking { <b-,a+> }\n.end\n");
  EXPECT_TRUE(report.has(LintRule::kIdleInput));
  EXPECT_TRUE(report.ok());
}

TEST(Lint, EmptyMarkingIsAnError) {
  const LintReport report = lint_text(
      ".model bad\n.inputs a\n.outputs b\n.graph\n"
      "a+ b+\nb+ a-\na- b-\nb- a+\n"
      ".marking { }\n.end\n");
  EXPECT_TRUE(report.has(LintRule::kUnsafeMarking));
  EXPECT_FALSE(report.ok());
  // The whole net is also token-free, so the closure finds every
  // transition dead: both rules should name the problem.
  EXPECT_TRUE(report.has(LintRule::kUnreachable));
}

TEST(Lint, UnconstrainedOutputIsAWarning) {
  // `b`'s only transitions are triggered by `b` itself: it free-runs.
  const LintReport report = lint_text(
      ".model bad\n.inputs a\n.outputs b\n.graph\n"
      "a+ a-\na- a+\nb+ b-\nb- b+\n"
      ".marking { <a-,a+> <b-,b+> }\n.end\n");
  EXPECT_TRUE(report.has(LintRule::kUnconstrainedOutput));
  EXPECT_TRUE(report.ok());
}

TEST(Lint, JsonRenderingCarriesEveryDiagnostic) {
  const LintReport report = lint_text(
      ".model bad\n.inputs a free\n.outputs b\n.graph\n"
      "a+ b+\nb+ a-\na- b-\nb- a+\n"
      "free+ free-\nfree- free+\n"
      ".marking { <b-,a+> }\n.end\n");
  const Json j = report.to_json();
  EXPECT_FALSE(j.find("ok")->bool_value());
  EXPECT_EQ(j.find("errors")->number(), report.errors);
  EXPECT_EQ(j.find("warnings")->number(), report.warnings);
  ASSERT_NE(j.find("diagnostics"), nullptr);
  EXPECT_EQ(j.find("diagnostics")->items().size(),
            report.diagnostics.size());
  for (const auto& d : j.find("diagnostics")->items()) {
    EXPECT_FALSE(d.find("rule")->string_value().empty());
    EXPECT_FALSE(d.find("severity")->string_value().empty());
    EXPECT_FALSE(d.find("message")->string_value().empty());
  }
}

TEST(Lint, RuleAndSeverityNamesAreStable) {
  EXPECT_STREQ(lint_rule_name(LintRule::kAlternation), "alternation");
  EXPECT_STREQ(lint_rule_name(LintRule::kUnconstrainedOutput),
               "unconstrained-output");
  EXPECT_STREQ(lint_severity_name(LintSeverity::kError), "error");
  EXPECT_STREQ(lint_severity_name(LintSeverity::kWarning), "warning");
}

// ---- the shipped corpus lints clean --------------------------------------

TEST(Lint, EntireBenchmarkCorpusLintsClean) {
  const std::vector<std::string> files =
      collect_spec_files(std::string(SITM_SOURCE_DIR) + "/data/benchmarks");
  ASSERT_FALSE(files.empty());
  for (const std::string& path : files) {
    const LintReport report = lint_spec(load_spec_file(path));
    EXPECT_TRUE(report.clean())
        << path << ":\n" << report.to_json().dump(2);
  }
}

// ---- flow / serve integration --------------------------------------------

TEST(Lint, FlowRejectsLintErrorsTypedAtTheReachabilityGate) {
  FlowOptions opts;
  opts.lint = true;
  Flow flow(opts);
  const FlowReport report = flow.run_string(
      ".model bad\n.inputs a\n.outputs b\n.graph\n"
      "a+ b+\nb+ a-\na- b-\nb- a+\n"
      ".marking { }\n.end\n");
  EXPECT_FALSE(report.ok);
  ASSERT_TRUE(report.failed_stage.has_value());
  EXPECT_EQ(*report.failed_stage, Stage::kReachability);
  EXPECT_EQ(report.failure_kind, FailureKind::kSpec);
  EXPECT_NE(report.failure.find("lint"), std::string::npos)
      << report.failure;
  EXPECT_EQ(flow.context().sg, nullptr)
      << "the lint gate must reject before any state graph is built";
}

TEST(Lint, FlowSurfacesWarningsWithoutRejecting) {
  FlowOptions opts;
  opts.lint = true;
  Flow flow(opts);
  const FlowReport report = flow.run_string(
      ".model warn\n.inputs a idle\n.outputs b\n.graph\n"
      "a+ b+\nb+ a-\na- b-\nb- a+\n"
      ".marking { <b-,a+> }\n.end\n");
  EXPECT_TRUE(report.ok) << report.failure;
  const StageReport& sr = report.stage(Stage::kReachability);
  bool lint_warning = false;
  for (const std::string& w : sr.warnings)
    if (w.find("lint[idle-input]") != std::string::npos) lint_warning = true;
  EXPECT_TRUE(lint_warning);
}

TEST(Lint, LintOffLetsTheSameSpecThroughTheGate) {
  FlowOptions opts;
  opts.lint = false;
  Flow flow(opts);
  const FlowReport report = flow.run_string(
      ".model bad\n.inputs a\n.outputs b\n.graph\n"
      "a+ b+\nb+ a-\na- b-\nb- a+\n"
      ".marking { }\n.end\n");
  // Without the gate the empty marking still fails — but deeper in, with
  // whatever diagnosis the reachability stage produces.  The lint flag only
  // changes *where and how typed* the rejection happens.
  EXPECT_FALSE(report.ok);
  EXPECT_EQ(report.failure.find("lint"), std::string::npos);
}

TEST(Lint, ServeRejectsLintErrorsBeforeStateGraphConstruction) {
  serve::ServeOptions so;
  so.flow.lint = true;
  serve::ServeEngine engine(so);
  Json j = Json::object();
  j.set("id", Json("bad"));
  j.set("spec", Json(".model bad\n.inputs a\n.outputs b\n.graph\n"
                     "a+ b+\nb+ a-\na- b-\nb- a+\n"
                     ".marking { }\n.end\n"));
  const Json resp = Json::parse(engine.handle_line(j.dump(0)));
  EXPECT_EQ(resp.find("status")->string_value(), "failed");
  const Json* report = resp.find("result")->find("report");
  ASSERT_NE(report, nullptr);
  EXPECT_EQ(report->find("failure_kind")->string_value(), "spec");
  EXPECT_NE(report->find("failure")->string_value().find("lint"),
            std::string::npos);
  // The reachability stage itself must not have run its body to completion:
  // no states were ever enumerated.
  const Json* stages = report->find("stages");
  ASSERT_NE(stages, nullptr);
}

TEST(Lint, ServeLintOptionIsPerRequest) {
  serve::ServeOptions so;
  so.flow.lint = true;
  serve::ServeEngine engine(so);
  Json j = Json::object();
  j.set("id", Json("nolint"));
  j.set("spec", Json(".model bad\n.inputs a\n.outputs b\n.graph\n"
                     "a+ b+\nb+ a-\na- b-\nb- a+\n"
                     ".marking { }\n.end\n"));
  Json opts = Json::object();
  opts.set("lint", Json(false));
  j.set("options", std::move(opts));
  const Json resp = Json::parse(engine.handle_line(j.dump(0)));
  EXPECT_EQ(resp.find("status")->string_value(), "failed");
  EXPECT_EQ(resp.find("result")->find("report")->find("failure")
                ->string_value().find("lint"),
            std::string::npos)
      << "per-request lint=false must bypass the gate";
}

}  // namespace
}  // namespace sitm
