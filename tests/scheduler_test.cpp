// The work-stealing priority scheduler (util/scheduler.hpp), the
// parallel_for caller-participation contract, and the batch driver's
// bit-identity across thread counts now that it runs on the scheduler.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "flow/batch.hpp"
#include "util/parallel.hpp"
#include "util/scheduler.hpp"

namespace sitm {
namespace {

TEST(Scheduler, RunsEveryJobOnce) {
  WorkStealingScheduler sched(4);
  std::vector<std::atomic<int>> ran(100);
  for (std::size_t i = 0; i < ran.size(); ++i)
    sched.submit([&ran, i] { ran[i].fetch_add(1); });
  sched.wait_idle();
  for (const auto& r : ran) EXPECT_EQ(r.load(), 1);
  EXPECT_EQ(sched.executed(), ran.size());
}

TEST(Scheduler, PriorityOrdersExecutionStart) {
  // threads = 1, caller-participates: no OS thread is spawned, so nothing
  // runs until wait_idle() drains the deque on this thread — the pop order
  // is fully deterministic: highest priority first, FIFO within a priority.
  WorkStealingScheduler sched(1);
  std::vector<int> order;
  sched.submit([&] { order.push_back(0); }, /*priority=*/0);
  sched.submit([&] { order.push_back(1); }, /*priority=*/5);
  sched.submit([&] { order.push_back(2); }, /*priority=*/1);
  sched.submit([&] { order.push_back(3); }, /*priority=*/5);
  sched.wait_idle();
  EXPECT_EQ(order, (std::vector<int>{1, 3, 2, 0}));
}

TEST(Scheduler, StealsFromABlockedWorkersDeque) {
  WorkStealingScheduler sched(2, /*spawn_all=*/true);
  std::atomic<bool> started{false}, release{false};
  sched.submit([&] {
    started.store(true);
    while (!release.load()) std::this_thread::yield();
  });
  while (!started.load()) std::this_thread::yield();

  // With one worker parked, the other must drain both deques; submissions
  // round-robin, so some of these jobs sit on the parked worker's deque and
  // can only complete via a steal.
  std::atomic<int> done{0};
  for (int i = 0; i < 8; ++i)
    sched.submit([&] { done.fetch_add(1); });
  while (done.load() < 8) std::this_thread::yield();
  EXPECT_GE(sched.steals(), 1u);

  release.store(true);
  sched.shutdown();
  EXPECT_EQ(sched.executed(), 9u);
}

TEST(Scheduler, ParallelForJobsCoversAllIndices) {
  std::vector<std::atomic<int>> ran(1000);
  std::uint64_t steals = ~0ull;
  parallel_for_jobs(ran.size(), 4, [&](std::size_t i) { ran[i].fetch_add(1); },
                    &steals);
  for (const auto& r : ran) EXPECT_EQ(r.load(), 1);
  EXPECT_NE(steals, ~0ull);  // counter was written
}

TEST(Scheduler, ParallelForJobsRethrowsFirstException) {
  EXPECT_THROW(
      parallel_for_jobs(64, 4,
                        [&](std::size_t i) {
                          if (i == 3) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
}

TEST(ParallelFor, CallerThreadParticipates) {
  // Two jobs that each spin until both have started: this can only finish
  // promptly when two workers run concurrently.  parallel_for spawns
  // threads-1 OS threads and runs the worker loop on the calling thread,
  // so with threads = 2 the caller itself must pick up one of the jobs.
  std::atomic<int> arrived{0};
  std::atomic<bool> timed_out{false};
  parallel_for(2, 2, [&](std::size_t) {
    arrived.fetch_add(1);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (arrived.load() < 2) {
      if (std::chrono::steady_clock::now() > deadline) {
        timed_out.store(true);
        return;
      }
      std::this_thread::yield();
    }
  });
  EXPECT_FALSE(timed_out.load());
  EXPECT_EQ(arrived.load(), 2);
}

// ---- batch bit-identity on the scheduler --------------------------------

/// Serialize `j` with the timing/scheduling observables stripped — the only
/// fields allowed to differ across thread counts.
std::string normalized(const Json& j) {
  switch (j.kind()) {
    case Json::Kind::kObject: {
      std::string out = "{";
      for (const auto& [k, v] : j.members()) {
        if (k == "wall_ms" || k == "total_ms" || k == "workers" ||
            k == "steals")
          continue;
        out += '"' + k + "\":" + normalized(v) + ',';
      }
      out += '}';
      return out;
    }
    case Json::Kind::kArray: {
      std::string out = "[";
      for (const auto& v : j.items()) out += normalized(v) + ',';
      out += ']';
      return out;
    }
    default: return j.dump(0);
  }
}

TEST(Scheduler, BatchResultsBitIdenticalAcrossThreadCounts) {
  const std::vector<std::string> names = {"chu133", "converta", "dff",
                                          "half"};
  BatchOptions opts;
  opts.flow.mapper.library.max_literals = 2;

  opts.threads = 1;
  const std::string serial = normalized(run_batch_suite(names, opts).to_json());
  for (const int threads : {2, 4, 0}) {
    opts.threads = threads;
    EXPECT_EQ(normalized(run_batch_suite(names, opts).to_json()), serial)
        << "threads=" << threads;
  }
}

}  // namespace
}  // namespace sitm
