// Unit tests for factored forms (quick_factor).

#include <gtest/gtest.h>

#include "mlogic/factor.hpp"
#include "util/rng.hpp"

namespace sitm {
namespace {

const std::vector<std::string> kNames = {"a", "b", "c", "d", "e", "f", "g"};

Cube cube(std::initializer_list<std::pair<int, bool>> lits) {
  Cube c = Cube::one();
  for (auto [v, pol] : lits) c = c.with_literal(v, pol);
  return c;
}

TEST(Factor, Constants) {
  EXPECT_EQ(quick_factor(Cover::zero(3))->to_string(kNames), "0");
  EXPECT_EQ(quick_factor(Cover::one(3))->to_string(kNames), "1");
  EXPECT_EQ(factored_literals(Cover::zero(3)), 0);
}

TEST(Factor, SingleCube) {
  Cover f(3, {cube({{0, true}, {2, false}})});
  const auto form = quick_factor(f);
  EXPECT_EQ(form->num_literals(), 2);
  EXPECT_EQ(form->to_string(kNames), "a c'");
}

TEST(Factor, ClassicFourLiteralExample) {
  // ab + ac + db + dc = (a + d)(b + c): 8 SOP literals, 4 factored.
  Cover f(4);
  f.add(cube({{0, true}, {1, true}}));
  f.add(cube({{0, true}, {2, true}}));
  f.add(cube({{3, true}, {1, true}}));
  f.add(cube({{3, true}, {2, true}}));
  EXPECT_EQ(f.num_literals(), 8);
  EXPECT_EQ(factored_literals(f), 4);
}

TEST(Factor, CommonCubeExtraction) {
  // abc + abd = ab(c + d)
  Cover f(4);
  f.add(cube({{0, true}, {1, true}, {2, true}}));
  f.add(cube({{0, true}, {1, true}, {3, true}}));
  EXPECT_EQ(factored_literals(f), 4);
  EXPECT_EQ(quick_factor(f)->to_string(kNames), "a b (c + d)");
}

TEST(Factor, NeverWorseThanSop) {
  Rng rng(99);
  for (int round = 0; round < 60; ++round) {
    const int n = 5;
    Cover f(n);
    const int terms = 1 + static_cast<int>(rng.below(5));
    for (int t = 0; t < terms; ++t) {
      Cube c = Cube::one();
      for (int v = 0; v < n; ++v) {
        const auto r = rng.below(3);
        if (r == 0) c = c.with_literal(v, false);
        if (r == 1) c = c.with_literal(v, true);
      }
      f.add(c);
    }
    f.make_minimal_wrt_containment();
    EXPECT_LE(factored_literals(f), f.num_literals());
  }
}

TEST(Factor, SemanticallyEquivalent) {
  Rng rng(123);
  for (int round = 0; round < 60; ++round) {
    const int n = 6;
    Cover f(n);
    const int terms = 1 + static_cast<int>(rng.below(5));
    for (int t = 0; t < terms; ++t) {
      Cube c = Cube::one();
      for (int v = 0; v < n; ++v) {
        const auto r = rng.below(3);
        if (r == 0) c = c.with_literal(v, false);
        if (r == 1) c = c.with_literal(v, true);
      }
      f.add(c);
    }
    const auto form = quick_factor(f);
    for (std::uint64_t code = 0; code < (1u << n); ++code)
      ASSERT_EQ(form->eval(code), f.eval(code)) << "round " << round;
  }
}

TEST(Factor, DeepKernelStructure) {
  // (a+b+c)(d+e)f + g factors back to <= 7 literals.
  Cover f(7);
  for (int x : {0, 1, 2})
    for (int y : {3, 4})
      f.add(cube({{x, true}, {y, true}, {5, true}}));
  f.add(cube({{6, true}}));
  EXPECT_EQ(f.num_literals(), 19);
  EXPECT_LE(factored_literals(f), 7);
  // Still equivalent.
  const auto form = quick_factor(f);
  for (std::uint64_t code = 0; code < (1u << 7); ++code)
    ASSERT_EQ(form->eval(code), f.eval(code));
}

}  // namespace
}  // namespace sitm
