// Tests for symbolic SG encodings: code sets, symbolic CSC/USC, and
// symbolic cover validation — each cross-checked against the explicit
// algorithms.

#include <gtest/gtest.h>

#include "benchlib/generators.hpp"
#include "benchlib/suite.hpp"
#include "core/mc_cover.hpp"
#include "sg/encode.hpp"
#include "util/error.hpp"
#include "sg/properties.hpp"
#include "sg/regions.hpp"
#include "stg/stg.hpp"

namespace sitm {
namespace {

TEST(Encode, CodesRoundTrip) {
  const StateGraph sg = bench::make_hazard().to_state_graph();
  BddManager mgr(sg.num_signals());
  const DynBitset all = sg.reachable();
  const BddRef codes = encode_codes(mgr, sg, all);
  // Every reachable code satisfies the BDD; a known-unreachable one doesn't.
  all.for_each([&](std::size_t s) {
    EXPECT_TRUE(mgr.eval(codes, sg.code(static_cast<StateId>(s))));
  });
  // hazard has 11 states over 4 signals: some code is unreachable.
  int unreachable_checked = 0;
  for (StateCode c = 0; c < 16; ++c) {
    bool reachable_code = false;
    all.for_each([&](std::size_t s) {
      if (sg.code(static_cast<StateId>(s)) == c) reachable_code = true;
    });
    if (!reachable_code) {
      EXPECT_FALSE(mgr.eval(codes, c));
      ++unreachable_checked;
    }
  }
  EXPECT_GT(unreachable_checked, 0);
}

TEST(Encode, SymbolicCscAgreesWithExplicit) {
  for (auto& entry : bench::table1_suite()) {
    const StateGraph sg = entry.stg.to_state_graph();
    BddManager mgr(sg.num_signals());
    EXPECT_EQ(symbolic_csc(mgr, sg), static_cast<bool>(check_csc(sg)))
        << entry.name;
  }
}

TEST(Encode, SymbolicCscDetectsConflict) {
  // The two-phase ring violates CSC (see csc_test).
  Stg stg;
  const int a = stg.add_signal("a", SignalKind::kOutput);
  const int b = stg.add_signal("b", SignalKind::kOutput);
  const int c = stg.add_signal("c", SignalKind::kOutput);
  const int d = stg.add_signal("d", SignalKind::kOutput);
  const TransId ring[] = {
      stg.add_transition(a, true),  stg.add_transition(b, true),
      stg.add_transition(a, false), stg.add_transition(b, false),
      stg.add_transition(c, true),  stg.add_transition(d, true),
      stg.add_transition(c, false), stg.add_transition(d, false),
  };
  for (int i = 0; i < 7; ++i) stg.connect_tt(ring[i], ring[i + 1]);
  stg.mark_initial(stg.connect_tt(ring[7], ring[0]));
  const StateGraph sg = stg.to_state_graph();
  BddManager mgr(sg.num_signals());
  EXPECT_FALSE(symbolic_csc(mgr, sg));
  EXPECT_FALSE(check_csc(sg));
}

TEST(Encode, SymbolicUscAgreesWithExplicit) {
  for (const Stg& stg : {bench::make_hazard(), bench::make_parallelizer(3),
                         bench::make_combo(2, 2)}) {
    const StateGraph sg = stg.to_state_graph();
    BddManager mgr(sg.num_signals());
    EXPECT_EQ(symbolic_usc(mgr, sg), static_cast<bool>(check_usc(sg)));
  }
}

TEST(Encode, SymbolicUscWithSpareVariables) {
  const StateGraph sg = bench::make_hazard().to_state_graph();
  BddManager mgr(sg.num_signals() + 3);  // spare variables must not matter
  EXPECT_EQ(symbolic_usc(mgr, sg), static_cast<bool>(check_usc(sg)));
}

TEST(Encode, SymbolicCoverValidation) {
  const StateGraph sg = bench::make_parallelizer(3).to_state_graph();
  BddManager mgr(sg.num_signals());
  for (int sig : sg.noninput_signals()) {
    const SignalSynthesis synth = synthesize_signal(sg, sig);
    // The MC cover is 1 on its on-set and 0 on its off-set, symbolically.
    EXPECT_TRUE(symbolic_cover_ok(mgr, sg, synth.set.cover, synth.set.on,
                                  synth.set.off));
    EXPECT_TRUE(symbolic_cover_ok(mgr, sg, synth.reset.cover, synth.reset.on,
                                  synth.reset.off));
    // Swapping on/off must fail for non-trivial covers.
    if (synth.set.on.any() && synth.set.off.any()) {
      EXPECT_FALSE(symbolic_cover_ok(mgr, sg, synth.set.cover, synth.set.off,
                                     synth.set.on));
    }
  }
}

TEST(Encode, TooSmallManagerThrows) {
  const StateGraph sg = bench::make_hazard().to_state_graph();
  BddManager mgr(2);
  EXPECT_THROW(encode_codes(mgr, sg, sg.reachable()), Error);
}

}  // namespace
}  // namespace sitm
