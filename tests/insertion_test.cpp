// Unit tests for SIP-set computation and event insertion (paper Section 3.2),
// including the hazard.g legality results of Figure 1.

#include <gtest/gtest.h>

#include <set>

#include "benchlib/generators.hpp"
#include "core/insertion.hpp"
#include "sg/properties.hpp"
#include "stg/stg.hpp"

namespace sitm {
namespace {

Cover cube_cover(int num_vars,
                 std::initializer_list<std::pair<int, bool>> lits) {
  Cube c = Cube::one();
  for (auto [v, pol] : lits) c = c.with_literal(v, pol);
  return Cover(num_vars, {c});
}

class HazardInsertion : public ::testing::Test {
 protected:
  void SetUp() override {
    sg = bench::make_hazard().to_state_graph();
    a = sg.find_signal("a");
    c = sg.find_signal("c");
    d = sg.find_signal("d");
    x = sg.find_signal("x");
    ASSERT_TRUE(check_implementability(sg));
  }
  StateGraph sg;
  int a = -1, c = -1, d = -1, x = -1;
};

TEST_F(HazardInsertion, DivisorAdIsIllegal) {
  // Figure 1b: decomposing Sx = a'cd by f = a'd is illegal (the insertion
  // set intersects a state diamond illegally / delays input events).
  const Cover f = cube_cover(sg.num_signals(), {{a, false}, {d, true}});
  InsertionFailure why;
  const auto plan = plan_insertion(sg, f, &why);
  EXPECT_FALSE(plan.has_value());
  EXPECT_FALSE(why.why.empty());
}

TEST_F(HazardInsertion, DivisorAcIsLegal) {
  const Cover f = cube_cover(sg.num_signals(), {{a, false}, {c, true}});
  const auto plan = plan_insertion(sg, f);
  ASSERT_TRUE(plan.has_value());
  const StateGraph next = insert_signal(sg, *plan, "s");
  EXPECT_TRUE(verify_insertion(sg, next));
}

TEST_F(HazardInsertion, DivisorDcIsLegal) {
  const Cover f = cube_cover(sg.num_signals(), {{d, true}, {c, true}});
  const auto plan = plan_insertion(sg, f);
  ASSERT_TRUE(plan.has_value());
  const StateGraph next = insert_signal(sg, *plan, "s");
  EXPECT_TRUE(verify_insertion(sg, next));
}

TEST_F(HazardInsertion, InsertedSignalBehavesAsDelayedDivisor) {
  const Cover f = cube_cover(sg.num_signals(), {{d, true}, {c, true}});
  const auto plan = plan_insertion(sg, f);
  ASSERT_TRUE(plan.has_value());
  const StateGraph next = insert_signal(sg, *plan, "s");
  const int s = next.find_signal("s");
  ASSERT_GE(s, 0);
  EXPECT_EQ(next.signal(s).kind, SignalKind::kInternal);
  // In every state where the new signal is stable, its value equals f
  // (x is a delayed copy of f; they differ only inside its ERs).
  for (StateId q = 0; q < static_cast<StateId>(next.num_states()); ++q) {
    const bool stable = !next.enabled(q, Event{s, true}) &&
                        !next.enabled(q, Event{s, false});
    if (!stable) continue;
    EXPECT_EQ(next.value(q, s), f.eval(next.code(q) & ((StateCode{1} << s) - 1)))
        << "state " << next.code_string(q);
  }
}

TEST_F(HazardInsertion, ErRiseContainsInputBorder) {
  const Cover f = cube_cover(sg.num_signals(), {{a, false}, {c, true}});
  const auto plan = plan_insertion(sg, f);
  ASSERT_TRUE(plan.has_value());
  // IB(f+): every state where f flips 0->1 must carry the pending rise.
  for (StateId u = 0; u < static_cast<StateId>(sg.num_states()); ++u) {
    for (const auto& edge : sg.succs(u)) {
      if (!plan->s1.test(u) && plan->s1.test(edge.target)) {
        EXPECT_TRUE(plan->er_rise.test(edge.target));
      }
      if (plan->s1.test(u) && !plan->s1.test(edge.target)) {
        EXPECT_TRUE(plan->er_fall.test(edge.target));
      }
    }
  }
}

TEST(Insertion, ConstantDivisorRejected) {
  const StateGraph sg = bench::make_hazard().to_state_graph();
  InsertionFailure why;
  EXPECT_FALSE(plan_insertion(sg, Cover::one(sg.num_signals()), &why));
  EXPECT_FALSE(plan_insertion(sg, Cover::zero(sg.num_signals()), &why));
}

TEST(Insertion, StateCountGrowsByRegions) {
  const StateGraph sg = bench::make_parallelizer(3).to_state_graph();
  const int g0 = sg.find_signal("g0");
  const int g1 = sg.find_signal("g1");
  const Cover f =
      cube_cover(sg.num_signals(), {{g0, true}, {g1, true}});
  const auto plan = plan_insertion(sg, f);
  ASSERT_TRUE(plan.has_value());
  const StateGraph next = insert_signal(sg, *plan, "y");
  EXPECT_EQ(next.num_states(),
            sg.num_states() + plan->er_rise.count() + plan->er_fall.count());
  EXPECT_TRUE(verify_insertion(sg, next));
}

TEST(Insertion, InsertionPreservesProjection) {
  // Hiding the new signal must give back exactly the original behaviour:
  // every original arc is simulated and no new (original-signal) arcs exist.
  const StateGraph sg = bench::make_seq_chain(2).to_state_graph();
  const int o0 = sg.find_signal("o0");
  const int o1 = sg.find_signal("o1");
  const Cover f = cube_cover(sg.num_signals(), {{o0, true}, {o1, true}});
  const auto plan = plan_insertion(sg, f);
  ASSERT_TRUE(plan.has_value());
  const StateGraph next = insert_signal(sg, *plan, "y");
  ASSERT_TRUE(verify_insertion(sg, next));

  const StateCode mask = (StateCode{1} << sg.num_signals()) - 1;
  // Count arcs per (projected code, event) in both graphs; sets must match.
  std::set<std::pair<StateCode, std::string>> before, after;
  for (StateId s = 0; s < static_cast<StateId>(sg.num_states()); ++s)
    for (const auto& e : sg.succs(s))
      before.emplace(sg.code(s), sg.event_string(e.event));
  for (StateId s = 0; s < static_cast<StateId>(next.num_states()); ++s)
    for (const auto& e : next.succs(s))
      if (e.event.signal < sg.num_signals())
        after.emplace(next.code(s) & mask, next.event_string(e.event));
  EXPECT_EQ(before, after);
}

TEST(Insertion, VerifyCatchesBrokenGraph) {
  // A deliberately broken "after" graph (persistency violation) is caught.
  StateGraph before;
  const int p = before.add_signal("p", SignalKind::kOutput);
  const int q = before.add_signal("q", SignalKind::kOutput);
  const StateId s00 = before.add_state(0b00);
  const StateId s01 = before.add_state(0b01);
  const StateId s11 = before.add_state(0b11);
  const StateId s10 = before.add_state(0b10);
  before.add_arc(s00, Event{p, true}, s01);
  before.add_arc(s01, Event{q, true}, s11);
  before.add_arc(s11, Event{p, false}, s10);
  before.add_arc(s10, Event{q, false}, s00);
  before.set_initial(s00);

  StateGraph after = before;  // same signals; break persistency with a choice
  // add a competing arc from s00 that disables p+ (output choice).
  // q+ from s00 leads to s10 where p+ is not enabled.
  after.add_arc(s00, Event{q, true}, s10);
  EXPECT_FALSE(verify_insertion(before, after));
}

TEST(StateLatchInsertion, InitialValueForcedToOneIsResolved) {
  // The initial state sits between the latch's set and reset regions, so
  // the cycle structure forces its initial value to 1.  The historical
  // planner only tried a provisional 0 and rejected the candidate as
  // "ambiguous"; it must retry with 1 and produce the plan.
  StateGraph sg;
  const int a = sg.add_signal("a", SignalKind::kOutput);
  const int b = sg.add_signal("b", SignalKind::kOutput);
  const StateId s00 = sg.add_state(0b00);
  const StateId s10 = sg.add_state(0b01);  // a=1
  const StateId s11 = sg.add_state(0b11);
  const StateId s01 = sg.add_state(0b10);  // b=1
  sg.add_arc(s00, Event{a, true}, s10);
  sg.add_arc(s10, Event{b, true}, s11);
  sg.add_arc(s11, Event{a, false}, s01);
  sg.add_arc(s01, Event{b, false}, s00);
  sg.set_initial(s11);

  DynBitset set_states = sg.empty_set();    // SR(a+)
  set_states.set(s10);
  DynBitset reset_states = sg.empty_set();  // SR(a-)
  reset_states.set(s01);

  InsertionFailure why;
  const auto plan = plan_state_latch_insertion(sg, set_states, reset_states,
                                               &why);
  ASSERT_TRUE(plan.has_value()) << why.why;
  EXPECT_TRUE(plan->initial_value);
  EXPECT_TRUE(plan->s1.test(s10));
  EXPECT_TRUE(plan->s1.test(s11));
  EXPECT_FALSE(plan->s1.test(s00));
  EXPECT_FALSE(plan->s1.test(s01));
  EXPECT_TRUE(plan->er_rise.test(s10));
  EXPECT_TRUE(plan->er_fall.test(s01));
}

TEST(StateLatchInsertion, TrulyAmbiguousValueStillRejected) {
  // Two forced states meet in one join: no initial value makes the
  // propagation consistent, so the retry must not mask real ambiguity.
  StateGraph sg;
  const int a = sg.add_signal("a", SignalKind::kOutput);
  const int b = sg.add_signal("b", SignalKind::kOutput);
  const StateId s00 = sg.add_state(0b00);
  const StateId sa = sg.add_state(0b01);
  const StateId sb = sg.add_state(0b10);
  const StateId s11 = sg.add_state(0b11);
  sg.add_arc(s00, Event{a, true}, sa);
  sg.add_arc(s00, Event{b, true}, sb);
  sg.add_arc(sa, Event{b, true}, s11);
  sg.add_arc(sb, Event{a, true}, s11);
  sg.set_initial(s00);

  DynBitset set_states = sg.empty_set();
  set_states.set(sa);
  DynBitset reset_states = sg.empty_set();
  reset_states.set(sb);

  InsertionFailure why;
  EXPECT_FALSE(
      plan_state_latch_insertion(sg, set_states, reset_states, &why));
  EXPECT_EQ(why.why, "latch value ambiguous (path-dependent)");
}

}  // namespace
}  // namespace sitm
