// Fuzz regression + randomized end-to-end smoke.
//
// Part 1 — deterministic corpus replay: every input in fuzz/corpus/ (seed
// specs plus the triggering input of each fixed fuzzing finding) is pushed
// through the shared fuzz entry (fuzz/fuzz_parse_impl.hpp) on every tier-1
// run.  A finding fixed once stays fixed without a fuzzer in the loop.
//
// Part 2 — randomized pipeline smoke: random specifications through the
// complete flow (reachability -> synthesis -> mapping -> gate-level
// verification -> observational equivalence), across seeds and library
// sizes.

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "../fuzz/fuzz_parse_impl.hpp"
#include "benchlib/random_stg.hpp"
#include "core/mapper.hpp"
#include "netlist/si_verify.hpp"
#include "netlist/tech_decomp.hpp"
#include "sg/observe.hpp"
#include "sg/properties.hpp"
#include "stg/stg.hpp"

namespace sitm {
namespace {

// ---- Part 1: fuzz/corpus regression replay -------------------------------

std::vector<std::string> corpus_files() {
  std::vector<std::string> files;
  const std::filesystem::path dir =
      std::filesystem::path(SITM_SOURCE_DIR) / "fuzz" / "corpus";
  for (const auto& entry : std::filesystem::directory_iterator(dir))
    if (entry.is_regular_file()) files.push_back(entry.path().string());
  std::sort(files.begin(), files.end());
  return files;
}

class FuzzCorpus : public ::testing::TestWithParam<std::string> {};

TEST_P(FuzzCorpus, Replays) {
  std::ifstream in(GetParam(), std::ios::binary);
  ASSERT_TRUE(in.is_open()) << GetParam();
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string bytes = ss.str();
  // The assertion is "no escape": fuzz_one must contain every input in the
  // corpus — typed rejection or clean acceptance, never a crash/UB/throw
  // of anything outside the sitm::Error taxonomy.
  EXPECT_EQ(fuzz::fuzz_one(reinterpret_cast<const std::uint8_t*>(
                               bytes.data()),
                           bytes.size()),
            0);
}

INSTANTIATE_TEST_SUITE_P(Corpus, FuzzCorpus,
                         ::testing::ValuesIn(corpus_files()),
                         [](const ::testing::TestParamInfo<std::string>& i) {
                           std::string name =
                               std::filesystem::path(i.param).filename();
                           for (char& c : name)
                             if (!std::isalnum(static_cast<unsigned char>(c)))
                               c = '_';
                           return name;
                         });

// ---- Part 2: randomized full-pipeline smoke ------------------------------

struct FuzzCase {
  std::uint64_t seed;
  int library;
};

class FuzzFlow : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(FuzzFlow, FullPipeline) {
  const auto [seed, library] = GetParam();
  bench::RandomStgOptions gen;
  gen.min_signals = 5;
  gen.max_signals = 9;
  const Stg stg = bench::make_random_stg(seed, gen);
  StateGraph sg = stg.to_state_graph();
  sg.prune_unreachable();
  ASSERT_TRUE(check_implementability(sg));

  MapperOptions opts;
  opts.library.max_literals = library;
  const MapResult result = technology_map(sg, opts);
  ASSERT_TRUE(result.implementable)
      << "seed " << seed << " lib " << library << ": " << result.failure;

  // Library constraint honoured.
  for (const auto& synth : result.syntheses)
    EXPECT_LE(synth.complexity, library) << "seed " << seed;

  // Gate-level speed independence.
  const Netlist netlist = result.build_netlist();
  const SiVerifyResult verify = verify_speed_independence(netlist);
  EXPECT_TRUE(verify.ok) << "seed " << seed << ": " << verify.why;

  // Observable behaviour unchanged.
  const auto equivalent = observationally_equivalent(sg, *result.sg);
  EXPECT_TRUE(equivalent.equivalent) << "seed " << seed << ": "
                                     << equivalent.why;

  // The cost tuple decreased monotonically through the steps.
  for (std::size_t i = 1; i < result.steps.size(); ++i)
    EXPECT_TRUE(result.steps[i].before == result.steps[i - 1].after ||
                result.steps[i].before < result.steps[i - 1].after)
        << "seed " << seed;
}

std::vector<FuzzCase> fuzz_cases() {
  std::vector<FuzzCase> cases;
  for (std::uint64_t seed = 1; seed <= 10; ++seed)
    cases.push_back(FuzzCase{seed, 2});
  for (std::uint64_t seed = 11; seed <= 16; ++seed)
    cases.push_back(FuzzCase{seed, 3});
  for (std::uint64_t seed = 17; seed <= 20; ++seed)
    cases.push_back(FuzzCase{seed, 4});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzFlow, ::testing::ValuesIn(fuzz_cases()),
                         [](const ::testing::TestParamInfo<FuzzCase>& info) {
                           return "seed" + std::to_string(info.param.seed) +
                                  "_lib" + std::to_string(info.param.library);
                         });

}  // namespace
}  // namespace sitm
