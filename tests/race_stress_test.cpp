// Concurrency stress for the components that share mutable state across
// threads: the work-stealing scheduler (submit / steal / wait_idle /
// shutdown), the sharded FlowCache (get / insert / evict / clear under
// contention), the SlabPool under the shard-lock discipline with blocks
// crossing threads, the unix-socket serve loop (connect / request /
// shutdown races), and the batch watchdog racing item completion.
//
// These tests assert functional invariants (counts, payload integrity,
// response well-formedness), but their real assertion is the *absence of
// sanitizer reports*: the tsan preset (CMakePresets.json) runs this file
// under -fsanitize=thread in CI, and any data race is a hard failure.
// Iteration counts are sized so the whole file stays in CI budget at
// TSan's ~10x slowdown on a small machine.

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "benchlib/suite.hpp"
#include "flow/batch.hpp"
#include "serve/arena.hpp"
#include "serve/flow_cache.hpp"
#include "serve/server.hpp"
#include "stg/g_io.hpp"
#include "util/json.hpp"
#include "util/scheduler.hpp"

namespace sitm {
namespace {

constexpr int kThreads = 4;

// ---- WorkStealingScheduler ----------------------------------------------

TEST(RaceStress, SchedulerSubmitStealShutdown) {
  constexpr int kProducers = 3;
  constexpr int kJobsPerProducer = 400;
  std::atomic<int> executed{0};
  std::vector<std::atomic<int>> slots(kProducers * kJobsPerProducer);

  auto sched =
      std::make_unique<WorkStealingScheduler>(kThreads, /*spawn_all=*/true);
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kJobsPerProducer; ++i) {
        const int slot = p * kJobsPerProducer + i;
        sched->submit(
            [&, slot] {
              slots[static_cast<std::size_t>(slot)].fetch_add(
                  1, std::memory_order_relaxed);
              executed.fetch_add(1, std::memory_order_relaxed);
            },
            /*priority=*/i % 5);
      }
    });
  }
  for (auto& t : producers) t.join();
  // Destroying the scheduler shuts down and drains: every job must have run
  // exactly once, whether it ran on a worker or on the draining thread.
  sched.reset();
  EXPECT_EQ(executed.load(), kProducers * kJobsPerProducer);
  for (auto& s : slots) EXPECT_EQ(s.load(), 1);
}

TEST(RaceStress, SchedulerShutdownRacesLateSubmitters) {
  // Producers keep submitting while the main thread calls shutdown():
  // every accepted job must still run exactly once (on a worker before the
  // drain, during the drain, or on the destructor's caller-side sweep).
  for (int round = 0; round < 8; ++round) {
    std::atomic<int> executed{0};
    std::atomic<int> submitted{0};
    auto sched =
        std::make_unique<WorkStealingScheduler>(kThreads, /*spawn_all=*/true);
    std::vector<std::thread> producers;
    for (int p = 0; p < 2; ++p) {
      producers.emplace_back([&] {
        // Bounded: shutdown() drains queued jobs, so an unbounded producer
        // could outpace the drain and livelock the test.
        for (int i = 0; i < 200; ++i) {
          sched->submit(
              [&] { executed.fetch_add(1, std::memory_order_relaxed); });
          submitted.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    while (submitted.load(std::memory_order_relaxed) < 50)
      std::this_thread::yield();
    sched->shutdown();  // races the producers' submit() calls
    for (auto& t : producers) t.join();
    sched.reset();  // drains anything submitted after shutdown() returned
    EXPECT_EQ(executed.load(), submitted.load());
  }
}

TEST(RaceStress, SchedulerWaitIdleVsCrossThreadSubmit) {
  // Caller-participates mode with submissions arriving from other threads
  // while worker 0 (this thread) is inside wait_idle().
  constexpr int kJobs = 600;
  WorkStealingScheduler sched(kThreads);
  std::atomic<int> executed{0};
  std::thread producer([&] {
    for (int i = 0; i < kJobs; ++i)
      sched.submit([&] { executed.fetch_add(1, std::memory_order_relaxed); },
                   i % 3);
  });
  producer.join();
  sched.wait_idle();
  EXPECT_EQ(executed.load(), kJobs);
  EXPECT_EQ(sched.executed(), static_cast<std::uint64_t>(kJobs));
}

// ---- FlowCache -----------------------------------------------------------

serve::CacheKey stress_key(std::uint64_t n) {
  return serve::CacheKey{SpecHash{n * 0x9e3779b97f4a7c15ull, ~n}, n % 3};
}

/// Payload is a pure function of the key, so the cache's first-insert-wins
/// contract means ANY hit must return exactly these bytes.
std::string stress_payload(std::uint64_t n) {
  const std::size_t len = 100 + (n * 131) % 4000;
  return std::string(len, static_cast<char>('a' + n % 26));
}

TEST(RaceStress, FlowCacheConcurrentGetInsertEvict) {
  // Budget small enough that the working set does not fit: lookups, inserts
  // and LRU evictions race across shards the whole time.
  serve::FlowCache cache(std::size_t{96} << 10, /*shards=*/4);
  constexpr std::uint64_t kKeys = 64;
  constexpr int kIters = 500;
  std::atomic<int> bad_payloads{0};

  std::vector<std::thread> workers;
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&, w] {
      std::string out;
      for (int i = 0; i < kIters; ++i) {
        const std::uint64_t n =
            (static_cast<std::uint64_t>(w) * 7919 + i) % kKeys;
        if (cache.lookup(stress_key(n), &out)) {
          if (out != stress_payload(n))
            bad_payloads.fetch_add(1, std::memory_order_relaxed);
        } else {
          cache.insert(stress_key(n), stress_payload(n));
        }
        if (i % 100 == 99) (void)cache.stats();
      }
    });
  }
  // One thread clears concurrently: clear() vs lookup/insert is the
  // shutdown-vs-traffic shape of the serve front-end.
  std::thread clearer([&] {
    for (int i = 0; i < 3; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      cache.clear();
    }
  });
  for (auto& t : workers) t.join();
  clearer.join();

  EXPECT_EQ(bad_payloads.load(), 0) << "a hit returned foreign bytes";
  const serve::CacheStats st = cache.stats();
  EXPECT_EQ(st.hits + st.misses,
            static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_LE(st.bytes_live, st.byte_budget);
}

// ---- SlabPool under the shard-lock discipline ----------------------------

TEST(RaceStress, SlabPoolCrossThreadRecycling) {
  // SlabPool is documented not-thread-safe; the cache uses one pool per
  // shard under that shard's mutex.  Reproduce that discipline with blocks
  // migrating between threads: alloc+write on one thread, release on
  // another, pool always under the lock.
  serve::SlabPool pool;
  std::mutex m;
  std::vector<serve::SlabPool::Block> parked;
  std::atomic<int> transferred{0};

  std::vector<std::thread> workers;
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&, w] {
      for (int i = 0; i < 400; ++i) {
        const std::size_t n = 64 + ((static_cast<std::size_t>(w) * 31 + i) *
                                    97) % 6000;
        if ((w + i) % 2 == 0) {
          serve::SlabPool::Block b;
          {
            const std::lock_guard<std::mutex> lock(m);
            b = pool.alloc(n);
          }
          std::memset(b.data, w, b.size);  // touch outside the lock
          const std::lock_guard<std::mutex> lock(m);
          parked.push_back(b);
        } else {
          serve::SlabPool::Block b;
          {
            const std::lock_guard<std::mutex> lock(m);
            if (parked.empty()) continue;
            b = parked.back();
            parked.pop_back();
          }
          b.data[0] = static_cast<char>(w);  // touch foreign block
          const std::lock_guard<std::mutex> lock(m);
          pool.release(b);
          transferred.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : workers) t.join();
  for (auto& b : parked) pool.release(b);
  EXPECT_GT(transferred.load(), 0);
  EXPECT_EQ(pool.bytes_live(), 0u);
  pool.trim();
  EXPECT_EQ(pool.bytes_pooled(), 0u);
}

// ---- serve_socket connect / request / shutdown ---------------------------

int connect_unix(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

/// Send one request line, read the one response line.  Empty string on any
/// socket error (expected when racing shutdown).
std::string roundtrip(int fd, const std::string& line) {
  const std::string out = line + "\n";
  // MSG_NOSIGNAL: racing the server's shutdown means the peer may already
  // be closed; that must read as an error, not SIGPIPE this process.
  if (::send(fd, out.data(), out.size(), MSG_NOSIGNAL) !=
      static_cast<ssize_t>(out.size()))
    return {};
  std::string resp;
  char c;
  while (::read(fd, &c, 1) == 1) {
    if (c == '\n') return resp;
    resp.push_back(c);
  }
  return {};
}

TEST(RaceStress, ServeSocketConnectRequestShutdown) {
  const std::string path = testing::TempDir() + "race_stress_serve.sock";
  serve::ServeOptions so;
  so.threads = 2;
  so.flow.lint = true;
  serve::ServeEngine engine(so);
  std::thread server([&] { serve::serve_socket(engine, path); });

  // Wait until the socket accepts.
  int probe = -1;
  for (int i = 0; i < 2000 && probe < 0; ++i) {
    probe = connect_unix(path);
    if (probe < 0) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(probe, 0) << "server socket never came up";
  ::close(probe);

  const std::string spec =
      write_g_string(bench::suite_benchmark("chu133").stg, "chu133");
  std::atomic<int> answered{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 3; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < 6; ++i) {
        const int fd = connect_unix(path);
        if (fd < 0) return;  // shutdown already won the race
        Json j = Json::object();
        j.set("id", Json("c" + std::to_string(c) + "-" + std::to_string(i)));
        // Mix cheap control ops, real flows (cache-hot after the first),
        // and a lint-rejected garbage spec.
        if (i % 3 == 0)
          j = Json::parse(R"({"op":"stats"})");
        else if (i % 3 == 1)
          j.set("spec", Json(spec));
        else
          j.set("spec", Json(".model junk\n.inputs a\n.graph\na+ a+\n"
                             ".marking { }\n.end\n"));
        const std::string resp = roundtrip(fd, j.dump(0));
        ::close(fd);
        if (!resp.empty()) {
          EXPECT_NO_THROW((void)Json::parse(resp)) << resp;
          answered.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  // Let the clients get going, then race a shutdown against them.
  while (answered.load(std::memory_order_relaxed) < 4)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  const int fd = connect_unix(path);
  if (fd >= 0) {
    (void)roundtrip(fd, R"({"op":"shutdown"})");
    ::close(fd);
  }
  for (auto& t : clients) t.join();
  server.join();
  EXPECT_TRUE(engine.shutdown_requested());
  EXPECT_GE(answered.load(), 4);
  ::unlink(path.c_str());
}

// ---- batch watchdog vs completing items ----------------------------------

TEST(RaceStress, BatchWatchdogRacesCompletion) {
  // Deadlines chosen to straddle real item runtimes: some items finish just
  // as the watchdog fires, which is exactly the cancel-vs-complete race the
  // watchdog must lose gracefully.  Any per-item outcome is legal; the
  // batch must report every item exactly once, typed.
  const std::vector<std::string> names = {"chu133", "converta", "chu133",
                                          "converta"};
  for (const double deadline_ms : {2.0, 15.0, 200.0}) {
    BatchOptions opts;
    opts.threads = kThreads;
    opts.item_deadline_ms = deadline_ms;
    opts.flow.stop_after = Stage::kSynth;
    const BatchResult result = run_batch_suite(names, opts);
    ASSERT_EQ(result.items.size(), names.size());
    EXPECT_EQ(result.num_ok + result.num_failed,
              static_cast<int>(names.size()));
    for (const BatchItem& item : result.items) {
      if (!item.report.ok)
        EXPECT_NE(item.report.failure_kind, FailureKind::kNone) << item.label;
    }
  }
}

}  // namespace
}  // namespace sitm
