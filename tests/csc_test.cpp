// Tests for Complete State Coding resolution (core/csc).

#include <gtest/gtest.h>

#include "benchlib/generators.hpp"
#include "core/csc.hpp"
#include "core/mapper.hpp"
#include "netlist/si_verify.hpp"
#include "sg/properties.hpp"
#include "stg/stg.hpp"
#include "util/error.hpp"

namespace sitm {
namespace {

/// The classic CSC-violating ring: a+ b+ a- b- c+ d+ c- d- (all outputs).
/// After b- the code returns to 0000 but the enabled output differs (c+ vs
/// a+ initially).
Stg csc_ring() {
  Stg stg;
  const int a = stg.add_signal("a", SignalKind::kOutput);
  const int b = stg.add_signal("b", SignalKind::kOutput);
  const int c = stg.add_signal("c", SignalKind::kOutput);
  const int d = stg.add_signal("d", SignalKind::kOutput);
  const TransId ring[] = {
      stg.add_transition(a, true),  stg.add_transition(b, true),
      stg.add_transition(a, false), stg.add_transition(b, false),
      stg.add_transition(c, true),  stg.add_transition(d, true),
      stg.add_transition(c, false), stg.add_transition(d, false),
  };
  for (int i = 0; i < 7; ++i) stg.connect_tt(ring[i], ring[i + 1]);
  stg.mark_initial(stg.connect_tt(ring[7], ring[0]));
  return stg;
}

TEST(Csc, ConflictDetection) {
  const StateGraph sg = csc_ring().to_state_graph();
  EXPECT_FALSE(check_csc(sg));
  EXPECT_GT(count_csc_conflicts(sg), 0);
  // Valid specifications have zero conflicts.
  EXPECT_EQ(count_csc_conflicts(bench::make_hazard().to_state_graph()), 0);
}

TEST(Csc, ResolvesTheRing) {
  const StateGraph sg = csc_ring().to_state_graph();
  const CscResult result = resolve_csc(sg);
  ASSERT_TRUE(result.resolved) << result.failure;
  EXPECT_GE(result.signals_inserted, 1);
  EXPECT_TRUE(check_csc(*result.sg));
  EXPECT_TRUE(check_implementability(*result.sg));
  // The inserted signals are internal state signals.
  for (int s = sg.num_signals(); s < result.sg->num_signals(); ++s)
    EXPECT_EQ(result.sg->signal(s).kind, SignalKind::kInternal);
}

TEST(Csc, StepsRecordConflictReduction) {
  const StateGraph sg = csc_ring().to_state_graph();
  const CscResult result = resolve_csc(sg);
  ASSERT_TRUE(result.resolved);
  ASSERT_EQ(static_cast<int>(result.steps.size()), result.signals_inserted);
  for (const auto& step : result.steps)
    EXPECT_LT(step.conflicts_after, step.conflicts_before);
  EXPECT_EQ(result.steps.back().conflicts_after, 0);
}

TEST(Csc, ResolvedSpecMapsAndVerifies) {
  const StateGraph sg = csc_ring().to_state_graph();
  const CscResult csc = resolve_csc(sg);
  ASSERT_TRUE(csc.resolved) << csc.failure;

  MapperOptions opts;
  opts.library.max_literals = 2;
  const MapResult mapped = technology_map(*csc.sg, opts);
  ASSERT_TRUE(mapped.implementable) << mapped.failure;
  const Netlist netlist = mapped.build_netlist();
  const SiVerifyResult verify = verify_speed_independence(netlist);
  EXPECT_TRUE(verify.ok) << verify.why;
}

TEST(Csc, AlreadySatisfiedIsNoop) {
  const StateGraph sg = bench::make_parallelizer(2).to_state_graph();
  const CscResult result = resolve_csc(sg);
  EXPECT_TRUE(result.resolved);
  EXPECT_EQ(result.signals_inserted, 0);
  EXPECT_EQ(result.sg->num_signals(), sg.num_signals());
}

TEST(Csc, InsertionLimitRespected) {
  const StateGraph sg = csc_ring().to_state_graph();
  CscOptions opts;
  opts.max_insertions = 0;
  const CscResult result = resolve_csc(sg, opts);
  EXPECT_FALSE(result.resolved);
  EXPECT_FALSE(result.failure.empty());
}

TEST(Csc, RejectsNonSpeedIndependentInput) {
  // Output choice (persistency violation) must be rejected up front.
  StateGraph bad;
  const int p = bad.add_signal("p", SignalKind::kOutput);
  const int q = bad.add_signal("q", SignalKind::kOutput);
  const StateId s0 = bad.add_state(0b00);
  const StateId s1 = bad.add_state(0b01);
  const StateId s2 = bad.add_state(0b10);
  bad.add_arc(s0, Event{p, true}, s1);
  bad.add_arc(s0, Event{q, true}, s2);
  bad.set_initial(s0);
  EXPECT_THROW(resolve_csc(bad), Error);
}

TEST(Csc, LongerRingNeedsMoreSignals) {
  // Three phases sharing the all-zero code: needs 2 state signals.
  Stg stg;
  const int a = stg.add_signal("a", SignalKind::kOutput);
  const int b = stg.add_signal("b", SignalKind::kOutput);
  const int c = stg.add_signal("c", SignalKind::kOutput);
  std::vector<TransId> ring;
  for (int sig : {a, b, c}) {
    ring.push_back(stg.add_transition(sig, true));
    ring.push_back(stg.add_transition(sig, false));
  }
  for (std::size_t i = 0; i + 1 < ring.size(); ++i)
    stg.connect_tt(ring[i], ring[i + 1]);
  stg.mark_initial(stg.connect_tt(ring.back(), ring[0]));

  const StateGraph sg = stg.to_state_graph();
  ASSERT_FALSE(check_csc(sg));
  const CscResult result = resolve_csc(sg);
  ASSERT_TRUE(result.resolved) << result.failure;
  EXPECT_GE(result.signals_inserted, 2);
  EXPECT_TRUE(check_implementability(*result.sg));
}

}  // namespace
}  // namespace sitm
