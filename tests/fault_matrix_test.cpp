// The deterministic fault-injection harness (util/fault.hpp) and the
// robustness paths it drives: every stage's failure taxonomy, the CSC
// stage's best-so-far degradation, and the batch driver's watchdog,
// catch (...) arm and degraded retry.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "benchlib/generators.hpp"
#include "flow/batch.hpp"
#include "flow/flow.hpp"
#include "util/fault.hpp"

namespace sitm {
namespace {

/// Two-phase ring with a CSC conflict (phases share the all-zero code).
const char* kCscConflictSpec = R"(.model twophase
.outputs a b c d
.graph
a+ b+
b+ a-
a- b-
b- c+
c+ d+
d+ c-
c- d-
d- a+
.marking { <d-,a+> }
.end
)";

class FaultTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::clear(); }
  void TearDown() override { fault::clear(); }
};

TEST_F(FaultTest, SpecParserRejectsMalformedEntries) {
  std::string error;
  EXPECT_TRUE(fault::configure("a.site:error,b.site:sleep:10@2", &error))
      << error;
  fault::clear();
  EXPECT_FALSE(fault::configure("a.site:frobnicate", &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(fault::configure("no-action-here", nullptr));
}

TEST_F(FaultTest, FiresExactlyOnceOnNthHit) {
  fault::arm("unit.site", fault::Action::kError, /*nth=*/3);
  fault::hit("unit.site");
  fault::hit("unit.site");
  EXPECT_FALSE(fault::fired("unit.site"));
  EXPECT_THROW(fault::hit("unit.site"), Error);
  EXPECT_TRUE(fault::fired("unit.site"));
  fault::hit("unit.site");  // after firing the site is inert again
  EXPECT_EQ(fault::hit_count("unit.site"), 4u);
}

struct StageFault {
  const char* site;
  Stage stage;
  fault::Action action;
  FailureKind kind;
};

TEST_F(FaultTest, EveryStageFailureIsTypedAndStopsTheFlow) {
  const StageFault matrix[] = {
      {"flow.load", Stage::kLoad, fault::Action::kInternal,
       FailureKind::kInternal},
      {"flow.reachability", Stage::kReachability, fault::Action::kBudget,
       FailureKind::kBudget},
      {"flow.properties", Stage::kProperties, fault::Action::kDeadline,
       FailureKind::kDeadline},
      {"flow.csc", Stage::kCsc, fault::Action::kCancel,
       FailureKind::kCancelled},
      {"flow.synth", Stage::kSynth, fault::Action::kError,
       FailureKind::kSpec},
      {"flow.decomp", Stage::kDecomp, fault::Action::kBadAlloc,
       FailureKind::kInternal},
      {"flow.map", Stage::kMap, fault::Action::kBudget, FailureKind::kBudget},
      {"flow.verify", Stage::kVerify, fault::Action::kInternal,
       FailureKind::kInternal},
      {"flow.emit", Stage::kEmit, fault::Action::kNonStd,
       FailureKind::kInternal},
  };
  for (const auto& f : matrix) {
    fault::clear();
    fault::arm(f.site, f.action);
    Flow flow;
    const FlowReport report = flow.run_string(kCscConflictSpec);
    ASSERT_FALSE(report.ok) << f.site;
    EXPECT_EQ(report.failed_stage, f.stage) << f.site;
    EXPECT_EQ(report.failure_kind, f.kind) << f.site;
    const StageReport& sr = report.stage(f.stage);
    EXPECT_FALSE(sr.ok) << f.site;
    EXPECT_EQ(sr.failure_kind, f.kind) << f.site;
    EXPECT_FALSE(sr.failure.empty()) << f.site;
    // Later stages never ran — except emit, which still runs after a
    // verify failure so the failing netlist can be inspected.
    for (int later = static_cast<int>(f.stage) + 1; later < kNumStages;
         ++later) {
      const Stage s = static_cast<Stage>(later);
      if (f.stage == Stage::kVerify && s == Stage::kEmit) {
        EXPECT_TRUE(report.stage(s).ran) << f.site;
        continue;
      }
      EXPECT_FALSE(report.stage(s).ran)
          << f.site << " -> " << stage_name(s);
    }
  }
}

TEST_F(FaultTest, CheckStageFaultIsTypedWhenEnabled) {
  // The check stage is opt-in, so its stage-entry site gets its own matrix
  // entry with a check-enabled flow (the shared loop above runs defaults).
  const StageFault matrix[] = {
      {"flow.check", Stage::kCheck, fault::Action::kError, FailureKind::kSpec},
      {"flow.check", Stage::kCheck, fault::Action::kCancel,
       FailureKind::kCancelled},
      {"check.gate", Stage::kCheck, fault::Action::kBudget,
       FailureKind::kBudget},
  };
  for (const auto& f : matrix) {
    fault::clear();
    fault::arm(f.site, f.action);
    FlowOptions opts;
    opts.check = true;
    Flow flow(opts);
    const FlowReport report = flow.run_string(kCscConflictSpec);
    ASSERT_FALSE(report.ok) << f.site;
    EXPECT_EQ(report.failed_stage, f.stage) << f.site;
    EXPECT_EQ(report.failure_kind, f.kind) << f.site;
    EXPECT_FALSE(report.stage(Stage::kVerify).ran) << f.site;
  }
}

TEST_F(FaultTest, ArmedCheckFaultIsInertWhenStageDisabled) {
  // A disabled check stage is skipped *before* its fault site: arming
  // flow.check must not trip a run that never asked for the stage.
  fault::arm("flow.check", fault::Action::kError);
  Flow flow;  // check off by default
  const FlowReport report = flow.run_string(kCscConflictSpec);
  EXPECT_TRUE(report.ok) << report.failure;
  EXPECT_TRUE(report.stage(Stage::kCheck).skipped);
  EXPECT_FALSE(fault::fired("flow.check"));
}

TEST_F(FaultTest, HotLoopSitesAreInstrumented) {
  // A budget fault at each governed hot-loop site must surface as a typed
  // failure of the owning stage, proving the loop actually polls.
  const StageFault matrix[] = {
      {"stg.to_state_graph", Stage::kReachability, fault::Action::kBudget,
       FailureKind::kBudget},
      {"csc.candidate", Stage::kCsc, fault::Action::kBudget,
       FailureKind::kBudget},
      {"synth.signal", Stage::kSynth, fault::Action::kBudget,
       FailureKind::kBudget},
      {"map.round", Stage::kMap, fault::Action::kDeadline,
       FailureKind::kDeadline},
  };
  for (const auto& f : matrix) {
    fault::clear();
    fault::arm(f.site, f.action);
    Flow flow;
    const FlowReport report = flow.run_string(kCscConflictSpec);
    ASSERT_FALSE(report.ok) << f.site;
    EXPECT_EQ(report.failed_stage, f.stage) << f.site;
    EXPECT_EQ(report.failure_kind, f.kind) << f.site;
  }
}

TEST_F(FaultTest, CscExhaustionUnderFailPolicyIsTyped) {
  // Trip at the very first scored candidate: nothing committable exists
  // yet, so the stage fails typed with the engine's explanation.
  fault::arm("csc.candidate", fault::Action::kBudget, /*nth=*/1);
  Flow flow;  // default policy: kFail
  const FlowReport report = flow.run_string(kCscConflictSpec);
  ASSERT_FALSE(report.ok);
  EXPECT_EQ(report.failed_stage, Stage::kCsc);
  EXPECT_EQ(report.failure_kind, FailureKind::kBudget);
  ASSERT_TRUE(flow.context().csc.has_value());
  EXPECT_EQ(flow.context().csc->stopped, GuardStop::kBudget);
  EXPECT_EQ(flow.context().csc->signals_inserted, 0);
}

TEST_F(FaultTest, CscExhaustionCommitsBestSoFarInsertion) {
  // make_csc_ring(3) needs two insertions (97 candidates scored in full).
  // Tripping at candidate 2 exhausts the search mid-scan with one scored
  // candidate in hand: the engine still commits that best-so-far insertion
  // (degraded), and the stage failure reports the remaining conflicts —
  // with the partial resolution left inspectable in the context.
  const StateGraph input = bench::make_csc_ring(3).to_state_graph();
  const int signals_before = input.num_signals();
  fault::arm("csc.candidate", fault::Action::kBudget, /*nth=*/2);
  FlowOptions opts;
  opts.on_budget = FlowOptions::OnBudget::kDegrade;
  Flow flow(opts);
  const FlowReport report = flow.run_state_graph(input, "csc_ring3");
  ASSERT_FALSE(report.ok);
  EXPECT_EQ(report.failed_stage, Stage::kCsc);
  EXPECT_EQ(report.failure_kind, FailureKind::kBudget);
  EXPECT_NE(report.failure.find("conflict pair(s) remain"), std::string::npos)
      << report.failure;
  const FlowContext& ctx = flow.context();
  ASSERT_TRUE(ctx.csc.has_value());
  EXPECT_TRUE(ctx.csc->degraded);
  EXPECT_EQ(ctx.csc->stopped, GuardStop::kBudget);
  EXPECT_EQ(ctx.csc->signals_inserted, 1);
  // The partial SG (with the committed latch) replaced the context SG.
  EXPECT_EQ(ctx.sg->num_signals(), signals_before + 1);
  EXPECT_EQ(report.stage(Stage::kCsc).metric_value("signals_inserted"), 1.0);
}

// ---- batch driver ------------------------------------------------------

std::string write_spec_dir() {
  const auto dir = std::filesystem::path(::testing::TempDir()) /
                   "sitm_fault_batch";
  std::filesystem::create_directories(dir);
  for (const char* name : {"one.g", "two.g"}) {
    std::ofstream out(dir / name);
    out << kCscConflictSpec;
  }
  return dir.string();
}

TEST_F(FaultTest, BatchSurvivesNonStandardException) {
  fault::arm("batch.item", fault::Action::kNonStd, /*nth=*/1);
  BatchOptions opts;
  opts.threads = 1;  // deterministic item order
  const BatchResult result =
      run_batch_files(collect_spec_files(write_spec_dir()), opts);
  ASSERT_EQ(result.items.size(), 2u);
  EXPECT_EQ(result.num_failed, 1);
  EXPECT_EQ(result.num_ok, 1);
  const FlowReport& bad = result.items[0].report;
  EXPECT_FALSE(bad.ok);
  EXPECT_EQ(bad.failure_kind, FailureKind::kInternal);
  EXPECT_NE(bad.failure.find("non-standard"), std::string::npos);
  EXPECT_TRUE(result.items[1].report.ok);
}

TEST_F(FaultTest, BatchWatchdogMarksOverdueItemDeadline) {
  // The first item blocks 1 s at the synth stage entry without polling its
  // guard; the watchdog must cancel it past the 150 ms deadline and the
  // driver normalizes the failure to `deadline`.  (The margins are wide so
  // sanitizer builds don't push the healthy item over its own deadline.)
  fault::arm("flow.synth", fault::Action::kSleep, /*nth=*/1, /*arg=*/1000);
  BatchOptions opts;
  opts.threads = 1;
  opts.item_deadline_ms = 150;
  const BatchResult result =
      run_batch_files(collect_spec_files(write_spec_dir()), opts);
  ASSERT_EQ(result.items.size(), 2u);
  const FlowReport& overdue = result.items[0].report;
  EXPECT_FALSE(overdue.ok);
  EXPECT_EQ(overdue.failure_kind, FailureKind::kDeadline);
  ASSERT_TRUE(overdue.failed_stage.has_value());
  EXPECT_EQ(overdue.stage(*overdue.failed_stage).failure_kind,
            FailureKind::kDeadline);
  // The second item got its own fresh deadline window and finished.
  EXPECT_TRUE(result.items[1].report.ok) << result.items[1].report.failure;
}

TEST_F(FaultTest, BatchRetriesBudgetFailureWithDegradedOptions) {
  BatchOptions opts;
  opts.threads = 1;
  opts.retry_degraded = true;
  opts.flow.verify_max_states = 1;  // every verify attempt runs out
  const BatchResult result =
      run_batch_files(collect_spec_files(write_spec_dir()), opts);
  ASSERT_EQ(result.items.size(), 2u);
  for (const auto& item : result.items) {
    // Attempt 1 fails typed (kFail); attempt 2 degrades verify to
    // "unverified" and the item passes.
    EXPECT_TRUE(item.report.ok) << item.report.failure;
    EXPECT_EQ(item.attempts, 2);
    EXPECT_EQ(item.report.stage(Stage::kVerify).metric_value("unverified"),
              1.0);
  }
  // The retry count lands in the aggregate JSON.
  const std::string json = result.to_json().dump(0);
  EXPECT_NE(json.find("attempts"), std::string::npos);
}

TEST_F(FaultTest, BatchWithoutFaultsIsUnchanged) {
  BatchOptions opts;
  opts.threads = 2;
  const BatchResult result =
      run_batch_files(collect_spec_files(write_spec_dir()), opts);
  EXPECT_TRUE(result.all_ok());
  for (const auto& item : result.items) EXPECT_EQ(item.attempts, 1);
}

}  // namespace
}  // namespace sitm
