// Unit tests for monotonous cover synthesis (MC conditions 1-3, complete
// covers, and the combinational-vs-standard-C architecture choice).

#include <gtest/gtest.h>

#include "benchlib/generators.hpp"
#include "core/mc_cover.hpp"
#include "util/error.hpp"
#include "sg/properties.hpp"
#include "sg/sg_io.hpp"
#include "stg/stg.hpp"

namespace sitm {
namespace {

StateGraph handshake() {
  return read_sg_string(R"(.model hs
.inputs r
.outputs a
.graph
s0 r+ s1
s1 a+ s2
s2 r- s3
s3 a- s0
.initial s0 00
.end
)");
}

/// Checks MC conditions semantically for a computed event cover.
void expect_mc_conditions(const StateGraph& sg, const EventCover& ec) {
  const DynBitset er = union_er(sg, ec.regions);
  const DynBitset qr = union_qr(sg, ec.regions);
  const DynBitset reachable = sg.reachable();

  // Condition 1: covers every ER state.
  er.for_each([&](std::size_t s) {
    EXPECT_TRUE(ec.cover.eval(sg.code(static_cast<StateId>(s))))
        << "ER state " << sg.code_string(static_cast<StateId>(s))
        << " not covered for " << sg.event_string(ec.event);
  });
  // Condition 2: zero outside ER u QR.
  reachable.for_each([&](std::size_t s) {
    if (er.test(s) || qr.test(s)) return;
    EXPECT_FALSE(ec.cover.eval(sg.code(static_cast<StateId>(s))))
        << "state " << sg.code_string(static_cast<StateId>(s))
        << " wrongly covered for " << sg.event_string(ec.event);
  });
  // Condition 3: no 0->1 change within ERj u QRj.
  for (const auto& region : ec.regions) {
    const DynBitset zone = region.er | region.qr;
    zone.for_each([&](std::size_t u) {
      if (ec.cover.eval(sg.code(static_cast<StateId>(u)))) return;
      for (const auto& edge : sg.succs(static_cast<StateId>(u))) {
        if (!zone.test(edge.target)) continue;
        EXPECT_FALSE(ec.cover.eval(sg.code(edge.target)))
            << "cover rises inside QR of " << sg.event_string(ec.event);
      }
    });
  }
}

TEST(McCover, HandshakeCovers) {
  const StateGraph sg = handshake();
  const int a = sg.find_signal("a");
  const EventCover set = monotonous_cover(sg, Event{a, true});
  const EventCover reset = monotonous_cover(sg, Event{a, false});
  expect_mc_conditions(sg, set);
  expect_mc_conditions(sg, reset);
  // a+ is excited exactly when r=1 (code 01); minimal cover is the literal r.
  EXPECT_EQ(set.cover.num_literals(), 1);
  EXPECT_EQ(reset.cover.num_literals(), 1);
}

TEST(McCover, HandshakeIsCombinational) {
  const StateGraph sg = handshake();
  const int a = sg.find_signal("a");
  const SignalSynthesis synth = synthesize_signal(sg, a);
  // a = r is a 1-literal complete cover; the C element degenerates.
  EXPECT_TRUE(synth.combinational);
  EXPECT_EQ(synth.complete_complexity, 1);
  EXPECT_EQ(synth.complexity, 1);
}

TEST(McCover, InputSignalRejected) {
  const StateGraph sg = handshake();
  EXPECT_THROW(synthesize_signal(sg, sg.find_signal("r")), Error);
}

TEST(McCover, ParallelizerJoinIsWide) {
  const StateGraph sg = bench::make_parallelizer(4).to_state_graph();
  const int d = sg.find_signal("d");
  const SignalSynthesis synth = synthesize_signal(sg, d);
  // d+ needs all four grants: a 4-literal AND (possibly via complement).
  EXPECT_GE(synth.set.cover.num_literals(), 4);
  expect_mc_conditions(sg, synth.set);
  expect_mc_conditions(sg, synth.reset);
}

TEST(McCover, SharedOutResetIsMultiCube) {
  const StateGraph sg = bench::make_shared_out(3).to_state_graph();
  const int z = sg.find_signal("z");
  const SignalSynthesis synth = synthesize_signal(sg, z);
  expect_mc_conditions(sg, synth.set);
  expect_mc_conditions(sg, synth.reset);
  // One cube per client on at least one side of the implementation.
  EXPECT_GE(std::max(synth.set.cover.size(), synth.reset.cover.size()), 3u);
}

TEST(McCover, HazardSetCoverMatchesPaper) {
  const StateGraph sg = bench::make_hazard().to_state_graph();
  const int x = sg.find_signal("x");
  const SignalSynthesis synth = synthesize_signal(sg, x);
  // The paper's running example: Sx is the single cube a'*c*d.
  ASSERT_EQ(synth.set.cover.size(), 1u);
  EXPECT_EQ(synth.set.cover.num_literals(), 3);
  const Cube cube = synth.set.cover.cubes()[0];
  EXPECT_TRUE(cube.has_literal(sg.find_signal("a")));
  EXPECT_FALSE(cube.polarity(sg.find_signal("a")));
  EXPECT_TRUE(cube.has_literal(sg.find_signal("c")));
  EXPECT_TRUE(cube.polarity(sg.find_signal("c")));
  EXPECT_TRUE(cube.has_literal(sg.find_signal("d")));
  EXPECT_TRUE(cube.polarity(sg.find_signal("d")));
  expect_mc_conditions(sg, synth.set);
}

TEST(McCover, AllSuiteStyleCoversSatisfyMc) {
  for (const Stg& stg :
       {bench::make_pipeline(2), bench::make_seq_chain(3),
        bench::make_choice_mixer(3), bench::make_combo(2, 2)}) {
    const StateGraph sg = stg.to_state_graph();
    ASSERT_TRUE(check_implementability(sg));
    for (int sig : sg.noninput_signals()) {
      const SignalSynthesis synth = synthesize_signal(sg, sig);
      expect_mc_conditions(sg, synth.set);
      expect_mc_conditions(sg, synth.reset);
    }
  }
}

TEST(McCover, SynthesizeAllBuildsNetlist) {
  const StateGraph sg = bench::make_parallelizer(3).to_state_graph();
  std::vector<SignalSynthesis> syntheses;
  const Netlist netlist = synthesize_all(sg, {}, &syntheses);
  EXPECT_EQ(netlist.impls().size(), sg.noninput_signals().size());
  EXPECT_EQ(syntheses.size(), netlist.impls().size());
  EXPECT_GE(netlist.max_gate_complexity(), 3);
  for (int sig : sg.noninput_signals()) EXPECT_NE(netlist.impl_of(sig), nullptr);
  EXPECT_EQ(netlist.impl_of(sg.find_signal("r")), nullptr);
}

TEST(McCover, CompleteCoverMatchesNextValue) {
  for (const Stg& stg : {bench::make_hazard(), bench::make_seq_chain(2)}) {
    const StateGraph sg = stg.to_state_graph();
    for (int sig : sg.noninput_signals()) {
      int complexity = 0;
      const Cover c = complete_cover(sg, sig, &complexity);
      sg.reachable().for_each([&](std::size_t s) {
        const auto id = static_cast<StateId>(s);
        EXPECT_EQ(c.eval(sg.code(id)), next_value(sg, id, sig))
            << "signal " << sg.signal(sig).name << " state "
            << sg.code_string(id);
      });
      EXPECT_GE(complexity, 0);
    }
  }
}

}  // namespace
}  // namespace sitm
