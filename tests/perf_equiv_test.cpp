// Equivalence tests for the hot-path data structures: the flat-hash
// reachability store, the word-mask token game and the cached CSC conflict
// detection must produce results identical to straightforward reference
// implementations (the containers and rescans they replaced).

#include <gtest/gtest.h>

#include <map>
#include <numeric>
#include <optional>
#include <set>
#include <vector>

#include "benchlib/generators.hpp"
#include "benchlib/suite.hpp"
#include "boolf/bitslice.hpp"
#include "boolf/minimize.hpp"
#include "core/csc.hpp"
#include "core/insertion.hpp"
#include "sg/properties.hpp"
#include "sg/regions.hpp"
#include "sg/state_graph.hpp"
#include "stg/stg.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace sitm {
namespace {

// ----- reference reachability: std::map store, per-place token game --------

using RefMarking = std::vector<std::uint64_t>;

bool ref_marked(const RefMarking& m, PlaceId p) {
  return (m[static_cast<std::size_t>(p) >> 6] >> (p & 63)) & 1u;
}
void ref_set_token(RefMarking& m, PlaceId p, bool v) {
  const std::uint64_t bit = std::uint64_t{1} << (p & 63);
  if (v)
    m[static_cast<std::size_t>(p) >> 6] |= bit;
  else
    m[static_cast<std::size_t>(p) >> 6] &= ~bit;
}

/// The pre-optimization reachability algorithm, verbatim in structure:
/// ordered-map state store, per-place enabledness and firing loops.
StateGraph reference_state_graph(const Stg& stg) {
  RefMarking init((stg.num_places() + 63) / 64, 0);
  for (PlaceId p : stg.initial_marking()) ref_set_token(init, p, true);

  struct Node {
    RefMarking marking;
    StateCode mask;
  };
  std::map<RefMarking, StateId> ids;
  std::vector<Node> nodes;
  struct PendingArc {
    StateId from, to;
    Event event;
  };
  std::vector<PendingArc> arcs;
  std::vector<int> initial_value(stg.num_signals(), -1);

  nodes.push_back(Node{init, 0});
  ids.emplace(init, 0);
  std::vector<StateId> queue{0};

  while (!queue.empty()) {
    const StateId sid = queue.back();
    queue.pop_back();
    const Node node = nodes[sid];

    for (TransId t = 0; t < static_cast<TransId>(stg.num_transitions()); ++t) {
      bool enabled = true;
      for (PlaceId p : stg.pre_places(t))
        if (!ref_marked(node.marking, p)) {
          enabled = false;
          break;
        }
      if (!enabled || stg.pre_places(t).empty()) continue;

      const auto& tr = stg.transition(t);
      const int rel = static_cast<int>((node.mask >> tr.signal) & 1);
      const int required_initial = tr.rising ? rel : 1 - rel;
      if (initial_value[tr.signal] < 0)
        initial_value[tr.signal] = required_initial;
      EXPECT_EQ(initial_value[tr.signal], required_initial);

      RefMarking next = node.marking;
      for (PlaceId p : stg.pre_places(t)) ref_set_token(next, p, false);
      for (PlaceId p : stg.post_places(t)) {
        EXPECT_FALSE(ref_marked(next, p)) << "net not 1-safe";
        ref_set_token(next, p, true);
      }
      const StateCode next_mask = node.mask ^ (StateCode{1} << tr.signal);

      auto [it, inserted] =
          ids.emplace(next, static_cast<StateId>(nodes.size()));
      if (inserted) {
        nodes.push_back(Node{std::move(next), next_mask});
        queue.push_back(it->second);
      }
      arcs.push_back(PendingArc{sid, it->second, tr.event()});
    }
  }

  StateCode init_code = 0;
  for (int i = 0; i < stg.num_signals(); ++i)
    if (initial_value[i] == 1) init_code |= StateCode{1} << i;

  StateGraph sg;
  for (const auto& sig : stg.signals()) sg.add_signal(sig.name, sig.kind);
  for (const auto& node : nodes) sg.add_state(init_code ^ node.mask);
  for (const auto& arc : arcs) sg.add_arc(arc.from, arc.event, arc.to);
  sg.set_initial(0);
  return sg;
}

/// Structural equality including state numbering and arc order.
void expect_sg_identical(const StateGraph& a, const StateGraph& b) {
  ASSERT_EQ(a.num_states(), b.num_states());
  ASSERT_EQ(a.num_arcs(), b.num_arcs());
  EXPECT_EQ(a.initial(), b.initial());
  ASSERT_EQ(a.num_signals(), b.num_signals());
  for (int i = 0; i < a.num_signals(); ++i)
    EXPECT_EQ(a.signal(i).name, b.signal(i).name);
  for (StateId s = 0; s < static_cast<StateId>(a.num_states()); ++s) {
    EXPECT_EQ(a.code(s), b.code(s)) << "state " << s;
    const auto& ea = a.succs(s);
    const auto& eb = b.succs(s);
    ASSERT_EQ(ea.size(), eb.size()) << "state " << s;
    for (std::size_t i = 0; i < ea.size(); ++i) {
      EXPECT_EQ(ea[i].event, eb[i].event) << "state " << s << " edge " << i;
      EXPECT_EQ(ea[i].target, eb[i].target) << "state " << s << " edge " << i;
    }
  }
}

// ----- reference CSC conflict count: per-pair mask recomputation -----------

std::uint64_t ref_output_mask(const StateGraph& sg, StateId s) {
  std::uint64_t mask = 0;
  for (const auto& e : sg.succs(s)) {
    if (is_noninput(sg.signal(e.event.signal).kind))
      mask |= std::uint64_t{1}
              << (2 * (e.event.signal % 32) + (e.event.rising ? 1 : 0));
  }
  return mask;
}

int reference_csc_conflicts(const StateGraph& sg) {
  int pairs = 0;
  std::map<StateCode, std::vector<StateId>> by_code;
  for (StateId s = 0; s < static_cast<StateId>(sg.num_states()); ++s)
    by_code[sg.code(s)].push_back(s);
  for (const auto& [code, states] : by_code)
    for (std::size_t i = 0; i < states.size(); ++i)
      for (std::size_t j = i + 1; j < states.size(); ++j)
        if (ref_output_mask(sg, states[i]) != ref_output_mask(sg, states[j]))
          ++pairs;
  return pairs;
}

std::vector<Stg> family_instances() {
  std::vector<Stg> out;
  for (int k = 2; k <= 8; ++k) out.push_back(bench::make_parallelizer(k));
  for (int k = 2; k <= 8; k += 2) out.push_back(bench::make_seq_chain(k));
  for (int p = 2; p <= 5; ++p)
    for (int s = 2; s <= 4; ++s) out.push_back(bench::make_combo(p, s));
  for (int n = 2; n <= 8; n += 2) out.push_back(bench::make_pipeline(n));
  for (int k = 2; k <= 5; ++k) out.push_back(bench::make_choice_mixer(k));
  for (int k = 2; k <= 4; ++k) out.push_back(bench::make_shared_out(k));
  out.push_back(bench::make_hazard());
  return out;
}

TEST(PerfEquiv, ReachabilityMatchesReferenceOnFamilies) {
  for (const Stg& stg : family_instances()) {
    const StateGraph fast = stg.to_state_graph();
    const StateGraph ref = reference_state_graph(stg);
    expect_sg_identical(fast, ref);
  }
}

TEST(PerfEquiv, ReachabilityMatchesReferenceOnCorpus) {
  for (const auto& entry : bench::table1_suite()) {
    const StateGraph fast = entry.stg.to_state_graph();
    const StateGraph ref = reference_state_graph(entry.stg);
    expect_sg_identical(fast, ref);
  }
}

TEST(PerfEquiv, WideMarkingPathMatchesReference) {
  // Chain long enough to exceed 64 places, forcing the word-vector marking
  // path (every satellite family fits in one word).
  Stg stg;
  const int a = stg.add_signal("a", SignalKind::kInput);
  const int b = stg.add_signal("b", SignalKind::kOutput);
  std::vector<TransId> ts;
  for (int j = 0; j < 80; ++j) {
    // a+ b+ a- b- a+ ... : each signal strictly alternates polarity.
    const int sig = (j % 2) ? b : a;
    const bool rising = (j % 4) < 2;
    ts.push_back(stg.add_transition(sig, rising, j / 4 + 1));
  }
  for (std::size_t i = 0; i + 1 < ts.size(); ++i) stg.connect_tt(ts[i], ts[i + 1]);
  stg.mark_initial(stg.connect_tt(ts.back(), ts.front()));
  ASSERT_GT(stg.num_places(), 64u);

  const StateGraph fast = stg.to_state_graph();
  const StateGraph ref = reference_state_graph(stg);
  expect_sg_identical(fast, ref);
}

TEST(PerfEquiv, CscConflictCountMatchesReferenceOnFamilies) {
  for (const Stg& stg : family_instances()) {
    const StateGraph sg = stg.to_state_graph();
    EXPECT_EQ(count_csc_conflicts(sg), reference_csc_conflicts(sg));
  }
}

TEST(PerfEquiv, CscConflictCountMatchesReferenceOnCorpus) {
  for (const auto& entry : bench::table1_suite()) {
    const StateGraph sg = entry.stg.to_state_graph();
    EXPECT_EQ(count_csc_conflicts(sg), reference_csc_conflicts(sg))
        << entry.name;
  }
}

TEST(PerfEquiv, ConflictedRingMatchesReference) {
  // Guard that the CSC equivalence check exercises real conflicts (the
  // generator families are CSC-clean by construction): the classic
  // CSC-violating ring a+ b+ a- b- c+ d+ c- d-.
  Stg stg;
  const int sigs[] = {stg.add_signal("a", SignalKind::kOutput),
                      stg.add_signal("b", SignalKind::kOutput),
                      stg.add_signal("c", SignalKind::kOutput),
                      stg.add_signal("d", SignalKind::kOutput)};
  std::vector<TransId> ring;
  for (int half = 0; half < 2; ++half)
    for (bool rising : {true, false})
      for (int i = 0; i < 2; ++i)
        ring.push_back(stg.add_transition(sigs[2 * half + i], rising));
  for (std::size_t i = 0; i + 1 < ring.size(); ++i)
    stg.connect_tt(ring[i], ring[i + 1]);
  stg.mark_initial(stg.connect_tt(ring.back(), ring.front()));

  const StateGraph sg = stg.to_state_graph();
  const int fast = count_csc_conflicts(sg);
  EXPECT_GT(fast, 0);
  EXPECT_EQ(fast, reference_csc_conflicts(sg));
}

TEST(PerfEquiv, ConnectTtReusesManuallyWiredImplicitPlace) {
  // The (from, to) index must see implicit one-in/one-out places no matter
  // how they were wired — connect_tt used to find these by scanning.
  Stg stg;
  const int a = stg.add_signal("a", SignalKind::kOutput);
  const TransId up = stg.add_transition(a, true);
  const TransId down = stg.add_transition(a, false);
  const PlaceId p = stg.add_place();
  stg.connect_tp(up, p);
  stg.connect_pt(p, down);
  EXPECT_EQ(stg.connect_tt(up, down), p);
  EXPECT_EQ(stg.num_places(), 1u);
}

TEST(PerfEquiv, WideSignalMasksDoNotAlias) {
  // Regression: the old single-word output-event mask used `signal % 32`,
  // so signals 32 apart aliased onto the same bits and a conflict between
  // them was silently missed.  Two states share a code; one enables s1+,
  // the other s33+ — a real CSC conflict the 128-bit mask must count.
  StateGraph sg;
  for (int i = 0; i < 34; ++i)
    sg.add_signal("s" + std::to_string(i), SignalKind::kOutput);
  const StateId p = sg.add_state(0);
  const StateId q = sg.add_state(0);
  const StateId p2 = sg.add_state(StateCode{1} << 1);
  const StateId q2 = sg.add_state(StateCode{1} << 33);
  sg.add_arc(p, Event{1, true}, p2);
  sg.add_arc(q, Event{33, true}, q2);
  sg.set_initial(p);
  EXPECT_EQ(count_csc_conflicts(sg), 1);
}

// ----- reference resolve_csc: exhaustive order, full per-candidate rescan --

struct RefConflicts {
  int pairs = 0;
  DynBitset involved;
};

/// 128-bit output-event masks (2 bits per signal) via ordered-map grouping —
/// the structure the cached implementation replaced.
RefConflicts ref_conflicts128(const StateGraph& sg) {
  auto mask128 = [&](StateId s) {
    std::pair<std::uint64_t, std::uint64_t> m{0, 0};
    for (const auto& e : sg.succs(s)) {
      if (!is_noninput(sg.signal(e.event.signal).kind)) continue;
      const std::uint64_t bit =
          std::uint64_t{1}
          << (2 * (e.event.signal & 31) + (e.event.rising ? 1 : 0));
      (e.event.signal < 32 ? m.first : m.second) |= bit;
    }
    return m;
  };
  RefConflicts out{0, sg.empty_set()};
  std::map<StateCode, std::vector<StateId>> by_code;
  for (StateId s = 0; s < static_cast<StateId>(sg.num_states()); ++s)
    by_code[sg.code(s)].push_back(s);
  for (const auto& [code, states] : by_code) {
    for (std::size_t i = 0; i < states.size(); ++i) {
      for (std::size_t j = i + 1; j < states.size(); ++j) {
        if (mask128(states[i]) != mask128(states[j])) {
          ++out.pairs;
          out.involved.set(static_cast<std::size_t>(states[i]));
          out.involved.set(static_cast<std::size_t>(states[j]));
        }
      }
    }
  }
  return out;
}

/// The pre-optimization resolve_csc, verbatim in structure: every candidate
/// pays the full insert + verify + whole-graph conflict recount, in
/// enumeration order.  The optimized default path must match it result for
/// result (steps, counts, final graph).
CscResult reference_resolve_csc(const StateGraph& input,
                                std::size_t max_candidates = 256,
                                int max_insertions = 12) {
  CscResult result;
  result.sg = std::make_shared<StateGraph>(input);
  result.sg->prune_unreachable();

  int name_counter = 0;
  while (true) {
    StateGraph& sg = *result.sg;
    const RefConflicts conflicts = ref_conflicts128(sg);
    if (conflicts.pairs == 0) {
      result.resolved = true;
      return result;
    }
    if (result.signals_inserted >= max_insertions) {
      result.failure = "insertion limit reached";
      return result;
    }

    const auto event_id = [](Event e) {
      return 2 * e.signal + (e.rising ? 1 : 0);
    };
    std::vector<char> occurs(2 * sg.num_signals(), 0);
    std::vector<DynBitset> region(2 * sg.num_signals(), sg.empty_set());
    for (StateId s = 0; s < static_cast<StateId>(sg.num_states()); ++s) {
      for (const auto& edge : sg.succs(s)) {
        occurs[event_id(edge.event)] = 1;
        region[event_id(edge.event)].set(edge.target);
      }
    }
    std::vector<Event> events;
    for (int sig = 0; sig < sg.num_signals(); ++sig)
      for (bool rising : {true, false})
        if (occurs[event_id(Event{sig, rising})])
          events.push_back(Event{sig, rising});

    struct Best {
      StateGraph sg;
      int pairs = 0;
      CscStep step;
    };
    std::optional<Best> best;
    std::size_t examined = 0;

    for (const Event& e1 : events) {
      for (const Event& e2 : events) {
        if (e1 == e2) continue;
        if (examined >= max_candidates) break;
        ++examined;

        auto plan = plan_state_latch_insertion(sg, region[event_id(e1)],
                                               region[event_id(e2)]);
        if (!plan) continue;
        const DynBitset involved_in = conflicts.involved & plan->s1;
        if (involved_in.none() ||
            involved_in.count() == conflicts.involved.count())
          continue;

        std::string name;
        for (int c = name_counter;; ++c) {
          name = "csc" + std::to_string(c);
          if (sg.find_signal(name) < 0) break;
        }
        StateGraph next = insert_signal(sg, *plan, name);
        if (!verify_insertion(sg, next, /*require_csc=*/false)) continue;
        const int pairs_after = ref_conflicts128(next).pairs;
        if (pairs_after >= conflicts.pairs) continue;

        Best candidate{std::move(next), pairs_after,
                       CscStep{name, e1, e2, conflicts.pairs, pairs_after}};
        if (!best || candidate.pairs < best->pairs ||
            (candidate.pairs == best->pairs &&
             candidate.sg.num_states() < best->sg.num_states())) {
          best = std::move(candidate);
        }
        if (best && best->pairs == 0) break;
      }
      if ((best && best->pairs == 0) || examined >= max_candidates) break;
    }

    if (!best) {
      result.failure = "no event-bounded latch reduces the CSC conflicts";
      return result;
    }
    result.sg = std::make_shared<StateGraph>(std::move(best->sg));
    result.steps.push_back(best->step);
    ++result.signals_inserted;
    ++name_counter;
  }
}

void expect_csc_result_identical(const CscResult& a, const CscResult& b) {
  EXPECT_EQ(a.resolved, b.resolved);
  EXPECT_EQ(a.failure, b.failure);
  EXPECT_EQ(a.signals_inserted, b.signals_inserted);
  ASSERT_EQ(a.steps.size(), b.steps.size());
  for (std::size_t i = 0; i < a.steps.size(); ++i) {
    EXPECT_EQ(a.steps[i].new_signal, b.steps[i].new_signal) << "step " << i;
    EXPECT_EQ(a.steps[i].set_after, b.steps[i].set_after) << "step " << i;
    EXPECT_EQ(a.steps[i].reset_after, b.steps[i].reset_after) << "step " << i;
    EXPECT_EQ(a.steps[i].conflicts_before, b.steps[i].conflicts_before);
    EXPECT_EQ(a.steps[i].conflicts_after, b.steps[i].conflicts_after);
  }
  expect_sg_identical(*a.sg, *b.sg);
}

TEST(PerfEquiv, ResolveCscMatchesReferenceOnConflictedRings) {
  for (int segments : {2, 3, 4}) {
    const StateGraph sg = bench::make_csc_ring(segments).to_state_graph();
    ASSERT_GT(count_csc_conflicts(sg), 0) << segments;
    expect_csc_result_identical(resolve_csc(sg),
                                reference_resolve_csc(sg));
  }
  // Concurrency-rich conflicts: the diamond ring exercises the shared
  // planner's memoized region growth against the reference's full rescans.
  for (const auto& [segments, width] : {std::pair{2, 2}, {3, 3}}) {
    const StateGraph sg =
        bench::make_csc_diamond_ring(segments, width).to_state_graph();
    ASSERT_GT(count_csc_conflicts(sg), 0) << segments << "," << width;
    expect_csc_result_identical(resolve_csc(sg), reference_resolve_csc(sg));
  }
}

TEST(PerfEquiv, ResolveCscMatchesReferenceOnCleanFamilies) {
  // CSC-clean inputs must come back untouched through both paths.
  for (const Stg& stg :
       {bench::make_parallelizer(4), bench::make_combo(3, 3)}) {
    const StateGraph sg = stg.to_state_graph();
    expect_csc_result_identical(resolve_csc(sg), reference_resolve_csc(sg));
  }
}

TEST(PerfEquiv, RankedResolveCscStillResolves) {
  // The opt-in top-K mode may pick different latches; the result must still
  // be a conflict-free, consistent, speed-independent graph.
  for (int segments : {2, 3, 4}) {
    const StateGraph sg = bench::make_csc_ring(segments).to_state_graph();
    CscOptions opts;
    opts.rank_top_k = 8;
    const CscResult r = resolve_csc(sg, opts);
    ASSERT_TRUE(r.resolved) << r.failure;
    EXPECT_EQ(count_csc_conflicts(*r.sg), 0);
    EXPECT_TRUE(check_consistency(*r.sg));
    EXPECT_TRUE(check_speed_independence(*r.sg));
  }
}

// ----- bit-sliced minimizer vs retained row-major reference ----------------

TEST(PerfEquiv, BitSlicedExpandMatchesReferenceRandomized) {
  Rng rng(20260728);
  for (const int num_vars : {1, 2, 7, 13, 63, 64}) {
    const std::uint64_t mask =
        num_vars >= 64 ? ~std::uint64_t{0}
                       : ((std::uint64_t{1} << num_vars) - 1);
    const std::uint64_t space =
        num_vars >= 12 ? 4096 : (std::uint64_t{1} << num_vars);
    for (int round = 0; round < 6; ++round) {
      // Clustered draws (a base code with a few flipped bits) so cubes
      // genuinely expand instead of staying near-minterms.
      const std::uint64_t base = rng.next() & mask;
      auto draw = [&] {
        std::uint64_t c = base;
        const int flips =
            1 + static_cast<int>(rng.below(std::max(2, num_vars / 2)));
        for (int f = 0; f < flips; ++f)
          c ^= std::uint64_t{1} << rng.below(static_cast<std::uint64_t>(num_vars));
        return c & mask;
      };
      std::set<std::uint64_t> on_set, off_set;
      const std::size_t n_on = 1 + rng.below(std::min<std::uint64_t>(40, space / 2));
      const std::size_t n_off = 1 + rng.below(std::min<std::uint64_t>(40, space / 2));
      for (int tries = 0; on_set.size() < n_on && tries < 4096; ++tries)
        on_set.insert(draw());
      for (int tries = 0; off_set.size() < n_off && tries < 4096; ++tries) {
        const std::uint64_t c = draw();
        if (!on_set.count(c)) off_set.insert(c);
      }
      if (off_set.empty()) {
        // n_on <= space/2, so a free code always exists.
        for (std::uint64_t c = 0;; ++c) {
          if (!on_set.count(c & mask)) {
            off_set.insert(c & mask);
            break;
          }
        }
      }

      const std::vector<std::uint64_t> on(on_set.begin(), on_set.end());
      const std::vector<std::uint64_t> off(off_set.begin(), off_set.end());

      // Expansion level: the bit-sliced trial sequence must produce the
      // same cube, literal for literal, for every on-minterm and order.
      const BitSlicedOffSet sliced(off, num_vars);
      std::vector<int> order(static_cast<std::size_t>(num_vars));
      std::iota(order.begin(), order.end(), 0);
      std::vector<int> reversed(order.rbegin(), order.rend());
      for (const auto code : on) {
        EXPECT_EQ(expand_minterm(code, sliced, order),
                  expand_minterm(code, off, num_vars, order))
            << "vars=" << num_vars << " code=" << code;
        EXPECT_EQ(expand_minterm(code, sliced, reversed),
                  expand_minterm(code, off, num_vars, reversed));
      }
      // Degenerate input: expanding an off-minterm keeps the full minterm.
      EXPECT_EQ(expand_minterm(off[0], sliced, order),
                Cube::minterm(off[0], num_vars));
      EXPECT_EQ(expand_minterm(off[0], off, num_vars, order),
                Cube::minterm(off[0], num_vars));

      // Cover level: both engines, one and two passes, literal-for-literal.
      for (int passes : {1, 2}) {
        MinimizeOptions fast, ref;
        fast.passes = ref.passes = passes;
        ref.reference_engine = true;
        const Cover a = minimize_onoff(on, off, num_vars, fast);
        const Cover b = minimize_onoff(on, off, num_vars, ref);
        EXPECT_EQ(a.cubes(), b.cubes())
            << "vars=" << num_vars << " passes=" << passes;
        for (const auto code : on) EXPECT_TRUE(a.eval(code));
        for (const auto code : off) EXPECT_FALSE(a.eval(code));
      }
    }
  }
}

// ----- priority-heap irredundant vs retained rescan-all reference ----------

TEST(PerfEquiv, IrredundantHeapMatchesReferenceRandomized) {
  Rng rng(20260729);
  for (const int num_vars : {1, 3, 5, 8, 13, 63, 64}) {
    const std::uint64_t mask =
        num_vars >= 64 ? ~std::uint64_t{0}
                       : ((std::uint64_t{1} << num_vars) - 1);
    for (int round = 0; round < 8; ++round) {
      // Random candidate cubes, then on-minterms sampled from inside them
      // so every minterm is coverable by construction.  Duplicate cubes
      // stay in the pool on purpose: the tie-break (gain, literals, lowest
      // index) must agree even between identical candidates.
      const std::size_t n_cubes = 2 + rng.below(24);
      std::vector<Cube> cubes;
      for (std::size_t i = 0; i < n_cubes; ++i) {
        Cube c = Cube::one();
        const int lits =
            static_cast<int>(rng.below(static_cast<std::uint64_t>(
                std::min(num_vars, 8) + 1)));
        for (int l = 0; l < lits; ++l)
          c = c.with_literal(
              static_cast<int>(rng.below(static_cast<std::uint64_t>(num_vars))),
              rng.below(2) == 0);
        cubes.push_back(c);
      }
      std::set<std::uint64_t> on_set;
      // Past 64 minterms the packed coverage rows span multiple words, so
      // large draws also exercise the tail-mask and per-word popcount
      // paths (small num_vars caps out at its 2^n code space).
      const std::size_t n_on = 1 + rng.below(round % 2 ? 200 : 40);
      for (std::size_t m = 0; m < n_on; ++m) {
        const Cube& c = cubes[rng.below(cubes.size())];
        // A random code inside c: free bits random, cared bits from val.
        on_set.insert(((rng.next() & ~c.care) | c.val) & mask);
      }
      const std::vector<std::uint64_t> on(on_set.begin(), on_set.end());

      const std::vector<Cube> heap_sel = irredundant(cubes, on, false);
      const std::vector<Cube> ref_sel = irredundant(cubes, on, true);
      // Identical selection implies identical cover cost; check both
      // anyway so a future tie-break change fails with a useful message.
      EXPECT_EQ(heap_sel, ref_sel) << "vars=" << num_vars;
      auto lits = [](const std::vector<Cube>& v) {
        int n = 0;
        for (const auto& c : v) n += c.num_literals();
        return n;
      };
      EXPECT_EQ(lits(heap_sel), lits(ref_sel));
      const Cover cover(num_vars, heap_sel);
      for (const auto code : on) EXPECT_TRUE(cover.eval(code));
    }
  }
}

TEST(PerfEquiv, IrredundantBothEnginesRejectUncoverableOnSet) {
  // Minterm 0b11 is covered by no candidate: both engines must throw the
  // same way instead of looping or under-covering.
  const std::vector<Cube> cubes{Cube::literal(0, false),
                                Cube::literal(1, false)};
  const std::vector<std::uint64_t> on{0b00, 0b11};
  EXPECT_THROW(irredundant(cubes, on, false), Error);
  EXPECT_THROW(irredundant(cubes, on, true), Error);
}

// ----- InsertionPlanner vs the retained one-shot reference -----------------

void expect_plan_equal(const std::optional<InsertionPlan>& a,
                       const std::optional<InsertionPlan>& b,
                       const std::string& ctx) {
  ASSERT_EQ(a.has_value(), b.has_value()) << ctx;
  if (!a) return;
  EXPECT_EQ(a->f, b->f) << ctx;
  EXPECT_EQ(a->f_reset, b->f_reset) << ctx;
  EXPECT_EQ(a->latch, b->latch) << ctx;
  EXPECT_EQ(a->s1, b->s1) << ctx;
  EXPECT_EQ(a->er_rise, b->er_rise) << ctx;
  EXPECT_EQ(a->er_fall, b->er_fall) << ctx;
  EXPECT_EQ(a->initial_value, b->initial_value) << ctx;
}

TEST(PerfEquiv, PlannerStateLatchMatchesOneShot) {
  // One shared planner answering every (set, reset) switching-region pair —
  // memo hits included (each query is issued twice) — must return exactly
  // what a fresh one-shot plan returns, failure strings included.
  std::vector<StateGraph> graphs;
  for (int segments : {2, 3, 4})
    graphs.push_back(bench::make_csc_ring(segments).to_state_graph());
  graphs.push_back(bench::make_csc_diamond_ring(3, 3).to_state_graph());
  graphs.push_back(bench::make_parallelizer(4).to_state_graph());
  graphs.push_back(bench::make_combo(3, 3).to_state_graph());
  graphs.push_back(bench::make_hazard().to_state_graph());

  for (const StateGraph& sg : graphs) {
    const std::vector<DynBitset> region = all_switching_regions(sg);
    std::vector<std::size_t> occupied;
    for (std::size_t e = 0; e < region.size(); ++e)
      if (region[e].any()) occupied.push_back(e);

    InsertionPlanner planner(sg);
    std::size_t checked = 0;
    for (const std::size_t e1 : occupied) {
      for (const std::size_t e2 : occupied) {
        if (e1 == e2 || checked >= 256) continue;
        ++checked;
        const std::string ctx =
            "events " + std::to_string(e1) + "/" + std::to_string(e2);
        InsertionFailure shared_why, one_shot_why;
        const auto shared =
            planner.plan_state_latch(region[e1], region[e2], &shared_why);
        const auto one_shot = plan_state_latch_insertion(
            sg, region[e1], region[e2], &one_shot_why);
        expect_plan_equal(shared, one_shot, ctx);
        if (!shared) EXPECT_EQ(shared_why.why, one_shot_why.why) << ctx;
        // Second query hits the memo; the answer must not drift.
        const auto again =
            planner.plan_state_latch(region[e1], region[e2], &shared_why);
        expect_plan_equal(again, one_shot, ctx + " (memoized)");
      }
    }
    EXPECT_GT(planner.region_memo_hits() + planner.finish_memo_hits(), 0u);
  }
}

TEST(PerfEquiv, PlannerStateLatchMatchesOneShotOnCorpus) {
  // Same pin over the 32-spec corpus, capped per spec to keep it fast.
  for (const auto& entry : bench::table1_suite()) {
    const StateGraph sg = entry.stg.to_state_graph();
    const std::vector<DynBitset> region = all_switching_regions(sg);
    std::vector<std::size_t> occupied;
    for (std::size_t e = 0; e < region.size(); ++e)
      if (region[e].any()) occupied.push_back(e);

    InsertionPlanner planner(sg);
    std::size_t checked = 0;
    for (const std::size_t e1 : occupied) {
      for (const std::size_t e2 : occupied) {
        if (e1 == e2 || checked >= 64) continue;
        ++checked;
        InsertionFailure shared_why, one_shot_why;
        const auto shared =
            planner.plan_state_latch(region[e1], region[e2], &shared_why);
        const auto one_shot = plan_state_latch_insertion(
            sg, region[e1], region[e2], &one_shot_why);
        expect_plan_equal(shared, one_shot,
                          entry.name + " " + std::to_string(e1) + "/" +
                              std::to_string(e2));
        if (!shared) EXPECT_EQ(shared_why.why, one_shot_why.why) << entry.name;
      }
    }
  }
}

TEST(PerfEquiv, PlannerCoverMatchesOneShotRandomized) {
  Rng rng(20260730);
  const StateGraph graphs[] = {
      bench::make_parallelizer(4).to_state_graph(),
      bench::make_combo(3, 3).to_state_graph(),
      bench::make_hazard().to_state_graph(),
  };
  for (const StateGraph& sg : graphs) {
    InsertionPlanner planner(sg);
    for (int round = 0; round < 64; ++round) {
      // Random 1-3 literal cube divisor, plus its complement-literal
      // partner as a latch reset — the same shapes the mapper generates.
      Cube cube = Cube::one();
      Cube partner = Cube::one();
      const int lits = 1 + static_cast<int>(rng.below(3));
      for (int l = 0; l < lits; ++l) {
        const int var =
            static_cast<int>(rng.below(static_cast<std::uint64_t>(
                sg.num_signals())));
        const bool pol = rng.below(2) == 0;
        cube = cube.with_literal(var, pol);
        partner = partner.with_literal(var, !pol);
      }
      const Cover f(sg.num_signals(), {cube});
      const Cover f_reset(sg.num_signals(), {partner});

      InsertionFailure shared_why, one_shot_why;
      const auto comb = planner.plan(f, &shared_why);
      const auto comb_ref = plan_insertion(sg, f, &one_shot_why);
      expect_plan_equal(comb, comb_ref, "combinational");
      if (!comb) EXPECT_EQ(shared_why.why, one_shot_why.why);

      const auto latch = planner.plan_latch(f, f_reset, &shared_why);
      const auto latch_ref =
          plan_latch_insertion(sg, f, f_reset, &one_shot_why);
      expect_plan_equal(latch, latch_ref, "latch");
      if (!latch) EXPECT_EQ(shared_why.why, one_shot_why.why);
    }
  }
}

TEST(PerfEquiv, ResolveCscSharedPlannerBitIdentical) {
  // The shared-planner resolve_csc must match the retained one-shot
  // planning path result for result (the memo only caches, it never
  // reorders candidates).
  std::vector<StateGraph> graphs;
  for (int segments : {2, 3, 4})
    graphs.push_back(bench::make_csc_ring(segments).to_state_graph());
  graphs.push_back(bench::make_csc_diamond_ring(2, 2).to_state_graph());
  graphs.push_back(bench::make_csc_diamond_ring(3, 3).to_state_graph());
  graphs.push_back(bench::make_parallelizer(4).to_state_graph());
  for (const StateGraph& sg : graphs) {
    CscOptions reference;
    reference.reference_planner = true;
    expect_csc_result_identical(resolve_csc(sg), resolve_csc(sg, reference));
  }
}

// ----- lazy InsertionPreview / InsertionVerifier vs materialization --------

std::vector<StateGraph> insertion_test_graphs() {
  std::vector<StateGraph> graphs;
  for (int segments : {2, 3, 4})
    graphs.push_back(bench::make_csc_ring(segments).to_state_graph());
  graphs.push_back(bench::make_csc_diamond_ring(2, 2).to_state_graph());
  graphs.push_back(bench::make_csc_diamond_ring(3, 3).to_state_graph());
  graphs.push_back(bench::make_parallelizer(4).to_state_graph());
  graphs.push_back(bench::make_hazard().to_state_graph());
  return graphs;
}

TEST(PerfEquiv, InsertionPreviewMatchesMaterializedGraph) {
  // Every query the lazy scorer asks — surviving state count, per-copy
  // reachability, per-copy enabled-event bitmaps — must equal what the
  // materialized graph and its InsertionCopies answer, for every plan of
  // every switching-region pair.
  for (const StateGraph& sg : insertion_test_graphs()) {
    const std::vector<DynBitset> region = all_switching_regions(sg);
    std::vector<const DynBitset*> occupied;
    for (const auto& r : region)
      if (r.any()) occupied.push_back(&r);

    InsertionPlanner planner(sg);
    std::size_t checked = 0;
    for (const DynBitset* r1 : occupied) {
      for (const DynBitset* r2 : occupied) {
        if (r1 == r2 || checked >= 200) continue;
        const auto plan = planner.plan_state_latch(*r1, *r2);
        if (!plan) continue;
        ++checked;

        const InsertionPreview preview(sg, *plan);
        InsertionCopies copies;
        const StateGraph next = insert_signal(sg, *plan, "zz0", &copies);
        ASSERT_EQ(preview.num_states(), next.num_states());
        for (StateId s = 0; s < static_cast<StateId>(sg.num_states()); ++s) {
          for (const bool side : {false, true}) {
            const StateId id = side ? copies.x1[static_cast<std::size_t>(s)]
                                    : copies.x0[static_cast<std::size_t>(s)];
            ASSERT_EQ(preview.copy_reachable(s, side), id != kNoState)
                << "state " << s << " side " << side;
            if (id == kNoState) continue;
            EXPECT_EQ(preview.enabled_mask(s, side), next.enabled_mask(id))
                << "state " << s << " side " << side;
          }
        }
      }
    }
    EXPECT_GT(checked, 0u);
  }
}

TEST(PerfEquiv, InsertionVerifierMatchesFreeVerify) {
  // The memoized-baseline verifier — with and without the disturbed-signal
  // restriction — must agree with verify_insertion verdict for verdict and
  // message for message: a baseline-persistent signal outside the disturbed
  // set can never fail the after-check, so skipping it is unobservable.
  for (const StateGraph& sg : insertion_test_graphs()) {
    const std::vector<DynBitset> region = all_switching_regions(sg);
    std::vector<const DynBitset*> occupied;
    for (const auto& r : region)
      if (r.any()) occupied.push_back(&r);

    InsertionPlanner planner(sg);
    const InsertionVerifier verifier(sg);
    std::size_t checked = 0;
    for (const DynBitset* r1 : occupied) {
      for (const DynBitset* r2 : occupied) {
        if (r1 == r2 || checked >= 60) continue;
        const auto plan = planner.plan_state_latch(*r1, *r2);
        if (!plan) continue;
        ++checked;

        const StateGraph next = insert_signal(sg, *plan, "zz0");
        const DynBitset disturbed = disturbed_signals(sg, *plan);
        for (const bool require_csc : {false, true}) {
          const PropertyResult free_r = verify_insertion(sg, next, require_csc);
          const PropertyResult memo_r = verifier.verify(next, require_csc);
          const PropertyResult dist_r =
              verifier.verify(next, require_csc, &disturbed);
          EXPECT_EQ(free_r.ok, memo_r.ok);
          EXPECT_EQ(free_r.why, memo_r.why);
          EXPECT_EQ(free_r.ok, dist_r.ok);
          EXPECT_EQ(free_r.why, dist_r.why);
        }
      }
    }
    EXPECT_GT(checked, 0u);
  }
}

TEST(PerfEquiv, ResolveCscLazyMatchesReferenceRandomized) {
  // Randomized option sweeps over the conflicted families: the lazy engine
  // (copy-map scoring, winner-only materialization, deferred verification)
  // must be bit-identical to the retained eager reference engine under
  // every max_candidates truncation and ranked (rank_top_k) prefix.
  Rng rng(20260808);
  for (int round = 0; round < 12; ++round) {
    const StateGraph sg =
        (round % 2 == 0)
            ? bench::make_csc_ring(2 + static_cast<int>(rng.below(4)))
                  .to_state_graph()
            : bench::make_csc_diamond_ring(2 + static_cast<int>(rng.below(2)),
                                           2 + static_cast<int>(rng.below(2)))
                  .to_state_graph();
    ASSERT_GT(count_csc_conflicts(sg), 0);

    CscOptions opts;
    const std::size_t cand_choices[] = {16, 48, 256};
    opts.max_candidates = cand_choices[rng.below(3)];
    const std::size_t topk_choices[] = {0, 0, 4, 8};
    opts.rank_top_k = topk_choices[rng.below(4)];

    CscOptions ref = opts;
    ref.reference_planner = true;
    const CscResult lazy = resolve_csc(sg, opts);
    const CscResult eager = resolve_csc(sg, ref);
    expect_csc_result_identical(lazy, eager);

    // Work accounting: both engines score the same filter-passing
    // candidates, but only the lazy engine skips materialization for
    // non-winners.
    EXPECT_EQ(lazy.candidates_scored, eager.candidates_scored);
    EXPECT_EQ(eager.graphs_materialized, eager.candidates_scored);
    EXPECT_LE(lazy.graphs_materialized, eager.graphs_materialized);
    EXPECT_GE(lazy.graphs_materialized, lazy.signals_inserted);

    // The exhaustive order is additionally pinned against the verbatim
    // pre-optimization loop, whose verification is *not* deferred — the
    // deferred-verify path must be unobservable in the result.
    if (opts.rank_top_k == 0) {
      expect_csc_result_identical(
          lazy, reference_resolve_csc(sg, opts.max_candidates));
    }
  }
}

TEST(PerfEquiv, InferInitialCodeMatchesFullTokenGame) {
  for (const Stg& stg : family_instances()) {
    const StateGraph sg = stg.to_state_graph();
    EXPECT_EQ(stg.infer_initial_code(), sg.code(sg.initial()));
  }
  for (const auto& entry : bench::table1_suite()) {
    const StateGraph sg = entry.stg.to_state_graph();
    EXPECT_EQ(entry.stg.infer_initial_code(), sg.code(sg.initial()))
        << entry.name;
  }
}

}  // namespace
}  // namespace sitm
