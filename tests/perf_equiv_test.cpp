// Equivalence tests for the hot-path data structures: the flat-hash
// reachability store, the word-mask token game and the cached CSC conflict
// detection must produce results identical to straightforward reference
// implementations (the containers and rescans they replaced).

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "benchlib/generators.hpp"
#include "benchlib/suite.hpp"
#include "core/csc.hpp"
#include "sg/state_graph.hpp"
#include "stg/stg.hpp"

namespace sitm {
namespace {

// ----- reference reachability: std::map store, per-place token game --------

using RefMarking = std::vector<std::uint64_t>;

bool ref_marked(const RefMarking& m, PlaceId p) {
  return (m[static_cast<std::size_t>(p) >> 6] >> (p & 63)) & 1u;
}
void ref_set_token(RefMarking& m, PlaceId p, bool v) {
  const std::uint64_t bit = std::uint64_t{1} << (p & 63);
  if (v)
    m[static_cast<std::size_t>(p) >> 6] |= bit;
  else
    m[static_cast<std::size_t>(p) >> 6] &= ~bit;
}

/// The pre-optimization reachability algorithm, verbatim in structure:
/// ordered-map state store, per-place enabledness and firing loops.
StateGraph reference_state_graph(const Stg& stg) {
  RefMarking init((stg.num_places() + 63) / 64, 0);
  for (PlaceId p : stg.initial_marking()) ref_set_token(init, p, true);

  struct Node {
    RefMarking marking;
    StateCode mask;
  };
  std::map<RefMarking, StateId> ids;
  std::vector<Node> nodes;
  struct PendingArc {
    StateId from, to;
    Event event;
  };
  std::vector<PendingArc> arcs;
  std::vector<int> initial_value(stg.num_signals(), -1);

  nodes.push_back(Node{init, 0});
  ids.emplace(init, 0);
  std::vector<StateId> queue{0};

  while (!queue.empty()) {
    const StateId sid = queue.back();
    queue.pop_back();
    const Node node = nodes[sid];

    for (TransId t = 0; t < static_cast<TransId>(stg.num_transitions()); ++t) {
      bool enabled = true;
      for (PlaceId p : stg.pre_places(t))
        if (!ref_marked(node.marking, p)) {
          enabled = false;
          break;
        }
      if (!enabled || stg.pre_places(t).empty()) continue;

      const auto& tr = stg.transition(t);
      const int rel = static_cast<int>((node.mask >> tr.signal) & 1);
      const int required_initial = tr.rising ? rel : 1 - rel;
      if (initial_value[tr.signal] < 0)
        initial_value[tr.signal] = required_initial;
      EXPECT_EQ(initial_value[tr.signal], required_initial);

      RefMarking next = node.marking;
      for (PlaceId p : stg.pre_places(t)) ref_set_token(next, p, false);
      for (PlaceId p : stg.post_places(t)) {
        EXPECT_FALSE(ref_marked(next, p)) << "net not 1-safe";
        ref_set_token(next, p, true);
      }
      const StateCode next_mask = node.mask ^ (StateCode{1} << tr.signal);

      auto [it, inserted] =
          ids.emplace(next, static_cast<StateId>(nodes.size()));
      if (inserted) {
        nodes.push_back(Node{std::move(next), next_mask});
        queue.push_back(it->second);
      }
      arcs.push_back(PendingArc{sid, it->second, tr.event()});
    }
  }

  StateCode init_code = 0;
  for (int i = 0; i < stg.num_signals(); ++i)
    if (initial_value[i] == 1) init_code |= StateCode{1} << i;

  StateGraph sg;
  for (const auto& sig : stg.signals()) sg.add_signal(sig.name, sig.kind);
  for (const auto& node : nodes) sg.add_state(init_code ^ node.mask);
  for (const auto& arc : arcs) sg.add_arc(arc.from, arc.event, arc.to);
  sg.set_initial(0);
  return sg;
}

/// Structural equality including state numbering and arc order.
void expect_sg_identical(const StateGraph& a, const StateGraph& b) {
  ASSERT_EQ(a.num_states(), b.num_states());
  ASSERT_EQ(a.num_arcs(), b.num_arcs());
  EXPECT_EQ(a.initial(), b.initial());
  ASSERT_EQ(a.num_signals(), b.num_signals());
  for (int i = 0; i < a.num_signals(); ++i)
    EXPECT_EQ(a.signal(i).name, b.signal(i).name);
  for (StateId s = 0; s < static_cast<StateId>(a.num_states()); ++s) {
    EXPECT_EQ(a.code(s), b.code(s)) << "state " << s;
    const auto& ea = a.succs(s);
    const auto& eb = b.succs(s);
    ASSERT_EQ(ea.size(), eb.size()) << "state " << s;
    for (std::size_t i = 0; i < ea.size(); ++i) {
      EXPECT_EQ(ea[i].event, eb[i].event) << "state " << s << " edge " << i;
      EXPECT_EQ(ea[i].target, eb[i].target) << "state " << s << " edge " << i;
    }
  }
}

// ----- reference CSC conflict count: per-pair mask recomputation -----------

std::uint64_t ref_output_mask(const StateGraph& sg, StateId s) {
  std::uint64_t mask = 0;
  for (const auto& e : sg.succs(s)) {
    if (is_noninput(sg.signal(e.event.signal).kind))
      mask |= std::uint64_t{1}
              << (2 * (e.event.signal % 32) + (e.event.rising ? 1 : 0));
  }
  return mask;
}

int reference_csc_conflicts(const StateGraph& sg) {
  int pairs = 0;
  std::map<StateCode, std::vector<StateId>> by_code;
  for (StateId s = 0; s < static_cast<StateId>(sg.num_states()); ++s)
    by_code[sg.code(s)].push_back(s);
  for (const auto& [code, states] : by_code)
    for (std::size_t i = 0; i < states.size(); ++i)
      for (std::size_t j = i + 1; j < states.size(); ++j)
        if (ref_output_mask(sg, states[i]) != ref_output_mask(sg, states[j]))
          ++pairs;
  return pairs;
}

std::vector<Stg> family_instances() {
  std::vector<Stg> out;
  for (int k = 2; k <= 8; ++k) out.push_back(bench::make_parallelizer(k));
  for (int k = 2; k <= 8; k += 2) out.push_back(bench::make_seq_chain(k));
  for (int p = 2; p <= 5; ++p)
    for (int s = 2; s <= 4; ++s) out.push_back(bench::make_combo(p, s));
  for (int n = 2; n <= 8; n += 2) out.push_back(bench::make_pipeline(n));
  for (int k = 2; k <= 5; ++k) out.push_back(bench::make_choice_mixer(k));
  for (int k = 2; k <= 4; ++k) out.push_back(bench::make_shared_out(k));
  out.push_back(bench::make_hazard());
  return out;
}

TEST(PerfEquiv, ReachabilityMatchesReferenceOnFamilies) {
  for (const Stg& stg : family_instances()) {
    const StateGraph fast = stg.to_state_graph();
    const StateGraph ref = reference_state_graph(stg);
    expect_sg_identical(fast, ref);
  }
}

TEST(PerfEquiv, ReachabilityMatchesReferenceOnCorpus) {
  for (const auto& entry : bench::table1_suite()) {
    const StateGraph fast = entry.stg.to_state_graph();
    const StateGraph ref = reference_state_graph(entry.stg);
    expect_sg_identical(fast, ref);
  }
}

TEST(PerfEquiv, WideMarkingPathMatchesReference) {
  // Chain long enough to exceed 64 places, forcing the word-vector marking
  // path (every satellite family fits in one word).
  Stg stg;
  const int a = stg.add_signal("a", SignalKind::kInput);
  const int b = stg.add_signal("b", SignalKind::kOutput);
  std::vector<TransId> ts;
  for (int j = 0; j < 80; ++j) {
    // a+ b+ a- b- a+ ... : each signal strictly alternates polarity.
    const int sig = (j % 2) ? b : a;
    const bool rising = (j % 4) < 2;
    ts.push_back(stg.add_transition(sig, rising, j / 4 + 1));
  }
  for (std::size_t i = 0; i + 1 < ts.size(); ++i) stg.connect_tt(ts[i], ts[i + 1]);
  stg.mark_initial(stg.connect_tt(ts.back(), ts.front()));
  ASSERT_GT(stg.num_places(), 64u);

  const StateGraph fast = stg.to_state_graph();
  const StateGraph ref = reference_state_graph(stg);
  expect_sg_identical(fast, ref);
}

TEST(PerfEquiv, CscConflictCountMatchesReferenceOnFamilies) {
  for (const Stg& stg : family_instances()) {
    const StateGraph sg = stg.to_state_graph();
    EXPECT_EQ(count_csc_conflicts(sg), reference_csc_conflicts(sg));
  }
}

TEST(PerfEquiv, CscConflictCountMatchesReferenceOnCorpus) {
  for (const auto& entry : bench::table1_suite()) {
    const StateGraph sg = entry.stg.to_state_graph();
    EXPECT_EQ(count_csc_conflicts(sg), reference_csc_conflicts(sg))
        << entry.name;
  }
}

TEST(PerfEquiv, ConflictedRingMatchesReference) {
  // Guard that the CSC equivalence check exercises real conflicts (the
  // generator families are CSC-clean by construction): the classic
  // CSC-violating ring a+ b+ a- b- c+ d+ c- d-.
  Stg stg;
  const int sigs[] = {stg.add_signal("a", SignalKind::kOutput),
                      stg.add_signal("b", SignalKind::kOutput),
                      stg.add_signal("c", SignalKind::kOutput),
                      stg.add_signal("d", SignalKind::kOutput)};
  std::vector<TransId> ring;
  for (int half = 0; half < 2; ++half)
    for (bool rising : {true, false})
      for (int i = 0; i < 2; ++i)
        ring.push_back(stg.add_transition(sigs[2 * half + i], rising));
  for (std::size_t i = 0; i + 1 < ring.size(); ++i)
    stg.connect_tt(ring[i], ring[i + 1]);
  stg.mark_initial(stg.connect_tt(ring.back(), ring.front()));

  const StateGraph sg = stg.to_state_graph();
  const int fast = count_csc_conflicts(sg);
  EXPECT_GT(fast, 0);
  EXPECT_EQ(fast, reference_csc_conflicts(sg));
}

TEST(PerfEquiv, ConnectTtReusesManuallyWiredImplicitPlace) {
  // The (from, to) index must see implicit one-in/one-out places no matter
  // how they were wired — connect_tt used to find these by scanning.
  Stg stg;
  const int a = stg.add_signal("a", SignalKind::kOutput);
  const TransId up = stg.add_transition(a, true);
  const TransId down = stg.add_transition(a, false);
  const PlaceId p = stg.add_place();
  stg.connect_tp(up, p);
  stg.connect_pt(p, down);
  EXPECT_EQ(stg.connect_tt(up, down), p);
  EXPECT_EQ(stg.num_places(), 1u);
}

TEST(PerfEquiv, WideSignalMasksDoNotAlias) {
  // Regression: the old single-word output-event mask used `signal % 32`,
  // so signals 32 apart aliased onto the same bits and a conflict between
  // them was silently missed.  Two states share a code; one enables s1+,
  // the other s33+ — a real CSC conflict the 128-bit mask must count.
  StateGraph sg;
  for (int i = 0; i < 34; ++i)
    sg.add_signal("s" + std::to_string(i), SignalKind::kOutput);
  const StateId p = sg.add_state(0);
  const StateId q = sg.add_state(0);
  const StateId p2 = sg.add_state(StateCode{1} << 1);
  const StateId q2 = sg.add_state(StateCode{1} << 33);
  sg.add_arc(p, Event{1, true}, p2);
  sg.add_arc(q, Event{33, true}, q2);
  sg.set_initial(p);
  EXPECT_EQ(count_csc_conflicts(sg), 1);
}

TEST(PerfEquiv, InferInitialCodeMatchesFullTokenGame) {
  for (const Stg& stg : family_instances()) {
    const StateGraph sg = stg.to_state_graph();
    EXPECT_EQ(stg.infer_initial_code(), sg.code(sg.initial()));
  }
  for (const auto& entry : bench::table1_suite()) {
    const StateGraph sg = entry.stg.to_state_graph();
    EXPECT_EQ(entry.stg.infer_initial_code(), sg.code(sg.initial()))
        << entry.name;
  }
}

}  // namespace
}  // namespace sitm
