// Unit tests for algebraic division, kernel extraction and divisor
// generation.

#include <gtest/gtest.h>

#include <algorithm>

#include "mlogic/division.hpp"
#include "mlogic/divisors.hpp"

namespace sitm {
namespace {

// Covers in this file use up to 7 variables (DeeperKernels goes to g);
// Cube::to_string indexes this table by variable, so it must cover them all
// (one short and the render reads past the end — caught by the ASan job).
const std::vector<std::string> kNames = {"a", "b", "c", "d", "e", "f", "g"};

Cube cube(std::initializer_list<std::pair<int, bool>> lits) {
  Cube c = Cube::one();
  for (auto [v, pol] : lits) c = c.with_literal(v, pol);
  return c;
}

/// ab + ac + def  (paper Example 2 with d e f = vars 3 4 5)
Cover example2() {
  Cover f(6);
  f.add(cube({{0, true}, {1, true}}));
  f.add(cube({{0, true}, {2, true}}));
  f.add(cube({{3, true}, {4, true}, {5, true}}));
  return f;
}

TEST(Division, CubeDivision) {
  const Cover f = example2();
  const Division d = cube_division(f, cube({{0, true}}));
  // f / a = b + c, remainder def
  EXPECT_EQ(d.quotient.size(), 2u);
  EXPECT_EQ(d.remainder.size(), 1u);
  EXPECT_EQ(d.quotient.to_string(kNames), "b + c");
}

TEST(Division, NonDivisorGivesEmptyQuotient) {
  const Cover f = example2();
  const Division d = cube_division(f, cube({{0, false}}));  // a'
  EXPECT_TRUE(d.quotient.empty());
  EXPECT_EQ(d.remainder.size(), 3u);
}

TEST(Division, MultiCubeDivision) {
  const Cover f = example2();
  Cover bc(6);
  bc.add(cube({{1, true}}));
  bc.add(cube({{2, true}}));
  const Division d = algebraic_division(f, bc);
  // f / (b+c) = a, remainder def
  ASSERT_EQ(d.quotient.size(), 1u);
  EXPECT_EQ(d.quotient.cubes()[0], cube({{0, true}}));
  ASSERT_EQ(d.remainder.size(), 1u);
  EXPECT_EQ(d.remainder.cubes()[0], cube({{3, true}, {4, true}, {5, true}}));
}

TEST(Division, QuotientTimesDivisorPlusRemainderCoversF) {
  const Cover f = example2();
  Cover bc(6);
  bc.add(cube({{1, true}}));
  bc.add(cube({{2, true}}));
  const Division d = algebraic_division(f, bc);
  const Cover rebuilt = (d.quotient & bc) | d.remainder;
  EXPECT_TRUE(rebuilt.equivalent(f));
}

TEST(Division, CommonCube) {
  Cover f(4);
  f.add(cube({{0, true}, {1, true}, {2, true}}));
  f.add(cube({{0, true}, {1, true}, {3, false}}));
  EXPECT_EQ(common_cube(f), cube({{0, true}, {1, true}}));
  EXPECT_FALSE(cube_free(f));
  EXPECT_TRUE(cube_free(example2()));
}

TEST(Kernels, Example2Kernels) {
  const auto kernels = all_kernels(example2());
  // The only non-trivial kernel of ab+ac+def is (b+c) with co-kernel a
  // (plus the cover itself, which is cube-free).
  bool found_bc = false, found_self = false;
  for (const auto& k : kernels) {
    if (k.kernel.to_string(kNames) == "b + c") {
      found_bc = true;
      EXPECT_EQ(k.cokernel, cube({{0, true}}));
    }
    if (k.kernel.size() == 3) found_self = true;
  }
  EXPECT_TRUE(found_bc);
  EXPECT_TRUE(found_self);
}

TEST(Kernels, SingleCubeHasNoKernels) {
  Cover f(3);
  f.add(cube({{0, true}, {1, true}, {2, true}}));
  EXPECT_TRUE(all_kernels(f).empty());
}

TEST(Kernels, DeeperKernels) {
  // f = adf + aef + bdf + bef + cdf + cef + g  (classic example from the
  // multilevel synthesis literature: kernels include a+b+c, d+e, and f*(...)
  // variants).  Use 7 vars: a..g = 0..6.
  Cover f(7);
  for (int x : {0, 1, 2})
    for (int y : {3, 4})
      f.add(cube({{x, true}, {y, true}, {5, true}}));
  f.add(cube({{6, true}}));
  const auto kernels = all_kernels(f);
  bool found_abc = false, found_de = false;
  for (const auto& k : kernels) {
    std::string s = k.kernel.to_string(kNames);
    if (s == "a + b + c") found_abc = true;
    if (s == "d + e") found_de = true;
  }
  EXPECT_TRUE(found_abc);
  EXPECT_TRUE(found_de);
}

TEST(Divisors, PaperExample2Candidates) {
  const auto divisors = generate_divisors(example2());
  auto has = [&](const std::string& s) {
    return std::any_of(divisors.begin(), divisors.end(), [&](const Cover& d) {
      return d.to_string(kNames) == s;
    });
  };
  // Paper Example 2: kernel b+c, OR-subsets ab, ac, def, ab+ac, ab+def,
  // ac+def, AND-subsets de, df, ef.
  EXPECT_TRUE(has("b + c"));
  EXPECT_TRUE(has("a b"));
  EXPECT_TRUE(has("a c"));
  EXPECT_TRUE(has("d e f"));
  EXPECT_TRUE(has("a b + a c"));
  EXPECT_TRUE(has("a b + d e f"));
  EXPECT_TRUE(has("a c + d e f"));
  EXPECT_TRUE(has("d e"));
  EXPECT_TRUE(has("d f"));
  EXPECT_TRUE(has("e f"));
}

TEST(Divisors, SingleCubeAndSubsets) {
  // Paper hazard.g: a'dc decomposes into a'd, a'c, dc.
  Cover f(3);
  f.add(cube({{0, false}, {1, true}, {2, true}}));
  const auto divisors = generate_divisors(f);
  auto has = [&](const std::string& s) {
    return std::any_of(divisors.begin(), divisors.end(), [&](const Cover& d) {
      return d.to_string(kNames) == s;
    });
  };
  EXPECT_TRUE(has("a' b"));
  EXPECT_TRUE(has("a' c"));
  EXPECT_TRUE(has("b c"));
  EXPECT_EQ(divisors.size(), 3u);
}

TEST(Divisors, NoTrivialCandidates) {
  const auto divisors = generate_divisors(example2());
  for (const auto& d : divisors) {
    EXPECT_GE(d.num_literals(), 2);
    EXPECT_FALSE(d.equivalent(example2()));
  }
}

TEST(Divisors, TwoLiteralCubeYieldsNothing) {
  Cover f(2);
  f.add(cube({{0, true}, {1, true}}));
  EXPECT_TRUE(generate_divisors(f).empty());
}

TEST(Divisors, CandidateCapRespected) {
  // A wide cover with many subsets: the cap must hold.
  Cover f(6);
  for (int v = 0; v < 6; ++v)
    for (int w = v + 1; w < 6; ++w)
      f.add(cube({{v, true}, {w, true}}));
  DivisorOptions opts;
  opts.max_candidates = 10;
  EXPECT_LE(generate_divisors(f, opts).size(), 10u);
}

}  // namespace
}  // namespace sitm
