// Unit tests for the netlist module: complexity measures, tech_decomp
// baseline, and the gate-level speed-independence verifier.

#include <gtest/gtest.h>

#include "benchlib/generators.hpp"
#include "core/mc_cover.hpp"
#include "netlist/netlist.hpp"
#include "netlist/si_verify.hpp"
#include "netlist/tech_decomp.hpp"
#include "sg/sg_io.hpp"
#include "stg/stg.hpp"

namespace sitm {
namespace {

Cube cube(std::initializer_list<std::pair<int, bool>> lits) {
  Cube c = Cube::one();
  for (auto [v, pol] : lits) c = c.with_literal(v, pol);
  return c;
}

TEST(GateComplexity, XorIsFourLiterals) {
  // 2-input XOR: ab' + a'b; complement is ab + a'b' -- both 4 literals.
  Cover x(2);
  x.add(cube({{0, true}, {1, false}}));
  x.add(cube({{0, false}, {1, true}}));
  EXPECT_EQ(gate_complexity(x), 4);
}

TEST(GateComplexity, PaperFourLiteralExample) {
  // f = ab + ac + db + dc: 8 literals direct, complement (a'd')+(b'c') is 4.
  Cover f(4);  // a=0 b=1 c=2 d=3
  f.add(cube({{0, true}, {1, true}}));
  f.add(cube({{0, true}, {2, true}}));
  f.add(cube({{3, true}, {1, true}}));
  f.add(cube({{3, true}, {2, true}}));
  EXPECT_EQ(gate_complexity(f), 4);
}

TEST(GateComplexity, PrecomputedOverride) {
  Cover f(3);
  f.add(cube({{0, true}, {1, true}, {2, true}}));
  Cover cheap_complement(3);
  cheap_complement.add(cube({{0, false}}));
  EXPECT_EQ(gate_complexity(f, cheap_complement), 1);
  EXPECT_EQ(gate_complexity(f), 3);
}

TEST(TechDecomp, LiteralFormula) {
  Cover f(4);
  f.add(cube({{0, true}, {1, true}, {2, true}}));  // 3-lit AND: 2 gates
  EXPECT_EQ(tech_decomp2_literals(f), 4);
  f.add(cube({{3, true}}));  // + OR gate: total lits 4 -> 2*(4-1)=6
  EXPECT_EQ(tech_decomp2_literals(f), 6);
  Cover wire(2, {cube({{0, true}})});
  EXPECT_EQ(tech_decomp2_literals(wire), 1);
}

TEST(TechDecomp, GateTreeStructure) {
  const StateGraph sg = bench::make_parallelizer(4).to_state_graph();
  const Netlist netlist = synthesize_all(sg);
  const TechDecompResult result = tech_decomp2(netlist);
  EXPECT_GT(result.literals, 0);
  EXPECT_EQ(result.c_elements, netlist.num_c_elements());
  // Every emitted gate is at most 2-input.
  for (const auto& gate : result.gates) {
    if (gate.op != SimpleGate::Op::kBuf) {
      EXPECT_FALSE(gate.in0.empty());
      EXPECT_FALSE(gate.in1.empty());
    }
  }
}

TEST(SiVerify, GoldenImplementationsPass) {
  for (const Stg& stg :
       {bench::make_hazard(), bench::make_parallelizer(3),
        bench::make_seq_chain(3), bench::make_choice_mixer(2),
        bench::make_shared_out(2), bench::make_pipeline(2)}) {
    const StateGraph sg = stg.to_state_graph();
    const Netlist netlist = synthesize_all(sg);
    const SiVerifyResult result = verify_speed_independence(netlist);
    EXPECT_TRUE(result.ok) << result.why;
    EXPECT_GE(result.num_states, sg.num_states());
  }
}

TEST(SiVerify, WrongCoverConformanceCaught) {
  // A combinational cover that fires an output when the spec forbids it.
  const StateGraph sg = read_sg_string(R"(.model hs
.inputs r
.outputs a
.graph
s0 r+ s1
s1 a+ s2
s2 r- s3
s3 a- s0
.initial s0 00
.end
)");
  Netlist bad(&sg);
  SignalImpl impl;
  impl.signal = sg.find_signal("a");
  impl.combinational = true;
  impl.set = Cover(2, {Cube::literal(sg.find_signal("r"), false)});  // a = r'
  bad.add_impl(impl);
  const SiVerifyResult result = verify_speed_independence(bad);
  EXPECT_FALSE(result.ok);
}

TEST(SiVerify, HazardousDecompositionCaught) {
  // The non-SI decomposition of the hazard example: implement x's set
  // network via an intermediate signal computed as part of the cover that
  // is NOT acknowledged.  Model: x combinational with cover a'd (wrong --
  // covers states outside ER u QR).
  const StateGraph sg = bench::make_hazard().to_state_graph();
  Netlist bad(&sg);
  const Netlist good = synthesize_all(sg);
  for (const auto& impl : good.impls()) {
    if (sg.signal(impl.signal).name != "x") {
      bad.add_impl(impl);
      continue;
    }
    SignalImpl wrong = impl;
    wrong.combinational = true;
    // a'd misses the c literal: fires too early.
    wrong.set = Cover(sg.num_signals(),
                      {Cube::literal(sg.find_signal("a"), false)
                           .with_literal(sg.find_signal("d"), true)});
    bad.add_impl(wrong);
  }
  const SiVerifyResult result = verify_speed_independence(bad);
  EXPECT_FALSE(result.ok);
}

TEST(SiVerify, MissingImplementationReported) {
  const StateGraph sg = bench::make_hazard().to_state_graph();
  Netlist empty(&sg);
  const SiVerifyResult result = verify_speed_independence(empty);
  EXPECT_FALSE(result.ok);
}

TEST(Netlist, HistogramAndTotals) {
  const StateGraph sg = bench::make_parallelizer(3).to_state_graph();
  const Netlist netlist = synthesize_all(sg);
  const auto hist = netlist.complexity_histogram();
  int gates = 0, literals = 0;
  for (std::size_t n = 0; n < hist.size(); ++n) {
    gates += hist[n];
    literals += hist[n] * static_cast<int>(n);
  }
  EXPECT_GT(gates, 0);
  EXPECT_EQ(literals, netlist.total_literals());
  EXPECT_EQ(netlist.max_gate_complexity(),
            static_cast<int>(hist.size()) - 1);
}

TEST(Netlist, ToStringMentionsEverySignal) {
  const StateGraph sg = bench::make_seq_chain(2).to_state_graph();
  const Netlist netlist = synthesize_all(sg);
  const std::string text = netlist.to_string();
  for (int sig : sg.noninput_signals())
    EXPECT_NE(text.find(sg.signal(sig).name), std::string::npos);
}

}  // namespace
}  // namespace sitm
