// The staged Flow engine: stage sequencing, shared-context artifact
// ownership, stop_after / skip controls, structured reports and their JSON
// serialization, the shared spec loader, and the parallel batch driver.

#include <gtest/gtest.h>

#include <filesystem>

#include "benchlib/suite.hpp"
#include "flow/batch.hpp"
#include "flow/flow.hpp"
#include "sg/sg_io.hpp"
#include "stg/g_io.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"

#ifndef SITM_SOURCE_DIR
#define SITM_SOURCE_DIR "."
#endif

namespace sitm {
namespace {

/// Two-phase ring with a CSC conflict (phases share the all-zero code).
const char* kCscConflictSpec = R"(.model twophase
.outputs a b c d
.graph
a+ b+
b+ a-
a- b-
b- c+
c+ d+
d+ c-
c- d-
d- a+
.marking { <d-,a+> }
.end
)";

/// Free output choice: x+ and y+ compete, violating output persistency.
const char* kNonPersistentSpec = R"(.model choice
.outputs x y
.graph
p0 x+ y+
x+ x-
y+ y-
x- p0
y- p0
.marking { p0 }
.end
)";

std::string corpus_dir() {
  return (std::filesystem::path(SITM_SOURCE_DIR) / "data" / "benchmarks")
      .string();
}

TEST(Flow, FullSequenceThroughCscAndMap) {
  FlowOptions opts;
  opts.mapper.library.max_literals = 2;
  opts.capture_emitted = true;
  opts.check = true;  // opt-in stage; on here so the full sequence runs
  Flow flow(opts);
  const FlowReport report = flow.run_string(kCscConflictSpec);
  ASSERT_TRUE(report.ok) << report.failure;
  EXPECT_EQ(report.name, "twophase");

  for (const Stage s : kAllStages)
    EXPECT_TRUE(report.stage(s).ran) << stage_name(s);

  const FlowContext& ctx = flow.context();
  EXPECT_EQ(report.stage(Stage::kReachability).metric_value("states"),
            8.0);  // 4-signal ring: 8 states
  EXPECT_GT(*report.stage(Stage::kProperties)
                 .metric_value("csc_conflict_pairs"),
            0.0);
  ASSERT_TRUE(ctx.csc.has_value());
  EXPECT_GE(ctx.csc->signals_inserted, 1);
  EXPECT_EQ(report.stage(Stage::kCsc).metric_value("signals_inserted"),
            static_cast<double>(ctx.csc->signals_inserted));
  // The csc stage reused the properties stage's cached analysis and left a
  // fresh conflict-free cache for the current revision.
  ASSERT_TRUE(ctx.csc_analysis.has_value());
  EXPECT_EQ(ctx.csc_analysis->conflict_pairs, 0);

  ASSERT_TRUE(ctx.synth_netlist.has_value());
  ASSERT_TRUE(ctx.mapped.has_value());
  ASSERT_TRUE(ctx.netlist.has_value());
  EXPECT_LE(ctx.netlist->max_gate_complexity(), 2);
  ASSERT_TRUE(ctx.verify.has_value());
  EXPECT_TRUE(ctx.verify->ok) << ctx.verify->why;
  EXPECT_FALSE(ctx.emitted_verilog.empty());
  EXPECT_FALSE(ctx.emitted_sg.empty());

  // Stage wall times are measured.
  EXPECT_GE(report.stage(Stage::kSynth).wall_ms, 0.0);
  EXPECT_GT(report.total_ms, 0.0);
}

TEST(Flow, StopAfterLeavesLaterStagesUnrun) {
  FlowOptions opts;
  opts.stop_after = Stage::kSynth;
  Flow flow(opts);
  const FlowReport report = flow.run_string(kCscConflictSpec);
  ASSERT_TRUE(report.ok) << report.failure;
  EXPECT_TRUE(report.stage(Stage::kSynth).ran);
  for (const Stage s : {Stage::kDecomp, Stage::kMap, Stage::kVerify,
                        Stage::kEmit}) {
    EXPECT_FALSE(report.stage(s).ran) << stage_name(s);
    EXPECT_FALSE(report.stage(s).skipped) << stage_name(s);
  }
  // The context still owns everything produced up to the stop point.
  EXPECT_TRUE(flow.context().synth_netlist.has_value());
  EXPECT_FALSE(flow.context().mapped.has_value());
  EXPECT_FALSE(flow.context().verify.has_value());
}

TEST(Flow, SkipMapVerifiesUnconstrainedNetlist) {
  FlowOptions opts;
  opts.set_skip(Stage::kDecomp);
  opts.set_skip(Stage::kMap);
  Flow flow(opts);
  const FlowReport report = flow.run_string(kCscConflictSpec);
  ASSERT_TRUE(report.ok) << report.failure;
  EXPECT_TRUE(report.stage(Stage::kDecomp).skipped);
  EXPECT_TRUE(report.stage(Stage::kMap).skipped);
  EXPECT_FALSE(report.stage(Stage::kMap).ran);
  EXPECT_TRUE(report.stage(Stage::kVerify).ran);

  const FlowContext& ctx = flow.context();
  EXPECT_FALSE(ctx.mapped.has_value());
  EXPECT_FALSE(ctx.decomp.has_value());
  // The final netlist is the unconstrained synthesis.
  ASSERT_TRUE(ctx.netlist.has_value());
  EXPECT_EQ(ctx.netlist->to_string(), ctx.synth_netlist->to_string());
  ASSERT_TRUE(ctx.verify.has_value());
  EXPECT_TRUE(ctx.verify->ok) << ctx.verify->why;
}

TEST(Flow, SkippingSynthAutoSkipsDependents) {
  FlowOptions opts;
  opts.set_skip(Stage::kSynth);
  opts.set_skip(Stage::kMap);
  Flow flow(opts);
  const FlowReport report = flow.run_string(kCscConflictSpec);
  ASSERT_TRUE(report.ok) << report.failure;
  EXPECT_TRUE(report.stage(Stage::kSynth).skipped);
  // decomp and verify have nothing to work on: auto-skipped with warnings.
  EXPECT_TRUE(report.stage(Stage::kDecomp).skipped);
  EXPECT_FALSE(report.stage(Stage::kDecomp).warnings.empty());
  EXPECT_TRUE(report.stage(Stage::kVerify).skipped);
  EXPECT_FALSE(report.stage(Stage::kVerify).warnings.empty());
  // emit still runs (the SG itself is emittable).
  EXPECT_TRUE(report.stage(Stage::kEmit).ran);
}

TEST(Flow, EmitStillRunsAfterVerifyFailure) {
  FlowOptions opts;
  opts.verify_max_states = 1;  // force the composite exploration to fail
  opts.capture_emitted = true;
  Flow flow(opts);
  const FlowReport report = flow.run_string(kCscConflictSpec);
  ASSERT_FALSE(report.ok);
  EXPECT_EQ(report.failed_stage, Stage::kVerify);
  // The failing netlist is still emitted for inspection.
  EXPECT_TRUE(report.stage(Stage::kEmit).ran);
  EXPECT_FALSE(flow.context().emitted_verilog.empty());
}

TEST(Flow, SynthThreadsMetricReportsResolvedWorkers) {
  FlowOptions opts;
  opts.mc.threads = 64;
  opts.stop_after = Stage::kSynth;
  Flow flow(opts);
  const FlowReport report = flow.run_string(kCscConflictSpec);
  ASSERT_TRUE(report.ok) << report.failure;
  // twophase + csc0: 5 non-input signals, so only 5 of the 64 requested
  // workers can ever run — the metric records the resolved count.
  EXPECT_EQ(report.stage(Stage::kSynth).metric_value("threads"), 5.0);
  EXPECT_EQ(report.stage(Stage::kSynth).metric_value("signals"), 5.0);
}

TEST(Flow, PropertyViolationFailsThePropertiesStage) {
  Flow flow;
  const FlowReport report = flow.run_string(kNonPersistentSpec);
  ASSERT_FALSE(report.ok);
  EXPECT_EQ(report.failed_stage, Stage::kProperties);
  EXPECT_FALSE(report.failure.empty());
  // All four SI metrics were still recorded before the failure.
  const auto& sr = report.stage(Stage::kProperties);
  ASSERT_TRUE(sr.metric_value("output_persistency").has_value());
  EXPECT_EQ(*sr.metric_value("consistency"), 1.0);
  // Later stages never ran.
  for (const Stage s : {Stage::kCsc, Stage::kSynth, Stage::kMap,
                        Stage::kVerify})
    EXPECT_FALSE(report.stage(s).ran) << stage_name(s);
}

TEST(Flow, UnmappableSpecFailsTheMapStage) {
  FlowOptions opts;
  opts.mapper.library.max_literals = 1;  // nothing nontrivial fits
  opts.mapper.max_insertions = 4;
  Flow flow(opts);
  const FlowReport report = flow.run_string(kCscConflictSpec);
  ASSERT_FALSE(report.ok);
  EXPECT_EQ(report.failed_stage, Stage::kMap);
  // synth/decomp results survive the later failure.
  EXPECT_TRUE(flow.context().synth_netlist.has_value());
  EXPECT_FALSE(report.stage(Stage::kVerify).ran);
}

TEST(Flow, ReportSerializesToJson) {
  FlowOptions opts;
  opts.mc.threads = 2;
  Flow flow(opts);
  const FlowReport report = flow.run_string(kCscConflictSpec);
  ASSERT_TRUE(report.ok) << report.failure;
  const std::string json = report.to_json_string();
  EXPECT_NE(json.find("\"name\": \"twophase\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"stage\": \"synth\""), std::string::npos);
  EXPECT_NE(json.find("\"csc_conflict_pairs\""), std::string::npos);
  EXPECT_NE(json.find("\"wall_ms\""), std::string::npos);
  // Json escaping round-trip basics.
  EXPECT_EQ(Json::escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  // Failure reports carry the failed stage.
  Flow bad;
  const std::string bad_json =
      bad.run_string(kNonPersistentSpec).to_json_string();
  EXPECT_NE(bad_json.find("\"failed_stage\": \"properties\""),
            std::string::npos)
      << bad_json;
}

TEST(Flow, JsonEscapePreservesNonAsciiBytes) {
  // Bytes >= 0x80 (UTF-8 warning text, signal names, file paths) must pass
  // through verbatim: with a signed char they used to sign-extend through
  // \u%04x into garbage like "￿ffe9".
  EXPECT_EQ(Json::escape("caf\xc3\xa9"), "caf\xc3\xa9");
  EXPECT_EQ(Json::escape("\xe9"), "\xe9");  // lone high byte, still verbatim
  EXPECT_EQ(Json::escape(std::string_view("\x01\x1f", 2)), "\\u0001\\u001f");
  EXPECT_EQ(Json::escape("\x80").find("ffff"), std::string::npos);

  // Round trip through a report: non-ASCII warning text survives into the
  // dumped JSON byte for byte, control bytes as 4-digit escapes.
  FlowReport report;
  report.name = "sp\xc3\xa9" "c";
  report.stage(Stage::kSynth).warnings.push_back(
      "temp\xc3\xa9rature \xe2\x89\xa4 0\x01");
  const std::string json = report.to_json_string();
  EXPECT_NE(json.find("\"sp\xc3\xa9" "c\""), std::string::npos) << json;
  EXPECT_NE(json.find("temp\xc3\xa9rature \xe2\x89\xa4 0\\u0001"),
            std::string::npos)
      << json;
  EXPECT_EQ(json.find("ffff"), std::string::npos) << json;
}

TEST(Flow, RunSpecAndRunStateGraphRecordTheInputSpine) {
  // Pre-parsed suite entry.
  Spec spec;
  spec.name = "half";
  spec.stg = bench::suite_benchmark("half").stg;
  Flow flow;
  const FlowReport report = flow.run_spec(std::move(spec));
  ASSERT_TRUE(report.ok) << report.failure;
  EXPECT_TRUE(report.stage(Stage::kLoad).ran);
  ASSERT_TRUE(report.stage(Stage::kLoad).metric_value("transitions"));

  // Explicit SG input.
  const StateGraph sg = bench::suite_benchmark("half").stg.to_state_graph();
  Flow flow2;
  const FlowReport report2 = flow2.run_state_graph(sg, "half-sg");
  ASSERT_TRUE(report2.ok) << report2.failure;
  EXPECT_EQ(report2.name, "half-sg");
  EXPECT_EQ(report2.stage(Stage::kReachability).metric_value("states"),
            static_cast<double>(sg.num_states()));
}

TEST(Flow, SymbolicCrossCheckOwnsTheBddManager) {
  FlowOptions opts;
  opts.symbolic_check = true;
  opts.stop_after = Stage::kReachability;
  Flow flow(opts);
  const FlowReport report = flow.run_string(kCscConflictSpec);
  ASSERT_TRUE(report.ok) << report.failure;
  const FlowContext& ctx = flow.context();
  ASSERT_TRUE(ctx.symbolic.has_value());
  ASSERT_NE(ctx.bdd, nullptr);  // the manager outlives the stage
  EXPECT_EQ(ctx.symbolic->num_markings,
            static_cast<double>(ctx.sg->num_states()));
  EXPECT_TRUE(report.stage(Stage::kReachability).warnings.empty());
}

// ----- shared loader ---------------------------------------------------

TEST(Loader, SniffsFormatFromExtensionAndContent) {
  const StateGraph sg = bench::suite_benchmark("half").stg.to_state_graph();
  const std::string sg_text = write_sg_string(sg, "half");
  // No extension: the .initial directive marks the .sg format.
  const Spec from_content = load_spec_string(sg_text);
  EXPECT_EQ(from_content.format, SpecFormat::kSg);
  ASSERT_TRUE(from_content.sg.has_value());
  EXPECT_EQ(from_content.sg->num_states(), sg.num_states());

  const Spec g_spec = load_spec_string(kCscConflictSpec);
  EXPECT_EQ(g_spec.format, SpecFormat::kG);
  ASSERT_TRUE(g_spec.stg.has_value());
  EXPECT_EQ(g_spec.name, "twophase");

  // Extension wins over content probing.
  EXPECT_EQ(sniff_spec_format("x.sg", kCscConflictSpec), SpecFormat::kSg);
  EXPECT_EQ(sniff_spec_format("x.g", sg_text), SpecFormat::kG);
}

TEST(Loader, LoadsCorpusFilesFromDisk) {
  const Spec spec = load_spec_file(corpus_dir() + "/vbe5b.g");
  EXPECT_EQ(spec.format, SpecFormat::kG);
  EXPECT_EQ(spec.name, "vbe5b");
  EXPECT_THROW(load_spec_file(corpus_dir() + "/does-not-exist.g"), Error);
}

// ----- parser location context ----------------------------------------

TEST(ParseErrors, GReaderReportsLineAndColumn) {
  const char* bad = ".model m\n.outputs a\n.graph\na+ zz+\n.marking { <a+,zz+> }\n.end\n";
  try {
    read_g_string(bad);
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 4);
    EXPECT_GT(e.column(), 1);
    EXPECT_NE(std::string(e.what()).find("line 4"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("zz+"), std::string::npos);
  }
}

TEST(ParseErrors, SgReaderReportsLineAndColumn) {
  const char* bad =
      ".model m\n.outputs a\n.graph\ns0 a+ s1\ns1 b- s0\n.initial s0 0\n.end\n";
  try {
    read_sg_string(bad);
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 5);    // the arc with the unknown signal b
    EXPECT_EQ(e.column(), 4);  // ...and its event token "b-"
    EXPECT_NE(std::string(e.what()).find("line 5, col 4"), std::string::npos)
        << e.what();
  }
  try {
    read_sg_string(".model m\n.outputs a\n.graph\ns0 a+\n.end\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 4);  // graph line with the wrong arity
    EXPECT_EQ(e.column(), 1);
  }
  // The .initial code is pinpointed too (here: length != signal count).
  try {
    read_sg_string(
        ".model m\n.outputs a b\n.graph\ns0 a+ s1\ns1 a- s0\n"
        ".initial s0 011\n.end\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 6);
    EXPECT_EQ(e.column(), 13);  // the "011" token
  }
}

// ----- batch driver ----------------------------------------------------

TEST(Batch, SuiteSubsetDeterministicAcrossThreadCounts) {
  const std::vector<std::string> names = {"half", "hazard", "chu133",
                                          "vbe5c", "rcv-setup"};
  BatchOptions serial;
  serial.threads = 1;
  const BatchResult ref = run_batch_suite(names, serial);
  ASSERT_EQ(ref.items.size(), names.size());
  EXPECT_TRUE(ref.all_ok());

  for (const int threads : {2, 4}) {
    BatchOptions opts;
    opts.threads = threads;
    const BatchResult got = run_batch_suite(names, opts);
    ASSERT_EQ(got.items.size(), ref.items.size());
    for (std::size_t i = 0; i < got.items.size(); ++i) {
      EXPECT_EQ(got.items[i].label, ref.items[i].label);  // input order kept
      EXPECT_EQ(got.items[i].report.ok, ref.items[i].report.ok);
      // The work is deterministic even though the scheduling is not.
      EXPECT_EQ(got.items[i].report.stage(Stage::kSynth).metrics,
                ref.items[i].report.stage(Stage::kSynth).metrics)
          << got.items[i].label;
    }
  }
}

TEST(Batch, RunsSpecFilesFromDirectory) {
  const auto files = collect_spec_files(corpus_dir());
  EXPECT_EQ(files.size(), 32u);
  EXPECT_THROW(collect_spec_files(corpus_dir() + "/nope"), Error);

  // A cheap slice of the corpus through synth only.
  BatchOptions opts;
  opts.threads = 2;
  opts.flow.stop_after = Stage::kSynth;
  const std::vector<std::string> subset(files.begin(), files.begin() + 4);
  const BatchResult result = run_batch_files(subset, opts);
  EXPECT_TRUE(result.all_ok());
  EXPECT_EQ(result.num_ok, 4);
  for (const auto& item : result.items)
    EXPECT_FALSE(item.report.stage(Stage::kMap).ran) << item.label;
}

TEST(Batch, ZeroThreadsClampsToAtLeastOneWorker) {
  // 0 means "one per hardware core", and hardware_concurrency() may itself
  // report 0 ("unknown"): both must resolve to >= 1 worker, never to a
  // zero-width pool that would hang or skip the work.
  EXPECT_GE(resolve_worker_threads(0, 5), 1);
  EXPECT_LE(resolve_worker_threads(0, 5), 5);
  EXPECT_GE(resolve_worker_threads(-7, 5), 1);  // defensive, same clamp
  EXPECT_EQ(resolve_worker_threads(3, 0), 0);   // no work, no workers
  EXPECT_EQ(resolve_worker_threads(8, 3), 3);

  // End to end: --threads 0 at both pool levels still runs every item.
  BatchOptions opts;
  opts.threads = 0;
  opts.flow.mc.threads = 0;
  opts.flow.stop_after = Stage::kSynth;
  const BatchResult result = run_batch_suite({"half", "hazard"}, opts);
  EXPECT_EQ(result.num_ok, 2);
  EXPECT_TRUE(result.all_ok());
}

TEST(Batch, AggregateJsonAndFailureAccounting) {
  BatchOptions opts;
  opts.flow.stop_after = Stage::kSynth;
  int progress_calls = 0;
  opts.on_report = [&](const FlowReport&) { ++progress_calls; };
  // An unknown suite name fails its item but not the batch.
  const BatchResult result =
      run_batch_suite({"half", "definitely-not-a-benchmark"}, opts);
  EXPECT_EQ(progress_calls, 2);
  EXPECT_EQ(result.num_ok, 1);
  EXPECT_EQ(result.num_failed, 1);
  EXPECT_FALSE(result.all_ok());
  EXPECT_TRUE(result.items[0].report.ok);
  EXPECT_FALSE(result.items[1].report.ok);

  const std::string json = result.to_json().dump(2);
  EXPECT_NE(json.find("\"specs\": 2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"failed\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"label\": \"half\""), std::string::npos);
}

}  // namespace
}  // namespace sitm
