// Property-based tests: invariants checked over parameterized sweeps of the
// generator families and randomized divisors.

#include <gtest/gtest.h>

#include <cstdint>
#include <tuple>

#include "benchlib/generators.hpp"
#include "core/insertion.hpp"
#include "core/mapper.hpp"
#include "core/mc_cover.hpp"
#include "mlogic/divisors.hpp"
#include "netlist/si_verify.hpp"
#include "sg/properties.hpp"
#include "stg/stg.hpp"
#include "util/rng.hpp"

namespace sitm {
namespace {

// ------------------------------------------------------------------ sweeps

using FamilyParam = std::tuple<std::string, int>;

StateGraph build_family(const FamilyParam& param) {
  const auto& [family, size] = param;
  if (family == "pipeline") return bench::make_pipeline(size).to_state_graph();
  if (family == "parallelizer")
    return bench::make_parallelizer(size).to_state_graph();
  if (family == "seq_chain") return bench::make_seq_chain(size).to_state_graph();
  if (family == "choice_mixer")
    return bench::make_choice_mixer(size).to_state_graph();
  if (family == "shared_out")
    return bench::make_shared_out(size).to_state_graph();
  return bench::make_combo(size, size).to_state_graph();
}

class FamilySweep : public ::testing::TestWithParam<FamilyParam> {};

TEST_P(FamilySweep, SpecificationInvariants) {
  const StateGraph sg = build_family(GetParam());
  EXPECT_TRUE(check_consistency(sg));
  EXPECT_TRUE(check_speed_independence(sg));
  EXPECT_TRUE(check_csc(sg));
  // Reachability: every state reachable (generators emit live cycles).
  EXPECT_EQ(sg.reachable().count(), sg.num_states());
}

TEST_P(FamilySweep, SynthesisInvariants) {
  const StateGraph sg = build_family(GetParam());
  std::vector<SignalSynthesis> syntheses;
  const Netlist netlist = synthesize_all(sg, {}, &syntheses);
  // Every non-input signal implemented; covers obey MC semantically.
  for (const auto& synth : syntheses) {
    const DynBitset er = union_er(sg, synth.set.regions);
    er.for_each([&](std::size_t s) {
      EXPECT_TRUE(synth.set.cover.eval(sg.code(static_cast<StateId>(s))));
    });
    const DynBitset er_fall = union_er(sg, synth.reset.regions);
    er_fall.for_each([&](std::size_t s) {
      EXPECT_TRUE(synth.reset.cover.eval(sg.code(static_cast<StateId>(s))));
    });
    // Set and reset covers never both 1 on a reachable state (one-hot).
    sg.reachable().for_each([&](std::size_t s) {
      const StateCode code = sg.code(static_cast<StateId>(s));
      EXPECT_FALSE(synth.set.cover.eval(code) && synth.reset.cover.eval(code))
          << sg.signal(synth.signal).name << " state "
          << sg.code_string(static_cast<StateId>(s));
    });
  }
  // The synthesized netlist is SI and conformant by construction.
  const SiVerifyResult verify = verify_speed_independence(netlist);
  EXPECT_TRUE(verify.ok) << verify.why;
}

TEST_P(FamilySweep, InsertionInvariants) {
  const StateGraph sg = build_family(GetParam());
  std::vector<SignalSynthesis> syntheses;
  synthesize_all(sg, {}, &syntheses);
  int planned = 0;
  for (const auto& synth : syntheses) {
    for (const EventCover* ec : {&synth.set, &synth.reset}) {
      for (const Cover& f : generate_divisors(ec->cover)) {
        const auto plan = plan_insertion(sg, f);
        if (!plan) continue;
        ++planned;
        // Structural invariants of a valid plan.
        EXPECT_TRUE(plan->er_rise.subset_of(plan->s1));
        EXPECT_TRUE(plan->er_fall.disjoint(plan->s1));
        EXPECT_TRUE(plan->er_rise.disjoint(plan->er_fall));
        // Insertion preserves all behavioural properties.
        const StateGraph next = insert_signal(sg, *plan, "prop");
        const auto check = verify_insertion(sg, next);
        EXPECT_TRUE(check.ok) << check.why;
        if (planned >= 8) return;  // bound runtime per instance
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, FamilySweep,
    ::testing::Values(FamilyParam{"pipeline", 2}, FamilyParam{"pipeline", 3},
                      FamilyParam{"parallelizer", 2},
                      FamilyParam{"parallelizer", 4},
                      FamilyParam{"seq_chain", 3}, FamilyParam{"seq_chain", 5},
                      FamilyParam{"choice_mixer", 2},
                      FamilyParam{"choice_mixer", 4},
                      FamilyParam{"shared_out", 2},
                      FamilyParam{"shared_out", 3}, FamilyParam{"combo", 2},
                      FamilyParam{"combo", 3}),
    [](const ::testing::TestParamInfo<FamilyParam>& info) {
      return std::get<0>(info.param) + "_" +
             std::to_string(std::get<1>(info.param));
    });

// ------------------------------------------------------ randomized divisors

TEST(RandomDivisors, PlannedInsertionsAlwaysVerify) {
  Rng rng(2026);
  const StateGraph sg = bench::make_combo(3, 2).to_state_graph();
  int tried = 0, valid = 0;
  while (tried < 60) {
    // Random 2-3 literal cube over non-input signals.
    Cube c = Cube::one();
    const int lits = 2 + static_cast<int>(rng.below(2));
    for (int i = 0; i < lits; ++i) {
      const int v = static_cast<int>(rng.below(sg.num_signals()));
      c = c.with_literal(v, rng.chance(1, 2));
    }
    ++tried;
    const Cover f(sg.num_signals(), {c});
    const auto plan = plan_insertion(sg, f);
    if (!plan) continue;
    ++valid;
    const StateGraph next = insert_signal(sg, *plan, "rnd");
    const auto check = verify_insertion(sg, next);
    EXPECT_TRUE(check.ok) << "divisor failed: " << check.why;
  }
  // The generator families admit at least some random legal insertions.
  EXPECT_GT(valid, 0);
}

TEST(MapperSweep, LibraryMonotonicity) {
  // Larger libraries can only make instances easier (never fewer solved,
  // never more insertions).
  for (const Stg& stg : {bench::make_parallelizer(4), bench::make_combo(2, 3),
                         bench::make_shared_out(2)}) {
    const StateGraph sg = stg.to_state_graph();
    int prev_insertions = INT32_MAX;
    bool prev_ok = false;
    for (int lib = 2; lib <= 4; ++lib) {
      MapperOptions opts;
      opts.library.max_literals = lib;
      const MapResult r = technology_map(sg, opts);
      if (prev_ok) {
        EXPECT_TRUE(r.implementable);
      }
      if (r.implementable && prev_ok) {
        EXPECT_LE(r.signals_inserted, prev_insertions);
      }
      if (r.implementable) {
        prev_ok = true;
        prev_insertions = r.signals_inserted;
      }
    }
  }
}

}  // namespace
}  // namespace sitm
