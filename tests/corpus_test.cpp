// Loads every .g file shipped in data/benchmarks from disk — exercises the
// real file path of the parsers and pins the corpus to the generators.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "benchlib/suite.hpp"
#include "sg/properties.hpp"
#include "stg/g_io.hpp"

#ifndef SITM_SOURCE_DIR
#define SITM_SOURCE_DIR "."
#endif

namespace sitm {
namespace {

std::filesystem::path corpus_dir() {
  return std::filesystem::path(SITM_SOURCE_DIR) / "data" / "benchmarks";
}

std::string slurp(const std::filesystem::path& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(Corpus, DirectoryComplete) {
  int count = 0;
  for (const auto& entry : std::filesystem::directory_iterator(corpus_dir()))
    if (entry.path().extension() == ".g") ++count;
  EXPECT_EQ(count, 32);
}

TEST(Corpus, EveryFileParsesAndMatchesGenerator) {
  for (const auto& name : bench::suite_names()) {
    const auto path = corpus_dir() / (name + ".g");
    ASSERT_TRUE(std::filesystem::exists(path)) << path;
    std::string model;
    const Stg from_file = read_g_string(slurp(path), &model);
    EXPECT_EQ(model, name);

    const auto entry = bench::suite_benchmark(name);
    const StateGraph disk_sg = from_file.to_state_graph();
    const StateGraph gen_sg = entry.stg.to_state_graph();
    EXPECT_EQ(disk_sg.num_states(), gen_sg.num_states()) << name;
    EXPECT_EQ(disk_sg.num_arcs(), gen_sg.num_arcs()) << name;
    EXPECT_TRUE(check_implementability(disk_sg)) << name;
  }
}

}  // namespace
}  // namespace sitm
