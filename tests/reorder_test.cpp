// Tests for BDD variable reordering (permute / sifting).

#include <gtest/gtest.h>

#include <numeric>

#include "bdd/reorder.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace sitm {
namespace {

TEST(Reorder, IdentityPermutationIsNoop) {
  BddManager mgr(4);
  const BddRef f = mgr.bdd_or(mgr.bdd_and(mgr.literal(0), mgr.literal(2)),
                              mgr.literal(3));
  std::vector<int> id(4);
  std::iota(id.begin(), id.end(), 0);
  EXPECT_EQ(permute(mgr, f, id), f);
}

TEST(Reorder, PermuteRenamesVariables) {
  BddManager mgr(3);
  const BddRef f = mgr.bdd_and(mgr.literal(0), mgr.literal(1, false));
  const std::vector<int> perm{2, 0, 1};  // 0->2, 1->0, 2->1
  const BddRef g = permute(mgr, f, perm);
  EXPECT_EQ(g, mgr.bdd_and(mgr.literal(2), mgr.literal(0, false)));
}

TEST(Reorder, PermutePreservesSemanticsUnderRenaming) {
  Rng rng(3);
  BddManager mgr(6);
  for (int round = 0; round < 20; ++round) {
    // Random function from random cubes.
    BddRef f = mgr.bdd_false();
    for (int t = 0; t < 3; ++t) {
      BddRef cube = mgr.bdd_true();
      for (int v = 0; v < 6; ++v) {
        const auto r = rng.below(3);
        if (r == 0) cube = mgr.bdd_and(cube, mgr.literal(v, false));
        if (r == 1) cube = mgr.bdd_and(cube, mgr.literal(v, true));
      }
      f = mgr.bdd_or(f, cube);
    }
    const std::vector<int> perm{5, 4, 3, 2, 1, 0};
    const BddRef g = permute(mgr, f, perm);
    for (std::uint64_t code = 0; code < 64; ++code) {
      std::uint64_t renamed = 0;
      for (int v = 0; v < 6; ++v)
        if ((code >> v) & 1) renamed |= std::uint64_t{1} << perm[v];
      EXPECT_EQ(mgr.eval(f, code), mgr.eval(g, renamed));
    }
  }
}

TEST(Reorder, BadPermutationThrows) {
  BddManager mgr(3);
  EXPECT_THROW(permute(mgr, mgr.literal(0), {0, 1}), Error);
}

TEST(Reorder, SiftingShrinksInterleavedComparator) {
  // f = (a0&b0) | (a1&b1) | (a2&b2) with the bad order a0 a1 a2 b0 b1 b2:
  // exponential; the good interleaved order is linear.  Encode the BAD
  // order (pairs far apart) and let sifting find a good one.
  const int k = 4;
  BddManager mgr(2 * k);
  BddRef f = mgr.bdd_false();
  for (int i = 0; i < k; ++i)
    f = mgr.bdd_or(f, mgr.bdd_and(mgr.literal(i), mgr.literal(k + i)));

  const SiftResult sift = sift_order(mgr, f);
  EXPECT_LT(sift.size_after, sift.size_before);
  // Optimal size for the interleaved order is 2k inner nodes + 2 leaves.
  EXPECT_LE(sift.size_after, static_cast<std::size_t>(3 * k + 2));
  // Applying the found permutation actually achieves the reported size.
  EXPECT_EQ(mgr.dag_size(permute(mgr, f, sift.perm)), sift.size_after);
}

TEST(Reorder, SiftingNeverHurts) {
  Rng rng(17);
  BddManager mgr(8);
  for (int round = 0; round < 10; ++round) {
    BddRef f = mgr.bdd_false();
    for (int t = 0; t < 4; ++t) {
      BddRef cube = mgr.bdd_true();
      for (int v = 0; v < 8; ++v) {
        const auto r = rng.below(3);
        if (r == 0) cube = mgr.bdd_and(cube, mgr.literal(v, false));
        if (r == 1) cube = mgr.bdd_and(cube, mgr.literal(v, true));
      }
      f = mgr.bdd_or(f, cube);
    }
    const SiftResult sift = sift_order(mgr, f);
    EXPECT_LE(sift.size_after, sift.size_before);
  }
}

}  // namespace
}  // namespace sitm
