// Unit tests for the technology mapping loop (paper Section 3).

#include <gtest/gtest.h>

#include "benchlib/generators.hpp"
#include "core/mapper.hpp"
#include "netlist/si_verify.hpp"
#include "sg/properties.hpp"
#include "stg/stg.hpp"
#include "util/error.hpp"

namespace sitm {
namespace {

MapperOptions with_library(int max_literals) {
  MapperOptions opts;
  opts.library.max_literals = max_literals;
  return opts;
}

TEST(Mapper, AlreadyImplementableNeedsNoInsertion) {
  const StateGraph sg = bench::make_pipeline(2).to_state_graph();
  const MapResult result = technology_map(sg, with_library(4));
  EXPECT_TRUE(result.implementable);
  EXPECT_EQ(result.signals_inserted, 0);
}

TEST(Mapper, HazardMapsToTwoLiteralGates) {
  // Paper Figure 5: Sx = a'cd splits into two 2-input AND gates with one
  // inserted signal.
  const StateGraph sg = bench::make_hazard().to_state_graph();
  const MapResult result = technology_map(sg, with_library(2));
  ASSERT_TRUE(result.implementable) << result.failure;
  EXPECT_EQ(result.signals_inserted, 1);
  const Netlist netlist = result.build_netlist();
  EXPECT_LE(netlist.max_gate_complexity(), 2);
  EXPECT_TRUE(verify_speed_independence(netlist).ok);
}

TEST(Mapper, ParallelizerJoinDecomposes) {
  // A 4-way AND join must break into 2-input gates via inserted signals.
  const StateGraph sg = bench::make_parallelizer(4).to_state_graph();
  const MapResult result = technology_map(sg, with_library(2));
  ASSERT_TRUE(result.implementable) << result.failure;
  EXPECT_GE(result.signals_inserted, 1);
  const Netlist netlist = result.build_netlist();
  EXPECT_LE(netlist.max_gate_complexity(), 2);
  const SiVerifyResult verify = verify_speed_independence(netlist);
  EXPECT_TRUE(verify.ok) << verify.why;
}

TEST(Mapper, LargerLibraryNeedsFewerInsertions) {
  const StateGraph sg = bench::make_parallelizer(5).to_state_graph();
  const MapResult at2 = technology_map(sg, with_library(2));
  const MapResult at3 = technology_map(sg, with_library(3));
  const MapResult at4 = technology_map(sg, with_library(4));
  ASSERT_TRUE(at2.implementable) << at2.failure;
  ASSERT_TRUE(at3.implementable) << at3.failure;
  ASSERT_TRUE(at4.implementable) << at4.failure;
  EXPECT_GE(at2.signals_inserted, at3.signals_inserted);
  EXPECT_GE(at3.signals_inserted, at4.signals_inserted);
}

TEST(Mapper, FinalSgStaysImplementable) {
  const StateGraph sg = bench::make_combo(3, 2).to_state_graph();
  const MapResult result = technology_map(sg, with_library(2));
  if (result.implementable) {
    EXPECT_TRUE(check_implementability(*result.sg));
    for (const auto& synth : result.syntheses)
      EXPECT_LE(synth.complexity, 2);
  }
}

TEST(Mapper, StepsRecordProgress) {
  const StateGraph sg = bench::make_parallelizer(4).to_state_graph();
  const MapResult result = technology_map(sg, with_library(2));
  ASSERT_TRUE(result.implementable) << result.failure;
  ASSERT_EQ(static_cast<int>(result.steps.size()), result.signals_inserted);
  for (const auto& step : result.steps) {
    // Every committed step strictly improves the global cost tuple -- the
    // mapper's termination measure.
    EXPECT_TRUE(step.after < step.before);
    EXPECT_GE(step.states_after, step.states_before);
    EXPECT_FALSE(step.new_signal.empty());
  }
}

TEST(Mapper, InsertedSignalsAreInternal) {
  const StateGraph sg = bench::make_parallelizer(4).to_state_graph();
  const MapResult result = technology_map(sg, with_library(2));
  ASSERT_TRUE(result.implementable) << result.failure;
  for (int s = sg.num_signals(); s < result.sg->num_signals(); ++s)
    EXPECT_EQ(result.sg->signal(s).kind, SignalKind::kInternal);
}

TEST(Mapper, RejectsNonImplementableInput) {
  // CSC violation: two states with the same code enable different outputs.
  StateGraph bad;
  const int a = bad.add_signal("a", SignalKind::kInput);
  const int b = bad.add_signal("b", SignalKind::kOutput);
  const StateId s0 = bad.add_state(0b00);
  const StateId s1 = bad.add_state(0b01);
  const StateId s2 = bad.add_state(0b11);
  const StateId s3 = bad.add_state(0b10);
  const StateId s4 = bad.add_state(0b00);  // code clash with s0
  const StateId s5 = bad.add_state(0b10);
  bad.add_arc(s0, Event{a, true}, s1);
  bad.add_arc(s1, Event{b, true}, s2);
  bad.add_arc(s2, Event{a, false}, s3);
  bad.add_arc(s3, Event{b, false}, s4);
  bad.add_arc(s4, Event{b, true}, s5);  // b+ enabled at s4 but not s0
  bad.add_arc(s5, Event{b, false}, s0);
  bad.set_initial(s0);
  EXPECT_THROW(technology_map(bad, with_library(2)), Error);
}

TEST(Mapper, InsertionLimitProducesFailure) {
  MapperOptions opts = with_library(2);
  opts.max_insertions = 0;
  const StateGraph sg = bench::make_parallelizer(4).to_state_graph();
  const MapResult result = technology_map(sg, opts);
  EXPECT_FALSE(result.implementable);
  EXPECT_FALSE(result.failure.empty());
}

TEST(Mapper, LocalAcknowledgementIsWeaker) {
  // With global acknowledgement disabled the mapper solves no more (and
  // typically fewer) instances; on the same instance it never needs fewer
  // insertions.
  const StateGraph sg = bench::make_parallelizer(5).to_state_graph();
  MapperOptions local = with_library(2);
  local.global_acknowledgement = false;
  const MapResult global_r = technology_map(sg, with_library(2));
  const MapResult local_r = technology_map(sg, local);
  ASSERT_TRUE(global_r.implementable);
  if (local_r.implementable) {
    EXPECT_GE(local_r.signals_inserted, global_r.signals_inserted);
  }
}

TEST(Mapper, DivisorFunctionsRecorded) {
  const StateGraph sg = bench::make_hazard().to_state_graph();
  const MapResult result = technology_map(sg, with_library(2));
  ASSERT_TRUE(result.implementable);
  ASSERT_FALSE(result.steps.empty());
  // The chosen divisor for Sx = a'cd must be one of the legal 2-literal
  // sub-cubes (a'c or cd -- a'd is illegal per Figure 1).
  const Cover& f = result.steps[0].divisor;
  EXPECT_EQ(f.num_literals(), 2);
  const int a = sg.find_signal("a");
  const int d = sg.find_signal("d");
  const bool is_ad = f.cubes()[0].has_literal(a) && f.cubes()[0].has_literal(d);
  EXPECT_FALSE(is_ad);
}

}  // namespace
}  // namespace sitm
