// Unit tests for the cube/cover algebra and the two-level minimizer.

#include <gtest/gtest.h>

#include "boolf/cover.hpp"
#include "boolf/cube.hpp"
#include "boolf/minimize.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace sitm {
namespace {

const std::vector<std::string> kNames = {"a", "b", "c", "d", "e", "f"};

Cube cube(std::initializer_list<std::pair<int, bool>> lits) {
  Cube c = Cube::one();
  for (auto [v, pol] : lits) c = c.with_literal(v, pol);
  return c;
}

TEST(Cube, Basics) {
  const Cube one = Cube::one();
  EXPECT_TRUE(one.is_one());
  EXPECT_EQ(one.num_literals(), 0);
  EXPECT_TRUE(one.contains_code(0b1010));

  const Cube ab = cube({{0, true}, {1, false}});  // a b'
  EXPECT_EQ(ab.num_literals(), 2);
  EXPECT_TRUE(ab.contains_code(0b001));   // a=1,b=0
  EXPECT_FALSE(ab.contains_code(0b011));  // b=1
  EXPECT_EQ(ab.to_string(kNames), "a b'");
}

TEST(Cube, MintermAndLiteral) {
  const Cube m = Cube::minterm(0b101, 3);
  EXPECT_EQ(m.num_literals(), 3);
  EXPECT_TRUE(m.contains_code(0b101));
  EXPECT_FALSE(m.contains_code(0b100));
  const Cube l = Cube::literal(2, false);
  EXPECT_TRUE(l.contains_code(0b011));
  EXPECT_FALSE(l.contains_code(0b100));
}

TEST(Cube, ContainmentIntersection) {
  const Cube a = cube({{0, true}});
  const Cube ab = cube({{0, true}, {1, true}});
  EXPECT_TRUE(a.contains(ab));
  EXPECT_FALSE(ab.contains(a));
  EXPECT_TRUE(a.intersects(ab));
  EXPECT_TRUE(ab.intersects(a));
  EXPECT_FALSE(ab.intersects(cube({{1, false}})));
  EXPECT_FALSE(cube({{1, true}}).intersects(cube({{1, false}})));
  EXPECT_EQ(a.meet(cube({{1, true}})), ab);
}

TEST(Cube, SupercubeDistance) {
  const Cube ab = cube({{0, true}, {1, true}});
  const Cube anb = cube({{0, true}, {1, false}});
  EXPECT_EQ(ab.supercube(anb), cube({{0, true}}));
  EXPECT_EQ(ab.distance(anb), 1);
  EXPECT_EQ(ab.distance(ab), 0);
}

TEST(Cover, EvalAndLiterals) {
  Cover f(3);
  f.add(cube({{0, true}, {1, true}}));   // ab
  f.add(cube({{2, false}}));             // c'
  EXPECT_EQ(f.num_literals(), 3);
  EXPECT_TRUE(f.eval(0b011));   // ab
  EXPECT_TRUE(f.eval(0b000));   // c'
  EXPECT_FALSE(f.eval(0b101));  // a, c
  EXPECT_EQ(f.to_string(kNames), "a b + c'");
}

TEST(Cover, ContainmentCleanup) {
  Cover f(3);
  f.add(cube({{0, true}}));
  f.add(cube({{0, true}, {1, true}}));  // contained
  f.add(cube({{0, true}}));             // duplicate
  f.make_minimal_wrt_containment();
  EXPECT_EQ(f.size(), 1u);
}

TEST(Cover, Tautology) {
  EXPECT_TRUE(Cover::one(3).tautology());
  EXPECT_FALSE(Cover::zero(3).tautology());
  Cover f(1);
  f.add(cube({{0, true}}));
  f.add(cube({{0, false}}));
  EXPECT_TRUE(f.tautology());  // a + a' = 1
  Cover g(2);
  g.add(cube({{0, true}}));
  g.add(cube({{1, true}}));
  EXPECT_FALSE(g.tautology());  // a + b != 1
}

TEST(Cover, CoversCube) {
  Cover f(2);
  f.add(cube({{0, true}}));
  f.add(cube({{0, false}, {1, true}}));
  // f = a + a'b covers cube b
  EXPECT_TRUE(f.covers_cube(cube({{1, true}})));
  EXPECT_FALSE(f.covers_cube(cube({{1, false}})));
}

TEST(Cover, ComplementIsExact) {
  Rng rng(42);
  for (int round = 0; round < 50; ++round) {
    const int n = 4;
    Cover f(n);
    const int terms = 1 + static_cast<int>(rng.below(4));
    for (int t = 0; t < terms; ++t) {
      Cube c = Cube::one();
      for (int v = 0; v < n; ++v) {
        const auto r = rng.below(3);
        if (r == 0) c = c.with_literal(v, false);
        if (r == 1) c = c.with_literal(v, true);
      }
      f.add(c);
    }
    const Cover fc = f.complement();
    for (std::uint64_t code = 0; code < (1u << n); ++code)
      EXPECT_NE(f.eval(code), fc.eval(code)) << "code " << code;
  }
}

TEST(Cover, AndOrSemantics) {
  Cover a(3), b(3);
  a.add(cube({{0, true}}));
  b.add(cube({{1, true}}));
  b.add(cube({{2, false}}));
  const Cover o = a | b;
  const Cover n = a & b;
  for (std::uint64_t code = 0; code < 8; ++code) {
    EXPECT_EQ(o.eval(code), a.eval(code) || b.eval(code));
    EXPECT_EQ(n.eval(code), a.eval(code) && b.eval(code));
  }
}

TEST(Cover, EquivalenceUpToRepresentation) {
  Cover xor1(2), xor2(2);
  xor1.add(cube({{0, true}, {1, false}}));
  xor1.add(cube({{0, false}, {1, true}}));
  xor2.add(cube({{1, true}, {0, false}}));
  xor2.add(cube({{1, false}, {0, true}}));
  EXPECT_TRUE(xor1.equivalent(xor2));
  EXPECT_FALSE(xor1.equivalent(Cover::one(2)));
}

TEST(Cover, Support) {
  Cover f(4);
  f.add(cube({{0, true}, {3, false}}));
  EXPECT_EQ(f.support(), 0b1001u);
}

// ---------------------------------------------------------------- minimize

TEST(Minimize, ExactCorner) {
  // on = {00}, off = {11}: a single cube a' (or b') suffices.
  const Cover f = minimize_onoff({0b00}, {0b11}, 2);
  EXPECT_EQ(f.size(), 1u);
  EXPECT_EQ(f.num_literals(), 1);
  EXPECT_TRUE(f.eval(0b00));
  EXPECT_FALSE(f.eval(0b11));
}

TEST(Minimize, ConstantCases) {
  EXPECT_TRUE(minimize_onoff({}, {0b0}, 2).empty());
  const Cover one = minimize_onoff({0b0}, {}, 2);
  EXPECT_EQ(one.size(), 1u);
  EXPECT_TRUE(one.cubes()[0].is_one());
}

TEST(Minimize, ThrowsOnIntersection) {
  EXPECT_THROW(minimize_onoff({0b1}, {0b1}, 1), Error);
}

TEST(Minimize, XorNeedsTwoCubes) {
  const Cover f = minimize_onoff({0b01, 0b10}, {0b00, 0b11}, 2);
  EXPECT_EQ(f.size(), 2u);
  EXPECT_EQ(f.num_literals(), 4);
}

TEST(Minimize, DontCaresReduceLiterals) {
  // on = {111}, off = {000}; everything else DC: a 1-literal cube works.
  const Cover f = minimize_onoff({0b111}, {0b000}, 3);
  EXPECT_EQ(f.num_literals(), 1);
}

TEST(Minimize, CoversExactlyOnAndAvoidsOff) {
  Rng rng(7);
  for (int round = 0; round < 100; ++round) {
    const int n = 5;
    std::vector<std::uint64_t> on, off;
    for (std::uint64_t code = 0; code < (1u << n); ++code) {
      const auto r = rng.below(3);
      if (r == 0) on.push_back(code);
      if (r == 1) off.push_back(code);
    }
    if (on.empty() || off.empty()) continue;
    const Cover f = minimize_onoff(on, off, n);
    for (auto code : on) EXPECT_TRUE(f.eval(code));
    for (auto code : off) EXPECT_FALSE(f.eval(code));
  }
}

TEST(Minimize, IrredundantGreedyCoversAll) {
  const std::vector<std::uint64_t> on{0, 1, 2, 3};
  std::vector<Cube> cubes{
      cube({{0, false}}),            // covers 0, 2 (b free)
      cube({{0, true}}),             // covers 1, 3
      cube({{1, false}}),            // covers 0, 1
      cube({{1, true}}),             // covers 2, 3
  };
  const auto chosen = irredundant(cubes, on);
  EXPECT_LE(chosen.size(), 2u);
  Cover f(2, chosen);
  for (auto code : on) EXPECT_TRUE(f.eval(code));
}

TEST(Minimize, ExpandFindsPrime) {
  // off = {11}; minterm 00 expands to a' or b'.
  const Cube c = expand_minterm(0b00, {0b11}, 2, {0, 1});
  EXPECT_EQ(c.num_literals(), 1);
}

}  // namespace
}  // namespace sitm
