// Tests for the exact minimizer and quality cross-checks of the heuristic.

#include <gtest/gtest.h>

#include <cstdint>

#include "boolf/exact.hpp"
#include "boolf/minimize.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace sitm {
namespace {

TEST(Exact, ConstantsAndCorners) {
  EXPECT_TRUE(minimize_exact({}, {0}, 2).empty());
  const Cover one = minimize_exact({0}, {}, 2);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_TRUE(one.cubes()[0].is_one());
  const Cover f = minimize_exact({0b00}, {0b11}, 2);
  EXPECT_EQ(f.num_literals(), 1);
}

TEST(Exact, XorIsFourLiterals) {
  const Cover f = minimize_exact({0b01, 0b10}, {0b00, 0b11}, 2);
  EXPECT_EQ(f.num_literals(), 4);
  EXPECT_EQ(f.size(), 2u);
}

TEST(Exact, PrimesAreMaximalAndOffDisjoint) {
  Rng rng(5);
  for (int round = 0; round < 30; ++round) {
    const int n = 5;
    std::vector<std::uint64_t> on, off;
    for (std::uint64_t code = 0; code < (1u << n); ++code) {
      const auto r = rng.below(3);
      if (r == 0) on.push_back(code);
      if (r == 1) off.push_back(code);
    }
    if (on.empty() || off.empty()) continue;
    const auto primes = all_primes(on, off, n);
    for (const auto& p : primes) {
      for (auto code : off) EXPECT_FALSE(p.contains_code(code));
      // Maximality: removing any literal hits the off-set.
      for (int v = 0; v < n; ++v) {
        if (!p.has_literal(v)) continue;
        const Cube wider = p.without_literal(v);
        bool hits = false;
        for (auto code : off)
          if (wider.contains_code(code)) hits = true;
        EXPECT_TRUE(hits);
      }
    }
  }
}

TEST(Exact, NeverWorseThanHeuristic) {
  Rng rng(77);
  int heuristic_total = 0, exact_total = 0;
  for (int round = 0; round < 60; ++round) {
    const int n = 5;
    std::vector<std::uint64_t> on, off;
    for (std::uint64_t code = 0; code < (1u << n); ++code) {
      const auto r = rng.below(4);
      if (r == 0) on.push_back(code);
      if (r <= 1 && r > 0) off.push_back(code);
    }
    if (on.empty() || off.empty()) continue;
    const Cover heuristic = minimize_onoff(on, off, n);
    const Cover exact = minimize_exact(on, off, n);
    for (auto code : on) {
      EXPECT_TRUE(exact.eval(code));
      EXPECT_TRUE(heuristic.eval(code));
    }
    for (auto code : off) {
      EXPECT_FALSE(exact.eval(code));
      EXPECT_FALSE(heuristic.eval(code));
    }
    EXPECT_LE(exact.num_literals(), heuristic.num_literals());
    heuristic_total += heuristic.num_literals();
    exact_total += exact.num_literals();
  }
  // The heuristic should stay close to exact overall (within 25%).
  EXPECT_LE(heuristic_total, exact_total + exact_total / 4 + 4);
}

TEST(Exact, RefusesOversizedInstances) {
  ExactOptions opts;
  opts.max_vars = 4;
  EXPECT_THROW(minimize_exact({0}, {31}, 5, opts), Error);
}

TEST(Exact, TieBreaksStillCoverEverything) {
  // Cyclic covering core (no essential primes): on = XOR-ish ring.
  const std::vector<std::uint64_t> on{0b001, 0b010, 0b100, 0b111};
  const std::vector<std::uint64_t> off{0b000, 0b011, 0b101, 0b110};
  const Cover f = minimize_exact(on, off, 3);
  for (auto code : on) EXPECT_TRUE(f.eval(code));
  for (auto code : off) EXPECT_FALSE(f.eval(code));
  // Each on-minterm is isolated (all neighbours are off): 4 full cubes.
  EXPECT_EQ(f.num_literals(), 12);
}

}  // namespace
}  // namespace sitm
