// Round-trip every suite benchmark through both text formats and the
// symbolic engine — broad I/O and cross-engine coverage.

#include <gtest/gtest.h>

#include "benchlib/suite.hpp"
#include "sg/properties.hpp"
#include "sg/sg_io.hpp"
#include "stg/g_io.hpp"
#include "stg/symbolic.hpp"

namespace sitm {
namespace {

class SuiteRoundTrip : public ::testing::TestWithParam<std::string> {};

TEST_P(SuiteRoundTrip, GFormat) {
  const auto entry = bench::suite_benchmark(GetParam());
  const std::string text = write_g_string(entry.stg, entry.name);
  std::string name;
  const Stg back = read_g_string(text, &name);
  EXPECT_EQ(name, entry.name);
  EXPECT_EQ(back.num_signals(), entry.stg.num_signals());
  EXPECT_EQ(back.num_transitions(), entry.stg.num_transitions());

  const StateGraph original = entry.stg.to_state_graph();
  const StateGraph reparsed = back.to_state_graph();
  EXPECT_EQ(reparsed.num_states(), original.num_states());
  EXPECT_EQ(reparsed.num_arcs(), original.num_arcs());
  EXPECT_TRUE(check_implementability(reparsed));
}

TEST_P(SuiteRoundTrip, SgFormat) {
  const auto entry = bench::suite_benchmark(GetParam());
  const StateGraph original = entry.stg.to_state_graph();
  const StateGraph back = read_sg_string(write_sg_string(original, entry.name));
  EXPECT_EQ(back.num_states(), original.num_states());
  EXPECT_EQ(back.num_arcs(), original.num_arcs());
  EXPECT_EQ(back.code(back.initial()), original.code(original.initial()));
  EXPECT_TRUE(check_implementability(back));
}

TEST_P(SuiteRoundTrip, SymbolicAgreesWithExplicit) {
  const auto entry = bench::suite_benchmark(GetParam());
  const auto sym = symbolic_reachability(entry.stg);
  const StateGraph sg = entry.stg.to_state_graph();
  EXPECT_DOUBLE_EQ(sym.num_markings, static_cast<double>(sg.num_states()));
  EXPECT_FALSE(sym.has_deadlock);
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, SuiteRoundTrip,
                         ::testing::ValuesIn(bench::suite_names()),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           std::string name = info.param;
                           for (char& ch : name)
                             if (ch == '-') ch = '_';
                           return name;
                         });

}  // namespace
}  // namespace sitm
