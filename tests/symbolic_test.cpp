// Tests for the symbolic (BDD) STG engine, cross-checked against the
// explicit token game.

#include <gtest/gtest.h>

#include <set>

#include "benchlib/generators.hpp"
#include "sg/properties.hpp"
#include "benchlib/random_stg.hpp"
#include "stg/symbolic.hpp"
#include "stg/stg.hpp"
#include "util/error.hpp"

namespace sitm {
namespace {

TEST(Symbolic, MatchesExplicitOnFamilies) {
  for (const Stg& stg :
       {bench::make_pipeline(3), bench::make_parallelizer(4),
        bench::make_seq_chain(4), bench::make_choice_mixer(3),
        bench::make_shared_out(2), bench::make_combo(3, 2),
        bench::make_hazard()}) {
    const SymbolicReachability sym = symbolic_reachability(stg);
    const StateGraph sg = stg.to_state_graph();
    EXPECT_DOUBLE_EQ(sym.num_markings, static_cast<double>(sg.num_states()));
    EXPECT_FALSE(sym.has_deadlock);
    EXPECT_GT(sym.iterations, 0);
    EXPECT_GT(sym.bdd_size, 0u);
  }
}

TEST(Symbolic, MatchesExplicitOnRandomInstances) {
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    const Stg stg = bench::make_random_stg(seed);
    const SymbolicReachability sym = symbolic_reachability(stg);
    const StateGraph sg = stg.to_state_graph();
    EXPECT_DOUBLE_EQ(sym.num_markings, static_cast<double>(sg.num_states()))
        << "seed " << seed;
    EXPECT_FALSE(sym.has_deadlock) << "seed " << seed;
  }
}

TEST(Symbolic, DetectsDeadlock) {
  // a+ -> b+ and then nothing: the final marking is dead.
  Stg stg;
  const int a = stg.add_signal("a", SignalKind::kOutput);
  const int b = stg.add_signal("b", SignalKind::kOutput);
  const TransId ap = stg.add_transition(a, true);
  const TransId bp = stg.add_transition(b, true);
  const PlaceId p0 = stg.add_place("p0");
  stg.mark_initial(p0);
  stg.connect_pt(p0, ap);
  stg.connect_tt(ap, bp);
  const PlaceId sink = stg.add_place("sink");
  stg.connect_tp(bp, sink);
  const SymbolicReachability sym = symbolic_reachability(stg);
  EXPECT_TRUE(sym.has_deadlock);
  EXPECT_DOUBLE_EQ(sym.num_markings, 3.0);
}

TEST(Symbolic, ScalesPastConcurrency) {
  // 2^10-state rising phase: symbolic count matches the closed form without
  // enumerating states one by one.
  const Stg stg = bench::make_parallelizer(10);
  const SymbolicReachability sym = symbolic_reachability(stg);
  // parallelizer(k): 2 * 2^k + 2 markings (rising diamond, d=1, falling
  // diamond, idle overlap) -- validate against the explicit engine.
  const StateGraph sg = stg.to_state_graph();
  EXPECT_DOUBLE_EQ(sym.num_markings, static_cast<double>(sg.num_states()));
}

TEST(Symbolic, EmptyMarkingRejected) {
  Stg stg;
  const int a = stg.add_signal("a", SignalKind::kOutput);
  stg.add_transition(a, true);
  EXPECT_THROW(symbolic_reachability(stg), Error);
}

TEST(RandomStg, EveryInstanceIsImplementable) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    const Stg stg = bench::make_random_stg(seed);
    const StateGraph sg = stg.to_state_graph();
    const auto check = check_implementability(sg);
    EXPECT_TRUE(check.ok) << "seed " << seed << ": " << check.why;
  }
}

TEST(RandomStg, DeterministicForSeed) {
  const Stg a = bench::make_random_stg(7);
  const Stg b = bench::make_random_stg(7);
  EXPECT_EQ(a.num_signals(), b.num_signals());
  EXPECT_EQ(a.num_transitions(), b.num_transitions());
  EXPECT_EQ(a.to_state_graph().num_states(), b.to_state_graph().num_states());
}

TEST(RandomStg, SeedsVaryTheShape) {
  std::set<std::size_t> sizes;
  for (std::uint64_t seed = 1; seed <= 12; ++seed)
    sizes.insert(bench::make_random_stg(seed).to_state_graph().num_states());
  EXPECT_GT(sizes.size(), 3u);
}

TEST(RandomStg, RespectsSignalBudget) {
  bench::RandomStgOptions opts;
  opts.min_signals = 4;
  opts.max_signals = 8;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const Stg stg = bench::make_random_stg(seed, opts);
    EXPECT_GE(stg.num_signals(), 3);
    EXPECT_LE(stg.num_signals(), 12);  // small slack over the budget
  }
}

}  // namespace
}  // namespace sitm
