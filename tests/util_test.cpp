// Unit tests for the util module: DynBitset, text helpers, RNG.

#include <gtest/gtest.h>

#include <set>

#include "util/dynbitset.hpp"
#include "util/rng.hpp"
#include "util/text.hpp"

namespace sitm {
namespace {

TEST(DynBitset, StartsEmpty) {
  DynBitset b(100);
  EXPECT_EQ(b.size(), 100u);
  EXPECT_EQ(b.count(), 0u);
  EXPECT_TRUE(b.none());
  EXPECT_FALSE(b.any());
}

TEST(DynBitset, SetResetTest) {
  DynBitset b(70);
  b.set(0);
  b.set(63);
  b.set(64);
  b.set(69);
  EXPECT_TRUE(b.test(0));
  EXPECT_TRUE(b.test(63));
  EXPECT_TRUE(b.test(64));
  EXPECT_TRUE(b.test(69));
  EXPECT_FALSE(b.test(1));
  EXPECT_EQ(b.count(), 4u);
  b.reset(63);
  EXPECT_FALSE(b.test(63));
  EXPECT_EQ(b.count(), 3u);
}

TEST(DynBitset, SetAllRespectsSize) {
  DynBitset b(70);
  b.set_all();
  EXPECT_EQ(b.count(), 70u);
  DynBitset c(64);
  c.set_all();
  EXPECT_EQ(c.count(), 64u);
}

TEST(DynBitset, ComplementRespectsTail) {
  DynBitset b(70);
  b.set(3);
  const DynBitset c = ~b;
  EXPECT_EQ(c.count(), 69u);
  EXPECT_FALSE(c.test(3));
  EXPECT_TRUE(c.test(69));
}

TEST(DynBitset, SetAlgebra) {
  DynBitset a(10), b(10);
  a.set(1);
  a.set(2);
  b.set(2);
  b.set(3);
  EXPECT_EQ((a | b).count(), 3u);
  EXPECT_EQ((a & b).count(), 1u);
  EXPECT_TRUE((a & b).test(2));
  EXPECT_EQ((a - b).count(), 1u);
  EXPECT_TRUE((a - b).test(1));
}

TEST(DynBitset, SubsetAndDisjoint) {
  DynBitset a(10), b(10);
  a.set(1);
  b.set(1);
  b.set(5);
  EXPECT_TRUE(a.subset_of(b));
  EXPECT_FALSE(b.subset_of(a));
  EXPECT_FALSE(a.disjoint(b));
  DynBitset c(10);
  c.set(7);
  EXPECT_TRUE(a.disjoint(c));
}

TEST(DynBitset, FirstNextIteration) {
  DynBitset b(130);
  b.set(5);
  b.set(64);
  b.set(129);
  EXPECT_EQ(b.first(), 5u);
  EXPECT_EQ(b.next(5), 64u);
  EXPECT_EQ(b.next(64), 129u);
  EXPECT_EQ(b.next(129), DynBitset::npos);
  EXPECT_EQ(b.to_vector(), (std::vector<std::size_t>{5, 64, 129}));
}

TEST(DynBitset, ForEachVisitsAscending) {
  DynBitset b(200);
  for (std::size_t i = 0; i < 200; i += 7) b.set(i);
  std::vector<std::size_t> seen;
  b.for_each([&](std::size_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, b.to_vector());
  EXPECT_TRUE(std::is_sorted(seen.begin(), seen.end()));
}

TEST(Text, Trim) {
  EXPECT_EQ(trim("  hello  "), "hello");
  EXPECT_EQ(trim("\t\r\n"), "");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(Text, SplitWs) {
  const auto tokens = split_ws("  a  bb\tccc ");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0], "a");
  EXPECT_EQ(tokens[1], "bb");
  EXPECT_EQ(tokens[2], "ccc");
  EXPECT_TRUE(split_ws("   ").empty());
}

TEST(Text, SplitChar) {
  const auto f = split_char("a,,b", ',');
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[0], "a");
  EXPECT_EQ(f[1], "");
  EXPECT_EQ(f[2], "b");
}

TEST(Text, StartsWith) {
  EXPECT_TRUE(starts_with(".model x", ".model"));
  EXPECT_FALSE(starts_with(".mod", ".model"));
}

TEST(Text, Strfmt) {
  EXPECT_EQ(strfmt("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(strfmt("empty"), "empty");
}

TEST(Rng, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_LT(same, 4);
}

TEST(Rng, BelowInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.below(13), 13u);
}

TEST(Rng, RangeInclusive) {
  Rng r(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(r.range(3, 5));
  EXPECT_EQ(seen, (std::set<std::uint64_t>{3, 4, 5}));
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(99);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

}  // namespace
}  // namespace sitm
