// Parallel candidate resynthesis (MapperOptions::threads) must be
// bit-identical to the serial loop: every candidate evaluation reads only
// the current (const) SG, the evaluated set is the first max_full_evals
// verifying candidates in rank order, and the winner is chosen in candidate
// order regardless of worker schedule.  Pinned over the Table-1 corpus
// (CSC-resolved through the Flow engine) and directly on the generator
// families at 1/2/4/N threads.

#include <gtest/gtest.h>

#include "benchlib/generators.hpp"
#include "benchlib/suite.hpp"
#include "core/mapper.hpp"
#include "flow/flow.hpp"
#include "stg/stg.hpp"

namespace sitm {
namespace {

/// Everything observable about a map-stage run that must not depend on the
/// thread count.
struct MapFingerprint {
  bool ok = false;
  std::string netlist;
  int signals_inserted = 0;
  long candidates_planned = 0;
  long resyntheses = 0;
  std::size_t states = 0;
  std::vector<std::string> step_signals;
  std::vector<Cover> step_divisors;

  bool operator==(const MapFingerprint&) const = default;
};

MapFingerprint fingerprint_of(const MapResult& result) {
  MapFingerprint fp;
  fp.ok = result.implementable;
  fp.signals_inserted = result.signals_inserted;
  fp.candidates_planned = result.candidates_planned;
  fp.resyntheses = result.resyntheses;
  fp.states = result.sg ? result.sg->num_states() : 0;
  for (const auto& step : result.steps) {
    fp.step_signals.push_back(step.new_signal);
    fp.step_divisors.push_back(step.divisor);
  }
  if (result.implementable) fp.netlist = result.build_netlist().to_string();
  return fp;
}

TEST(MapParallel, CorpusBitIdenticalAcrossThreadCounts) {
  for (const auto& name : bench::suite_names()) {
    // The corpus includes CSC-violating specs; run the flow front half
    // (reachability + csc) once, then map the resolved SG directly.
    FlowOptions front;
    front.stop_after = Stage::kCsc;
    Flow flow(front);
    Spec spec;
    spec.name = name;
    spec.format = SpecFormat::kG;
    spec.stg = bench::suite_benchmark(name).stg;
    const FlowReport report = flow.run_spec(std::move(spec));
    ASSERT_TRUE(report.ok) << name << ": " << report.failure;
    const StateGraph& sg = *flow.context().sg;

    MapperOptions serial;
    serial.library.max_literals = 2;
    serial.threads = 1;
    const MapFingerprint ref = fingerprint_of(technology_map(sg, serial));
    EXPECT_TRUE(ref.ok) << name;

    for (const int threads : {2, 4, 0}) {
      MapperOptions opts = serial;
      opts.threads = threads;
      EXPECT_EQ(fingerprint_of(technology_map(sg, opts)), ref)
          << name << " at " << threads << " map-threads";
    }
  }
}

TEST(MapParallel, GeneratorFamiliesBitIdentical) {
  // Heavier multi-insertion instances than most of the corpus: the
  // parallelizer join and the mixed combo family.
  const StateGraph workloads[] = {
      bench::make_parallelizer(5).to_state_graph(),
      bench::make_combo(3, 3).to_state_graph(),
  };
  for (const StateGraph& sg : workloads) {
    MapperOptions serial;
    serial.library.max_literals = 2;
    const MapFingerprint ref = fingerprint_of(technology_map(sg, serial));
    for (const int threads : {2, 4, 0}) {
      MapperOptions opts = serial;
      opts.threads = threads;
      EXPECT_EQ(fingerprint_of(technology_map(sg, opts)), ref)
          << threads << " map-threads";
    }
  }
}

TEST(MapParallel, PrunedPreChecksThreadIdenticalAndStillImplementable) {
  // MapperOptions::prune_pre_checks stops the insert/verify pre-check once
  // a committable winner exists.  The prune decision sits on fixed-width
  // round boundaries, so for fixed options the result must stay
  // bit-identical across thread counts; it may commit different (equally
  // progress-making) divisors than the exhaustive loop, but never more
  // resyntheses, and the mapped result must still be implementable.
  const StateGraph workloads[] = {
      bench::make_parallelizer(4).to_state_graph(),
      bench::make_combo(3, 3).to_state_graph(),
  };
  for (const StateGraph& sg : workloads) {
    MapperOptions exhaustive;
    exhaustive.library.max_literals = 2;
    MapperOptions pruned = exhaustive;
    pruned.prune_pre_checks = true;

    const MapFingerprint full = fingerprint_of(technology_map(sg, exhaustive));
    const MapFingerprint ref = fingerprint_of(technology_map(sg, pruned));
    EXPECT_TRUE(ref.ok);
    EXPECT_LE(ref.resyntheses, full.resyntheses);
    for (const int threads : {2, 4, 0}) {
      MapperOptions opts = pruned;
      opts.threads = threads;
      EXPECT_EQ(fingerprint_of(technology_map(sg, opts)), ref)
          << threads << " map-threads (pruned)";
    }
  }
}

TEST(MapParallel, TightEvalCapKeepsTheSerialEvaluationSet) {
  // With a cap smaller than the candidate list the parallel pre-check must
  // still evaluate exactly the first cap verifying candidates, not the
  // first cap to finish.
  const StateGraph sg = bench::make_parallelizer(4).to_state_graph();
  for (const int cap : {1, 2, 3}) {
    MapperOptions serial;
    serial.library.max_literals = 2;
    serial.max_full_evals = cap;
    const MapFingerprint ref = fingerprint_of(technology_map(sg, serial));
    for (const int threads : {2, 4}) {
      MapperOptions opts = serial;
      opts.threads = threads;
      EXPECT_EQ(fingerprint_of(technology_map(sg, opts)), ref)
          << "cap " << cap << " at " << threads << " map-threads";
    }
  }
}

}  // namespace
}  // namespace sitm
