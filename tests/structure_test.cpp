// Tests for structural STG analysis: incidence matrices, place invariants,
// and the structural 1-safeness certificate.

#include <gtest/gtest.h>

#include "benchlib/generators.hpp"
#include "benchlib/suite.hpp"
#include "stg/structure.hpp"
#include "stg/stg.hpp"

namespace sitm {
namespace {

Stg handshake_stg() {
  Stg stg;
  const int r = stg.add_signal("r", SignalKind::kInput);
  const int a = stg.add_signal("a", SignalKind::kOutput);
  const TransId rp = stg.add_transition(r, true);
  const TransId ap = stg.add_transition(a, true);
  const TransId rm = stg.add_transition(r, false);
  const TransId am = stg.add_transition(a, false);
  stg.connect_tt(rp, ap);
  stg.connect_tt(ap, rm);
  stg.connect_tt(rm, am);
  stg.mark_initial(stg.connect_tt(am, rp));
  return stg;
}

TEST(Structure, IncidenceMatrixShape) {
  const Stg stg = handshake_stg();
  const auto c = incidence_matrix(stg);
  ASSERT_EQ(c.size(), stg.num_places());
  for (const auto& row : c) {
    ASSERT_EQ(row.size(), stg.num_transitions());
    // Every place of a cycle has one producer and one consumer.
    int sum = 0, nonzero = 0;
    for (int v : row) {
      sum += v;
      if (v != 0) ++nonzero;
    }
    EXPECT_EQ(sum, 0);
    EXPECT_EQ(nonzero, 2);
  }
}

TEST(Structure, HandshakeCycleInvariant) {
  const Stg stg = handshake_stg();
  const auto invariants = place_invariants(stg);
  ASSERT_FALSE(invariants.empty());
  // The ring is one token circulating: an all-ones invariant with sum 1.
  bool found_ring = false;
  for (const auto& inv : invariants) {
    const bool all_ones = std::all_of(inv.weights.begin(), inv.weights.end(),
                                      [](long w) { return w == 1; });
    if (all_ones) {
      found_ring = true;
      EXPECT_EQ(inv.token_sum, 1);
    }
  }
  EXPECT_TRUE(found_ring);
  EXPECT_TRUE(structurally_safe(stg));
}

TEST(Structure, InvariantsAreFlows) {
  // y^T * C == 0 for every reported invariant, on several families.
  for (const Stg& stg :
       {bench::make_pipeline(2), bench::make_parallelizer(3),
        bench::make_seq_chain(3), bench::make_choice_mixer(2),
        bench::make_hazard()}) {
    const auto c = incidence_matrix(stg);
    for (const auto& inv : place_invariants(stg)) {
      for (std::size_t t = 0; t < stg.num_transitions(); ++t) {
        long dot = 0;
        for (std::size_t p = 0; p < stg.num_places(); ++p)
          dot += inv.weights[p] * c[p][t];
        EXPECT_EQ(dot, 0);
      }
      // Non-negative and non-trivial.
      long sum = 0;
      for (long w : inv.weights) {
        EXPECT_GE(w, 0);
        sum += w;
      }
      EXPECT_GT(sum, 0);
    }
  }
}

TEST(Structure, SuiteIsStructurallySafe) {
  for (auto& entry : bench::table1_suite()) {
    EXPECT_TRUE(structurally_safe(entry.stg)) << entry.name;
  }
}

TEST(Structure, UnsafeNetHasNoUnitCertificate) {
  // A place with a producer but no consumer accumulates tokens: it cannot
  // be covered by a sum-1 unit invariant.
  Stg stg;
  const int a = stg.add_signal("a", SignalKind::kOutput);
  const TransId ap = stg.add_transition(a, true);
  const TransId am = stg.add_transition(a, false);
  stg.connect_tt(ap, am);
  stg.mark_initial(stg.connect_tt(am, ap));
  const PlaceId sink = stg.add_place("sink");
  stg.connect_tp(ap, sink);  // tokens pile up here
  EXPECT_FALSE(structurally_safe(stg));
}

TEST(Structure, TokenSumMatchesInitialMarking) {
  const Stg stg = bench::make_choice_mixer(2);
  for (const auto& inv : place_invariants(stg)) {
    long sum = 0;
    for (PlaceId p : stg.initial_marking())
      sum += inv.weights[static_cast<std::size_t>(p)];
    EXPECT_EQ(sum, inv.token_sum);
  }
}

}  // namespace
}  // namespace sitm
