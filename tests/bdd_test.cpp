// Unit tests for the ROBDD package, including cross-checks against the
// explicit cover algebra.

#include <gtest/gtest.h>

#include "bdd/bdd.hpp"
#include "boolf/cover.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace sitm {
namespace {

TEST(Bdd, Constants) {
  BddManager mgr(3);
  EXPECT_EQ(mgr.bdd_not(mgr.bdd_false()), mgr.bdd_true());
  EXPECT_EQ(mgr.bdd_and(mgr.bdd_true(), mgr.bdd_false()), mgr.bdd_false());
  EXPECT_EQ(mgr.bdd_or(mgr.bdd_true(), mgr.bdd_false()), mgr.bdd_true());
}

TEST(Bdd, LiteralEval) {
  BddManager mgr(3);
  const BddRef a = mgr.literal(0);
  const BddRef nb = mgr.literal(1, false);
  EXPECT_TRUE(mgr.eval(a, 0b001));
  EXPECT_FALSE(mgr.eval(a, 0b110));
  EXPECT_TRUE(mgr.eval(nb, 0b001));
  EXPECT_FALSE(mgr.eval(nb, 0b010));
}

TEST(Bdd, Canonicity) {
  BddManager mgr(4);
  const BddRef a = mgr.literal(0), b = mgr.literal(1);
  // (a & b) | (b & a) built two ways yields the same node.
  EXPECT_EQ(mgr.bdd_and(a, b), mgr.bdd_and(b, a));
  const BddRef f = mgr.bdd_or(mgr.bdd_and(a, b), mgr.bdd_not(mgr.bdd_or(
                                                     mgr.bdd_not(a), mgr.bdd_not(b))));
  EXPECT_EQ(f, mgr.bdd_and(a, b));
  // Idempotence / double negation.
  EXPECT_EQ(mgr.bdd_not(mgr.bdd_not(f)), f);
}

TEST(Bdd, XorSatCount) {
  BddManager mgr(2);
  const BddRef x = mgr.bdd_xor(mgr.literal(0), mgr.literal(1));
  EXPECT_DOUBLE_EQ(mgr.sat_count(x), 2.0);
  EXPECT_TRUE(mgr.eval(x, 0b01));
  EXPECT_TRUE(mgr.eval(x, 0b10));
  EXPECT_FALSE(mgr.eval(x, 0b00));
  EXPECT_FALSE(mgr.eval(x, 0b11));
}

TEST(Bdd, CofactorQuantify) {
  BddManager mgr(3);
  const BddRef a = mgr.literal(0), b = mgr.literal(1), c = mgr.literal(2);
  const BddRef f = mgr.bdd_or(mgr.bdd_and(a, b), c);
  EXPECT_EQ(mgr.cofactor(f, 2, true), mgr.bdd_true());
  EXPECT_EQ(mgr.cofactor(f, 2, false), mgr.bdd_and(a, b));
  EXPECT_EQ(mgr.exists(f, 2), mgr.bdd_true());
  EXPECT_EQ(mgr.forall(f, 2), mgr.bdd_and(a, b));
  EXPECT_EQ(mgr.exists_mask(f, 0b110), mgr.bdd_true());
}

TEST(Bdd, Compose) {
  BddManager mgr(3);
  const BddRef a = mgr.literal(0), b = mgr.literal(1), c = mgr.literal(2);
  // substitute c := a&b inside f = c | a  ->  a&b | a = a
  const BddRef f = mgr.bdd_or(c, a);
  EXPECT_EQ(mgr.compose(f, 2, mgr.bdd_and(a, b)), a);
}

TEST(Bdd, PickOne) {
  BddManager mgr(3);
  const BddRef f = mgr.bdd_and(mgr.literal(0), mgr.literal(2, false));
  std::uint64_t assignment = 0;
  ASSERT_TRUE(mgr.pick_one(f, &assignment));
  EXPECT_TRUE(mgr.eval(f, assignment));
  EXPECT_FALSE(mgr.pick_one(mgr.bdd_false(), &assignment));
}

TEST(Bdd, DagSize) {
  BddManager mgr(2);
  EXPECT_EQ(mgr.dag_size(mgr.bdd_true()), 1u);
  const BddRef x = mgr.bdd_xor(mgr.literal(0), mgr.literal(1));
  // 2 terminals + 1 node for var1 pos/neg... canonical XOR has 2 internal
  // nodes sharing both terminals: {x0-node, x1-node, T, F} minus sharing.
  EXPECT_EQ(mgr.dag_size(x), 5u);  // x0, two x1 branches, T, F
}

TEST(Bdd, FromToCoverRoundTrip) {
  Rng rng(11);
  BddManager mgr(5);
  for (int round = 0; round < 40; ++round) {
    Cover f(5);
    const int terms = 1 + static_cast<int>(rng.below(4));
    for (int t = 0; t < terms; ++t) {
      Cube c = Cube::one();
      for (int v = 0; v < 5; ++v) {
        const auto r = rng.below(3);
        if (r == 0) c = c.with_literal(v, false);
        if (r == 1) c = c.with_literal(v, true);
      }
      f.add(c);
    }
    const BddRef ref = mgr.from_cover(f);
    for (std::uint64_t code = 0; code < 32; ++code)
      EXPECT_EQ(mgr.eval(ref, code), f.eval(code));
    const Cover back = mgr.to_cover(ref);
    for (std::uint64_t code = 0; code < 32; ++code)
      EXPECT_EQ(back.eval(code), f.eval(code));
  }
}

TEST(Bdd, AgreesWithCoverComplement) {
  Rng rng(23);
  BddManager mgr(4);
  for (int round = 0; round < 30; ++round) {
    Cover f(4);
    for (int t = 0; t < 3; ++t) {
      Cube c = Cube::one();
      for (int v = 0; v < 4; ++v) {
        const auto r = rng.below(3);
        if (r == 0) c = c.with_literal(v, false);
        if (r == 1) c = c.with_literal(v, true);
      }
      f.add(c);
    }
    const BddRef nf = mgr.bdd_not(mgr.from_cover(f));
    const Cover fc = f.complement();
    for (std::uint64_t code = 0; code < 16; ++code)
      EXPECT_EQ(mgr.eval(nf, code), fc.eval(code));
  }
}

TEST(Bdd, BadVarThrows) {
  BddManager mgr(2);
  EXPECT_THROW(mgr.literal(2), Error);
  EXPECT_THROW(mgr.literal(-1), Error);
  EXPECT_THROW(BddManager(65), Error);
}

TEST(Bdd, SharingKeepsNodeCountLinear) {
  // sum-of-independent-products a0&a1 | a2&a3 | ... has linear BDD size.
  BddManager mgr(12);
  BddRef f = mgr.bdd_false();
  for (int i = 0; i < 12; i += 2)
    f = mgr.bdd_or(f, mgr.bdd_and(mgr.literal(i), mgr.literal(i + 1)));
  EXPECT_LT(mgr.dag_size(f), 24u);
}

}  // namespace
}  // namespace sitm
