// End-to-end integration tests: STG text -> reachability -> synthesis ->
// technology mapping -> gate-level SI verification.

#include <gtest/gtest.h>

#include "benchlib/suite.hpp"
#include "core/mapper.hpp"
#include "netlist/si_verify.hpp"
#include "netlist/tech_decomp.hpp"
#include "sg/properties.hpp"
#include "sg/sg_io.hpp"
#include "stg/g_io.hpp"

namespace sitm {
namespace {

TEST(Integration, GFileToMappedNetlist) {
  // Full pipeline from .g text.
  const std::string g = R"(.model fork2
.inputs r
.outputs g0 g1 g2 d
.graph
r+ g0+ g1+ g2+
g0+ d+
g1+ d+
g2+ d+
d+ r-
r- g0- g1- g2-
g0- d-
g1- d-
g2- d-
d- r+
.marking { <d-,r+> }
.end
)";
  const Stg stg = read_g_string(g);
  const StateGraph sg = stg.to_state_graph();
  ASSERT_TRUE(check_implementability(sg));

  MapperOptions opts;
  opts.library.max_literals = 2;
  const MapResult result = technology_map(sg, opts);
  ASSERT_TRUE(result.implementable) << result.failure;
  const Netlist netlist = result.build_netlist();
  EXPECT_LE(netlist.max_gate_complexity(), 2);
  const SiVerifyResult verify = verify_speed_independence(netlist);
  EXPECT_TRUE(verify.ok) << verify.why;
}

TEST(Integration, SgRoundTripThroughText) {
  const auto entry = bench::suite_benchmark("hazard");
  const StateGraph sg = entry.stg.to_state_graph();
  const StateGraph back = read_sg_string(write_sg_string(sg, "hazard"));
  EXPECT_EQ(back.num_states(), sg.num_states());
  EXPECT_EQ(back.num_arcs(), sg.num_arcs());
  MapperOptions opts;
  opts.library.max_literals = 2;
  const MapResult result = technology_map(back, opts);
  EXPECT_TRUE(result.implementable) << result.failure;
}

TEST(Integration, SuiteMapsAtFourLiterals) {
  // Paper Table 1: at i=4 nearly everything is implementable.  Run a
  // representative subset end-to-end.
  MapperOptions opts;
  opts.library.max_literals = 4;
  for (const char* name : {"chu133", "half", "hazard", "vbe5b", "nowick",
                           "mp-forward-pkt", "trimos-send"}) {
    const auto entry = bench::suite_benchmark(name);
    const StateGraph sg = entry.stg.to_state_graph();
    const MapResult result = technology_map(sg, opts);
    EXPECT_TRUE(result.implementable) << name << ": " << result.failure;
    if (result.implementable) {
      const Netlist netlist = result.build_netlist();
      EXPECT_LE(netlist.max_gate_complexity(), 4) << name;
      const SiVerifyResult verify = verify_speed_independence(netlist);
      EXPECT_TRUE(verify.ok) << name << ": " << verify.why;
    }
  }
}

TEST(Integration, SiCostComparableToNonSi) {
  // The paper's headline cost claim: preserving SI costs little extra area
  // (roughly <= 10% counting a C element as a 3-input gate).  At suite
  // level we only assert the decomposed SI netlist exists and its literal
  // cost stays within a small factor of the non-SI tech_decomp baseline.
  MapperOptions opts;
  opts.library.max_literals = 2;
  const auto entry = bench::suite_benchmark("vbe5b");
  const StateGraph sg = entry.stg.to_state_graph();
  const Netlist original = synthesize_all(sg);
  const TechDecompResult non_si = tech_decomp2(original);

  const MapResult result = technology_map(sg, opts);
  ASSERT_TRUE(result.implementable) << result.failure;
  const Netlist mapped = result.build_netlist();
  const int si_literals = mapped.total_literals();
  EXPECT_LE(si_literals, 3 * std::max(1, non_si.literals));
}

TEST(Integration, MappedSgPreservesOriginalInterface) {
  const auto entry = bench::suite_benchmark("half");
  const StateGraph sg = entry.stg.to_state_graph();
  MapperOptions opts;
  opts.library.max_literals = 2;
  const MapResult result = technology_map(sg, opts);
  ASSERT_TRUE(result.implementable) << result.failure;
  // Original signals keep their names and kinds; added ones are internal.
  for (int s = 0; s < sg.num_signals(); ++s) {
    EXPECT_EQ(result.sg->signal(s).name, sg.signal(s).name);
    EXPECT_EQ(result.sg->signal(s).kind, sg.signal(s).kind);
  }
}

TEST(Integration, DecompositionStepsAreSoundInSequence) {
  // Re-play the recorded steps: each divisor must plan and verify on the
  // SG state it was applied to.
  const StateGraph sg0 = bench::suite_benchmark("vbe5b").stg.to_state_graph();
  MapperOptions opts;
  opts.library.max_literals = 2;
  const MapResult result = technology_map(sg0, opts);
  ASSERT_TRUE(result.implementable) << result.failure;

  StateGraph sg = sg0;
  sg.prune_unreachable();
  for (const auto& step : result.steps) {
    const auto plan =
        step.latch
            ? plan_latch_insertion(sg, step.divisor, step.divisor_reset)
            : plan_insertion(sg, step.divisor);
    ASSERT_TRUE(plan.has_value());
    StateGraph next = insert_signal(sg, *plan, step.new_signal);
    ASSERT_TRUE(verify_insertion(sg, next));
    EXPECT_EQ(next.num_states(), step.states_after);
    sg = std::move(next);
  }
  EXPECT_EQ(sg.num_states(), result.sg->num_states());
}

}  // namespace
}  // namespace sitm
