// Resource governance: RunGuard semantics (budgets, deadlines,
// cancellation), the typed reachability budget, the flow-level
// deadline/budget/cancel failure taxonomy, and the verify stage's
// "unverified" degradation under the kDegrade policy.

#include <gtest/gtest.h>

#include "flow/flow.hpp"
#include "netlist/si_verify.hpp"
#include "stg/g_io.hpp"
#include "util/run_guard.hpp"

namespace sitm {
namespace {

/// Two-phase ring with a CSC conflict (phases share the all-zero code).
const char* kCscConflictSpec = R"(.model twophase
.outputs a b c d
.graph
a+ b+
b+ a-
a- b-
b- c+
c+ d+
d+ c-
c- d-
d- a+
.marking { <d-,a+> }
.end
)";

TEST(RunGuard, BudgetTripsWithCountAndLimit) {
  RunGuard guard;
  guard.set_work_budget(10);
  for (int i = 0; i < 10; ++i) guard.charge(1, "test.site");
  EXPECT_EQ(guard.work(), 10u);
  EXPECT_EQ(guard.status(), GuardStop::kNone);
  try {
    guard.charge(1, "test.site");
    FAIL() << "expected GuardExhausted";
  } catch (const GuardExhausted& e) {
    EXPECT_EQ(e.kind(), GuardStop::kBudget);
    EXPECT_EQ(e.site(), "test.site");
    EXPECT_EQ(e.count(), 11u);
    EXPECT_EQ(e.limit(), 10u);
    EXPECT_NE(std::string(e.what()).find("budget"), std::string::npos);
  }
  EXPECT_EQ(guard.status(), GuardStop::kBudget);
}

TEST(RunGuard, CancelTripsOnNextCharge) {
  RunGuard guard;
  guard.charge(100, "test.site");  // unbudgeted work is free
  EXPECT_FALSE(guard.cancel_requested());
  guard.request_cancel();
  EXPECT_TRUE(guard.cancel_requested());
  EXPECT_THROW(guard.charge(1, "test.site"), GuardExhausted);
  EXPECT_THROW(guard.check("test.site"), GuardExhausted);
  EXPECT_EQ(guard.status(), GuardStop::kCancelled);
}

TEST(RunGuard, ExpiredDeadlineTripsOnCheck) {
  RunGuard guard;
  guard.set_deadline_ms(1e-6);  // effectively already expired
  // check() reads the clock unconditionally (unlike charge()'s amortized
  // poll), so the trip is immediate once the clock has advanced.
  while (true) {
    try {
      guard.check("test.site");
    } catch (const GuardExhausted& e) {
      EXPECT_EQ(e.kind(), GuardStop::kDeadline);
      break;
    }
  }
  EXPECT_EQ(guard.status(), GuardStop::kDeadline);
}

TEST(RunGuard, NullGuardHelpersAreNoOps) {
  guard_charge(nullptr, 1000, "test.site");
  guard_check(nullptr, "test.site");  // must not throw
}

TEST(RunGuard, StopNamesAreStable) {
  EXPECT_STREQ(guard_stop_name(GuardStop::kNone), "none");
  EXPECT_STREQ(guard_stop_name(GuardStop::kBudget), "budget");
  EXPECT_STREQ(guard_stop_name(GuardStop::kDeadline), "deadline");
  EXPECT_STREQ(guard_stop_name(GuardStop::kCancelled), "cancelled");
}

TEST(RunGuard, ReachabilityBudgetIsATypedError) {
  const Stg stg = read_g_string(kCscConflictSpec);
  // The ring has 8 reachable states; a budget of 4 must fail with the
  // structured count/limit payload, not a generic Error.
  try {
    stg.to_state_graph(4);
    FAIL() << "expected GuardExhausted";
  } catch (const GuardExhausted& e) {
    EXPECT_EQ(e.kind(), GuardStop::kBudget);
    EXPECT_EQ(e.site(), "stg.to_state_graph");
    EXPECT_EQ(e.limit(), 4u);
    EXPECT_GE(e.count(), 4u);
  }
  // The default budget is unaffected.
  EXPECT_EQ(stg.to_state_graph().num_states(), 8u);
}

TEST(FlowGuard, MaxStatesFailsReachabilityAsBudget) {
  FlowOptions opts;
  opts.max_states = 4;
  Flow flow(opts);
  const FlowReport report = flow.run_string(kCscConflictSpec);
  ASSERT_FALSE(report.ok);
  EXPECT_EQ(report.failed_stage, Stage::kReachability);
  EXPECT_EQ(report.failure_kind, FailureKind::kBudget);
  EXPECT_EQ(report.stage(Stage::kReachability).failure_kind,
            FailureKind::kBudget);
  for (const Stage s : {Stage::kProperties, Stage::kCsc, Stage::kSynth,
                        Stage::kMap, Stage::kVerify, Stage::kEmit})
    EXPECT_FALSE(report.stage(s).ran) << stage_name(s);
}

TEST(FlowGuard, WorkBudgetFailsWithBudgetKind) {
  FlowOptions opts;
  opts.work_budget = 4;  // reachability alone discovers 8 states
  Flow flow(opts);
  const FlowReport report = flow.run_string(kCscConflictSpec);
  ASSERT_FALSE(report.ok);
  EXPECT_EQ(report.failed_stage, Stage::kReachability);
  EXPECT_EQ(report.failure_kind, FailureKind::kBudget);
}

TEST(FlowGuard, ExpiredDeadlineFailsWithDeadlineKind) {
  FlowOptions opts;
  opts.deadline_ms = 1e-6;  // expires as soon as the clock ticks
  Flow flow(opts);
  const FlowReport report = flow.run_string(kCscConflictSpec);
  ASSERT_FALSE(report.ok);
  EXPECT_EQ(report.failure_kind, FailureKind::kDeadline);
}

TEST(FlowGuard, ExternalCancelFailsWithCancelledKind) {
  FlowOptions opts;
  opts.guard = std::make_shared<RunGuard>();
  opts.guard->request_cancel();  // e.g. a front-end's stop button
  Flow flow(opts);
  const FlowReport report = flow.run_string(kCscConflictSpec);
  ASSERT_FALSE(report.ok);
  EXPECT_EQ(report.failed_stage, Stage::kLoad);
  EXPECT_EQ(report.failure_kind, FailureKind::kCancelled);
}

TEST(FlowGuard, FailureKindSerializedInJson) {
  FlowOptions opts;
  opts.max_states = 4;
  Flow flow(opts);
  const std::string json = flow.run_string(kCscConflictSpec).to_json_string();
  EXPECT_NE(json.find("failure_kind"), std::string::npos) << json;
  EXPECT_NE(json.find("\"budget\""), std::string::npos) << json;
  // An ok run serializes no failure_kind at all.
  Flow ok_flow;
  const std::string ok_json =
      ok_flow.run_string(kCscConflictSpec).to_json_string();
  EXPECT_EQ(ok_json.find("failure_kind"), std::string::npos);
}

TEST(FlowGuard, VerifyBudgetFailsTypedUnderDefaultPolicy) {
  FlowOptions opts;
  opts.verify_max_states = 1;  // exploration cannot finish
  Flow flow(opts);
  const FlowReport report = flow.run_string(kCscConflictSpec);
  ASSERT_FALSE(report.ok);
  EXPECT_EQ(report.failed_stage, Stage::kVerify);
  EXPECT_EQ(report.failure_kind, FailureKind::kBudget);
  // Emit still runs after a verify failure (typed or not).
  EXPECT_TRUE(report.stage(Stage::kEmit).ran);
}

TEST(FlowGuard, VerifyBudgetDegradesToUnverified) {
  FlowOptions opts;
  opts.verify_max_states = 1;
  opts.on_budget = FlowOptions::OnBudget::kDegrade;
  Flow flow(opts);
  const FlowReport report = flow.run_string(kCscConflictSpec);
  ASSERT_TRUE(report.ok) << report.failure;
  const StageReport& sr = report.stage(Stage::kVerify);
  EXPECT_TRUE(sr.ok);
  EXPECT_EQ(sr.metric_value("unverified"), 1.0);
  EXPECT_EQ(sr.metric_value("speed_independent"), 0.0);
  ASSERT_FALSE(sr.warnings.empty());
  EXPECT_NE(sr.warnings.front().find("unverified"), std::string::npos);
  // The result is never mistaken for a proof.
  ASSERT_TRUE(flow.context().verify.has_value());
  EXPECT_FALSE(flow.context().verify->ok);
  EXPECT_TRUE(flow.context().verify->unverified);
  EXPECT_EQ(flow.context().verify->stopped, GuardStop::kBudget);
}

TEST(FlowGuard, UngovernedRunsStayClean) {
  // No deadline/budget options: no guard is created and reports carry no
  // failure kind.
  Flow flow;
  const FlowReport report = flow.run_string(kCscConflictSpec);
  ASSERT_TRUE(report.ok) << report.failure;
  EXPECT_EQ(report.failure_kind, FailureKind::kNone);
  EXPECT_EQ(flow.context().guard, nullptr);
}

}  // namespace
}  // namespace sitm
