// Unit tests for the Verilog / EQN netlist writers.

#include <gtest/gtest.h>

#include "benchlib/generators.hpp"
#include "core/mapper.hpp"
#include "core/mc_cover.hpp"
#include "netlist/writers.hpp"
#include "stg/stg.hpp"

namespace sitm {
namespace {

TEST(Writers, VerilogStructure) {
  const StateGraph sg = bench::make_hazard().to_state_graph();
  const Netlist netlist = synthesize_all(sg);
  const std::string v = write_verilog_string(netlist, "hazard");

  EXPECT_NE(v.find("module hazard"), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
  // Inputs and outputs declared.
  EXPECT_NE(v.find("input  wire a"), std::string::npos);
  EXPECT_NE(v.find("input  wire d"), std::string::npos);
  EXPECT_NE(v.find("output wire c"), std::string::npos);
  EXPECT_NE(v.find("output wire x"), std::string::npos);
  // Sequential signals instantiate the generalized C element.
  EXPECT_NE(v.find("sitm_gc gc_c"), std::string::npos);
  EXPECT_NE(v.find("sitm_gc gc_x"), std::string::npos);
  EXPECT_NE(v.find("module sitm_gc"), std::string::npos);
}

TEST(Writers, VerilogCombinationalUsesAssign) {
  // Pipeline stages are pure combinational covers -> assign statements.
  const StateGraph sg = bench::make_parallelizer(2).to_state_graph();
  const Netlist netlist = synthesize_all(sg);
  const std::string v = write_verilog_string(netlist);
  EXPECT_NE(v.find("assign g0 = r;"), std::string::npos);
  EXPECT_NE(v.find("assign g1 = r;"), std::string::npos);
}

TEST(Writers, EqnStructure) {
  const StateGraph sg = bench::make_hazard().to_state_graph();
  const Netlist netlist = synthesize_all(sg);
  const std::string eqn = write_eqn_string(netlist, "hazard");
  EXPECT_NE(eqn.find("INORDER = a d;"), std::string::npos);
  EXPECT_NE(eqn.find("OUTORDER = c x;"), std::string::npos);
  EXPECT_NE(eqn.find("c = C(c_set, c_reset);"), std::string::npos);
  EXPECT_NE(eqn.find("x_set = "), std::string::npos);
}

TEST(Writers, MappedNetlistIncludesInsertedSignals) {
  const StateGraph sg = bench::make_parallelizer(3).to_state_graph();
  MapperOptions opts;
  opts.library.max_literals = 2;
  const MapResult result = technology_map(sg, opts);
  ASSERT_TRUE(result.implementable);
  const Netlist netlist = result.build_netlist();
  const std::string v = write_verilog_string(netlist);
  for (const auto& step : result.steps)
    EXPECT_NE(v.find(step.new_signal), std::string::npos);
}

TEST(Writers, FactoredExpressionsStayEquivalent) {
  // The writer factors covers; spot-check an expression by re-evaluating the
  // cover vs its factored string structure indirectly through num literals.
  const StateGraph sg = bench::make_combo(2, 2).to_state_graph();
  const Netlist netlist = synthesize_all(sg);
  const std::string v = write_verilog_string(netlist);
  // No empty expressions emitted.
  EXPECT_EQ(v.find("= ;"), std::string::npos);
  EXPECT_EQ(v.find("= \n"), std::string::npos);
}

}  // namespace
}  // namespace sitm
