// Unit tests for the Verilog / EQN netlist writers.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "benchlib/generators.hpp"
#include "core/csc.hpp"
#include "core/mapper.hpp"
#include "core/mc_cover.hpp"
#include "netlist/writers.hpp"
#include "stg/stg.hpp"

namespace sitm {
namespace {

/// INIT bits of every emitted sitm_gc instance, keyed by signal name.
std::vector<std::pair<std::string, bool>> gc_inits(const std::string& v) {
  std::vector<std::pair<std::string, bool>> out;
  const std::string marker = "sitm_gc #(.INIT(1'b";
  for (std::size_t at = v.find(marker); at != std::string::npos;
       at = v.find(marker, at + 1)) {
    const char bit = v[at + marker.size()];
    const std::string gc = ")) gc_";
    const std::size_t name_at = v.find(gc, at) + gc.size();
    out.emplace_back(v.substr(name_at, v.find(' ', name_at) - name_at),
                     bit == '1');
  }
  return out;
}

TEST(Writers, VerilogStructure) {
  const StateGraph sg = bench::make_hazard().to_state_graph();
  const Netlist netlist = synthesize_all(sg);
  const std::string v = write_verilog_string(netlist, "hazard");

  EXPECT_NE(v.find("module hazard"), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
  // Inputs and outputs declared.
  EXPECT_NE(v.find("input  wire a"), std::string::npos);
  EXPECT_NE(v.find("input  wire d"), std::string::npos);
  EXPECT_NE(v.find("output wire c"), std::string::npos);
  EXPECT_NE(v.find("output wire x"), std::string::npos);
  // Sequential signals instantiate the generalized C element with an
  // explicit per-instance power-on value.
  EXPECT_NE(v.find("sitm_gc #(.INIT(1'b0)) gc_c"), std::string::npos);
  EXPECT_NE(v.find("sitm_gc #(.INIT(1'b0)) gc_x"), std::string::npos);
  EXPECT_NE(v.find("module sitm_gc #(parameter INIT = 1'b0)"),
            std::string::npos);
}

TEST(Writers, VerilogInternalSignalsAreWiresNotPorts) {
  // Resolving CSC inserts an internal csc* latch; the emitted module must
  // keep the specification interface as its ports and declare the inserted
  // signal as a plain wire.
  const StateGraph sg = bench::make_csc_ring(2).to_state_graph();
  const CscResult csc = resolve_csc(sg);
  ASSERT_TRUE(csc.resolved) << csc.failure;
  ASSERT_GE(csc.signals_inserted, 1);
  const Netlist netlist = synthesize_all(*csc.sg);
  const std::string v = write_verilog_string(netlist, "ring");

  const std::size_t body = v.find(");");
  ASSERT_NE(body, std::string::npos);
  for (const auto& step : csc.steps) {
    // Not a port: the name must not occur in the port list at all, and the
    // body must declare it as an internal wire.
    EXPECT_EQ(v.substr(0, body).find(step.new_signal), std::string::npos)
        << step.new_signal << " leaked into the port list";
    EXPECT_EQ(v.find("output wire " + step.new_signal), std::string::npos);
    EXPECT_NE(v.find("  wire " + step.new_signal + ";"), std::string::npos);
  }
}

TEST(Writers, VerilogGcInitMatchesInitialCode) {
  // Round-trip: every emitted C element's INIT parameter must equal the
  // signal's value in the SG's initial state (which the reachability engine
  // pins to the specification's inferred initial code).
  const Stg ring = bench::make_csc_ring(2);
  StateGraph sg = ring.to_state_graph();
  const CscResult csc = resolve_csc(sg);
  ASSERT_TRUE(csc.resolved) << csc.failure;
  const StateGraph& resolved = *csc.sg;
  EXPECT_EQ(resolved.code(resolved.initial()) &
                ((StateCode{1} << ring.num_signals()) - 1),
            ring.infer_initial_code());

  const Netlist netlist = synthesize_all(resolved);
  const std::string v = write_verilog_string(netlist, "ring");
  const auto inits = gc_inits(v);
  EXPECT_FALSE(inits.empty());
  for (const auto& [name, init] : inits) {
    const int sig = resolved.find_signal(name);
    ASSERT_GE(sig, 0) << name;
    EXPECT_EQ(init, resolved.value(resolved.initial(), sig)) << name;
  }
}

TEST(Writers, VerilogGcInitOneIsEmitted) {
  // A Muller C element observed between c+ and c-: c = 1 in the initial
  // state, so its gc instance must power on at 1 instead of the historical
  // hard-coded 1'b0.
  StateGraph sg;
  const int a = sg.add_signal("a", SignalKind::kInput);
  const int b = sg.add_signal("b", SignalKind::kInput);
  const int c = sg.add_signal("c", SignalKind::kOutput);
  const StateId s000 = sg.add_state(0b000);
  const StateId s100 = sg.add_state(0b001);
  const StateId s010 = sg.add_state(0b010);
  const StateId s110 = sg.add_state(0b011);
  const StateId s111 = sg.add_state(0b111);
  const StateId s011 = sg.add_state(0b110);
  const StateId s101 = sg.add_state(0b101);
  const StateId s001 = sg.add_state(0b100);
  sg.add_arc(s000, Event{a, true}, s100);
  sg.add_arc(s000, Event{b, true}, s010);
  sg.add_arc(s100, Event{b, true}, s110);
  sg.add_arc(s010, Event{a, true}, s110);
  sg.add_arc(s110, Event{c, true}, s111);
  sg.add_arc(s111, Event{a, false}, s011);
  sg.add_arc(s111, Event{b, false}, s101);
  sg.add_arc(s011, Event{b, false}, s001);
  sg.add_arc(s101, Event{a, false}, s001);
  sg.add_arc(s001, Event{c, false}, s000);
  sg.set_initial(s111);

  const Netlist netlist = synthesize_all(sg);
  const std::string v = write_verilog_string(netlist, "celem");
  const auto inits = gc_inits(v);
  ASSERT_EQ(inits.size(), 1u);
  EXPECT_EQ(inits[0].first, "c");
  EXPECT_TRUE(inits[0].second);
  EXPECT_NE(v.find("sitm_gc #(.INIT(1'b1)) gc_c"), std::string::npos);
}

TEST(Writers, VerilogCombinationalUsesAssign) {
  // Pipeline stages are pure combinational covers -> assign statements.
  const StateGraph sg = bench::make_parallelizer(2).to_state_graph();
  const Netlist netlist = synthesize_all(sg);
  const std::string v = write_verilog_string(netlist);
  EXPECT_NE(v.find("assign g0 = r;"), std::string::npos);
  EXPECT_NE(v.find("assign g1 = r;"), std::string::npos);
}

TEST(Writers, EqnStructure) {
  const StateGraph sg = bench::make_hazard().to_state_graph();
  const Netlist netlist = synthesize_all(sg);
  const std::string eqn = write_eqn_string(netlist, "hazard");
  EXPECT_NE(eqn.find("INORDER = a d;"), std::string::npos);
  EXPECT_NE(eqn.find("OUTORDER = c x;"), std::string::npos);
  EXPECT_NE(eqn.find("c = C(c_set, c_reset);"), std::string::npos);
  EXPECT_NE(eqn.find("x_set = "), std::string::npos);
}

TEST(Writers, MappedNetlistIncludesInsertedSignals) {
  const StateGraph sg = bench::make_parallelizer(3).to_state_graph();
  MapperOptions opts;
  opts.library.max_literals = 2;
  const MapResult result = technology_map(sg, opts);
  ASSERT_TRUE(result.implementable);
  const Netlist netlist = result.build_netlist();
  const std::string v = write_verilog_string(netlist);
  for (const auto& step : result.steps)
    EXPECT_NE(v.find(step.new_signal), std::string::npos);
}

TEST(Writers, FactoredExpressionsStayEquivalent) {
  // The writer factors covers; spot-check an expression by re-evaluating the
  // cover vs its factored string structure indirectly through num literals.
  const StateGraph sg = bench::make_combo(2, 2).to_state_graph();
  const Netlist netlist = synthesize_all(sg);
  const std::string v = write_verilog_string(netlist);
  // No empty expressions emitted.
  EXPECT_EQ(v.find("= ;"), std::string::npos);
  EXPECT_EQ(v.find("= \n"), std::string::npos);
}

}  // namespace
}  // namespace sitm
