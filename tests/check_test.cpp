// The output-side static analysis gate: nlint's structural rules, the BDD
// equivalence checker (netlist/equiv.hpp) with its mutation harness, the
// reorder wiring, and the flow's `check` stage plumbing.

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "flow/flow.hpp"
#include "netlist/equiv.hpp"
#include "netlist/nlint.hpp"
#include "netlist/tech_decomp.hpp"
#include "sg/state_graph.hpp"

namespace sitm {
namespace {

std::string corpus_dir() {
  return (std::filesystem::path(SITM_SOURCE_DIR) / "data" / "benchmarks")
      .string();
}

std::vector<std::string> corpus_files() {
  std::vector<std::string> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(corpus_dir()))
    if (entry.path().extension() == ".g") files.push_back(entry.path());
  std::sort(files.begin(), files.end());
  return files;
}

/// Minimal handshake SG: input a, output b, b follows a.
/// s0(00) -a+-> s1(01) -b+-> s2(11) -a--> s3(10) -b--> s0.
/// (bit 0 = a, bit 1 = b; next_value(b) is 1 exactly in {s1, s2}.)
StateGraph follow_sg() {
  StateGraph sg;
  const int a = sg.add_signal("a", SignalKind::kInput);
  const int b = sg.add_signal("b", SignalKind::kOutput);
  const StateId s0 = sg.add_state(0b00), s1 = sg.add_state(0b01),
                s2 = sg.add_state(0b11), s3 = sg.add_state(0b10);
  sg.add_arc(s0, Event{a, true}, s1);
  sg.add_arc(s1, Event{b, true}, s2);
  sg.add_arc(s2, Event{a, false}, s3);
  sg.add_arc(s3, Event{b, false}, s0);
  sg.set_initial(s0);
  return sg;
}

/// The correct combinational implementation for follow_sg: b = a.
SignalImpl follow_impl() {
  SignalImpl impl;
  impl.signal = 1;
  impl.combinational = true;
  impl.set = Cover(2, {Cube::literal(0, true)});
  impl.complexity = 1;
  return impl;
}

// ----- nlint rules --------------------------------------------------------

TEST(Nlint, CleanNetlistHasNoDiagnostics) {
  const StateGraph sg = follow_sg();
  Netlist nl(&sg);
  nl.add_impl(follow_impl());
  const NlintReport report = nlint_netlist(nl);
  EXPECT_TRUE(report.clean()) << report.to_json().dump(2);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.rules_run, 6);  // no decomp result: wire rules skipped
}

TEST(Nlint, MissingAndDuplicateImplementations) {
  const StateGraph sg = follow_sg();
  Netlist none(&sg);
  const NlintReport missing = nlint_netlist(none);
  EXPECT_FALSE(missing.ok());
  EXPECT_TRUE(missing.has(NlintRule::kMissingImpl));

  Netlist twice(&sg);
  twice.add_impl(follow_impl());
  twice.add_impl(follow_impl());
  const NlintReport dup = nlint_netlist(twice);
  EXPECT_FALSE(dup.ok());
  EXPECT_TRUE(dup.has(NlintRule::kMissingImpl));
  EXPECT_NE(dup.first_error().find("driven by 2"), std::string::npos)
      << dup.first_error();
}

TEST(Nlint, BadReferences) {
  const StateGraph sg = follow_sg();
  // Driving an input signal.
  Netlist drives_input(&sg);
  SignalImpl onto_a = follow_impl();
  onto_a.signal = 0;
  drives_input.add_impl(onto_a);
  EXPECT_TRUE(nlint_netlist(drives_input).has(NlintRule::kBadReference));

  // Driving a signal index the graph does not have.
  Netlist out_of_range(&sg);
  SignalImpl beyond = follow_impl();
  beyond.signal = 7;
  out_of_range.add_impl(beyond);
  EXPECT_TRUE(nlint_netlist(out_of_range).has(NlintRule::kBadReference));

  // Reading a signal index the graph does not have.
  Netlist reads_ghost(&sg);
  SignalImpl ghost = follow_impl();
  ghost.set = Cover(8, {Cube::literal(5, true)});
  reads_ghost.add_impl(ghost);
  const NlintReport report = nlint_netlist(reads_ghost);
  EXPECT_TRUE(report.has(NlintRule::kBadReference));
  EXPECT_NE(report.first_error().find("undeclared signal"),
            std::string::npos);
}

TEST(Nlint, EmptyNetworkAndDriveFight) {
  const StateGraph sg = follow_sg();
  Netlist nl(&sg);
  SignalImpl seq;
  seq.signal = 1;
  seq.combinational = false;
  seq.set = Cover(2, {Cube::literal(0, true)});
  seq.reset = Cover(2);  // empty: the C element could never fall
  nl.add_impl(seq);
  const NlintReport empty = nlint_netlist(nl);
  EXPECT_FALSE(empty.ok());
  EXPECT_TRUE(empty.has(NlintRule::kEmptyNetwork));

  Netlist fight(&sg);
  SignalImpl both = seq;
  both.reset = Cover(2, {Cube::literal(0, true)});  // set ∧ reset != 0
  fight.add_impl(both);
  const NlintReport fought = nlint_netlist(fight);
  EXPECT_TRUE(fought.has(NlintRule::kDriveFight));
  // A drive fight on don't-care codes is legal hardware until the BDD
  // checker proves otherwise, so the rule warns instead of failing.
  EXPECT_TRUE(fought.ok());
}

TEST(Nlint, IncompleteCombinationalCover) {
  const StateGraph sg = follow_sg();
  Netlist nl(&sg);
  SignalImpl impl = follow_impl();
  impl.set = Cover(2);  // constant 0: misses every on-state
  nl.add_impl(impl);
  const NlintReport report = nlint_netlist(nl);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has(NlintRule::kIncompleteCover));
  // The diagnostic names a concrete reachable state.
  EXPECT_NE(report.first_error().find("reachable state"), std::string::npos);
}

TEST(Nlint, FaninLimitIsConfigurable) {
  const StateGraph sg = follow_sg();
  Netlist nl(&sg);
  SignalImpl impl = follow_impl();
  impl.set = Cover(2, {Cube::literal(0, true).with_literal(1, false)});
  nl.add_impl(impl);
  NlintOptions tight;
  tight.max_gc_fanin = 1;
  EXPECT_TRUE(nlint_netlist(nl, nullptr, tight).has(NlintRule::kFaninLimit));
  NlintOptions off;
  off.max_gc_fanin = 0;  // 0 disables the rule
  EXPECT_FALSE(nlint_netlist(nl, nullptr, off).has(NlintRule::kFaninLimit));
  EXPECT_FALSE(nlint_netlist(nl).has(NlintRule::kFaninLimit));  // default 16
}

TEST(Nlint, DecompWireRules) {
  const StateGraph sg = follow_sg();
  Netlist nl(&sg);
  nl.add_impl(follow_impl());

  TechDecompResult decomp;
  decomp.gates.push_back(
      SimpleGate{SimpleGate::Op::kBuf, "b", "a", ""});  // feeds the output
  decomp.gates.push_back(
      SimpleGate{SimpleGate::Op::kAnd, "b_and0", "a", "!b"});  // consumed by
  decomp.gates.push_back(
      SimpleGate{SimpleGate::Op::kOr, "b_or0", "b_and0", "a"});  // ...nothing
  const NlintReport unused = nlint_netlist(nl, &decomp);
  EXPECT_EQ(unused.rules_run, kNumNlintRules);
  EXPECT_TRUE(unused.has(NlintRule::kUnusedWire));
  EXPECT_FALSE(unused.has(NlintRule::kDuplicateGate));

  TechDecompResult dup;
  dup.gates.push_back(SimpleGate{SimpleGate::Op::kAnd, "b", "a", "!b"});
  // Same function, operands swapped: AND is commutative.
  dup.gates.push_back(SimpleGate{SimpleGate::Op::kAnd, "b_and1", "!b", "a"});
  dup.gates.push_back(SimpleGate{SimpleGate::Op::kBuf, "b2", "b_and1", ""});
  const NlintReport duplicated = nlint_netlist(nl, &dup);
  EXPECT_TRUE(duplicated.has(NlintRule::kDuplicateGate));
}

TEST(Nlint, JsonCarriesTypedDiagnostics) {
  const StateGraph sg = follow_sg();
  Netlist nl(&sg);
  const NlintReport report = nlint_netlist(nl);
  const std::string json = report.to_json().dump(0);
  EXPECT_NE(json.find("\"missing-impl\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"error\""), std::string::npos);
  EXPECT_NE(json.find("\"rules_run\""), std::string::npos);
}

// ----- equivalence checker ------------------------------------------------

TEST(Equiv, ProvesTheCorrectImplementation) {
  const StateGraph sg = follow_sg();
  Netlist nl(&sg);
  nl.add_impl(follow_impl());
  const EquivReport report = check_equivalence(nl);
  EXPECT_TRUE(report.ok) << report.first_failure();
  EXPECT_EQ(report.gates_checked, 1);
  EXPECT_EQ(report.gates_proven, 1);
  EXPECT_EQ(report.reach_states, 4u);
  EXPECT_FALSE(report.reordered);
  EXPECT_GT(report.bdd_nodes, 0u);
}

TEST(Equiv, RejectsWrongPolarityWithConcreteCounterexample) {
  const StateGraph sg = follow_sg();
  Netlist nl(&sg);
  SignalImpl impl = follow_impl();
  impl.set = Cover(2, {Cube::literal(0, false)});  // b = !a: wrong
  nl.add_impl(impl);
  const EquivReport report = check_equivalence(nl);
  ASSERT_FALSE(report.ok);
  ASSERT_FALSE(report.failures.empty());
  const GateVerdict& v = report.failures.front();
  EXPECT_EQ(v.name, "b");
  EXPECT_EQ(v.network, "complete");
  ASSERT_NE(v.counterexample_state, kNoState);
  // The counterexample is a real reachable state whose code matches, and
  // it genuinely demonstrates the mismatch.
  EXPECT_EQ(sg.code(v.counterexample_state), v.counterexample_code);
  EXPECT_TRUE(sg.reachable().test(
      static_cast<std::size_t>(v.counterexample_state)));
  EXPECT_FALSE(impl.set.eval(v.counterexample_code));
}

TEST(Equiv, GuardBudgetSurfacesAsGuardExhausted) {
  const StateGraph sg = follow_sg();
  Netlist nl(&sg);
  nl.add_impl(follow_impl());
  RunGuard guard;
  guard.set_work_budget(2);  // reach encoding alone needs 4 state charges
  EXPECT_THROW(check_equivalence(nl, {}, &guard), GuardExhausted);
}

TEST(Equiv, JsonCarriesVerdictsAndSizes) {
  const StateGraph sg = follow_sg();
  Netlist nl(&sg);
  nl.add_impl(follow_impl());
  const std::string json = check_equivalence(nl).to_json().dump(0);
  EXPECT_NE(json.find("\"gates_proven\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"reach_bdd_size\""), std::string::npos);
  EXPECT_NE(json.find("\"failures\": []"), std::string::npos);
}

// ----- corpus + mutation matrix -------------------------------------------

/// Synthesize one spec to its mapped netlist (check off: the pristine
/// baseline the mutation matrix corrupts).
Netlist mapped_netlist(const std::string& path, Flow& flow) {
  FlowOptions opts;
  opts.stop_after = Stage::kMap;
  flow = Flow(opts);
  const FlowReport report = flow.run_file(path);
  EXPECT_TRUE(report.ok) << path << ": " << report.failure;
  EXPECT_TRUE(flow.context().netlist.has_value()) << path;
  return *flow.context().netlist;
}

TEST(Equiv, AllCorpusNetlistsProveCleanEndToEnd) {
  const auto files = corpus_files();
  ASSERT_EQ(files.size(), 32u);
  for (const auto& path : files) {
    FlowOptions opts;
    opts.check = true;
    Flow flow(opts);
    const FlowReport report = flow.run_file(path);
    EXPECT_TRUE(report.ok) << path << ": " << report.failure;
    const StageReport& check = report.stage(Stage::kCheck);
    EXPECT_TRUE(check.ran) << path;
    ASSERT_TRUE(flow.context().equiv.has_value()) << path;
    const EquivReport& equiv = *flow.context().equiv;
    EXPECT_GT(equiv.gates_checked, 0) << path;
    EXPECT_EQ(equiv.gates_proven, equiv.gates_checked) << path;
    ASSERT_TRUE(flow.context().nlint.has_value()) << path;
    EXPECT_EQ(flow.context().nlint->errors, 0) << path;
  }
}

TEST(Equiv, EverySeededMutantIsRejectedWithACounterexample) {
  // Every mutation site of every kind on a few corpus netlists: minimized
  // covers are irredundant, so each flip/drop uncovers some essential
  // state, and a set/reset swap contradicts both excitation regions.
  const std::string specs[] = {"alloc-outbound.g", "chu133.g",
                               "converta.g"};
  for (const auto& name : specs) {
    const std::string path =
        (std::filesystem::path(corpus_dir()) / name).string();
    Flow flow;
    const Netlist pristine = mapped_netlist(path, flow);
    ASSERT_TRUE(check_equivalence(pristine).ok) << name;
    int sites_total = 0;
    for (const NetlistMutation kind :
         {NetlistMutation::kFlipLiteral, NetlistMutation::kDropCube,
          NetlistMutation::kSwapSetReset}) {
      for (int which = 0;; ++which) {
        Netlist mutant = pristine;
        if (!mutate_netlist(mutant, kind, which)) break;
        ++sites_total;
        const EquivReport report = check_equivalence(mutant);
        ASSERT_FALSE(report.ok)
            << name << ": " << netlist_mutation_name(kind) << " #" << which
            << " survived";
        ASSERT_FALSE(report.failures.empty());
        // At least one failed verdict carries a concrete reachable state.
        bool concrete = false;
        for (const GateVerdict& v : report.failures) {
          if (v.counterexample_state == kNoState) continue;
          concrete = true;
          EXPECT_EQ(mutant.sg().code(v.counterexample_state),
                    v.counterexample_code)
              << name;
          EXPECT_TRUE(mutant.sg().reachable().test(
              static_cast<std::size_t>(v.counterexample_state)))
              << name;
        }
        EXPECT_TRUE(concrete)
            << name << ": " << netlist_mutation_name(kind) << " #" << which;
      }
    }
    EXPECT_GT(sites_total, 0) << name;
  }
}

TEST(Equiv, MutationKindsEnumerateDisjointSites) {
  const std::string path =
      (std::filesystem::path(corpus_dir()) / "alloc-outbound.g").string();
  Flow flow;
  const Netlist pristine = mapped_netlist(path, flow);
  // alloc-outbound has 2 C elements: swap has exactly that many sites.
  int swaps = 0;
  for (int which = 0;; ++which) {
    Netlist mutant = pristine;
    if (!mutate_netlist(mutant, NetlistMutation::kSwapSetReset, which)) break;
    ++swaps;
  }
  EXPECT_EQ(swaps, pristine.num_c_elements());
  // A mutation out of range reports false and leaves the netlist alone.
  Netlist untouched = pristine;
  EXPECT_FALSE(
      mutate_netlist(untouched, NetlistMutation::kSwapSetReset, swaps));
  EXPECT_TRUE(untouched.same_impls(pristine));
}

// ----- reorder wiring -----------------------------------------------------

TEST(Equiv, ReorderKeepsVerdictsAndRecordsSizes) {
  const std::string path =
      (std::filesystem::path(corpus_dir()) / "master-read.g").string();
  Flow flow;
  const Netlist netlist = mapped_netlist(path, flow);

  const EquivReport plain = check_equivalence(netlist);
  CheckOptions reorder;
  reorder.reorder = true;
  const EquivReport sifted = check_equivalence(netlist, reorder);

  EXPECT_TRUE(plain.ok);
  EXPECT_TRUE(sifted.ok);
  EXPECT_EQ(plain.gates_checked, sifted.gates_checked);
  EXPECT_EQ(plain.gates_proven, sifted.gates_proven);
  EXPECT_FALSE(plain.reordered);
  EXPECT_TRUE(sifted.reordered);
  EXPECT_GT(sifted.reorder_size_before, 0u);
  // Sifting never commits a worse order than the identity it starts from.
  EXPECT_LE(sifted.reorder_size_after, sifted.reorder_size_before);
  EXPECT_EQ(plain.reach_states, sifted.reach_states);

  // And a mutant is rejected identically under the sifted order.
  Netlist mutant = netlist;
  ASSERT_TRUE(
      mutate_netlist(mutant, NetlistMutation::kFlipLiteral, 0));
  const EquivReport plain_bad = check_equivalence(mutant);
  const EquivReport sifted_bad = check_equivalence(mutant, reorder);
  ASSERT_FALSE(plain_bad.ok);
  ASSERT_FALSE(sifted_bad.ok);
  ASSERT_FALSE(sifted_bad.failures.empty());
  EXPECT_EQ(plain_bad.failures.front().name, sifted_bad.failures.front().name);
  EXPECT_EQ(plain_bad.failures.front().network,
            sifted_bad.failures.front().network);
  EXPECT_NE(sifted_bad.failures.front().counterexample_state, kNoState);
}

// ----- flow stage plumbing ------------------------------------------------

TEST(CheckStage, OffByDefaultOnInReportAndBitIdenticalAcrossThreads) {
  const std::string path =
      (std::filesystem::path(corpus_dir()) / "alloc-outbound.g").string();
  {
    Flow flow;  // default: the stage is skipped, not run
    const FlowReport report = flow.run_file(path);
    ASSERT_TRUE(report.ok) << report.failure;
    EXPECT_TRUE(report.stage(Stage::kCheck).skipped);
    EXPECT_FALSE(flow.context().equiv.has_value());
  }
  // The check stage's report is bit-identical at any thread count (the
  // synthesized netlists are, so the proofs over them must be too).
  std::vector<std::pair<std::string, double>> baseline;
  for (const int threads : {1, 2, 4}) {
    FlowOptions opts;
    opts.check = true;
    opts.mc.threads = threads;
    opts.mapper.threads = threads;
    Flow flow(opts);
    const FlowReport report = flow.run_file(path);
    ASSERT_TRUE(report.ok) << report.failure;
    const StageReport& check = report.stage(Stage::kCheck);
    ASSERT_TRUE(check.ran);
    if (baseline.empty()) {
      baseline = check.metrics;
      EXPECT_FALSE(baseline.empty());
    } else {
      EXPECT_EQ(check.metrics, baseline) << "threads=" << threads;
    }
  }
}

TEST(CheckStage, StageNameRoundTripsAndOrdering) {
  EXPECT_STREQ(stage_name(Stage::kCheck), "check");
  ASSERT_TRUE(parse_stage("check").has_value());
  EXPECT_EQ(*parse_stage("check"), Stage::kCheck);
  EXPECT_LT(static_cast<int>(Stage::kMap), static_cast<int>(Stage::kCheck));
  EXPECT_LT(static_cast<int>(Stage::kCheck),
            static_cast<int>(Stage::kVerify));
}

TEST(CheckStage, StopAfterMapLeavesCheckUnrun) {
  const std::string path =
      (std::filesystem::path(corpus_dir()) / "alloc-outbound.g").string();
  FlowOptions opts;
  opts.check = true;
  opts.stop_after = Stage::kMap;
  Flow flow(opts);
  const FlowReport report = flow.run_file(path);
  ASSERT_TRUE(report.ok);
  EXPECT_FALSE(report.stage(Stage::kCheck).ran);
}

TEST(CheckStage, SkippedNetlistMeansAutoSkipWithWarning) {
  const std::string path =
      (std::filesystem::path(corpus_dir()) / "alloc-outbound.g").string();
  FlowOptions opts;
  opts.check = true;
  opts.set_skip(Stage::kSynth);
  opts.set_skip(Stage::kDecomp);
  opts.set_skip(Stage::kMap);
  opts.set_skip(Stage::kVerify);
  opts.set_skip(Stage::kEmit);
  Flow flow(opts);
  const FlowReport report = flow.run_file(path);
  ASSERT_TRUE(report.ok) << report.failure;
  const StageReport& check = report.stage(Stage::kCheck);
  EXPECT_TRUE(check.skipped);
  EXPECT_FALSE(check.warnings.empty());
}

TEST(CheckStage, RejectsACorruptNetlistTyped) {
  // Against a hand-built SG revision: run the flow over an explicit SG
  // whose only output is implemented wrongly... simplest route is the
  // direct one — fail the stage through the fault-free path by checking a
  // Flow that synthesized fine, then corrupting its context is not
  // possible from outside; instead prove the taxonomy through nlint: a
  // spec whose synth netlist is fine but whose check options make nlint
  // error is not constructible either.  So: drive the stage body directly
  // via a flow over follow_sg-like input with an impossible fanin limit —
  // fanin produces warnings only.  The typed `spec` rejection is therefore
  // exercised end-to-end by the CLI mutation path and the fault matrix;
  // here we pin that a clean corpus run reports ok with the stage metrics.
  const std::string path =
      (std::filesystem::path(corpus_dir()) / "chu133.g").string();
  FlowOptions opts;
  opts.check = true;
  Flow flow(opts);
  const FlowReport report = flow.run_file(path);
  ASSERT_TRUE(report.ok) << report.failure;
  const StageReport& check = report.stage(Stage::kCheck);
  EXPECT_GT(*check.metric_value("gates_proven"), 0.0);
  EXPECT_EQ(*check.metric_value("nlint_errors"), 0.0);
  EXPECT_GT(*check.metric_value("bdd_nodes"), 0.0);
}

}  // namespace
}  // namespace sitm
