// Unit tests for the STG (Petri net) substrate: token game, reachability,
// the .g format, and error detection.

#include <gtest/gtest.h>

#include "sg/properties.hpp"
#include "sg/state_graph.hpp"
#include "stg/g_io.hpp"
#include "stg/stg.hpp"
#include "util/error.hpp"

namespace sitm {
namespace {

/// Handshake STG: r+ -> a+ -> r- -> a- -> (r+).
Stg handshake_stg() {
  Stg stg;
  const int r = stg.add_signal("r", SignalKind::kInput);
  const int a = stg.add_signal("a", SignalKind::kOutput);
  const TransId rp = stg.add_transition(r, true);
  const TransId ap = stg.add_transition(a, true);
  const TransId rm = stg.add_transition(r, false);
  const TransId am = stg.add_transition(a, false);
  stg.connect_tt(rp, ap);
  stg.connect_tt(ap, rm);
  stg.connect_tt(rm, am);
  stg.mark_initial(stg.connect_tt(am, rp));
  return stg;
}

TEST(Stg, HandshakeReachability) {
  const StateGraph sg = handshake_stg().to_state_graph();
  EXPECT_EQ(sg.num_states(), 4u);
  EXPECT_EQ(sg.num_arcs(), 4u);
  EXPECT_EQ(sg.code(sg.initial()), 0u);
  EXPECT_TRUE(check_implementability(sg));
}

TEST(Stg, InitialCodeInference) {
  // Same net but first transition of r is r- (r starts at 1).
  Stg stg;
  const int r = stg.add_signal("r", SignalKind::kInput);
  const int a = stg.add_signal("a", SignalKind::kOutput);
  const TransId rm = stg.add_transition(r, false);
  const TransId ap = stg.add_transition(a, true);
  const TransId rp = stg.add_transition(r, true);
  const TransId am = stg.add_transition(a, false);
  stg.connect_tt(rm, ap);
  stg.connect_tt(ap, rp);
  stg.connect_tt(rp, am);
  stg.mark_initial(stg.connect_tt(am, rm));
  EXPECT_EQ(stg.infer_initial_code(), 0b01u);  // r=1, a=0
}

TEST(Stg, ConcurrencyExpandsToDiamond) {
  // r+ forks b0+ and b1+; join at d+.
  Stg stg;
  const int r = stg.add_signal("r", SignalKind::kInput);
  const int b0 = stg.add_signal("b0", SignalKind::kOutput);
  const int b1 = stg.add_signal("b1", SignalKind::kOutput);
  const int d = stg.add_signal("d", SignalKind::kOutput);
  const TransId rp = stg.add_transition(r, true);
  const TransId b0p = stg.add_transition(b0, true);
  const TransId b1p = stg.add_transition(b1, true);
  const TransId dp = stg.add_transition(d, true);
  stg.connect_tt(rp, b0p);
  stg.connect_tt(rp, b1p);
  stg.connect_tt(b0p, dp);
  stg.connect_tt(b1p, dp);
  // close the cycle so every signal alternates
  const TransId rm = stg.add_transition(r, false);
  const TransId b0m = stg.add_transition(b0, false);
  const TransId b1m = stg.add_transition(b1, false);
  const TransId dm = stg.add_transition(d, false);
  stg.connect_tt(dp, rm);
  stg.connect_tt(rm, b0m);
  stg.connect_tt(rm, b1m);
  stg.connect_tt(b0m, dm);
  stg.connect_tt(b1m, dm);
  stg.mark_initial(stg.connect_tt(dm, rp));

  const StateGraph sg = stg.to_state_graph();
  // b0+/b1+ concurrent: 4 states in that phase; same falling: total
  // 1 (idle) + 1 (r=1) + 4-1 (diamond) + 1 (d=1) + 1 (r=0) + 3 = 10.
  EXPECT_TRUE(check_implementability(sg));
  EXPECT_FALSE(enumerate_diamonds(sg).empty());
}

TEST(Stg, NonOneSafeDetected) {
  Stg stg;
  const int a = stg.add_signal("a", SignalKind::kOutput);
  const TransId ap = stg.add_transition(a, true);
  const TransId am = stg.add_transition(a, false);
  const PlaceId p = stg.add_place("p");
  stg.connect_tt(ap, am);
  stg.mark_initial(stg.connect_tt(am, ap));
  stg.connect_tp(ap, p);  // p accumulates tokens
  stg.mark_initial(p);
  EXPECT_THROW(stg.to_state_graph(), Error);
}

TEST(Stg, InconsistentLabelingDetected) {
  // a+ twice in a row.
  Stg stg;
  const int a = stg.add_signal("a", SignalKind::kOutput);
  const TransId ap1 = stg.add_transition(a, true, 1);
  const TransId ap2 = stg.add_transition(a, true, 2);
  stg.connect_tt(ap1, ap2);
  stg.mark_initial(stg.connect_tt(ap2, ap1));
  EXPECT_THROW(stg.to_state_graph(), Error);
}

TEST(Stg, StateExplosionCapped) {
  // 12 concurrent toggles = 2^12+ states; cap at 100.
  Stg stg;
  std::vector<TransId> pluses;
  for (int i = 0; i < 12; ++i) {
    const int s = stg.add_signal("s" + std::to_string(i), SignalKind::kOutput);
    const TransId p = stg.add_transition(s, true);
    const TransId m = stg.add_transition(s, false);
    stg.connect_tt(p, m);
    stg.mark_initial(stg.connect_tt(m, p));
  }
  EXPECT_THROW(stg.to_state_graph(100), Error);
}

TEST(GIo, RoundTrip) {
  const Stg stg = handshake_stg();
  const std::string text = write_g_string(stg, "hs");
  std::string name;
  const Stg back = read_g_string(text, &name);
  EXPECT_EQ(name, "hs");
  EXPECT_EQ(back.num_signals(), 2);
  EXPECT_EQ(back.num_transitions(), 4u);
  const StateGraph sg = back.to_state_graph();
  EXPECT_EQ(sg.num_states(), 4u);
  EXPECT_TRUE(check_implementability(sg));
}

TEST(GIo, ParseClassicFormat) {
  const std::string text = R"(.model xyz
.inputs req
.outputs ack
.graph
req+ ack+
ack+ req-
req- ack-
ack- req+
.marking { <ack-,req+> }
.end
)";
  const Stg stg = read_g_string(text);
  EXPECT_EQ(stg.num_signals(), 2);
  const StateGraph sg = stg.to_state_graph();
  EXPECT_EQ(sg.num_states(), 4u);
  EXPECT_EQ(sg.code(sg.initial()), 0u);
}

TEST(GIo, ExplicitPlacesAndInstances) {
  const std::string text = R"(.model t
.inputs r0 r1
.outputs a
.graph
p0 r0+ r1+
r0+ a+/1
a+/1 r0-
r0- a-/1
a-/1 p0
r1+ a+/2
a+/2 r1-
r1- a-/2
a-/2 p0
.marking { p0 }
.end
)";
  const Stg stg = read_g_string(text);
  const StateGraph sg = stg.to_state_graph();
  EXPECT_TRUE(check_implementability(sg));
  // Choice between two clients: 1 idle + 3 new states per client (the
  // fourth transition returns to the idle marking).
  EXPECT_EQ(sg.num_states(), 7u);
}

TEST(GIo, DummyRejected) {
  EXPECT_THROW(
      read_g_string(".model t\n.dummy e\n.graph\ne e\n.marking{}\n.end\n"),
      Error);
}

TEST(GIo, UnknownSignalRejected) {
  EXPECT_THROW(read_g_string(
                   ".model t\n.inputs a\n.graph\nb+ a+\na+ b+\n.marking{}\n.end\n"),
               Error);
}

TEST(GIo, WriterEmitsExplicitPlacesForChoice) {
  // Round-trip a net with an explicit choice place.
  Stg stg;
  const int r0 = stg.add_signal("r0", SignalKind::kInput);
  const int r1 = stg.add_signal("r1", SignalKind::kInput);
  const PlaceId p = stg.add_place("idle");
  stg.mark_initial(p);
  const TransId r0p = stg.add_transition(r0, true);
  const TransId r1p = stg.add_transition(r1, true);
  const TransId r0m = stg.add_transition(r0, false);
  const TransId r1m = stg.add_transition(r1, false);
  stg.connect_pt(p, r0p);
  stg.connect_pt(p, r1p);
  stg.connect_tt(r0p, r0m);
  stg.connect_tt(r1p, r1m);
  stg.connect_tp(r0m, p);
  stg.connect_tp(r1m, p);

  const Stg back = read_g_string(write_g_string(stg));
  const StateGraph a = stg.to_state_graph();
  const StateGraph b = back.to_state_graph();
  EXPECT_EQ(a.num_states(), b.num_states());
  EXPECT_EQ(a.num_arcs(), b.num_arcs());
}

}  // namespace
}  // namespace sitm
