// Unit tests for the State Graph model: construction, property checks,
// regions, and the .sg text format.

#include <gtest/gtest.h>

#include <sstream>

#include "sg/properties.hpp"
#include "sg/regions.hpp"
#include "sg/sg_io.hpp"
#include "sg/state_graph.hpp"
#include "util/error.hpp"

namespace sitm {
namespace {

/// Two-signal handshake: r+ -> a+ -> r- -> a- -> (repeat).  r input, a
/// output.  Codes: 00 -> 10 -> 11 -> 01 -> 00.
StateGraph handshake() {
  StateGraph sg;
  const int r = sg.add_signal("r", SignalKind::kInput);
  const int a = sg.add_signal("a", SignalKind::kOutput);
  const StateId s00 = sg.add_state(0b00);
  const StateId s10 = sg.add_state(0b01);  // r=1 (bit 0)
  const StateId s11 = sg.add_state(0b11);
  const StateId s01 = sg.add_state(0b10);  // a=1 (bit 1)
  sg.add_arc(s00, Event{r, true}, s10);
  sg.add_arc(s10, Event{a, true}, s11);
  sg.add_arc(s11, Event{r, false}, s01);
  sg.add_arc(s01, Event{a, false}, s00);
  sg.set_initial(s00);
  return sg;
}

/// Concurrent diamond: from 00, a+ and b+ fire in any order to 11; then
/// both fall in any order back to 00 through intermediate states 11->01/10.
/// All signals are outputs (an autonomous circuit).
StateGraph diamond() {
  StateGraph sg;
  const int a = sg.add_signal("a", SignalKind::kOutput);
  const int b = sg.add_signal("b", SignalKind::kOutput);
  const StateId s00 = sg.add_state(0b00);
  const StateId s01 = sg.add_state(0b01);  // a=1
  const StateId s10 = sg.add_state(0b10);  // b=1
  const StateId s11 = sg.add_state(0b11);
  sg.add_arc(s00, Event{a, true}, s01);
  sg.add_arc(s00, Event{b, true}, s10);
  sg.add_arc(s01, Event{b, true}, s11);
  sg.add_arc(s10, Event{a, true}, s11);
  sg.set_initial(s00);
  return sg;
}

TEST(StateGraph, BasicQueries) {
  StateGraph sg = handshake();
  EXPECT_EQ(sg.num_signals(), 2);
  EXPECT_EQ(sg.num_states(), 4u);
  EXPECT_EQ(sg.num_arcs(), 4u);
  EXPECT_EQ(sg.find_signal("r"), 0);
  EXPECT_EQ(sg.find_signal("a"), 1);
  EXPECT_EQ(sg.find_signal("zz"), -1);
  EXPECT_EQ(sg.input_signals(), std::vector<int>{0});
  EXPECT_EQ(sg.noninput_signals(), std::vector<int>{1});
  EXPECT_TRUE(sg.enabled(0, Event{0, true}));
  EXPECT_FALSE(sg.enabled(0, Event{1, true}));
  EXPECT_EQ(sg.successor(0, Event{0, true}), 1);
  EXPECT_EQ(sg.successor(0, Event{1, true}), kNoState);
  EXPECT_EQ(sg.code_string(2), "11");
  EXPECT_EQ(sg.event_string(Event{1, false}), "a-");
}

TEST(StateGraph, DuplicateSignalThrows) {
  StateGraph sg;
  sg.add_signal("a", SignalKind::kInput);
  EXPECT_THROW(sg.add_signal("a", SignalKind::kOutput), Error);
}

TEST(StateGraph, ReachableAndPrune) {
  StateGraph sg = handshake();
  const StateId orphan = sg.add_state(0b10);
  (void)orphan;
  EXPECT_EQ(sg.reachable().count(), 4u);
  EXPECT_EQ(sg.prune_unreachable(), 1u);
  EXPECT_EQ(sg.num_states(), 4u);
  EXPECT_TRUE(check_consistency(sg));
}

TEST(Properties, HandshakeIsImplementable) {
  const StateGraph sg = handshake();
  EXPECT_TRUE(check_consistency(sg));
  EXPECT_TRUE(check_determinism(sg));
  EXPECT_TRUE(check_commutativity(sg));
  EXPECT_TRUE(check_output_persistency(sg));
  EXPECT_TRUE(check_csc(sg));
  EXPECT_TRUE(check_usc(sg));
  EXPECT_TRUE(check_implementability(sg));
}

TEST(Properties, InconsistentArcDetected) {
  StateGraph sg;
  const int a = sg.add_signal("a", SignalKind::kOutput);
  const StateId s0 = sg.add_state(0);
  const StateId s1 = sg.add_state(0);  // a+ but code unchanged
  sg.add_arc(s0, Event{a, true}, s1);
  sg.set_initial(s0);
  EXPECT_FALSE(check_consistency(sg));
}

TEST(Properties, NondeterminismDetected) {
  StateGraph sg;
  const int a = sg.add_signal("a", SignalKind::kOutput);
  const int b = sg.add_signal("b", SignalKind::kOutput);
  const StateId s0 = sg.add_state(0b00);
  const StateId s1 = sg.add_state(0b01);
  const StateId s2 = sg.add_state(0b01);
  (void)b;
  sg.add_arc(s0, Event{a, true}, s1);
  sg.add_arc(s0, Event{a, true}, s2);
  sg.set_initial(s0);
  EXPECT_FALSE(check_determinism(sg));
}

TEST(Properties, NonCommutativeDiamondDetected) {
  // a and b fire from 00 in both orders but join in different states.
  StateGraph sg;
  const int a = sg.add_signal("a", SignalKind::kOutput);
  const int b = sg.add_signal("b", SignalKind::kOutput);
  const int c = sg.add_signal("c", SignalKind::kOutput);
  const StateId s000 = sg.add_state(0b000);
  const StateId s001 = sg.add_state(0b001);
  const StateId s010 = sg.add_state(0b010);
  const StateId s011a = sg.add_state(0b011);
  const StateId s011b = sg.add_state(0b111);  // c differs
  (void)c;
  sg.add_arc(s000, Event{a, true}, s001);
  sg.add_arc(s000, Event{b, true}, s010);
  sg.add_arc(s001, Event{b, true}, s011a);
  sg.add_arc(s010, Event{a, true}, s011b);
  sg.set_initial(s000);
  // s011b's code differs in c, so the joint state differs: commutativity
  // requires identical states, not just codes.
  EXPECT_FALSE(check_commutativity(sg));
}

TEST(Properties, PersistencyViolationDetected) {
  // b+ enabled at 00, disabled by a+ (no b+ from 01).
  StateGraph sg;
  const int a = sg.add_signal("a", SignalKind::kOutput);
  const int b = sg.add_signal("b", SignalKind::kOutput);
  const StateId s00 = sg.add_state(0b00);
  const StateId s01 = sg.add_state(0b01);
  const StateId s10 = sg.add_state(0b10);
  sg.add_arc(s00, Event{a, true}, s01);
  sg.add_arc(s00, Event{b, true}, s10);
  sg.set_initial(s00);
  EXPECT_FALSE(check_output_persistency(sg));
  // Restricting the watch to signal a only: a+ is disabled by b+.
  EXPECT_FALSE(check_persistency(sg, {a}));
  // An empty watch list sees no violation.
  EXPECT_TRUE(check_persistency(sg, {}));
}

TEST(Properties, InputChoiceIsAllowed) {
  // The same shape is fine when a and b are inputs (environment choice).
  StateGraph sg;
  const int a = sg.add_signal("a", SignalKind::kInput);
  const int b = sg.add_signal("b", SignalKind::kInput);
  const StateId s00 = sg.add_state(0b00);
  const StateId s01 = sg.add_state(0b01);
  const StateId s10 = sg.add_state(0b10);
  sg.add_arc(s00, Event{a, true}, s01);
  sg.add_arc(s00, Event{b, true}, s10);
  sg.set_initial(s00);
  EXPECT_TRUE(check_output_persistency(sg));
}

TEST(Properties, CscConflictDetected) {
  // Two states with equal codes enabling different output events.
  StateGraph sg;
  const int a = sg.add_signal("a", SignalKind::kInput);
  const int b = sg.add_signal("b", SignalKind::kOutput);
  const StateId s0 = sg.add_state(0b00);
  const StateId s1 = sg.add_state(0b01);
  const StateId s2 = sg.add_state(0b11);
  const StateId s3 = sg.add_state(0b10);
  const StateId s4 = sg.add_state(0b00);  // same code as s0
  sg.add_arc(s0, Event{a, true}, s1);
  sg.add_arc(s1, Event{b, true}, s2);
  sg.add_arc(s2, Event{a, false}, s3);
  sg.add_arc(s3, Event{b, false}, s4);
  // s4 enables nothing; s0 enables only input a+ -- CSC holds (same output
  // events: none), USC fails.
  sg.set_initial(s0);
  EXPECT_TRUE(check_csc(sg));
  EXPECT_FALSE(check_usc(sg));

  // Now give s4 an output event not enabled in s0.
  const StateId s5 = sg.add_state(0b10);
  sg.add_arc(s4, Event{b, true}, s5);
  EXPECT_FALSE(check_csc(sg));
}

TEST(Diamonds, EnumerationFindsTheDiamond) {
  const StateGraph sg = diamond();
  const auto diamonds = enumerate_diamonds(sg);
  ASSERT_EQ(diamonds.size(), 1u);
  EXPECT_EQ(diamonds[0].bottom, 0);
  EXPECT_EQ(diamonds[0].top, 3);
}

TEST(Regions, HandshakeRegions) {
  const StateGraph sg = handshake();
  const int a = 1;
  const auto rise = excitation_regions(sg, Event{a, true});
  ASSERT_EQ(rise.size(), 1u);
  EXPECT_EQ(rise[0].er.count(), 1u);
  EXPECT_TRUE(rise[0].er.test(1));  // state 10
  EXPECT_EQ(rise[0].sr.count(), 1u);
  EXPECT_TRUE(rise[0].sr.test(2));  // state 11
  // QR(a+): a stable at 1, reachable from SR: state 11 only (state 01 has
  // a- enabled... no: 01 has a=1? code 0b10 means a=1,r=0 and a- enabled, so
  // not stable).  Check:
  EXPECT_EQ(rise[0].qr.count(), 1u);
  EXPECT_TRUE(rise[0].qr.test(2));
  // Trigger of a+ is r+.
  ASSERT_EQ(rise[0].triggers.size(), 1u);
  EXPECT_EQ(rise[0].triggers[0], (Event{0, true}));
  EXPECT_EQ(trigger_signals(sg, a), std::vector<int>{0});
}

TEST(Regions, NextValue) {
  const StateGraph sg = handshake();
  // state 0 (00): a stable low -> next 0; state 1 (r=1): a+ enabled -> 1.
  EXPECT_FALSE(next_value(sg, 0, 1));
  EXPECT_TRUE(next_value(sg, 1, 1));
  EXPECT_TRUE(next_value(sg, 2, 1));   // stable high
  EXPECT_FALSE(next_value(sg, 3, 1));  // a- enabled
}

TEST(Regions, MultipleExcitationRegions) {
  // a+ has two separate regions in a 2-round handshake where rounds are
  // distinguished by a mode signal m.
  StateGraph sg;
  const int m = sg.add_signal("m", SignalKind::kInput);
  const int a = sg.add_signal("a", SignalKind::kOutput);
  // 00 -m+-> 01 -a+-> 11 -m--> 10 -a--> 00 ... one ER per m polarity:
  // second round: 00' unreachable; instead make: 10 -a-> ...
  const StateId s00 = sg.add_state(0b00);
  const StateId s01 = sg.add_state(0b01);
  const StateId s11 = sg.add_state(0b11);
  const StateId s10 = sg.add_state(0b10);
  sg.add_arc(s00, Event{m, true}, s01);
  sg.add_arc(s01, Event{a, true}, s11);
  sg.add_arc(s11, Event{m, false}, s10);
  sg.add_arc(s10, Event{a, false}, s00);
  sg.set_initial(s00);
  const auto rise = excitation_regions(sg, Event{a, true});
  ASSERT_EQ(rise.size(), 1u);

  const auto fall = excitation_regions(sg, Event{a, false});
  ASSERT_EQ(fall.size(), 1u);
  EXPECT_TRUE(fall[0].er.test(s10));
}

TEST(SgIo, RoundTrip) {
  const StateGraph sg = handshake();
  const std::string text = write_sg_string(sg, "hs");
  std::string name;
  const StateGraph back = read_sg_string(text, &name);
  EXPECT_EQ(name, "hs");
  EXPECT_EQ(back.num_signals(), sg.num_signals());
  EXPECT_EQ(back.num_states(), sg.num_states());
  EXPECT_EQ(back.num_arcs(), sg.num_arcs());
  EXPECT_EQ(back.code(back.initial()), sg.code(sg.initial()));
  EXPECT_TRUE(check_implementability(back));
}

TEST(SgIo, ParseExplicit) {
  const std::string text = R"(.model t
# a comment
.inputs r
.outputs a
.graph
s0 r+ s1
s1 a+ s2
s2 r- s3
s3 a- s0
.initial s0 00
.end
)";
  const StateGraph sg = read_sg_string(text);
  EXPECT_EQ(sg.num_states(), 4u);
  EXPECT_EQ(sg.code_string(sg.initial()), "00");
  EXPECT_TRUE(check_implementability(sg));
}

TEST(SgIo, RejectsBadCodePropagation) {
  const std::string text = R"(.model t
.outputs a b
.graph
s0 a+ s1
s1 b+ s0
.initial s0 00
.end
)";
  EXPECT_THROW(read_sg_string(text), Error);
}

TEST(SgIo, RejectsMissingInitial) {
  EXPECT_THROW(read_sg_string(".model t\n.outputs a\n.graph\ns0 a+ s1\n.end\n"),
               Error);
}

TEST(SgIo, ParseEventErrors) {
  const StateGraph sg = handshake();
  EXPECT_EQ(parse_event(sg, "r+"), (Event{0, true}));
  EXPECT_EQ(parse_event(sg, "a-"), (Event{1, false}));
  EXPECT_THROW(parse_event(sg, "zz+"), Error);
  EXPECT_THROW(parse_event(sg, "r"), Error);
}

}  // namespace
}  // namespace sitm
