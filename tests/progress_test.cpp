// Unit tests for the progress analysis (Properties 3.1 / 3.2) and its use
// as a candidate-ranking heuristic.

#include <gtest/gtest.h>

#include "benchlib/generators.hpp"
#include "core/progress.hpp"
#include "mlogic/division.hpp"
#include "stg/stg.hpp"

namespace sitm {
namespace {

Cover cube_cover(int num_vars,
                 std::initializer_list<std::pair<int, bool>> lits) {
  Cube c = Cube::one();
  for (auto [v, pol] : lits) c = c.with_literal(v, pol);
  return Cover(num_vars, {c});
}

class HazardProgress : public ::testing::Test {
 protected:
  void SetUp() override {
    sg = bench::make_hazard().to_state_graph();
    a = sg.find_signal("a");
    c = sg.find_signal("c");
    d = sg.find_signal("d");
    x = sg.find_signal("x");
    synthesize_all(sg, {}, &syntheses);
    for (auto& s : syntheses)
      if (s.signal == x) target = &s;
    ASSERT_NE(target, nullptr);
  }
  StateGraph sg;
  std::vector<SignalSynthesis> syntheses;
  const SignalSynthesis* target = nullptr;
  int a = -1, c = -1, d = -1, x = -1;
};

TEST_F(HazardProgress, EstimateForLegalDivisors) {
  // For both legal divisors of Sx = a'cd the estimated literal delta is
  // negative (3 literals -> 2-literal gate + new 2-literal gate at worst on
  // the target, minus the acknowledgment penalty on other covers).
  for (auto lits : {std::pair{a, false}, std::pair{d, true}}) {
    const Cover f =
        lits.first == a
            ? cube_cover(sg.num_signals(), {{a, false}, {c, true}})
            : cube_cover(sg.num_signals(), {{d, true}, {c, true}});
    const Division div = algebraic_division(target->set.cover, f);
    ASSERT_FALSE(div.quotient.empty());
    const auto plan = plan_insertion(sg, f);
    ASSERT_TRUE(plan.has_value());
    const ProgressEstimate est = estimate_progress(
        sg, syntheses, target->set, div.quotient, div.remainder, *plan);
    EXPECT_LE(est.estimated_delta, 1);
  }
}

TEST_F(HazardProgress, NewTriggersAreCounted) {
  // The dc divisor's falling transition becomes a trigger somewhere (the
  // paper discusses exactly this case in Section 3.4).
  const Cover f = cube_cover(sg.num_signals(), {{d, true}, {c, true}});
  const Division div = algebraic_division(target->set.cover, f);
  const auto plan = plan_insertion(sg, f);
  ASSERT_TRUE(plan.has_value());
  const ProgressEstimate est = estimate_progress(
      sg, syntheses, target->set, div.quotient, div.remainder, *plan);
  EXPECT_GE(est.new_triggers, 0);
}

TEST_F(HazardProgress, Property32DisjointnessConditions) {
  const Cover f = cube_cover(sg.num_signals(), {{a, false}, {c, true}});
  const auto plan = plan_insertion(sg, f);
  ASSERT_TRUE(plan.has_value());
  // Property 3.2 for the target cover itself must hold trivially when the
  // trigger ER is disjoint from its switching region.
  for (const auto& synth : syntheses) {
    for (const EventCover* ec : {&synth.set, &synth.reset}) {
      const bool p32 = property_3_2(sg, *ec, *plan, /*rising_trigger=*/true);
      // Verify the implementation of the conditions agrees with a direct
      // evaluation.
      bool expect = true;
      for (const auto& region : ec->regions)
        if (!plan->er_rise.disjoint(region.sr)) expect = false;
      bool cover_hits_fall = false;
      plan->er_fall.for_each([&](std::size_t s) {
        if (ec->cover.eval(sg.code(static_cast<StateId>(s))))
          cover_hits_fall = true;
      });
      if (cover_hits_fall) expect = false;
      EXPECT_EQ(p32, expect);
    }
  }
}

TEST(Progress, Property31HoldsForCleanSubstitution) {
  // parallelizer(2): d's set cover g0*g1 divided by itself has quotient 1.
  // Take f = g0*g1's sub-cube g0... trivial-literal divisors are excluded by
  // generation, so here we check the property machinery directly with the
  // legal latch-style divisor of a 3-way join instead.
  const StateGraph sg = bench::make_parallelizer(3).to_state_graph();
  std::vector<SignalSynthesis> syntheses;
  synthesize_all(sg, {}, &syntheses);
  const int dsig = sg.find_signal("d");
  const SignalSynthesis* target = nullptr;
  for (auto& s : syntheses)
    if (s.signal == dsig) target = &s;
  ASSERT_NE(target, nullptr);

  const int g0 = sg.find_signal("g0");
  const int g1 = sg.find_signal("g1");
  const Cover f = cube_cover(sg.num_signals(), {{g0, true}, {g1, true}});
  const Division div = algebraic_division(target->set.cover, f);
  ASSERT_EQ(div.quotient.num_literals(), 1);  // g2

  const auto plan = plan_latch_insertion(
      sg, f, cube_cover(sg.num_signals(), {{g0, false}, {g1, false}}));
  ASSERT_TRUE(plan.has_value());
  // The latch's 1-block covers all of ER(d+) (the grants are high there);
  // in the pre-copy the rise is still pending — after insertion d+ waits
  // for x+, i.e. x+ becomes d's trigger.  Property 3.1 (exact substitution
  // without retriggering) therefore does NOT hold for this divisor: it is
  // a ranking signal, and the resynthesis-based acceptance is what commits
  // the decomposition (see mapper_test's ParallelizerJoinDecomposes).
  const DynBitset er = union_er(sg, target->set.regions);
  er.for_each([&](std::size_t s) {
    EXPECT_TRUE(plan->s1.test(s)) << "latch 1-block misses ER(d+)";
  });
  EXPECT_TRUE(er.subset_of(plan->er_rise))
      << "x+ should be pending throughout ER(d+), retriggering d+";
  EXPECT_FALSE(property_3_1(sg, target->set, div.quotient, div.remainder,
                            *plan));
}

TEST(Progress, EstimateRanksLatchAboveHarmfulDivisor) {
  // In the 3-way join, the latch divisor (clean substitution) must not be
  // ranked worse than a combinational divisor that inflates the reset side.
  const StateGraph sg = bench::make_parallelizer(3).to_state_graph();
  std::vector<SignalSynthesis> syntheses;
  synthesize_all(sg, {}, &syntheses);
  const int dsig = sg.find_signal("d");
  const SignalSynthesis* target = nullptr;
  for (auto& s : syntheses)
    if (s.signal == dsig) target = &s;
  const int g0 = sg.find_signal("g0");
  const int g1 = sg.find_signal("g1");
  const Cover f = cube_cover(sg.num_signals(), {{g0, true}, {g1, true}});
  const Division div = algebraic_division(target->set.cover, f);

  const auto comb = plan_insertion(sg, f);
  const auto latch = plan_latch_insertion(
      sg, f, cube_cover(sg.num_signals(), {{g0, false}, {g1, false}}));
  ASSERT_TRUE(comb.has_value());
  ASSERT_TRUE(latch.has_value());
  const ProgressEstimate ec = estimate_progress(sg, syntheses, target->set,
                                                div.quotient, div.remainder,
                                                *comb);
  const ProgressEstimate el = estimate_progress(sg, syntheses, target->set,
                                                div.quotient, div.remainder,
                                                *latch);
  EXPECT_LE(el.estimated_delta, ec.estimated_delta);
}

}  // namespace
}  // namespace sitm
