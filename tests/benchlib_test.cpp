// Tests for the benchmark generators and the named Table-1 suite: every
// instance must be a valid input to the mapping flow.

#include <gtest/gtest.h>

#include "benchlib/generators.hpp"
#include "benchlib/suite.hpp"
#include "core/csc.hpp"
#include "sg/properties.hpp"
#include "stg/stg.hpp"
#include "util/error.hpp"

namespace sitm {
namespace {

TEST(Generators, PipelineValidAcrossSizes) {
  for (int n : {1, 2, 3, 4}) {
    const StateGraph sg = bench::make_pipeline(n).to_state_graph();
    EXPECT_TRUE(check_implementability(sg)) << "pipeline(" << n << ")";
    EXPECT_GT(sg.num_states(), 0u);
  }
}

TEST(Generators, ParallelizerValidAndWide) {
  for (int k : {1, 2, 3, 5, 7}) {
    const StateGraph sg = bench::make_parallelizer(k).to_state_graph();
    EXPECT_TRUE(check_implementability(sg)) << "parallelizer(" << k << ")";
    // k concurrent grants: the rising phase alone has 2^k states.
    EXPECT_GE(sg.num_states(), (1u << k));
  }
}

TEST(Generators, SeqChainValid) {
  for (int k : {1, 2, 4, 6}) {
    const StateGraph sg = bench::make_seq_chain(k).to_state_graph();
    EXPECT_TRUE(check_implementability(sg)) << "seq_chain(" << k << ")";
    // Purely sequential: states = number of events in the cycle.
    EXPECT_EQ(sg.num_states(), 2u * (static_cast<unsigned>(k) + 2));
  }
}

TEST(Generators, ChoiceMixerValid) {
  for (int k : {1, 2, 3, 4}) {
    const StateGraph sg = bench::make_choice_mixer(k).to_state_graph();
    EXPECT_TRUE(check_implementability(sg)) << "choice_mixer(" << k << ")";
    EXPECT_EQ(sg.num_states(), 1u + 3u * static_cast<unsigned>(k));
  }
}

TEST(Generators, SharedOutValid) {
  for (int k : {1, 2, 3}) {
    const StateGraph sg = bench::make_shared_out(k).to_state_graph();
    EXPECT_TRUE(check_implementability(sg)) << "shared_out(" << k << ")";
    EXPECT_EQ(sg.num_states(), 1u + 5u * static_cast<unsigned>(k));
  }
}

TEST(Generators, ComboValid) {
  for (auto [p, s] : {std::pair{2, 2}, {3, 2}, {2, 4}, {4, 3}}) {
    const StateGraph sg = bench::make_combo(p, s).to_state_graph();
    EXPECT_TRUE(check_implementability(sg))
        << "combo(" << p << "," << s << ")";
  }
}

TEST(Generators, RingValid) {
  for (int n : {1, 3, 6}) {
    const StateGraph sg = bench::make_ring(n).to_state_graph();
    EXPECT_TRUE(check_implementability(sg)) << "ring(" << n << ")";
    // Purely sequential wave: states = number of events in the cycle.
    EXPECT_EQ(sg.num_states(), 2u * (static_cast<unsigned>(n) + 1));
  }
}

TEST(Generators, TreeValidAndAlreadyImplementable) {
  for (int d : {1, 2, 3}) {
    const StateGraph sg = bench::make_tree(d).to_state_graph();
    EXPECT_TRUE(check_implementability(sg)) << "tree(" << d << ")";
  }
}

TEST(Generators, HazardMatchesPaperStructure) {
  const StateGraph sg = bench::make_hazard().to_state_graph();
  EXPECT_TRUE(check_implementability(sg));
  EXPECT_EQ(sg.num_signals(), 4);
  EXPECT_EQ(sg.input_signals().size(), 2u);
  // Concurrency between d+ and the a/c sequence: diamonds exist.
  EXPECT_FALSE(enumerate_diamonds(sg).empty());
}

TEST(Generators, CscDiamondRingConflictedAndConcurrent) {
  // The diamond ring must keep the plain ring's CSC conflicts (one per
  // segment-boundary pair) while adding real state diamonds — the insertion
  // planner's benchmark workload.  It stays speed-independent and
  // consistent, so resolve_csc accepts it.
  for (const auto& [segments, width] : {std::pair{2, 2}, {3, 3}, {3, 4}}) {
    const StateGraph sg =
        bench::make_csc_diamond_ring(segments, width).to_state_graph();
    const std::string label = "csc_diamond_ring(" +
                              std::to_string(segments) + "," +
                              std::to_string(width) + ")";
    EXPECT_TRUE(check_consistency(sg)) << label;
    EXPECT_TRUE(check_speed_independence(sg)) << label;
    EXPECT_FALSE(check_csc(sg)) << label;
    EXPECT_EQ(count_csc_conflicts(sg), segments * (segments - 1) / 2)
        << label;
    EXPECT_GE(enumerate_diamonds(sg).size(),
              static_cast<std::size_t>(width * (width - 1) / 2)) << label;
    const CscResult resolved = resolve_csc(sg);
    EXPECT_TRUE(resolved.resolved) << label << ": " << resolved.failure;
  }
}

TEST(Generators, BadParametersThrow) {
  EXPECT_THROW(bench::make_pipeline(0), Error);
  EXPECT_THROW(bench::make_parallelizer(0), Error);
  EXPECT_THROW(bench::make_seq_chain(0), Error);
  EXPECT_THROW(bench::make_choice_mixer(0), Error);
  EXPECT_THROW(bench::make_shared_out(0), Error);
  EXPECT_THROW(bench::make_combo(0, 1), Error);
  EXPECT_THROW(bench::make_ring(0), Error);
  EXPECT_THROW(bench::make_tree(0), Error);
  EXPECT_THROW(bench::make_tree(9), Error);
  EXPECT_THROW(bench::make_csc_diamond_ring(1, 2), Error);
  EXPECT_THROW(bench::make_csc_diamond_ring(2, 0), Error);
}

TEST(Suite, Has32Benchmarks) {
  EXPECT_EQ(bench::suite_names().size(), 32u);
}

TEST(Suite, EveryEntryIsImplementable) {
  for (auto& entry : bench::table1_suite()) {
    const StateGraph sg = entry.stg.to_state_graph();
    const auto result = check_implementability(sg);
    EXPECT_TRUE(result.ok) << entry.name << ": " << result.why;
  }
}

TEST(Suite, LookupByName) {
  const auto entry = bench::suite_benchmark("vbe10b");
  EXPECT_EQ(entry.name, "vbe10b");
  EXPECT_FALSE(entry.family.empty());
  EXPECT_THROW(bench::suite_benchmark("nonexistent"), Error);
}

TEST(Suite, NamesAreUnique) {
  auto names = bench::suite_names();
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::adjacent_find(names.begin(), names.end()), names.end());
}

}  // namespace
}  // namespace sitm
