// The serve front-end: slab pool, content-addressed FlowCache, the JSON
// request parser, and the ServeEngine request loop (miss -> hit with
// bit-identical result bytes, deadline-change cache reuse, fault
// containment, control ops, ordered pipe-mode responses).

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "benchlib/suite.hpp"
#include "serve/arena.hpp"
#include "serve/flow_cache.hpp"
#include "serve/server.hpp"
#include "stg/g_io.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"

namespace sitm::serve {
namespace {

// ---- SlabPool ------------------------------------------------------------

TEST(SlabPool, RoundsToSizeClassesAndReuses) {
  SlabPool pool;
  SlabPool::Block b = pool.alloc(100);
  EXPECT_EQ(b.size, 128u);
  EXPECT_EQ(pool.bytes_live(), 128u);
  char* const first = b.data;

  pool.release(b);
  EXPECT_EQ(pool.bytes_live(), 0u);
  EXPECT_EQ(pool.bytes_pooled(), 128u);

  // Same class: the freelist block comes back instead of a fresh one.
  SlabPool::Block again = pool.alloc(65);
  EXPECT_EQ(again.data, first);
  EXPECT_EQ(pool.bytes_pooled(), 0u);
  pool.release(again);

  pool.trim();
  EXPECT_EQ(pool.bytes_pooled(), 0u);
}

TEST(SlabPool, TinyAndOversizedRequests) {
  SlabPool pool;
  SlabPool::Block tiny = pool.alloc(1);
  EXPECT_EQ(tiny.size, SlabPool::kMinClass);

  // Above the largest class: exact allocation, never parked on a freelist.
  SlabPool::Block big = pool.alloc(SlabPool::kMaxClass + 1);
  EXPECT_EQ(big.size, SlabPool::kMaxClass + 1);
  pool.release(big);
  EXPECT_EQ(pool.bytes_pooled(), 0u) << "oversized blocks are never pooled";
  pool.release(tiny);
  EXPECT_EQ(pool.bytes_pooled(), SlabPool::kMinClass);
}

// ---- FlowCache -----------------------------------------------------------

CacheKey key(std::uint64_t n, std::uint64_t options = 0) {
  return CacheKey{SpecHash{n, n ^ 0x5555555555555555ull}, options};
}

TEST(FlowCache, InsertLookupAndCounters) {
  FlowCache cache(std::size_t{1} << 20, /*shards=*/1);
  std::string out;
  EXPECT_FALSE(cache.lookup(key(1), &out));
  cache.insert(key(1), "payload-one");
  EXPECT_TRUE(cache.lookup(key(1), &out));
  EXPECT_EQ(out, "payload-one");
  EXPECT_FALSE(cache.lookup(key(1, /*options=*/7), &out))
      << "same spec, different options fingerprint is a different entry";

  const CacheStats st = cache.stats();
  EXPECT_EQ(st.hits, 1u);
  EXPECT_EQ(st.misses, 2u);
  EXPECT_EQ(st.insertions, 1u);
  EXPECT_EQ(st.entries, 1u);
}

TEST(FlowCache, ByteBudgetedLruEviction) {
  // One shard, 4096-byte budget.  1000-byte payloads round to 1024-byte
  // slabs + 128 overhead = 1152 charged: three fit, the fourth evicts the
  // least recently used.
  FlowCache cache(4096, /*shards=*/1);
  cache.insert(key(1), std::string(1000, 'a'));
  cache.insert(key(2), std::string(1000, 'b'));
  cache.insert(key(3), std::string(1000, 'c'));

  std::string out;
  EXPECT_TRUE(cache.lookup(key(1), &out));  // k1 -> MRU; k2 is now coldest
  cache.insert(key(4), std::string(1000, 'd'));

  EXPECT_FALSE(cache.lookup(key(2), &out)) << "LRU entry was evicted";
  EXPECT_TRUE(cache.lookup(key(1), &out));
  EXPECT_TRUE(cache.lookup(key(3), &out));
  EXPECT_TRUE(cache.lookup(key(4), &out));
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().entries, 3u);
}

TEST(FlowCache, RejectsEntriesLargerThanAShard) {
  FlowCache cache(1024, /*shards=*/1);
  cache.insert(key(1), std::string(5000, 'x'));
  std::string out;
  EXPECT_FALSE(cache.lookup(key(1), &out));
  EXPECT_EQ(cache.stats().rejected, 1u);
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(FlowCache, DuplicateInsertKeepsTheFirstPayload) {
  // Two racing misses compute identical bytes; the first insert wins and
  // the second is a no-op rather than an invalidation.
  FlowCache cache(std::size_t{1} << 20, 1);
  cache.insert(key(1), "first");
  cache.insert(key(1), "second");
  std::string out;
  EXPECT_TRUE(cache.lookup(key(1), &out));
  EXPECT_EQ(out, "first");
  EXPECT_EQ(cache.stats().insertions, 1u);
}

TEST(FlowCache, ClearReleasesEverything) {
  FlowCache cache(std::size_t{1} << 20, 4);
  for (std::uint64_t i = 0; i < 32; ++i)
    cache.insert(key(i), std::string(100, 'x'));
  cache.clear();
  const CacheStats st = cache.stats();
  EXPECT_EQ(st.entries, 0u);
  EXPECT_EQ(st.bytes_live, 0u);
  EXPECT_EQ(st.bytes_pooled, 0u);
  std::string out;
  EXPECT_FALSE(cache.lookup(key(3), &out));
}

// ---- Json::parse ---------------------------------------------------------

TEST(JsonParse, FullGrammarRoundTrip) {
  const Json j = Json::parse(
      R"({"a": [1, 2.5, -3e2], "s": "x\n\"yé", "o": {"t": true, "n": null, "f": false}})");
  ASSERT_EQ(j.kind(), Json::Kind::kObject);
  const Json* a = j.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->items().size(), 3u);
  EXPECT_EQ(a->items()[0].number(), 1.0);
  EXPECT_EQ(a->items()[1].number(), 2.5);
  EXPECT_EQ(a->items()[2].number(), -300.0);
  EXPECT_EQ(j.find("s")->string_value(), "x\n\"y\xc3\xa9");
  EXPECT_TRUE(j.find("o")->find("t")->bool_value());
  EXPECT_TRUE(j.find("o")->find("n")->is_null());

  // dump -> parse -> dump is a fixed point.
  const std::string once = j.dump(0);
  EXPECT_EQ(Json::parse(once).dump(0), once);
}

TEST(JsonParse, SurrogatePairsDecodeToUtf8) {
  const Json j = Json::parse(R"("😀")");
  EXPECT_EQ(j.string_value(), "\xf0\x9f\x98\x80");
}

TEST(JsonParse, RejectsMalformedInput) {
  EXPECT_THROW(Json::parse("{"), Error);
  EXPECT_THROW(Json::parse("[1,]"), Error);
  EXPECT_THROW(Json::parse("1 2"), Error);
  EXPECT_THROW(Json::parse(R"("\q")"), Error);
  EXPECT_THROW(Json::parse(R"("\ud83d")"), Error);
  EXPECT_THROW(Json::parse("tru"), Error);
  EXPECT_THROW(Json::parse(""), Error);
}

// ---- ServeEngine ---------------------------------------------------------

std::string chu133_text() {
  return write_g_string(bench::suite_benchmark("chu133").stg, "chu133");
}

std::string request(const std::string& id, const std::string& spec) {
  Json j = Json::object();
  j.set("id", Json(id));
  j.set("spec", Json(spec));
  return j.dump(0);
}

/// The spliced result section of a response line (byte-exact).
std::string result_bytes(const std::string& response) {
  const auto pos = response.find("\"result\":");
  EXPECT_NE(pos, std::string::npos) << response;
  return response.substr(pos);
}

TEST(ServeEngine, MissThenHitWithBitIdenticalResult) {
  ServeOptions so;
  so.threads = 2;
  ServeEngine engine(so);

  const std::string cold = engine.handle_line(request("r1", chu133_text()));
  const std::string warm = engine.handle_line(request("r2", chu133_text()));

  const Json jc = Json::parse(cold), jw = Json::parse(warm);
  EXPECT_EQ(jc.find("status")->string_value(), "ok");
  EXPECT_FALSE(jc.find("cached")->bool_value());
  EXPECT_TRUE(jw.find("cached")->bool_value());
  EXPECT_EQ(jc.find("key")->string_value(), jw.find("key")->string_value());
  EXPECT_EQ(result_bytes(cold), result_bytes(warm))
      << "warm result must be the cold result's bytes, spliced verbatim";
  EXPECT_FALSE(
      jc.find("result")->find("netlist")->find("verilog")->string_value()
          .empty());

  const CacheStats st = engine.cache().stats();
  EXPECT_EQ(st.misses, 1u);
  EXPECT_EQ(st.hits, 1u);
}

TEST(ServeEngine, ReformattedSpecHitsTheSameEntry) {
  ServeOptions so;
  ServeEngine engine(so);
  engine.handle_line(request("cold", chu133_text()));
  // Inject a comment and permute nothing semantic: still the same key.
  const std::string variant = "# reformatted\n" + chu133_text() + "\n\n";
  const Json warm = Json::parse(engine.handle_line(request("warm", variant)));
  EXPECT_TRUE(warm.find("cached")->bool_value());
}

TEST(ServeEngine, DeadlineChangeStillReusesACachedSuccess) {
  ServeOptions so;
  ServeEngine engine(so);
  engine.handle_line(request("cold", chu133_text()));

  Json j = Json::object();
  j.set("id", Json("warm"));
  j.set("spec", Json(chu133_text()));
  j.set("deadline_ms", Json(60000));
  const Json resp = Json::parse(engine.handle_line(j.dump(0)));
  EXPECT_EQ(resp.find("status")->string_value(), "ok");
  EXPECT_TRUE(resp.find("cached")->bool_value())
      << "deadlines are observational and must not split the cache key";
}

TEST(ServeEngine, OutputAffectingOptionSplitsTheKey) {
  ServeOptions so;
  ServeEngine engine(so);
  engine.handle_line(request("cold", chu133_text()));

  Json j = Json::object();
  j.set("id", Json("other"));
  j.set("spec", Json(chu133_text()));
  Json opts = Json::object();
  opts.set("csc_top_k", Json(2));
  j.set("options", std::move(opts));
  const Json resp = Json::parse(engine.handle_line(j.dump(0)));
  EXPECT_EQ(resp.find("status")->string_value(), "ok");
  EXPECT_FALSE(resp.find("cached")->bool_value());
}

TEST(ServeEngine, MalformedRequestsAreContained) {
  ServeOptions so;
  ServeEngine engine(so);
  EXPECT_EQ(Json::parse(engine.handle_line("not json at all"))
                .find("status")->string_value(),
            "error");
  EXPECT_EQ(Json::parse(engine.handle_line(R"({"id":"x","spec":123})"))
                .find("status")->string_value(),
            "error");
  EXPECT_EQ(Json::parse(
                engine.handle_line(R"({"spec":"x","options":{"nope":1}})"))
                .find("status")->string_value(),
            "error");
  // The engine keeps answering.
  EXPECT_EQ(Json::parse(engine.handle_line(request("ok", chu133_text())))
                .find("status")->string_value(),
            "ok");
}

TEST(ServeEngine, InjectedFlowFaultYieldsTypedFailureAndNoCaching) {
  fault::clear();
  fault::arm("flow.csc", fault::Action::kCancel, /*nth=*/1);
  ServeOptions so;
  ServeEngine engine(so);

  const Json failed =
      Json::parse(engine.handle_line(request("f", chu133_text())));
  EXPECT_EQ(failed.find("status")->string_value(), "failed");
  EXPECT_EQ(
      failed.find("result")->find("report")->find("failure_kind")
          ->string_value(),
      "cancelled");
  EXPECT_FALSE(failed.find("cached")->bool_value());

  // The fault fired once; the same request recomputes (failures are never
  // cached) and now succeeds, then hits.
  const Json ok = Json::parse(engine.handle_line(request("g", chu133_text())));
  EXPECT_EQ(ok.find("status")->string_value(), "ok");
  EXPECT_FALSE(ok.find("cached")->bool_value());
  const Json hit =
      Json::parse(engine.handle_line(request("h", chu133_text())));
  EXPECT_TRUE(hit.find("cached")->bool_value());
  fault::clear();
}

TEST(ServeEngine, EngineLevelFaultBecomesARequestError) {
  fault::clear();
  fault::arm("serve.request", fault::Action::kError, /*nth=*/1);
  ServeOptions so;
  ServeEngine engine(so);
  EXPECT_EQ(Json::parse(engine.handle_line(request("a", chu133_text())))
                .find("status")->string_value(),
            "error");
  EXPECT_EQ(Json::parse(engine.handle_line(request("b", chu133_text())))
                .find("status")->string_value(),
            "ok");
  fault::clear();
}

TEST(ServeEngine, StatsAndShutdownOps) {
  ServeOptions so;
  ServeEngine engine(so);
  engine.handle_line(request("r", chu133_text()));

  const Json stats = Json::parse(engine.handle_line(R"({"op":"stats"})"));
  EXPECT_EQ(stats.find("status")->string_value(), "ok");
  const Json* s = stats.find("stats");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->find("cache_misses")->number(), 1.0);
  EXPECT_EQ(s->find("cache_insertions")->number(), 1.0);
  ASSERT_NE(s->find("steals"), nullptr);
  ASSERT_NE(s->find("cache_evictions")->kind(), Json::Kind::kNull);

  EXPECT_FALSE(engine.shutdown_requested());
  const Json ack = Json::parse(engine.handle_line(R"({"op":"shutdown"})"));
  EXPECT_TRUE(ack.find("shutdown")->bool_value());
  EXPECT_TRUE(engine.shutdown_requested());
}

TEST(ServePipe, OrderedResponsesAndShutdownStopsReading) {
  ServeOptions so;
  so.threads = 2;
  ServeEngine engine(so);

  std::istringstream in(request("r1", chu133_text()) + "\n" +
                        request("r2", chu133_text()) + "\n" +
                        R"({"op":"shutdown"})" + "\n" +
                        request("never", chu133_text()) + "\n");
  std::ostringstream out;
  EXPECT_EQ(serve_pipe(engine, in, out), 0);

  std::vector<std::string> lines;
  std::istringstream split(out.str());
  for (std::string line; std::getline(split, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 3u) << "no request processed after shutdown";
  EXPECT_EQ(Json::parse(lines[0]).find("id")->string_value(), "r1");
  EXPECT_EQ(Json::parse(lines[1]).find("id")->string_value(), "r2");
  EXPECT_TRUE(Json::parse(lines[2]).find("shutdown")->bool_value());
}

}  // namespace
}  // namespace sitm::serve
