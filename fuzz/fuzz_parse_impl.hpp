#pragma once
// Shared fuzz entry over the specification front door: one function,
// `sitm::fuzz::fuzz_one`, used by three drivers —
//   * fuzz/fuzz_parse.cpp as a libFuzzer target (clang, -fsanitize=fuzzer),
//   * fuzz/fuzz_parse.cpp's standalone fallback driver (any compiler),
//   * tests/fuzz_flow_test.cpp replaying fuzz/corpus/ as a deterministic
//     regression suite in tier-1.
//
// Input shape: byte 0 selects the mode, the rest is the spec text.
//   mode 0  parse as astg ".g"
//   mode 1  parse as explicit ".sg"
//   mode 2  auto-sniff, then run the sitm-lint diagnostics on the result
//   mode 3  full front half of the flow (parse -> lint gate ->
//           reachability) under a tight deterministic RunGuard
//   mode 4  full synthesis flow with the output-side check stage on
//           (parse -> ... -> map -> nlint + BDD equivalence) under a
//           tight deterministic RunGuard
// The digits '0'..'4' map onto modes 0..4, so checked-in corpus entries
// can spell their mode readably in the first byte.
//
// Contract under fuzzing: malformed input must be rejected with the typed
// sitm::Error taxonomy (or captured into a failed FlowReport).  Any OTHER
// escape — std::length_error, std::bad_alloc from an absurd reserve,
// sanitizer report, crash — is a finding; fixed findings get their input
// checked into fuzz/corpus/ so tier-1 replays them forever.

#include <cstddef>
#include <cstdint>
#include <string>

#include "flow/flow.hpp"
#include "stg/lint.hpp"
#include "stg/load.hpp"
#include "util/error.hpp"

namespace sitm::fuzz {

/// Inputs past this size only probe the allocator, not the parsers.
inline constexpr std::size_t kMaxInput = std::size_t{64} << 10;

inline int fuzz_one(const std::uint8_t* data, std::size_t size) {
  if (size == 0 || size > kMaxInput) return 0;
  // Digits keep their face value so corpus entries stay readable (and so
  // adding a mode never silently re-tags the existing corpus).
  const std::uint8_t tag = data[0];
  const int mode =
      (tag >= '0' && tag <= '9') ? (tag - '0') % 5 : tag % 5;
  const std::string text(reinterpret_cast<const char*>(data) + 1, size - 1);
  try {
    switch (mode) {
      case 0:
        (void)load_spec_string(text, SpecFormat::kG, "fuzz.g");
        break;
      case 1:
        (void)load_spec_string(text, SpecFormat::kSg, "fuzz.sg");
        break;
      case 2: {
        const Spec spec = load_spec_string(text);
        (void)lint_spec(spec);
        break;
      }
      case 3: {
        FlowOptions opts;
        opts.lint = true;
        opts.stop_after = Stage::kReachability;
        opts.max_states = 4096;
        opts.work_budget = std::uint64_t{1} << 20;
        Flow flow(opts);
        (void)flow.run_string(text);  // failures are captured, typed
        break;
      }
      case 4: {
        // The whole pipeline plus the output-side gate: whatever netlist
        // synthesis produces from a hostile spec, nlint and the BDD
        // equivalence checker must digest it without escaping the taxonomy.
        FlowOptions opts;
        opts.lint = true;
        opts.check = true;
        opts.max_states = 512;
        opts.work_budget = std::uint64_t{1} << 18;
        Flow flow(opts);
        (void)flow.run_string(text);  // failures are captured, typed
        break;
      }
    }
  } catch (const Error&) {
    // The typed rejection path: expected for malformed input.
  }
  return 0;
}

}  // namespace sitm::fuzz
