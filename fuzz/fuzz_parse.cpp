// Coverage-guided fuzzing of the specification front door (see
// fuzz_parse_impl.hpp for the input shape and the crash contract).
//
// Built only with -DSITM_BUILD_FUZZERS=ON (the `fuzz` preset).  Under
// clang the CMakeLists adds -fsanitize=fuzzer and defines SITM_LIBFUZZER,
// producing a real libFuzzer binary:
//
//   cmake --preset fuzz && cmake --build build-fuzz --target fuzz_parse
//   mkdir -p corpus && cp data/benchmarks/*.g corpus/ && cp fuzz/corpus/* corpus/
//   ./build-fuzz/fuzz_parse -max_len=65536 -max_total_time=60 corpus/
//
// Under any other compiler (the container toolchain is g++) the same
// target builds with the standalone driver below instead: it replays file
// arguments through fuzz_one, and with -t SECONDS additionally runs a
// deterministic mutation loop over those files — no coverage feedback, but
// the same harness, so corpus replay and smoke runs work everywhere.
//
//   ./build-fuzz/fuzz_parse fuzz/corpus/* data/benchmarks/*.g
//   ./build-fuzz/fuzz_parse -t 30 fuzz/corpus/* data/benchmarks/*.g

#include "fuzz_parse_impl.hpp"

#ifdef SITM_LIBFUZZER

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  return sitm::fuzz::fuzz_one(data, size);
}

#else  // standalone fallback driver

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <vector>

namespace {

/// xorshift64*: tiny, seeded constant, so a given (-t, corpus) pair
/// mutates the same byte sequences on every run.
struct Rng {
  std::uint64_t s = 0x9e3779b97f4a7c15ull;
  std::uint64_t next() {
    s ^= s >> 12;
    s ^= s << 25;
    s ^= s >> 27;
    return s * 0x2545f4914f6cdd1dull;
  }
};

std::vector<std::uint8_t> mutate(const std::vector<std::uint8_t>& seed,
                                 Rng& rng) {
  std::vector<std::uint8_t> out = seed;
  const int edits = 1 + static_cast<int>(rng.next() % 8);
  for (int e = 0; e < edits && !out.empty(); ++e) {
    switch (rng.next() % 4) {
      case 0:  // flip a byte
        out[rng.next() % out.size()] ^=
            static_cast<std::uint8_t>(1u << (rng.next() % 8));
        break;
      case 1:  // truncate
        out.resize(1 + rng.next() % out.size());
        break;
      case 2:  // duplicate a slice onto the end (token splicing)
      {
        const std::size_t at = rng.next() % out.size();
        const std::size_t len =
            std::min<std::size_t>(out.size() - at, 1 + rng.next() % 64);
        out.insert(out.end(), out.begin() + static_cast<long>(at),
                   out.begin() + static_cast<long>(at + len));
        break;
      }
      default:  // overwrite with a structural character
      {
        static const char kChars[] = "+-/.# \n\t{}|0123456789aR";
        out[rng.next() % out.size()] = static_cast<std::uint8_t>(
            kChars[rng.next() % (sizeof(kChars) - 1)]);
        break;
      }
    }
  }
  return out;
}

std::vector<std::uint8_t> read_file(const char* path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string s = ss.str();
  return std::vector<std::uint8_t>(s.begin(), s.end());
}

}  // namespace

int main(int argc, char** argv) {
  double seconds = 0;
  std::vector<std::vector<std::uint8_t>> seeds;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "-t") == 0 && i + 1 < argc) {
      seconds = std::atof(argv[++i]);
      continue;
    }
    seeds.push_back(read_file(argv[i]));
    sitm::fuzz::fuzz_one(seeds.back().data(), seeds.back().size());
  }
  std::printf("replayed %zu corpus file(s)\n", seeds.size());
  if (seconds > 0 && !seeds.empty()) {
    Rng rng;
    std::uint64_t execs = 0;
    const auto until = std::chrono::steady_clock::now() +
                       std::chrono::duration<double>(seconds);
    while (std::chrono::steady_clock::now() < until) {
      for (int burst = 0; burst < 64; ++burst, ++execs) {
        const auto input = mutate(seeds[rng.next() % seeds.size()], rng);
        sitm::fuzz::fuzz_one(input.data(), input.size());
      }
    }
    std::printf("mutation loop: %llu execs in %.0fs\n",
                static_cast<unsigned long long>(execs), seconds);
  }
  return 0;
}

#endif  // SITM_LIBFUZZER
