#!/usr/bin/env python3
"""Aggregate gcov line coverage for src/ and gate it against the floor.

Usage:
    scripts/check_coverage.py BUILD_DIR [--floor COVERAGE_floor.json]
                              [--update-floor]

Walks BUILD_DIR for .gcda files (produced by a `coverage` preset build
after running ctest), asks `gcov --json-format --stdout` for per-line
execution counts, and aggregates per source file under src/.  Only gcov
and python are needed — this works in the bare container and in CI; lcov,
when present, is purely for the human-readable report.

The floor file pins the minimum acceptable aggregate line coverage of
src/ (one number, conservatively below the measured value so unrelated
refactors don't flap the gate).  An optional "per_path_min" object maps
directory prefixes (e.g. "src/netlist/") to their own minimums, so
subsystems with a deliberate testing bar — the output-side checker, the
BDD layer — can't erode quietly while the aggregate stays green.  CI
fails when any measurement < its floor; --update-floor rewrites the
aggregate (and refreshes any existing per-path entries) from the current
measurement minus a small margin.
"""

import argparse
import json
import os
import subprocess
import sys
from collections import defaultdict

MARGIN = 2.0  # points below the measurement when (re)writing the floor


def gcov_json_documents(build_dir):
    """Run gcov over every .gcda under build_dir, yield parsed documents."""
    gcda = []
    for root, _dirs, files in os.walk(build_dir):
        gcda.extend(os.path.join(root, f) for f in files if f.endswith(".gcda"))
    if not gcda:
        sys.exit(f"error: no .gcda files under {build_dir} — "
                 "build the coverage preset and run ctest first")
    # Batch to keep command lines bounded.
    for i in range(0, len(gcda), 64):
        batch = gcda[i:i + 64]
        proc = subprocess.run(
            ["gcov", "--json-format", "--stdout", *batch],
            cwd=build_dir, capture_output=True, text=True)
        for line in proc.stdout.splitlines():
            line = line.strip()
            if not line.startswith("{"):
                continue
            try:
                yield json.loads(line)
            except json.JSONDecodeError:
                continue


def aggregate(build_dir, repo_root):
    """{relative source path: (covered, total)} for files under src/."""
    per_file = defaultdict(lambda: defaultdict(int))  # path -> line -> count
    for doc in gcov_json_documents(build_dir):
        for unit in doc.get("files", []):
            path = os.path.normpath(
                os.path.join(build_dir, unit.get("file", "")))
            rel = os.path.relpath(path, repo_root)
            if not rel.startswith("src" + os.sep):
                continue
            for line in unit.get("lines", []):
                n = line.get("line_number")
                if n is not None:
                    # Max across translation units: a header line counts as
                    # covered if ANY includer executed it.
                    per_file[rel][n] = max(per_file[rel][n],
                                           line.get("count", 0))
    return {
        path: (sum(1 for c in lines.values() if c > 0), len(lines))
        for path, lines in sorted(per_file.items())
    }


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("build_dir")
    ap.add_argument("--floor", default="COVERAGE_floor.json")
    ap.add_argument("--update-floor", action="store_true")
    args = ap.parse_args()

    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    stats = aggregate(os.path.abspath(args.build_dir), repo_root)
    if not stats:
        sys.exit("error: gcov reported no lines under src/")

    covered = sum(c for c, _ in stats.values())
    total = sum(t for _, t in stats.values())
    pct = 100.0 * covered / total
    print(f"src/ line coverage: {pct:.2f}% ({covered}/{total} lines, "
          f"{len(stats)} files)")
    worst = sorted(stats.items(), key=lambda kv: kv[1][0] / max(kv[1][1], 1))
    for path, (c, t) in worst[:5]:
        print(f"  lowest: {path}: {100.0 * c / max(t, 1):.1f}% ({c}/{t})")

    def path_pct(prefix):
        c = sum(cv for p, (cv, _) in stats.items() if p.startswith(prefix))
        t = sum(tt for p, (_, tt) in stats.items() if p.startswith(prefix))
        return (100.0 * c / t, c, t) if t else (None, 0, 0)

    floor_path = os.path.join(repo_root, args.floor)
    if args.update_floor:
        try:
            with open(floor_path) as f:
                previous = json.load(f)
        except (OSError, ValueError):
            previous = {}
        floor = {"src_line_coverage_min": round(pct - MARGIN, 1)}
        per_path = {}
        for prefix in previous.get("per_path_min", {}):
            sub_pct, _, _ = path_pct(prefix)
            if sub_pct is not None:
                per_path[prefix] = round(sub_pct - MARGIN, 1)
        if per_path:
            floor["per_path_min"] = per_path
        with open(floor_path, "w") as f:
            json.dump(floor, f, indent=2)
            f.write("\n")
        print(f"floor updated: {floor['src_line_coverage_min']}% "
              f"-> {args.floor}")
        return

    with open(floor_path) as f:
        floors = json.load(f)
    failures = []
    floor = floors["src_line_coverage_min"]
    if pct < floor:
        failures.append(f"src/ line coverage {pct:.2f}% is below the "
                        f"checked-in floor {floor}%")
    for prefix, sub_floor in sorted(floors.get("per_path_min", {}).items()):
        sub_pct, c, t = path_pct(prefix)
        if sub_pct is None:
            failures.append(f"{prefix} has a floor ({sub_floor}%) but no "
                            "measured lines — was the subsystem removed?")
            continue
        verdict = "OK" if sub_pct >= sub_floor else "FAIL"
        print(f"  {prefix}: {sub_pct:.2f}% ({c}/{t} lines), "
              f"floor {sub_floor}% [{verdict}]")
        if sub_pct < sub_floor:
            failures.append(f"{prefix} line coverage {sub_pct:.2f}% is "
                            f"below its floor {sub_floor}%")
    if failures:
        sys.exit("FAIL: " + "; ".join(failures) +
                 f" ({args.floor}). Add tests, or lower the floor "
                 "deliberately in the same PR.")
    print(f"OK: above the {floor}% floor")


if __name__ == "__main__":
    main()
