#pragma once
// Shared helpers for the table-reproduction benches.

#include <chrono>
#include <cstdio>
#include <string>

#include "core/mapper.hpp"
#include "netlist/netlist.hpp"

namespace sitm {
namespace bench {

/// Wall-clock helper.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  double ms() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// "n.i." or the number of inserted signals.
inline std::string insertions_cell(const MapResult& result) {
  if (!result.implementable) return "n.i.";
  return std::to_string(result.signals_inserted);
}

/// Histogram cell: number of gates with exactly n literals.
inline std::string hist_cell(const std::vector<int>& hist, int n) {
  if (n < static_cast<int>(hist.size()) && hist[n] > 0)
    return std::to_string(hist[n]);
  return "";
}

}  // namespace bench
}  // namespace sitm
