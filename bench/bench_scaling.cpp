// Scaling study (supporting the paper's efficiency claim, Section 5):
// mapper runtime as a function of specification size, measured with
// google-benchmark over the parametric families.

#include <benchmark/benchmark.h>

#include "benchlib/generators.hpp"
#include "core/mapper.hpp"
#include "core/mc_cover.hpp"
#include "stg/stg.hpp"

namespace {

using namespace sitm;

void BM_Reachability(benchmark::State& state) {
  const Stg stg = bench::make_parallelizer(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(stg.to_state_graph());
  }
  state.counters["states"] = static_cast<double>(
      stg.to_state_graph().num_states());
}
BENCHMARK(BM_Reachability)->DenseRange(2, 10, 2);

void BM_SynthesizeAll(benchmark::State& state) {
  const StateGraph sg =
      bench::make_parallelizer(static_cast<int>(state.range(0)))
          .to_state_graph();
  for (auto _ : state) {
    benchmark::DoNotOptimize(synthesize_all(sg));
  }
  state.counters["states"] = static_cast<double>(sg.num_states());
}
BENCHMARK(BM_SynthesizeAll)->DenseRange(2, 8, 2);

void BM_MapParallelizer(benchmark::State& state) {
  const StateGraph sg =
      bench::make_parallelizer(static_cast<int>(state.range(0)))
          .to_state_graph();
  MapperOptions opts;
  opts.library.max_literals = 2;
  int inserted = 0;
  for (auto _ : state) {
    const MapResult r = technology_map(sg, opts);
    inserted = r.signals_inserted;
    benchmark::DoNotOptimize(r);
  }
  state.counters["states"] = static_cast<double>(sg.num_states());
  state.counters["inserted"] = inserted;
}
BENCHMARK(BM_MapParallelizer)->DenseRange(2, 7, 1)->Unit(benchmark::kMillisecond);

void BM_MapCombo(benchmark::State& state) {
  const StateGraph sg = bench::make_combo(static_cast<int>(state.range(0)),
                                          static_cast<int>(state.range(1)))
                            .to_state_graph();
  MapperOptions opts;
  opts.library.max_literals = 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(technology_map(sg, opts));
  }
  state.counters["states"] = static_cast<double>(sg.num_states());
}
BENCHMARK(BM_MapCombo)
    ->Args({2, 2})
    ->Args({3, 3})
    ->Args({4, 4})
    ->Args({5, 3})
    ->Unit(benchmark::kMillisecond);

void BM_MapSeqChain(benchmark::State& state) {
  const StateGraph sg =
      bench::make_seq_chain(static_cast<int>(state.range(0))).to_state_graph();
  MapperOptions opts;
  opts.library.max_literals = 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(technology_map(sg, opts));
  }
}
BENCHMARK(BM_MapSeqChain)->DenseRange(2, 10, 2)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
