// Scaling study (supporting the paper's efficiency claim, Section 5):
// mapper runtime as a function of specification size, measured with
// google-benchmark over the parametric families.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <numeric>

#include "benchlib/generators.hpp"
#include "boolf/bitslice.hpp"
#include "serve/server.hpp"
#include "stg/g_io.hpp"
#include "boolf/minimize.hpp"
#include "core/csc.hpp"
#include "core/insertion.hpp"
#include "core/mapper.hpp"
#include "core/mc_cover.hpp"
#include "flow/flow.hpp"
#include "sg/regions.hpp"
#include "stg/stg.hpp"
#include "util/run_guard.hpp"

namespace {

using namespace sitm;

void BM_Reachability(benchmark::State& state) {
  const Stg stg = bench::make_parallelizer(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(stg.to_state_graph());
  }
  state.counters["states"] = static_cast<double>(
      stg.to_state_graph().num_states());
}
BENCHMARK(BM_Reachability)->DenseRange(2, 10, 2);

// RunGuard overhead on the reachability hot loop (last arg: 0 = governed
// by a guard with generous limits, 1 = ungoverned nullptr path).  The
// governed loop pays one relaxed fetch_add + compare per discovered state
// and an amortized clock read every 1024 work units; /0 vs /1 real_time is
// the whole cost of resource governance on the tightest loop we have.
void BM_GuardedReachability(benchmark::State& state) {
  const Stg stg = bench::make_parallelizer(static_cast<int>(state.range(0)));
  const bool governed = state.range(1) == 0;
  for (auto _ : state) {
    RunGuard guard;
    guard.set_work_budget(std::uint64_t{1} << 40);
    guard.set_deadline_ms(3.6e6);  // one hour: never trips, always armed
    benchmark::DoNotOptimize(
        stg.to_state_graph(Stg::kDefaultMaxStates, governed ? &guard : nullptr));
  }
  state.counters["states"] =
      static_cast<double>(stg.to_state_graph().num_states());
}
BENCHMARK(BM_GuardedReachability)->Args({8, 0})->Args({8, 1});

void BM_SynthesizeAll(benchmark::State& state) {
  const StateGraph sg =
      bench::make_parallelizer(static_cast<int>(state.range(0)))
          .to_state_graph();
  for (auto _ : state) {
    benchmark::DoNotOptimize(synthesize_all(sg));
  }
  state.counters["states"] = static_cast<double>(sg.num_states());
}
BENCHMARK(BM_SynthesizeAll)->DenseRange(2, 8, 2);

// Parallel per-signal synthesis: the BM_SynthesizeAll workload at the
// largest size, swept over McOptions::threads.  The output is bit-identical
// to the serial loop at every thread count; the wall-clock ratio against
// /1 is the ROADMAP's "parallel synthesize_all" speedup.
void BM_SynthesizeAllParallel(benchmark::State& state) {
  const StateGraph sg = bench::make_parallelizer(8).to_state_graph();
  McOptions opts;
  opts.threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(synthesize_all(sg, opts));
  }
  state.counters["states"] = static_cast<double>(sg.num_states());
  state.counters["threads"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_SynthesizeAllParallel)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// The staged Flow engine end to end (load metrics -> reachability ->
// properties -> csc -> synth -> decomp -> map -> verify): what one spec
// costs through the orchestration layer, i.e. BM_MapParallelizer plus the
// property checks and gate-level verification it leaves out.
void BM_FlowMapVerify(benchmark::State& state) {
  const Stg stg = bench::make_parallelizer(static_cast<int>(state.range(0)));
  FlowOptions opts;
  opts.mapper.library.max_literals = 2;
  std::size_t states = 0;
  for (auto _ : state) {
    Spec spec;
    spec.name = "parallelizer";
    spec.stg = stg;
    Flow flow(opts);
    const FlowReport report = flow.run_spec(std::move(spec));
    states = flow.context().sg->num_states();
    benchmark::DoNotOptimize(report);
  }
  state.counters["states"] = static_cast<double>(states);
}
BENCHMARK(BM_FlowMapVerify)->DenseRange(2, 6, 2)->Unit(benchmark::kMillisecond);

// The output-side gate in isolation: nlint + the BDD equivalence proof over
// an already-synthesized netlist, as a function of specification size.
// Arg 1 toggles variable sifting on the reachable-set BDD.
void BM_CheckEquivalence(benchmark::State& state) {
  FlowOptions synth_opts;
  synth_opts.mapper.library.max_literals = 2;
  synth_opts.stop_after = Stage::kMap;
  Flow flow(synth_opts);
  Spec spec;
  spec.name = "parallelizer";
  spec.stg = bench::make_parallelizer(static_cast<int>(state.range(0)));
  const FlowReport synth = flow.run_spec(std::move(spec));
  if (!synth.ok || !flow.context().netlist) {
    state.SkipWithError("synthesis failed");
    return;
  }
  const Netlist& netlist = *flow.context().netlist;
  CheckOptions opts;
  opts.reorder = state.range(1) != 0;
  std::size_t bdd = 0;
  for (auto _ : state) {
    const NlintReport nlint = nlint_netlist(netlist);
    const EquivReport equiv = check_equivalence(netlist, opts);
    bdd = equiv.reach_bdd_size;
    benchmark::DoNotOptimize(nlint);
    benchmark::DoNotOptimize(equiv);
  }
  state.counters["reach_bdd"] = static_cast<double>(bdd);
}
BENCHMARK(BM_CheckEquivalence)
    ->Args({4, 0})
    ->Args({6, 0})
    ->Args({6, 1})
    ->Unit(benchmark::kMillisecond);

void BM_MapParallelizer(benchmark::State& state) {
  const StateGraph sg =
      bench::make_parallelizer(static_cast<int>(state.range(0)))
          .to_state_graph();
  MapperOptions opts;
  opts.library.max_literals = 2;
  int inserted = 0;
  for (auto _ : state) {
    const MapResult r = technology_map(sg, opts);
    inserted = r.signals_inserted;
    benchmark::DoNotOptimize(r);
  }
  state.counters["states"] = static_cast<double>(sg.num_states());
  state.counters["inserted"] = inserted;
}
BENCHMARK(BM_MapParallelizer)->DenseRange(2, 7, 1)->Unit(benchmark::kMillisecond);

void BM_MapCombo(benchmark::State& state) {
  const StateGraph sg = bench::make_combo(static_cast<int>(state.range(0)),
                                          static_cast<int>(state.range(1)))
                            .to_state_graph();
  MapperOptions opts;
  opts.library.max_literals = 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(technology_map(sg, opts));
  }
  state.counters["states"] = static_cast<double>(sg.num_states());
}
BENCHMARK(BM_MapCombo)
    ->Args({2, 2})
    ->Args({3, 3})
    ->Args({4, 4})
    ->Args({5, 3})
    ->Unit(benchmark::kMillisecond);

void BM_MapSeqChain(benchmark::State& state) {
  const StateGraph sg =
      bench::make_seq_chain(static_cast<int>(state.range(0))).to_state_graph();
  MapperOptions opts;
  opts.library.max_literals = 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(technology_map(sg, opts));
  }
}
BENCHMARK(BM_MapSeqChain)->DenseRange(2, 10, 2)->Unit(benchmark::kMillisecond);

// Inner loop of the minimizer in isolation: expand every on-minterm of the
// parallelizer's done-signal next-state function against the off-set through
// the bit-sliced engine, including the per-call off-set transpose (this is
// how minimize_onoff amortizes it).
void BM_ExpandMinterm(benchmark::State& state) {
  const StateGraph sg =
      bench::make_parallelizer(static_cast<int>(state.range(0)))
          .to_state_graph();
  const int sig = sg.noninput_signals().back();
  std::vector<std::uint64_t> on, off;
  sg.reachable().for_each([&](std::size_t s) {
    const auto id = static_cast<StateId>(s);
    (next_value(sg, id, sig) ? on : off).push_back(sg.code(id));
  });
  std::vector<int> order(static_cast<std::size_t>(sg.num_signals()));
  std::iota(order.begin(), order.end(), 0);
  for (auto _ : state) {
    const BitSlicedOffSet sliced(off, sg.num_signals());
    for (const auto code : on)
      benchmark::DoNotOptimize(expand_minterm(code, sliced, order));
  }
  state.counters["on"] = static_cast<double>(on.size());
  state.counters["off"] = static_cast<double>(off.size());
}
BENCHMARK(BM_ExpandMinterm)->DenseRange(4, 8, 2);

// Greedy irredundant selection in isolation, priority engine (arg 0) vs the
// retained rescan-all reference loop (arg 1).  The candidate pool is what
// minimize_onoff's refinement passes really produce — every on-minterm of
// the parallelizer's done-signal function expanded under several rotated
// variable orders — so the selection loop sees many overlapping cubes per
// minterm, the regime where the reference loop's O(cubes) rescan per pick
// dominates.
void BM_Irredundant(benchmark::State& state) {
  const StateGraph sg = bench::make_parallelizer(8).to_state_graph();
  const int sig = sg.noninput_signals().back();
  std::vector<std::uint64_t> on, off;
  sg.reachable().for_each([&](std::size_t s) {
    const auto id = static_cast<StateId>(s);
    (next_value(sg, id, sig) ? on : off).push_back(sg.code(id));
  });
  const BitSlicedOffSet sliced(off, sg.num_signals());
  std::vector<int> order(static_cast<std::size_t>(sg.num_signals()));
  std::iota(order.begin(), order.end(), 0);
  std::vector<Cube> cubes;
  for (int rot = 0; rot < 4; ++rot) {
    std::rotate(order.begin(), order.begin() + 1, order.end());
    const std::vector<int> reversed(order.rbegin(), order.rend());
    for (const auto code : on) {
      cubes.push_back(expand_minterm(code, sliced, order));
      cubes.push_back(expand_minterm(code, sliced, reversed));
    }
  }
  std::sort(cubes.begin(), cubes.end());
  cubes.erase(std::unique(cubes.begin(), cubes.end()), cubes.end());

  const bool reference = state.range(0) != 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(irredundant(cubes, on, reference));
  }
  state.counters["cubes"] = static_cast<double>(cubes.size());
  state.counters["on"] = static_cast<double>(on.size());
}
BENCHMARK(BM_Irredundant)->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond);

// The mapper's candidate resynthesis loop swept over
// MapperOptions::threads: each candidate is an independent full
// resynthesis over the read-only SG, evaluated on the shared pool and
// committed in candidate order — the mapped netlist is bit-identical at
// every thread count, so the /1 vs /4 ratio is pure parallel speedup (on a
// single-core container the sweep degenerates to serial timings).
void BM_MapParallelResynth(benchmark::State& state) {
  const StateGraph sg = bench::make_parallelizer(6).to_state_graph();
  MapperOptions opts;
  opts.library.max_literals = 2;
  opts.threads = static_cast<int>(state.range(0));
  int inserted = 0;
  for (auto _ : state) {
    const MapResult r = technology_map(sg, opts);
    inserted = r.signals_inserted;
    benchmark::DoNotOptimize(r);
  }
  state.counters["threads"] = static_cast<double>(state.range(0));
  state.counters["inserted"] = inserted;
}
BENCHMARK(BM_MapParallelResynth)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

// Insertion planning in isolation: every ordered (e1, e2) switching-region
// pair of a conflicted diamond ring — exactly resolve_csc's per-iteration
// candidate planning, on the concurrency-rich workload where planning is
// diamond-bound (the plain csc_ring is diamond-free, so there is nothing to
// amortize there).  Arg 0 is the fork width, arg 1 the engine: 0 = one
// shared InsertionPlanner (diamond enumeration and region memos reused
// across pairs), 1 = a fresh one-shot plan per pair (the retained reference
// cost model).  Both produce identical plans (pinned by
// tests/perf_equiv_test.cpp); the /0 vs /1 ratio is the planner's win.
void BM_PlanInsertion(benchmark::State& state) {
  const StateGraph sg =
      bench::make_csc_diamond_ring(3, static_cast<int>(state.range(0)))
          .to_state_graph();
  const std::vector<DynBitset> region = all_switching_regions(sg);
  std::vector<const DynBitset*> occupied;
  for (const auto& r : region)
    if (r.any()) occupied.push_back(&r);

  const bool one_shot = state.range(1) != 0;
  long planned = 0;
  for (auto _ : state) {
    planned = 0;
    InsertionPlanner planner(sg);
    for (const DynBitset* r1 : occupied) {
      for (const DynBitset* r2 : occupied) {
        if (r1 == r2) continue;
        auto plan = one_shot ? plan_state_latch_insertion(sg, *r1, *r2)
                             : planner.plan_state_latch(*r1, *r2);
        planned += plan.has_value();
        benchmark::DoNotOptimize(plan);
      }
    }
  }
  state.counters["pairs"] =
      static_cast<double>(occupied.size() * (occupied.size() - 1));
  state.counters["planned"] = static_cast<double>(planned);
}
BENCHMARK(BM_PlanInsertion)
    ->Args({4, 0})
    ->Args({4, 1})
    ->Args({5, 0})
    ->Args({5, 1})
    ->Unit(benchmark::kMillisecond);

// One resolve_csc candidate round's insertion cost in isolation: every
// planned (e1, e2) latch of the conflicted diamond ring, either materialized
// (engine 1: insert_signal — full graph copy + prune_unreachable + copy-map
// remap, the cost every scored candidate used to pay) or scored lazily from
// the copy maps (engine 0: InsertionPreview — one reachability walk over the
// implicit copy product).  Arg 0 is the fork width.  Both agree exactly on
// every query resolve_csc asks (pinned by tests/perf_equiv_test.cpp); the
// /0 vs /1 ratio is the per-candidate win behind winner-only
// materialization.
void BM_InsertSignal(benchmark::State& state) {
  const StateGraph sg =
      bench::make_csc_diamond_ring(4, static_cast<int>(state.range(0)))
          .to_state_graph();
  const std::vector<DynBitset> region = all_switching_regions(sg);
  std::vector<const DynBitset*> occupied;
  for (const auto& r : region)
    if (r.any()) occupied.push_back(&r);
  InsertionPlanner planner(sg);
  std::vector<InsertionPlan> plans;
  for (const DynBitset* r1 : occupied)
    for (const DynBitset* r2 : occupied) {
      if (r1 == r2) continue;
      if (auto plan = planner.plan_state_latch(*r1, *r2))
        plans.push_back(std::move(*plan));
    }

  const bool materialize = state.range(1) != 0;
  std::size_t states = 0;
  for (auto _ : state) {
    states = 0;
    for (const InsertionPlan& plan : plans) {
      if (materialize) {
        InsertionCopies copies;
        const StateGraph next = insert_signal(sg, plan, "bz0", &copies);
        states += next.num_states();
      } else {
        states += InsertionPreview(sg, plan).num_states();
      }
    }
    benchmark::DoNotOptimize(states);
  }
  state.counters["plans"] = static_cast<double>(plans.size());
  state.counters["states"] = static_cast<double>(states);
}
BENCHMARK(BM_InsertSignal)
    ->Args({4, 0})
    ->Args({4, 1})
    ->Args({5, 0})
    ->Args({5, 1})
    ->Unit(benchmark::kMillisecond);

// resolve_csc end to end on the diamond ring (args: segments, width,
// engine), the default lazy candidate engine (engine 0: shared incremental
// planner, copy-map scoring, winner-only materialization, memoized
// persistency baseline) vs the retained eager one-shot path (engine 1,
// CscOptions::reference_planner).  Bit-identical CscResults by construction
// (pinned by tests/perf_equiv_test.cpp).
void BM_ResolveCscIncremental(benchmark::State& state) {
  const StateGraph sg =
      bench::make_csc_diamond_ring(static_cast<int>(state.range(0)),
                                   static_cast<int>(state.range(1)))
          .to_state_graph();
  CscOptions opts;
  opts.reference_planner = state.range(2) != 0;
  int inserted = 0;
  for (auto _ : state) {
    const CscResult r = resolve_csc(sg, opts);
    inserted = r.signals_inserted;
    benchmark::DoNotOptimize(r);
  }
  state.counters["states"] = static_cast<double>(sg.num_states());
  state.counters["inserted"] = inserted;
}
BENCHMARK(BM_ResolveCscIncremental)
    ->Args({5, 4, 0})
    ->Args({5, 4, 1})
    ->Args({4, 5, 0})
    ->Args({4, 5, 1})
    ->Unit(benchmark::kMillisecond);

// The mapper with the pre-check prune (arg 0 = pruned, 1 = exhaustive):
// once a committable winner exists, later-ranked candidates skip the
// insert/verify/resynthesize round trip entirely.  Compare the `resyn`
// counters for the work saved and /0 vs /1 real_time for the payoff.
void BM_MapPruned(benchmark::State& state) {
  const StateGraph sg = bench::make_parallelizer(6).to_state_graph();
  MapperOptions opts;
  opts.library.max_literals = 2;
  opts.prune_pre_checks = state.range(0) == 0;
  int inserted = 0;
  long resyn = 0;
  for (auto _ : state) {
    const MapResult r = technology_map(sg, opts);
    inserted = r.signals_inserted;
    resyn = r.resyntheses;
    benchmark::DoNotOptimize(r);
  }
  state.counters["inserted"] = inserted;
  state.counters["resyn"] = static_cast<double>(resyn);
}
BENCHMARK(BM_MapPruned)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

// CSC resolution on the conflicted ring family.  Default options: exhaustive
// candidate order, bit-identical to the reference algorithm (class-local
// conflict recount, deferred verification).
void BM_ResolveCsc(benchmark::State& state) {
  const StateGraph sg =
      bench::make_csc_ring(static_cast<int>(state.range(0))).to_state_graph();
  int inserted = 0;
  for (auto _ : state) {
    const CscResult r = resolve_csc(sg);
    inserted = r.signals_inserted;
    benchmark::DoNotOptimize(r);
  }
  state.counters["states"] = static_cast<double>(sg.num_states());
  state.counters["inserted"] = inserted;
}
BENCHMARK(BM_ResolveCsc)->DenseRange(2, 6, 1)->Unit(benchmark::kMillisecond);

// Same workload with candidate ranking: only the 16 best-scoring (e1, e2)
// pairs per iteration pay for the insert/verify round trip.
void BM_ResolveCscTopK(benchmark::State& state) {
  const StateGraph sg =
      bench::make_csc_ring(static_cast<int>(state.range(0))).to_state_graph();
  CscOptions opts;
  opts.rank_top_k = 16;
  int inserted = 0;
  for (auto _ : state) {
    const CscResult r = resolve_csc(sg, opts);
    inserted = r.signals_inserted;
    benchmark::DoNotOptimize(r);
  }
  state.counters["states"] = static_cast<double>(sg.num_states());
  state.counters["inserted"] = inserted;
}
BENCHMARK(BM_ResolveCscTopK)->DenseRange(2, 6, 1)->Unit(benchmark::kMillisecond);

// The serve front-end's hot path.  Both benchmarks push the same request
// line through ServeEngine::handle_line; Cold clears the cache every
// iteration so each request re-runs the full flow (parse, key, schedule,
// synthesize, serialize), Warm primes once and then answers from the
// content-addressed cache (parse, key, lookup, splice).  Cold/Warm is the
// serve speedup; run_bench.sh gates it at >= 10x via compare_bench.py
// --speedup, and tests/serve_test.cpp pins the warm bytes to the cold ones.
std::string serve_request_line() {
  Json req = Json::object();
  req.set("id", Json("bench"));
  req.set("spec", Json(write_g_string(bench::make_parallelizer(4),
                                      "parallelizer")));
  return req.dump(0);
}

void BM_ServeCold(benchmark::State& state) {
  serve::ServeOptions so;
  so.flow.mapper.library.max_literals = 2;
  serve::ServeEngine engine(so);
  const std::string line = serve_request_line();
  for (auto _ : state) {
    state.PauseTiming();
    engine.cache().clear();
    state.ResumeTiming();
    benchmark::DoNotOptimize(engine.handle_line(line));
  }
  state.counters["misses"] =
      static_cast<double>(engine.cache().stats().misses);
}
BENCHMARK(BM_ServeCold)->Unit(benchmark::kMillisecond);

void BM_ServeWarm(benchmark::State& state) {
  serve::ServeOptions so;
  so.flow.mapper.library.max_literals = 2;
  serve::ServeEngine engine(so);
  const std::string line = serve_request_line();
  engine.handle_line(line);  // prime the cache
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.handle_line(line));
  }
  state.counters["hits"] = static_cast<double>(engine.cache().stats().hits);
}
BENCHMARK(BM_ServeWarm)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
