// Micro-benchmarks of the substrates: two-level minimizer, cover algebra,
// BDD operations, kernel extraction, region computation, SI verification.

#include <benchmark/benchmark.h>

#include "bdd/bdd.hpp"
#include "benchlib/generators.hpp"
#include "boolf/minimize.hpp"
#include "core/mc_cover.hpp"
#include "mlogic/division.hpp"
#include "netlist/si_verify.hpp"
#include "sg/regions.hpp"
#include "stg/stg.hpp"
#include "util/rng.hpp"

namespace {

using namespace sitm;

/// Deterministic random on/off partition over n variables.
void random_onoff(int n, std::uint64_t seed, std::vector<std::uint64_t>* on,
                  std::vector<std::uint64_t>* off) {
  Rng rng(seed);
  for (std::uint64_t code = 0; code < (std::uint64_t{1} << n); ++code) {
    const auto r = rng.below(3);
    if (r == 0) on->push_back(code);
    if (r == 1) off->push_back(code);
  }
}

void BM_MinimizeOnOff(benchmark::State& state) {
  std::vector<std::uint64_t> on, off;
  random_onoff(static_cast<int>(state.range(0)), 42, &on, &off);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        minimize_onoff(on, off, static_cast<int>(state.range(0))));
  }
  state.counters["on"] = static_cast<double>(on.size());
}
BENCHMARK(BM_MinimizeOnOff)->DenseRange(6, 14, 2);

void BM_CoverComplement(benchmark::State& state) {
  std::vector<std::uint64_t> on, off;
  random_onoff(10, 7, &on, &off);
  const Cover f = minimize_onoff(on, off, 10);
  for (auto _ : state) benchmark::DoNotOptimize(f.complement());
}
BENCHMARK(BM_CoverComplement);

void BM_CoverTautology(benchmark::State& state) {
  std::vector<std::uint64_t> on, off;
  random_onoff(12, 9, &on, &off);
  const Cover f = minimize_onoff(on, off, 12);
  for (auto _ : state) benchmark::DoNotOptimize(f.tautology());
}
BENCHMARK(BM_CoverTautology);

void BM_Kernels(benchmark::State& state) {
  // (a+b+c)(d+e)f + g — the classic kernel workload, scaled by replication.
  Cover f(24);
  const int copies = static_cast<int>(state.range(0));
  for (int k = 0; k < copies; ++k) {
    const int base = 7 * k;
    for (int x : {0, 1, 2})
      for (int y : {3, 4}) {
        Cube c = Cube::one()
                     .with_literal(base + x, true)
                     .with_literal(base + y, true)
                     .with_literal(base + 5, true);
        f.add(c);
      }
    f.add(Cube::literal(base + 6, true));
  }
  for (auto _ : state) benchmark::DoNotOptimize(all_kernels(f));
}
BENCHMARK(BM_Kernels)->DenseRange(1, 3);

void BM_BddReachSweep(benchmark::State& state) {
  // BDD stress: build the characteristic function of an n-bit counter's
  // reachable set by repeated image computation.
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    BddManager mgr(2 * n);
    // transition relation for increment: next = current + 1 (mod 2^n)
    BddRef rel = mgr.bdd_true();
    BddRef carry = mgr.bdd_true();
    for (int i = 0; i < n; ++i) {
      const BddRef cur = mgr.literal(i);
      const BddRef nxt = mgr.literal(n + i);
      rel = mgr.bdd_and(rel, mgr.bdd_not(mgr.bdd_xor(nxt, mgr.bdd_xor(cur, carry))));
      carry = mgr.bdd_and(carry, cur);
    }
    // image iterations from state 0
    BddRef reached = mgr.bdd_true();
    for (int i = 0; i < n; ++i)
      reached = mgr.bdd_and(reached, mgr.literal(i, false));
    for (int step = 0; step < 8; ++step) {
      BddRef img = mgr.bdd_and(reached, rel);
      std::uint64_t mask = (std::uint64_t{1} << n) - 1;
      img = mgr.exists_mask(img, mask);
      // rename next -> current
      for (int i = 0; i < n; ++i)
        img = mgr.compose(img, n + i, mgr.literal(i));
      reached = mgr.bdd_or(reached, img);
    }
    benchmark::DoNotOptimize(mgr.dag_size(reached));
  }
}
BENCHMARK(BM_BddReachSweep)->DenseRange(4, 12, 4);

void BM_Regions(benchmark::State& state) {
  const StateGraph sg =
      bench::make_combo(static_cast<int>(state.range(0)), 3).to_state_graph();
  const int d = sg.find_signal("d");
  for (auto _ : state)
    benchmark::DoNotOptimize(excitation_regions(sg, Event{d, true}));
  state.counters["states"] = static_cast<double>(sg.num_states());
}
BENCHMARK(BM_Regions)->DenseRange(2, 6, 2);

void BM_SiVerify(benchmark::State& state) {
  const StateGraph sg =
      bench::make_parallelizer(static_cast<int>(state.range(0)))
          .to_state_graph();
  const Netlist netlist = synthesize_all(sg);
  for (auto _ : state)
    benchmark::DoNotOptimize(verify_speed_independence(netlist));
  state.counters["states"] = static_cast<double>(sg.num_states());
}
BENCHMARK(BM_SiVerify)->DenseRange(2, 6, 2)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
