// Reproduction of Table 1 (paper Section 4).
//
// For every benchmark of the suite it prints:
//   * the complexity profile of the circuit before decomposition
//     (# gates with n literals, n = 2..7+ — the first column group);
//   * the number of signals inserted by the technology mapper for libraries
//     with at most i = 2, 3, 4 literals per gate ("n.i." when the mapper
//     gives up — the second column group);
//   * mapping wall-clock time at i = 2.
//
// The benchmark STGs are reconstructed equivalents of the historical suite
// (see DESIGN.md), so absolute values differ from the publication; the
// qualitative shape — high-fanin circuits (vbe10b, pe-send-ifc, tsend-bm,
// mr0) needing several insertions, most circuits mappable even at i = 2 —
// is the reproduction target.

#include <cstdio>
#include <vector>

#include "bench/table_common.hpp"
#include "benchlib/suite.hpp"
#include "core/mapper.hpp"
#include "core/mc_cover.hpp"
#include "stg/stg.hpp"

using namespace sitm;
using namespace sitm::bench;

int main() {
  std::printf("Table 1: technology mapping of the benchmark suite\n");
  std::printf("(reconstructed STGs; see DESIGN.md for the family mapping)\n\n");
  std::printf("%-16s %-18s %6s | %-24s | %-17s | %8s\n", "circuit", "family",
              "states", "# gates with n literals", "signals inserted",
              "time i=2");
  std::printf("%-16s %-18s %6s | %3s %3s %3s %3s %3s %3s | %5s %5s %5s | %8s\n",
              "", "", "", "n=2", "3", "4", "5", "6", "7+", "i=2", "i=3", "i=4",
              "[ms]");
  std::printf("%s\n", std::string(106, '-').c_str());

  int solved[3] = {0, 0, 0};
  int total = 0;
  for (auto& entry : table1_suite()) {
    const StateGraph sg = entry.stg.to_state_graph();
    const Netlist before = synthesize_all(sg);
    auto hist = before.complexity_histogram();
    // Fold everything above 7 into the 7+ bucket.
    int bucket7 = 0;
    for (std::size_t n = 7; n < hist.size(); ++n) bucket7 += hist[n];

    std::string cells[3];
    double ms2 = 0.0;
    for (int idx = 0; idx < 3; ++idx) {
      MapperOptions opts;
      opts.library.max_literals = 2 + idx;
      Stopwatch watch;
      const MapResult result = technology_map(sg, opts);
      if (idx == 0) ms2 = watch.ms();
      cells[idx] = insertions_cell(result);
      if (result.implementable) ++solved[idx];
    }
    ++total;

    std::printf(
        "%-16s %-18s %6zu | %3s %3s %3s %3s %3s %3s | %5s %5s %5s | %8.1f\n",
        entry.name.c_str(), entry.family.c_str(), sg.num_states(),
        hist_cell(hist, 2).c_str(), hist_cell(hist, 3).c_str(),
        hist_cell(hist, 4).c_str(), hist_cell(hist, 5).c_str(),
        hist_cell(hist, 6).c_str(), (bucket7 ? std::to_string(bucket7) : "").c_str(),
        cells[0].c_str(), cells[1].c_str(), cells[2].c_str(), ms2);
  }
  std::printf("%s\n", std::string(106, '-').c_str());
  std::printf("implementable: i=2: %d/%d   i=3: %d/%d   i=4: %d/%d\n",
              solved[0], total, solved[1], total, solved[2], total);
  std::printf("(paper: 26/32 at i=2; all but 3 gates across 2 circuits at "
              "i=4)\n");
  return 0;
}
